(** Compilation-service tests: canonical fingerprints, the
    content-addressed artifact cache (corruption always degrades to a
    miss), the batch scheduler's outcome taxonomy, warm/cold compile
    determinism and the serve request loop. *)

module Json = Spt_obs.Json
module Cache = Spt_service.Artifact_cache
module Batch = Spt_service.Batch
module Cached = Spt_service.Cached
module Server = Spt_service.Server
module Config = Spt_driver.Config

let with_tmpdir f =
  let dir = Filename.temp_file "spt_service" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; dir ])))
    (fun () -> f dir)

let loop_src =
  {|
int n = 30;
int a[30];
int b[30];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = b[i] * 2 + 1;
    i = i + 1;
  }
  print_int(a[7]);
}
|}

(* same program, different concrete syntax: comments, indentation,
   blank lines *)
let loop_src_reformatted =
  {|
int n = 30;
int a[30];   /* output */
int b[30];

// the kernel
void main() {
      int i = 0;
      while (i < n) { a[i] = b[i] * 2 + 1; i = i + 1; }


      print_int(a[7]);
}
|}

let tiny_src = "void main() { print_int(42); }"

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let test_fingerprint_layout_independent () =
  let key = Cached.key_of ~config:Config.best in
  Alcotest.(check string)
    "whitespace/comment edits share a key" (key loop_src)
    (key loop_src_reformatted);
  Alcotest.(check bool)
    "different programs differ" false
    (key loop_src = key tiny_src)

let test_fingerprint_config_sensitive () =
  Alcotest.(check bool)
    "config is part of the key" false
    (Cached.key_of ~config:Config.best loop_src
    = Cached.key_of ~config:Config.basic loop_src)

let test_fingerprint_profile_sensitive () =
  let module Store = Spt_feedback.Profile_store in
  let bare = Cached.key_of ~config:Config.best loop_src in
  Alcotest.(check string)
    "an empty profile store keys as no store" bare
    (Cached.key_of ~config:Config.best ~profile:(Store.empty ()) loop_src);
  let s = Store.empty () in
  let ep, dp, vp = Spt_driver.Pipeline.profile_source loop_src in
  Store.absorb_profiles s ep dp vp;
  Alcotest.(check bool)
    "a non-empty store changes the key" false
    (bare = Cached.key_of ~config:Config.best ~profile:s loop_src);
  (* and warm hits under a profile replay byte-identically *)
  with_tmpdir (fun dir ->
      let cache = Cache.create ~dir () in
      let compile () =
        Cached.compile ~cache ~config:Config.best ~profile:s ~name:"loop.c"
          loop_src
      in
      let cold = compile () in
      let warm = compile () in
      Alcotest.(check bool) "cold misses" false cold.Cached.hit;
      Alcotest.(check bool) "warm hits" true warm.Cached.hit;
      Alcotest.(check string) "byte-identical report"
        cold.Cached.report_text warm.Cached.report_text;
      Alcotest.(check string) "byte-identical eval JSON"
        (Json.to_string cold.Cached.eval)
        (Json.to_string warm.Cached.eval))

let test_fingerprint_is_hex () =
  let k = Cached.key_of ~config:Config.best tiny_src in
  Alcotest.(check int) "32 hex chars" 32 (String.length k);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        (match c with 'a' .. 'f' | '0' .. '9' -> true | _ -> false))
    k

(* ------------------------------------------------------------------ *)
(* Artifact cache *)

let payload = Json.Obj [ ("x", Json.Int 1); ("y", Json.Str "two") ]
let key = String.make 32 'a'

let test_cache_roundtrip () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir () in
      Alcotest.(check bool) "initially a miss" true (Cache.find c key = None);
      Cache.store c key payload;
      Alcotest.(check bool) "memory hit" true (Cache.find c key = Some payload);
      (* a second instance over the same directory hits from disk *)
      let c2 = Cache.create ~dir () in
      Alcotest.(check bool) "disk hit in a fresh process" true
        (Cache.find c2 key = Some payload);
      let s = Cache.stats c in
      Alcotest.(check int) "one hit" 1 s.Cache.hits;
      Alcotest.(check int) "one miss" 1 s.Cache.misses;
      Alcotest.(check int) "one store" 1 s.Cache.stores)

(* the on-disk location is shard-dependent; ask the cache *)
let entry_path c =
  match Cache.file_path c key with
  | Some p -> p
  | None -> Alcotest.fail "cache has no directory"

let test_cache_corruption_is_a_miss () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir () in
      Cache.store c key payload;
      (* truncate the on-disk entry mid-JSON *)
      let oc = open_out_bin (entry_path c) in
      output_string oc "{\"schema\":\"spt-cache";
      close_out oc;
      let fresh = Cache.create ~dir () in
      Alcotest.(check bool) "corrupt entry reads as a miss" true
        (Cache.find fresh key = None))

let test_cache_flipped_byte_is_a_miss () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir () in
      Cache.store c key payload;
      (* flip one byte inside the payload *value* — the file still
         parses as JSON with the right schema and key, so only the
         stored-vs-recomputed content digest can catch it *)
      let path = entry_path c in
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let i =
        let rec find j =
          if j + 5 > String.length text then
            Alcotest.fail "payload value not found in entry"
          else if String.sub text j 5 = "\"two\"" then j + 3
          else find (j + 1)
        in
        find 0
      in
      let flipped = Bytes.of_string text in
      Bytes.set flipped i 'q';
      let oc = open_out_bin path in
      output_bytes oc flipped;
      close_out oc;
      (match Json.of_string (Bytes.to_string flipped) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "flipped entry should still parse as JSON");
      let fresh = Cache.create ~dir () in
      Alcotest.(check bool) "digest mismatch reads as a miss" true
        (Cache.find fresh key = None);
      (* and the slot is usable again: a re-store over the bad entry
         heals it *)
      Cache.store fresh key payload;
      let healed = Cache.create ~dir () in
      Alcotest.(check bool) "re-store heals the entry" true
        (Cache.find healed key = Some payload))

let test_cache_schema_mismatch_is_a_miss () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir () in
      Cache.store c key payload;
      (* rewrite the entry under a future schema version *)
      let oc = open_out_bin (entry_path c) in
      output_string oc
        (Json.to_string ~minify:true
           (Json.Obj
              [
                ("schema", Json.Str "spt-cache-v999");
                ("key", Json.Str key);
                ("payload", payload);
              ]));
      close_out oc;
      let fresh = Cache.create ~dir () in
      Alcotest.(check bool) "version-bumped entry reads as a miss" true
        (Cache.find fresh key = None);
      (* and a wrong-key entry (tampering / collision) too *)
      let oc = open_out_bin (entry_path c) in
      output_string oc
        (Json.to_string ~minify:true
           (Json.Obj
              [
                ("schema", Json.Str Cache.schema);
                ("key", Json.Str (String.make 32 'b'));
                ("payload", payload);
              ]));
      close_out oc;
      let fresh2 = Cache.create ~dir () in
      Alcotest.(check bool) "wrong-key entry reads as a miss" true
        (Cache.find fresh2 key = None))

let test_no_cache () =
  let c = Cache.no_cache () in
  Alcotest.(check bool) "disabled" false (Cache.enabled c);
  Cache.store c key payload;
  Alcotest.(check bool) "never finds" true (Cache.find c key = None);
  let s = Cache.stats c in
  Alcotest.(check int) "counts nothing" 0 (s.Cache.hits + s.Cache.misses + s.Cache.stores)

(* ------------------------------------------------------------------ *)
(* Sharded layout, LRU eviction and size bounds *)

let key_n i = Printf.sprintf "%026dabcdef" i

let test_cache_sharded_layout () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir ~shards:4 () in
      Alcotest.(check int) "shard count" 4 (Cache.shards c);
      let keys = List.init 8 key_n in
      List.iter (fun k -> Cache.store c k payload) keys;
      List.iter
        (fun k ->
          match Cache.file_path c k with
          | None -> Alcotest.fail "entry has no path"
          | Some p ->
            Alcotest.(check bool) "entry on disk" true (Sys.file_exists p);
            Alcotest.(check int) "two-hex shard dir" 2
              (String.length (Filename.basename (Filename.dirname p))))
        keys;
      (* a fresh instance over the same sharded tree is warm *)
      let c2 = Cache.create ~dir ~shards:4 () in
      List.iter
        (fun k ->
          Alcotest.(check bool) "warm across restart" true
            (Cache.find c2 k = Some payload))
        keys)

let test_cache_lru_eviction_order () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir ~max_entries:2 () in
      Cache.store c (key_n 1) payload;
      Cache.store c (key_n 2) payload;
      (* touching 1 makes 2 the least recently used *)
      ignore (Cache.find c (key_n 1));
      Cache.store c (key_n 3) payload;
      Alcotest.(check bool) "LRU entry evicted" true
        (Cache.find c (key_n 2) = None);
      Alcotest.(check bool) "recently-used entry kept" true
        (Cache.find c (key_n 1) = Some payload);
      Alcotest.(check bool) "new entry kept" true
        (Cache.find c (key_n 3) = Some payload);
      let s = Cache.stats c in
      Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
      Alcotest.(check int) "entry bound held" 2 s.Cache.entries;
      (* the evicted entry's file is gone, not just unlisted *)
      match Cache.file_path c (key_n 2) with
      | Some p -> Alcotest.(check bool) "file removed" false (Sys.file_exists p)
      | None -> Alcotest.fail "entry has no path")

(* the shard tree's entry files (the index is bookkeeping, not payload) *)
let disk_entry_bytes dir =
  let root = Filename.concat dir Cache.schema in
  if not (Sys.file_exists root) then 0
  else
    Array.fold_left
      (fun acc shard ->
        let sd = Filename.concat root shard in
        if Sys.is_directory sd then
          Array.fold_left
            (fun acc f ->
              acc + (Unix.stat (Filename.concat sd f)).Unix.st_size)
            acc (Sys.readdir sd)
        else acc)
      0
      (Sys.readdir (Filename.concat dir Cache.schema))

let test_cache_byte_bound () =
  with_tmpdir (fun dir ->
      let big tag =
        Json.Obj [ ("tag", Json.Int tag); ("blob", Json.Str (String.make 2000 'z')) ]
      in
      let bound = 9000 in
      let c = Cache.create ~dir ~max_bytes:bound () in
      for i = 1 to 12 do
        Cache.store c (key_n i) (big i);
        Alcotest.(check bool) "on-disk bytes within bound" true
          (disk_entry_bytes dir <= bound)
      done;
      let s = Cache.stats c in
      Alcotest.(check bool) "evictions happened" true (s.Cache.evictions > 0);
      Alcotest.(check bool) "accounted bytes within bound" true
        (s.Cache.bytes <= bound);
      (* the retained entries are still warm, from a fresh instance *)
      let c2 = Cache.create ~dir ~max_bytes:bound () in
      let retained = ref 0 in
      for i = 1 to 12 do
        match Cache.find c2 (key_n i) with
        | Some v ->
          incr retained;
          Alcotest.(check bool) "retained entry intact" true (v = big i)
        | None -> ()
      done;
      Alcotest.(check bool) "some entries retained" true (!retained > 0);
      (* most-recent store always survives *)
      Alcotest.(check bool) "newest entry retained" true
        (Cache.find c2 (key_n 12) = Some (big 12));
      (* an entry alone larger than the bound is refused, not stored *)
      let huge = Json.Obj [ ("blob", Json.Str (String.make 20_000 'w')) ] in
      Cache.store c (key_n 99) huge;
      Alcotest.(check bool) "oversized entry not stored" true
        (disk_entry_bytes dir <= bound))

let test_cache_concurrent_writers () =
  with_tmpdir (fun dir ->
      let c = Cache.create ~dir ~shards:8 () in
      let n_domains = 4 and per = 16 in
      let worker d =
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let k = key_n ((d * 100) + i) in
              Cache.store c k (Json.Obj [ ("v", Json.Int ((d * 1000) + i)) ]);
              ignore (Cache.find c k)
            done)
      in
      List.iter Domain.join (List.init n_domains worker);
      let s = Cache.stats c in
      Alcotest.(check int) "every store counted" (n_domains * per) s.Cache.stores;
      Alcotest.(check int) "every entry listed" (n_domains * per) s.Cache.entries;
      (* a fresh instance loads the index every writer raced on and
         finds every entry *)
      let c2 = Cache.create ~dir ~shards:8 () in
      for d = 0 to n_domains - 1 do
        for i = 0 to per - 1 do
          Alcotest.(check bool) "entry readable after racing writers" true
            (Cache.find c2 (key_n ((d * 100) + i))
            = Some (Json.Obj [ ("v", Json.Int ((d * 1000) + i)) ]))
        done
      done)

(* ------------------------------------------------------------------ *)
(* Batch scheduler *)

let test_batch_outcomes () =
  let thunks =
    [
      (fun () -> 10);
      (fun () -> failwith "boom");
      (fun () -> 30);
    ]
  in
  let outcomes, stats = Batch.run ~jobs:2 ~timeout_s:60.0 thunks in
  (match outcomes.(0) with
  | Batch.Done v -> Alcotest.(check int) "first result in order" 10 v
  | _ -> Alcotest.fail "first thunk should be Done");
  (match outcomes.(1) with
  | Batch.Failed msg ->
    Alcotest.(check bool) "failure carries the message" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "second thunk should be Failed");
  (match outcomes.(2) with
  | Batch.Done v -> Alcotest.(check int) "third result in order" 30 v
  | _ -> Alcotest.fail "third thunk should be Done");
  Alcotest.(check int) "submitted" 3 stats.Batch.submitted;
  Alcotest.(check int) "completed" 2 stats.Batch.completed;
  Alcotest.(check int) "failed" 1 stats.Batch.failed;
  Alcotest.(check int) "timed out" 0 stats.Batch.timed_out

let test_batch_latency () =
  let outcomes, stats =
    Batch.run ~jobs:2 ~timeout_s:60.0
      [
        (fun () -> Unix.sleepf 0.02);
        (fun () -> Unix.sleepf 0.05);
        (fun () -> failwith "boom");
      ]
  in
  Alcotest.(check int) "three outcomes" 3 (Array.length outcomes);
  let module Hist = Spt_obs.Metrics.Hist in
  (* completed and failed jobs both ran, so both were measured *)
  Alcotest.(check int) "latency observed per job" 3
    (Hist.count stats.Batch.latency);
  Alcotest.(check bool) "p50 at least the shortest sleep" true
    (Hist.percentile stats.Batch.latency 0.50 >= 0.01);
  Alcotest.(check bool) "quantiles ordered" true
    (Hist.percentile stats.Batch.latency 0.50
    <= Hist.percentile stats.Batch.latency 0.99);
  Alcotest.(check bool) "max covers the longest sleep" true
    (Hist.max_value stats.Batch.latency >= 0.05)

let test_batch_timeout_latency_skipped () =
  (* a timed-out job has no measurement; the histogram must not invent
     one *)
  let _, stats =
    Batch.run ~jobs:1 ~timeout_s:0.2
      [ (fun () -> Unix.sleepf 5.0) ]
  in
  Alcotest.(check int) "timed-out job unmeasured" 0
    (Spt_obs.Metrics.Hist.count stats.Batch.latency)

let test_batch_timeout () =
  let outcomes, stats =
    Batch.run ~jobs:1 ~timeout_s:0.2
      [ (fun () -> Unix.sleepf 5.0); (fun () -> Unix.sleepf 5.0) ]
  in
  Alcotest.(check int) "both timed out" 2 stats.Batch.timed_out;
  Array.iter
    (fun o ->
      Alcotest.(check bool) "outcome is Timed_out" true (o = Batch.Timed_out))
    outcomes

(* ------------------------------------------------------------------ *)
(* Digest clustering *)

let test_batch_cluster () =
  (* a-b share d1, b-c share d2 → one transitive cluster; e is apart;
     f has no digests → singleton *)
  let groups =
    Batch.cluster
      [
        ("a", [ "d1" ]);
        ("b", [ "d1"; "d2" ]);
        ("c", [ "d2" ]);
        ("e", [ "d9" ]);
        ("f", []);
      ]
  in
  Alcotest.(check (list (list string)))
    "transitive grouping, earliest-member order"
    [ [ "a"; "b"; "c" ]; [ "e" ]; [ "f" ] ]
    groups;
  Alcotest.(check (list (list string))) "empty input" [] (Batch.cluster [])

let test_batch_run_clustered () =
  let item v digests = ((fun () -> v * 10), digests) in
  let outcomes, stats =
    Batch.run_clustered ~jobs:2 ~timeout_s:60.0
      [ item 1 [ "x" ]; item 2 [ "x" ]; item 3 [ "y" ]; item 4 [] ]
  in
  Alcotest.(check int) "outcomes in submission order" 4 (Array.length outcomes);
  Array.iteri
    (fun i o ->
      match o with
      | Batch.Done v -> Alcotest.(check int) "value" ((i + 1) * 10) v
      | _ -> Alcotest.fail "all jobs should be Done")
    outcomes;
  Alcotest.(check int) "three scheduling units" 3 stats.Batch.clusters;
  Alcotest.(check int) "submitted counts jobs, not clusters" 4
    stats.Batch.submitted

(* ------------------------------------------------------------------ *)
(* Cached compiles: warm replays byte-identically *)

let test_cached_compile_determinism () =
  with_tmpdir (fun dir ->
      let cache = Cache.create ~dir () in
      let compile () =
        Cached.compile ~cache ~config:Config.best ~name:"loop.c"
          loop_src
      in
      let cold = compile () in
      let warm = compile () in
      Alcotest.(check bool) "cold is a miss" false cold.Cached.hit;
      Alcotest.(check bool) "warm is a hit" true warm.Cached.hit;
      Alcotest.(check string) "same key" cold.Cached.key warm.Cached.key;
      Alcotest.(check string) "byte-identical report"
        cold.Cached.report_text warm.Cached.report_text;
      Alcotest.(check string) "byte-identical eval JSON"
        (Json.to_string cold.Cached.eval)
        (Json.to_string warm.Cached.eval);
      (* a reformatted copy of the source is still warm *)
      let reform =
        Cached.compile ~cache ~config:Config.best ~name:"loop.c"
          loop_src_reformatted
      in
      Alcotest.(check bool) "reformatted source hits" true reform.Cached.hit)

let test_cached_compile_raises_on_bad_source () =
  with_tmpdir (fun dir ->
      let cache = Cache.create ~dir () in
      let raised =
        match
          Cached.compile ~cache ~config:Config.best ~name:"bad.c"
            "int ("
        with
        | _ -> false
        | exception Spt_srclang.Parser.Parse_error _ -> true
        | exception Spt_srclang.Lexer.Lex_error _ -> true
      in
      Alcotest.(check bool) "syntax errors propagate" true raised;
      (* and failures are never cached *)
      let s = Cache.stats cache in
      Alcotest.(check int) "nothing stored" 0 s.Cache.stores)

(* ------------------------------------------------------------------ *)
(* Serve loop *)

let reply_of = function
  | `Reply j -> j
  | `Shutdown j -> j

let bool_member k j =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let test_server_compile_and_stats () =
  with_tmpdir (fun dir ->
      let t = Server.create ~cache:(Cache.create ~dir ()) () in
      let req =
        Json.Obj
          [
            ("op", Json.Str "compile");
            ("source", Json.Str tiny_src);
            ("name", Json.Str "tiny.c");
            ("id", Json.Int 7);
          ]
      in
      let r1 = reply_of (Server.handle t req) in
      Alcotest.(check (option bool)) "first compile ok" (Some true)
        (bool_member "ok" r1);
      Alcotest.(check (option bool)) "first compile is cold" (Some false)
        (bool_member "cache_hit" r1);
      Alcotest.(check bool) "id echoed" true
        (Json.member "id" r1 = Some (Json.Int 7));
      let r2 = reply_of (Server.handle t req) in
      Alcotest.(check (option bool)) "second compile is warm" (Some true)
        (bool_member "cache_hit" r2);
      let stats = reply_of (Server.handle t (Json.Obj [ ("op", Json.Str "stats") ])) in
      Alcotest.(check bool) "stats counts requests" true
        (match Json.member "requests" stats with
        | Some (Json.Int n) -> n = 3
        | _ -> false))

let test_server_latency_percentiles () =
  with_tmpdir (fun dir ->
      let t = Server.create ~cache:(Cache.create ~dir ()) () in
      let compile name =
        ignore
          (Server.handle t
             (Json.Obj
                [
                  ("op", Json.Str "compile");
                  ("source", Json.Str tiny_src);
                  ("name", Json.Str name);
                ]))
      in
      compile "a.c";
      compile "b.c";
      let stats =
        reply_of (Server.handle t (Json.Obj [ ("op", Json.Str "stats") ]))
      in
      match Json.member "latency_s" stats with
      | None -> Alcotest.fail "latency_s missing from stats"
      | Some lat ->
        Alcotest.(check bool) "count = 2" true
          (Json.member "count" lat = Some (Json.Int 2));
        let fnum k =
          match Json.member k lat with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> Alcotest.fail (k ^ " missing from latency_s")
        in
        let p50 = fnum "p50" and p95 = fnum "p95" and p99 = fnum "p99" in
        Alcotest.(check bool) "percentiles positive and ordered" true
          (p50 > 0.0 && p50 <= p95 && p95 <= p99);
        Alcotest.(check bool) "p99 within observed max" true
          (p99 <= fnum "max" +. 1e-9))

let test_server_depth_field () =
  with_tmpdir (fun dir ->
      let t = Server.create ~cache:(Cache.create ~dir ()) () in
      (* a compile without "depth" must not grow a depth echo *)
      let plain =
        reply_of
          (Server.handle t
             (Json.Obj
                [
                  ("op", Json.Str "compile");
                  ("source", Json.Str tiny_src);
                  ("name", Json.Str "tiny.c");
                ]))
      in
      Alcotest.(check (option bool)) "plain compile ok" (Some true)
        (bool_member "ok" plain);
      Alcotest.(check bool) "no depth echo without the field" true
        (Json.member "depth" plain = None);
      (* forcing a depth is accepted, echoed, and keys a distinct
         artifact (the first depth-2 compile must be cold) *)
      let forced =
        reply_of
          (Server.handle t
             (Json.Obj
                [
                  ("op", Json.Str "compile");
                  ("source", Json.Str tiny_src);
                  ("name", Json.Str "tiny.c");
                  ("depth", Json.Int 2);
                ]))
      in
      Alcotest.(check (option bool)) "forced compile ok" (Some true)
        (bool_member "ok" forced);
      Alcotest.(check bool) "depth echoed" true
        (Json.member "depth" forced = Some (Json.Int 2));
      Alcotest.(check (option bool)) "distinct cache key" (Some false)
        (bool_member "cache_hit" forced);
      (* invalid depths are error replies, never crashes *)
      List.iter
        (fun bad ->
          let r =
            reply_of
              (Server.handle t
                 (Json.Obj
                    [
                      ("op", Json.Str "compile");
                      ("source", Json.Str tiny_src);
                      ("depth", bad);
                    ]))
          in
          Alcotest.(check (option bool)) "bad depth rejected" (Some false)
            (bool_member "ok" r))
        [ Json.Int 0; Json.Int (-3); Json.Str "four" ];
      (* workload run: the forced depth reaches the runtime and is
         echoed back *)
      let run =
        reply_of
          (Server.handle t
             (Json.Obj
                [
                  ("op", Json.Str "workload");
                  ("name", Json.Str "mcf");
                  ("run", Json.Bool true);
                  ("jobs", Json.Int 2);
                  ("depth", Json.Int 2);
                ]))
      in
      Alcotest.(check (option bool)) "workload run ok" (Some true)
        (bool_member "ok" run);
      Alcotest.(check bool) "workload echoes depth" true
        (Json.member "depth" run = Some (Json.Int 2)))

let test_server_errors_keep_loop_alive () =
  let t = Server.create ~cache:(Cache.no_cache ()) () in
  let check_err name req =
    match Server.handle t req with
    | `Reply j ->
      Alcotest.(check (option bool)) name (Some false) (bool_member "ok" j);
      Alcotest.(check bool) (name ^ " has message") true
        (match Json.member "error" j with Some (Json.Str _) -> true | _ -> false)
    | `Shutdown _ -> Alcotest.fail (name ^ ": must not shut down")
  in
  check_err "unknown op" (Json.Obj [ ("op", Json.Str "frobnicate") ]);
  check_err "missing op" (Json.Obj [ ("x", Json.Int 1) ]);
  check_err "compile without source"
    (Json.Obj [ ("op", Json.Str "compile") ]);
  check_err "compile with both source and file"
    (Json.Obj
       [
         ("op", Json.Str "compile");
         ("source", Json.Str tiny_src);
         ("file", Json.Str "x.c");
       ]);
  check_err "unknown workload"
    (Json.Obj [ ("op", Json.Str "workload"); ("name", Json.Str "nope") ]);
  check_err "compile error is a reply, not a crash"
    (Json.Obj [ ("op", Json.Str "compile"); ("source", Json.Str "int (") ]);
  (match Server.handle_line t "this is not json" with
  | `Reply line ->
    Alcotest.(check bool) "bad JSON is an error reply" true
      (match Json.of_string line with
      | Ok j -> bool_member "ok" j = Some false
      | Error _ -> false)
  | `Shutdown _ -> Alcotest.fail "bad JSON must not shut down");
  match Server.handle t (Json.Obj [ ("op", Json.Str "shutdown") ]) with
  | `Shutdown j ->
    Alcotest.(check (option bool)) "shutdown acks" (Some true) (bool_member "ok" j)
  | `Reply _ -> Alcotest.fail "shutdown must end the loop"

(* ------------------------------------------------------------------ *)
(* Concurrent serving *)

(* a source heavy enough (many functions, full pipeline + simulation)
   that its compile comfortably outlasts pipe writes and watchdog
   scans *)
let heavy_src tag =
  let b = Buffer.create 4096 in
  Buffer.add_string b "int n = 40;\n";
  for i = 0 to 23 do
    Buffer.add_string b (Printf.sprintf "int arr%d[40];\n" i);
    Buffer.add_string b
      (Printf.sprintf
         "int f%d(int k) { int i = 0; int acc = 0; while (i < n) { arr%d[i] \
          = i * %d + k; if (arr%d[i] > acc) { acc = arr%d[i]; } i = i + 1; } \
          return acc; }\n"
         i i (tag + i + 2) i i)
  done;
  Buffer.add_string b "void main() {\n  int t = 0;\n";
  for i = 0 to 23 do
    Buffer.add_string b (Printf.sprintf "  t = t + f%d(%d);\n" i tag)
  done;
  Buffer.add_string b "  print_int(t);\n}\n";
  Buffer.contents b

let compile_req ?(extra = []) ~id src =
  Json.to_string ~minify:true
    (Json.Obj
       ([
          ("op", Json.Str "compile");
          ("source", Json.Str src);
          ("name", Json.Str (Printf.sprintf "req-%d.c" id));
          ("id", Json.Int id);
        ]
       @ extra))

(* write every line, close (EOF → drain), read replies until the server
   closes its end *)
let serve_session server lines =
  let r_req, w_req = Unix.pipe () and r_rep, w_rep = Unix.pipe () in
  let srv_ic = Unix.in_channel_of_descr r_req
  and srv_oc = Unix.out_channel_of_descr w_rep in
  let srv =
    Domain.spawn (fun () ->
        Server.serve server srv_ic srv_oc;
        close_out_noerr srv_oc)
  in
  let to_srv = Unix.out_channel_of_descr w_req
  and from_srv = Unix.in_channel_of_descr r_rep in
  List.iter
    (fun l ->
      output_string to_srv l;
      output_char to_srv '\n')
    lines;
  close_out to_srv;
  let rec read acc =
    match input_line from_srv with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let replies = read [] in
  Domain.join srv;
  close_in_noerr from_srv;
  close_in_noerr srv_ic;
  List.map
    (fun l ->
      match Json.of_string l with
      | Ok j -> j
      | Error e -> Alcotest.fail ("reply is not JSON: " ^ e))
    replies

let int_member k j =
  match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

let test_server_concurrent_handle_stress () =
  with_tmpdir (fun dir ->
      let t = Server.create ~cache:(Cache.create ~dir ()) () in
      let n_domains = 4 and per = 12 in
      let worker d =
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let req =
                if i mod 3 = 0 then
                  Json.Obj
                    [
                      ("op", Json.Str "compile");
                      ("source", Json.Str tiny_src);
                      ("name", Json.Str (Printf.sprintf "d%d.c" d));
                    ]
                else Json.Obj [ ("op", Json.Str "stats") ]
              in
              match Server.handle t req with
              | `Reply r ->
                if bool_member "ok" r <> Some true then
                  Alcotest.fail "concurrent request failed"
              | `Shutdown _ -> Alcotest.fail "unexpected shutdown"
            done)
      in
      List.iter Domain.join (List.init n_domains worker);
      let stats =
        reply_of (Server.handle t (Json.Obj [ ("op", Json.Str "stats") ]))
      in
      Alcotest.(check (option int)) "no request lost or double-counted"
        (Some ((n_domains * per) + 1))
        (int_member "requests" stats);
      Alcotest.(check (option int)) "no errors" (Some 0)
        (int_member "errors" stats))

let test_server_serve_concurrent_pipes () =
  with_tmpdir (fun dir ->
      let server = Server.create ~cache:(Cache.create ~dir ()) ~jobs:2 () in
      let lines =
        List.init 4 (fun i -> compile_req ~id:i (heavy_src (100 + (7 * i))))
        @ [ {|{"op":"shutdown"}|} ]
      in
      let replies = serve_session server lines in
      Alcotest.(check int) "one reply per request plus the ack" 5
        (List.length replies);
      List.iter
        (fun r ->
          Alcotest.(check (option int)) "protocol version tagged"
            (Some Server.protocol_version) (int_member "proto" r);
          Alcotest.(check (option bool)) "reply ok" (Some true)
            (bool_member "ok" r))
        replies;
      let ids = List.filter_map (int_member "id") replies in
      Alcotest.(check (list int)) "every id answered exactly once"
        [ 0; 1; 2; 3 ]
        (List.sort compare ids);
      (* the ack leaves last: outstanding work drains before shutdown *)
      match List.rev replies with
      | last :: _ ->
        Alcotest.(check bool) "shutdown ack is the final reply" true
          (Json.member "op" last = Some (Json.Str "shutdown"))
      | [] -> Alcotest.fail "no replies")

let test_server_coalescing () =
  with_tmpdir (fun dir ->
      let server = Server.create ~cache:(Cache.create ~dir ()) ~jobs:2 () in
      let src = heavy_src 555 in
      (* identical requests modulo id: one leader compiles, the rest
         attach to it in flight *)
      let lines =
        List.init 6 (fun i ->
            Json.to_string ~minify:true
              (Json.Obj
                 [
                   ("op", Json.Str "compile");
                   ("source", Json.Str src);
                   ("name", Json.Str "same.c");
                   ("id", Json.Int i);
                 ]))
      in
      let replies = serve_session server lines in
      Alcotest.(check int) "all replied" 6 (List.length replies);
      List.iter
        (fun r ->
          Alcotest.(check (option bool)) "all ok" (Some true)
            (bool_member "ok" r))
        replies;
      let coalesced =
        List.length
          (List.filter (fun r -> bool_member "coalesced" r = Some true) replies)
      in
      Alcotest.(check bool) "followers coalesced onto the leader" true
        (coalesced >= 1);
      Alcotest.(check bool) "the leader itself is never coalesced" true
        (coalesced < 6))

let test_server_overloaded () =
  with_tmpdir (fun dir ->
      let server =
        Server.create ~cache:(Cache.create ~dir ()) ~jobs:2 ~queue_max:1 ()
      in
      (* distinct heavy sources sent back-to-back: the loop ingests them
         far faster than one worker slot can drain *)
      let lines =
        List.init 6 (fun i -> compile_req ~id:i (heavy_src (300 + (11 * i))))
      in
      let replies = serve_session server lines in
      Alcotest.(check int) "all replied" 6 (List.length replies);
      let code r =
        match Json.member "code" r with Some (Json.Str s) -> Some s | _ -> None
      in
      let shed =
        List.filter (fun r -> code r = Some "overloaded") replies
      in
      Alcotest.(check bool) "backpressure sheds load" true (shed <> []);
      List.iter
        (fun r ->
          Alcotest.(check (option bool)) "shed replies are errors" (Some false)
            (bool_member "ok" r))
        shed;
      Alcotest.(check bool) "some requests still served" true
        (List.exists (fun r -> bool_member "ok" r = Some true) replies))

let test_server_timeout () =
  with_tmpdir (fun dir ->
      let server =
        Server.create ~cache:(Cache.create ~dir ()) ~jobs:2 ~timeout_s:0.005 ()
      in
      let replies = serve_session server [ compile_req ~id:9 (heavy_src 777) ] in
      Alcotest.(check int) "one reply" 1 (List.length replies);
      let r = List.hd replies in
      Alcotest.(check (option bool)) "timed-out reply is an error" (Some false)
        (bool_member "ok" r);
      Alcotest.(check bool) "code is timeout" true
        (Json.member "code" r = Some (Json.Str "timeout"));
      Alcotest.(check (option int)) "id echoed on the timeout reply" (Some 9)
        (int_member "id" r))

let suite =
  [
    Alcotest.test_case "fingerprint layout-independent" `Quick
      test_fingerprint_layout_independent;
    Alcotest.test_case "fingerprint config-sensitive" `Quick
      test_fingerprint_config_sensitive;
    Alcotest.test_case "fingerprint profile-sensitive" `Quick
      test_fingerprint_profile_sensitive;
    Alcotest.test_case "fingerprint is hex" `Quick test_fingerprint_is_hex;
    Alcotest.test_case "cache roundtrip + persistence" `Quick test_cache_roundtrip;
    Alcotest.test_case "corruption is a miss" `Quick test_cache_corruption_is_a_miss;
    Alcotest.test_case "flipped payload byte is a miss" `Quick
      test_cache_flipped_byte_is_a_miss;
    Alcotest.test_case "schema mismatch is a miss" `Quick
      test_cache_schema_mismatch_is_a_miss;
    Alcotest.test_case "no-cache object" `Quick test_no_cache;
    Alcotest.test_case "sharded layout" `Quick test_cache_sharded_layout;
    Alcotest.test_case "LRU eviction order" `Quick test_cache_lru_eviction_order;
    Alcotest.test_case "byte bound held on disk" `Quick test_cache_byte_bound;
    Alcotest.test_case "concurrent writers" `Quick test_cache_concurrent_writers;
    Alcotest.test_case "batch outcomes in order" `Quick test_batch_outcomes;
    Alcotest.test_case "digest clustering" `Quick test_batch_cluster;
    Alcotest.test_case "clustered run" `Quick test_batch_run_clustered;
    Alcotest.test_case "batch latency histogram" `Quick test_batch_latency;
    Alcotest.test_case "batch timeout latency skipped" `Quick
      test_batch_timeout_latency_skipped;
    Alcotest.test_case "batch timeout" `Quick test_batch_timeout;
    Alcotest.test_case "server latency percentiles" `Quick
      test_server_latency_percentiles;
    Alcotest.test_case "cached compile determinism" `Quick
      test_cached_compile_determinism;
    Alcotest.test_case "cached compile raises on bad source" `Quick
      test_cached_compile_raises_on_bad_source;
    Alcotest.test_case "server compile + stats" `Quick test_server_compile_and_stats;
    Alcotest.test_case "server depth field" `Slow test_server_depth_field;
    Alcotest.test_case "server errors keep loop alive" `Quick
      test_server_errors_keep_loop_alive;
    Alcotest.test_case "concurrent handle stress" `Quick
      test_server_concurrent_handle_stress;
    Alcotest.test_case "concurrent serve over pipes" `Quick
      test_server_serve_concurrent_pipes;
    Alcotest.test_case "single-flight coalescing" `Quick test_server_coalescing;
    Alcotest.test_case "backpressure sheds load" `Quick test_server_overloaded;
    Alcotest.test_case "request timeout" `Quick test_server_timeout;
  ]
