(** Profile-database tests: lock-file exclusion, additive convergence
    of concurrent multi-domain ingest, monotone decay, corruption
    degrading to a lookup miss, LRU bounds, and the zero-flag
    auto-lookup path through the cached compiler and the server. *)

module Json = Spt_obs.Json
module Store = Spt_feedback.Profile_store
module Profdb = Spt_profdb.Profdb
module Lockfile = Spt_profdb.Lockfile
module Cache = Spt_service.Artifact_cache
module Cached = Spt_service.Cached
module Server = Spt_service.Server
module Pipeline = Spt_driver.Pipeline

let with_tmpdir f =
  let dir = Filename.temp_file "spt_profdb" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; dir ])))
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let obs ~iters ~violations =
  {
    Store.o_iters = iters;
    o_forks = iters;
    o_commits = iters - violations;
    o_violations = violations;
    o_faults = 0;
    o_kills = 0;
    o_despecs = 0;
    o_serial_reexecs = 0;
    o_stale_other = 0;
    o_stale_regions = [];
    o_svp = [];
  }

(* a telemetry-only store: one loop observation under main@bb2 *)
let store_with ~iters ~violations () =
  let s = Store.empty () in
  Store.add_observation s ~func:"main" ~header:2 (obs ~iters ~violations);
  s

let db ?decay ?max_entries dir =
  Profdb.create ?decay ?max_entries ~tool:"test-tool"
    ~dir:(Filename.concat dir "db") ()

let violations_of store =
  match Store.observations store with
  | [ (("main", 2), o) ] -> o.Store.o_violations
  | other ->
    Alcotest.failf "expected one main@bb2 observation, got %d"
      (List.length other)

(* ------------------------------------------------------------------ *)
(* Lockfile *)

let test_lockfile_mutual_exclusion () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "lock" in
      (* a deliberately racy read-modify-write: only mutual exclusion
         across the 4 domains keeps the final count exact *)
      let counter = ref 0 in
      let ok = Atomic.make 0 in
      let worker () =
        for _ = 1 to 50 do
          match
            Lockfile.with_lock path (fun () ->
                let v = !counter in
                Domain.cpu_relax ();
                counter := v + 1)
          with
          | Some () -> Atomic.incr ok
          | None -> ()
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains;
      Alcotest.(check int) "every acquisition succeeded" 200 (Atomic.get ok);
      Alcotest.(check int) "no increment lost" 200 !counter)

let test_lockfile_timeout_leaves_f_unrun () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "lock" in
      let held = Option.get (Lockfile.acquire path) in
      let ran = ref false in
      let r = Lockfile.with_lock ~timeout_s:0.05 path (fun () -> ran := true) in
      Alcotest.(check bool) "timed out" true (r = None);
      Alcotest.(check bool) "f not run on timeout" false !ran;
      Lockfile.release held;
      Alcotest.(check bool)
        "acquirable after release" true
        (Lockfile.with_lock ~timeout_s:1.0 path (fun () -> ()) = Some ()))

(* ------------------------------------------------------------------ *)
(* Ingest semantics *)

let test_concurrent_ingest_is_additive () =
  with_tmpdir (fun dir ->
      (* decay 1.0: ingest is a pure additive merge, so 4 domains x 5
         ingests of one violation each must converge to exactly 20 *)
      let d = db ~decay:1.0 dir in
      let fingerprint = "abc123" in
      let worker () =
        for _ = 1 to 5 do
          match
            Profdb.ingest d ~fingerprint (store_with ~iters:10 ~violations:1 ())
          with
          | Some _ -> ()
          | None -> Alcotest.fail "ingest dropped (lock timeout)"
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains;
      match Profdb.lookup d ~fingerprint with
      | None -> Alcotest.fail "no entry after 20 ingests"
      | Some (store, generation) ->
        Alcotest.(check int) "one generation per ingest" 20 generation;
        Alcotest.(check int) "violations sum additively" 20
          (violations_of store))

let test_decay_is_monotone_to_zero () =
  with_tmpdir (fun dir ->
      let d = db ~decay:0.5 dir in
      let fingerprint = "decayme" in
      ignore (Profdb.ingest d ~fingerprint (store_with ~iters:80 ~violations:8 ()));
      (* each empty ingest halves (floor) the accumulated counts *)
      let counts =
        List.map
          (fun _ ->
            ignore (Profdb.ingest d ~fingerprint (Store.empty ()));
            match Profdb.lookup d ~fingerprint with
            | Some (store, _) -> violations_of store
            | None -> Alcotest.fail "entry vanished mid-decay")
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int))
        "floor-halving: 8 -> 4 -> 2 -> 1 -> 0" [ 4; 2; 1; 0 ] counts;
      (* enough further decay ages the observation out entirely *)
      for _ = 1 to 8 do
        ignore (Profdb.ingest d ~fingerprint (Store.empty ()))
      done;
      match Profdb.lookup d ~fingerprint with
      | Some (store, generation) ->
        Alcotest.(check bool) "store decayed to empty" true
          (Store.is_empty store);
        Alcotest.(check int) "generations kept counting" 13 generation
      | None -> Alcotest.fail "entry vanished after decay")

(* ------------------------------------------------------------------ *)
(* Corruption and versioning: everything degrades to a miss *)

let test_malfunction_degrades_to_miss () =
  with_tmpdir (fun dir ->
      let d = db ~decay:1.0 dir in
      let fingerprint = "deadbeef" in
      ignore (Profdb.ingest d ~fingerprint (store_with ~iters:10 ~violations:3 ()));
      let path = Filename.concat (Filename.concat dir "db") (fingerprint ^ ".json") in
      Alcotest.(check bool) "entry file exists" true (Sys.file_exists path);
      (* wrong tool version: a reader from another tool ignores it *)
      let other =
        Profdb.create ~tool:"other-tool" ~dir:(Filename.concat dir "db") ()
      in
      Alcotest.(check bool)
        "incompatible tool version misses" true
        (Profdb.lookup other ~fingerprint = None);
      (* stamped-digest mismatch: flip the payload without re-stamping *)
      let valid = read_file path in
      let tampered =
        (* bump the first digit after the violations key *)
        let needle = "\"violations\":" in
        match
          let rec find i =
            if i + String.length needle > String.length valid then None
            else if String.sub valid i (String.length needle) = needle then
              Some (i + String.length needle)
            else find (i + 1)
          in
          find 0
        with
        | None -> Alcotest.fail "entry JSON lacks a violations field"
        | Some at ->
          let b = Bytes.of_string valid in
          Bytes.set b at (Char.chr (Char.code (Bytes.get b at) + 1));
          Bytes.to_string b
      in
      let oc = open_out_bin path in
      output_string oc tampered;
      close_out oc;
      Alcotest.(check bool)
        "digest mismatch misses" true
        (Profdb.lookup d ~fingerprint = None);
      (* garbage bytes *)
      let oc = open_out_bin path in
      output_string oc "this is not json";
      close_out oc;
      Alcotest.(check bool) "garbage misses" true
        (Profdb.lookup d ~fingerprint = None);
      let listed, invalid = Profdb.entries d in
      Alcotest.(check int) "no valid entries listed" 0 (List.length listed);
      Alcotest.(check int) "census counts the invalid file" 1 invalid;
      (* gc removes it *)
      let dropped, evicted = Profdb.gc d in
      Alcotest.(check (pair int int)) "gc drops it" (1, 0) (dropped, evicted);
      (* and a fresh ingest recovers the key *)
      ignore (Profdb.ingest d ~fingerprint (store_with ~iters:10 ~violations:1 ()));
      match Profdb.lookup d ~fingerprint with
      | Some (_, generation) ->
        Alcotest.(check int) "recovered at generation 1" 1 generation
      | None -> Alcotest.fail "ingest after corruption did not recover")

let test_max_entries_evicts_lru () =
  with_tmpdir (fun dir ->
      let d = db ~decay:1.0 ~max_entries:2 dir in
      let ingest fp = ignore (Profdb.ingest d ~fingerprint:fp (store_with ~iters:5 ~violations:1 ())) in
      let entry fp = Filename.concat (Filename.concat dir "db") (fp ^ ".json") in
      let now = Unix.gettimeofday () in
      ingest "aa";
      Unix.utimes (entry "aa") (now -. 100.0) (now -. 100.0);
      ingest "bb";
      Unix.utimes (entry "bb") (now -. 50.0) (now -. 50.0);
      ingest "cc";
      let listed, _ = Profdb.entries d in
      Alcotest.(check (list string))
        "least-recently-updated entry evicted" [ "bb"; "cc" ]
        (List.map (fun e -> e.Profdb.e_fingerprint) listed))

let test_publish_replaces_without_merge () =
  with_tmpdir (fun dir ->
      let d = db ~decay:1.0 dir in
      let fingerprint = "pub" in
      ignore (Profdb.ingest d ~fingerprint (store_with ~iters:10 ~violations:6 ()));
      (* publish a store that already contains the entry (the adapt
         shape): counts must NOT double *)
      ignore (Profdb.publish d ~fingerprint (store_with ~iters:10 ~violations:6 ()));
      match Profdb.lookup d ~fingerprint with
      | Some (store, generation) ->
        Alcotest.(check int) "publish bumps the generation" 2 generation;
        Alcotest.(check int) "publish replaced, not merged" 6
          (violations_of store)
      | None -> Alcotest.fail "published entry missing")

(* ------------------------------------------------------------------ *)
(* Auto-lookup: warm fingerprints change the compile with zero flags *)

let feedback_src = read_file "../examples/src/feedback_loop.c"

let n_spt_loops_of (o : Cached.outcome) =
  match Json.member "n_spt_loops" o.Cached.eval with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.fail "outcome eval lacks n_spt_loops"

let test_cached_auto_lookup_changes_partition () =
  with_tmpdir (fun dir ->
      let cache = Cache.create ~dir () in
      let config = Spt_driver.Config.best in
      let cold = Cached.compile ~cache ~config ~name:"demo" feedback_src in
      Alcotest.(check (option int))
        "cold compile is unguided" None cold.Cached.profile_gen;
      Alcotest.(check bool) "static selection picked the loop" true
        (n_spt_loops_of cold >= 1);
      (* one real run's telemetry, ingested under the program's
         fingerprint — exactly what `run --parallel --cache-dir` does *)
      let runtime_config =
        { (Spt_runtime.Runtime.default_config ()) with oracle = false }
      in
      let pr = Pipeline.run_parallel ~config ~jobs:2 ~runtime_config feedback_src in
      let fresh = Store.empty () in
      Spt_feedback.Telemetry.record fresh pr.Pipeline.pr_spt
        pr.Pipeline.pr_runtime;
      let pdb = Profdb.for_cache ~tool:Cached.tool_version (Cache.dir cache) in
      let fingerprint =
        Spt_service.Fingerprint.program (Pipeline.front_end feedback_src)
      in
      Alcotest.(check (option int))
        "telemetry ingested" (Some 1)
        (Profdb.ingest pdb ~fingerprint fresh);
      let warm = Cached.compile ~cache ~config ~name:"demo" feedback_src in
      Alcotest.(check (option int))
        "warm compile is database-guided" (Some 1) warm.Cached.profile_gen;
      Alcotest.(check bool)
        "guiding store changes the cache key" true
        (warm.Cached.key <> cold.Cached.key);
      Alcotest.(check bool)
        "observed misspeculation rejects the loop" true
        (n_spt_loops_of warm < n_spt_loops_of cold);
      (* an explicit profile always wins over the database *)
      let explicit =
        Cached.compile ~cache ~config ~profile:(Store.empty ()) ~name:"demo"
          feedback_src
      in
      Alcotest.(check (option int))
        "explicit profile bypasses the database" None
        explicit.Cached.profile_gen)

(* ------------------------------------------------------------------ *)
(* Server: the workload run op ingests, stats exposes the census *)

let reply_of = function
  | `Reply r -> r
  | `Shutdown r -> r

let test_server_run_op_feeds_database () =
  with_tmpdir (fun dir ->
      let t = Server.create ~cache:(Cache.create ~dir ()) () in
      let req =
        Json.Obj
          [
            ("op", Json.Str "workload");
            ("name", Json.Str "mcf");
            ("run", Json.Bool true);
            ("jobs", Json.Int 2);
          ]
      in
      let r1 = reply_of (Server.handle t req) in
      Alcotest.(check (option Alcotest.bool))
        "run reply ok" (Some true)
        (match Json.member "ok" r1 with
        | Some (Json.Bool b) -> Some b
        | _ -> None);
      Alcotest.(check bool) "first run is unguided" true
        (Json.member "guided" r1 = Some (Json.Bool false));
      Alcotest.(check bool) "first run ingested generation 1" true
        (Json.member "profdb_gen" r1 = Some (Json.Int 1));
      let r2 = reply_of (Server.handle t req) in
      Alcotest.(check bool) "second run is guided by generation 1" true
        (Json.member "profdb_gen_in" r2 = Some (Json.Int 1));
      Alcotest.(check bool) "second run ingested generation 2" true
        (Json.member "profdb_gen" r2 = Some (Json.Int 2));
      let stats =
        reply_of (Server.handle t (Json.Obj [ ("op", Json.Str "stats") ]))
      in
      match Json.member "profdb" stats with
      | Some census ->
        Alcotest.(check bool) "stats census is schema-tagged" true
          (Json.member "schema" census = Some (Json.Str Profdb.schema));
        Alcotest.(check bool) "stats census lists the entry" true
          (Json.member "entries" census = Some (Json.Int 1))
      | None -> Alcotest.fail "stats reply lacks the profdb census")

(* ------------------------------------------------------------------ *)
(* Artifact-cache index: two processes' images merge under the lock *)

let test_cache_index_merge_keeps_foreign_keys () =
  with_tmpdir (fun dir ->
      let c1 = Cache.create ~dir () in
      let c2 = Cache.create ~dir () in
      Cache.store c1 "key-one" (Json.Obj [ ("v", Json.Int 1) ]);
      Cache.store c2 "key-two" (Json.Obj [ ("v", Json.Int 2) ]);
      (* each instance only ever saw its own store, but the on-disk
         index must hold both: persist_index merges under index.lock
         instead of clobbering the other writer's image *)
      let c3 = Cache.create ~dir () in
      Alcotest.(check bool) "first writer's key survives" true
        (Cache.find c3 "key-one" <> None);
      Alcotest.(check bool) "second writer's key survives" true
        (Cache.find c3 "key-two" <> None))

let suite =
  [
    Alcotest.test_case "lockfile: 4-domain mutual exclusion" `Quick
      test_lockfile_mutual_exclusion;
    Alcotest.test_case "lockfile: timeout leaves f unrun" `Quick
      test_lockfile_timeout_leaves_f_unrun;
    Alcotest.test_case "ingest: concurrent ingest is additive" `Quick
      test_concurrent_ingest_is_additive;
    Alcotest.test_case "ingest: decay is monotone to zero" `Quick
      test_decay_is_monotone_to_zero;
    Alcotest.test_case "lookup: malfunction degrades to miss" `Quick
      test_malfunction_degrades_to_miss;
    Alcotest.test_case "bounds: max_entries evicts LRU" `Quick
      test_max_entries_evicts_lru;
    Alcotest.test_case "publish: replaces without merging" `Quick
      test_publish_replaces_without_merge;
    Alcotest.test_case "cached: auto-lookup changes the partition" `Quick
      test_cached_auto_lookup_changes_partition;
    Alcotest.test_case "server: run op feeds the database" `Quick
      test_server_run_op_feeds_database;
    Alcotest.test_case "cache: index merge keeps foreign keys" `Quick
      test_cache_index_merge_keeps_foreign_keys;
  ]
