(** Profile-guided feedback tests: the persistent store's canonical
    serialization (save/load byte-stability, commutative merge,
    corruption degrading to empty, count-sensitive digests), the
    runtime-telemetry bridge, and the adaptive re-partitioning loop on
    a workload whose seeded dependence pattern makes the static
    partition mispredict. *)

module Json = Spt_obs.Json
module Store = Spt_feedback.Profile_store
module Telemetry = Spt_feedback.Telemetry
module Adapt = Spt_feedback.Adapt
module Pipeline = Spt_driver.Pipeline

let with_tmpdir f =
  let dir = Filename.temp_file "spt_feedback" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; dir ])))
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* replace the first occurrence of [needle] in [hay] with [sub] *)
let replace hay needle sub =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then hay
    else if String.sub hay i nn = needle then
      String.sub hay 0 i ^ sub ^ String.sub hay (i + nn) (nh - i - nn)
    else go (i + 1)
  in
  go 0

let loop_src =
  {|
int n = 40;
int a[40];
int b[40];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = b[i] * 2 + 1;
    i = i + 1;
  }
  print_int(a[7]);
}
|}

let other_src =
  {|
int m = 25;
int xs[25];
void main() {
  int i = 0;
  int acc = 3;
  while (i < m) {
    xs[i] = acc + i;
    acc = acc + (i & 3);
    i = i + 1;
  }
  print_int(acc);
}
|}

(* the committed demo workload: static selection, observed
   misspeculation well above the predicted rate *)
let feedback_src = read_file "../examples/src/feedback_loop.c"

(* a store holding real profile counts for [src] *)
let profiled_store src =
  let s = Store.empty () in
  let ep, dp, vp = Pipeline.profile_source src in
  Store.absorb_profiles s ep dp vp;
  s

let an_obs =
  {
    Store.o_iters = 100;
    o_forks = 200;
    o_commits = 80;
    o_violations = 20;
    o_faults = 1;
    o_kills = 3;
    o_despecs = 0;
    o_serial_reexecs = 21;
    o_stale_other = 2;
    o_stale_regions = [ (4, 15); (7, 3) ];
    o_svp = [ (3, (10, 8, 2)) ];
  }

(* ------------------------------------------------------------------ *)
(* Canonical serialization *)

let test_save_load_byte_stable () =
  with_tmpdir (fun dir ->
      let s = profiled_store loop_src in
      Store.add_observation s ~func:"main" ~header:2 an_obs;
      let p1 = Filename.concat dir "a.json" in
      let p2 = Filename.concat dir "b.json" in
      Store.save s p1;
      let s' = Store.load p1 in
      Store.save s' p2;
      Alcotest.(check string)
        "save/load/save round-trips byte-identically" (read_file p1)
        (read_file p2);
      Alcotest.(check string)
        "digest survives the round-trip" (Store.digest s) (Store.digest s'))

let test_merge_commutative () =
  let a () = profiled_store loop_src in
  let b () =
    let s = profiled_store other_src in
    Store.add_observation s ~func:"main" ~header:2 an_obs;
    s
  in
  Alcotest.(check string)
    "digest (merge a b) = digest (merge b a)"
    (Store.digest (Store.merge (a ()) (b ())))
    (Store.digest (Store.merge (b ()) (a ())));
  Alcotest.(check string)
    "empty is a merge identity"
    (Store.digest (a ()))
    (Store.digest (Store.merge (a ()) (Store.empty ())))

let test_merge_adds_counts () =
  (* merging a store with itself doubles every count, behaving as one
     run twice as long — observable through the telemetry *)
  let s = Store.empty () in
  Store.add_observation s ~func:"main" ~header:2 an_obs;
  let d = Store.merge s s in
  match Store.observations d with
  | [ ((("main", 2) as _k), o) ] ->
    Alcotest.(check int) "iters doubled" 200 o.Store.o_iters;
    Alcotest.(check int) "violations doubled" 40 o.Store.o_violations;
    Alcotest.(check (list (pair int int)))
      "per-region stales doubled"
      [ (4, 30); (7, 6) ]
      o.Store.o_stale_regions
  | l -> Alcotest.failf "expected one observation, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Corruption degrades to empty *)

let test_load_missing_is_empty () =
  Alcotest.(check bool)
    "missing file loads as empty" true
    (Store.is_empty (Store.load "/nonexistent/spt/profile.json"))

let test_load_corrupt_is_empty () =
  with_tmpdir (fun dir ->
      let p = Filename.concat dir "p.json" in
      write_file p "{ \"schema\": \"spt-profile-v1\", garbage";
      Alcotest.(check bool)
        "unparseable JSON loads as empty" true
        (Store.is_empty (Store.load p)))

let test_load_truncated_is_empty () =
  with_tmpdir (fun dir ->
      let s = profiled_store loop_src in
      let p = Filename.concat dir "p.json" in
      Store.save s p;
      let whole = read_file p in
      write_file p (String.sub whole 0 (String.length whole / 2));
      Alcotest.(check bool)
        "truncated file loads as empty" true
        (Store.is_empty (Store.load p)))

let test_load_version_bump_is_empty () =
  with_tmpdir (fun dir ->
      let s = profiled_store loop_src in
      let p = Filename.concat dir "p.json" in
      Store.save s p;
      let whole = read_file p in
      (* a future schema tag must not be misread as today's *)
      write_file p (replace whole "spt-profile-v1" "spt-profile-v99");
      Alcotest.(check bool)
        "version-bumped file loads as empty" true
        (Store.is_empty (Store.load p)))

(* ------------------------------------------------------------------ *)
(* Digest sensitivity *)

let test_digest_stable_for_equal_counts () =
  Alcotest.(check string)
    "same counts, same digest"
    (Store.digest (profiled_store loop_src))
    (Store.digest (profiled_store loop_src))

let test_digest_changes_with_counts () =
  let a = profiled_store loop_src in
  let b = profiled_store loop_src in
  Alcotest.(check string)
    "identical before divergence" (Store.digest a) (Store.digest b);
  Store.add_observation b ~func:"main" ~header:2 an_obs;
  Alcotest.(check bool)
    "telemetry changes the digest" false
    (Store.digest a = Store.digest b);
  Store.add_observation a ~func:"main" ~header:2 an_obs;
  Alcotest.(check string)
    "equal again once counts agree" (Store.digest a) (Store.digest b);
  Store.add_observation a ~func:"main" ~header:2 an_obs;
  Alcotest.(check bool)
    "repeating an observation adds, not replaces" false
    (Store.digest a = Store.digest b)

let test_empty_digest_distinct () =
  let e = Store.empty () in
  Alcotest.(check bool)
    "empty and profiled stores differ" false
    (Store.digest e = Store.digest (profiled_store loop_src))

(* ------------------------------------------------------------------ *)
(* Telemetry bridge *)

let test_observation_roundtrip () =
  let s = Store.empty () in
  Store.add_observation s ~func:"f" ~header:9 an_obs;
  Store.add_observation s ~func:"a" ~header:1 an_obs;
  match Store.observations s with
  | [ (("a", 1), _); (("f", 9), o) ] ->
    Alcotest.(check int) "violations survive" 20 o.Store.o_violations;
    Alcotest.(check (list (pair int int)))
      "regions sorted and intact"
      [ (4, 15); (7, 3) ]
      o.Store.o_stale_regions
  | l -> Alcotest.failf "expected 2 sorted observations, got %d" (List.length l)

let test_runtime_export () =
  (* run the demo workload on the real runtime and check the exported
     telemetry is the runtime's own accounting *)
  let pr = Pipeline.run_parallel ~jobs:2 feedback_src in
  let s = Store.empty () in
  Telemetry.record s pr.Pipeline.pr_spt pr.Pipeline.pr_runtime;
  match Store.observations s with
  | [] -> Alcotest.fail "expected telemetry for the transformed loop"
  | obs ->
    let total_viol =
      List.fold_left (fun acc (_, o) -> acc + o.Store.o_violations) 0 obs
    in
    let rt_viol =
      List.fold_left
        (fun acc (_, (st : Spt_runtime.Runtime.loop_stats)) ->
          acc + st.Spt_runtime.Runtime.violations)
        0 pr.Pipeline.pr_runtime.Spt_runtime.Runtime.stats
    in
    Alcotest.(check int) "violations match the runtime" rt_viol total_viol;
    Alcotest.(check bool)
      "the seeded pattern misspeculates" true (total_viol > 0)

(* ------------------------------------------------------------------ *)
(* The adaptive loop end-to-end *)

let test_adapt_rejects_mispredicted_loop () =
  let o = Adapt.run ~jobs:2 ~iters:4 feedback_src in
  let first = List.hd o.Adapt.iterations in
  let last = List.nth o.Adapt.iterations (List.length o.Adapt.iterations - 1) in
  Alcotest.(check bool)
    "the static compile selects the loop" true
    (first.Adapt.it_partitions <> []);
  Alcotest.(check bool)
    "the static partition misspeculates" true
    (first.Adapt.it_violations > 0);
  Alcotest.(check bool)
    "feedback changes the partition" true
    (List.exists (fun it -> it.Adapt.it_changed) o.Adapt.iterations);
  Alcotest.(check bool)
    "re-partitioning lowers measured misspeculation" true
    (last.Adapt.it_violations < first.Adapt.it_violations);
  Alcotest.(check bool) "the loop converges" true o.Adapt.converged;
  (* accumulated state: profiles plus at least one loop's telemetry *)
  Alcotest.(check bool)
    "store carries profiles" true
    (Store.has_profiles o.Adapt.store);
  Alcotest.(check bool)
    "store carries telemetry" true
    (Store.observations o.Adapt.store <> [])

let test_adapt_report_renders () =
  let o = Adapt.run ~jobs:2 ~iters:2 loop_src in
  let txt = Adapt.report o in
  Alcotest.(check bool) "mentions convergence" true (contains txt "converged");
  match Adapt.to_json o with
  | Json.Obj kvs ->
    Alcotest.(check bool) "json carries the schema tag" true
      (List.assoc_opt "schema" kvs = Some (Json.Str "spt-adapt-v1"))
  | _ -> Alcotest.fail "adapt JSON must be an object"

let suite =
  [
    Alcotest.test_case "save/load is byte-stable" `Quick
      test_save_load_byte_stable;
    Alcotest.test_case "merge is commutative" `Quick test_merge_commutative;
    Alcotest.test_case "merge adds counts" `Quick test_merge_adds_counts;
    Alcotest.test_case "missing file loads empty" `Quick
      test_load_missing_is_empty;
    Alcotest.test_case "corrupt file loads empty" `Quick
      test_load_corrupt_is_empty;
    Alcotest.test_case "truncated file loads empty" `Quick
      test_load_truncated_is_empty;
    Alcotest.test_case "version bump loads empty" `Quick
      test_load_version_bump_is_empty;
    Alcotest.test_case "digest stable for equal counts" `Quick
      test_digest_stable_for_equal_counts;
    Alcotest.test_case "digest tracks counts" `Quick
      test_digest_changes_with_counts;
    Alcotest.test_case "empty digest distinct" `Quick
      test_empty_digest_distinct;
    Alcotest.test_case "observations round-trip" `Quick
      test_observation_roundtrip;
    Alcotest.test_case "runtime telemetry exports" `Quick test_runtime_export;
    Alcotest.test_case "adapt rejects a mispredicted loop" `Quick
      test_adapt_rejects_mispredicted_loop;
    Alcotest.test_case "adapt report renders" `Quick test_adapt_report_renders;
  ]
