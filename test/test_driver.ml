(** End-to-end driver tests: the two-pass pipeline on small programs
    under all three configurations, workload smoke tests, and the
    report generators. *)

open Spt_driver

let mixed_program =
  {|
int n = 3000;
int a[3000];
int b[3000];
int hist[64];
int checksum;

int mixer(int x) { return (x * 73 + 11) & 1023; }

void main() {
  int i;
  srand(17);
  for (i = 0; i < n; i = i + 1) { b[i] = rand() & 1023; }
  /* parallel: per-element transform through a call */
  for (i = 0; i < n; i = i + 1) { a[i] = mixer(b[i]) + (b[i] >> 3); }
  /* conflict-prone: histogram */
  for (i = 0; i < 64; i = i + 1) { hist[i] = 0; }
  for (i = 0; i < n; i = i + 1) {
    int h = a[i] & 63;
    hist[h] = hist[h] + 1;
  }
  /* serial: running recurrence */
  int x = 1;
  for (i = 0; i < n; i = i + 1) { x = (x * 31 + a[i]) & 65535; }
  checksum = x + hist[0] + hist[63] + a[n - 1];
  print_int(checksum);
}
|}

let test_all_configs_correct () =
  List.iter
    (fun config ->
      let e = Pipeline.evaluate ~config mixed_program in
      Alcotest.(check bool)
        (config.Config.name ^ " outputs match")
        true e.Pipeline.outputs_match;
      Alcotest.(check bool)
        (config.Config.name ^ " does no major harm")
        true
        (e.Pipeline.speedup > 0.95))
    Config.all

let test_config_ordering () =
  (* more information never hurts much: best >= basic - noise *)
  let speedup config = (Pipeline.evaluate ~config mixed_program).Pipeline.speedup in
  let basic = speedup Config.basic in
  let best = speedup Config.best in
  Alcotest.(check bool)
    (Printf.sprintf "best (%.3f) >= basic (%.3f) - 3%%" best basic)
    true
    (best >= basic -. 0.03)

let test_loop_records_complete () =
  let e = Pipeline.evaluate ~config:Config.best mixed_program in
  (* every loop of the program appears exactly once in the records *)
  let keys =
    List.map
      (fun lr -> (lr.Pipeline.lr_func, lr.Pipeline.lr_header))
      e.Pipeline.loops
  in
  Alcotest.(check int) "no duplicate records" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "several loops analyzed" true (List.length keys >= 4);
  (* selected records carry cost, pre-fork size and a loop id *)
  List.iter
    (fun lr ->
      if lr.Pipeline.lr_decision = Pipeline.Selected then begin
        Alcotest.(check bool) "cost present" true (lr.Pipeline.lr_cost <> None);
        Alcotest.(check bool) "prefork present" true
          (lr.Pipeline.lr_prefork_size <> None);
        Alcotest.(check bool) "loop id present" true (lr.Pipeline.lr_loop_id <> None)
      end)
    e.Pipeline.loops

let test_sim_accounting () =
  let e = Pipeline.evaluate ~config:Config.best mixed_program in
  let spt = e.Pipeline.spt in
  Alcotest.(check bool) "instrs positive" true (spt.Spt_tlsim.Tls_machine.instrs > 0);
  Alcotest.(check bool) "spt coverage within total" true
    (spt.Spt_tlsim.Tls_machine.spt_cycles_total
    <= spt.Spt_tlsim.Tls_machine.cycles +. 1.0);
  List.iter
    (fun (_, lm) ->
      let open Spt_tlsim.Tls_machine in
      Alcotest.(check bool) "pairs <= iterations" true
        (lm.lm_pairs * 2 <= lm.lm_iterations + 2);
      Alcotest.(check bool) "violated <= pairs" true
        (lm.lm_violated_pairs <= lm.lm_pairs);
      Alcotest.(check bool) "reexec <= speculated" true
        (lm.lm_reexec_units <= lm.lm_spec_units +. 1.0))
    spt.Spt_tlsim.Tls_machine.loop_metrics

let test_reports_render () =
  let e = Pipeline.evaluate ~config:Config.best mixed_program in
  let results = [ ("mixed", e) ] in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " nonempty") true (String.length s > 10))
    [
      ("table1", Report.table1 results);
      ("fig14", Report.fig14 [ ("best", results) ]);
      ("fig15", Report.fig15 results);
      ("fig16", Report.fig16 results);
      ("fig17", Report.fig17 results);
      ("fig18", Report.fig18 results);
      ("fig19", Report.fig19 results);
    ]

let test_breakdown_sums () =
  let e = Pipeline.evaluate ~config:Config.best mixed_program in
  let b = Report.breakdown_of e.Pipeline.loops in
  let open Report in
  Alcotest.(check int) "buckets partition the loops" b.total
    (b.valid + b.many_vcs + b.small_body + b.large_body + b.small_trip
   + b.high_cost + b.untransformable + b.nested)

(* quick workload smoke: one small-ish workload end to end per config
   family; the full matrix runs in the benchmark harness *)
let test_workload_smoke () =
  let w = Spt_workloads.Suite.find "gap" in
  let e = Pipeline.evaluate ~config:Config.best w.Spt_workloads.Suite.source in
  Alcotest.(check bool) "gap outputs match" true e.Pipeline.outputs_match;
  Alcotest.(check bool) "gap base runs" true
    (e.Pipeline.base.Spt_tlsim.Tls_machine.cycles > 100_000.0)

let test_workloads_all_parse () =
  List.iter
    (fun w ->
      match Spt_srclang.Typecheck.parse_and_check w.Spt_workloads.Suite.source with
      | _ -> ()
      | exception e ->
        Alcotest.fail
          (Printf.sprintf "%s does not compile: %s" w.Spt_workloads.Suite.name
             (Printexc.to_string e)))
    Spt_workloads.Suite.all

(* the observability tentpole, end to end: a real parallel run records
   per-domain timeline events, and the attribution report accounts for
   (almost) all of the run's wall time *)
let test_parallel_attrib () =
  let timeline = Spt_obs.Timeline.create () in
  let pr = Pipeline.run_parallel ~jobs:2 ~timeline mixed_program in
  Alcotest.(check bool) "timeline recorded events" true
    (Spt_obs.Timeline.events timeline > 0);
  Alcotest.(check bool) "worker lanes registered" true
    (List.length (Spt_obs.Timeline.summary timeline) >= 2);
  let j =
    Report.attrib_json ~predicted:1.5 ~workload:"mixed" ~timeline pr
  in
  (* reparses, carries the schema, and the buckets account for the run *)
  let module Json = Spt_obs.Json in
  match Json.of_string (Json.to_string j) with
  | Error msg -> Alcotest.fail ("attrib JSON does not reparse: " ^ msg)
  | Ok j ->
    Alcotest.(check bool) "schema" true
      (Json.member "schema" j = Some (Json.Str "spt-attrib-v1"));
    (match Json.member "coverage" j with
    | Some (Json.Float c) ->
      Alcotest.(check bool)
        (Printf.sprintf "coverage %.3f ≥ 0.95" c)
        true (c >= 0.95);
      Alcotest.(check bool)
        (Printf.sprintf "coverage %.3f sane" c)
        true (c <= 1.05)
    | _ -> Alcotest.fail "coverage missing");
    (match Json.member "totals" j with
    | Some totals ->
      List.iter
        (fun b ->
          match Json.member b totals with
          | Some (Json.Float v) ->
            Alcotest.(check bool) (b ^ " non-negative") true (v >= 0.0)
          | _ -> Alcotest.fail (b ^ " missing from totals"))
        [ "dispatch"; "fork"; "validate"; "commit"; "rollback"; "idle" ]
    | None -> Alcotest.fail "totals missing");
    (match Json.member "iter_latency_s" j with
    | Some h ->
      Alcotest.(check bool) "iteration latencies observed" true
        (match Json.member "count" h with
        | Some (Json.Int n) -> n > 0
        | _ -> false)
    | None -> Alcotest.fail "iter_latency_s missing");
    match Json.member "overhead_fraction" j with
    | Some (Json.Float f) ->
      Alcotest.(check bool)
        (Printf.sprintf "overhead %.4f ≤ 5%%" f)
        true (f <= 0.05)
    | _ -> Alcotest.fail "overhead_fraction missing"

let suite =
  [
    Alcotest.test_case "all configs correct" `Slow test_all_configs_correct;
    Alcotest.test_case "parallel attrib report" `Slow test_parallel_attrib;
    Alcotest.test_case "config ordering" `Slow test_config_ordering;
    Alcotest.test_case "loop records complete" `Slow test_loop_records_complete;
    Alcotest.test_case "sim accounting" `Slow test_sim_accounting;
    Alcotest.test_case "reports render" `Slow test_reports_render;
    Alcotest.test_case "breakdown sums" `Slow test_breakdown_sums;
    Alcotest.test_case "workload smoke" `Slow test_workload_smoke;
    Alcotest.test_case "workloads parse" `Quick test_workloads_all_parse;
  ]

(* regression lock on the paper's own Fig. 2 loop: the outer while loop
   must be transformed with a tiny pre-fork region (the induction
   update, the paper's temp_i) *)
let test_paper_fig2 () =
  let src =
    {|
int N = 120;
float error[14400];
float p[120];
float cost_total;

void main() {
  int i = 0;
  int k;
  srand(1);
  for (k = 0; k < 14400; k = k + 1) {
    error[k] = float_of_int(rand() & 255) * 0.01;
  }
  for (k = 0; k < 120; k = k + 1) {
    p[k] = float_of_int(rand() & 255) * 0.01;
  }
  float cost = 0.0;
  while (i < N) {
    float cost0 = 0.0;
    int j;
    for (j = 0; j < i; j = j + 1) {
      cost0 = cost0 + fabs(error[i * 120 + j] - p[j]);
    }
    cost = cost + cost0;
    i = i + 1;
  }
  cost_total = cost;
  print_float(cost);
}
|}
  in
  let e = Pipeline.evaluate ~config:Config.best src in
  Alcotest.(check bool) "outputs match" true e.Pipeline.outputs_match;
  let selected =
    List.filter
      (fun lr -> lr.Pipeline.lr_decision = Pipeline.Selected)
      e.Pipeline.loops
  in
  Alcotest.(check bool) "the while loop is transformed" true (selected <> []);
  (* the chosen loop is while-shaped with a small pre-fork region *)
  Alcotest.(check bool) "pre-fork is tiny (the induction update)" true
    (List.exists
       (fun lr ->
         lr.Pipeline.lr_origin = Some `While
         && Option.value ~default:99 lr.Pipeline.lr_prefork_size <= 4)
       selected);
  Alcotest.(check bool)
    (Printf.sprintf "it wins (%.2f)" e.Pipeline.speedup)
    true
    (e.Pipeline.speedup > 1.10)

let suite = suite @ [ Alcotest.test_case "paper Fig. 2 loop" `Slow test_paper_fig2 ]
