(** Tests for the observability layer ([Spt_obs]): the JSON tree,
    metrics registry, trace spans, leveled logging — and one pipeline
    run asserting that the instrumentation wired through the compiler
    actually fires. *)

module Json = Spt_obs.Json
module Metrics = Spt_obs.Metrics
module Trace = Spt_obs.Trace
module Log = Spt_obs.Log

(* The registry and trace buffer are global; every test restores the
   disabled default so the rest of the suite runs uninstrumented. *)
let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let with_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("floats", Json.List [ Json.Float 2.0; Json.Float 3.14159; Json.Float 1e-9 ]);
        ("str", Json.Str "line\none \"quoted\" \\ tab\there");
        ("empty", Json.Obj [ ("l", Json.List []); ("o", Json.Obj []) ]);
      ]
  in
  List.iter
    (fun minify ->
      match Json.of_string (Json.to_string ~minify doc) with
      | Ok doc' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip (minify=%b)" minify)
          true (doc = doc')
      | Error msg -> Alcotest.fail ("reparse failed: " ^ msg))
    [ false; true ]

let test_json_parse () =
  (match Json.of_string {| {"a": [1, 2.5, "Aé"], "b": null} |} with
  | Ok j ->
    Alcotest.(check bool) "int stays int" true (Json.member "a" j
      |> Option.map (function Json.List (x :: _) -> x = Json.Int 1 | _ -> false)
      = Some true);
    (match Json.member "a" j with
    | Some (Json.List [ _; _; Json.Str s ]) ->
      Alcotest.(check string) "unicode escapes decode to UTF-8" "A\xc3\xa9" s
    | _ -> Alcotest.fail "unexpected shape")
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_nonfinite () =
  match Json.of_string (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ])) with
  | Ok j -> Alcotest.(check bool) "non-finite floats load as null" true
      (j = Json.List [ Json.Null; Json.Null ])
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_accumulation () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.counter" in
  Metrics.inc c;
  Metrics.inc c;
  Metrics.add c 40;
  Alcotest.(check bool) "counter sums" true
    (Metrics.get "test.counter" = Some (Metrics.Counter 42));
  (* handles are interned: a second handle shares state *)
  Metrics.inc (Metrics.counter "test.counter");
  Alcotest.(check bool) "interned" true
    (Metrics.get "test.counter" = Some (Metrics.Counter 43))

let test_histogram_accumulation () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.histogram" in
  List.iter (Metrics.observe h) [ 4.0; 1.0; 7.0 ];
  (match Metrics.get "test.histogram" with
  | Some (Metrics.Histogram { hcount; hsum; hmin; hmax }) ->
    Alcotest.(check int) "count" 3 hcount;
    Alcotest.(check (float 1e-9)) "sum" 12.0 hsum;
    Alcotest.(check (float 1e-9)) "min" 1.0 hmin;
    Alcotest.(check (float 1e-9)) "max" 7.0 hmax
  | _ -> Alcotest.fail "histogram value missing");
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check bool) "gauge" true
    (Metrics.get "test.gauge" = Some (Metrics.Gauge 2.5))

let test_kind_mismatch () =
  ignore (Metrics.counter "test.kind");
  match Metrics.histogram "test.kind" with
  | _ -> Alcotest.fail "re-registering under another kind must fail"
  | exception Invalid_argument _ -> ()

let test_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.disabled" in
  Metrics.reset ();
  Metrics.inc c;
  Metrics.add c 10;
  Alcotest.(check bool) "updates ignored while disabled" true
    (Metrics.get "test.disabled" = Some (Metrics.Counter 0));
  (* registration still lists the metric in the catalogue *)
  Alcotest.(check bool) "still registered" true
    (List.mem_assoc "test.disabled" (Metrics.snapshot ()))

let test_reset_keeps_registrations () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.reset" in
  Metrics.inc c;
  Metrics.reset ();
  Alcotest.(check bool) "zeroed but present" true
    (Metrics.get "test.reset" = Some (Metrics.Counter 0))

(* ------------------------------------------------------------------ *)
(* Trace *)

let depth_of ev =
  match Json.member "args" ev with
  | Some args -> (
    match Json.member "depth" args with Some (Json.Int d) -> d | _ -> -1)
  | None -> -1

let test_span_nesting () =
  with_trace @@ fun () ->
  let r =
    Trace.span "outer" (fun () ->
        Trace.span "inner" (fun () -> 7) + 10)
  in
  Alcotest.(check int) "span returns the thunk's value" 17 r;
  let evs = Trace.events () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  (* chronological order: outer opened first *)
  let names =
    List.map
      (fun ev ->
        match Json.member "name" ev with Some (Json.Str s) -> s | _ -> "?")
      evs
  in
  Alcotest.(check (list string)) "start order" [ "outer"; "inner" ] names;
  Alcotest.(check (list int)) "nesting depth" [ 0; 1 ] (List.map depth_of evs);
  (* every event is a well-formed Chrome complete event *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) "ph = X" true (Json.member "ph" ev = Some (Json.Str "X"));
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (Json.member key ev <> None))
        [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
    evs

let test_span_exception () =
  with_trace @@ fun () ->
  (try Trace.span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "event recorded despite raise" 1
    (List.length (Trace.events ()))

let test_trace_json_wellformed () =
  with_trace @@ fun () ->
  Trace.span "a" (fun () -> Trace.instant "mark");
  match Json.of_string (Json.to_string (Trace.to_json ())) with
  | Ok j -> (
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> Alcotest.(check int) "both events exported" 2 (List.length evs)
    | _ -> Alcotest.fail "traceEvents missing")
  | Error msg -> Alcotest.fail ("trace JSON does not reparse: " ^ msg)

let test_disabled_trace_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  Alcotest.(check int) "disabled span records nothing"
    5 (Trace.span "quiet" (fun () -> 5));
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

(* ------------------------------------------------------------------ *)
(* Log *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level saved) @@ fun () ->
  Log.set_level Log.Warn;
  Alcotest.(check bool) "warn on at warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "info off at warn" false (Log.enabled Log.Info);
  Log.set_level Log.Debug;
  Alcotest.(check bool) "info on at debug" true (Log.enabled Log.Info);
  List.iter
    (fun l ->
      Alcotest.(check bool) "name roundtrips" true
        (Log.level_of_string (Log.string_of_level l) = Ok l))
    [ Log.Error; Log.Warn; Log.Info; Log.Debug ];
  Alcotest.(check bool) "case-insensitive" true
    (Log.level_of_string "DEBUG" = Ok Log.Debug);
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Log.level_of_string "loud"))

(* ------------------------------------------------------------------ *)
(* Pipeline integration: the counters wired through the compiler fire *)

let obs_program =
  {|
int n = 1200;
int a[1200];
int b[1200];
int hist[64];
int checksum;

int mixer(int x) { return (x * 73 + 11) & 1023; }

void main() {
  int i;
  srand(17);
  for (i = 0; i < n; i = i + 1) { b[i] = rand() & 1023; }
  for (i = 0; i < n; i = i + 1) { a[i] = mixer(b[i]) + (b[i] >> 3); }
  for (i = 0; i < 64; i = i + 1) { hist[i] = 0; }
  for (i = 0; i < n; i = i + 1) {
    int h = a[i] & 63;
    hist[h] = hist[h] + 1;
  }
  checksum = hist[0] + hist[63] + a[n - 1];
  print_int(checksum);
}
|}

let counter_value name =
  match Metrics.get name with
  | Some (Metrics.Counter v) -> v
  | _ -> Alcotest.fail (name ^ " is not a registered counter")

let test_pipeline_counters () =
  with_metrics @@ fun () ->
  let e =
    Spt_driver.Pipeline.evaluate ~config:Spt_driver.Config.best obs_program
  in
  Alcotest.(check bool) "outputs match" true e.Spt_driver.Pipeline.outputs_match;
  Alcotest.(check bool) "something selected" true
    (e.Spt_driver.Pipeline.n_spt_loops > 0);
  (* pass-1 / pass-2 bookkeeping *)
  Alcotest.(check bool) "pass-1 saw candidates" true
    (counter_value "pipeline.pass1_candidates" > 0);
  Alcotest.(check bool) "pass-2 selected" true
    (counter_value "pipeline.pass2_selected" > 0);
  (* the stages underneath actually ran *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " fired") true (counter_value name > 0))
    [
      "partition.searches";
      "partition.nodes_explored";
      "cost.graph_nodes";
      "depgraph.edges";
      "interp.steps";
      "tlsim.instances";
      "tlsim.iterations";
    ];
  (* the full catalogue is present even where this program scores zero *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Metrics.get name <> None))
    [
      "partition.pruned_by_bound";
      "partition.pruned_by_threshold";
      "svp.candidates_tried";
      "svp.applied";
      "tlsim.misspeculations";
      "tlsim.kills";
    ];
  (* and the machine-readable report carries it all, re-loadable *)
  let report = Spt_driver.Report.metrics_json [ ("obs", e) ] in
  match Json.of_string (Json.to_string report) with
  | Error msg -> Alcotest.fail ("metrics JSON does not reparse: " ^ msg)
  | Ok j ->
    Alcotest.(check bool) "schema tag" true
      (Json.member "schema" j = Some (Json.Str "spt-metrics-v1"));
    let counters =
      match Json.member "counters" j with
      | Some c -> c
      | None -> Alcotest.fail "counters object missing"
    in
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " in dump") true
          (Json.member name counters <> None))
      [
        "pipeline.pass1_candidates";
        "pipeline.pass2_selected";
        "partition.nodes_explored";
        "svp.candidates_tried";
        "tlsim.misspeculations";
      ]

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
    Alcotest.test_case "counter accumulation" `Quick test_counter_accumulation;
    Alcotest.test_case "histogram accumulation" `Quick test_histogram_accumulation;
    Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "disabled metrics no-op" `Quick test_disabled_noop;
    Alcotest.test_case "reset keeps registrations" `Quick test_reset_keeps_registrations;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span on exception" `Quick test_span_exception;
    Alcotest.test_case "trace json wellformed" `Quick test_trace_json_wellformed;
    Alcotest.test_case "disabled trace no-op" `Quick test_disabled_trace_noop;
    Alcotest.test_case "log levels" `Quick test_log_levels;
    Alcotest.test_case "pipeline counters" `Slow test_pipeline_counters;
  ]
