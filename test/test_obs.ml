(** Tests for the observability layer ([Spt_obs]): the JSON tree,
    metrics registry, trace spans, leveled logging — and one pipeline
    run asserting that the instrumentation wired through the compiler
    actually fires. *)

module Json = Spt_obs.Json
module Metrics = Spt_obs.Metrics
module Trace = Spt_obs.Trace
module Log = Spt_obs.Log

(* The registry and trace buffer are global; every test restores the
   disabled default so the rest of the suite runs uninstrumented. *)
let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let with_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("floats", Json.List [ Json.Float 2.0; Json.Float 3.14159; Json.Float 1e-9 ]);
        ("str", Json.Str "line\none \"quoted\" \\ tab\there");
        ("empty", Json.Obj [ ("l", Json.List []); ("o", Json.Obj []) ]);
      ]
  in
  List.iter
    (fun minify ->
      match Json.of_string (Json.to_string ~minify doc) with
      | Ok doc' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip (minify=%b)" minify)
          true (doc = doc')
      | Error msg -> Alcotest.fail ("reparse failed: " ^ msg))
    [ false; true ]

let test_json_parse () =
  (match Json.of_string {| {"a": [1, 2.5, "Aé"], "b": null} |} with
  | Ok j ->
    Alcotest.(check bool) "int stays int" true (Json.member "a" j
      |> Option.map (function Json.List (x :: _) -> x = Json.Int 1 | _ -> false)
      = Some true);
    (match Json.member "a" j with
    | Some (Json.List [ _; _; Json.Str s ]) ->
      Alcotest.(check string) "unicode escapes decode to UTF-8" "A\xc3\xa9" s
    | _ -> Alcotest.fail "unexpected shape")
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_nonfinite () =
  match Json.of_string (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ])) with
  | Ok j -> Alcotest.(check bool) "non-finite floats load as null" true
      (j = Json.List [ Json.Null; Json.Null ])
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_accumulation () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.counter" in
  Metrics.inc c;
  Metrics.inc c;
  Metrics.add c 40;
  Alcotest.(check bool) "counter sums" true
    (Metrics.get "test.counter" = Some (Metrics.Counter 42));
  (* handles are interned: a second handle shares state *)
  Metrics.inc (Metrics.counter "test.counter");
  Alcotest.(check bool) "interned" true
    (Metrics.get "test.counter" = Some (Metrics.Counter 43))

let test_histogram_accumulation () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test.histogram" in
  List.iter (Metrics.observe h) [ 4.0; 1.0; 7.0 ];
  (match Metrics.get "test.histogram" with
  | Some (Metrics.Histogram { hcount; hsum; hmin; hmax }) ->
    Alcotest.(check int) "count" 3 hcount;
    Alcotest.(check (float 1e-9)) "sum" 12.0 hsum;
    Alcotest.(check (float 1e-9)) "min" 1.0 hmin;
    Alcotest.(check (float 1e-9)) "max" 7.0 hmax
  | _ -> Alcotest.fail "histogram value missing");
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check bool) "gauge" true
    (Metrics.get "test.gauge" = Some (Metrics.Gauge 2.5))

let test_hist_quantiles () =
  let h = Metrics.Hist.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Metrics.Hist.percentile h 0.5);
  (* a single observation reports itself exactly: interpolation is
     clamped to the observed min/max *)
  Metrics.Hist.observe h 0.25;
  Alcotest.(check (float 1e-12)) "single p50" 0.25 (Metrics.Hist.percentile h 0.5);
  Alcotest.(check (float 1e-12)) "single p99" 0.25 (Metrics.Hist.percentile h 0.99);
  Metrics.Hist.reset h;
  (* 100 observations spanning 1ms .. 100ms: quantiles must land in the
     right decade and stay ordered *)
  for i = 1 to 100 do
    Metrics.Hist.observe h (float_of_int i *. 1e-3)
  done;
  Alcotest.(check int) "count" 100 (Metrics.Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" 5.05 (Metrics.Hist.sum h);
  Alcotest.(check (float 1e-9)) "min" 1e-3 (Metrics.Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max" 0.1 (Metrics.Hist.max_value h);
  let p50 = Metrics.Hist.percentile h 0.50 in
  let p95 = Metrics.Hist.percentile h 0.95 in
  let p99 = Metrics.Hist.percentile h 0.99 in
  Alcotest.(check bool) "p50 in its bucket neighbourhood" true
    (p50 > 0.025 && p50 < 0.1);
  Alcotest.(check bool) "quantiles ordered" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p99 near the top" true (p99 > 0.05 && p99 <= 0.1);
  (* out-of-range and degenerate inputs neither crash nor escape the
     observed range *)
  Metrics.Hist.observe h 0.0;
  Metrics.Hist.observe h 1e12;
  let p100 = Metrics.Hist.percentile h 1.5 in
  Alcotest.(check bool) "clamped to max" true (p100 <= Metrics.Hist.max_value h);
  match Json.member "p95" (Metrics.Hist.to_json h) with
  | Some (Json.Float _) -> ()
  | _ -> Alcotest.fail "to_json lacks p95"

let test_metrics_delta () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.delta.counter" in
  let h = Metrics.histogram "test.delta.hist" in
  Metrics.add c 5;
  Metrics.observe h 1.0;
  let base = Metrics.since () in
  Metrics.add c 3;
  Metrics.observe h 2.0;
  Metrics.observe h 4.0;
  let d = Metrics.delta_json base in
  Alcotest.(check bool) "counter delta" true
    (Json.member "test.delta.counter" d = Some (Json.Int 3));
  (match Json.member "test.delta.hist" d with
  | Some hd ->
    Alcotest.(check bool) "hist delta count" true
      (Json.member "count" hd = Some (Json.Int 2));
    Alcotest.(check bool) "hist delta sum" true
      (Json.member "sum" hd = Some (Json.Float 6.0))
  | None -> Alcotest.fail "histogram delta missing")

let test_kind_mismatch () =
  ignore (Metrics.counter "test.kind");
  match Metrics.histogram "test.kind" with
  | _ -> Alcotest.fail "re-registering under another kind must fail"
  | exception Invalid_argument _ -> ()

let test_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.disabled" in
  Metrics.reset ();
  Metrics.inc c;
  Metrics.add c 10;
  Alcotest.(check bool) "updates ignored while disabled" true
    (Metrics.get "test.disabled" = Some (Metrics.Counter 0));
  (* registration still lists the metric in the catalogue *)
  Alcotest.(check bool) "still registered" true
    (List.mem_assoc "test.disabled" (Metrics.snapshot ()))

let test_reset_keeps_registrations () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test.reset" in
  Metrics.inc c;
  Metrics.reset ();
  Alcotest.(check bool) "zeroed but present" true
    (Metrics.get "test.reset" = Some (Metrics.Counter 0))

(* ------------------------------------------------------------------ *)
(* Trace *)

let depth_of ev =
  match Json.member "args" ev with
  | Some args -> (
    match Json.member "depth" args with Some (Json.Int d) -> d | _ -> -1)
  | None -> -1

let test_span_nesting () =
  with_trace @@ fun () ->
  let r =
    Trace.span "outer" (fun () ->
        Trace.span "inner" (fun () -> 7) + 10)
  in
  Alcotest.(check int) "span returns the thunk's value" 17 r;
  let evs = Trace.events () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  (* chronological order: outer opened first *)
  let names =
    List.map
      (fun ev ->
        match Json.member "name" ev with Some (Json.Str s) -> s | _ -> "?")
      evs
  in
  Alcotest.(check (list string)) "start order" [ "outer"; "inner" ] names;
  Alcotest.(check (list int)) "nesting depth" [ 0; 1 ] (List.map depth_of evs);
  (* every event is a well-formed Chrome complete event *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) "ph = X" true (Json.member "ph" ev = Some (Json.Str "X"));
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (Json.member key ev <> None))
        [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
    evs

let test_span_exception () =
  with_trace @@ fun () ->
  (try Trace.span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "event recorded despite raise" 1
    (List.length (Trace.events ()))

let test_trace_json_wellformed () =
  with_trace @@ fun () ->
  Trace.span "a" (fun () -> Trace.instant "mark");
  match Json.of_string (Json.to_string (Trace.to_json ())) with
  | Ok j -> (
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> Alcotest.(check int) "both events exported" 2 (List.length evs)
    | _ -> Alcotest.fail "traceEvents missing")
  | Error msg -> Alcotest.fail ("trace JSON does not reparse: " ^ msg)

let test_disabled_trace_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  Alcotest.(check int) "disabled span records nothing"
    5 (Trace.span "quiet" (fun () -> 5));
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

(* ------------------------------------------------------------------ *)
(* Timeline *)

module Timeline = Spt_obs.Timeline

let test_timeline_multidomain () =
  let tl = Timeline.create () in
  (* the coordinator lane *)
  let t0 = Timeline.now () in
  Timeline.record tl Timeline.Commit ~lid:0 ~t0 ~t1:(t0 +. 0.25);
  (* two worker domains, each its own lane, no interleaving hazards *)
  let work k () =
    for i = 1 to 10 do
      let t0 = float_of_int (k * 100 + i) in
      Timeline.record tl Timeline.Exec ~lid:k ~t0 ~t1:(t0 +. 0.5)
    done
  in
  let d1 = Domain.spawn (work 1) and d2 = Domain.spawn (work 2) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "all events kept" 21 (Timeline.events tl);
  Alcotest.(check int) "nothing dropped" 0 (Timeline.dropped tl);
  let lanes = Timeline.summary tl in
  Alcotest.(check int) "three lanes" 3 (List.length lanes);
  (* per-kind sums are exact regardless of ring layout *)
  let total_exec =
    List.fold_left
      (fun acc l ->
        List.fold_left
          (fun acc (k, s, _) -> if k = Timeline.Exec then acc +. s else acc)
          acc l.Timeline.ls_by_kind)
      0.0 lanes
  in
  Alcotest.(check (float 1e-9)) "exec sum exact" 10.0 total_exec;
  let n_seen = ref 0 in
  Timeline.iter_events tl (fun _ ~lane:_ ~lid:_ ~t0 ~t1 ->
      incr n_seen;
      Alcotest.(check bool) "span has extent" true (t1 > t0));
  Alcotest.(check int) "iter_events visits all" 21 !n_seen

let test_timeline_capacity () =
  let tl = Timeline.create ~capacity:16 () in
  for i = 0 to 99 do
    Timeline.record tl Timeline.Validate ~lid:0 ~t0:(float_of_int i)
      ~t1:(float_of_int i +. 1.0)
  done;
  Alcotest.(check int) "every record counted" 100 (Timeline.events tl);
  Alcotest.(check int) "overflow counted" 84 (Timeline.dropped tl);
  let detail = ref 0 in
  Timeline.iter_events tl (fun _ ~lane:_ ~lid:_ ~t0:_ ~t1:_ -> incr detail);
  Alcotest.(check int) "detail capped at capacity" 16 !detail;
  (* sums stay exact even past capacity *)
  match Timeline.summary tl with
  | [ lane ] ->
    Alcotest.(check (float 1e-9)) "busy time exact" 100.0 lane.Timeline.ls_busy_s
  | lanes -> Alcotest.fail (Printf.sprintf "%d lanes" (List.length lanes))

let test_timeline_trace_roundtrip () =
  with_trace @@ fun () ->
  Trace.span "run.parallel" (fun () -> ());
  let tl = Timeline.create () in
  let epoch = Trace.epoch_s () in
  Timeline.record tl Timeline.Fork ~lid:3 ~t0:(epoch +. 0.1) ~t1:(epoch +. 0.2);
  Timeline.record tl Timeline.Rollback ~lid:3 ~t0:(epoch +. 0.3)
    ~t1:(epoch +. 0.4);
  Trace.append_events (Timeline.to_trace_events ~epoch tl);
  (* the merged file must still parse as Chrome trace_events JSON *)
  let tmp = Filename.temp_file "spt_test_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
  Trace.to_file tmp;
  let ic = open_in_bin tmp in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string raw with
  | Error msg -> Alcotest.fail ("trace file does not reparse: " ^ msg)
  | Ok j -> (
    match Json.member "traceEvents" j with
    | Some (Json.List evs) ->
      Alcotest.(check int) "pipeline span + 2 timeline spans" 3
        (List.length evs);
      let name ev =
        match Json.member "name" ev with Some (Json.Str s) -> s | _ -> "?"
      in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " present") true
            (List.exists (fun ev -> name ev = n) evs))
        [ "run.parallel"; "fork"; "rollback" ];
      (* timeline lanes live on distinct tids with µs timestamps *)
      List.iter
        (fun ev ->
          if name ev = "fork" then begin
            (match Json.member "ts" ev with
            | Some (Json.Float ts) ->
              Alcotest.(check bool) "ts is relative µs" true
                (ts > 0.0 && ts < 1e6)
            | _ -> Alcotest.fail "ts missing");
            match Json.member "args" ev with
            | Some args ->
              Alcotest.(check bool) "loop id carried" true
                (Json.member "loop" args = Some (Json.Int 3))
            | None -> Alcotest.fail "args missing"
          end)
        evs
    | _ -> Alcotest.fail "traceEvents missing")

(* ------------------------------------------------------------------ *)
(* Log *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level saved) @@ fun () ->
  Log.set_level Log.Warn;
  Alcotest.(check bool) "warn on at warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "info off at warn" false (Log.enabled Log.Info);
  Log.set_level Log.Debug;
  Alcotest.(check bool) "info on at debug" true (Log.enabled Log.Info);
  List.iter
    (fun l ->
      Alcotest.(check bool) "name roundtrips" true
        (Log.level_of_string (Log.string_of_level l) = Ok l))
    [ Log.Error; Log.Warn; Log.Info; Log.Debug ];
  Alcotest.(check bool) "case-insensitive" true
    (Log.level_of_string "DEBUG" = Ok Log.Debug);
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Log.level_of_string "loud"))

(* ------------------------------------------------------------------ *)
(* Pipeline integration: the counters wired through the compiler fire *)

let obs_program =
  {|
int n = 1200;
int a[1200];
int b[1200];
int hist[64];
int checksum;

int mixer(int x) { return (x * 73 + 11) & 1023; }

void main() {
  int i;
  srand(17);
  for (i = 0; i < n; i = i + 1) { b[i] = rand() & 1023; }
  for (i = 0; i < n; i = i + 1) { a[i] = mixer(b[i]) + (b[i] >> 3); }
  for (i = 0; i < 64; i = i + 1) { hist[i] = 0; }
  for (i = 0; i < n; i = i + 1) {
    int h = a[i] & 63;
    hist[h] = hist[h] + 1;
  }
  checksum = hist[0] + hist[63] + a[n - 1];
  print_int(checksum);
}
|}

let counter_value name =
  match Metrics.get name with
  | Some (Metrics.Counter v) -> v
  | _ -> Alcotest.fail (name ^ " is not a registered counter")

let test_pipeline_counters () =
  with_metrics @@ fun () ->
  let e =
    Spt_driver.Pipeline.evaluate ~config:Spt_driver.Config.best obs_program
  in
  Alcotest.(check bool) "outputs match" true e.Spt_driver.Pipeline.outputs_match;
  Alcotest.(check bool) "something selected" true
    (e.Spt_driver.Pipeline.n_spt_loops > 0);
  (* pass-1 / pass-2 bookkeeping *)
  Alcotest.(check bool) "pass-1 saw candidates" true
    (counter_value "pipeline.pass1_candidates" > 0);
  Alcotest.(check bool) "pass-2 selected" true
    (counter_value "pipeline.pass2_selected" > 0);
  (* the stages underneath actually ran *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " fired") true (counter_value name > 0))
    [
      "partition.searches";
      "partition.nodes_explored";
      "cost.graph_nodes";
      "depgraph.edges";
      "interp.steps";
      "tlsim.instances";
      "tlsim.iterations";
    ];
  (* the full catalogue is present even where this program scores zero *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Metrics.get name <> None))
    [
      "partition.pruned_by_bound";
      "partition.pruned_by_threshold";
      "svp.candidates_tried";
      "svp.applied";
      "tlsim.misspeculations";
      "tlsim.kills";
    ];
  (* and the machine-readable report carries it all, re-loadable *)
  let report = Spt_driver.Report.metrics_json [ ("obs", e) ] in
  match Json.of_string (Json.to_string report) with
  | Error msg -> Alcotest.fail ("metrics JSON does not reparse: " ^ msg)
  | Ok j ->
    Alcotest.(check bool) "schema tag" true
      (Json.member "schema" j = Some (Json.Str "spt-metrics-v1"));
    let counters =
      match Json.member "counters" j with
      | Some c -> c
      | None -> Alcotest.fail "counters object missing"
    in
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " in dump") true
          (Json.member name counters <> None))
      [
        "pipeline.pass1_candidates";
        "pipeline.pass2_selected";
        "partition.nodes_explored";
        "svp.candidates_tried";
        "tlsim.misspeculations";
      ]

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
    Alcotest.test_case "counter accumulation" `Quick test_counter_accumulation;
    Alcotest.test_case "histogram accumulation" `Quick test_histogram_accumulation;
    Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
    Alcotest.test_case "metrics delta" `Quick test_metrics_delta;
    Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "disabled metrics no-op" `Quick test_disabled_noop;
    Alcotest.test_case "reset keeps registrations" `Quick test_reset_keeps_registrations;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span on exception" `Quick test_span_exception;
    Alcotest.test_case "trace json wellformed" `Quick test_trace_json_wellformed;
    Alcotest.test_case "disabled trace no-op" `Quick test_disabled_trace_noop;
    Alcotest.test_case "timeline multi-domain" `Quick test_timeline_multidomain;
    Alcotest.test_case "timeline capacity" `Quick test_timeline_capacity;
    Alcotest.test_case "timeline trace roundtrip" `Quick test_timeline_trace_roundtrip;
    Alcotest.test_case "log levels" `Quick test_log_levels;
    Alcotest.test_case "pipeline counters" `Slow test_pipeline_counters;
  ]
