(** The differential fuzzer testing itself: deterministic generation,
    clean sweeps over the oracle matrix, an injected transform fault
    that must be caught and shrunk, and the corpus regression replay
    that turns every previously-found divergence into a permanent
    test. *)

module Gen = Spt_fuzz.Gen
module Oracle = Spt_fuzz.Oracle
module Shrink = Spt_fuzz.Shrink
module Harness = Spt_fuzz.Harness
module Json = Spt_obs.Json

(* cwd is _build/default/test under [dune runtest], the workspace root
   under [dune exec test/test_main.exe] *)
let corpus_dir =
  match List.find_opt Sys.file_exists [ "corpus"; "test/corpus" ] with
  | Some d -> d
  | None -> "corpus"

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_gen_deterministic () =
  let src seed = Gen.to_source (Gen.generate ~seed ()) in
  Alcotest.(check string) "same seed, same program" (src 7) (src 7);
  Alcotest.(check bool) "different seeds differ" true (src 7 <> src 8);
  (* case seeds are themselves deterministic and spread out *)
  let s0 = Gen.case_seed ~seed:42 ~index:0
  and s1 = Gen.case_seed ~seed:42 ~index:1 in
  Alcotest.(check bool) "case seeds distinct" true (s0 <> s1);
  Alcotest.(check bool) "case seed stable" true
    (s0 = Gen.case_seed ~seed:42 ~index:0)

let test_gen_valid_and_terminating () =
  (* every generated program parses, type-checks, lowers and runs to
     completion sequentially — the generator never needs the oracle to
     skip *)
  for i = 0 to 39 do
    let seed = Gen.case_seed ~seed:1 ~index:i in
    let src = Gen.to_source (Gen.generate ~seed ()) in
    let r =
      try Spt_interp.Interp.run_source ~max_steps:Oracle.default_max_steps src
      with e ->
        Alcotest.failf "seed %d (case %d) failed: %s\n%s" seed i
          (Printexc.to_string e) src
    in
    Alcotest.(check bool)
      (Printf.sprintf "case %d executed something" i)
      true
      (r.Spt_interp.Interp.dynamic_instrs > 0)
  done

let test_gen_dependence_knob () =
  (* the cross-iteration dependence probability is a real knob: at 0 the
     generator never emits the carried-scalar / carried-memory shapes *)
  let tuning = { Gen.default_tuning with Gen.t_dep_prob = 0.0 } in
  let any_dep = ref false in
  for i = 0 to 9 do
    let seed = Gen.case_seed ~seed:3 ~index:i in
    let independent = Gen.to_source (Gen.generate ~tuning ~seed ()) in
    let default = Gen.to_source (Gen.generate ~seed ()) in
    if independent <> default then any_dep := true
  done;
  Alcotest.(check bool) "dep knob changes generated programs" true !any_dep

(* ------------------------------------------------------------------ *)
(* Oracle + campaign *)

let test_clean_campaign () =
  let c = Harness.run_campaign ~seed:42 ~count:6 () in
  Alcotest.(check int) "no divergences" 0 c.Harness.c_divergent;
  Alcotest.(check int) "no skips" 0 c.Harness.c_skipped;
  Alcotest.(check int) "all cases ran" 6 (List.length c.Harness.c_cases);
  (* the campaign must actually exercise speculation, not just compile:
     across the seed-42 prefix some loops are selected and some
     misspeculation is observed *)
  let loops =
    List.fold_left
      (fun a (x : Harness.case_result) -> a + x.Harness.cr_spt_loops)
      0 c.Harness.c_cases
  in
  Alcotest.(check bool) "speculated at least one loop" true (loops > 0)

let test_matrix_parsing () =
  (match Oracle.matrix_of_string "seq,par,cache,feedback" with
  | Ok m ->
    Alcotest.(check int) "full spec has 5 points" 5 (List.length m)
  | Error e -> Alcotest.fail e);
  (match Oracle.matrix_of_string "seq" with
  | Ok m -> Alcotest.(check int) "seq alone is implicit" 0 (List.length m)
  | Error e -> Alcotest.fail e);
  match Oracle.matrix_of_string "par,warp" with
  | Ok _ -> Alcotest.fail "unknown point accepted"
  | Error _ -> ()

let test_injected_fault_caught_and_shrunk () =
  (* arm the transform fault on a case where it is known to fire (the
     seed-42 campaign prefix): the oracle must catch the divergence and
     the shrinker must reduce the reproducer to a trivial program *)
  let c =
    Harness.run_campaign ~seed:42 ~count:1 ~index:0
      ~inject:"drop-prefork-stmt" ()
  in
  Alcotest.(check int) "case diverged" 1 c.Harness.c_divergent;
  match c.Harness.c_cases with
  | [ x ] ->
    Alcotest.(check bool) "fault actually fired" true x.Harness.cr_fault_fired;
    (match x.Harness.cr_shrunk with
    | None -> Alcotest.fail "divergent case was not shrunk"
    | Some (src, loc) ->
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d lines (<= 15)" loc)
        true (loc <= 15);
      Alcotest.(check bool) "shrunk below the original" true
        (loc < x.Harness.cr_loc);
      (* the minimized program must still trip the armed oracle *)
      let v =
        Oracle.check ~matrix:[ Oracle.P_inject "drop-prefork-stmt" ] src
      in
      Alcotest.(check bool) "shrunk program still diverges" true
        (v.Oracle.v_status = `Divergent));
    (match x.Harness.cr_reproduce with
    | None -> Alcotest.fail "no reproduce line"
    | Some line ->
      Alcotest.(check bool) "reproduce names the fuzz subcommand" true
        (String.length line > 9 && String.sub line 0 9 = "sptc fuzz"))
  | _ -> Alcotest.fail "expected exactly one case"

let test_shrinker_minimizes () =
  (* shrink against a simple syntactic predicate: smallest program that
     still contains a division.  Greedy, but must keep the property. *)
  let src =
    "int g = 3;\n\
     void main() {\n\
     \  int a = 1;\n\
     \  int b = 2;\n\
     \  int c = (8 / 2);\n\
     \  print_int(a);\n\
     \  print_int(b);\n\
     \  print_int(c);\n\
     \  print_int(g);\n\
     }\n"
  in
  let has_div s = String.contains s '/' in
  let out = Shrink.minimize has_div src in
  Alcotest.(check bool) "property preserved" true (has_div out);
  Alcotest.(check bool) "got smaller" true (Gen.loc out < Gen.loc src)

let test_report_json () =
  let c = Harness.run_campaign ~seed:9 ~count:2 () in
  let j = Harness.report_json c in
  (* the report round-trips through the JSON printer/parser *)
  let j =
    match Json.of_string (Json.to_string j) with
    | Ok j -> j
    | Error e -> Alcotest.failf "report does not re-parse: %s" e
  in
  Alcotest.(check string) "schema" "spt-fuzz-v1"
    (match Json.member "schema" j with Some (Json.Str s) -> s | _ -> "");
  (match Json.member "totals" j with
  | Some t ->
    Alcotest.(check bool) "totals.cases" true
      (Json.member "cases" t = Some (Json.Int 2))
  | None -> Alcotest.fail "no totals");
  match Json.member "cases" j with
  | Some (Json.List l) -> Alcotest.(check int) "per-case entries" 2 (List.length l)
  | _ -> Alcotest.fail "no cases list"

let test_corpus_replay () =
  (* every corpus file — interesting speculation-heavy cases plus the
     shrunk reproducers of previously-fixed compiler bugs — must stay
     clean across the full matrix *)
  let c = Harness.replay_corpus ~dir:corpus_dir () in
  Alcotest.(check bool) "corpus is non-empty" true
    (List.length c.Harness.c_cases > 0);
  Alcotest.(check int) "corpus replays clean" 0 c.Harness.c_divergent;
  Alcotest.(check int) "corpus never skips" 0 c.Harness.c_skipped;
  List.iter
    (fun (x : Harness.case_result) ->
      match x.Harness.cr_name with
      | Some _ -> ()
      | None -> Alcotest.fail "replayed case lacks its file name")
    c.Harness.c_cases

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "generated programs valid + terminating" `Quick
      test_gen_valid_and_terminating;
    Alcotest.test_case "dependence knob" `Quick test_gen_dependence_knob;
    Alcotest.test_case "matrix spec parsing" `Quick test_matrix_parsing;
    Alcotest.test_case "clean campaign, full matrix" `Slow test_clean_campaign;
    Alcotest.test_case "injected fault caught + shrunk" `Slow
      test_injected_fault_caught_and_shrunk;
    Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes;
    Alcotest.test_case "spt-fuzz-v1 report" `Slow test_report_json;
    Alcotest.test_case "corpus replay" `Slow test_corpus_replay;
  ]
