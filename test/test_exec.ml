(** Bytecode engine parity tests: the flat-bytecode engine must agree
    with the tree-walking interpreter observable-for-observable —
    output, return value, dynamic instruction count, and the exact
    error message on every runtime failure. *)

open Spt_interp
module Engine = Spt_exec.Engine
module Pipeline = Spt_driver.Pipeline

let both ?max_steps src =
  let prog = Pipeline.front_end src in
  (Interp.run ?max_steps prog, Engine.run ?max_steps prog)

(* value options compare structurally: ints and floats are immediate *)
let parity name ?max_steps src =
  let tree, bc = both ?max_steps src in
  Alcotest.(check string) (name ^ ": output") tree.Interp.output
    bc.Interp.output;
  Alcotest.(check bool)
    (name ^ ": return value") true
    (tree.Interp.return_value = bc.Interp.return_value);
  Alcotest.(check int)
    (name ^ ": dynamic instrs") tree.Interp.dynamic_instrs
    bc.Interp.dynamic_instrs

let error_of ?max_steps run prog =
  match run ?max_steps prog with
  | (_ : Interp.result) -> None
  | exception Interp.Runtime_error m -> Some m

let err_parity name ?max_steps src =
  let prog = Pipeline.front_end src in
  let te = error_of ?max_steps (fun ?max_steps p -> Interp.run ?max_steps p) prog in
  let be = error_of ?max_steps Engine.run prog in
  Alcotest.(check bool) (name ^ ": tree raises") true (te <> None);
  Alcotest.(check (option string)) (name ^ ": same message") te be

(* ------------------------------------------------------------------ *)

let test_arith_and_bits () =
  parity "arith"
    {|
void main() {
  print_int(7 + 3 * 2);
  print_int(-7 / 2);
  print_int(-7 % 3);
  print_int(1 << 12);
  print_int(255 & 15);
  print_int(5 ^ 3);
  print_int(5 | 3);
  print_int(~0);
  print_int(100 > 99);
  print_int(100 <= 99);
}
|}

let test_floats_and_builtins () =
  parity "floats"
    {|
void main() {
  float x = 1.5;
  float y = x * 4.0 - 2.0;
  print_float(y);
  print_float(sqrt(81.0));
  print_float(fabs(0.0 - 3.25));
  print_int(int_of_float(y));
  print_float(float_of_int(41));
}
|}

let test_phis () =
  (* loop-carried values updated under branches: phi-heavy control *)
  parity "phis"
    {|
void main() {
  int i;
  int even = 0;
  int odd = 0;
  int m = 1;
  for (i = 0; i < 50; i = i + 1) {
    if ((i & 1) == 0) { even = even + i; } else { odd = odd + i; m = m * 2; }
    if (m > 1000) { m = m - 999; }
  }
  print_int(even);
  print_int(odd);
  print_int(m);
}
|}

let test_arrays_nested_loops () =
  parity "arrays"
    {|
int a[40];
int b[40];
void main() {
  int i;
  int j;
  for (i = 0; i < 40; i = i + 1) { a[i] = i * i - 3 * i; }
  for (i = 0; i < 40; i = i + 1) {
    int s = 0;
    for (j = 0; j <= i; j = j + 1) { s = s + a[j]; }
    b[i] = s;
  }
  print_int(b[0] + b[17] + b[39]);
}
|}

let test_calls_and_recursion () =
  parity "calls"
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int sum3(int x, int y, int z) { return x + y + z; }
void main() {
  print_int(fib(15));
  print_int(sum3(fib(5), fib(6), fib(7)));
}
|}

let test_array_args () =
  parity "array args"
    {|
int buf[16];
int fill(int v[], int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { v[i] = 2 * i + 1; }
  return v[n - 1];
}
void main() {
  print_int(fill(buf, 16));
  print_int(buf[3]);
}
|}

let test_rand_determinism () =
  (* the fixed-seed LCG must advance identically on both engines *)
  parity "rand"
    {|
void main() {
  int i;
  int s = 0;
  srand(42);
  for (i = 0; i < 100; i = i + 1) { s = s + (rand() % 7); }
  print_int(s);
  srand(42);
  print_int(rand());
}
|}

let test_while_loops () =
  parity "while"
    {|
void main() {
  int n = 100000;
  int steps = 0;
  while (n != 1) {
    if ((n & 1) == 0) { n = n / 2; } else { n = 3 * n + 1; }
    steps = steps + 1;
  }
  print_int(steps);
}
|}

(* ------------------------------------------------------------------ *)
(* Error-message parity *)

let test_err_out_of_bounds () =
  err_parity "oob store"
    {|
int a[3];
void main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { a[i] = i; }
}
|};
  err_parity "oob load"
    {|
int a[3];
void main() { print_int(a[7]); }
|}

let test_err_division_by_zero () =
  err_parity "div by zero"
    {|
void main() {
  int z = 0;
  print_int(10 / z);
}
|};
  err_parity "mod by zero"
    {|
void main() {
  int z = 0;
  print_int(10 % z);
}
|}

let test_err_step_limit () =
  err_parity "step limit" ~max_steps:500
    {|
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 100000; i = i + 1) { s = s + i; }
  print_int(s);
}
|}

let test_compile_code_size () =
  let prog =
    Pipeline.front_end
      {|
int f(int x) { return x * x; }
void main() { print_int(f(9)); }
|}
  in
  let layout = Layout.build prog.Spt_ir.Ir.globals in
  let store = Interp.new_store layout prog in
  let m = Interp.make ~memio:(Interp.store_memio store) prog in
  let eng = Engine.compile m in
  Alcotest.(check bool) "code compiled" true (Engine.code_size eng > 0)

let suite =
  [
    Alcotest.test_case "arith + bit ops" `Quick test_arith_and_bits;
    Alcotest.test_case "floats + builtins" `Quick test_floats_and_builtins;
    Alcotest.test_case "phi-heavy control" `Quick test_phis;
    Alcotest.test_case "arrays + nested loops" `Quick
      test_arrays_nested_loops;
    Alcotest.test_case "calls + recursion" `Quick test_calls_and_recursion;
    Alcotest.test_case "array arguments" `Quick test_array_args;
    Alcotest.test_case "rand determinism" `Quick test_rand_determinism;
    Alcotest.test_case "while loops" `Quick test_while_loops;
    Alcotest.test_case "error: out of bounds" `Quick test_err_out_of_bounds;
    Alcotest.test_case "error: division by zero" `Quick
      test_err_division_by_zero;
    Alcotest.test_case "error: step limit" `Quick test_err_step_limit;
    Alcotest.test_case "compile + code size" `Quick test_compile_code_size;
  ]
