(** TLS machine tests: cache behaviour, branch predictor, baseline
    timing sanity, and the speculative execution engine's violation
    detection and speedup behaviour on controlled loops. *)

open Spt_ir
open Spt_tlsim
module Iset = Set.Make (Int)

let test_cache_lru () =
  let c = Cache.create ~cores:1 () in
  (* first touch misses all the way to memory; second hits L1 *)
  Alcotest.(check int) "cold miss" 150 (Cache.access c ~core:0 4096);
  Alcotest.(check int) "warm hit" 1 (Cache.access c ~core:0 4096);
  (* same line (64B): also a hit *)
  Alcotest.(check int) "same line" 1 (Cache.access c ~core:0 (4096 + 32));
  (* evict by touching many conflicting lines *)
  let cfg = Cache.itanium2_config in
  let sets = cfg.Cache.l1.Cache.size_bytes / (cfg.Cache.l1.Cache.ways * cfg.Cache.l1.Cache.line_bytes) in
  for k = 1 to cfg.Cache.l1.Cache.ways + 1 do
    ignore (Cache.access c ~core:0 (4096 + (k * sets * cfg.Cache.l1.Cache.line_bytes)))
  done;
  Alcotest.(check bool) "evicted from L1" true (Cache.access c ~core:0 4096 > 1)

let test_cache_lru_eviction_order () =
  let c = Cache.create ~cores:1 () in
  let l1 = Cache.itanium2_config.Cache.l1 in
  (* byte stride between addresses that share an L1 set *)
  let stride = l1.Cache.size_bytes / l1.Cache.ways in
  (* fill every way of set 0: A0..A3, oldest first *)
  for k = 0 to l1.Cache.ways - 1 do
    ignore (Cache.access c ~core:0 (k * stride))
  done;
  (* refresh A0, leaving A1 the least recently used *)
  Alcotest.(check int) "A0 hits" 1 (Cache.access c ~core:0 0);
  (* a fifth conflicting line must evict exactly the LRU way (A1) *)
  ignore (Cache.access c ~core:0 (l1.Cache.ways * stride));
  Alcotest.(check int) "A0 survives (was refreshed)" 1 (Cache.access c ~core:0 0);
  Alcotest.(check int) "A2 survives" 1 (Cache.access c ~core:0 (2 * stride));
  Alcotest.(check int) "A3 survives" 1 (Cache.access c ~core:0 (3 * stride));
  (* A1 fell to the shared L2 *)
  Alcotest.(check int) "A1 evicted to L2" 5 (Cache.access c ~core:0 stride)

let test_cache_cross_core_sharing () =
  let cfg = Cache.itanium2_config in
  let c = Cache.create ~cores:3 () in
  (* core 0 pulls a line into every level *)
  Alcotest.(check int) "cold miss to memory" cfg.Cache.memory_latency
    (Cache.access c ~core:0 0);
  (* core 1 misses its private L1 but hits the shared L2 *)
  Alcotest.(check int) "shared L2 hit from another core"
    cfg.Cache.l2.Cache.hit_latency
    (Cache.access c ~core:1 0);
  Alcotest.(check int) "then cached privately" 1 (Cache.access c ~core:1 0);
  (* evict the line from L2 with [ways] fresh conflicting lines (they
     spread across L3 sets, so it survives in L3) *)
  let l2_stride = cfg.Cache.l2.Cache.size_bytes / cfg.Cache.l2.Cache.ways in
  for k = 1 to cfg.Cache.l2.Cache.ways do
    ignore (Cache.access c ~core:0 (k * l2_stride))
  done;
  (* a third core that never touched the line finds it in shared L3 *)
  Alcotest.(check int) "shared L3 hit from a third core"
    cfg.Cache.l3.Cache.hit_latency
    (Cache.access c ~core:2 0)

let test_cache_hierarchy_order () =
  let c = Cache.create ~cores:1 () in
  ignore (Cache.access c ~core:0 0);
  let stats = Cache.stats c in
  Alcotest.(check bool) "stats well-formed" true
    (stats.Cache.l1_hit_rate >= 0.0 && stats.Cache.l1_hit_rate <= 1.0)

let test_branch_predictor () =
  let bp = Branch_pred.create () in
  (* an always-taken branch converges to zero penalty *)
  let penalties = List.init 20 (fun _ -> Branch_pred.access bp ~site:7 ~taken:true) in
  Alcotest.(check int) "steady state predicts taken" 0 (List.nth penalties 19);
  (* alternate: roughly half mispredict *)
  let bp2 = Branch_pred.create () in
  let total =
    List.fold_left ( + ) 0
      (List.init 100 (fun k -> Branch_pred.access bp2 ~site:3 ~taken:(k mod 2 = 0)))
  in
  Alcotest.(check bool) "alternating hurts" true (total >= 40 * Branch_pred.mispredict_penalty)

let compile src = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src)

let test_baseline_ipc_sane () =
  let prog =
    compile
      {|
int n = 2000;
int a[2000];
void main() {
  int i;
  int s = 0;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3; s = s + a[i]; }
  print_int(s);
}
|}
  in
  let r = Tls_machine.run prog in
  Alcotest.(check bool) "cycles positive" true (r.Tls_machine.cycles > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "IPC in-order range (%.2f)" r.Tls_machine.ipc)
    true
    (r.Tls_machine.ipc > 0.2 && r.Tls_machine.ipc <= 2.0)

let test_memory_bound_lower_ipc () =
  let small =
    compile
      {|
int a[512];
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 40000; i = i + 1) { s = s + a[i & 511]; }
  print_int(s);
}
|}
  in
  let big =
    compile
      {|
int a[524288];
void main() {
  int i;
  int s = 0;
  int j = 17;
  for (i = 0; i < 40000; i = i + 1) {
    j = (j * 40503 + 1) & 524287;
    s = s + a[j];
  }
  print_int(s);
}
|}
  in
  let r_small = Tls_machine.run small in
  let r_big = Tls_machine.run big in
  Alcotest.(check bool)
    (Printf.sprintf "misses lower IPC (%.2f vs %.2f)" r_small.Tls_machine.ipc
       r_big.Tls_machine.ipc)
    true
    (r_big.Tls_machine.ipc < r_small.Tls_machine.ipc *. 0.6)

(* helper: run the full driver on a source and return (eval, metrics of
   the first SPT loop if any) *)
let evaluate ?(config = Spt_driver.Config.best) src =
  Spt_driver.Pipeline.evaluate ~config src

let test_parallel_loop_speeds_up () =
  let e =
    evaluate
      {|
int n = 4000;
int a[4000];
int b[4000];
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) { b[i] = i * 7; }
  for (i = 0; i < n; i = i + 1) { a[i] = b[i] * 3 + (b[i] >> 2); }
  print_int(a[3999]);
}
|}
  in
  Alcotest.(check bool) "outputs match" true e.Spt_driver.Pipeline.outputs_match;
  Alcotest.(check bool) "selected loops" true (e.Spt_driver.Pipeline.n_spt_loops >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f > 1.1" e.Spt_driver.Pipeline.speedup)
    true
    (e.Spt_driver.Pipeline.speedup > 1.1)

let test_serial_loop_not_hurt () =
  (* a strict recurrence: the compiler should either reject the loop or
     at worst leave performance nearly untouched *)
  let e =
    evaluate
      {|
int n = 30000;
int a[256];
void main() {
  int i;
  int x = 1;
  for (i = 0; i < n; i = i + 1) { x = (x * 75 + a[x & 255]) & 65535; }
  print_int(x);
}
|}
  in
  Alcotest.(check bool) "outputs match" true e.Spt_driver.Pipeline.outputs_match;
  Alcotest.(check bool)
    (Printf.sprintf "no harm (%.3f)" e.Spt_driver.Pipeline.speedup)
    true
    (e.Spt_driver.Pipeline.speedup > 0.97)

let test_violations_detected () =
  (* a memory recurrence at distance 1 with a juicy-looking body: if the
     compiler (mis)selects it, the machine must report violations; if it
     rejects it, there is nothing to check *)
  let e =
    evaluate
      {|
int n = 20000;
int a[20000];
void main() {
  int i;
  for (i = 1; i < n; i = i + 1) {
    a[i] = a[i - 1] * 3 + i;
  }
  print_int(a[19999]);
}
|}
  in
  Alcotest.(check bool) "outputs match" true e.Spt_driver.Pipeline.outputs_match;
  List.iter
    (fun (_, lm) ->
      if lm.Tls_machine.lm_pairs > 100 then
        Alcotest.(check bool) "recurrence violates" true
          (lm.Tls_machine.lm_violated_pairs > lm.Tls_machine.lm_pairs / 2))
    e.Spt_driver.Pipeline.spt.Tls_machine.loop_metrics

let test_svp_loop_wins () =
  (* carried cursor with data-dependent but near-constant stride plus a
     heavy body: only SVP makes this loop profitable *)
  let src =
    {|
int n = 30000;
int a[30000];
int out[30000];
void main() {
  int i;
  srand(31);
  for (i = 0; i < n; i = i + 1) { a[i] = rand() & 4095; }
  int pos = 0;
  int emitted = 0;
  while (pos < n - 16) {
    int v = a[pos] * 3 + a[pos + 1] * 5 + a[pos + 2];
    int w = a[pos + 3] * 7 + a[pos + 4] * 11 + a[pos + 5] * 13;
    int u = (v ^ w) + (v >> 3) + (w >> 5) + a[pos + 6] + a[pos + 7];
    int q = u * 3 + v * w + (u & 255) + (v % 97) + (w % 89);
    out[emitted & 16383] = v + w + u + q;
    emitted = emitted + 1;
    int step = 2;
    if ((q & 2047) == 3) { step = 5; }
    pos = pos + step;
  }
  print_int(emitted);
}
|}
  in
  let e = evaluate src in
  Alcotest.(check bool) "outputs match" true e.Spt_driver.Pipeline.outputs_match;
  Alcotest.(check bool) "svp loop selected" true (e.Spt_driver.Pipeline.n_spt_loops >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "wins (%.2f)" e.Spt_driver.Pipeline.speedup)
    true
    (e.Spt_driver.Pipeline.speedup > 1.15);
  (* and it really was a value-predicted loop *)
  Alcotest.(check bool) "svp recorded" true
    (List.exists
       (fun lr -> lr.Spt_driver.Pipeline.lr_svp)
       e.Spt_driver.Pipeline.loops)

let test_coverage_metrics () =
  let e =
    evaluate
      {|
int n = 3000;
int a[3000];
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + (i >> 1); }
  print_int(a[2999]);
}
|}
  in
  let spt = e.Spt_driver.Pipeline.spt in
  if e.Spt_driver.Pipeline.n_spt_loops >= 1 then begin
    Alcotest.(check bool) "spt cycles accounted" true
      (spt.Tls_machine.spt_cycles_total > 0.0);
    Alcotest.(check bool) "coverage <= total" true
      (spt.Tls_machine.spt_cycles_total <= spt.Tls_machine.cycles)
  end;
  Alcotest.(check bool) "eligible coverage sane" true
    (e.Spt_driver.Pipeline.base.Tls_machine.eligible_loop_cycles
    <= e.Spt_driver.Pipeline.base.Tls_machine.cycles +. 1.0)

let suite =
  [
    Alcotest.test_case "cache LRU" `Quick test_cache_lru;
    Alcotest.test_case "cache LRU eviction order" `Quick
      test_cache_lru_eviction_order;
    Alcotest.test_case "cache cross-core sharing" `Quick
      test_cache_cross_core_sharing;
    Alcotest.test_case "cache stats" `Quick test_cache_hierarchy_order;
    Alcotest.test_case "branch predictor" `Quick test_branch_predictor;
    Alcotest.test_case "baseline IPC sane" `Quick test_baseline_ipc_sane;
    Alcotest.test_case "memory-bound IPC" `Quick test_memory_bound_lower_ipc;
    Alcotest.test_case "parallel loop speeds up" `Slow test_parallel_loop_speeds_up;
    Alcotest.test_case "serial loop not hurt" `Slow test_serial_loop_not_hurt;
    Alcotest.test_case "violations detected" `Slow test_violations_detected;
    Alcotest.test_case "SVP loop wins" `Slow test_svp_loop_wins;
    Alcotest.test_case "coverage metrics" `Slow test_coverage_metrics;
  ]
