let () =
  Alcotest.run "spt"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("frontend", Test_frontend.suite);
      ("interp", Test_interp.suite);
      ("exec", Test_exec.suite);
      ("ir", Test_ir.suite);
      ("cost", Test_cost.suite);
      ("depgraph", Test_depgraph.suite);
      ("partition", Test_partition.suite);
      ("transform", Test_transform.suite);
      ("profile", Test_profile.suite);
      ("tlsim", Test_tlsim.suite);
      ("driver", Test_driver.suite);
      ("runtime", Test_runtime.suite);
      ("depth", Test_depth.suite);
      ("feedback", Test_feedback.suite);
      ("profdb", Test_profdb.suite);
      ("service", Test_service.suite);
      ("loadgen", Test_loadgen.suite);
      ("fuzz", Test_fuzz.suite);
      ("cli", Test_cli.suite);
      ("workloads", Test_workloads.suite);
    ]
