(** Speculative runtime tests: the domain pool, the speculative store
    buffer (validation, rollback, view chains), the de-speculation
    valve, and the headline acceptance criteria — sequential
    equivalence of every workload under jobs ∈ {1, 2, 4} (including a
    misspeculation stress program) and outcome determinism of repeated
    parallel runs. *)

open Spt_runtime
module Interp = Spt_interp.Interp
module Eval = Spt_ir.Eval
module Ir = Spt_ir.Ir
module Pipeline = Spt_driver.Pipeline
module Config = Spt_driver.Config
module Suite = Spt_workloads.Suite

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_runs_jobs () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.(check int) "size" 4 (Pool.size pool);
  let hits = Atomic.make 0 in
  for _ = 1 to 200 do
    Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "all jobs ran" 200 (Atomic.get hits)

let test_pool_survives_exceptions () =
  let pool = Pool.create ~jobs:2 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 10 do
    Pool.submit pool (fun () -> failwith "boom");
    Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "workers survive raising jobs" 10 (Atomic.get hits);
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Specmem *)

let vi n = Eval.Vi (Int64.of_int n)

let fresh_master () =
  let mem = Array.make 8 (vi 0) in
  let regs = Array.make 4 None in
  let rng = ref 7L in
  let out = Buffer.create 16 in
  ( {
      Specmem.m_mem = mem;
      m_regs = regs;
      m_rng_get = (fun () -> !rng);
      m_rng_set = (fun v -> rng := v);
      m_out = out;
    },
    mem,
    regs,
    out )

let var vid = { Ir.vid; vname = Printf.sprintf "v%d" vid; vty = Ir.I64 }

let test_specmem_buffering () =
  let master, mem, regs, out = fresh_master () in
  mem.(3) <- vi 30;
  regs.(1) <- Some (vi 10);
  let v = Specmem.create master in
  let mio = Specmem.memio v and rio = Specmem.regio v in
  (* reads come from master and are logged *)
  Alcotest.(check bool) "read master mem" true
    (Specmem.value_eq (mio.Interp.mio_load 3) (vi 30));
  Alcotest.(check bool) "read master reg" true
    (rio.Interp.rio_get (var 1) = Some (vi 10));
  (* writes are buffered: master unchanged until commit *)
  mio.Interp.mio_store 3 (vi 99);
  rio.Interp.rio_set (var 2) (vi 42);
  mio.Interp.mio_print "spec!";
  Alcotest.(check bool) "store buffered" true
    (Specmem.value_eq mem.(3) (vi 30));
  Alcotest.(check bool) "reg buffered" true (regs.(2) = None);
  Alcotest.(check string) "output buffered" "" (Buffer.contents out);
  (* the view reads its own writes *)
  Alcotest.(check bool) "read own store" true
    (Specmem.value_eq (mio.Interp.mio_load 3) (vi 99));
  Alcotest.(check bool) "validates" true
    (Result.is_ok (Specmem.validate v));
  Specmem.commit v;
  Alcotest.(check bool) "mem committed" true
    (Specmem.value_eq mem.(3) (vi 99));
  Alcotest.(check bool) "reg committed" true (regs.(2) = Some (vi 42));
  Alcotest.(check string) "output committed" "spec!" (Buffer.contents out);
  Alcotest.(check bool) "committed flag" true (Specmem.is_committed v)

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_specmem_violation_rollback () =
  let master, mem, _, out = fresh_master () in
  mem.(0) <- vi 5;
  let v = Specmem.create master in
  let mio = Specmem.memio v in
  ignore (mio.Interp.mio_load 0);
  mio.Interp.mio_store 1 (vi 123);
  mio.Interp.mio_print "dead";
  (* the "main thread" stores to the address the view read *)
  mem.(0) <- vi 6;
  (match Specmem.validate v with
  | Ok () -> Alcotest.fail "stale read not detected"
  | Error stale ->
    Alcotest.(check bool)
      "names the address" true
      (contains (Specmem.string_of_stale stale) "mem[0]"));
  (* rollback = simply not committing: no speculative effect escaped *)
  Alcotest.(check bool) "mem untouched" true
    (Specmem.value_eq mem.(1) (vi 0));
  Alcotest.(check string) "output untouched" "" (Buffer.contents out)

let test_specmem_chain () =
  let master, mem, _, _ = fresh_master () in
  mem.(2) <- vi 1;
  let p1 = Specmem.create master in
  (Specmem.memio p1).Interp.mio_store 2 (vi 11);
  (* the child sees the uncommitted parent's write *)
  let s1 = Specmem.create ~parent:p1 master in
  Alcotest.(check bool) "reads through chain" true
    (Specmem.value_eq ((Specmem.memio s1).Interp.mio_load 2) (vi 11));
  (* once the parent commits, a fresh child reads master (same value) *)
  Specmem.commit p1;
  let s2 = Specmem.create ~parent:p1 master in
  Alcotest.(check bool) "committed parent falls through to master" true
    (Specmem.value_eq ((Specmem.memio s2).Interp.mio_load 2) (vi 11));
  Alcotest.(check bool) "master holds the committed value" true
    (Specmem.value_eq mem.(2) (vi 11));
  (* read footprints are tracked *)
  let reads, writes = Specmem.footprint p1 in
  Alcotest.(check int) "parent logged no reads" 0 reads;
  Alcotest.(check int) "parent logged one write" 1 writes

let test_specmem_rng_and_floats () =
  let master, _, _, _ = fresh_master () in
  let v = Specmem.create master in
  let mio = Specmem.memio v in
  Alcotest.(check int64) "rng read through" 7L (mio.Interp.mio_rng ());
  mio.Interp.mio_set_rng 13L;
  Alcotest.(check int64) "rng buffered locally" 13L (mio.Interp.mio_rng ());
  (* bit-level float equality: NaN = NaN, -0. <> 0. *)
  Alcotest.(check bool) "nan eq" true
    (Specmem.value_eq (Eval.Vf Float.nan) (Eval.Vf Float.nan));
  Alcotest.(check bool) "signed zero" false
    (Specmem.value_eq (Eval.Vf 0.0) (Eval.Vf (-0.0)))

(* rollback edge cases: the kill path races abandoned workers, so its
   exact semantics (drop late writes, stay idempotent) are what keeps
   the scheduler's "finish into dead views" pattern sound *)

let test_specmem_write_after_kill () =
  let master, mem, _, out = fresh_master () in
  let v = Specmem.create master in
  let mio = Specmem.memio v in
  mio.Interp.mio_store 2 (vi 21);
  Specmem.rollback v;
  (* an abandoned worker still finishing into the dead view *)
  mio.Interp.mio_store 3 (vi 33);
  mio.Interp.mio_print "late";
  Alcotest.(check bool) "rolled back" true (Specmem.is_rolled_back v);
  Alcotest.(check bool) "pre-kill write never reaches master" true
    (Specmem.value_eq mem.(2) (vi 0));
  Alcotest.(check bool) "late write dropped" true
    (Specmem.value_eq mem.(3) (vi 0));
  Alcotest.(check string) "late output dropped" "" (Buffer.contents out);
  (* a descendant chained through the dead view must read master,
     not the dead buffer *)
  let s = Specmem.create ~parent:v master in
  Alcotest.(check bool) "descendant skips dead buffer" true
    (Specmem.value_eq ((Specmem.memio s).Interp.mio_load 2) (vi 0));
  (* committing a killed view is a programming error *)
  Alcotest.check_raises "commit after rollback rejected"
    (Invalid_argument "Specmem.commit: view was rolled back") (fun () ->
      Specmem.commit v)

let test_specmem_double_rollback () =
  let master, mem, _, _ = fresh_master () in
  let v = Specmem.create master in
  (Specmem.memio v).Interp.mio_store 1 (vi 11);
  Specmem.rollback v;
  (* idempotent: the second rollback is the first rollback *)
  Specmem.rollback v;
  Alcotest.(check bool) "still rolled back" true (Specmem.is_rolled_back v);
  Alcotest.(check bool) "still not committed" false (Specmem.is_committed v);
  Alcotest.(check bool) "write still dropped" true
    (Specmem.value_eq mem.(1) (vi 0))

let test_specmem_empty_commit () =
  let master, mem, _, out = fresh_master () in
  mem.(0) <- vi 5;
  let v = Specmem.create master in
  (* no reads, no writes: a task that immediately hit the header *)
  Alcotest.(check bool) "empty view validates" true
    (Result.is_ok (Specmem.validate v));
  Specmem.commit v;
  Alcotest.(check bool) "committed" true (Specmem.is_committed v);
  Alcotest.(check bool) "master untouched" true
    (Specmem.value_eq mem.(0) (vi 5));
  Alcotest.(check string) "no output" "" (Buffer.contents out);
  let r, w = Specmem.footprint v in
  Alcotest.(check (pair int int)) "empty footprint" (0, 0) (r, w)

let test_specmem_validate_empty_read_log () =
  let master, mem, regs, _ = fresh_master () in
  let v = Specmem.create master in
  (* write-only task: master may change arbitrarily underneath it and
     validation must still pass — nothing was observed *)
  (Specmem.memio v).Interp.mio_store 4 (vi 44);
  mem.(4) <- vi 99;
  mem.(0) <- vi 1;
  regs.(0) <- Some (vi 2);
  Alcotest.(check bool) "no reads, nothing stale" true
    (Result.is_ok (Specmem.validate v));
  Specmem.commit v;
  Alcotest.(check bool) "buffered write lands over the interim value" true
    (Specmem.value_eq mem.(4) (vi 44))

(* ------------------------------------------------------------------ *)
(* Whole-program speculation *)

(* the scatter-update loop of examples/src/histogram.c: selected for
   SPT under the best config, with a genuine (profiled-rare,
   dynamically-real) cross-iteration dependence through [table] — the
   misspeculation stress case *)
let stress_src =
  {|
int n = 30000;
int table[8192];
int keys[30000];
int checksum;

void main() {
  int i;
  srand(99);
  for (i = 0; i < n; i = i + 1) { keys[i] = rand() & 8191; }
  for (i = 0; i < 8192; i = i + 1) { table[i] = i; }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int k = keys[i];
    int v = table[k];
    table[k] = v * 2 + (k & 7) + 1;
    acc = acc + (v & 15);
  }
  checksum = acc + table[0] + table[8191];
  print_int(checksum);
}
|}

let loops_of (spt : Pipeline.spt_compilation) =
  List.map
    (fun (sl : Spt_tlsim.Tls_machine.spt_loop) ->
      let record =
        List.find_opt
          (fun (r : Pipeline.loop_record) ->
            String.equal r.Pipeline.lr_func sl.Spt_tlsim.Tls_machine.sl_fname
            && r.Pipeline.lr_header = sl.Spt_tlsim.Tls_machine.sl_header)
          spt.Pipeline.records
      in
      {
        Runtime.ls_id = sl.Spt_tlsim.Tls_machine.sl_id;
        ls_fname = sl.Spt_tlsim.Tls_machine.sl_fname;
        ls_header = sl.Spt_tlsim.Tls_machine.sl_header;
        ls_iter_ops =
          (match record with
          | Some r -> r.Pipeline.lr_body_size
          | None -> 0.0);
        ls_depth =
          (match record with Some r -> r.Pipeline.lr_depth | None -> 0);
      })
    spt.Pipeline.spt_loops

let rt_config ?(despec_after = 3) ?(engine = Spt_exec.Engine.Bytecode) ?chunk
    ?depth ?timeline jobs =
  {
    Runtime.jobs;
    window = 2 * jobs;
    despec_after;
    spec_fuel = 2_000_000;
    max_steps = 200_000_000;
    oracle = true;
    engine;
    chunk;
    depth;
    timeline;
  }

let run_spt ?despec_after ?engine ?chunk ?depth ~jobs
    (spt : Pipeline.spt_compilation) =
  Runtime.run
    ~config:(rt_config ?despec_after ?engine ?chunk ?depth jobs)
    ~loops:(loops_of spt) spt.Pipeline.program

let check_oracle name (r : Runtime.result) =
  match r.Runtime.oracle with
  | `Match -> ()
  | `Mismatch m -> Alcotest.fail (Printf.sprintf "%s: oracle: %s" name m)
  | `Skipped -> Alcotest.fail (name ^ ": oracle unexpectedly skipped")

let total f stats = List.fold_left (fun acc (_, s) -> acc + f s) 0 stats

let test_stress_misspeculates_and_matches () =
  let spt = Pipeline.compile_spt Config.best stress_src in
  Alcotest.(check bool) "stress loop selected" true
    (List.length spt.Pipeline.spt_loops >= 1);
  (* a huge valve threshold so misspeculations keep accumulating *)
  let r = run_spt ~despec_after:1_000_000 ~jobs:2 spt in
  check_oracle "stress" r;
  let misspecs =
    total (fun s -> s.Runtime.violations + s.Runtime.faults) r.Runtime.stats
  in
  Alcotest.(check bool) "misspeculation actually happened" true (misspecs > 0);
  Alcotest.(check bool) "and was recovered serially" true
    (total (fun s -> s.Runtime.serial_reexecs) r.Runtime.stats = misspecs)

let test_despeculation_valve () =
  let spt = Pipeline.compile_spt Config.best stress_src in
  let r = run_spt ~despec_after:2 ~jobs:2 spt in
  check_oracle "valve" r;
  Alcotest.(check bool) "valve tripped" true
    (total (fun s -> s.Runtime.despecs) r.Runtime.stats >= 1);
  (* after the valve, the loop runs sequentially: speculation stops, so
     far fewer forks than the 30000 iterations *)
  Alcotest.(check bool) "speculation stopped" true
    (total (fun s -> s.Runtime.forks) r.Runtime.stats < 1000)

let test_commits_happen () =
  (* a clean parallel loop: every fork should commit *)
  let src =
    {|
int n = 5000;
int a[5000];
int b[5000];
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 1; }
  int s = 0;
  for (i = 0; i < n; i = i + 1) {
    int x = a[i];
    int y = x * x + 7;
    b[i] = y - (x & 31);
    s = s + (y & 3);
  }
  print_int(s + b[0] + b[4999]);
}
|}
  in
  let spt = Pipeline.compile_spt Config.best src in
  let r = run_spt ~jobs:2 spt in
  check_oracle "clean loop" r;
  (* commits count chunks (one validation per chunk of ~20 iterations),
     and iters count *unrolled* iterations: the 5000-trip source loops
     are unrolled 8x, so a fully speculated loop retires 625.  The init
     loop is genuinely independent and must speculate its whole trip
     without a single violation; the compute loop carries an accumulator
     through the post-fork region, which backbone prediction cannot
     supply — the runtime value predictor learns its chunk stride after
     the first violations and keeps it speculative (test_depth.ml pins
     despecs = 0 for exactly this shape). *)
  let commits = total (fun s -> s.Runtime.commits) r.Runtime.stats in
  Alcotest.(check bool) "speculation commits" true (commits > 10);
  let clean_full =
    List.exists
      (fun (_, s) -> s.Runtime.violations = 0 && s.Runtime.iters >= 600)
      r.Runtime.stats
  in
  Alcotest.(check bool) "independent loop fully speculated" true clean_full

let test_forced_chunk_and_engine () =
  (* forced chunk sizes and both engines must agree with the default
     run observable-for-observable, and record the forced size *)
  let spt = Pipeline.compile_spt Config.best stress_src in
  let base = run_spt ~jobs:2 spt in
  check_oracle "chunk base" base;
  List.iter
    (fun (engine, chunk) ->
      let r = run_spt ~engine ~chunk ~jobs:2 spt in
      check_oracle
        (Printf.sprintf "%s/chunk%d" (Spt_exec.Engine.string_of_kind engine)
           chunk)
        r;
      Alcotest.(check string) "same output" base.Runtime.output r.Runtime.output;
      Alcotest.(check string) "same heap" base.Runtime.heap_digest
        r.Runtime.heap_digest;
      List.iter
        (fun (_, (s : Runtime.loop_stats)) ->
          Alcotest.(check int) "forced chunk recorded" chunk s.Runtime.chunk)
        r.Runtime.stats)
    [
      (Spt_exec.Engine.Bytecode, 1);
      (Spt_exec.Engine.Bytecode, 64);
      (Spt_exec.Engine.Tree, 16);
    ]

let test_workload_equivalence () =
  (* the headline criterion: every workload, jobs ∈ {1, 2, 4},
     byte-identical output (the oracle also compares the final heap) *)
  List.iter
    (fun (w : Suite.workload) ->
      let spt = Pipeline.compile_spt Config.best w.Suite.source in
      List.iter
        (fun jobs ->
          let r = run_spt ~jobs spt in
          check_oracle (Printf.sprintf "%s/j%d" w.Suite.name jobs) r)
        [ 1; 2; 4 ])
    Suite.all

let test_outcome_determinism () =
  (* identical output and final heap across repeated parallel runs,
     even for the misspeculating stress program *)
  let spt = Pipeline.compile_spt Config.best stress_src in
  let r1 = run_spt ~jobs:4 spt in
  let r2 = run_spt ~jobs:4 spt in
  Alcotest.(check string) "same output" r1.Runtime.output r2.Runtime.output;
  Alcotest.(check string) "same final heap" r1.Runtime.heap_digest
    r2.Runtime.heap_digest;
  check_oracle "determinism run 1" r1;
  check_oracle "determinism run 2" r2

let test_run_parallel_measures () =
  let pr = Pipeline.run_parallel ~config:Config.best ~jobs:2 stress_src in
  Alcotest.(check int) "jobs recorded" 2 pr.Pipeline.pr_jobs;
  Alcotest.(check bool) "speedup positive" true
    (pr.Pipeline.pr_measured_speedup > 0.0);
  Alcotest.(check bool) "runtime stats present" true
    (pr.Pipeline.pr_n_loops >= 1);
  (* and the metrics report carries the runtime counters *)
  let json =
    Spt_driver.Report.metrics_json
      ~parallel:[ ("stress", pr.Pipeline.pr_runtime) ]
      []
  in
  let s = Spt_obs.Json.to_string json in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in report") true (contains s key))
    [ "forks"; "commits"; "kills"; "violations"; "despeculations"; "runtime" ]

let suite =
  [
    Alcotest.test_case "pool runs jobs" `Quick test_pool_runs_jobs;
    Alcotest.test_case "pool survives exceptions" `Quick
      test_pool_survives_exceptions;
    Alcotest.test_case "specmem buffering" `Quick test_specmem_buffering;
    Alcotest.test_case "specmem violation + rollback" `Quick
      test_specmem_violation_rollback;
    Alcotest.test_case "specmem view chain" `Quick test_specmem_chain;
    Alcotest.test_case "specmem rng + floats" `Quick
      test_specmem_rng_and_floats;
    Alcotest.test_case "specmem write after kill" `Quick
      test_specmem_write_after_kill;
    Alcotest.test_case "specmem double rollback" `Quick
      test_specmem_double_rollback;
    Alcotest.test_case "specmem empty commit" `Quick test_specmem_empty_commit;
    Alcotest.test_case "specmem validate empty read log" `Quick
      test_specmem_validate_empty_read_log;
    Alcotest.test_case "stress misspeculates, still matches" `Slow
      test_stress_misspeculates_and_matches;
    Alcotest.test_case "despeculation valve" `Slow test_despeculation_valve;
    Alcotest.test_case "clean loop commits" `Slow test_commits_happen;
    Alcotest.test_case "forced chunk + engine equivalence" `Slow
      test_forced_chunk_and_engine;
    Alcotest.test_case "workload equivalence x jobs {1,2,4}" `Slow
      test_workload_equivalence;
    Alcotest.test_case "outcome determinism" `Slow test_outcome_determinism;
    Alcotest.test_case "run_parallel measures" `Slow test_run_parallel_measures;
  ]
