(** Partition-search tests (§5): closure legality, VC-dep graph search,
    the Fig. 8/9 search space, pruning vs exhaustive equivalence, and
    the too-many-candidates skip. *)

open Spt_ir
open Spt_depgraph
open Spt_partition
module Iset = Set.Make (Int)

let build ?(config = Depgraph.default_config) src =
  let prog = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src) in
  let f = Ir.func_of_program prog "main" in
  Ssa.construct f;
  Passes.optimize_ssa f;
  let eff = Effects.compute prog in
  let l = List.hd (Loops.find f) in
  (f, Depgraph.build ~config eff f l)

let induction_loop =
  {|
int n = 40;
int a[40];
int b[40];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = b[i] * 2 + 1;
    i = i + 1;
  }
  print_int(a[7]);
}
|}

let test_closure_contains_ancestors () =
  let _, g = build induction_loop in
  let anc = Partition.ancestors g in
  List.iter
    (fun vc ->
      let cl = anc vc in
      Alcotest.(check bool) "vc in own closure" true (Iset.mem vc cl);
      (* every register operand defined in the loop must be in the closure *)
      Iset.iter
        (fun iid ->
          List.iter
            (fun v ->
              let def =
                List.find_opt
                  (fun j ->
                    match Ir.def_of_kind (Depgraph.instr g j).Ir.kind with
                    | Some d -> Ir.Var.equal d v
                    | None -> false)
                  g.Depgraph.nodes
              in
              match def with
              | Some j ->
                Alcotest.(check bool)
                  (Printf.sprintf "closure closed under deps (%d needs %d)" iid j)
                  true (Iset.mem j cl)
              | None -> ())
            (Ir.reg_uses_of_kind (Depgraph.instr g iid).Ir.kind))
        cl)
    (Depgraph.violation_candidates g)

let test_search_moves_induction () =
  let _, g = build induction_loop in
  let cm = Spt_cost.Cost_model.build g in
  match Partition.search cm g with
  | Partition.Found r ->
    (* the only carried value is i: the optimal partition moves it and
       reaches (near-)zero cost with a tiny pre-fork region *)
    Alcotest.(check bool) "cost near zero" true (r.Partition.cost < 0.5);
    Alcotest.(check bool) "pre-fork small" true (r.Partition.prefork_size <= 8);
    Alcotest.(check bool) "chose at least one VC" true
      (not (Iset.is_empty r.Partition.chosen_vcs));
    Alcotest.(check bool) "search exhausted" true r.Partition.exhausted
  | Partition.Too_many_vcs _ -> Alcotest.fail "unexpected VC explosion"

let test_empty_partition_feasible () =
  (* a loop with an unmovable carried value (memory recurrence): the
     search still returns something (possibly the empty pre-fork) *)
  let _, g =
    build
      {|
int n = 40;
int a[40];
void main() {
  int i = 1;
  while (i < n) {
    a[i] = a[i - 1] + a[i];
    i = i + 1;
  }
  print_int(a[39]);
}
|}
  in
  let cm = Spt_cost.Cost_model.build g in
  match Partition.search cm g with
  | Partition.Found r -> Alcotest.(check bool) "cost positive" true (r.Partition.cost > 0.0)
  | Partition.Too_many_vcs _ -> Alcotest.fail "unexpected VC explosion"

let test_pruning_equals_exhaustive () =
  (* the two pruning heuristics must not change the optimum (§5.2.1) *)
  let srcs =
    [
      induction_loop;
      {|
int n = 40;
int a[40];
int b[40];
int c[40];
void main() {
  int i = 0;
  int s = 0;
  int t = 1;
  while (i < n) {
    s = s + a[i];
    t = (t * 3) & 1023;
    b[i] = s + t;
    c[i] = b[i] * 2;
    i = i + 1;
  }
  print_int(s + t);
}
|};
    ]
  in
  List.iter
    (fun src ->
      let _, g = build src in
      let cm = Spt_cost.Cost_model.build g in
      let body = Partition.body_size g in
      let opts use_pruning =
        { (Partition.default_options ~body_size:body) with Partition.use_pruning }
      in
      match
        ( Partition.search ~options:(Some (opts true)) cm g,
          Partition.search ~options:(Some (opts false)) cm g )
      with
      | Partition.Found pruned, Partition.Found full ->
        Alcotest.(check (float 1e-9))
          "same optimal cost" full.Partition.cost pruned.Partition.cost;
        Alcotest.(check bool) "pruned explores no more nodes" true
          (pruned.Partition.nodes_explored <= full.Partition.nodes_explored)
      | _ -> Alcotest.fail "searches disagree on feasibility")
    srcs

let test_search_matches_brute_force () =
  (* the branch-and-bound optimum must equal a brute-force minimum over
     *every* subset of the violation candidates.  Enumerating all 2^n
     subsets (not just the predecessor-closed ones the search walks) is
     exhaustive WLOG: the statement content of a partition is the
     closure of its VC set, and closure(S) = closure(downward-closure S),
     so every subset's cost is realized by some closed subset too. *)
  let srcs =
    [
      induction_loop;
      {|
int n = 40;
int a[40];
int b[40];
int c[40];
void main() {
  int i = 0;
  int s = 0;
  int t = 1;
  while (i < n) {
    s = s + a[i];
    t = (t * 3) & 1023;
    b[i] = s + t;
    c[i] = b[i] * 2;
    i = i + 1;
  }
  print_int(s + t);
}
|};
      {|
int n = 40;
int a[40];
void main() {
  int i = 0;
  int d = 0;
  int e = 0;
  while (i < n) {
    d = d + 2;
    e = e + d;
    a[i] = e;
    i = i + 1;
  }
  print_int(e);
}
|};
    ]
  in
  List.iter
    (fun src ->
      let _, g = build src in
      let cm = Spt_cost.Cost_model.build g in
      let vcs = Array.of_list (Depgraph.violation_candidates g) in
      let n = Array.length vcs in
      Alcotest.(check bool)
        (Printf.sprintf "%d candidates fit brute force" n)
        true
        (n >= 1 && n <= 12);
      let anc = Partition.ancestors g in
      let limit =
        (Partition.default_options ~body_size:(Partition.body_size g))
          .Partition.prefork_size_limit
      in
      (* the empty subset is always feasible, so the minimum exists *)
      let best = ref infinity in
      for mask = 0 to (1 lsl n) - 1 do
        let subset = ref Iset.empty in
        Array.iteri
          (fun i vc -> if mask land (1 lsl i) <> 0 then subset := Iset.add vc !subset)
          vcs;
        let prefork = Partition.closure g ~anc !subset in
        if Partition.size_of g prefork <= limit then begin
          let cost = Spt_cost.Cost_model.misspeculation_cost cm ~prefork in
          if cost < !best then best := cost
        end
      done;
      match Partition.search cm g with
      | Partition.Found r ->
        Alcotest.(check (float 1e-9))
          "pruned search finds the brute-force optimum" !best r.Partition.cost
      | Partition.Too_many_vcs _ -> Alcotest.fail "unexpected VC explosion")
    srcs

let test_too_many_vcs () =
  let _, g = build induction_loop in
  let cm = Spt_cost.Cost_model.build g in
  let opts =
    { (Partition.default_options ~body_size:(Partition.body_size g)) with Partition.max_vcs = 0 }
  in
  match Partition.search ~options:(Some opts) cm g with
  | Partition.Too_many_vcs n -> Alcotest.(check bool) "count reported" true (n > 0)
  | Partition.Found _ -> Alcotest.fail "expected Too_many_vcs"

let test_size_threshold_respected () =
  let _, g = build induction_loop in
  let cm = Spt_cost.Cost_model.build g in
  let opts =
    {
      (Partition.default_options ~body_size:(Partition.body_size g)) with
      Partition.prefork_size_limit = 0;
    }
  in
  match Partition.search ~options:(Some opts) cm g with
  | Partition.Found r ->
    Alcotest.(check int) "forced to the empty partition" 0 r.Partition.prefork_size
  | Partition.Too_many_vcs _ -> Alcotest.fail "unexpected"

(* Fig. 8/9: with three violation candidates D, E, F and the VC-dep
   edge D->E, the search space has exactly the 7 subsets closed under
   predecessors ({},{D},{E}x -- E requires D...).  We verify the
   explored-node count: subsets of {D,E,F} where E implies D:
   {}, {D}, {F}, {D,E}, {D,F}, {D,E,F} -> 6 nodes. *)
let test_fig8_search_space () =
  let _, g =
    build
      {|
int n = 40;
int a[40];
void main() {
  int i = 0;
  int d = 0;
  int e = 0;
  while (i < n) {
    d = d + 2;
    e = e + d;
    a[i] = e;
    i = i + 1;
  }
  print_int(e);
}
|}
  in
  (* VCs: i, d, e with e dependent on d *)
  let cm = Spt_cost.Cost_model.build g in
  match Partition.search cm g with
  | Partition.Found r ->
    Alcotest.(check bool) "all three movable" true (r.Partition.cost < 0.5);
    (* universe: subsets of {i, d, e} with e=>d: 6 subsets *)
    Alcotest.(check bool)
      (Printf.sprintf "explored %d nodes (expected <= 6)" r.Partition.nodes_explored)
      true
      (r.Partition.nodes_explored <= 6)
  | Partition.Too_many_vcs _ -> Alcotest.fail "unexpected"

let suite =
  [
    Alcotest.test_case "closure closed under deps" `Quick test_closure_contains_ancestors;
    Alcotest.test_case "search moves induction" `Quick test_search_moves_induction;
    Alcotest.test_case "empty partition feasible" `Quick test_empty_partition_feasible;
    Alcotest.test_case "pruning = exhaustive" `Quick test_pruning_equals_exhaustive;
    Alcotest.test_case "search = brute force over all subsets" `Quick
      test_search_matches_brute_force;
    Alcotest.test_case "too many VCs skip" `Quick test_too_many_vcs;
    Alcotest.test_case "size threshold" `Quick test_size_threshold_respected;
    Alcotest.test_case "Fig 8/9 search space" `Quick test_fig8_search_space;
  ]
