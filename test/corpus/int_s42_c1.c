// spt-fuzz interesting case: 2 SPT loop(s), 33 misspeculation(s) observed, all matrix points agree
// generated from: sptc fuzz --seed 42 --index 1 --count 1 --matrix seq,par,cache,feedback
int a0[17];
int a1[11];
int g0 = 7;
int g1 = 3;

int h0(int x, int y) {
  int t = ((x * 3) * y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 32);
}

int h1(int x, int y) {
  int t = ((x * 1) * y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 69);
}

void main() {
  int s0 = 5;
  int s1 = 3;
  int s2 = 7;
  for (int i0 = 0; (i0 < 15); i0 = (i0 + 1)) {
    g0 = (g0 - ((7 / 7) / 9));
    g0 = (g0 ^ ((12 * a1[(((i0 * 2) + 0) % 11)]) + h1(s1, s2)));
  }
  {
    int i1 = 0;
    do {
      s2 = 7;
      a1[((i1 + 1) % 11)] = ((16 & 3) + (s2 | 0));
      s0 = (s0 + g0);
      a1[(((i1 * 1) + 0) % 11)] = 1;
      a0[(i1 % 17)] = (a0[((i1 + 16) % 17)] + (a0[(i1 % 17)] & 14));
      i1 = (i1 + 1);
    } while ((i1 < 11));
  }
  print_int(g0);
  print_int(g1);
  print_int(s0);
  print_int(s1);
  print_int(s2);
  int cs2 = 0;
  for (int ci3 = 0; (ci3 < 17); ci3 = (ci3 + 1)) {
    cs2 = (cs2 + (a0[ci3] * (ci3 + 1)));
  }
  print_int(cs2);
  int cs4 = 0;
  for (int ci5 = 0; (ci5 < 11); ci5 = (ci5 + 1)) {
    cs4 = (cs4 + (a1[ci5] * (ci5 + 1)));
  }
  print_int(cs4);
}
