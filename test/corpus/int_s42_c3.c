// spt-fuzz interesting case: 3 SPT loop(s), 55 misspeculation(s) observed, all matrix points agree
// generated from: sptc fuzz --seed 42 --index 3 --count 1 --matrix seq,par,cache,feedback
int a0[8] = {-4, 22, 6, 5, 20, 21, 0, 21};
int a1[24] = {23, 21, 11, 6, 9, 20, 15, 22, 18, 15, 6, 22, -8, -1, 11, 2, 12, 14, 18, 22, 14, 21, 5, -3};
int a2[18] = {7, 1, 10, 1, -1, 15, -4, 3, 14, 1, 6, 20, -8, 5, 6, -6, -8, 15};

int h0(int x, int y) {
  int t = ((x * 4) - y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 44);
}

int h1(int x, int y) {
  int t = ((x * 5) + y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 61);
}

void main() {
  int s0 = 2;
  int s1 = 1;
  int s2 = 0;
  int s3 = 1;
  for (int i0 = 0; (i0 < 5); i0 = (i0 + 1)) {
    s0 = (s0 ^ -(max(12, 11)));
  }
  for (int i1 = 0; (i1 < 7); i1 = (i1 + 1)) {
    s2 = (s2 ^ (max(s1, a0[(((i1 * 2) + 0) % 8)]) / 9));
    s2 = (8 + s3);
    a2[(i1 % 18)] = min((6 - 7), s3);
    print_int(-(s2));
    s0 = s3;
  }
  {
    int i2 = 0;
    while ((i2 < 7)) {
      s1 = ((i2 / 8) - (i2 / 4));
      s1 = (s1 ^ a1[((i2 + 23) % 24)]);
      s1 = (s1 + -((a2[(i2 % 18)] + i2)));
      a0[(((i2 * 1) + 5) % 8)] = ((a0[(i2 % 8)] + s0) | (s3 & 4));
      a1[(i2 % 24)] = -((12 * i2));
      a1[(i2 % 24)] = ((s2 % 2) + 3);
      i2 = (i2 + 1);
    }
  }
  print_int(s0);
  print_int(s1);
  print_int(s2);
  print_int(s3);
  int cs3 = 0;
  for (int ci4 = 0; (ci4 < 8); ci4 = (ci4 + 1)) {
    cs3 = (cs3 + (a0[ci4] * (ci4 + 1)));
  }
  print_int(cs3);
  int cs5 = 0;
  for (int ci6 = 0; (ci6 < 24); ci6 = (ci6 + 1)) {
    cs5 = (cs5 + (a1[ci6] * (ci6 + 1)));
  }
  print_int(cs5);
  int cs7 = 0;
  for (int ci8 = 0; (ci8 < 18); ci8 = (ci8 + 1)) {
    cs7 = (cs7 + (a2[ci8] * (ci8 + 1)));
  }
  print_int(cs7);
}
