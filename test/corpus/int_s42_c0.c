// spt-fuzz interesting case: 3 SPT loop(s), 48 misspeculation(s) observed, all matrix points agree
// generated from: sptc fuzz --seed 42 --index 0 --count 1 --matrix seq,par,cache,feedback
int a0[24];
int g0 = 4;

void main() {
  int s0 = 3;
  int s1 = 2;
  int s2 = 7;
  int s3 = 7;
  for (int i0 = 0; (i0 < 15); i0 = (i0 + 1)) {
    g0 = ((i0 % 9) + (7 + 9));
    g0 = (-1 + (i0 / 5));
  }
  for (int i1 = 0; (i1 < 19); i1 = (i1 + 1)) {
    a0[((i1 + 4) % 24)] = ((5 ^ 8) / 3);
    print_int((i1 + i1));
    a0[(((i1 * 1) + 3) % 24)] = i1;
    s0 = ((1 ^ s3) + (-5 + 4));
    s2 = (s2 + (14 % 3));
    a0[(((i1 * 3) + 2) % 24)] = ((s1 - a0[(((i1 * 2) + 2) % 24)]) ^ s1);
  }
  print_int(g0);
  print_int(s0);
  print_int(s1);
  print_int(s2);
  print_int(s3);
  int cs2 = 0;
  for (int ci3 = 0; (ci3 < 24); ci3 = (ci3 + 1)) {
    cs2 = (cs2 + (a0[ci3] * (ci3 + 1)));
  }
  print_int(cs2);
}
