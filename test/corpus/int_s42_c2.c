// spt-fuzz interesting case: 1 SPT loop(s), 18 misspeculation(s) observed, all matrix points agree
// generated from: sptc fuzz --seed 42 --index 2 --count 1 --matrix seq,par,cache,feedback
int a0[11] = {-4, -2, 6, 21, -6, 19, -1, 14, 18, 5, 8};

int h0(int x, int y) {
  int t = ((x * 1) - y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 35);
}

int h1(int x, int y) {
  int t = ((x * 5) * y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 103);
}

void main() {
  int s0 = 6;
  int s1 = 7;
  int s2 = 3;
  {
    int i0 = 0;
    do {
      if (((i0 % 5) > (15 % 6))) {
        a0[(((i0 * 2) + 1) % 11)] = ((-3 - a0[(i0 % 11)]) * (7 / 7));
        if ((s0 <= max(s0, a0[(i0 % 11)]))) {
          a0[(((i0 * 2) + 4) % 11)] = ((9 & 13) / 9);
          print_int(max(a0[(((i0 * 3) + 6) % 11)], i0));
        }
      } else {
        s1 = ((5 - 8) / 5);
      }
      i0 = (i0 + 1);
    } while ((i0 < 8));
  }
  for (int i1 = 0; (i1 < 2); i1 = (i1 + 1)) {
    for (int i2 = 0; (i2 < 6); i2 = (i2 + 1)) {
      a0[(i2 % 11)] = ((s0 + 9) + min(a0[((i2 + 10) % 11)], -2));
      s0 = -((a0[(i2 % 11)] + s1));
      s0 = (s0 ^ ((s1 % 9) * (s0 + 2)));
      s2 = (s2 ^ (max(i2, 10) % 6));
    }
    s2 = (s2 + ((14 % 4) - (a0[(i1 % 11)] * a0[((i1 + 0) % 11)])));
  }
  for (int i3 = 0; (i3 < 16); i3 = (i3 + 1)) {
    a0[((i3 + 10) % 11)] = 1;
  }
  print_int(s0);
  print_int(s1);
  print_int(s2);
  int cs4 = 0;
  for (int ci5 = 0; (ci5 < 11); ci5 = (ci5 + 1)) {
    cs4 = (cs4 + (a0[ci5] * (ci5 + 1)));
  }
  print_int(cs4);
}
