// regression: do-while loops with a nested while used to miscompile —
// splitting the do-while header for the pre-fork region left the
// successors' phi predecessors pointing at the old header, so SSA
// destruction placed the inner loop's carrier copies before their
// definitions (read of uninitialized register at runtime).
// found by: sptc fuzz --seed 42 (pre-fix case 7), shrunk by hand
int a1[20];
int a2[16] = {15, 10, 9, 12, 6, 7, 21, 4, 2, 24, 0, 1, 0, 14, 8, 2};
int g0 = 10;

void main() {
  int s0 = 4;
  int s1 = 8;
  int i0 = 0;
  do {
    s1 = (s1 ^ (max(a2[((i0 + 15) % 16)], 3) - (i0 ^ i0)));
    int i1 = 0;
    while ((i1 < 5)) {
      g0 = a2[((i1 + 15) % 16)];
      s1 = (s1 + -(13));
      i1 = (i1 + 1);
    }
    s0 = (s0 ^ ((13 % 8) * max(a1[(i0 % 20)], 12)));
    i0 = (i0 + 1);
  } while ((i0 < 13));
  print_int(s0);
  print_int(s1);
}
