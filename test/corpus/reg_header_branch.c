// regression: a speculated region whose controlling branch was the loop
// header itself used to crash the transform (assert false): after the
// header split moved the branch into the rest block, the region emitter
// still looked the branch up under the old header block id.
// found by: sptc fuzz --seed 42 (pre-fix case 10)
int a0[14] = {24, 20, 20, 5, -7, 17, 23, 22, 7, 8, -5, 22, 4, -2};
int a1[8];
int g0 = 1;

int h0(int x, int y) {
  int t = ((x * 2) - y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 90);
}

int h1(int x, int y) {
  int t = ((x * 5) * y);
  if ((t < 0)) {
    t = (0 - t);
  }
  return (t % 95);
}

void main() {
  int s0 = 3;
  int s1 = 0;
  int s2 = 0;
  int s3 = 5;
  {
    int i0 = 0;
    do {
      if ((((a1[((i0 + 7) % 8)] | -5) & 1) == 0)) {
        s0 = ((a0[((i0 + 0) % 14)] - s2) % 6);
        s0 = (s0 - (i0 / 3));
      } else {
        s2 = (rand() % 10);
      }
      a0[(i0 % 14)] = ((i0 % 6) / 7);
      {
        int i1 = 0;
        do {
          if (((min(i1, g0) & 1) == 0)) {
            s3 = a0[(i1 % 14)];
            s3 = i1;
          } else {
            s0 = a0[((i1 + 1) % 14)];
          }
          a1[(((i1 * 2) + 0) % 8)] = (min(a1[((i1 + 0) % 8)], 3) & max(a1[(i1 % 8)], s0));
          s3 = (s3 + (s1 % 2));
          i1 = (i1 + 1);
        } while ((i1 < 8));
      }
      i0 = (i0 + 1);
    } while ((i0 < 2));
  }
  print_int(g0);
  print_int(s0);
  print_int(s1);
  print_int(s2);
  print_int(s3);
  int cs2 = 0;
  for (int ci3 = 0; (ci3 < 14); ci3 = (ci3 + 1)) {
    cs2 = (cs2 + (a0[ci3] * (ci3 + 1)));
  }
  print_int(cs2);
  int cs4 = 0;
  for (int ci5 = 0; (ci5 < 8); ci5 = (ci5 + 1)) {
    cs4 = (cs4 + (a1[ci5] * (ci5 + 1)));
  }
  print_int(cs4);
}
