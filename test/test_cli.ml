(** Driver exit-code contract: 0 = success, 2 = usage error,
    1 = compile or run error.  Exercises the installed [sptc] binary
    (a declared test dependency, see [test/dune]). *)

(* cwd is _build/default/test under [dune runtest], the workspace root
   under [dune exec test/test_main.exe] *)
let sptc =
  let candidates =
    [ "../bin/sptc.exe"; "_build/default/bin/sptc.exe"; "bin/sptc.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/sptc.exe"

let exec args =
  Sys.command (Filename.quote_command sptc args ^ " >/dev/null 2>&1")

let with_source contents f =
  let path = Filename.temp_file "sptc_cli" ".c" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let ok_src = {|
void main() {
  print_int(42);
}
|}

let test_version () =
  Alcotest.(check int) "--version exits 0" 0 (exec [ "--version" ]);
  Alcotest.(check int) "run --version exits 0" 0 (exec [ "run"; "--version" ])

let test_success () =
  with_source ok_src (fun path ->
      Alcotest.(check int) "run exits 0" 0 (exec [ "run"; path ]))

let test_usage_errors () =
  Alcotest.(check int) "unknown subcommand" 2 (exec [ "frobnicate" ]);
  Alcotest.(check int) "missing FILE" 2 (exec [ "run" ]);
  with_source ok_src (fun path ->
      Alcotest.(check int) "unknown flag" 2
        (exec [ "run"; path; "--no-such-flag" ]))

let test_compile_errors () =
  with_source "int main( { return }" (fun path ->
      Alcotest.(check int) "syntax error exits 1" 1 (exec [ "run"; path ]));
  with_source {|
void main() {
  print_int(1.5);
}
|} (fun path ->
      Alcotest.(check int) "type error exits 1" 1 (exec [ "run"; path ]))

let test_runtime_errors () =
  with_source {|
int a[4];
void main() {
  int i = 9;
  print_int(a[i]);
}
|}
    (fun path ->
      Alcotest.(check int) "out-of-bounds exits 1" 1 (exec [ "run"; path ]))

let test_parallel_run () =
  with_source ok_src (fun path ->
      Alcotest.(check int) "run --parallel exits 0" 0
        (exec [ "run"; path; "--parallel"; "--jobs"; "2" ]))

let suite =
  [
    Alcotest.test_case "--version" `Quick test_version;
    Alcotest.test_case "success exit 0" `Quick test_success;
    Alcotest.test_case "usage errors exit 2" `Quick test_usage_errors;
    Alcotest.test_case "compile errors exit 1" `Quick test_compile_errors;
    Alcotest.test_case "runtime errors exit 1" `Quick test_runtime_errors;
    Alcotest.test_case "parallel run exit 0" `Quick test_parallel_run;
  ]
