(** Driver exit-code contract: 0 = success, 2 = usage error,
    1 = compile or run error.  Exercises the installed [sptc] binary
    (a declared test dependency, see [test/dune]). *)

(* cwd is _build/default/test under [dune runtest], the workspace root
   under [dune exec test/test_main.exe] *)
let sptc =
  let candidates =
    [ "../bin/sptc.exe"; "_build/default/bin/sptc.exe"; "bin/sptc.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/sptc.exe"

let exec args =
  Sys.command (Filename.quote_command sptc args ^ " >/dev/null 2>&1")

(* like [exec], but keeps stderr so tests can check usage is printed *)
let exec_stderr args =
  let err = Filename.temp_file "sptc_cli" ".err" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Filename.quote_command sptc args ^ " >/dev/null 2>" ^ Filename.quote err)
      in
      let ic = open_in_bin err in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (code, text))

let with_tmpdir f =
  let dir = Filename.temp_file "sptc_cli" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; dir ])))
    (fun () -> f dir)

let with_source contents f =
  let path = Filename.temp_file "sptc_cli" ".c" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let ok_src = {|
void main() {
  print_int(42);
}
|}

let test_version () =
  Alcotest.(check int) "--version exits 0" 0 (exec [ "--version" ]);
  Alcotest.(check int) "run --version exits 0" 0 (exec [ "run"; "--version" ])

let test_success () =
  with_source ok_src (fun path ->
      Alcotest.(check int) "run exits 0" 0 (exec [ "run"; path ]))

let test_usage_errors () =
  Alcotest.(check int) "unknown subcommand" 2 (exec [ "frobnicate" ]);
  Alcotest.(check int) "missing FILE" 2 (exec [ "run" ]);
  Alcotest.(check int) "batch without FILES" 2 (exec [ "batch" ]);
  Alcotest.(check int) "serve rejects positional args" 2
    (exec [ "serve"; "spurious" ]);
  with_source ok_src (fun path ->
      Alcotest.(check int) "unknown flag" 2
        (exec [ "run"; path; "--no-such-flag" ]);
      Alcotest.(check int) "batch unknown flag" 2
        (exec [ "batch"; path; "--frobnicate" ]));
  (* usage goes to stderr, not silently swallowed *)
  let code, err = exec_stderr [ "frobnicate" ] in
  Alcotest.(check int) "unknown subcommand exit" 2 code;
  Alcotest.(check bool) "usage on stderr" true
    (String.length err > 0
    && (let lower = String.lowercase_ascii err in
        let has needle =
          let n = String.length needle and l = String.length lower in
          let rec go i = i + n <= l && (String.sub lower i n = needle || go (i + 1)) in
          go 0
        in
        has "usage" || has "sptc"))

let test_batch_cache_roundtrip () =
  with_source ok_src (fun path ->
      with_tmpdir (fun dir ->
          let cache = Filename.concat dir "cache" in
          let summary = Filename.concat dir "summary.json" in
          Alcotest.(check int) "cold batch exits 0" 0
            (exec [ "batch"; path; "--cache-dir"; cache; "-j"; "1" ]);
          Alcotest.(check int) "warm batch exits 0" 0
            (exec
               [
                 "batch"; path; "--cache-dir"; cache; "-j"; "1"; "--summary";
                 summary;
               ]);
          let text =
            let ic = open_in_bin summary in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let j =
            match Spt_obs.Json.of_string text with
            | Ok j -> j
            | Error msg -> Alcotest.failf "summary unparsable: %s" msg
          in
          let int_field k =
            match Spt_obs.Json.member k j with
            | Some (Spt_obs.Json.Int n) -> n
            | _ -> Alcotest.failf "summary lacks int field %S" k
          in
          Alcotest.(check string)
            "summary schema" "spt-batch-v1"
            (match Spt_obs.Json.member "schema" j with
            | Some (Spt_obs.Json.Str s) -> s
            | _ -> "");
          Alcotest.(check int) "warm run all hits" 1 (int_field "cache_hits");
          Alcotest.(check int) "warm run no misses" 0 (int_field "cache_misses");
          Alcotest.(check int) "no failures" 0 (int_field "failed")))

let test_batch_bad_file_exits_1 () =
  with_source "int main( { return }" (fun bad ->
      with_tmpdir (fun dir ->
          Alcotest.(check int) "syntax error in batch exits 1" 1
            (exec [ "batch"; bad; "--cache-dir"; Filename.concat dir "c" ])))

let test_serve_shutdown () =
  with_tmpdir (fun dir ->
      let code =
        Sys.command
          (Printf.sprintf "printf '%s\\n' | %s serve --cache-dir %s >/dev/null 2>&1"
             "{\"op\":\"shutdown\"}" (Filename.quote sptc)
             (Filename.quote (Filename.concat dir "cache")))
      in
      Alcotest.(check int) "serve exits 0 on shutdown" 0 code;
      (* EOF without shutdown also ends the loop cleanly *)
      let code =
        Sys.command
          (Printf.sprintf ": | %s serve --cache-dir %s >/dev/null 2>&1"
             (Filename.quote sptc)
             (Filename.quote (Filename.concat dir "cache")))
      in
      Alcotest.(check int) "serve exits 0 on EOF" 0 code)

let test_compile_errors () =
  with_source "int main( { return }" (fun path ->
      Alcotest.(check int) "syntax error exits 1" 1 (exec [ "run"; path ]));
  with_source {|
void main() {
  print_int(1.5);
}
|} (fun path ->
      Alcotest.(check int) "type error exits 1" 1 (exec [ "run"; path ]))

let test_runtime_errors () =
  with_source {|
int a[4];
void main() {
  int i = 9;
  print_int(a[i]);
}
|}
    (fun path ->
      Alcotest.(check int) "out-of-bounds exits 1" 1 (exec [ "run"; path ]))

let test_parallel_run () =
  with_source ok_src (fun path ->
      Alcotest.(check int) "run --parallel exits 0" 0
        (exec [ "run"; path; "--parallel"; "--jobs"; "2" ]))

(* the exit-code contract, subcommand by subcommand: success → 0,
   malformed input file → 1, and the equivalence-verdict class
   (oracle mismatch, fuzz divergence) → 2 *)

let bad_src = "int main( { return }"

(* a program with a real SPT loop, so --parallel runs produce timeline
   events for the attribution report *)
let loopy_src =
  {|
int n = 400;
int a[400];
int b[400];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = b[i] * 3 + 1;
    i = i + 1;
  }
  print_int(a[13]);
}
|}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_json path =
  match Spt_obs.Json.of_string (read_file path) with
  | Ok j -> j
  | Error msg -> Alcotest.failf "%s unparsable: %s" path msg

(* --trace / --metrics parity: run and batch accept both and write
   well-formed files *)
let test_run_obs_flags () =
  with_source ok_src (fun path ->
      with_tmpdir (fun dir ->
          let trace = Filename.concat dir "trace.json" in
          let metrics = Filename.concat dir "metrics.json" in
          Alcotest.(check int) "run --trace --metrics exits 0" 0
            (exec [ "run"; path; "--trace"; trace; "--metrics"; metrics ]);
          (match Spt_obs.Json.member "traceEvents" (parse_json trace) with
          | Some (Spt_obs.Json.List _) -> ()
          | _ -> Alcotest.fail "trace file lacks traceEvents");
          Alcotest.(check bool) "metrics file tagged" true
            (Spt_obs.Json.member "schema" (parse_json metrics)
            = Some (Spt_obs.Json.Str "spt-metrics-v1"))))

let test_batch_obs_flags () =
  with_source ok_src (fun path ->
      with_tmpdir (fun dir ->
          let trace = Filename.concat dir "trace.json" in
          let metrics = Filename.concat dir "metrics.json" in
          Alcotest.(check int) "batch --trace --metrics exits 0" 0
            (exec
               [
                 "batch"; path; "--no-cache"; "-j"; "1"; "--trace"; trace;
                 "--metrics"; metrics;
               ]);
          Alcotest.(check bool) "trace file written" true (Sys.file_exists trace);
          Alcotest.(check bool) "metrics file written" true
            (Sys.file_exists metrics)))

(* per-job counter isolation: two identical compiles in one -j1 batch
   must report (approximately) identical per-job counters — cumulative
   leakage would double the second one's *)
let test_batch_per_job_counters () =
  with_source loopy_src (fun a ->
      with_source loopy_src (fun b ->
          with_tmpdir (fun dir ->
              let summary = Filename.concat dir "summary.json" in
              let metrics = Filename.concat dir "metrics.json" in
              Alcotest.(check int) "batch exits 0" 0
                (exec
                   [
                     "batch"; a; b; "--no-cache"; "-j"; "1"; "--summary";
                     summary; "--metrics"; metrics;
                   ]);
              let j = parse_json summary in
              match Spt_obs.Json.member "results" j with
              | Some (Spt_obs.Json.List [ r1; r2 ]) ->
                let steps r =
                  match Spt_obs.Json.member "counters" r with
                  | Some c -> (
                    match Spt_obs.Json.member "interp.steps" c with
                    | Some (Spt_obs.Json.Int n) -> n
                    | _ -> Alcotest.fail "interp.steps missing from job counters")
                  | None -> Alcotest.fail "per-job counters missing"
                in
                let s1 = steps r1 and s2 = steps r2 in
                Alcotest.(check bool) "jobs did work" true (s1 > 0);
                Alcotest.(check int) "identical jobs, identical deltas" s1 s2
              | _ -> Alcotest.fail "results array missing")))

let test_attrib_exit_codes () =
  with_source loopy_src (fun path ->
      with_tmpdir (fun dir ->
          let out = Filename.concat dir "attrib.json" in
          Alcotest.(check int) "--attrib without --parallel exits 2" 2
            (exec [ "run"; path; "--attrib"; out ]);
          Alcotest.(check int) "--parallel --attrib exits 0" 0
            (exec
               [ "run"; path; "--parallel"; "-j"; "2"; "--attrib"; out ]);
          let j = parse_json out in
          Alcotest.(check bool) "attrib schema" true
            (Spt_obs.Json.member "schema" j
            = Some (Spt_obs.Json.Str "spt-attrib-v1"));
          (match Spt_obs.Json.member "coverage" j with
          | Some (Spt_obs.Json.Float c) ->
            Alcotest.(check bool) "buckets cover ≥95% of wall" true (c >= 0.95)
          | _ -> Alcotest.fail "coverage missing");
          (match Spt_obs.Json.member "gap" j with
          | Some gap ->
            Alcotest.(check bool) "gap carries both speedups" true
              (Spt_obs.Json.member "predicted_speedup" gap <> None
              && Spt_obs.Json.member "measured_speedup" gap <> None)
          | None -> Alcotest.fail "gap missing");
          (* the analyzer renders it *)
          Alcotest.(check int) "top renders attrib" 0 (exec [ "top"; out ])))

(* --engine / --chunk hardening: unknown engine and nonpositive chunk
   are usage errors (2); both engines run; the attribution report names
   the engine and forced chunk and [top] renders them *)
let test_engine_chunk_flags () =
  let has hay needle =
    let n = String.length needle and l = String.length hay in
    let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  with_source loopy_src (fun path ->
      let code, err = exec_stderr [ "run"; path; "--engine"; "warp" ] in
      Alcotest.(check int) "unknown --engine exits 2" 2 code;
      Alcotest.(check bool) "error names the bad engine" true
        (has err "warp");
      let code, err = exec_stderr [ "run"; path; "--parallel"; "--chunk"; "0" ] in
      Alcotest.(check int) "--chunk 0 exits 2" 2 code;
      Alcotest.(check bool) "error mentions --chunk" true (has err "--chunk");
      Alcotest.(check int) "--chunk=-4 exits 2" 2
        (exec [ "run"; path; "--parallel"; "--chunk=-4" ]);
      Alcotest.(check int) "--chunk without --parallel exits 2" 2
        (exec [ "run"; path; "--chunk"; "4" ]);
      Alcotest.(check int) "--engine tree runs" 0
        (exec [ "run"; path; "--engine"; "tree" ]);
      Alcotest.(check int) "--engine bytecode runs" 0
        (exec [ "run"; path; "--engine"; "bytecode" ]);
      Alcotest.(check int) "compile --engine tree exits 0" 0
        (exec [ "compile"; path; "--no-cache"; "--engine"; "tree" ]);
      Alcotest.(check int) "compile bad --engine exits 2" 2
        (exec [ "compile"; path; "--no-cache"; "--engine"; "warp" ]);
      with_tmpdir (fun dir ->
          let out = Filename.concat dir "attrib.json" in
          Alcotest.(check int) "parallel tree engine + forced chunk" 0
            (exec
               [
                 "run"; path; "--parallel"; "-j"; "2"; "--engine"; "tree";
                 "--chunk"; "4"; "--attrib"; out;
               ]);
          let j = parse_json out in
          Alcotest.(check bool) "attrib names the engine" true
            (Spt_obs.Json.member "engine" j
            = Some (Spt_obs.Json.Str "tree"));
          Alcotest.(check bool) "attrib records the forced chunk" true
            (Spt_obs.Json.member "chunk" j = Some (Spt_obs.Json.Int 4));
          (* the analyzer renders the engine line *)
          let top = Filename.concat dir "top.out" in
          Alcotest.(check int) "top renders engine attrib" 0
            (Sys.command
               (Filename.quote_command sptc [ "top"; out ]
               ^ " > " ^ Filename.quote top ^ " 2>/dev/null"));
          Alcotest.(check bool) "top output names the engine" true
            (has (read_file top) "engine")))

let test_depth_flags () =
  let has hay needle =
    let n = String.length needle and l = String.length hay in
    let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  with_source loopy_src (fun path ->
      let code, err = exec_stderr [ "run"; path; "--parallel"; "--depth"; "0" ] in
      Alcotest.(check int) "--depth 0 exits 2" 2 code;
      Alcotest.(check bool) "error mentions --depth" true (has err "--depth");
      let code, err = exec_stderr [ "run"; path; "--parallel"; "--depth=-1" ] in
      Alcotest.(check int) "--depth=-1 exits 2" 2 code;
      Alcotest.(check bool) "negative depth names the value" true
        (has err "-1");
      let code, err = exec_stderr [ "run"; path; "--parallel"; "--depth"; "four" ] in
      Alcotest.(check int) "non-integer --depth exits 2" 2 code;
      Alcotest.(check bool) "non-integer error names the flag" true
        (has err "depth");
      let code, err = exec_stderr [ "run"; path; "--depth"; "2" ] in
      Alcotest.(check int) "--depth on a sequential run exits 2" 2 code;
      Alcotest.(check bool) "sequential rejection explains itself" true
        (has err "--parallel");
      Alcotest.(check int) "forced depth runs" 0
        (exec [ "run"; path; "--parallel"; "-j"; "2"; "--depth"; "4" ]);
      Alcotest.(check int) "compile --depth exits 0" 0
        (exec [ "compile"; path; "--no-cache"; "--depth"; "2" ]);
      Alcotest.(check int) "compile --depth 0 exits 2" 2
        (exec [ "compile"; path; "--no-cache"; "--depth"; "0" ]))

let test_top_exit_codes () =
  with_tmpdir (fun dir ->
      let bad = Filename.concat dir "bad.json" in
      let oc = open_out bad in
      output_string oc "this is not json";
      close_out oc;
      Alcotest.(check int) "top on garbage exits 1" 1 (exec [ "top"; bad ]);
      let noschema = Filename.concat dir "noschema.json" in
      let oc = open_out noschema in
      output_string oc "{\"x\": 1}";
      close_out oc;
      Alcotest.(check int) "top without schema exits 1" 1
        (exec [ "top"; noschema ]);
      Alcotest.(check int) "top on missing file exits 2" 2
        (exec [ "top"; Filename.concat dir "absent.json" ]))

let test_compile_exit_codes () =
  with_tmpdir (fun dir ->
      let cache = Filename.concat dir "cache" in
      with_source ok_src (fun path ->
          Alcotest.(check int) "compile ok exits 0" 0
            (exec [ "compile"; path; "--cache-dir"; cache ]));
      with_source bad_src (fun path ->
          Alcotest.(check int) "compile malformed exits 1" 1
            (exec [ "compile"; path; "--cache-dir"; cache ])))

let test_workload_exit_codes () =
  with_tmpdir (fun dir ->
      let cache = Filename.concat dir "cache" in
      Alcotest.(check int) "workload ok exits 0" 0
        (exec [ "workload"; "vortex"; "--cache-dir"; cache ]);
      Alcotest.(check int) "unknown workload exits 2" 2
        (exec [ "workload"; "quake3"; "--cache-dir"; cache ]))

let test_profile_exit_codes () =
  with_tmpdir (fun dir ->
      let store = Filename.concat dir "p.json" in
      with_source ok_src (fun path ->
          Alcotest.(check int) "profile ok exits 0" 0
            (exec [ "profile"; path; "--profile-out"; store ]));
      with_source bad_src (fun path ->
          Alcotest.(check int) "profile malformed exits 1" 1
            (exec [ "profile"; path; "--profile-out"; store ]));
      Alcotest.(check int) "profile without --profile-out exits 2" 2
        (with_source ok_src (fun path -> exec [ "profile"; path ])))

let test_adapt_exit_codes () =
  with_source ok_src (fun path ->
      Alcotest.(check int) "adapt ok exits 0" 0
        (exec [ "adapt"; path; "--iters"; "1"; "--jobs"; "1" ]));
  with_source bad_src (fun path ->
      Alcotest.(check int) "adapt malformed exits 1" 1
        (exec [ "adapt"; path; "--iters"; "1" ]))

let test_fuzz_exit_codes () =
  Alcotest.(check int) "clean fuzz run exits 0" 0
    (exec [ "fuzz"; "--seed"; "42"; "--count"; "2" ]);
  (* a divergence — here provoked by arming the transform fault — is
     the fuzz analogue of an oracle mismatch: 2, not 1 *)
  Alcotest.(check int) "injected divergence exits 2" 2
    (exec
       [
         "fuzz"; "--seed"; "42"; "--index"; "0"; "--count"; "1"; "--matrix";
         "seq"; "--inject"; "drop-prefork-stmt"; "--shrink-budget"; "0";
       ]);
  Alcotest.(check int) "bad matrix spec exits 1" 1
    (exec [ "fuzz"; "--count"; "1"; "--matrix"; "seq,warp" ]);
  Alcotest.(check int) "unknown fault exits 1" 1
    (exec [ "fuzz"; "--count"; "1"; "--inject"; "no-such-fault" ]);
  Alcotest.(check int) "replay of missing dir exits 1" 1
    (exec [ "fuzz"; "--replay"; "/nonexistent-corpus-dir" ])

let suite =
  [
    Alcotest.test_case "--version" `Quick test_version;
    Alcotest.test_case "success exit 0" `Quick test_success;
    Alcotest.test_case "usage errors exit 2" `Quick test_usage_errors;
    Alcotest.test_case "compile errors exit 1" `Quick test_compile_errors;
    Alcotest.test_case "runtime errors exit 1" `Quick test_runtime_errors;
    Alcotest.test_case "parallel run exit 0" `Quick test_parallel_run;
    Alcotest.test_case "run --trace/--metrics" `Quick test_run_obs_flags;
    Alcotest.test_case "batch --trace/--metrics" `Quick test_batch_obs_flags;
    Alcotest.test_case "batch per-job counters" `Quick test_batch_per_job_counters;
    Alcotest.test_case "run --attrib + top" `Slow test_attrib_exit_codes;
    Alcotest.test_case "--engine/--chunk hardening" `Slow
      test_engine_chunk_flags;
    Alcotest.test_case "--depth hardening" `Slow test_depth_flags;
    Alcotest.test_case "top exit codes" `Quick test_top_exit_codes;
    Alcotest.test_case "batch cache roundtrip" `Quick test_batch_cache_roundtrip;
    Alcotest.test_case "batch bad file exit 1" `Quick test_batch_bad_file_exits_1;
    Alcotest.test_case "serve shutdown/EOF exit 0" `Quick test_serve_shutdown;
    Alcotest.test_case "compile exit codes" `Quick test_compile_exit_codes;
    Alcotest.test_case "workload exit codes" `Slow test_workload_exit_codes;
    Alcotest.test_case "profile exit codes" `Quick test_profile_exit_codes;
    Alcotest.test_case "adapt exit codes" `Quick test_adapt_exit_codes;
    Alcotest.test_case "fuzz exit codes" `Slow test_fuzz_exit_codes;
  ]
