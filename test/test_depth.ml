(** K-deep pipelining tests: ordered-commit invariants of the in-flight
    epoch queue (epochs retire strictly in iteration order, a kill at
    epoch i rolls back exactly epochs >= i, committed state equals
    sequential), the runtime software-value-prediction state machine
    (predict / check / recover, including the loop-carried accumulator
    that used to force despeculation), and the compile-time depth
    chooser. *)

open Spt_runtime
module Interp = Spt_interp.Interp
module Eval = Spt_ir.Eval
module Ir = Spt_ir.Ir
module Pipeline = Spt_driver.Pipeline
module Config = Spt_driver.Config
module Cost_model = Spt_cost.Cost_model

let vi n = Eval.Vi (Int64.of_int n)
let var vid = { Ir.vid; vname = Printf.sprintf "v%d" vid; vty = Ir.I64 }

let fresh_master () =
  let mem = Array.make 8 (vi 0) in
  let regs = Array.make 4 None in
  let rng = ref 7L in
  let out = Buffer.create 16 in
  ( {
      Specmem.m_mem = mem;
      m_regs = regs;
      m_rng_get = (fun () -> !rng);
      m_rng_set = (fun v -> rng := v);
      m_out = out;
    },
    regs )

(* ------------------------------------------------------------------ *)
(* Specmem value prediction: predict / check / recover *)

let test_reg_predict_read_through () =
  let master, regs = fresh_master () in
  regs.(1) <- Some (vi 10);
  let bv = Specmem.create master in
  Specmem.reg_predict bv 1 (vi 20);
  let child = Specmem.create ~parent:bv master in
  (* the chunk reading through the backbone observes the prediction,
     not master's stale value *)
  Alcotest.(check bool) "prediction read through chain" true
    ((Specmem.regio child).Interp.rio_get (var 1) = Some (vi 20));
  (* the check is free: the reader's log recorded the predicted value,
     so validation fails exactly when master disagrees at its turn... *)
  (match Specmem.validate child with
  | Ok () -> Alcotest.fail "mispredict not detected"
  | Error (Specmem.Stale_reg vid) ->
    Alcotest.(check int) "violation names the variable" 1 vid
  | Error s ->
    Alcotest.fail ("unexpected stale class: " ^ Specmem.string_of_stale s));
  (* ...and succeeds when the prediction was right *)
  regs.(1) <- Some (vi 20);
  Alcotest.(check bool) "correct prediction validates" true
    (Result.is_ok (Specmem.validate child))

let test_reg_predict_dropped_on_rollback () =
  let master, regs = fresh_master () in
  regs.(1) <- Some (vi 10);
  let bv = Specmem.create master in
  Specmem.reg_predict bv 1 (vi 20);
  Specmem.rollback bv;
  (* a killed backbone drops its predictions like every other write:
     recovery means later readers see master truth again *)
  Specmem.reg_predict bv 1 (vi 30);
  let child = Specmem.create ~parent:bv master in
  Alcotest.(check bool) "rolled-back predictions invisible" true
    ((Specmem.regio child).Interp.rio_get (var 1) = Some (vi 10))

(* ------------------------------------------------------------------ *)
(* Runtime: ordered commit and the kill cascade *)

(* the same scatter-write stress program test_runtime uses: real
   violations at every depth *)
let stress_src =
  {|
int n = 30000;
int table[8192];
int checksum = 0;
void main() {
  int i;
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int k = (i * 2654435761) % 8192;
    if (k < 0) { k = k + 8192; }
    int v = table[k];
    table[k] = v * 2 + (k & 7) + 1;
    acc = acc + (v & 15);
  }
  checksum = acc + table[0] + table[8191];
  print_int(checksum);
}
|}

(* a clean independent loop plus a loop carrying [s] through the
   post-fork region — the accumulator pattern runtime SVP must keep
   speculative (it used to trip the despeculation valve) *)
let accumulator_src =
  {|
int n = 5000;
int a[5000];
int b[5000];
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 1; }
  int s = 0;
  for (i = 0; i < n; i = i + 1) {
    int x = a[i];
    int y = x * x + 7;
    b[i] = y - (x & 31);
    s = s + (y & 3);
  }
  print_int(s + b[0] + b[4999]);
}
|}

let loops_of (spt : Pipeline.spt_compilation) =
  List.map
    (fun (sl : Spt_tlsim.Tls_machine.spt_loop) ->
      let record =
        List.find_opt
          (fun (r : Pipeline.loop_record) ->
            String.equal r.Pipeline.lr_func sl.Spt_tlsim.Tls_machine.sl_fname
            && r.Pipeline.lr_header = sl.Spt_tlsim.Tls_machine.sl_header)
          spt.Pipeline.records
      in
      {
        Runtime.ls_id = sl.Spt_tlsim.Tls_machine.sl_id;
        ls_fname = sl.Spt_tlsim.Tls_machine.sl_fname;
        ls_header = sl.Spt_tlsim.Tls_machine.sl_header;
        ls_iter_ops =
          (match record with
          | Some r -> r.Pipeline.lr_body_size
          | None -> 0.0);
        ls_depth =
          (match record with Some r -> r.Pipeline.lr_depth | None -> 0);
      })
    spt.Pipeline.spt_loops

let run_spt ?(despec_after = 3) ?depth ?(window = 8) ~jobs
    (spt : Pipeline.spt_compilation) =
  Runtime.run
    ~config:
      {
        Runtime.jobs;
        window;
        despec_after;
        spec_fuel = 2_000_000;
        max_steps = 200_000_000;
        oracle = true;
        engine = Spt_exec.Engine.Bytecode;
        chunk = None;
        depth;
        timeline = None;
      }
    ~loops:(loops_of spt) spt.Pipeline.program

let check_oracle name (r : Runtime.result) =
  match r.Runtime.oracle with
  | `Match -> ()
  | `Mismatch m -> Alcotest.fail (Printf.sprintf "%s: oracle: %s" name m)
  | `Skipped -> Alcotest.fail (name ^ ": oracle unexpectedly skipped")

let total f stats = List.fold_left (fun acc (_, s) -> acc + f s) 0 stats

let test_depth_equivalence () =
  (* ordered commit at every depth: output (the strongest observable of
     commit order — prints retire exactly once, in iteration order) and
     the final heap must equal the sequential reference and each other *)
  let spt = Pipeline.compile_spt Config.best stress_src in
  let base = run_spt ~depth:1 ~jobs:2 spt in
  check_oracle "depth 1" base;
  List.iter
    (fun depth ->
      let r = run_spt ~depth ~jobs:2 spt in
      check_oracle (Printf.sprintf "depth %d" depth) r;
      Alcotest.(check string) "same output" base.Runtime.output
        r.Runtime.output;
      Alcotest.(check string) "same heap" base.Runtime.heap_digest
        r.Runtime.heap_digest;
      List.iter
        (fun (_, (s : Runtime.loop_stats)) ->
          Alcotest.(check int) "forced depth recorded" depth s.Runtime.depth)
        r.Runtime.stats)
    [ 2; 4 ]

let test_depth_clamped_to_window () =
  let spt = Pipeline.compile_spt Config.best stress_src in
  let r = run_spt ~depth:100 ~window:4 ~jobs:2 spt in
  check_oracle "clamped" r;
  List.iter
    (fun (_, (s : Runtime.loop_stats)) ->
      Alcotest.(check int) "depth capped at the window" 4 s.Runtime.depth)
    r.Runtime.stats

let test_kill_cascade_exact_rollback () =
  (* with a violation-heavy loop and 4 epochs in flight, kill cascades
     must actually fire, and every misspeculation is recovered by
     exactly one serial replay: a kill rolls back the offender and its
     successors, never a committed epoch (the oracle would catch a
     double commit or a lost iteration) *)
  let spt = Pipeline.compile_spt Config.best stress_src in
  let r = run_spt ~despec_after:1_000_000 ~depth:4 ~jobs:2 spt in
  check_oracle "cascade" r;
  let misspecs =
    total (fun s -> s.Runtime.violations + s.Runtime.faults) r.Runtime.stats
  in
  Alcotest.(check bool) "misspeculation happened" true (misspecs > 0);
  Alcotest.(check bool) "cascade kills happened" true
    (total (fun s -> s.Runtime.kills) r.Runtime.stats > 0);
  Alcotest.(check int) "one serial replay per misspeculation"
    misspecs
    (total (fun s -> s.Runtime.serial_reexecs) r.Runtime.stats)

let test_depth_determinism () =
  let spt = Pipeline.compile_spt Config.best stress_src in
  let r1 = run_spt ~depth:4 ~jobs:4 spt in
  let r2 = run_spt ~depth:4 ~jobs:4 spt in
  check_oracle "determinism run 1" r1;
  check_oracle "determinism run 2" r2;
  Alcotest.(check string) "same output" r1.Runtime.output r2.Runtime.output;
  Alcotest.(check string) "same heap" r1.Runtime.heap_digest
    r2.Runtime.heap_digest

(* ------------------------------------------------------------------ *)
(* Runtime SVP: the accumulator no longer despeculates *)

let test_accumulator_stays_speculative () =
  let spt = Pipeline.compile_spt Config.best accumulator_src in
  let r = run_spt ~jobs:2 spt in
  check_oracle "accumulator" r;
  Alcotest.(check int) "no despeculation with runtime SVP" 0
    (total (fun s -> s.Runtime.despecs) r.Runtime.stats);
  let predicts, hits, _ =
    List.fold_left
      (fun (p, h, m) (_, s) ->
        let p', h', m' = Runtime.svp_totals s in
        (p + p', h + h', m + m'))
      (0, 0, 0) r.Runtime.stats
  in
  Alcotest.(check bool) "predictions were injected" true (predicts > 0);
  Alcotest.(check bool) "and mostly committed" true (hits > 0)

let test_svp_learns_then_recovers () =
  (* per-variable telemetry: the accumulator register shows the full
     predict / mispredict / re-learn cycle — at least one mispredict
     (the activating violation pattern) and strictly more hits *)
  let spt = Pipeline.compile_spt Config.best accumulator_src in
  let r = run_spt ~depth:4 ~jobs:2 spt in
  check_oracle "svp recover" r;
  let vars =
    List.concat_map (fun (_, s) -> Runtime.sorted_svp s) r.Runtime.stats
  in
  Alcotest.(check bool) "a predicted variable is recorded" true (vars <> []);
  List.iter
    (fun (_, (v : Runtime.svp_stats)) ->
      (* a prediction resolves at most once — as a hit or a mispredict;
         the remainder rode in epochs a cascade killed before their
         validation turn *)
      Alcotest.(check bool) "predictions resolve at most once" true
        (v.Runtime.sv_hits + v.Runtime.sv_mispredicts <= v.Runtime.sv_predicts))
    vars;
  (* and the counters surface in the stats JSON for the feedback loop *)
  let s = Spt_obs.Json.to_string (Runtime.stats_json r) in
  let contains affix =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    m = 0 || go 0
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in stats json") true (contains key))
    [ "\"svp\""; "\"depth\""; "\"predicts\""; "\"mispredicts\"" ]

(* ------------------------------------------------------------------ *)
(* Compile-time depth chooser *)

let test_pick_depth_extremes () =
  (* a clean loop pipelines as deep as the candidates go; a
     violation-heavy loop stays at the paper's main+1 model *)
  Alcotest.(check int) "clean loop goes deepest" 8
    (Cost_model.pick_depth ~cost:0.0 ~body_size:100.0);
  Alcotest.(check int) "hopeless loop stays at depth 1" 1
    (Cost_model.pick_depth ~cost:100.0 ~body_size:1.0)

let test_depth_cost_shape () =
  (* the pipelining gain is monotone at zero risk... *)
  Alcotest.(check bool) "deeper is cheaper when clean" true
    (Cost_model.depth_cost ~chunk_prob:0.0 ~depth:8
    < Cost_model.depth_cost ~chunk_prob:0.0 ~depth:1);
  (* ...and the cascade penalty is monotone in depth *)
  Alcotest.(check bool) "cascade cost grows with depth" true
    (Cost_model.cascade_factor ~depth:8 > Cost_model.cascade_factor ~depth:1);
  Alcotest.(check (float 1e-9)) "depth 1 has no cascade penalty" 1.0
    (Cost_model.cascade_factor ~depth:1)

let test_depth_in_cache_key () =
  let base = Config.best in
  let forced = { base with Config.depth = Some 2 } in
  Alcotest.(check bool) "forced depth changes the cache key" false
    (String.equal (Config.cache_key base) (Config.cache_key forced))

let suite =
  [
    Alcotest.test_case "reg_predict read through" `Quick
      test_reg_predict_read_through;
    Alcotest.test_case "reg_predict dropped on rollback" `Quick
      test_reg_predict_dropped_on_rollback;
    Alcotest.test_case "ordered commit at depths 1/2/4" `Slow
      test_depth_equivalence;
    Alcotest.test_case "depth clamped to window" `Slow
      test_depth_clamped_to_window;
    Alcotest.test_case "kill cascade rolls back exactly" `Slow
      test_kill_cascade_exact_rollback;
    Alcotest.test_case "deep runs are deterministic" `Slow
      test_depth_determinism;
    Alcotest.test_case "accumulator stays speculative" `Slow
      test_accumulator_stays_speculative;
    Alcotest.test_case "svp learns then recovers" `Slow
      test_svp_learns_then_recovers;
    Alcotest.test_case "pick_depth extremes" `Quick test_pick_depth_extremes;
    Alcotest.test_case "depth cost shape" `Quick test_depth_cost_shape;
    Alcotest.test_case "depth in cache key" `Quick test_depth_in_cache_key;
  ]
