(** Load-generator tests: blend parsing, deterministic request streams
    and a small end-to-end run (in-process, so the 1-core CI box isn't
    asked to produce a speedup — only correctness: every request
    answered, none errored). *)

module Json = Spt_obs.Json
module Loadgen = Spt_loadgen.Loadgen
module Blend = Loadgen.Blend
module Hist = Spt_obs.Metrics.Hist

let test_blend_parse () =
  (match Blend.of_string "warm=3,cold=1" with
  | Ok b ->
    Alcotest.(check int) "warm" 3 b.Blend.warm;
    Alcotest.(check int) "cold" 1 b.Blend.cold;
    Alcotest.(check int) "unlisted kinds weigh zero" 0 b.Blend.guided
  | Error e -> Alcotest.fail e);
  (match Blend.of_string (Blend.to_string Blend.default) with
  | Ok b ->
    Alcotest.(check string) "round-trips" (Blend.to_string Blend.default)
      (Blend.to_string b)
  | Error e -> Alcotest.fail e);
  let rejects s =
    match Blend.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | Error _ -> ()
  in
  rejects "";
  rejects "warm";
  rejects "warm=-1";
  rejects "warm=0,cold=0";
  rejects "tepid=3"

let test_run_inproc () =
  let dir = Filename.temp_file "spt_loadgen" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let r =
    Fun.protect
      ~finally:(fun () ->
        ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; dir ])))
      (fun () ->
        Loadgen.run ~mode:`Inproc ~clients:2 ~requests:12 ~seed:7
          ~server_jobs:1
          ~cache:(Spt_service.Artifact_cache.create ~dir ())
          ())
  in
  Alcotest.(check int) "every request measured" 12 r.Loadgen.requests;
  Alcotest.(check int) "no errored replies" 0 r.Loadgen.errors;
  Alcotest.(check int) "serial phase same size" 12 r.Loadgen.serial_requests;
  Alcotest.(check int) "serial phase clean" 0 r.Loadgen.serial_errors;
  Alcotest.(check int) "latency histogram covers the phase" 12
    (Hist.count r.Loadgen.latency);
  Alcotest.(check bool) "throughput positive" true
    (r.Loadgen.throughput_rps > 0.0);
  let j = Loadgen.to_json r in
  Alcotest.(check bool) "schema tagged" true
    (Json.member "schema" j = Some (Json.Str Loadgen.schema));
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Json.member k j <> None))
    [
      "mode"; "clients"; "server_jobs"; "blend"; "seed"; "requests"; "errors";
      "coalesced"; "wall_s"; "throughput_rps"; "latency_s"; "serial";
      "speedup_vs_serial"; "cache";
    ];
  (match Json.member "latency_s" j with
  | Some h ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("latency " ^ k) true (Json.member k h <> None))
      [ "count"; "p50"; "p95"; "p99" ]
  | None -> Alcotest.fail "latency_s missing")

let suite =
  [
    Alcotest.test_case "blend parsing" `Quick test_blend_parse;
    Alcotest.test_case "small in-process run" `Quick test_run_inproc;
  ]
