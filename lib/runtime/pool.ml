type t = {
  mutable domains : unit Domain.t array;
  q : (unit -> unit) Queue.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable stopping : bool;
  running : int Atomic.t;
}

let rec worker t () =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.cond t.mu
  done;
  if Queue.is_empty t.q then (* stopping and drained *)
    Mutex.unlock t.mu
  else begin
    let job = Queue.pop t.q in
    Mutex.unlock t.mu;
    Atomic.incr t.running;
    (try job () with _ -> ());
    Atomic.decr t.running;
    worker t ()
  end

let create ?(on_start = fun () -> ()) ~jobs () =
  let t =
    {
      domains = [||];
      q = Queue.create ();
      mu = Mutex.create ();
      cond = Condition.create ();
      stopping = false;
      running = Atomic.make 0;
    }
  in
  t.domains <-
    Array.init (max 1 jobs) (fun _ ->
        Domain.spawn (fun () ->
            (try on_start () with _ -> ());
            worker t ()));
  t

let size t = Array.length t.domains

let submit t job =
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job t.q;
  Condition.signal t.cond;
  Mutex.unlock t.mu

let queued t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n

let active t = Atomic.get t.running

let shutdown t =
  Mutex.lock t.mu;
  let was_stopping = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  if not was_stopping then Array.iter Domain.join t.domains
