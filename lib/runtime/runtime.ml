module Interp = Spt_interp.Interp
module Layout = Spt_interp.Layout
module Ir = Spt_ir.Ir
module Obs = Spt_obs

type loop_spec = {
  ls_id : int;
  ls_fname : string;
  ls_header : int;
  ls_iter_ops : float;
  ls_depth : int;
}

type config = {
  jobs : int;
  window : int;
  despec_after : int;
  spec_fuel : int;
  max_steps : int;
  oracle : bool;
  timeline : Obs.Timeline.t option;
  engine : Spt_exec.Engine.kind;
  chunk : int option;
  depth : int option;
}

let default_jobs () =
  match Sys.getenv_opt "SPT_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let default_config () =
  let jobs = default_jobs () in
  {
    jobs;
    window = 2 * jobs;
    despec_after = 3;
    spec_fuel = 2_000_000;
    max_steps = 200_000_000;
    oracle = true;
    timeline = None;
    engine = Spt_exec.Engine.Bytecode;
    chunk = None;
    depth = None;
  }

(* One speculative fork covers a block of [chunk_size] iterations: the
   per-fork overhead (view creation, validation, commit, the scheduler
   turn) is paid once per chunk instead of once per iteration.  The
   auto size targets ~2048 dynamic operations per chunk, from the cost
   model's per-iteration estimate, clamped to [1, 256]. *)
let chunk_target_ops = 2048.0

let chunk_size cfg spec =
  match cfg.chunk with
  | Some n -> max 1 n
  | None ->
    if spec.ls_iter_ops <= 0.0 then 16
    else
      max 1
        (min 256 (int_of_float (ceil (chunk_target_ops /. spec.ls_iter_ops))))

(* Speculation depth K for a loop: the maximum number of speculative
   chunks (epochs) in flight at once.  A forced [config.depth] wins;
   otherwise the per-loop choice the cost model priced ([ls_depth],
   0 = unpriced) bounded by the global window; [window] as the last
   resort.  K = 1 is the paper's main+1 model. *)
let depth_of cfg spec =
  let window = max 1 cfg.window in
  match cfg.depth with
  | Some k -> max 1 (min k window)
  | None ->
    if spec.ls_depth > 0 then max 1 (min spec.ls_depth window) else window

(* Per-variable software-value-prediction counters: how often a
   forward-predicted register was injected, proved right (its reader
   committed) and proved wrong (its reader failed validation on it). *)
type svp_stats = {
  mutable sv_predicts : int;
  mutable sv_hits : int;
  mutable sv_mispredicts : int;
}

type loop_stats = {
  mutable chunk : int;
  mutable depth : int;
  mutable forks : int;
  mutable commits : int;
  mutable violations : int;
  mutable faults : int;
  mutable kills : int;
  mutable despecs : int;
  mutable serial_reexecs : int;
  mutable iters : int;
  mutable wall : float;
  mutable stale_mem : int;
  mutable stale_reg : int;
  mutable stale_rng : int;
  stale_regions : (int, int) Hashtbl.t;
  svp_vars : (int, svp_stats) Hashtbl.t;
}

(* global observability counters (no-ops unless metrics are enabled);
   only ever touched from the sequential thread *)
let m_forks = Obs.Metrics.counter "runtime.forks"
let m_commits = Obs.Metrics.counter "runtime.commits"
let m_kills = Obs.Metrics.counter "runtime.kills"
let m_violations = Obs.Metrics.counter "runtime.violations"
let m_faults = Obs.Metrics.counter "runtime.faults"
let m_despecs = Obs.Metrics.counter "runtime.despeculations"
let m_serial = Obs.Metrics.counter "runtime.serial_reexecs"
let m_svp_predicts = Obs.Metrics.counter "runtime.svp.predicts"
let m_svp_hits = Obs.Metrics.counter "runtime.svp.hits"
let m_svp_mispredicts = Obs.Metrics.counter "runtime.svp.mispredicts"

(* seconds one task (one loop-iteration segment) spent executing on its
   view; workers report the duration through the task record, the
   sequential thread observes it at the task's turn, so the registry is
   only ever touched from one thread *)
let h_iter = Obs.Metrics.histogram "runtime.iter_latency_s"

(* timeline instrumentation: with no timeline configured, [tl_now] is a
   branch returning a dummy and [tl_rec] a branch doing nothing *)
let tl_now = function None -> 0.0 | Some _ -> Unix.gettimeofday ()

let tl_rec tl kind ~lid t0 =
  match tl with
  | None -> ()
  | Some t -> Obs.Timeline.record t kind ~lid ~t0 ~t1:(Unix.gettimeofday ())

(* where execution of a chunk (or its serial replay) sequentially ends *)
type stop =
  | Forked of Interp.cursor  (** past this loop's Nth SPT_FORK *)
  | Exited of Interp.cursor  (** past this loop's SPT_KILL *)
  | Returned of Interp.value option

type outcome =
  | Stopped of stop * int * int  (** speculative steps, iterations *)
  | Fault of string

type status = Pending | Finished of outcome

type task = {
  tview : Specmem.view;
  tbv : Specmem.view option;
      (** the backbone (predictor) view this chunk reads through;
          sealed once the chunk resolves *)
  tstart : Interp.cursor;
  tpreds : (int * Interp.value) list;
      (** value predictions injected into [tbv] for this chunk:
          (vid, predicted value); scored at the chunk's resolution *)
  mutable tstatus : status;
  mutable texec_s : float;  (** seconds the task ran on its view *)
}

(* How segments and calls are executed: the tree interpreter or the
   bytecode engine, chosen by [config.engine].  Both implement the same
   segment-machine contract, so the scheduler is engine-agnostic. *)
type exec_iface = {
  x_seg :
    Interp.state ->
    Interp.frame ->
    ?stop_block:int ->
    watch_markers:bool ->
    Interp.cursor ->
    Interp.seg_stop;
  x_call :
    Interp.state ->
    Ir.func ->
    Interp.value list ->
    Ir.sym list ->
    Interp.value option;
}

let tree_iface =
  {
    x_seg =
      (fun st frame ?stop_block ~watch_markers cur ->
        Interp.exec_segment st frame ?stop_block ~watch_markers cur);
    x_call = Interp.call;
  }

let bytecode_iface eng =
  {
    x_seg =
      (fun st frame ?stop_block ~watch_markers cur ->
        Spt_exec.Engine.exec_segment eng st frame ?stop_block ~watch_markers
          cur);
    x_call = (fun st f scalars arrays -> Spt_exec.Engine.call eng st f scalars arrays);
  }

type rt = {
  program : Ir.program;
  cfg : config;
  x : exec_iface;
  pool : Pool.t;
  store : Interp.store;
  master : Interp.state;
  mu : Mutex.t;
  cond : Condition.t;
  specs : (int, loop_spec) Hashtbl.t;
  despec : (int, unit) Hashtbl.t;
  stats : (int, loop_stats) Hashtbl.t;
  region_of : int -> int option;
      (** element address -> region sid, for violation attribution *)
  mutable committed_steps : int;
}

let loop_stats rt lid =
  match Hashtbl.find_opt rt.stats lid with
  | Some s -> s
  | None ->
    let s =
      {
        chunk = 1;
        depth = 1;
        forks = 0;
        commits = 0;
        violations = 0;
        faults = 0;
        kills = 0;
        despecs = 0;
        serial_reexecs = 0;
        iters = 0;
        wall = 0.0;
        stale_mem = 0;
        stale_reg = 0;
        stale_rng = 0;
        stale_regions = Hashtbl.create 4;
        svp_vars = Hashtbl.create 4;
      }
    in
    Hashtbl.replace rt.stats lid s;
    s

(* attribute a validation failure to its cause — per-region for memory
   (the compiler's violation candidates store into named regions, so
   region-level rates are what the feedback loop joins against) *)
let record_stale rt (st : loop_stats) (stale : Specmem.stale) =
  match stale with
  | Specmem.Stale_mem a -> (
    st.stale_mem <- st.stale_mem + 1;
    match rt.region_of a with
    | Some sid ->
      Hashtbl.replace st.stale_regions sid
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.stale_regions sid))
    | None -> ())
  | Specmem.Stale_reg _ -> st.stale_reg <- st.stale_reg + 1
  | Specmem.Stale_rng -> st.stale_rng <- st.stale_rng + 1

(* ------------------------------------------------------------------ *)
(* Chunk execution (workers) and backbone prediction (main thread) *)

(* Drive a fresh machine over the view from just past the loop's fork,
   through [n] whole fork-to-fork spans — the post-fork slice of one
   iteration followed by the pre-fork slice of the next, repeated —
   stopping past the [n]th SPT_FORK, past the loop's SPT_KILL, or at a
   return.  Internal header transitions do NOT stop the chunk: a chunk
   is sequential execution of [n] iterations against one view, with one
   validation at its turn.  Markers of other loops are sequential
   no-ops.  All exceptions — out-of-bounds reads through stale
   speculative state, uninitialized registers, the fuel limit — surface
   as [Fault] and cost only a serial replay. *)
let run_chunk rt ~(frame : Interp.frame) ~lid ~n ~fuel view start : outcome =
  try
    let tm = Interp.make ~max_steps:fuel ~memio:(Specmem.memio view) rt.program in
    let tframe =
      Interp.mk_frame frame.Interp.func ~arr_args:frame.Interp.arr_args
        ~regio:(Specmem.regio view)
    in
    let rec go forks cur =
      match rt.x.x_seg tm tframe ~watch_markers:true cur with
      | Interp.Seg_return v ->
        Stopped (Returned v, Interp.steps tm, forks + 1)
      | Interp.Seg_stop_block _ -> assert false (* no stop_block given *)
      | Interp.Seg_marker (`Fork id, after) when id = lid ->
        if forks + 1 >= n then Stopped (Forked after, Interp.steps tm, n)
        else go (forks + 1) after
      | Interp.Seg_marker (`Kill id, after) when id = lid ->
        Stopped (Exited after, Interp.steps tm, forks + 1)
      | Interp.Seg_marker (_, after) -> go forks after
    in
    go 0 start
  with e -> Fault (Printexc.to_string e)

(* The backbone predictor: before spawning the next chunk, the
   sequential thread runs [n] pre-fork slices — header to fork, then
   back to the header, skipping every post-fork slice — into [view].
   Chained under the next chunk's view, it supplies the loop-carried
   pre-fork state (induction variables above all) that chunk needs to
   start [n] iterations ahead of the last one spawned.  The skip is
   exactly the paper's speculation assumption: pre-fork work of later
   iterations is independent of earlier post-fork work.  The view is
   pure prediction — never validated, never merged (the chunks
   re-execute and commit those slices); a wrong prediction surfaces as
   a validation failure of the chunk that read it.  Returns [false]
   when prediction says the loop exits (or faults) within the next
   chunk, i.e. speculation should stop extending. *)
let run_backbone rt ~(frame : Interp.frame) ~header ~lid ~n ~fuel view : bool =
  try
    let tm = Interp.make ~max_steps:fuel ~memio:(Specmem.memio view) rt.program in
    let tframe =
      Interp.mk_frame frame.Interp.func ~arr_args:frame.Interp.arr_args
        ~regio:(Specmem.regio view)
    in
    let start = { Interp.cbid = header; cprev = -1; cpos = 0 } in
    let rec round k cur =
      if k = n then true
      else
        match rt.x.x_seg tm tframe ~stop_block:header ~watch_markers:true cur with
        | Interp.Seg_marker (`Fork id, _) when id = lid -> round (k + 1) start
        | Interp.Seg_marker (`Kill id, _) when id = lid ->
          Obs.Log.debug "[runtime] loop %d: backbone predicts exit at round %d/%d"
            lid k n;
          false
        | Interp.Seg_marker (_, after) -> round k after
        | Interp.Seg_stop_block _ ->
          Obs.Log.debug
            "[runtime] loop %d: backbone re-reached header without a fork" lid;
          false (* header reached without a fork *)
        | Interp.Seg_return _ ->
          Obs.Log.debug "[runtime] loop %d: backbone predicts a return" lid;
          false
    in
    round 0 start
  with e ->
    Obs.Log.debug "[runtime] loop %d: backbone fault: %s" lid
      (Printexc.to_string e);
    false

(* Serial recovery: replay the chunk's whole span on master state, in
   the engaged frame, on the master machine (its marker handler is not
   consulted by [x_seg], so no re-entry).  Returns where the replay
   stopped and how many iterations it retired.  Genuine program errors
   propagate from here exactly as a sequential run would. *)
let serial_reexec rt ~(frame : Interp.frame) ~lid ~n start : stop * int =
  let rec go forks cur =
    match rt.x.x_seg rt.master frame ~watch_markers:true cur with
    | Interp.Seg_return v -> (Returned v, forks + 1)
    | Interp.Seg_stop_block _ -> assert false
    | Interp.Seg_marker (`Fork id, after) when id = lid ->
      if forks + 1 >= n then (Forked after, n) else go (forks + 1) after
    | Interp.Seg_marker (`Kill id, after) when id = lid ->
      (Exited after, forks + 1)
    | Interp.Seg_marker (_, after) -> go forks after
  in
  go 0 start

let wait_for rt task =
  Mutex.lock rt.mu;
  let rec go () =
    match task.tstatus with
    | Finished o -> o
    | Pending ->
      Condition.wait rt.cond rt.mu;
      go ()
  in
  let o = go () in
  Mutex.unlock rt.mu;
  o

(* ------------------------------------------------------------------ *)
(* The per-loop scheduler *)

(* Per-variable runtime value predictor (SVP): a register that failed
   validation ([Stale_reg]) is a loop-carried scalar the backbone
   cannot supply — typically a post-fork accumulator.  The predictor
   tracks its master value at the end of each fully-resolved chunk and
   the per-chunk stride between consecutive observations; once a stride
   is known, spawns inject [last + stride * in_flight] into the new
   chunk's backbone view ({!Specmem.reg_predict}), and the existing
   read-log validation checks the prediction for free.  Recovery from a
   mispredict is the ordinary violation path (rollback, serial replay,
   kill cascade), which also re-observes the true value — so the state
   machine is predict → check (validation) → recover (replay+relearn). *)
type svp_pred = {
  mutable sp_last : Interp.value option;
      (* master value at the end of the last resolved chunk *)
  mutable sp_stride : int64 option;  (* confirmed per-chunk stride *)
}

(* Runs the whole loop: pipelines up to K = [depth_of] iteration chunks
   (epochs) onto the worker pool, predicts their loop-carried pre-fork
   state on the sequential thread (the backbone), commits chunks
   strictly in sequential order, recovers serially from misspeculation
   — killing the offending epoch and exactly its in-flight successors,
   never already-committed work — and returns where the sequential
   thread resumes.

   With chunk size [n], chunk C_k covers the [n] fork-to-fork spans
   starting at iteration [k*n]; every chunk starts from the static
   post-fork cursor [after0] (valid because speculated functions are
   phi-free, so [cprev] never matters).  C_{k+1}'s view parents the
   backbone view B_k written while C_k ran; backbone views chain
   B_k -> B_{k-1} -> ... and are sealed — not merged — once their
   reader chunk resolves, since master then already holds every value
   they predicted. *)
let run_spt_loop rt (frame : Interp.frame) (spec : loop_spec)
    (after0 : Interp.cursor) : Interp.marker_action =
  let t0 = Unix.gettimeofday () in
  let lid = spec.ls_id in
  let header = spec.ls_header in
  let n = chunk_size rt.cfg spec in
  let depth = depth_of rt.cfg spec in
  (* a chunk (and a backbone fill) is n iterations of speculative work *)
  let fuel = min rt.cfg.max_steps (rt.cfg.spec_fuel * n) in
  let tl = rt.cfg.timeline in
  let st = loop_stats rt lid in
  st.chunk <- n;
  st.depth <- depth;
  let master =
    {
      Specmem.m_mem = rt.store.Interp.smem;
      m_regs = frame.Interp.regs;
      m_rng_get = (fun () -> rt.store.Interp.srng);
      m_rng_set = (fun r -> rt.store.Interp.srng <- r);
      m_out = rt.store.Interp.sout;
    }
  in
  let pending : task Queue.t = Queue.create () in
  (* tail of the backbone view chain: chunks see all earlier pre-fork
     (predictor) writes, and no post-fork writes — that independence IS
     the speculation *)
  let bchain = ref None in
  let consec = ref 0 in
  let filling = ref true in
  let finish = ref None in
  let last_pos = ref after0 in
  (* vid -> predictor state; entries appear on the first [Stale_reg]
     for that vid (prediction is demand-driven: only registers the
     backbone demonstrably cannot supply are tracked) *)
  let svp : (int, svp_pred) Hashtbl.t = Hashtbl.create 4 in
  let svp_var vid =
    match Hashtbl.find_opt st.svp_vars vid with
    | Some s -> s
    | None ->
      let s = { sv_predicts = 0; sv_hits = 0; sv_mispredicts = 0 } in
      Hashtbl.replace st.svp_vars vid s;
      s
  in
  (* predictions for the chunk about to spawn, [in_flight] chunks ahead
     of the last resolved one: last + stride * in_flight *)
  let svp_predictions () =
    if Hashtbl.length svp = 0 then []
    else
      Hashtbl.fold
        (fun vid p acc ->
          match (p.sp_last, p.sp_stride) with
          | Some (Spt_ir.Eval.Vi last), Some stride ->
            let d = Int64.of_int (Queue.length pending) in
            (vid, Spt_ir.Eval.Vi (Int64.add last (Int64.mul stride d))) :: acc
          | _ -> acc)
        svp []
  in
  (* relearn after the head resolved: master now holds the true value
     at the end of its span.  Only full chunks observe a stride (a
     partial chunk ends the loop anyway); the stride confirms after one
     observation, so an accumulator loop converges within two failed
     chunks — under the despeculation valve's default of three. *)
  let svp_learn ~full =
    Hashtbl.iter
      (fun vid p ->
        if not full then begin
          p.sp_last <- None;
          p.sp_stride <- None
        end
        else begin
          let cur =
            if vid < Array.length frame.Interp.regs then
              frame.Interp.regs.(vid)
            else None
          in
          (match (p.sp_last, cur) with
          | Some (Spt_ir.Eval.Vi a), Some (Spt_ir.Eval.Vi b) ->
            p.sp_stride <- Some (Int64.sub b a)
          | _ -> p.sp_stride <- None);
          p.sp_last <- cur
        end)
      svp
  in
  let svp_score resolution (t : task) =
    if t.tpreds <> [] then
      match resolution with
      | `Commit _ ->
        List.iter
          (fun (vid, _) ->
            (svp_var vid).sv_hits <- (svp_var vid).sv_hits + 1;
            Obs.Metrics.inc m_svp_hits)
          t.tpreds
      | `Stale (Specmem.Stale_reg bad) ->
        List.iter
          (fun (vid, _) ->
            if vid = bad then begin
              (svp_var vid).sv_mispredicts <- (svp_var vid).sv_mispredicts + 1;
              Obs.Metrics.inc m_svp_mispredicts
            end)
          t.tpreds
      | `Stale _ | `Fault _ -> ()
  in
  let spawn_chunk ~bv =
    let tf0 = tl_now tl in
    (* inject value predictions into the backbone view the chunk reads
       through (never into a raw-master chunk: nothing to write to) *)
    let preds =
      match bv with
      | None -> []
      | Some bv ->
        let ps = svp_predictions () in
        if ps <> [] then begin
          let tp0 = tl_now tl in
          List.iter
            (fun (vid, x) ->
              Specmem.reg_predict bv vid x;
              (svp_var vid).sv_predicts <- (svp_var vid).sv_predicts + 1;
              Obs.Metrics.inc m_svp_predicts)
            ps;
          tl_rec tl Obs.Timeline.Svp ~lid tp0
        end;
        ps
    in
    let view = Specmem.create ?parent:bv master in
    let t =
      { tview = view; tbv = bv; tstart = after0; tpreds = preds;
        tstatus = Pending; texec_s = 0.0 }
    in
    Queue.push t pending;
    st.forks <- st.forks + 1;
    Obs.Metrics.inc m_forks;
    Pool.submit rt.pool (fun () ->
        (* the Exec span lands on the worker domain's own lane *)
        let e0 = Unix.gettimeofday () in
        let o = run_chunk rt ~frame ~lid ~n ~fuel view after0 in
        let e1 = Unix.gettimeofday () in
        (match tl with
        | Some tline -> Obs.Timeline.record tline Obs.Timeline.Exec ~lid ~t0:e0 ~t1:e1
        | None -> ());
        Mutex.lock rt.mu;
        t.texec_s <- e1 -. e0;
        t.tstatus <- Finished o;
        Condition.broadcast rt.cond;
        Mutex.unlock rt.mu);
    tl_rec tl Obs.Timeline.Fork ~lid tf0
  in
  (* run one backbone fill on the sequential thread, then spawn the
     chunk that reads through it *)
  let extend () =
    let tb0 = tl_now tl in
    let bv = Specmem.create ?parent:!bchain master in
    let complete = run_backbone rt ~frame ~header ~lid ~n ~fuel bv in
    tl_rec tl Obs.Timeline.Chunk ~lid tb0;
    bchain := Some bv;
    (* spawn even past a predicted exit: the chunk stops at the loop's
       kill (or return) on its own, so the exit is itself speculated *)
    spawn_chunk ~bv:(Some bv);
    if not complete then filling := false
  in
  (* kill cascade: discard every in-flight successor epoch — exactly
     the epochs ≥ the offender (the offender's own view was already
     rolled back by the resolution), never committed work — and reset
     the backbone chain so re-speculation restarts from master state *)
  let kill_pending () =
    let killed = Queue.length pending in
    if killed > 0 then begin
      st.kills <- st.kills + killed;
      Obs.Metrics.add m_kills killed;
      (* roll the dead views back — and their backbones — so late
         writes from abandoned workers are dropped and descendants stop
         reading their buffers *)
      let tk0 = tl_now tl in
      Queue.iter
        (fun t ->
          Specmem.rollback t.tview;
          match t.tbv with
          | Some bv when not (Specmem.is_committed bv) -> Specmem.rollback bv
          | _ -> ())
        pending;
      Queue.clear pending;
      tl_rec tl Obs.Timeline.Kill ~lid tk0
    end;
    bchain := None
  in
  spawn_chunk ~bv:None;
  while !finish = None && not (Queue.is_empty pending) do
    while !filling && Queue.length pending < depth do
      extend ()
    done;
    let head = Queue.pop pending in
    let outcome = wait_for rt head in
    (* resolve the head to its definitive sequential stop *)
    let resolution =
      match outcome with
      | Stopped (stop, steps, iters) -> (
        let tv0 = tl_now tl in
        let v = Specmem.validate head.tview in
        tl_rec tl Obs.Timeline.Validate ~lid tv0;
        match v with
        | Ok () -> `Commit (stop, steps, iters)
        | Error stale -> `Stale stale)
      | Fault msg -> `Fault msg
    in
    svp_score resolution head;
    (* demand-driven activation: a register the backbone demonstrably
       cannot supply (a post-fork loop-carried scalar, DESIGN §3f)
       enters the predictor table on its first violation *)
    (match resolution with
    | `Stale (Specmem.Stale_reg vid) when not (Hashtbl.mem svp vid) ->
      Hashtbl.replace svp vid { sp_last = None; sp_stride = None }
    | _ -> ());
    let stop, clean, retired =
      match resolution with
      | `Commit (stop, steps, iters) ->
        let tc0 = tl_now tl in
        Specmem.commit head.tview;
        tl_rec tl Obs.Timeline.Commit ~lid tc0;
        rt.committed_steps <- rt.committed_steps + steps;
        (* committed speculative work counts against the same budget a
           sequential run would have spent on it — otherwise a
           transformed program that loops forever commits forever (the
           master only steps between SPT regions and never hits its own
           limit) *)
        if Interp.steps rt.master + rt.committed_steps > rt.cfg.max_steps then
          raise
            (Interp.Runtime_error
               (Printf.sprintf "step limit exceeded (%d)" rt.cfg.max_steps));
        st.commits <- st.commits + 1;
        Obs.Metrics.inc m_commits;
        (* a master-fed head (first epoch, or the respawn after a kill
           cascade) reads only true state and is guaranteed clean, so
           its commit is no evidence speculation works — only a commit
           of an epoch that read through backbones resets the valve *)
        (match head.tbv with Some _ -> consec := 0 | None -> ());
        (stop, true, iters)
      | `Stale _ | `Fault _ ->
        let tr0 = tl_now tl in
        Specmem.rollback head.tview;
        tl_rec tl Obs.Timeline.Rollback ~lid tr0;
        (match resolution with
        | `Fault msg ->
          st.faults <- st.faults + 1;
          Obs.Metrics.inc m_faults;
          Obs.Log.debug "[runtime] loop %d: speculative fault: %s" lid msg
        | `Stale stale ->
          st.violations <- st.violations + 1;
          Obs.Metrics.inc m_violations;
          record_stale rt st stale;
          Obs.Log.debug "[runtime] loop %d: %s" lid
            (Specmem.string_of_stale stale)
        | `Commit _ -> assert false);
        incr consec;
        st.serial_reexecs <- st.serial_reexecs + 1;
        Obs.Metrics.inc m_serial;
        let tx0 = tl_now tl in
        let stop, iters = serial_reexec rt ~frame ~lid ~n head.tstart in
        tl_rec tl Obs.Timeline.Reexec ~lid tx0;
        (stop, false, iters)
    in
    Obs.Log.debug "[runtime] loop %d: head %s: retired %d iter(s)" lid
      (match stop with
      | Forked _ -> if clean then "committed" else "replayed"
      | Exited _ -> "exited"
      | Returned _ -> "returned")
      retired;
    st.iters <- st.iters + retired;
    if retired > 0 then
      Obs.Metrics.observe h_iter (head.texec_s /. float_of_int retired);
    (* master holds the true post-head register file now (commit merged
       it, or the serial replay wrote it) — observe strides at chunk
       granularity *)
    svp_learn
      ~full:(retired = n && match stop with Forked _ -> true | _ -> false);
    (* master now holds everything the head's backbone predicted *)
    (match head.tbv with
    | Some bv when not (Specmem.is_rolled_back bv) -> Specmem.seal bv
    | _ -> ());
    if !consec >= rt.cfg.despec_after && not (Hashtbl.mem rt.despec lid)
    then begin
      Hashtbl.replace rt.despec lid ();
      st.despecs <- st.despecs + 1;
      Obs.Metrics.inc m_despecs;
      Obs.Log.info
        "[runtime] loop %d despeculated after %d consecutive misspeculations"
        lid !consec;
      filling := false
    end;
    (* did the head end the way downstream speculation assumed?  every
       downstream chunk starts from the static [after0], so a head that
       forked its [n]th time — committed, or replayed to the same
       static cursor — upholds them *)
    let downstream_ok =
      match stop with
      | Forked after ->
        clean
        || after.Interp.cbid = after0.Interp.cbid
           && after.Interp.cpos = after0.Interp.cpos
      | _ -> false
    in
    if downstream_ok then begin
      last_pos :=
        (match stop with
        | Forked c | Exited c -> c
        | Returned _ -> !last_pos);
      (* a misspeculated head poisons every in-flight successor — they
         chained through its backbone's now-refuted state — so the
         cascade kills exactly the epochs after it (committed work is
         untouched) and re-speculates from the replayed master state,
         which sits precisely at the fork the dead epochs assumed *)
      if not clean then begin
        kill_pending ();
        if not (Hashtbl.mem rt.despec lid) then begin
          filling := true;
          spawn_chunk ~bv:None
        end
      end
    end
    else begin
      (* control diverged (or the loop exited): everything speculated
         beyond this point is dead (abandoned workers finish into dead
         views), and the loop is over *)
      kill_pending ();
      finish :=
        Some
          (match stop with
          | Returned v -> Interp.Return_now v
          | Exited c | Forked c -> Interp.Jump_to c)
    end
  done;
  st.wall <- st.wall +. (Unix.gettimeofday () -. t0);
  match !finish with
  | Some action -> action
  | None ->
    (* drained cleanly (despeculation wind-down): resume where the last
       committed chunk left off; if that is just past the fork, the
       master executes sequentially to the next SPT_FORK, whose handler
       sees the despec flag and proceeds *)
    Interp.Jump_to !last_pos

(* ------------------------------------------------------------------ *)
(* Whole-program execution *)

let func_has_phis (f : Ir.func) =
  List.exists
    (fun bid ->
      List.exists
        (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind)
        (Ir.block f bid).Ir.instrs)
    (Ir.block_ids f)

type result = {
  output : string;
  return_value : Interp.value option;
  heap_digest : string;
  dynamic_instrs : int;
  wall_time : float;
  stats : (int * loop_stats) list;
  oracle : [ `Match | `Mismatch of string | `Skipped ];
}

(* [No_sharing]: the default marshaller encodes physical sharing, so
   two structurally equal stores can digest differently depending on
   which boxed values execution happened to reuse — exactly what a
   cross-configuration comparison must not be sensitive to *)
let heap_digest (store : Interp.store) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (store.Interp.smem, store.Interp.srng)
          [ Marshal.No_sharing ]))

let opt_value_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Specmem.value_eq x y
  | _ -> false

(* per-region telemetry keys sorted before every JSON emit: worker
   scheduling order must never show through in a report, or the fuzz
   oracle's cross-jobs report diffs go nondeterministic *)
let sorted_regions (st : loop_stats) =
  List.sort compare
    (Hashtbl.fold (fun sid n acc -> (sid, n) :: acc) st.stale_regions [])

let sorted_svp (st : loop_stats) =
  List.sort compare
    (Hashtbl.fold (fun vid s acc -> (vid, s) :: acc) st.svp_vars [])

let svp_totals (st : loop_stats) =
  Hashtbl.fold
    (fun _ s (p, h, m) ->
      (p + s.sv_predicts, h + s.sv_hits, m + s.sv_mispredicts))
    st.svp_vars (0, 0, 0)

let stats_json (r : result) =
  let module J = Obs.Json in
  J.Obj
    [
      ("wall_time_s", J.Float r.wall_time);
      ("dynamic_instrs", J.Int r.dynamic_instrs);
      ("heap_digest", J.Str r.heap_digest);
      ( "oracle",
        J.Str
          (match r.oracle with
          | `Match -> "match"
          | `Mismatch m -> "mismatch: " ^ m
          | `Skipped -> "skipped") );
      ( "loops",
        J.List
          (List.map
             (fun (lid, s) ->
               J.Obj
                 [
                   ("loop_id", J.Int lid);
                   ("chunk", J.Int s.chunk);
                   ("depth", J.Int s.depth);
                   ("forks", J.Int s.forks);
                   ("commits", J.Int s.commits);
                   ("violations", J.Int s.violations);
                   ("faults", J.Int s.faults);
                   ("kills", J.Int s.kills);
                   ("despeculations", J.Int s.despecs);
                   ("serial_reexecs", J.Int s.serial_reexecs);
                   ("iters", J.Int s.iters);
                   ("wall_s", J.Float s.wall);
                   ( "kill_rate",
                     J.Float
                       (if s.forks > 0 then
                          float_of_int s.kills /. float_of_int s.forks
                        else 0.0) );
                   ( "reexec_fraction",
                     J.Float
                       (if s.forks > 0 then
                          float_of_int s.serial_reexecs /. float_of_int s.forks
                        else 0.0) );
                   ("stale_mem", J.Int s.stale_mem);
                   ("stale_reg", J.Int s.stale_reg);
                   ("stale_rng", J.Int s.stale_rng);
                   ( "stale_regions",
                     J.List
                       (List.map
                          (fun (sid, n) ->
                            J.Obj [ ("sid", J.Int sid); ("count", J.Int n) ])
                          (sorted_regions s)) );
                   ( "svp",
                     let p, h, m = svp_totals s in
                     J.Obj
                       [
                         ("predicts", J.Int p);
                         ("hits", J.Int h);
                         ("mispredicts", J.Int m);
                         ( "vars",
                           J.List
                             (List.map
                                (fun (vid, v) ->
                                  J.Obj
                                    [
                                      ("vid", J.Int vid);
                                      ("predicts", J.Int v.sv_predicts);
                                      ("hits", J.Int v.sv_hits);
                                      ("mispredicts", J.Int v.sv_mispredicts);
                                    ])
                                (sorted_svp s)) );
                       ] );
                 ])
             r.stats) );
    ]

let sequential_reference x cfg layout program =
  let store = Interp.new_store layout program in
  let m =
    Interp.make ~max_steps:cfg.max_steps ~memio:(Interp.store_memio store)
      program
  in
  let ret = x.x_call m (Ir.func_of_program program "main") [] [] in
  (ret, Buffer.contents store.Interp.sout, heap_digest store)

let run ?config ?(loops = []) (program : Ir.program) : result =
  let cfg = match config with Some c -> c | None -> default_config () in
  let specs = Hashtbl.create 8 in
  List.iter
    (fun ls ->
      match List.assoc_opt ls.ls_fname program.Ir.funcs with
      | Some f when not (func_has_phis f) -> Hashtbl.replace specs ls.ls_id ls
      | Some _ ->
        Obs.Log.warn
          "[runtime] loop %d in %s not speculated: function still in SSA"
          ls.ls_id ls.ls_fname
      | None -> ())
    loops;
  let layout = Layout.build program.Ir.globals in
  let store = Interp.new_store layout program in
  let master =
    Interp.make ~max_steps:cfg.max_steps ~memio:(Interp.store_memio store)
      program
  in
  let region_of a =
    Option.map
      (fun (s : Ir.sym) -> s.Ir.sid)
      (Layout.owner_of_element layout program.Ir.globals a)
  in
  (* metrics-enabled runs sample the master machine's dispatch time;
     worker machines never sample (the registry is single-threaded).
     The bytecode engine does not advance the sampler, so the histogram
     only fills on the tree engine. *)
  if Obs.Metrics.enabled () then Interp.set_sampler master;
  let x =
    match cfg.engine with
    | Spt_exec.Engine.Tree -> tree_iface
    | Spt_exec.Engine.Bytecode ->
      let tc0 = tl_now cfg.timeline in
      let eng = Spt_exec.Engine.compile master in
      tl_rec cfg.timeline Obs.Timeline.Compile ~lid:(-1) tc0;
      bytecode_iface eng
  in
  let rt =
    {
      program;
      cfg;
      x;
      pool =
        Pool.create
          ~on_start:(fun () ->
            match cfg.timeline with
            | Some t -> Obs.Timeline.touch t
            | None -> ())
          ~jobs:cfg.jobs ();
      store;
      master;
      mu = Mutex.create ();
      cond = Condition.create ();
      specs;
      despec = Hashtbl.create 4;
      stats = Hashtbl.create 4;
      region_of;
      committed_steps = 0;
    }
  in
  Interp.set_marker_handler master
    (Some
       (fun _st frame marker after ->
         match marker with
         | `Kill _ -> Interp.Proceed
         | `Fork id -> (
           match Hashtbl.find_opt rt.specs id with
           | Some spec
             when (not (Hashtbl.mem rt.despec id))
                  && String.equal frame.Interp.func.Ir.fname spec.ls_fname ->
             run_spt_loop rt frame spec after
           | _ -> Interp.Proceed)));
  let t0 = Unix.gettimeofday () in
  let return_value =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown rt.pool)
      (fun () -> x.x_call master (Ir.func_of_program program "main") [] [])
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  let output = Buffer.contents store.Interp.sout in
  let digest = heap_digest store in
  let oracle =
    if not cfg.oracle then `Skipped
    else begin
      let sret, sout, sdigest = sequential_reference x cfg layout program in
      if not (String.equal sout output) then
        `Mismatch
          (Printf.sprintf "output differs (%d bytes vs %d sequential)"
             (String.length output) (String.length sout))
      else if not (opt_value_eq sret return_value) then
        `Mismatch "return value differs"
      else if not (String.equal sdigest digest) then
        `Mismatch "final heap differs"
      else `Match
    end
  in
  {
    output;
    return_value;
    heap_digest = digest;
    dynamic_instrs = Interp.steps master + rt.committed_steps;
    wall_time;
    stats =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rt.stats []);
    oracle;
  }
