module Interp = Spt_interp.Interp
module Eval = Spt_ir.Eval

type master = {
  m_mem : Interp.value array;
  m_regs : Interp.value option array;
  m_rng_get : unit -> int64;
  m_rng_set : int64 -> unit;
  m_out : Buffer.t;
}

type view = {
  parent : view option;
  master : master;
  mem_w : (int, Interp.value) Hashtbl.t;
  mem_r : (int, Interp.value) Hashtbl.t;  (* first-read log *)
  reg_w : (int, Interp.value) Hashtbl.t;  (* keyed by vid *)
  reg_r : (int, Interp.value) Hashtbl.t;
  mutable rng_r : int64 option;  (* first LCG state observed *)
  mutable rng_w : int64 option;  (* last LCG state written *)
  vout : Buffer.t;
  committed : bool Atomic.t;
  rolled_back : bool Atomic.t;
}

let create ?parent master =
  {
    parent;
    master;
    mem_w = Hashtbl.create 16;
    mem_r = Hashtbl.create 16;
    reg_w = Hashtbl.create 16;
    reg_r = Hashtbl.create 16;
    rng_r = None;
    rng_w = None;
    vout = Buffer.create 64;
    committed = Atomic.make false;
    rolled_back = Atomic.make false;
  }

let is_committed v = Atomic.get v.committed
let is_rolled_back v = Atomic.get v.rolled_back

(* Killing a view only flips a flag: the kill may race with an
   abandoned worker still executing into the view, so the buffers are
   left for the GC rather than cleared under its feet.  Idempotent. *)
let rollback v =
  if Atomic.get v.committed then
    invalid_arg "Specmem.rollback: view already committed";
  Atomic.set v.rolled_back true

let value_eq a b =
  match (a, b) with
  | Eval.Vi x, Eval.Vi y -> Int64.equal x y
  | Eval.Vf x, Eval.Vf y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> false

(* Walk uncommitted ancestors for a buffered value.  Ancestor tables
   are immutable once the ancestor task finished (views chain only
   through completed pre-fork tasks), and [committed] is set with
   release ordering after the master writes, so a [true] here means
   the master already holds the ancestor's values. *)
let rec chain_find sel v =
  match v with
  | None -> None
  | Some v ->
    if Atomic.get v.committed then None
    else if Atomic.get v.rolled_back then
      (* a killed ancestor's buffered writes are void, but earlier
         ancestors may still hold live uncommitted values *)
      chain_find sel v.parent
    else (
      match sel v with Some _ as r -> r | None -> chain_find sel v.parent)

let mem_load v a =
  match Hashtbl.find_opt v.mem_w a with
  | Some x -> x
  | None -> (
    match Hashtbl.find_opt v.mem_r a with
    | Some x -> x (* self-consistency: repeat reads see the first *)
    | None ->
      let x =
        match chain_find (fun p -> Hashtbl.find_opt p.mem_w a) v.parent with
        | Some x -> x
        | None -> v.master.m_mem.(a) (* racy but memory-safe; validated *)
      in
      Hashtbl.replace v.mem_r a x;
      x)

(* writes after a kill are dropped: the task is dead, and nothing may
   repopulate a buffer the commit path will never drain *)
let mem_store v a x =
  if not (Atomic.get v.rolled_back) then Hashtbl.replace v.mem_w a x

let reg_get v (var : Spt_ir.Ir.var) =
  let vid = var.Spt_ir.Ir.vid in
  match Hashtbl.find_opt v.reg_w vid with
  | Some x -> Some x
  | None -> (
    match Hashtbl.find_opt v.reg_r vid with
    | Some x -> Some x
    | None -> (
      match chain_find (fun p -> Hashtbl.find_opt p.reg_w vid) v.parent with
      | Some x ->
        Hashtbl.replace v.reg_r vid x;
        Some x
      | None -> (
        match v.master.m_regs.(vid) with
        | Some x ->
          Hashtbl.replace v.reg_r vid x;
          Some x
        | None ->
          (* uninitialized so far: the task will fault and be
             re-executed serially, no need to log *)
          None)))

let reg_set v (var : Spt_ir.Ir.var) x =
  if not (Atomic.get v.rolled_back) then
    Hashtbl.replace v.reg_w var.Spt_ir.Ir.vid x

(* A value-predicted register: written into a predictor (backbone) view
   by raw vid, before the reading chunk spawns, so the chunk's chained
   read observes the prediction instead of the (stale) master value.
   Like any buffered write it is never merged from a sealed view; a
   wrong prediction surfaces as the reader's validation failure. *)
let reg_predict v vid x =
  if not (Atomic.get v.rolled_back) then Hashtbl.replace v.reg_w vid x

let rng_read v =
  match v.rng_w with
  | Some s -> s
  | None -> (
    match v.rng_r with
    | Some s -> s
    | None ->
      let s =
        match chain_find (fun p -> p.rng_w) v.parent with
        | Some s -> s
        | None -> v.master.m_rng_get ()
      in
      v.rng_r <- Some s;
      s)

let rng_write v s = if not (Atomic.get v.rolled_back) then v.rng_w <- Some s

let memio v =
  {
    Interp.mio_load = mem_load v;
    mio_store = mem_store v;
    mio_rng = (fun () -> rng_read v);
    mio_set_rng = rng_write v;
    mio_print =
      (fun s -> if not (Atomic.get v.rolled_back) then Buffer.add_string v.vout s);
  }

let regio v = { Interp.rio_get = reg_get v; rio_set = reg_set v }

type stale =
  | Stale_mem of int  (** element address whose read proved stale *)
  | Stale_reg of int  (** register vid *)
  | Stale_rng

let string_of_stale s =
  (match s with
  | Stale_mem a -> Printf.sprintf "mem[%d]" a
  | Stale_reg vid -> Printf.sprintf "reg %%%d" vid
  | Stale_rng -> "rng")
  ^ " changed under speculation"

(* validation/commit footprint counters; validate and commit run only
   on the sequential thread, so plain registry updates are safe *)
let m_reads_validated = Spt_obs.Metrics.counter "runtime.specmem.reads_validated"
let m_writes_committed = Spt_obs.Metrics.counter "runtime.specmem.writes_committed"

let validate v =
  let rng_r = if v.rng_r = None then 0 else 1 in
  Spt_obs.Metrics.add m_reads_validated
    (Hashtbl.length v.mem_r + Hashtbl.length v.reg_r + rng_r);
  let bad = ref None in
  Hashtbl.iter
    (fun a x ->
      if !bad = None && not (value_eq v.master.m_mem.(a) x) then
        bad := Some (Stale_mem a))
    v.mem_r;
  Hashtbl.iter
    (fun vid x ->
      if !bad = None then
        match v.master.m_regs.(vid) with
        | Some y when value_eq x y -> ()
        | _ -> bad := Some (Stale_reg vid))
    v.reg_r;
  (match v.rng_r with
  | Some s when !bad = None && not (Int64.equal s (v.master.m_rng_get ())) ->
    bad := Some Stale_rng
  | _ -> ());
  match !bad with None -> Ok () | Some what -> Error what

let commit v =
  if Atomic.get v.rolled_back then
    invalid_arg "Specmem.commit: view was rolled back";
  let rng_w = if v.rng_w = None then 0 else 1 in
  Spt_obs.Metrics.add m_writes_committed
    (Hashtbl.length v.mem_w + Hashtbl.length v.reg_w + rng_w);
  Hashtbl.iter (fun a x -> v.master.m_mem.(a) <- x) v.mem_w;
  Hashtbl.iter (fun vid x -> v.master.m_regs.(vid) <- Some x) v.reg_w;
  (match v.rng_w with Some s -> v.master.m_rng_set s | None -> ());
  Buffer.add_buffer v.master.m_out v.vout;
  (* release: readers that observe the flag observe the writes above *)
  Atomic.set v.committed true

(* A predictor (backbone) view is never merged: the iterations it
   predicted are re-executed — and committed — by the chunk that read
   through it, so once that chunk resolves, master already holds every
   value the view could supply and the chain walk may skip it. *)
let seal v =
  if Atomic.get v.rolled_back then
    invalid_arg "Specmem.seal: view was rolled back";
  Atomic.set v.committed true

let footprint v =
  let rng_r = if v.rng_r = None then 0 else 1 in
  let rng_w = if v.rng_w = None then 0 else 1 in
  ( Hashtbl.length v.mem_r + Hashtbl.length v.reg_r + rng_r,
    Hashtbl.length v.mem_w + Hashtbl.length v.reg_w + rng_w )
