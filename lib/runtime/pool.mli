(** A reusable fixed-size pool of OCaml 5 domains.

    No external dependencies: [Domain] plus [Mutex]/[Condition] over a
    FIFO job queue.  Jobs are [unit -> unit] thunks; any exception a
    job raises is swallowed (callers that care report completion
    through their own channel, as {!Runtime} does with task statuses). *)

type t

(** [create ~jobs ()] spawns [max 1 jobs] worker domains.  [on_start]
    runs once in each worker domain before it takes jobs (exceptions
    swallowed) — the runtime uses it to register timeline lanes so
    even never-scheduled workers show up as idle in attribution. *)
val create : ?on_start:(unit -> unit) -> jobs:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** Enqueue a job.  @raise Invalid_argument after [shutdown]. *)
val submit : t -> (unit -> unit) -> unit

(** Jobs submitted and not yet picked up by a worker. *)
val queued : t -> int

(** Jobs currently executing on a worker domain — [queued t + active t]
    is the pool's total in-flight load, what the compile server's
    backpressure watches. *)
val active : t -> int

(** Drain the queue (remaining jobs still run), stop the workers and
    join their domains.  Idempotent. *)
val shutdown : t -> unit
