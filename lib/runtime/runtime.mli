(** The speculative scheduler: executes an SPT-transformed program on
    OCaml 5 domains with genuine fork / validate / commit / kill.

    One iteration of an SPT loop splits at its [SPT_FORK] into a
    pre-fork slice (the violation candidates the partitioner moved up)
    and a post-fork slice (the rest of the body).  The runtime forks in
    {e chunks}: one speculative task covers [chunk] whole fork-to-fork
    spans — the post-fork slice of one iteration followed by the
    pre-fork slice of the next, [chunk] times — executed sequentially
    against a single {!Specmem.view}, so view creation, validation and
    commit are paid once per chunk instead of once per iteration.
    Chunks run on the worker pool; the sequential thread meanwhile
    predicts the loop-carried pre-fork state the {e next} chunk starts
    from by running only the pre-fork slices (the {e backbone}) into
    predictor views the chunks read through — the assumption, exactly
    the paper's §3 execution model, being that pre-fork work of later
    iterations is independent of earlier post-fork work.  Chunks are
    validated and committed strictly in order; on a read violation or
    a speculative fault the chunk is killed and its whole span is
    re-executed serially on master state (a mispredicted backbone
    surfaces this way too — prediction can cost time, never
    correctness).

    Up to [depth] chunks (epochs) are in flight at once — K-deep
    DOACROSS pipelining.  A misspeculated head cascades: every
    in-flight successor chained through its refuted backbone state, so
    the cascade kills exactly the epochs after the offender (committed
    work is never touched) and re-speculates from the replayed master
    state.  Registers the backbone demonstrably cannot supply (post-
    fork loop-carried scalars) enter a per-loop software value
    predictor on their first violation: the runtime learns their
    per-chunk stride from committed master states and injects
    [last + stride * in_flight] into the backbone view each new chunk
    reads through; a wrong prediction is caught by the reader's
    ordinary read-log validation.  A loop that misspeculates
    [despec_after] times in a row — guaranteed-clean commits of
    master-fed respawns don't reset the count — is de-speculated for
    the rest of the run. *)

module Interp = Spt_interp.Interp

(** A transformed loop, as registered by the driver: the id carried by
    its [SPT_FORK]/[SPT_KILL] markers, its function and its header
    block in the final (post-SSA-destruction) CFG.  [ls_iter_ops] is
    the cost model's dynamic-operations-per-iteration estimate
    ([<= 0.0] when unknown), used to auto-size chunks. *)
type loop_spec = {
  ls_id : int;
  ls_fname : string;
  ls_header : int;
  ls_iter_ops : float;
  ls_depth : int;
      (** cost-model-chosen speculation depth for this loop ([<= 0]
          when unpriced); overridden by {!config.depth}, capped by
          [window] *)
}

type config = {
  jobs : int;  (** worker domains (≥ 1) *)
  window : int;  (** max speculative chunks in flight *)
  despec_after : int;  (** consecutive misspeculations before the valve *)
  spec_fuel : int;  (** step budget of one speculative {e iteration};
      a chunk's fuel is [spec_fuel * chunk], capped at [max_steps] *)
  max_steps : int;  (** overall sequential step budget *)
  oracle : bool;  (** check against a sequential reference run *)
  timeline : Spt_obs.Timeline.t option;
      (** when set, every fork/exec/validate/commit/rollback/reexec/
          kill/chunk/compile is recorded per domain; drain it only
          after {!run} returns (the pool has then joined its workers) *)
  engine : Spt_exec.Engine.kind;
      (** how segments execute: the tree interpreter or the flat
          bytecode engine (identical semantics; see {!Spt_exec}) *)
  chunk : int option;
      (** iterations per speculative fork; [None] auto-sizes from
          [ls_iter_ops] (targeting ~2048 dynamic ops per chunk,
          clamped to [1, 256]; 16 when the estimate is unknown) *)
  depth : int option;
      (** forced speculation depth (chunks in flight) for every loop;
          [None] uses the loop's cost-model-chosen [ls_depth], falling
          back to [window].  The effective depth — forced or not — is
          always capped at [window], the runtime's in-flight resource
          bound. *)
}

(** [jobs] honours [SPT_JOBS]; window is [2 * jobs]; engine is
    [Bytecode]; chunk is auto-sized; depth is per-loop/auto. *)
val default_config : unit -> config

(** Chunk size [run] will use for a loop under this config. *)
val chunk_size : config -> loop_spec -> int

(** Speculation depth [run] will use for a loop under this config:
    [config.depth] if forced, else [ls_depth] capped at [window], else
    [window]. *)
val depth_of : config -> loop_spec -> int

(** Per-variable software-value-prediction counters. *)
type svp_stats = {
  mutable sv_predicts : int;  (** predictions injected *)
  mutable sv_hits : int;  (** predictions the reader committed on *)
  mutable sv_mispredicts : int;  (** predictions refuted by validation *)
}

(** Mutable per-loop counters, in the paper's §3 vocabulary.  [forks],
    [commits], [violations], [faults], [kills] and [serial_reexecs]
    count {e chunks}; [iters] counts retired iterations. *)
type loop_stats = {
  mutable chunk : int;  (** iterations per speculative fork *)
  mutable depth : int;  (** effective speculation depth used *)
  mutable forks : int;  (** speculative chunks started *)
  mutable commits : int;  (** chunks validated and committed *)
  mutable violations : int;  (** validation failures *)
  mutable faults : int;  (** speculative runtime faults *)
  mutable kills : int;  (** chunks discarded on control divergence *)
  mutable despecs : int;  (** de-speculation valve trips *)
  mutable serial_reexecs : int;  (** serial recoveries *)
  mutable iters : int;  (** loop iterations retired *)
  mutable wall : float;  (** seconds spent inside the loop *)
  mutable stale_mem : int;  (** validation failures on a memory read *)
  mutable stale_reg : int;  (** … on a register read *)
  mutable stale_rng : int;  (** … on the RNG state *)
  stale_regions : (int, int) Hashtbl.t;
      (** memory validation failures per region sid — the observed
          counterpart of the compiler's per-candidate violation
          probabilities, exported to the feedback loop *)
  svp_vars : (int, svp_stats) Hashtbl.t;
      (** value-prediction outcomes per register vid — the fleet
          database learns predictability from these *)
}

type result = {
  output : string;
  return_value : Interp.value option;
  heap_digest : string;  (** of final memory + RNG state *)
  dynamic_instrs : int;  (** committed work only (retries excluded) *)
  wall_time : float;
  stats : (int * loop_stats) list;  (** per loop id *)
  oracle : [ `Match | `Mismatch of string | `Skipped ];
}

(** Per-region validation-failure counts, {e sorted by region sid}.
    The table fills in worker-scheduling order; every consumer (JSON
    emit, telemetry export, oracle comparisons) must go through this
    accessor so reports are byte-stable across domain interleavings. *)
val sorted_regions : loop_stats -> (int * int) list

(** Per-variable SVP counters, {e sorted by vid} — same byte-stability
    contract as {!sorted_regions}. *)
val sorted_svp : loop_stats -> (int * svp_stats) list

(** (predicts, hits, mispredicts) summed over all predicted vids. *)
val svp_totals : loop_stats -> int * int * int

(** Digest of a store's final memory image and RNG state — the same
    rendering {!result.heap_digest} uses, so an external sequential
    reference (e.g. the differential fuzz oracle) can compare memory
    images with the runtime's. *)
val heap_digest : Spt_interp.Interp.store -> string

val stats_json : result -> Spt_obs.Json.t

(** Execute [main].  Loops whose function still contains phis are
    silently despeculated (the runtime targets post-SSA-destruction
    code).  The worker pool lives for the duration of the call.
    @raise Interp.Runtime_error as the sequential interpreter does
    (speculative faults do not escape — they trigger re-execution). *)
val run :
  ?config:config -> ?loops:loop_spec list -> Spt_ir.Ir.program -> result
