(** The speculative scheduler: executes an SPT-transformed program on
    OCaml 5 domains with genuine fork / validate / commit / kill.

    One iteration of an SPT loop splits at its [SPT_FORK] into a
    pre-fork task P (the violation candidates the partitioner moved
    up) and a post-fork task S (the rest of the body).  The sequential
    thread commits in order P₀ S₀ P₁ S₁ …; P₀ runs non-speculatively,
    each Sₖ is forked onto the worker pool, and the sequential thread
    immediately runs Pₖ₊₁ speculatively — the assumption, exactly the
    paper's §3 execution model, being that pre-fork work of the next
    iteration is independent of the previous iteration's post-fork
    work.  Every task runs against a {!Specmem.view}; at its turn it
    is validated and committed, or — on a read violation or a
    speculative fault — killed and re-executed serially on master
    state.  A loop that misspeculates [despec_after] times in a row is
    de-speculated for the rest of the run. *)

module Interp = Spt_interp.Interp

(** A transformed loop, as registered by the driver: the id carried by
    its [SPT_FORK]/[SPT_KILL] markers, its function and its header
    block in the final (post-SSA-destruction) CFG. *)
type loop_spec = { ls_id : int; ls_fname : string; ls_header : int }

type config = {
  jobs : int;  (** worker domains (≥ 1) *)
  window : int;  (** max speculative tasks in flight *)
  despec_after : int;  (** consecutive misspeculations before the valve *)
  spec_fuel : int;  (** step budget of one speculative task *)
  max_steps : int;  (** overall sequential step budget *)
  oracle : bool;  (** check against a sequential reference run *)
  timeline : Spt_obs.Timeline.t option;
      (** when set, every fork/exec/validate/commit/rollback/reexec/kill
          is recorded per domain; drain it only after {!run} returns
          (the pool has then joined its workers) *)
}

(** [jobs] honours [SPT_JOBS]; window is [2 * jobs]. *)
val default_config : unit -> config

(** Mutable per-loop counters, in the paper's §3 vocabulary. *)
type loop_stats = {
  mutable forks : int;  (** speculative tasks started (P and S) *)
  mutable commits : int;  (** tasks validated and committed *)
  mutable violations : int;  (** validation failures *)
  mutable faults : int;  (** speculative runtime faults *)
  mutable kills : int;  (** tasks discarded on control divergence *)
  mutable despecs : int;  (** de-speculation valve trips *)
  mutable serial_reexecs : int;  (** serial recoveries *)
  mutable iters : int;  (** loop iterations retired *)
  mutable wall : float;  (** seconds spent inside the loop *)
  mutable stale_mem : int;  (** validation failures on a memory read *)
  mutable stale_reg : int;  (** … on a register read *)
  mutable stale_rng : int;  (** … on the RNG state *)
  stale_regions : (int, int) Hashtbl.t;
      (** memory validation failures per region sid — the observed
          counterpart of the compiler's per-candidate violation
          probabilities, exported to the feedback loop *)
}

type result = {
  output : string;
  return_value : Interp.value option;
  heap_digest : string;  (** of final memory + RNG state *)
  dynamic_instrs : int;  (** committed work only (retries excluded) *)
  wall_time : float;
  stats : (int * loop_stats) list;  (** per loop id *)
  oracle : [ `Match | `Mismatch of string | `Skipped ];
}

(** Per-region validation-failure counts, {e sorted by region sid}.
    The table fills in worker-scheduling order; every consumer (JSON
    emit, telemetry export, oracle comparisons) must go through this
    accessor so reports are byte-stable across domain interleavings. *)
val sorted_regions : loop_stats -> (int * int) list

(** Digest of a store's final memory image and RNG state — the same
    rendering {!result.heap_digest} uses, so an external sequential
    reference (e.g. the differential fuzz oracle) can compare memory
    images with the runtime's. *)
val heap_digest : Spt_interp.Interp.store -> string

val stats_json : result -> Spt_obs.Json.t

(** Execute [main].  Loops whose function still contains phis are
    silently despeculated (the runtime targets post-SSA-destruction
    code).  The worker pool lives for the duration of the call.
    @raise Interp.Runtime_error as the sequential interpreter does
    (speculative faults do not escape — they trigger re-execution). *)
val run :
  ?config:config -> ?loops:loop_spec list -> Spt_ir.Ir.program -> result
