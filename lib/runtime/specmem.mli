(** Speculative store buffer: versioned views of the master state.

    Each speculative task executes against a {!view}: writes are
    buffered per-task, reads are logged the first time an address (or
    register, or the RNG) is observed, and resolution goes

    {v own writes → own read log → uncommitted ancestor views → master v}

    The ancestor chain holds only {e pre-fork} views of earlier
    iterations — never post-fork views; their independence is exactly
    the paper's speculation assumption, checked at commit time.

    [validate] replays the read log against the master state.  Because
    views are validated and committed strictly in sequential order, a
    view that validates observed precisely the values sequential
    execution would have produced, so committing its write buffer
    (and buffered output) preserves sequential semantics regardless of
    any races during the speculative run.  OCaml 5's memory model makes
    the racy master reads memory-safe; any stale value they return is
    caught here.  Validation is by value (bit-level for floats), which
    subsumes address-based conflict detection. *)

module Interp = Spt_interp.Interp

(** The authoritative sequential state a loop speculates against: the
    flat memory and output buffer of the engaged {!Interp.store} and
    the register file of the engaged frame. *)
type master = {
  m_mem : Interp.value array;
  m_regs : Interp.value option array;
  m_rng_get : unit -> int64;
  m_rng_set : int64 -> unit;
  m_out : Buffer.t;
}

type view

(** [create ?parent master] opens a fresh view.  [parent] is the most
    recent pre-fork view of the chain (its own parents included);
    committed ancestors are skipped during reads since their effects
    already reached master. *)
val create : ?parent:view -> master -> view

(** Backends routing a task's execution through the view. *)
val memio : view -> Interp.memio

val regio : view -> Interp.regio

(** [reg_predict v vid x] buffers a value-predicted register write into
    a predictor (backbone) view, keyed by raw [vid].  The chunk reading
    through [v] observes [x] for that register instead of walking on to
    master; the prediction is checked for free by the reader's
    {!validate} (its read log records [x], replayed against master at
    the reader's sequential turn).  Dropped on a rolled-back view, like
    every post-kill write. *)
val reg_predict : view -> int -> Interp.value -> unit

(** The first stale observation found by {!validate}, in a form the
    runtime can attribute: a memory violation carries the element
    address (mappable back to its region), a register violation the
    vid. *)
type stale =
  | Stale_mem of int  (** element address whose read proved stale *)
  | Stale_reg of int  (** register vid *)
  | Stale_rng

val string_of_stale : stale -> string

(** Replay the read log against master.  [Error] describes the first
    stale observation. *)
val validate : view -> (unit, stale) result

(** Apply the write buffer and buffered output to master and mark the
    view committed (release-ordered: readers that see the flag see the
    master writes).  Must only be called after [validate], from the
    sequential thread, in order.
    @raise Invalid_argument on a rolled-back view. *)
val commit : view -> unit

val is_committed : view -> bool

(** Kill the view: its buffered writes, output and RNG advance are
    discarded (they never reach master, and descendants skip them
    during chained reads), and any write arriving {e after} the
    rollback — an abandoned worker still finishing into the dead view —
    is dropped.  Idempotent: rolling back twice is the first rollback.
    Only flips a flag, so it is safe to call while the task's domain is
    still executing.
    @raise Invalid_argument on a committed view. *)
val rollback : view -> unit

val is_rolled_back : view -> bool

(** Mark the view committed {e without} merging its buffers.  For
    predictor (backbone) views whose writes are re-executed by the
    chunk that reads through them: call it from the sequential thread
    once that chunk has resolved — master then already holds every
    value the view could supply, so descendants may skip it during
    chained reads (release-ordered, like {!commit}).
    @raise Invalid_argument on a rolled-back view. *)
val seal : view -> unit

(** (reads, writes) logged so far — memory + registers + RNG. *)
val footprint : view -> int * int

(** Bit-level value equality (NaN-safe, [-0.] ≠ [0.]). *)
val value_eq : Interp.value -> Interp.value -> bool
