(** Per-domain speculation timelines — see timeline.mli. *)

type kind =
  | Fork
  | Exec
  | Validate
  | Commit
  | Rollback
  | Reexec
  | Kill
  | Chunk
  | Compile
  | Svp

let n_kinds = 10

let kind_index = function
  | Fork -> 0
  | Exec -> 1
  | Validate -> 2
  | Commit -> 3
  | Rollback -> 4
  | Reexec -> 5
  | Kill -> 6
  | Chunk -> 7
  | Compile -> 8
  | Svp -> 9

let kind_of_index =
  [|
    Fork; Exec; Validate; Commit; Rollback; Reexec; Kill; Chunk; Compile; Svp;
  |]

let kind_name = function
  | Fork -> "fork"
  | Exec -> "exec"
  | Validate -> "validate"
  | Commit -> "commit"
  | Rollback -> "rollback"
  | Reexec -> "reexec"
  | Kill -> "kill"
  | Chunk -> "chunk"
  | Compile -> "compile"
  | Svp -> "svp"

(* One ring per recording domain, owned exclusively by that domain:
   the hot path touches no lock and no shared structure.  Per-kind
   duration sums are exact regardless of capacity; the event detail
   (for the trace export and latency quantiles) drops past capacity
   with an honest [dropped] count. *)
type ring = {
  lane : int;
  sums : float array; (* seconds, per kind *)
  counts : int array;
  ev_kind : int array;
  ev_lid : int array;
  ev_t0 : float array;
  ev_t1 : float array;
  mutable n : int;
  mutable dropped : int;
  capacity : int;
}

type t = {
  mu : Mutex.t;
  mutable rings : ring list; (* newest-registered first *)
  capacity : int;
  slot : ring option ref Domain.DLS.key;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  {
    mu = Mutex.create ();
    rings = [];
    capacity = max 16 capacity;
    slot = Domain.DLS.new_key (fun () -> ref None);
  }

let now () = Unix.gettimeofday ()

let make_ring ~capacity lane =
  {
    lane;
    sums = Array.make n_kinds 0.0;
    counts = Array.make n_kinds 0;
    ev_kind = Array.make capacity 0;
    ev_lid = Array.make capacity 0;
    ev_t0 = Array.make capacity 0.0;
    ev_t1 = Array.make capacity 0.0;
    n = 0;
    dropped = 0;
    capacity;
  }

(* fast path: one DLS load and a ref dereference *)
let ring_for t =
  let slot = Domain.DLS.get t.slot in
  match !slot with
  | Some r -> r
  | None ->
    Mutex.lock t.mu;
    let r = make_ring ~capacity:t.capacity (List.length t.rings) in
    t.rings <- r :: t.rings;
    Mutex.unlock t.mu;
    slot := Some r;
    r

let touch t = ignore (ring_for t)

let record t kind ~lid ~t0 ~t1 =
  let r = ring_for t in
  let k = kind_index kind in
  r.sums.(k) <- r.sums.(k) +. (t1 -. t0);
  r.counts.(k) <- r.counts.(k) + 1;
  if r.n < r.capacity then begin
    r.ev_kind.(r.n) <- k;
    r.ev_lid.(r.n) <- lid;
    r.ev_t0.(r.n) <- t0;
    r.ev_t1.(r.n) <- t1;
    r.n <- r.n + 1
  end
  else r.dropped <- r.dropped + 1

(* ------------------------------------------------------------------ *)
(* Draining — only meaningful once recording domains have joined *)

let sorted_rings t =
  Mutex.lock t.mu;
  let rings = t.rings in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.lane b.lane) rings

type lane_summary = {
  ls_lane : int;
  ls_busy_s : float;
  ls_by_kind : (kind * float * int) list; (* (kind, seconds, events) *)
  ls_events : int;
  ls_dropped : int;
}

let summary t =
  List.map
    (fun r ->
      {
        ls_lane = r.lane;
        ls_busy_s = Array.fold_left ( +. ) 0.0 r.sums;
        ls_by_kind =
          List.init n_kinds (fun k ->
              (kind_of_index.(k), r.sums.(k), r.counts.(k)));
        ls_events = Array.fold_left ( + ) 0 r.counts;
        ls_dropped = r.dropped;
      })
    (sorted_rings t)

let events t =
  List.fold_left
    (fun acc r -> acc + Array.fold_left ( + ) 0 r.counts)
    0 (sorted_rings t)

let dropped t =
  List.fold_left (fun acc r -> acc + r.dropped) 0 (sorted_rings t)

let iter_events t f =
  List.iter
    (fun r ->
      for i = 0 to r.n - 1 do
        f kind_of_index.(r.ev_kind.(i)) ~lane:r.lane ~lid:r.ev_lid.(i)
          ~t0:r.ev_t0.(i) ~t1:r.ev_t1.(i)
      done)
    (sorted_rings t)

(* ------------------------------------------------------------------ *)
(* Self-calibrated overhead: time the full per-event cost (the two
   clock reads the instrumentation site pays plus the record itself)
   against a scratch timeline, once per process.  [overhead_s] is then
   an honest per-run estimate: per-event cost x events recorded. *)

let per_event_cost =
  lazy
    (let scratch = create ~capacity:1024 () in
     let n = 20_000 in
     let t0 = Unix.gettimeofday () in
     for _ = 1 to n do
       let a = Unix.gettimeofday () in
       let b = Unix.gettimeofday () in
       record scratch Exec ~lid:0 ~t0:a ~t1:b
     done;
     (Unix.gettimeofday () -. t0) /. float_of_int n)

(* [events] already includes drops — every record call pays the cost
   whether or not its detail was kept *)
let overhead_s t = Lazy.force per_event_cost *. float_of_int (events t)

(* ------------------------------------------------------------------ *)
(* Chrome trace_events export: one thread row per lane (tid 2 + lane —
   the pipeline's own spans sit on tid 1), timestamps rebased to the
   caller's epoch in microseconds.  Instants (zero-duration kills)
   export as "i" events, everything else as complete "X" spans. *)

let trace_event ~epoch ~lane ~kind ~lid ~t0 ~t1 =
  let ts = (t0 -. epoch) *. 1e6 in
  let dur = (t1 -. t0) *. 1e6 in
  let base =
    [
      ("name", Json.Str (kind_name kind));
      ("cat", Json.Str "runtime");
      ("ts", Json.Float ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int (2 + lane));
      ("args", Json.Obj [ ("loop", Json.Int lid) ]);
    ]
  in
  if dur <= 0.0 then
    Json.Obj (base @ [ ("ph", Json.Str "i"); ("s", Json.Str "t") ])
  else Json.Obj (base @ [ ("ph", Json.Str "X"); ("dur", Json.Float dur) ])

let to_trace_events ~epoch t =
  let acc = ref [] in
  iter_events t (fun kind ~lane ~lid ~t0 ~t1 ->
      acc := trace_event ~epoch ~lane ~kind ~lid ~t0 ~t1 :: !acc);
  List.stable_sort
    (fun a b ->
      let ts = function
        | Json.Obj fields -> (
          match List.assoc_opt "ts" fields with
          | Some (Json.Float t) -> t
          | _ -> 0.0)
        | _ -> 0.0
      in
      compare (ts a) (ts b))
    !acc
