(** Phase spans with a Chrome [trace_events] exporter.

    [span "pass1.analyze" f] times [f ()] on the wall clock and, when
    tracing is enabled, records one complete event (["ph":"X"]) with
    microsecond [ts]/[dur] fields.  Spans nest by dynamic extent —
    opening [sptc compile --trace t.json]'s output in a trace viewer
    (chrome://tracing, Perfetto, speedscope) shows the pipeline stages
    stacked under the whole compilation.

    When disabled (the default), [span] runs its thunk through one
    branch of overhead and records nothing. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [span ?cat name f] runs [f ()], recording a complete event over its
    extent.  The event is recorded even when [f] raises. *)
val span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** A zero-duration instant event (["ph":"i"]), for marking moments. *)
val instant : ?cat:string -> string -> unit

(** The absolute time (seconds) event timestamps are relative to,
    establishing it now if no event has been recorded yet.  External
    emitters ({!Timeline.to_trace_events}) rebase against this. *)
val epoch_s : unit -> float

(** Merge pre-rendered trace events (already carrying [ts]/[tid]
    fields relative to {!epoch_s}) into the stream.  No-op when
    tracing is disabled. *)
val append_events : Json.t list -> unit

(** Recorded events in chronological start order (oldest first). *)
val events : unit -> Json.t list

(** The full [{"traceEvents": [...], "displayTimeUnit": "ms"}] object
    Chrome-compatible viewers load. *)
val to_json : unit -> Json.t

(** Forget all recorded events. *)
val reset : unit -> unit

(** [to_file path] writes {!to_json} to [path]. *)
val to_file : string -> unit
