(** Global registry of named counters, gauges and histograms.

    Instrumented code creates a handle once, at module initialization
    ([let m_nodes = Metrics.counter "partition.nodes_explored"]), and
    updates it on the hot path.  When the registry is disabled (the
    default) an update is one load and one branch — no allocation, no
    hashing — so permanently instrumenting the branch-and-bound search
    or the interpreter costs nothing in production runs.

    Handles are interned by name: two [counter "x"] calls share state.
    Registration happens at handle creation regardless of the enabled
    flag, so a metrics dump always lists the full catalogue (untouched
    metrics report zero). *)

type counter
type gauge

(** Standalone fixed-bucket histograms with quantile estimation.

    96 log-spaced buckets (8 per decade, 1e-9 .. 1e3) cover every
    latency the system produces.  Unlike registry handles, a [Hist.t]
    is {e always on}: the service layer keeps one per server/batch so
    p50/p95/p99 request latency works even with the global registry
    disabled.  Not thread-safe — observe from one thread (the runtime
    and service layers funnel worker timings back to the coordinating
    thread). *)
module Hist : sig
  type t

  val create : unit -> t
  val reset : t -> unit
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** 0 when empty. *)
  val min_value : t -> float

  val max_value : t -> float
  val mean : t -> float

  (** [percentile h q] for [q] in [0,1]: cumulative-count walk with
      geometric interpolation inside the landing bucket, clamped to the
      observed min/max.  0 when empty. *)
  val percentile : t -> float -> float

  (** [merge ~into src] adds [src]'s observations into [into] —
      buckets, count, sum and min/max all combine exactly, so
      percentiles over the merge equal percentiles over the union of
      observations.  [src] is unchanged.  How concurrent recorders
      (the load-test clients, one private histogram each) report one
      latency distribution without sharing a histogram across
      domains. *)
  val merge : into:t -> t -> unit

  (** [{"count","sum","min","max","mean","p50","p95","p99"}]. *)
  val to_json : t -> Json.t
end

(** Registry histograms are {!Hist.t}s whose [observe] is gated on the
    enabled flag. *)
type histogram = Hist.t

(** Disabled by default; [sptc --metrics] and the test suite turn it
    on. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

val counter : string -> counter
val inc : counter -> unit
val add : counter -> int -> unit

val gauge : string -> gauge
val set : gauge -> float -> unit

val histogram : string -> histogram
val observe : histogram -> float -> unit

(** A metric's current value.  Histograms expose count/sum/min/max
    (and therefore the mean); [hmin]/[hmax] are meaningless when
    [hcount = 0]. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of { hcount : int; hsum : float; hmin : float; hmax : float }

(** All registered metrics, sorted by name. *)
val snapshot : unit -> (string * value) list

val get : string -> value option

(** Zero every value; registrations survive. *)
val reset : unit -> unit

(** Object mapping each metric name to its value; histograms become
    [{"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,
    "p95":..,"p99":..}]. *)
val to_json : unit -> Json.t

(** [since ()] captures the registry for a later {!delta_json} —
    the snapshot/delta pair that isolates one batch job's metrics from
    the cumulative process-wide registry. *)
val since : unit -> (string * value) list

(** Current registry minus a {!since} snapshot: counters and histogram
    count/sum subtract, gauges report their current level, and
    histogram deltas carry only count/sum/mean (min/max and quantiles
    are not recoverable for a window).  Exact when the window saw no
    concurrent instrumented work (e.g. [sptc batch -j 1]); with
    concurrent jobs a window also counts their overlapping updates. *)
val delta_json : (string * value) list -> Json.t
