(** Global registry of named counters, gauges and histograms.

    Instrumented code creates a handle once, at module initialization
    ([let m_nodes = Metrics.counter "partition.nodes_explored"]), and
    updates it on the hot path.  When the registry is disabled (the
    default) an update is one load and one branch — no allocation, no
    hashing — so permanently instrumenting the branch-and-bound search
    or the interpreter costs nothing in production runs.

    Handles are interned by name: two [counter "x"] calls share state.
    Registration happens at handle creation regardless of the enabled
    flag, so a metrics dump always lists the full catalogue (untouched
    metrics report zero). *)

type counter
type gauge
type histogram

(** Disabled by default; [sptc --metrics] and the test suite turn it
    on. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

val counter : string -> counter
val inc : counter -> unit
val add : counter -> int -> unit

val gauge : string -> gauge
val set : gauge -> float -> unit

val histogram : string -> histogram
val observe : histogram -> float -> unit

(** A metric's current value.  Histograms expose count/sum/min/max
    (and therefore the mean); [hmin]/[hmax] are meaningless when
    [hcount = 0]. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of { hcount : int; hsum : float; hmin : float; hmax : float }

(** All registered metrics, sorted by name. *)
val snapshot : unit -> (string * value) list

val get : string -> value option

(** Zero every value; registrations survive. *)
val reset : unit -> unit

(** Object mapping each metric name to its value; histograms become
    [{"count":..,"sum":..,"min":..,"max":..,"mean":..}]. *)
val to_json : unit -> Json.t
