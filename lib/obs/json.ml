(** Minimal JSON tree, writer and reader — see json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_string ?(minify = false) (j : t) =
  let buf = Buffer.create 1024 in
  let indent depth =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          go (depth + 1) item)
        items;
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          escape_string buf key;
          Buffer.add_string buf (if minify then ":" else ": ");
          go (depth + 1) v)
        fields;
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let prepend field = function
  | Obj fields -> Obj (field :: fields)
  | other -> other

let set ((key, _) as field) = function
  | Obj fields ->
    if List.mem_assoc key fields then
      Obj (List.map (fun (k, v) -> if String.equal k key then field else (k, v)) fields)
    else Obj (fields @ [ field ])
  | other -> other

(* ------------------------------------------------------------------ *)
(* Reading: recursive descent *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s !pos 4)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* encode the code point as UTF-8 (surrogates left as-is) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)
