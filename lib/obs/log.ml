type level = Error | Warn | Info | Debug

let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let string_of_level = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" | "err" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S" other)

let initial_level () =
  match Sys.getenv_opt "SPT_LOG" with
  | Some s -> ( match level_of_string s with Ok l -> l | Error _ -> Warn)
  | None -> (
    (* the historical debug switch stays an alias for SPT_LOG=debug *)
    match Sys.getenv_opt "SPT_DEBUG" with
    | Some ("" | "0") | None -> Warn
    | Some _ -> Debug)

let current = ref (initial_level ())
let set_level l = current := l
let level () = !current
let enabled l = rank l <= rank !current

let logf l fmt =
  if enabled l then
    Printf.kfprintf
      (fun oc ->
        output_char oc '\n';
        flush oc)
      stderr
      ("[spt:%s] " ^^ fmt)
      (string_of_level l)
  else Printf.ifprintf stderr fmt

let err fmt = logf Error fmt
let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
