type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  mutable hn : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let on = ref false
let set_enabled b = on := b
let enabled () = !on

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace registry name (C c);
    c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
  | None ->
    let g = { g = 0.0 } in
    Hashtbl.replace registry name (G g);
    g

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None ->
    let h = { hn = 0; hsum = 0.0; hmin = infinity; hmax = neg_infinity } in
    Hashtbl.replace registry name (H h);
    h

let inc c = if !on then c.c <- c.c + 1
let add c n = if !on then c.c <- c.c + n
let set g x = if !on then g.g <- x

let observe h x =
  if !on then begin
    h.hn <- h.hn + 1;
    h.hsum <- h.hsum +. x;
    if x < h.hmin then h.hmin <- x;
    if x > h.hmax then h.hmax <- x
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { hcount : int; hsum : float; hmin : float; hmax : float }

let value_of = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h -> Histogram { hcount = h.hn; hsum = h.hsum; hmin = h.hmin; hmax = h.hmax }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let get name = Option.map value_of (Hashtbl.find_opt registry name)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
        h.hn <- 0;
        h.hsum <- 0.0;
        h.hmin <- infinity;
        h.hmax <- neg_infinity)
    registry

let to_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter c -> Json.Int c
           | Gauge g -> Json.Float g
           | Histogram { hcount; hsum; hmin; hmax } ->
             Json.Obj
               [
                 ("count", Json.Int hcount);
                 ("sum", Json.Float hsum);
                 ("min", Json.Float (if hcount = 0 then 0.0 else hmin));
                 ("max", Json.Float (if hcount = 0 then 0.0 else hmax));
                 ( "mean",
                   Json.Float
                     (if hcount = 0 then 0.0 else hsum /. float_of_int hcount) );
               ] ))
       (snapshot ()))
