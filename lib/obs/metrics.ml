type counter = { mutable c : int }
type gauge = { mutable g : float }

(* ------------------------------------------------------------------ *)
(* Fixed-bucket latency histograms with quantile estimation.

   96 log-spaced buckets, 8 per decade, covering 1e-9 .. 1e3 seconds —
   every latency this system can produce, from a nanosecond-scale
   dispatch sample to a CI-length batch.  A bucket index is one log10
   and one floor; quantiles walk the cumulative counts and interpolate
   geometrically inside the landing bucket, clamped to the observed
   min/max so a single observation reports itself exactly. *)

module Hist = struct
  let n_buckets = 96
  let per_decade = 8
  let min_exp = -9.0 (* bucket 0 starts at 1e-9 *)

  type t = {
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
    buckets : int array;
  }

  let create () =
    {
      n = 0;
      sum = 0.0;
      mn = infinity;
      mx = neg_infinity;
      buckets = Array.make n_buckets 0;
    }

  let reset h =
    h.n <- 0;
    h.sum <- 0.0;
    h.mn <- infinity;
    h.mx <- neg_infinity;
    Array.fill h.buckets 0 n_buckets 0

  let bucket_of x =
    if x <= 0.0 then 0
    else begin
      let i =
        int_of_float
          (Float.floor ((Float.log10 x -. min_exp) *. float_of_int per_decade))
      in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  (* lower bound of bucket [i]; the upper bound is [bound (i + 1)] *)
  let bound i = 10.0 ** (min_exp +. (float_of_int i /. float_of_int per_decade))

  let observe h x =
    h.n <- h.n + 1;
    h.sum <- h.sum +. x;
    if x < h.mn then h.mn <- x;
    if x > h.mx then h.mx <- x;
    let i = bucket_of x in
    h.buckets.(i) <- h.buckets.(i) + 1

  let count h = h.n
  let sum h = h.sum
  let min_value h = if h.n = 0 then 0.0 else h.mn
  let max_value h = if h.n = 0 then 0.0 else h.mx
  let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

  let percentile h q =
    if h.n = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int h.n in
      let rec walk i cum =
        if i >= n_buckets then h.mx
        else begin
          let c = h.buckets.(i) in
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= target then begin
            (* geometric interpolation inside the log-spaced bucket *)
            let f = (target -. cum) /. float_of_int c in
            let lo = bound i and hi = bound (i + 1) in
            lo *. ((hi /. lo) ** f)
          end
          else walk (i + 1) cum'
        end
      in
      let v = walk 0 0.0 in
      Float.max h.mn (Float.min h.mx v)
    end

  let merge ~into src =
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.n > 0 then begin
      if src.mn < into.mn then into.mn <- src.mn;
      if src.mx > into.mx then into.mx <- src.mx
    end;
    Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets

  let to_json h =
    Json.Obj
      [
        ("count", Json.Int h.n);
        ("sum", Json.Float h.sum);
        ("min", Json.Float (min_value h));
        ("max", Json.Float (max_value h));
        ("mean", Json.Float (mean h));
        ("p50", Json.Float (percentile h 0.50));
        ("p95", Json.Float (percentile h 0.95));
        ("p99", Json.Float (percentile h 0.99));
      ]
end

type histogram = Hist.t
type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let on = ref false
let set_enabled b = on := b
let enabled () = !on

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace registry name (C c);
    c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
  | None ->
    let g = { g = 0.0 } in
    Hashtbl.replace registry name (G g);
    g

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None ->
    let h = Hist.create () in
    Hashtbl.replace registry name (H h);
    h

let inc c = if !on then c.c <- c.c + 1
let add c n = if !on then c.c <- c.c + n
let set g x = if !on then g.g <- x
let observe h x = if !on then Hist.observe h x

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { hcount : int; hsum : float; hmin : float; hmax : float }

let value_of = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h ->
    Histogram { hcount = h.Hist.n; hsum = h.Hist.sum; hmin = h.Hist.mn; hmax = h.Hist.mx }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let get name = Option.map value_of (Hashtbl.find_opt registry name)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h -> Hist.reset h)
    registry

let to_json () =
  Json.Obj
    (Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (name, m) ->
           ( name,
             match m with
             | C c -> Json.Int c.c
             | G g -> Json.Float g.g
             | H h -> Hist.to_json h )))

(* ------------------------------------------------------------------ *)
(* Snapshot/delta: per-job metric isolation.

   Counters and histogram count/sum subtract; gauges report their
   current level (a delta of a level is meaningless); histogram
   min/max/percentiles are not recoverable for a window, so a delta
   renders only what subtraction preserves. *)

let since = snapshot

let delta_json base =
  let base_of name = List.assoc_opt name base in
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match (v, base_of name) with
           | Counter c, Some (Counter c0) -> Json.Int (c - c0)
           | Counter c, _ -> Json.Int c
           | Gauge g, _ -> Json.Float g
           | Histogram { hcount; hsum; _ }, Some (Histogram b) ->
             let dc = hcount - b.hcount and ds = hsum -. b.hsum in
             Json.Obj
               [
                 ("count", Json.Int dc);
                 ("sum", Json.Float ds);
                 ( "mean",
                   Json.Float (if dc = 0 then 0.0 else ds /. float_of_int dc)
                 );
               ]
           | Histogram { hcount; hsum; _ }, _ ->
             Json.Obj
               [
                 ("count", Json.Int hcount);
                 ("sum", Json.Float hsum);
                 ( "mean",
                   Json.Float
                     (if hcount = 0 then 0.0
                      else hsum /. float_of_int hcount) );
               ] ))
       (snapshot ()))
