(** Leveled logging for the SPT pipeline.

    One global level gates four [Printf]-style entry points writing to
    [stderr].  The initial level comes from the environment at program
    start: [SPT_LOG=error|warn|info|debug], with the historical
    [SPT_DEBUG=1] kept working as an alias for [SPT_LOG=debug]; the
    [sptc --log-level] flag overrides both via {!set_level}.

    A disabled call costs one load and one branch before any formatting
    happens ([Printf.ifprintf] never renders its arguments). *)

type level = Error | Warn | Info | Debug

(** Default level when the environment says nothing: [Warn]. *)
val set_level : level -> unit

val level : unit -> level
val enabled : level -> bool

val string_of_level : level -> string

(** Accepts the four level names, case-insensitive. *)
val level_of_string : string -> (level, string) result

val err : ('a, out_channel, unit) format -> 'a
val warn : ('a, out_channel, unit) format -> 'a
val info : ('a, out_channel, unit) format -> 'a
val debug : ('a, out_channel, unit) format -> 'a
