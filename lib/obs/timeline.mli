(** Per-domain speculation timelines.

    A [Timeline.t] records the lifecycle events of speculative
    execution — fork, task execution, validate, commit, rollback,
    serial re-execution, kill — with one preallocated ring per
    recording domain, acquired through domain-local storage.  The hot
    path is one DLS load, four array stores and two float adds: no
    lock, no allocation, no shared mutable state, so worker domains
    record freely while the sequential thread commits.

    Per-kind duration sums stay exact for the whole run; the per-event
    detail (what the Chrome trace export and the latency quantiles
    read) is capped at [capacity] events per lane with an explicit
    {!dropped} count, so a pathological run degrades the trace, never
    the attribution.

    Drain ({!summary}, {!to_trace_events}, {!iter_events}) only after
    the recording domains have joined — the runtime does so after its
    pool shutdown. *)

type kind =
  | Fork  (** view creation + task submission *)
  | Exec  (** a speculative task executing on its view *)
  | Validate  (** read-log validation at the task's turn *)
  | Commit  (** merging a validated view into master state *)
  | Rollback  (** discarding a failed view *)
  | Reexec  (** serial recovery on master state *)
  | Kill  (** control divergence discarding downstream tasks *)
  | Chunk
      (** the sequential thread predicting the pre-fork backbone of the
          next iteration chunk *)
  | Compile  (** compiling the program to bytecode ({!Spt_exec}) *)
  | Svp
      (** injecting software value predictions into the backbone view a
          speculative chunk is about to read through *)

val kind_name : kind -> string

type t

(** [create ()] makes an empty timeline.  [capacity] caps the per-lane
    event detail (default 65536); per-kind sums are unaffected. *)
val create : ?capacity:int -> unit -> t

(** The clock every [t0]/[t1] must come from ([Unix.gettimeofday]). *)
val now : unit -> float

(** Ensure the calling domain has a lane, without recording anything —
    the pool registers idle workers so attribution sees them. *)
val touch : t -> unit

(** [record t kind ~lid ~t0 ~t1] books [t1 - t0] seconds of [kind] for
    loop [lid] on the calling domain's lane.  Use [~t0 ~t1] equal for
    instants (kills). *)
val record : t -> kind -> lid:int -> t0:float -> t1:float -> unit

type lane_summary = {
  ls_lane : int;  (** registration order; 2 + lane is the trace tid *)
  ls_busy_s : float;  (** seconds under any recorded kind *)
  ls_by_kind : (kind * float * int) list;  (** (kind, seconds, events) *)
  ls_events : int;
  ls_dropped : int;
}

(** Per-lane totals, sorted by lane.  Exact even past capacity. *)
val summary : t -> lane_summary list

(** Events recorded (including any past capacity). *)
val events : t -> int

(** Events whose detail was dropped at capacity (sums still counted). *)
val dropped : t -> int

(** Detailed events in lane order (capped at capacity per lane). *)
val iter_events :
  t ->
  (kind -> lane:int -> lid:int -> t0:float -> t1:float -> unit) ->
  unit

(** Estimated seconds this timeline's instrumentation cost the run:
    a once-per-process calibration of the full per-event cost (two
    clock reads + the record) times the events recorded. *)
val overhead_s : t -> float

(** Chrome trace_events (one row per lane at [tid 2 + lane]; the
    pipeline's {!Trace} spans occupy tid 1), timestamps rebased to
    [epoch] (absolute seconds, see {!Trace.epoch_s}) in microseconds,
    sorted by start time.  Feed to {!Trace.append_events}. *)
val to_trace_events : epoch:float -> t -> Json.t list
