let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* timestamps are microseconds since the first event of the process, so
   they stay well within an OCaml int and read as small numbers in the
   viewer *)
let epoch = ref None

let now_us () =
  let t = Unix.gettimeofday () in
  let e =
    match !epoch with
    | Some e -> e
    | None ->
      epoch := Some t;
      t
  in
  (t -. e) *. 1e6

(* events are stored newest-first and reversed on export *)
let recorded : Json.t list ref = ref []
let depth = ref 0

let event ?(cat = "spt") ~ph ~name ~ts fields =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Float ts);
       ("pid", Json.Int 1);
       ("tid", Json.Int 1);
     ]
    @ fields)

let span ?cat name f =
  if not !on then f ()
  else begin
    let ts = now_us () in
    let d = !depth in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let dur = now_us () -. ts in
        recorded :=
          event ?cat ~ph:"X" ~name ~ts
            [
              ("dur", Json.Float dur);
              ("args", Json.Obj [ ("depth", Json.Int d) ]);
            ]
          :: !recorded)
      f
  end

let epoch_s () =
  match !epoch with
  | Some e -> e
  | None ->
    let t = Unix.gettimeofday () in
    epoch := Some t;
    t

(* pre-rendered events (e.g. a Timeline's lanes) merge into the same
   stream; [events] re-sorts by ts, so arrival order is irrelevant *)
let append_events evs =
  if !on then recorded := List.rev_append evs !recorded

let instant ?cat name =
  if !on then
    recorded :=
      event ?cat ~ph:"i" ~name ~ts:(now_us ())
        [ ("s", Json.Str "t") ]
      :: !recorded

let ts_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "ts" fields with Some (Json.Float t) -> t | _ -> 0.0)
  | _ -> 0.0

(* ties (spans opened within the same microsecond) break by nesting
   depth so a parent still precedes its children *)
let depth_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "args" fields with
    | Some (Json.Obj args) -> (
      match List.assoc_opt "depth" args with Some (Json.Int d) -> d | _ -> 0)
    | _ -> 0)
  | _ -> 0

let events () =
  List.stable_sort
    (fun a b ->
      match compare (ts_of a) (ts_of b) with
      | 0 -> compare (depth_of a) (depth_of b)
      | c -> c)
    (List.rev !recorded)

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (events ()));
      ("displayTimeUnit", Json.Str "ms");
    ]

let reset () =
  recorded := [];
  depth := 0

let to_file path = Json.to_file path (to_json ())
