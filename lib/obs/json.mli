(** A minimal JSON tree, writer and reader.

    The observability layer emits machine-readable artifacts — Chrome
    [trace_events] files, metrics dumps, bench summaries — and the test
    suite parses them back to assert well-formedness, so both
    directions live here rather than behind an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render to a string.  [minify:false] (the default) indents nested
    structures two spaces per level.  Non-finite floats render as
    [null], keeping the output always loadable. *)
val to_string : ?minify:bool -> t -> string

(** Parse a complete JSON document.  [Error msg] carries the byte
    offset of the failure. *)
val of_string : string -> (t, string) result

(** [member key j] is the value bound to [key] when [j] is an object. *)
val member : string -> t -> t option

(** [prepend (key, v) j] adds a leading field when [j] is an object and
    returns [j] unchanged otherwise — the one way every emitter tags a
    shared payload (bench configs, runtime stats, serve replies) with
    its own discriminator field. *)
val prepend : string * t -> t -> t

(** [set (key, v) j] replaces the binding of [key] in place when [j]
    is an object that has one, appends it otherwise, and returns [j]
    unchanged when it is not an object — how a committed report file
    (BENCH_results.json) has one section refreshed without disturbing
    the others' order. *)
val set : string * t -> t -> t

(** Write [to_string j] (plus a trailing newline) to [path]. *)
val to_file : string -> t -> unit
