(** Optimal SPT loop partitioning (§5).

    A partition is defined by the set of violation candidates moved to
    the pre-fork region; the actual pre-fork *statement* set is the
    backward closure of those candidates over all intra-iteration
    dependence edges (true, anti, output, control), which is exactly
    the legality rule "maintain all forward intra-iteration dependence
    edges".

    The search is the paper's branch-and-bound over the VC-dependence
    graph: candidates are added in increasing topological order (so no
    partition is visited twice), a partition whose pre-fork size
    exceeds the threshold is not expanded (heuristic 1 — size is
    monotone in the set), and a subtree whose cost lower bound (cost of
    the partition extended with *every* still-addable candidate — cost
    is antitone in the set) already exceeds the incumbent is pruned
    (heuristic 2). *)

open Spt_ir
open Spt_depgraph
open Spt_cost
module Iset = Set.Make (Int)

(* observability: search-effort counters (no-ops unless metrics are
   enabled; the handles are interned once at module load) *)
let m_searches = Spt_obs.Metrics.counter "partition.searches"
let m_nodes = Spt_obs.Metrics.counter "partition.nodes_explored"
let m_pruned_threshold = Spt_obs.Metrics.counter "partition.pruned_by_threshold"
let m_pruned_bound = Spt_obs.Metrics.counter "partition.pruned_by_bound"
let m_too_many_vcs = Spt_obs.Metrics.counter "partition.too_many_vcs"
let m_budget_hits = Spt_obs.Metrics.counter "partition.budget_hits"
let h_vcs = Spt_obs.Metrics.histogram "partition.vcs_per_loop"

(* ------------------------------------------------------------------ *)
(* Statement closure *)

(** [ancestors g iid] — [iid] plus all its intra-iteration dependence
    ancestors: the statements that must accompany it into the pre-fork
    region. *)
let ancestors (g : Depgraph.t) iid =
  let preds_tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Depgraph.edge) ->
      Hashtbl.replace preds_tbl e.Depgraph.dst
        (e.Depgraph.src
        :: Option.value ~default:[] (Hashtbl.find_opt preds_tbl e.Depgraph.dst)))
    (Depgraph.motion_edges g);
  let seen = ref Iset.empty in
  let rec go n =
    if not (Iset.mem n !seen) then begin
      seen := Iset.add n !seen;
      List.iter go (Option.value ~default:[] (Hashtbl.find_opt preds_tbl n))
    end
  in
  go iid;
  !seen

(** Pre-fork statement set for a set of chosen violation candidates. *)
let closure (_g : Depgraph.t) ~anc vcs =
  Iset.fold (fun vc acc -> Iset.union (anc vc) acc) vcs Iset.empty

(** Static size of a statement set in elementary operations.
    Statements in the loop-header block are excluded: they execute
    before the fork point by position (the header holds the exit test
    and the phis), so they cost no extra sequential time. *)
let size_of (g : Depgraph.t) stmts =
  let header = g.Depgraph.loop.Loops.header in
  Iset.fold
    (fun iid acc ->
      if Depgraph.block_of g iid = header then acc
      else acc + Ir.op_cost (Depgraph.instr g iid).Ir.kind)
    stmts 0

(** Static size of the whole loop body. *)
let body_size (g : Depgraph.t) =
  List.fold_left
    (fun acc iid -> acc + Ir.op_cost (Depgraph.instr g iid).Ir.kind)
    0 g.Depgraph.nodes

(* ------------------------------------------------------------------ *)
(* VC-dependence graph (§5.1) *)

type vc_graph = {
  vcs : int array;  (** in topological order *)
  topo_of : (int, int) Hashtbl.t;  (** iid -> topological index *)
  vc_preds : Iset.t array;  (** per topological index, indices of
                                VC-dep predecessors *)
}

let build_vc_graph_of (_g : Depgraph.t) ~anc vcs =
  (* direct-or-indirect dependence: vc2 depends on vc1 iff vc1 is among
     vc2's intra-iteration ancestors *)
  let dependent_on vc2 vc1 = vc1 <> vc2 && Iset.mem vc1 (anc vc2) in
  let succs vc1 = List.filter (fun vc2 -> dependent_on vc2 vc1) vcs in
  let sorted = Spt_util.Topo_sort.sort ~nodes:vcs ~succs in
  let arr = Array.of_list sorted in
  let topo_of = Hashtbl.create 16 in
  Array.iteri (fun i vc -> Hashtbl.replace topo_of vc i) arr;
  let vc_preds =
    Array.map
      (fun vc ->
        List.fold_left
          (fun acc vc1 ->
            if dependent_on vc vc1 then Iset.add (Hashtbl.find topo_of vc1) acc
            else acc)
          Iset.empty vcs)
      arr
  in
  { vcs = arr; topo_of; vc_preds }

let build_vc_graph (g : Depgraph.t) ~anc =
  build_vc_graph_of g ~anc (Depgraph.violation_candidates g)

(* ------------------------------------------------------------------ *)
(* Search *)

type options = {
  max_vcs : int;  (** skip loops with more candidates (§5.2.1; paper: 30) *)
  prefork_size_limit : int;  (** absolute threshold in operations *)
  node_budget : int;  (** hard cap on explored partitions *)
  use_pruning : bool;  (** disable only for the ablation benchmark *)
  vc_filter : int -> bool;
      (** candidates failing this predicate are never moved — the
          driver retries with a filter when the optimal partition turns
          out to be untransformable (e.g. it reaches into a nested
          loop) *)
}

let default_options ~body_size =
  {
    max_vcs = 30;
    (* §6.1 criterion 2: pre-fork region below a fraction of the body *)
    prefork_size_limit = max 6 (body_size / 3);
    node_budget = 50_000;
    use_pruning = true;
    vc_filter = (fun _ -> true);
  }

type result = {
  chosen_vcs : Iset.t;  (** violation candidates in the pre-fork region *)
  prefork : Iset.t;  (** full pre-fork statement set *)
  cost : float;  (** optimal misspeculation cost *)
  prefork_size : int;
  body : int;  (** loop body size in operations *)
  nodes_explored : int;
  pruned_by_threshold : int;
      (** subtrees cut by heuristic 1 (pre-fork size monotonicity) *)
  pruned_by_bound : int;
      (** subtrees cut by heuristic 2 (optimistic cost bound) *)
  exhausted : bool;  (** search completed within the node budget *)
}

let chosen r = Iset.elements r.chosen_vcs

type outcome = Found of result | Too_many_vcs of int

(** Find the minimum-misspeculation-cost legal partition of [g] whose
    pre-fork region fits the size threshold. *)
let search ?(options = None) (cm : Cost_model.t) (g : Depgraph.t) : outcome =
  let bsize = body_size g in
  let opts = match options with Some o -> o | None -> default_options ~body_size:bsize in
  let anc_cache = Hashtbl.create 16 in
  let anc iid =
    match Hashtbl.find_opt anc_cache iid with
    | Some s -> s
    | None ->
      let s = ancestors g iid in
      Hashtbl.replace anc_cache iid s;
      s
  in
  let g_filtered_vcs =
    List.filter opts.vc_filter (Depgraph.violation_candidates g)
  in
  let vcg = build_vc_graph_of g ~anc g_filtered_vcs in
  let n = Array.length vcg.vcs in
  Spt_obs.Metrics.inc m_searches;
  Spt_obs.Metrics.observe h_vcs (float_of_int n);
  if n > opts.max_vcs then begin
    Spt_obs.Metrics.inc m_too_many_vcs;
    Too_many_vcs n
  end
  else begin
    let explored = ref 0 in
    let cut_threshold = ref 0 in
    let cut_bound = ref 0 in
    let best = ref None in
    let budget_hit = ref false in
    let eval vcs_set =
      let prefork = closure g ~anc vcs_set in
      let psize = size_of g prefork in
      let cost = Cost_model.misspeculation_cost cm ~prefork in
      (prefork, psize, cost)
    in
    let better cost psize =
      match !best with
      | None -> true
      | Some (_, _, bcost, bpsize) ->
        cost < bcost -. 1e-12
        || (Float.abs (cost -. bcost) <= 1e-12 && psize < bpsize)
    in
    (* indices of VCs with topological number > last whose predecessors
       are all in the set *)
    let rec dfs set_indices vcs_set last =
      if !explored >= opts.node_budget then budget_hit := true
      else begin
        incr explored;
        let prefork, psize, cost = eval vcs_set in
        let feasible = psize <= opts.prefork_size_limit in
        if feasible && better cost psize then
          best := Some (vcs_set, prefork, cost, psize);
        (* heuristic 1: size is monotone — an oversize partition cannot
           have feasible descendants *)
        if (not feasible) && opts.use_pruning then incr cut_threshold;
        if feasible || not opts.use_pruning then begin
          (* heuristic 2: optimistic bound with every addable VC moved *)
          let addable =
            List.filter
              (fun i ->
                i > last && Iset.subset vcg.vc_preds.(i) set_indices)
              (List.init n Fun.id)
          in
          let skip_subtree =
            opts.use_pruning
            &&
            match !best with
            | None -> false
            | Some (_, _, bcost, _) ->
              let all_addable =
                List.filter (fun i -> i > last) (List.init n Fun.id)
              in
              let full_set =
                List.fold_left
                  (fun acc i -> Iset.add vcg.vcs.(i) acc)
                  vcs_set all_addable
              in
              let _, _, lb_cost = eval full_set in
              lb_cost > bcost +. 1e-12
          in
          if skip_subtree then incr cut_bound;
          if not skip_subtree then
            List.iter
              (fun i ->
                if not !budget_hit then
                  dfs (Iset.add i set_indices)
                    (Iset.add vcg.vcs.(i) vcs_set)
                    i)
              addable
        end
      end
    in
    dfs Iset.empty Iset.empty (-1);
    Spt_obs.Metrics.add m_nodes !explored;
    Spt_obs.Metrics.add m_pruned_threshold !cut_threshold;
    Spt_obs.Metrics.add m_pruned_bound !cut_bound;
    if !budget_hit then Spt_obs.Metrics.inc m_budget_hits;
    match !best with
    | Some (vcs_set, prefork, cost, psize) ->
      Found
        {
          chosen_vcs = vcs_set;
          prefork;
          cost;
          prefork_size = psize;
          body = bsize;
          nodes_explored = !explored;
          pruned_by_threshold = !cut_threshold;
          pruned_by_bound = !cut_bound;
          exhausted = not !budget_hit;
        }
    | None ->
      (* the empty partition is always feasible (size 0) — reaching here
         means even it was rejected, which cannot happen *)
      assert false
  end
