(** Optimal SPT loop partitioning (§5 of the paper).

    A partition is identified by the set of violation candidates moved
    into the pre-fork region; its statement content is the backward
    closure of those candidates over every intra-iteration dependence
    edge — the paper's legality rule ("maintain all forward
    intra-iteration dependence edges").  {!search} runs the paper's
    branch-and-bound over the VC-dependence graph with both §5.2.1
    pruning heuristics. *)

open Spt_depgraph

module Iset : module type of Set.Make (Int)

(** [ancestors g iid] is [iid] plus all its intra-iteration dependence
    ancestors — the statements that must accompany it into the pre-fork
    region. *)
val ancestors : Depgraph.t -> int -> Iset.t

(** Pre-fork statement set of a chosen violation-candidate set, given a
    (memoized) [anc] function. *)
val closure : Depgraph.t -> anc:(int -> Iset.t) -> Iset.t -> Iset.t

(** Static size of a statement set in elementary operations; statements
    in the loop-header block are free (they sit before the fork point
    by position). *)
val size_of : Depgraph.t -> Iset.t -> int

(** Static size of the whole loop body in elementary operations. *)
val body_size : Depgraph.t -> int

(** The violation-candidate dependence graph (§5.1), topologically
    sorted. *)
type vc_graph = {
  vcs : int array;  (** candidates in topological order *)
  topo_of : (int, int) Hashtbl.t;  (** iid → topological index *)
  vc_preds : Iset.t array;  (** per index, indices of VC-dep predecessors *)
}

val build_vc_graph : Depgraph.t -> anc:(int -> Iset.t) -> vc_graph

type options = {
  max_vcs : int;  (** skip loops with more candidates (§5.2.1; paper: 30) *)
  prefork_size_limit : int;  (** absolute threshold in operations *)
  node_budget : int;  (** hard cap on explored partitions *)
  use_pruning : bool;  (** disable only for the ablation benchmark *)
  vc_filter : int -> bool;
      (** candidates failing this predicate are never moved; the driver
          uses it to keep the search within what the transformation can
          realize *)
}

val default_options : body_size:int -> options

type result = {
  chosen_vcs : Iset.t;  (** violation candidates in the pre-fork region *)
  prefork : Iset.t;  (** full pre-fork statement set *)
  cost : float;  (** optimal misspeculation cost *)
  prefork_size : int;
  body : int;  (** loop body size in operations *)
  nodes_explored : int;
  pruned_by_threshold : int;
      (** subtrees cut by heuristic 1 (pre-fork size monotonicity) *)
  pruned_by_bound : int;
      (** subtrees cut by heuristic 2 (optimistic cost bound) *)
  exhausted : bool;  (** completed within the node budget *)
}

(** Chosen violation candidates of a partition, sorted by iid — the
    stable signature the feedback loop compares across recompiles. *)
val chosen : result -> int list

type outcome = Found of result | Too_many_vcs of int

(** Find the minimum-cost legal partition whose pre-fork region fits
    the size threshold.  The empty pre-fork partition is always
    feasible, so [Found] is returned whenever the candidate count is
    within [max_vcs]. *)
val search : ?options:options option -> Spt_cost.Cost_model.t -> Depgraph.t -> outcome
