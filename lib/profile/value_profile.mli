(** Software-value-prediction profiling (§7.2): watches designated
    instructions and fits a stride predictor
    [value(n+1) = value(n) + c] to the values they define (stride 0 is
    a last-value predictor). *)

open Spt_interp

(** An instruction to watch, identified by function name and iid. *)
type target = { tfunc : string; tiid : int }

type t

val create : target list -> t
val hooks : t -> Interp.hooks

type prediction = {
  stride : int64;
  hit_rate : float;  (** fraction of transitions matching the stride *)
  observations : int;
}

(** Best stride for a target, if it was observed at least twice. *)
val best_prediction : t -> func:string -> iid:int -> prediction option

(** Default acceptance bar for inserting prediction code. *)
val min_hit_rate : float

(** [best_prediction] filtered by the hit-rate bar and a minimum
    observation count — "the values are found to be predictable". *)
val predictable : ?threshold:float -> t -> func:string -> iid:int -> prediction option

(** Stride histograms per target, sorted, for the on-disk profile
    store; targets with no transitions are omitted. *)
type dump = { d_strides : ((string * int) * (int64 * int) list) list }

val export : t -> dump

(** Add the dump's stride counts into [t], creating targets the current
    run does not watch. *)
val absorb : t -> dump -> unit
