(** Data-dependence profiling (§7.3).

    A shadow memory tracks, per element address, the last write with
    its attribution to every active loop (instance, iteration, and
    *owner* instruction — the loop-body instruction responsible at that
    nesting level, so dependences through callees surface at the call
    site).  Loads yield dependence events classified by iteration
    distance; the probability of a W→R edge is
    [events(W→R) / executions(W)], the paper's §4.1 definition. *)

open Spt_ir
open Spt_interp

type loop_key = string * int  (** function name, loop header bid *)

type dep_kind = Intra | Cross1 | Cross_far

type t

val create : Ir.program -> t
val hooks : t -> Interp.hooks

(** Raw event and execution counts. *)
val dep_events : t -> loop_key -> w:int -> r:int -> dep_kind -> int

val write_executions : t -> loop_key -> w:int -> int

(** Profiled probability of the dependence edge [w -> r], or [None]
    when [w] was never seen writing in this loop. *)
val dep_prob : t -> loop_key -> w:int -> r:int -> dep_kind -> float option

(** All (writer, reader, probability) triples observed for the kind. *)
val pairs : t -> loop_key -> dep_kind -> (int * int * float) list

(** True when the loop executed during profiling. *)
val observed : t -> loop_key -> bool

val string_of_kind : dep_kind -> string
val kind_of_string : string -> dep_kind option

(** A flat, sorted rendering of the count tables for the on-disk
    profile store.  The shadow memory (live interpreter state) does not
    travel. *)
type dump = {
  d_deps : ((loop_key * int * int * dep_kind) * int) list;
      (** (loop, writer owner, reader owner, kind) -> events *)
  d_writes : ((loop_key * int) * int) list;
      (** (loop, writer owner) -> write executions *)
}

val export : t -> dump

(** Add the dump's counts into [t]; loops present in the dump count as
    {!observed} even if this run never reached them. *)
val absorb : t -> dump -> unit
