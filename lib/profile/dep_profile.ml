(** Data-dependence profiling (§7.3).

    A shadow memory records, for every element address, the last write
    together with its attribution to every loop active at the time: the
    loop instance, the iteration number, and the *owner* instruction —
    the loop-body instruction responsible for the access at that loop's
    nesting level (the access itself, or the call instruction through
    which it happened, so dependences flowing through callees surface
    at the call site exactly as in ORC's summary view).

    On every load, matching records yield dependence events classified
    as intra-iteration, cross-iteration at distance 1, or farther.  The
    probability attached to a W→R edge is
    [events(W→R) / executions(W)], the paper's definition: "for every N
    writes at W, only pN reads will access the same memory location at
    R" (§4.1). *)

open Spt_ir
open Spt_interp

type loop_key = string * int  (** function name, loop header bid *)

type dep_kind = Intra | Cross1 | Cross_far

(* ------------------------------------------------------------------ *)
(* Runtime structures *)

type loop_frame = {
  key : loop_key;
  instance : int;
  mutable iteration : int;
  body : Loops.Iset.t;
}

type call_frame = {
  cf_func : Ir.func;
  mutable pending_call : int;  (** iid of the call instruction currently
                                   executing in this frame, or -1 *)
  mutable loop_frames : loop_frame list;  (** innermost first *)
}

type write_record = {
  wr_key : loop_key;
  wr_instance : int;
  wr_iteration : int;
  wr_owner : int;  (** owner instruction iid at that loop's level *)
}

type t = {
  loops_of : (string, (int, Loops.Iset.t) Hashtbl.t) Hashtbl.t;
      (** function -> header bid -> body set *)
  shadow : (int, write_record list) Hashtbl.t;
  mutable stack : call_frame list;
  instance_gen : (loop_key, int) Hashtbl.t;
  dep_counts : (loop_key * int * int * dep_kind, int) Hashtbl.t;
      (** (loop, writer owner, reader owner, kind) -> events *)
  w_execs : (loop_key * int, int) Hashtbl.t;
      (** (loop, owner) -> write executions *)
}

let create (program : Ir.program) =
  let loops_of = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (l : Loops.loop) -> Hashtbl.replace tbl l.Loops.header l.Loops.body)
        (Loops.find f);
      Hashtbl.replace loops_of name tbl)
    program.Ir.funcs;
  {
    loops_of;
    shadow = Hashtbl.create 4096;
    stack = [];
    instance_gen = Hashtbl.create 64;
    dep_counts = Hashtbl.create 1024;
    w_execs = Hashtbl.create 256;
  }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let fresh_instance t key =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.instance_gen key) in
  Hashtbl.replace t.instance_gen key n;
  n

(* ------------------------------------------------------------------ *)
(* Hook bodies *)

let on_enter t f =
  t.stack <- { cf_func = f; pending_call = -1; loop_frames = [] } :: t.stack

let on_exit t _f = match t.stack with [] -> () | _ :: rest -> t.stack <- rest

let on_block t f bid =
  match t.stack with
  | [] -> ()
  | frame :: _ ->
    (* leave loops whose body no longer contains this block *)
    frame.loop_frames <-
      List.filter (fun lf -> Loops.Iset.mem bid lf.body) frame.loop_frames;
    (* entering or continuing a loop whose header this is *)
    (match Hashtbl.find_opt t.loops_of f.Ir.fname with
    | None -> ()
    | Some tbl -> (
      match Hashtbl.find_opt tbl bid with
      | None -> ()
      | Some body -> (
        let key = (f.Ir.fname, bid) in
        match frame.loop_frames with
        | lf :: _ when lf.key = key -> lf.iteration <- lf.iteration + 1
        | _ ->
          frame.loop_frames <-
            {
              key;
              instance = fresh_instance t key;
              iteration = 0;
              body;
            }
            :: frame.loop_frames)))

(* The owner chain: every active loop frame across the call stack,
   paired with the instruction that represents the current event at
   that loop's level. *)
let owner_chain t (i : Ir.instr) =
  match t.stack with
  | [] -> []
  | top :: deeper ->
    let at_top = List.map (fun lf -> (lf, i.Ir.iid)) top.loop_frames in
    let at_deeper =
      List.concat_map
        (fun frame ->
          List.map (fun lf -> (lf, frame.pending_call)) frame.loop_frames)
        deeper
    in
    at_top @ at_deeper

let on_instr t _f _bid (i : Ir.instr) (eff : Interp.effects) =
  (match i.Ir.kind with
  | Ir.Call _ -> (
    match t.stack with [] -> () | frame :: _ -> frame.pending_call <- i.Ir.iid)
  | _ -> ());
  if eff.Interp.loads <> [] || eff.Interp.stores <> [] then begin
    let chain = owner_chain t i in
    (* loads first: a load and store by the same instruction (impossible
       in this IR, but calls could) would see the previous writer *)
    List.iter
      (fun (addr, _) ->
        match Hashtbl.find_opt t.shadow addr with
        | None -> ()
        | Some records ->
          List.iter
            (fun (lf, owner) ->
              match
                List.find_opt
                  (fun wr -> wr.wr_key = lf.key && wr.wr_instance = lf.instance)
                  records
              with
              | None -> ()
              | Some wr ->
                let kind =
                  if wr.wr_iteration = lf.iteration then Intra
                  else if lf.iteration - wr.wr_iteration = 1 then Cross1
                  else Cross_far
                in
                bump t.dep_counts (lf.key, wr.wr_owner, owner, kind))
            chain)
      eff.Interp.loads;
    List.iter
      (fun (addr, _) ->
        let records =
          List.map
            (fun (lf, owner) ->
              bump t.w_execs (lf.key, owner);
              {
                wr_key = lf.key;
                wr_instance = lf.instance;
                wr_iteration = lf.iteration;
                wr_owner = owner;
              })
            chain
        in
        Hashtbl.replace t.shadow addr records)
      eff.Interp.stores
  end

let hooks t =
  {
    Interp.null_hooks with
    Interp.on_enter = on_enter t;
    on_exit = on_exit t;
    on_block = on_block t;
    on_instr = on_instr t;
  }

(* ------------------------------------------------------------------ *)
(* Queries *)

let dep_events t key ~w ~r kind =
  Option.value ~default:0 (Hashtbl.find_opt t.dep_counts (key, w, r, kind))

let write_executions t key ~w =
  Option.value ~default:0 (Hashtbl.find_opt t.w_execs (key, w))

(** Profiled probability of the dependence edge [w -> r] of the given
    kind, or [None] when [w] was never seen writing in this loop. *)
let dep_prob t key ~w ~r kind =
  let execs = write_executions t key ~w in
  if execs = 0 then None
  else Some (min 1.0 (float_of_int (dep_events t key ~w ~r kind) /. float_of_int execs))

(** All (writer, reader, probability) triples observed in [key] for the
    given kind, writer/reader as owner instruction iids. *)
let pairs t key kind =
  Hashtbl.fold
    (fun (k, w, r, kd) count acc ->
      if k = key && kd = kind && count > 0 then
        let execs = write_executions t key ~w in
        if execs > 0 then
          (w, r, min 1.0 (float_of_int count /. float_of_int execs)) :: acc
        else acc
      else acc)
    t.dep_counts []

(** True when [key] was observed executing at all. *)
let observed t key = Hashtbl.mem t.instance_gen key

(* ------------------------------------------------------------------ *)
(* Persistence (the feedback loop's profile store).  Only the count
   tables travel: the shadow memory and loop/call stacks are live
   interpreter state and meaningless across runs. *)

let string_of_kind = function
  | Intra -> "intra"
  | Cross1 -> "cross1"
  | Cross_far -> "crossfar"

let kind_of_string = function
  | "intra" -> Some Intra
  | "cross1" -> Some Cross1
  | "crossfar" -> Some Cross_far
  | _ -> None

type dump = {
  d_deps : ((loop_key * int * int * dep_kind) * int) list;
  d_writes : ((loop_key * int) * int) list;
}

let export t =
  let pairs tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  {
    d_deps = List.sort compare (pairs t.dep_counts);
    d_writes = List.sort compare (pairs t.w_execs);
  }

let add tbl key n =
  if n > 0 then
    Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let absorb t (d : dump) =
  (* mark every loop in the dump as observed, so {!observed} (which
     gates the profiled-probability path in the dependence graph)
     honours absorbed data even when this run never reached the loop *)
  let mark key =
    if not (Hashtbl.mem t.instance_gen key) then
      Hashtbl.replace t.instance_gen key 1
  in
  List.iter
    (fun (((key, _, _, _) as k), n) ->
      mark key;
      add t.dep_counts k n)
    d.d_deps;
  List.iter
    (fun (((key, _) as k), n) ->
      mark key;
      add t.w_execs k n)
    d.d_writes
