(** Control-flow edge profiling (§4.1; the paper's basic compilation
    uses only this).  Counts block executions, taken edges and function
    entries; derived queries feed violation probabilities and the §6.1
    iteration-count criterion. *)

open Spt_ir
open Spt_interp

type t

val create : unit -> t

(** Hooks to attach to an interpreter run (composable via
    {!Spt_interp.Interp.combine_hooks}). *)
val hooks : t -> Interp.hooks

val block_count : t -> Ir.func -> int -> int
val edge_count : t -> Ir.func -> src:int -> dst:int -> int
val call_count : t -> Ir.func -> int

(** Probability that the block executes in one iteration of [loop]
    (capped at 1); 1.0 without data. *)
val exec_prob_in_loop : t -> Ir.func -> Loops.loop -> int -> float

(** Number of times [loop] was entered from outside. *)
val loop_entries : t -> Ir.func -> Loops.loop -> int

(** Average header executions per entry (§6.1 criterion 4). *)
val avg_trip_count : ?default:float -> t -> Ir.func -> Loops.loop -> float

(** Dynamic operation count spent inside the loop's own blocks. *)
val weight_of_loop : t -> Ir.func -> Loops.loop -> int

(** A flat, sorted rendering of every counter, for the on-disk profile
    store ({!Spt_feedback.Profile_store}). *)
type dump = {
  d_blocks : ((string * int) * int) list;  (** (function, block) -> count *)
  d_edges : ((string * int * int) * int) list;  (** (function, src, dst) *)
  d_entries : (string * int) list;  (** function -> call count *)
}

val export : t -> dump

(** Add the dump's counts into [t] (counts add, so absorbing two runs
    behaves as one longer run). *)
val absorb : t -> dump -> unit
