(** Software-value-prediction profiling (§7.2).

    Pass 1 identifies critical violation candidates whose cost is
    unacceptably high; this profiler then watches the values those
    instructions define, one observation per execution, and fits a
    stride predictor: value(n+1) = value(n) + c.  A stride of 0 is a
    last-value predictor.  The SPT transformation inserts prediction
    code only when the best stride's hit rate clears the [min_hit_rate]
    bar, mirroring the paper's "if the values are found to be
    predictable, and both the corresponding value-prediction overhead
    and the mis-prediction cost are acceptably low". *)

open Spt_ir
open Spt_interp

type target = { tfunc : string; tiid : int }

type series = {
  mutable last : int64 option;
  mutable instance_mark : int;  (** reset marker: new loop instance *)
  strides : (int64, int) Hashtbl.t;
  mutable transitions : int;
}

type t = {
  targets : (string * int, series) Hashtbl.t;
  mutable current_marks : (string, int) Hashtbl.t;
      (** function -> generation counter bumped on function entry, used
          to cut series across separate activations *)
}

let create targets =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun { tfunc; tiid } ->
      Hashtbl.replace tbl (tfunc, tiid)
        { last = None; instance_mark = -1; strides = Hashtbl.create 8; transitions = 0 })
    targets;
  { targets = tbl; current_marks = Hashtbl.create 16 }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let hooks t =
  {
    Interp.null_hooks with
    Interp.on_enter =
      (fun f ->
        bump t.current_marks f.Ir.fname);
    on_instr =
      (fun f _bid i eff ->
        match Hashtbl.find_opt t.targets (f.Ir.fname, i.Ir.iid) with
        | None -> ()
        | Some s -> (
          match eff.Interp.defs with
          | (_, Eval.Vi v) :: _ ->
            let mark =
              Option.value ~default:0 (Hashtbl.find_opt t.current_marks f.Ir.fname)
            in
            (match s.last with
            | Some prev when s.instance_mark = mark ->
              if Sys.getenv_opt "SPT_VP_DEBUG" <> None && s.transitions < 8 then
                Printf.eprintf "[vp] %s i%d v=%Ld prev=%Ld\n%!" f.Ir.fname
                  i.Ir.iid v prev;
              bump s.strides (Int64.sub v prev);
              s.transitions <- s.transitions + 1
            | _ -> ());
            s.last <- Some v;
            s.instance_mark <- mark
          | _ -> ()));
  }

(* ------------------------------------------------------------------ *)
(* Persistence (the feedback loop's profile store).  Stride counts are
   the whole story: [transitions] is their sum, and [last] /
   [instance_mark] are live interpreter state. *)

type dump = { d_strides : ((string * int) * (int64 * int) list) list }

let export t =
  Hashtbl.fold
    (fun key s acc ->
      let strides =
        Hashtbl.fold (fun st n acc -> (st, n) :: acc) s.strides []
      in
      match List.filter (fun (_, n) -> n > 0) strides with
      | [] -> acc
      | strides -> ((key, List.sort compare strides) :: acc))
    t.targets []
  |> List.sort compare
  |> fun d_strides -> { d_strides }

let absorb t (d : dump) =
  List.iter
    (fun ((tfunc, tiid), strides) ->
      let s =
        match Hashtbl.find_opt t.targets (tfunc, tiid) with
        | Some s -> s
        | None ->
          let s =
            {
              last = None;
              instance_mark = -1;
              strides = Hashtbl.create 8;
              transitions = 0;
            }
          in
          Hashtbl.replace t.targets (tfunc, tiid) s;
          s
      in
      List.iter
        (fun (stride, n) ->
          if n > 0 then begin
            Hashtbl.replace s.strides stride
              (n + Option.value ~default:0 (Hashtbl.find_opt s.strides stride));
            s.transitions <- s.transitions + n
          end)
        strides)
    d.d_strides

type prediction = {
  stride : int64;
  hit_rate : float;
  observations : int;
}

(** Best stride predictor for a target, if any observations exist. *)
let best_prediction t ~func ~iid =
  match Hashtbl.find_opt t.targets (func, iid) with
  | None -> None
  | Some s ->
    if s.transitions = 0 then None
    else
      let stride, count =
        Hashtbl.fold
          (fun stride count (bs, bc) ->
            if count > bc then (stride, count) else (bs, bc))
          s.strides (0L, 0)
      in
      Some
        {
          stride;
          hit_rate = float_of_int count /. float_of_int s.transitions;
          observations = s.transitions;
        }

(** Default acceptance bar for inserting prediction code. *)
let min_hit_rate = 0.9

let predictable ?(threshold = min_hit_rate) t ~func ~iid =
  match best_prediction t ~func ~iid with
  | Some p when p.hit_rate >= threshold && p.observations >= 8 -> Some p
  | _ -> None
