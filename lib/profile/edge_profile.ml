(** Control-flow edge profiling (§4.1, §8: "the basic compilation used
    only control flow edge profiling").

    Counts block executions and taken edges per function.  From these
    the cost model derives per-iteration block execution probabilities
    (the violation probabilities of §4.2.3 step 1 and the reaching
    probabilities that scale cost-graph edges), and the loop selector
    derives average trip counts (§6.1 criterion 4). *)

open Spt_ir
open Spt_interp

type key = string * int  (* function name, block id *)
type ekey = string * int * int

type t = {
  blocks : (key, int) Hashtbl.t;
  edges : (ekey, int) Hashtbl.t;
  entries : (string, int) Hashtbl.t;  (** function call counts *)
}

let create () =
  { blocks = Hashtbl.create 256; edges = Hashtbl.create 256; entries = Hashtbl.create 32 }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add tbl key n =
  if n > 0 then
    Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* ------------------------------------------------------------------ *)
(* Persistence (the feedback loop's profile store) *)

type dump = {
  d_blocks : ((string * int) * int) list;
  d_edges : ((string * int * int) * int) list;
  d_entries : (string * int) list;
}

let export t =
  let pairs tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  {
    d_blocks = List.sort compare (pairs t.blocks);
    d_edges = List.sort compare (pairs t.edges);
    d_entries = List.sort compare (pairs t.entries);
  }

let absorb t (d : dump) =
  List.iter (fun (k, n) -> add t.blocks k n) d.d_blocks;
  List.iter (fun (k, n) -> add t.edges k n) d.d_edges;
  List.iter (fun (k, n) -> add t.entries k n) d.d_entries

let hooks t =
  {
    Interp.null_hooks with
    Interp.on_block = (fun f bid -> bump t.blocks (f.Ir.fname, bid));
    on_edge = (fun f ~src ~dst -> bump t.edges (f.Ir.fname, src, dst));
    on_enter = (fun f -> bump t.entries f.Ir.fname);
  }

let block_count t (f : Ir.func) bid =
  Option.value ~default:0 (Hashtbl.find_opt t.blocks (f.Ir.fname, bid))

let edge_count t (f : Ir.func) ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (f.Ir.fname, src, dst))

let call_count t (f : Ir.func) =
  Option.value ~default:0 (Hashtbl.find_opt t.entries f.Ir.fname)

(** Probability that [bid] executes in an iteration of [loop]
    (executions of [bid] per execution of the loop header).  1.0 when
    no profile data is available (static fallback). *)
let exec_prob_in_loop t (f : Ir.func) (loop : Loops.loop) bid =
  let h = block_count t f loop.Loops.header in
  if h = 0 then 1.0
  else
    let c = block_count t f bid in
    min 1.0 (float_of_int c /. float_of_int h)

(** Number of times [loop] was entered from outside. *)
let loop_entries t (f : Ir.func) (loop : Loops.loop) =
  let cfg = Cfg.of_func f in
  List.fold_left
    (fun acc p ->
      if Loops.in_loop loop p then acc
      else acc + edge_count t f ~src:p ~dst:loop.Loops.header)
    (* a loop whose header is the function entry is entered on call *)
    (if loop.Loops.header = f.Ir.entry then call_count t f else 0)
    (Cfg.predecessors cfg loop.Loops.header)

(** Average number of header executions per entry — the profile-based
    iteration count of §6.1 criterion 4.  Falls back to [default] with
    no data. *)
let avg_trip_count ?(default = 10.0) t (f : Ir.func) (loop : Loops.loop) =
  let entries = loop_entries t f loop in
  if entries = 0 then default
  else float_of_int (block_count t f loop.Loops.header) /. float_of_int entries

(** Fraction of all profiled block executions (weighted by static block
    size) spent inside [loop] — a cheap static-dynamic coverage proxy
    used in reports. *)
let weight_of_loop t (f : Ir.func) (loop : Loops.loop) =
  Loops.Iset.fold
    (fun bid acc ->
      acc + (block_count t f bid * Ir.block_size (Ir.block f bid)))
    loop.Loops.body 0
