(** Flat-bytecode execution engine.

    The tree-walking interpreter ({!Spt_interp.Interp.exec_segment})
    re-traverses IR lists on every dynamic instruction: it partitions
    phis per block entry, walks an instruction list, allocates an
    effects record per step and resolves every memory operand through a
    per-access layout lookup.  This engine compiles each function once
    into a contiguous array of register-resolved instructions and then
    dispatches with an unsafe-indexed loop, implementing the *same*
    segment-machine contract — identical stops, markers, step budgets,
    error messages and [memio]/[regio] backends — so it drops in under
    the speculative runtime and the sequential paths without changing
    observable semantics.

    Restrictions: the engine fires no instrumentation hooks, so it only
    drives machines whose hooks are null ({!Interp.hooks_are_null});
    for any other machine — and for a frame whose function is not part
    of the compiled program — it silently delegates to the tree
    interpreter.  Profilers and the TLS timing machine therefore keep
    running on the tree interpreter unchanged. *)

open Spt_ir
module Interp = Spt_interp.Interp

type value = Interp.value

(** Which execution engine a pipeline or runtime should use. *)
type kind = Tree | Bytecode

val string_of_kind : kind -> string

(** Parse a [--engine] spelling.  [Error] carries a usage message. *)
val kind_of_string : string -> (kind, string) result

(** A program compiled to bytecode against a fixed layout.  Compiled
    code is immutable and may be shared across domains. *)
type t

(** Compile every function of the machine's program.  O(static program
    size); call once per run, before spawning workers. *)
val compile : Interp.state -> t

(** Number of bytecode instructions across all compiled functions. *)
val code_size : t -> int

(** Drop-in equivalent of {!Interp.exec_segment}: same stops, same
    step/entry accounting (kept in the machine's own counters), same
    error messages.  Falls back to the tree interpreter when the
    machine has hooks installed or executes a foreign program. *)
val exec_segment :
  t ->
  Interp.state ->
  Interp.frame ->
  ?stop_block:int ->
  watch_markers:bool ->
  Interp.cursor ->
  Interp.seg_stop

(** Drop-in equivalent of {!Interp.call}: drives the function and its
    callees to completion, dispatching markers to the machine's
    handler. *)
val call :
  t -> Interp.state -> Ir.func -> value list -> Ir.sym list -> value option

(** Sequential entry point equivalent to {!Interp.run} (without hooks):
    fresh store, compile, execute [main] on the bytecode engine.
    @raise Interp.Runtime_error exactly as {!Interp.run} does. *)
val run : ?max_steps:int -> Ir.program -> Interp.result
