(** Flat-bytecode execution engine — see engine.mli.

    Design: each function compiles once into a contiguous [inst array];
    blocks become index ranges, operands are pre-resolved (immediates
    boxed once, regions carrying their precomputed element base,
    callees resolved to their function or builtin), and phis become
    per-edge parallel-move tables.  The dispatch loop indexes the code
    array with [Array.unsafe_get]: every [pc] it can reach is either a
    compiled block start (jump targets come from the function's own
    terminators, and every compiled block ends in a terminator that
    transfers control or returns) or the successor of a non-terminator
    instruction, so it is always in bounds — see DESIGN.md §3f for the
    full safety argument.

    Semantics are kept bit-for-bit equal to the tree interpreter: the
    same step/block-entry accounting (buffered in a context record and
    flushed into the machine's own counters around handler dispatch and
    at segment boundaries), the same budget-check placement (at block
    terminators), the same error messages, the same marker and
    [stop_block] protocol, and the same [memio]/[regio] backends. *)

open Spt_ir
module I = Spt_interp.Interp
module Layout = Spt_interp.Layout
module Interp = Spt_interp.Interp

type value = I.value

type kind = Tree | Bytecode

let string_of_kind = function Tree -> "tree" | Bytecode -> "bytecode"

let kind_of_string = function
  | "tree" -> Ok Tree
  | "bytecode" -> Ok Bytecode
  | s -> Error (Printf.sprintf "unknown engine %S (expected tree|bytecode)" s)

(* ------------------------------------------------------------------ *)
(* Bytecode *)

type operand = O_reg of Ir.var | O_imm of value

(* [R_sym] carries the element base resolved at compile time, turning
   every direct access into [base + idx]; array parameters still
   resolve per access against the frame (exactly like the tree). *)
type region = R_sym of Ir.sym * int | R_param of int * string

type callee = C_func of Ir.func | C_builtin of string

type inst =
  | I_move of Ir.var * operand
  | I_unop of Ir.var * Ir.unop * operand
  | I_binop of Ir.var * Ir.binop * operand * operand
  | I_load of Ir.var * region * operand
  | I_store of region * operand * operand
  | I_call of Ir.var option * callee * operand array * region array
  | I_marker of I.marker
  | T_jump of int
  | T_br of operand * int * int
  | T_ret of operand option

(* Per incoming edge: the block's phis as one parallel move.
   [Ph_partial] marks an edge some phi lacks — the reads that the tree
   interpreter performs before discovering the hole, then the same
   error. *)
type phi_edge =
  | Ph_all of (Ir.var * operand) array
  | Ph_partial of operand array

type block_phis = Phi_none | Phi_edges of (int * phi_edge) array

type block_code = { bc_start : int; bc_phis : block_phis }

type fcode = {
  fc_func : Ir.func;
  fc_code : inst array;
  fc_blocks : block_code array; (* indexed by bid; bc_start = -1 gaps *)
}

type t = {
  t_program : Ir.program;
  t_layout : Layout.t;
  t_funcs : (string, fcode) Hashtbl.t;
}

let code_size t =
  Hashtbl.fold (fun _ fc acc -> acc + Array.length fc.fc_code) t.t_funcs 0

(* ------------------------------------------------------------------ *)
(* Compilation *)

let compile_operand = function
  | Ir.Reg v -> O_reg v
  | Ir.Imm_i n -> O_imm (Eval.Vi n)
  | Ir.Imm_f f -> O_imm (Eval.Vf f)

let compile_region layout = function
  | Ir.Rsym s -> R_sym (s, Layout.element_address layout s 0)
  | Ir.Rparam (slot, name) -> R_param (slot, name)

let compile_phis (phis : Ir.instr list) : block_phis =
  match phis with
  | [] -> Phi_none
  | _ ->
    let entries =
      List.map
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Phi (d, ins) -> (d, ins)
          | _ -> assert false)
        phis
    in
    let preds =
      List.sort_uniq compare
        (List.concat_map (fun (_, ins) -> List.map fst ins) entries)
    in
    let edge p =
      (* mirror the tree: operands are read phi-by-phi, so an edge a
         later phi lacks still performs the earlier phis' reads before
         failing *)
      let rec go acc = function
        | [] -> Ph_all (Array.of_list (List.rev acc))
        | (d, ins) :: tl -> (
          match List.assoc_opt p ins with
          | Some o -> go ((d, compile_operand o) :: acc) tl
          | None ->
            Ph_partial (Array.of_list (List.rev_map (fun (_, o) -> o) acc)))
      in
      go [] entries
    in
    Phi_edges (Array.of_list (List.map (fun p -> (p, edge p)) preds))

let compile_instr layout (program : Ir.program) (k : Ir.kind) : inst =
  match k with
  | Ir.Move (d, o) -> I_move (d, compile_operand o)
  | Ir.Unop (d, op, o) -> I_unop (d, op, compile_operand o)
  | Ir.Binop (d, op, a, b) ->
    I_binop (d, op, compile_operand a, compile_operand b)
  | Ir.Load (d, r, idx) ->
    I_load (d, compile_region layout r, compile_operand idx)
  | Ir.Store (r, idx, src) ->
    I_store (compile_region layout r, compile_operand idx, compile_operand src)
  | Ir.Call (dst, name, args) ->
    let sargs =
      List.filter_map
        (function Ir.Aop o -> Some (compile_operand o) | Ir.Aarr _ -> None)
        args
    in
    let rargs =
      List.filter_map
        (function
          | Ir.Aarr r -> Some (compile_region layout r)
          | Ir.Aop _ -> None)
        args
    in
    let callee =
      match List.assoc_opt name program.Ir.funcs with
      | Some f -> C_func f
      | None -> C_builtin name
    in
    I_call (dst, callee, Array.of_list sargs, Array.of_list rargs)
  | Ir.Phi _ -> assert false (* partitioned into the block head *)
  | Ir.Spt_fork id -> I_marker (`Fork id)
  | Ir.Spt_kill id -> I_marker (`Kill id)

let compile_term = function
  | Ir.Jump n -> T_jump n
  | Ir.Br (c, t, e) -> T_br (compile_operand c, t, e)
  | Ir.Ret o -> T_ret (Option.map compile_operand o)

let compile_func layout (program : Ir.program) (f : Ir.func) : fcode =
  let bids = Ir.block_ids f in
  let maxbid = List.fold_left max (-1) bids in
  let blocks =
    Array.make (maxbid + 1) { bc_start = -1; bc_phis = Phi_none }
  in
  let rev_code = ref [] and n = ref 0 in
  let emit i =
    rev_code := i :: !rev_code;
    incr n
  in
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      let phis, rest =
        List.partition (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind) b.Ir.instrs
      in
      blocks.(bid) <- { bc_start = !n; bc_phis = compile_phis phis };
      List.iter
        (fun (i : Ir.instr) -> emit (compile_instr layout program i.Ir.kind))
        rest;
      emit (compile_term b.Ir.term))
    bids;
  { fc_func = f; fc_code = Array.of_list (List.rev !rev_code); fc_blocks = blocks }

let compile (st : I.state) : t =
  let program = I.program_of st in
  let layout = I.layout st in
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      (* first binding wins, like the tree's [List.assoc_opt] *)
      if not (Hashtbl.mem funcs name) then
        Hashtbl.add funcs name (compile_func layout program f))
    program.Ir.funcs;
  { t_program = program; t_layout = layout; t_funcs = funcs }

(* ------------------------------------------------------------------ *)
(* Execution *)

exception Runtime_error = I.Runtime_error

let err fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

(* Step/entry counters are buffered here and flushed into the machine's
   own counters around every point where foreign code can observe them
   (marker handlers, tree delegation) and at segment boundaries, so the
   machine's [steps]/budget semantics are indistinguishable from the
   tree interpreter's. *)
type ctx = {
  st : I.state;
  prog : t;
  layout : Layout.t;
  memio : I.memio;
  max_steps : int;
  mutable steps : int;
  mutable entries : int;
}

let make_ctx t st =
  let steps, entries = I.counts st in
  {
    st;
    prog = t;
    layout = t.t_layout;
    memio = I.memio_of st;
    max_steps = I.max_steps_of st;
    steps;
    entries;
  }

let flush ctx = I.set_counts ctx.st ~steps:ctx.steps ~block_entries:ctx.entries

let reload ctx =
  let s, e = I.counts ctx.st in
  ctx.steps <- s;
  ctx.entries <- e

let uninit frame (v : Ir.var) =
  err "read of uninitialized register %s.%d in %s" v.Ir.vname v.Ir.vid
    frame.I.func.Ir.fname

let read_reg frame (v : Ir.var) =
  match frame.I.frio with
  | None -> (
    match frame.I.regs.(v.Ir.vid) with
    | Some x -> x
    | None -> uninit frame v)
  | Some r -> (
    match r.I.rio_get v with Some x -> x | None -> uninit frame v)

let write_reg frame (v : Ir.var) x =
  match frame.I.frio with
  | None -> frame.I.regs.(v.Ir.vid) <- Some x
  | Some r -> r.I.rio_set v x

let read_operand frame = function
  | O_reg v -> read_reg frame v
  | O_imm x -> x

let as_int = function
  | Eval.Vi n -> Int64.to_int n
  | Eval.Vf _ -> err "expected integer value"

let resolve_param frame slot name =
  if slot < Array.length frame.I.arr_args then frame.I.arr_args.(slot)
  else err "unbound array parameter %s" name

let load_addr ctx frame r idx =
  match r with
  | R_sym (s, base) ->
    if idx < 0 || idx >= s.Ir.ssize then
      err "out-of-bounds read %s[%d] (size %d)" s.Ir.sname idx s.Ir.ssize;
    base + idx
  | R_param (slot, name) ->
    let s = resolve_param frame slot name in
    if idx < 0 || idx >= s.Ir.ssize then
      err "out-of-bounds read %s[%d] (size %d)" s.Ir.sname idx s.Ir.ssize;
    Layout.element_address ctx.layout s idx

let store_addr ctx frame r idx =
  match r with
  | R_sym (s, base) ->
    if idx < 0 || idx >= s.Ir.ssize then
      err "out-of-bounds write %s[%d] (size %d)" s.Ir.sname idx s.Ir.ssize;
    base + idx
  | R_param (slot, name) ->
    let s = resolve_param frame slot name in
    if idx < 0 || idx >= s.Ir.ssize then
      err "out-of-bounds write %s[%d] (size %d)" s.Ir.sname idx s.Ir.ssize;
    Layout.element_address ctx.layout s idx

let resolve_rarg ctx frame = function
  | R_sym (s, _) ->
    ignore ctx;
    s
  | R_param (slot, name) -> resolve_param frame slot name

let check_budget ctx =
  if ctx.steps + ctx.entries > ctx.max_steps then
    err "step limit exceeded (%d)" ctx.max_steps

let run_phis ctx frame bid prev = function
  | Phi_none -> ()
  | Phi_edges edges ->
    let n = Array.length edges in
    let rec find i =
      if i = n then
        err "phi in bb%d has no operand for predecessor bb%d" bid prev
      else
        let p, e = edges.(i) in
        if p = prev then e else find (i + 1)
    in
    (match find 0 with
    | Ph_partial reads ->
      Array.iter (fun o -> ignore (read_operand frame o)) reads;
      err "phi in bb%d has no operand for predecessor bb%d" bid prev
    | Ph_all moves ->
      (* parallel: all reads precede all writes *)
      let k = Array.length moves in
      let vals = Array.make k (Eval.Vi 0L) in
      for i = 0 to k - 1 do
        vals.(i) <- read_operand frame (snd moves.(i))
      done;
      for i = 0 to k - 1 do
        write_reg frame (fst moves.(i)) vals.(i)
      done;
      ctx.steps <- ctx.steps + k)

let bind_params frame (callee : Ir.func) (scalars : value array) =
  let n = Array.length scalars in
  let rec bind i = function
    | [] -> if i <> n then err "arity mismatch calling %s" callee.Ir.fname
    | Ir.Pscalar v :: ps ->
      if i >= n then err "arity mismatch calling %s" callee.Ir.fname;
      write_reg frame v scalars.(i);
      bind (i + 1) ps
    | Ir.Parray _ :: ps -> bind i ps
  in
  bind 0 callee.Ir.fparams

let block_of fc bid =
  let bad () =
    (* raise the interpreter's own unknown-block error *)
    ignore (Ir.block fc.fc_func bid);
    assert false
  in
  if bid < 0 || bid >= Array.length fc.fc_blocks then bad ()
  else
    let bc = Array.unsafe_get fc.fc_blocks bid in
    if bc.bc_start < 0 then bad () else bc

(* The dispatch loop.  [seg_exec] is the engine's [exec_segment];
   [call_fn] its [exec_call]; [drive] its [run_frame]. *)
let rec seg_exec ctx frame fc (stop_block : int option) watch
    (cur : I.cursor) : I.seg_stop =
  let code = fc.fc_code in
  let bc0 = block_of fc cur.I.cbid in
  if cur.I.cpos = 0 then begin
    ctx.entries <- ctx.entries + 1;
    run_phis ctx frame cur.I.cbid cur.I.cprev bc0.bc_phis
  end;
  let rec loop bid prev start pc : I.seg_stop =
    match Array.unsafe_get code pc with
    | I_move (d, o) ->
      ctx.steps <- ctx.steps + 1;
      write_reg frame d (read_operand frame o);
      loop bid prev start (pc + 1)
    | I_unop (d, op, o) ->
      ctx.steps <- ctx.steps + 1;
      write_reg frame d (Eval.eval_unop op (read_operand frame o));
      loop bid prev start (pc + 1)
    | I_binop (d, op, oa, ob) ->
      ctx.steps <- ctx.steps + 1;
      let a = read_operand frame oa in
      let b = read_operand frame ob in
      let v =
        try Eval.eval_binop op a b
        with Eval.Division_by_zero -> err "division by zero"
      in
      write_reg frame d v;
      loop bid prev start (pc + 1)
    | I_load (d, r, idx_op) ->
      ctx.steps <- ctx.steps + 1;
      let idx = as_int (read_operand frame idx_op) in
      let addr = load_addr ctx frame r idx in
      write_reg frame d (ctx.memio.I.mio_load addr);
      loop bid prev start (pc + 1)
    | I_store (r, idx_op, src) ->
      ctx.steps <- ctx.steps + 1;
      let idx = as_int (read_operand frame idx_op) in
      let v = read_operand frame src in
      let addr = store_addr ctx frame r idx in
      ctx.memio.I.mio_store addr v;
      loop bid prev start (pc + 1)
    | I_call (dst, callee, sargs, rargs) ->
      ctx.steps <- ctx.steps + 1;
      let ns = Array.length sargs in
      let scalars = Array.make ns (Eval.Vi 0L) in
      for i = 0 to ns - 1 do
        scalars.(i) <- read_operand frame sargs.(i)
      done;
      let na = Array.length rargs in
      let arrays =
        if na = 0 then [||]
        else begin
          let a0 = resolve_rarg ctx frame rargs.(0) in
          let arr = Array.make na a0 in
          for i = 1 to na - 1 do
            arr.(i) <- resolve_rarg ctx frame rargs.(i)
          done;
          arr
        end
      in
      (match callee with
      | C_builtin name -> (
        let ret = I.exec_builtin ctx.st name (Array.to_list scalars) in
        match (dst, ret) with
        | Some d, Some v -> write_reg frame d v
        | Some _, None -> err "builtin %s returned no value" name
        | None, _ -> ())
      | C_func f -> (
        let ret = call_fn ctx f scalars arrays in
        match (dst, ret) with
        | Some d, Some v -> write_reg frame d v
        | Some _, None -> err "call to %s returned no value" f.Ir.fname
        | None, _ -> ()));
      loop bid prev start (pc + 1)
    | I_marker m ->
      ctx.steps <- ctx.steps + 1;
      if watch then
        I.Seg_marker (m, { I.cbid = bid; cprev = prev; cpos = pc + 1 - start })
      else loop bid prev start (pc + 1)
    | T_jump next ->
      check_budget ctx;
      continue bid next
    | T_br (c, bt, be) ->
      check_budget ctx;
      continue bid (if Eval.is_truthy (read_operand frame c) then bt else be)
    | T_ret o ->
      check_budget ctx;
      I.Seg_return
        (match o with None -> None | Some o -> Some (read_operand frame o))
  and continue bid next =
    match stop_block with
    | Some sb when next = sb ->
      I.Seg_stop_block { I.cbid = next; cprev = bid; cpos = 0 }
    | _ ->
      let bc = block_of fc next in
      ctx.entries <- ctx.entries + 1;
      run_phis ctx frame next bid bc.bc_phis;
      loop next bid bc.bc_start bc.bc_start
  in
  loop cur.I.cbid cur.I.cprev bc0.bc_start (bc0.bc_start + cur.I.cpos)

and call_fn ctx (f : Ir.func) (scalars : value array) (arrays : Ir.sym array) :
    value option =
  match Hashtbl.find_opt ctx.prog.t_funcs f.Ir.fname with
  | Some fc when fc.fc_func == f ->
    let frame =
      {
        I.func = f;
        regs = Array.make (Spt_util.Idgen.peek f.Ir.var_gen) None;
        arr_args = arrays;
        frio = None;
      }
    in
    bind_params frame f scalars;
    drive ctx frame fc f.Ir.entry
  | _ ->
    (* shadowed or foreign function: delegate the whole call tree *)
    flush ctx;
    Fun.protect
      ~finally:(fun () -> reload ctx)
      (fun () -> I.call ctx.st f (Array.to_list scalars) (Array.to_list arrays))

and drive ctx frame fc entry : value option =
  let watch = I.marker_handler_of ctx.st <> None in
  let rec go cur =
    match seg_exec ctx frame fc None watch cur with
    | I.Seg_return v -> v
    | I.Seg_stop_block _ -> assert false (* no stop_block was given *)
    | I.Seg_marker (m, after) -> (
      match I.marker_handler_of ctx.st with
      | None -> go after
      | Some handler -> (
        flush ctx;
        let act = handler ctx.st frame m after in
        reload ctx;
        match act with
        | I.Proceed -> go after
        | I.Jump_to c -> go c
        | I.Return_now v -> v))
  in
  go { I.cbid = entry; cprev = -1; cpos = 0 }

(* ------------------------------------------------------------------ *)
(* Public entry points *)

let fcode_for t (f : Ir.func) =
  match Hashtbl.find_opt t.t_funcs f.Ir.fname with
  | Some fc when fc.fc_func == f -> Some fc
  | _ -> None

let exec_segment t st frame ?stop_block ~watch_markers cur =
  if (not (I.hooks_are_null st)) || I.program_of st != t.t_program then
    I.exec_segment st frame ?stop_block ~watch_markers cur
  else
    match fcode_for t frame.I.func with
    | None -> I.exec_segment st frame ?stop_block ~watch_markers cur
    | Some fc ->
      let ctx = make_ctx t st in
      Fun.protect
        ~finally:(fun () -> flush ctx)
        (fun () -> seg_exec ctx frame fc stop_block watch_markers cur)

let call t st (f : Ir.func) (scalars : value list) (arrays : Ir.sym list) =
  if (not (I.hooks_are_null st)) || I.program_of st != t.t_program then
    I.call st f scalars arrays
  else
    match fcode_for t f with
    | None -> I.call st f scalars arrays
    | Some _ ->
      let ctx = make_ctx t st in
      Fun.protect
        ~finally:(fun () -> flush ctx)
        (fun () ->
          call_fn ctx f (Array.of_list scalars) (Array.of_list arrays))

let m_runs = Spt_obs.Metrics.counter "exec.runs"
let m_steps = Spt_obs.Metrics.counter "exec.steps"

let run ?(max_steps = 200_000_000) (program : Ir.program) : I.result =
  let layout = Layout.build program.Ir.globals in
  let store = I.new_store layout program in
  let st = I.make ~max_steps ~memio:(I.store_memio store) program in
  let t = compile st in
  let mainf = Ir.func_of_program program "main" in
  let return_value = call t st mainf [] [] in
  Spt_obs.Metrics.inc m_runs;
  Spt_obs.Metrics.add m_steps (I.steps st);
  {
    I.return_value;
    output = Buffer.contents store.I.sout;
    dynamic_instrs = I.steps st;
  }
