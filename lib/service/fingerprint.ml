(** Canonical IR digests — see fingerprint.mli. *)

open Spt_ir

let schema = "spt-fp-v1"

(* ------------------------------------------------------------------ *)
(* Canonical serialization.

   Blocks are renumbered in DFS-preorder over the terminator edges from
   the entry block, so the digest depends only on the control-flow
   shape, not on the ids the block generator happened to hand out (and
   unreachable blocks do not contribute at all).  Instruction ids are
   omitted for the same reason; virtual-register ids are kept — they
   are semantic (they name the dataflow), and lowering allocates them
   deterministically from the AST. *)

let add_operand buf (op : Ir.operand) =
  Buffer.add_string buf (Format.asprintf "%a" Ir.pp_operand op)

let add_func buf (f : Ir.func) =
  let order = ref [] in
  let renum : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec visit bid =
    if not (Hashtbl.mem renum bid) then begin
      Hashtbl.replace renum bid (Hashtbl.length renum);
      order := bid :: !order;
      match (Ir.block f bid).Ir.term with
      | Ir.Jump b -> visit b
      | Ir.Br (_, b1, b2) ->
        visit b1;
        visit b2
      | Ir.Ret _ -> ()
    end
  in
  visit f.Ir.entry;
  let remap bid =
    match Hashtbl.find_opt renum bid with Some i -> i | None -> -1
  in
  Buffer.add_string buf "fn ";
  Buffer.add_string buf f.Ir.fname;
  List.iter
    (fun p ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Format.asprintf "%a" Ir_pretty.pp_param p))
    f.Ir.fparams;
  Buffer.add_string buf " -> ";
  Buffer.add_string buf
    (match f.Ir.fret with Some ty -> Ir.string_of_ty ty | None -> "void");
  Buffer.add_char buf '\n';
  List.iter
    (fun bid ->
      let b = Ir.block f bid in
      Buffer.add_string buf (Printf.sprintf "b%d" (remap bid));
      (match b.Ir.loop_origin with
      | Some `For -> Buffer.add_string buf " @for"
      | Some `While -> Buffer.add_string buf " @while"
      | Some `Do -> Buffer.add_string buf " @do"
      | None -> ());
      Buffer.add_char buf '\n';
      List.iter
        (fun (i : Ir.instr) ->
          (match i.Ir.kind with
          | Ir.Phi (v, incoming) ->
            (* phi arms carry predecessor block ids: remap and sort so
               the rendering is canonical *)
            Buffer.add_string buf (Format.asprintf "  phi %a <-" Ir.pp_var v);
            List.iter
              (fun (pred, op) ->
                Buffer.add_string buf (Printf.sprintf " b%d:" pred);
                add_operand buf op)
              (List.sort compare
                 (List.map (fun (pred, op) -> (remap pred, op)) incoming))
          | kind ->
            Buffer.add_string buf "  ";
            Buffer.add_string buf (Format.asprintf "%a" Ir_pretty.pp_kind kind));
          Buffer.add_char buf '\n')
        b.Ir.instrs;
      (match b.Ir.term with
      | Ir.Jump t -> Buffer.add_string buf (Printf.sprintf "  jump b%d" (remap t))
      | Ir.Br (c, t1, t2) ->
        Buffer.add_string buf "  br ";
        add_operand buf c;
        Buffer.add_string buf (Printf.sprintf " b%d b%d" (remap t1) (remap t2))
      | Ir.Ret None -> Buffer.add_string buf "  ret"
      | Ir.Ret (Some op) ->
        Buffer.add_string buf "  ret ";
        add_operand buf op);
      Buffer.add_char buf '\n')
    (List.rev !order)

let add_sym buf (s : Ir.sym) =
  Buffer.add_string buf
    (Printf.sprintf "g %s:%s[%d]" s.Ir.sname (Ir.string_of_ty s.Ir.selt)
       s.Ir.ssize);
  (match s.Ir.sinit with
  | None -> ()
  | Some words ->
    Buffer.add_string buf " =";
    List.iter
      (fun w -> Buffer.add_string buf (Printf.sprintf " %Ld" w))
      words);
  Buffer.add_char buf '\n'

let digest_of_buf buf = Digest.to_hex (Digest.string (Buffer.contents buf))

let func f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf schema;
  Buffer.add_char buf '\n';
  add_func buf f;
  digest_of_buf buf

let program (p : Ir.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf schema;
  Buffer.add_char buf '\n';
  List.iter (add_sym buf)
    (List.sort (fun (a : Ir.sym) b -> compare a.Ir.sname b.Ir.sname) p.Ir.globals);
  List.iter
    (fun (_, f) -> add_func buf f)
    (List.sort (fun (a, _) (b, _) -> compare a b) p.Ir.funcs);
  digest_of_buf buf

let key ~config_key prog =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ schema; config_key; program prog ]))
