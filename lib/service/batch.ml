(** Concurrent batch scheduler — see batch.mli. *)

module Pool = Spt_runtime.Pool

let m_submitted = Spt_obs.Metrics.counter "service.batch.jobs_submitted"
let m_failed = Spt_obs.Metrics.counter "service.batch.jobs_failed"
let m_timed_out = Spt_obs.Metrics.counter "service.batch.jobs_timed_out"
let m_degraded = Spt_obs.Metrics.counter "service.batch.degraded_runs"
let m_clusters = Spt_obs.Metrics.counter "service.batch.clusters"
let g_queue = Spt_obs.Metrics.gauge "service.batch.queue_depth"
let h_latency = Spt_obs.Metrics.histogram "service.batch.job_latency_s"

type 'a outcome = Done of 'a | Failed of string | Timed_out

type stats = {
  jobs : int;
  submitted : int;
  completed : int;
  failed : int;
  timed_out : int;
  clusters : int;
  degraded : bool;
  max_queue_depth : int;
  wall_s : float;
  latency : Spt_obs.Metrics.Hist.t;
}

let default_jobs () =
  match Sys.getenv_opt "SPT_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j > 0 -> j | _ -> 2)
  | None -> 2

(* union-find over shared digests: two items whose digest lists
   intersect land in the same cluster (transitively).  Union keeps the
   smaller index as root, so a cluster's root is its earliest member —
   clusters come out ordered by first appearance, members in
   submission order. *)
let cluster items =
  let n = List.length items in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then
      if ri < rj then parent.(rj) <- ri else parent.(ri) <- rj
  in
  let by_digest = Hashtbl.create 16 in
  List.iteri
    (fun i (_, digests) ->
      List.iter
        (fun d ->
          match Hashtbl.find_opt by_digest d with
          | Some j -> union i j
          | None -> Hashtbl.add by_digest d i)
        digests)
    items;
  let arr = Array.of_list (List.map fst items) in
  let members = Array.make (max n 1) [] in
  for i = n - 1 downto 0 do
    let r = find i in
    members.(r) <- i :: members.(r)
  done;
  List.filter_map
    (fun r ->
      match members.(r) with
      | [] -> None
      | ms -> Some (List.map (fun i -> arr.(i)) ms))
    (List.init n Fun.id)

(* runs on a worker domain: measure only — the metrics registry and
   [Hist.t] are not thread-safe, so all observes happen in [finish] on
   the calling domain *)
let timed_run work =
  let t0 = Unix.gettimeofday () in
  let r = try Done (work ()) with e -> Failed (Printexc.to_string e) in
  (r, Unix.gettimeofday () -. t0)

let finish ~jobs ~clusters ~degraded ~max_queue_depth ~t0
    (timed : (_ outcome * float option) array) =
  let latency = Spt_obs.Metrics.Hist.create () in
  Array.iter
    (fun (_, dt) ->
      match dt with
      | Some dt ->
        Spt_obs.Metrics.Hist.observe latency dt;
        Spt_obs.Metrics.observe h_latency dt
      | None -> ())
    timed;
  let results = Array.map fst timed in
  let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results in
  let failed = count (function Failed _ -> true | _ -> false) in
  let timed_out = count (function Timed_out -> true | _ -> false) in
  Spt_obs.Metrics.add m_failed failed;
  Spt_obs.Metrics.add m_timed_out timed_out;
  ( results,
    {
      jobs;
      submitted = Array.length results;
      completed = count (function Done _ -> true | _ -> false);
      failed;
      timed_out;
      clusters;
      degraded;
      max_queue_depth;
      wall_s = Unix.gettimeofday () -. t0;
      latency;
    } )

let run_clustered ?jobs ?(timeout_s = 600.0) items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length items in
  let t0 = Unix.gettimeofday () in
  Spt_obs.Metrics.add m_submitted n;
  let indexed = List.mapi (fun i (work, digests) -> ((i, work), digests)) items in
  let groups = cluster indexed in
  let n_clusters = List.length groups in
  Spt_obs.Metrics.add m_clusters n_clusters;
  if n = 0 then
    finish ~jobs ~clusters:0 ~degraded:false ~max_queue_depth:0 ~t0 [||]
  else
    match Pool.create ~jobs () with
    | exception _ ->
      (* graceful degradation: no pool, run in the calling domain *)
      Spt_obs.Metrics.inc m_degraded;
      let timed =
        Array.of_list
          (List.map
             (fun (work, _) ->
               let r, dt = timed_run work in
               (r, Some dt))
             items)
      in
      finish ~jobs:1 ~clusters:n_clusters ~degraded:true ~max_queue_depth:0 ~t0
        timed
    | pool ->
      let results = Array.make n None in
      let mu = Mutex.create () in
      (* one pool job per cluster: members run back to back on the same
         worker, so a member's artifact is already warm in the cache
         when its near-duplicates compile right after it *)
      List.iter
        (fun members ->
          Pool.submit pool (fun () ->
              List.iter
                (fun (i, work) ->
                  let r = timed_run work in
                  Mutex.lock mu;
                  (* a late worker must not resurrect a job already
                     declared timed out *)
                  (match results.(i) with
                  | None -> results.(i) <- Some r
                  | Some _ -> ());
                  Mutex.unlock mu)
                members))
        groups;
      let deadline = t0 +. timeout_s in
      let max_depth = ref (Pool.queued pool) in
      let incomplete () =
        Mutex.lock mu;
        let k =
          Array.fold_left (fun k r -> if r = None then k + 1 else k) 0 results
        in
        Mutex.unlock mu;
        k
      in
      while incomplete () > 0 && Unix.gettimeofday () < deadline do
        let d = Pool.queued pool in
        if d > !max_depth then max_depth := d;
        Spt_obs.Metrics.set g_queue (float_of_int d);
        Unix.sleepf 0.01
      done;
      Spt_obs.Metrics.set g_queue 0.0;
      Mutex.lock mu;
      let any_timeout = ref false in
      Array.iteri
        (fun i r ->
          if r = None then begin
            any_timeout := true;
            results.(i) <- Some (Timed_out, nan)
          end)
        results;
      Mutex.unlock mu;
      (* join only when everything finished: [Pool.shutdown] drains the
         queue and waits for running jobs, which would nullify the
         timeout.  An abandoned pool's domains die with the process. *)
      if not !any_timeout then Pool.shutdown pool;
      finish ~jobs ~clusters:n_clusters ~degraded:false
        ~max_queue_depth:!max_depth ~t0
        (Array.map
           (function
             | Some (Timed_out, _) | None -> (Timed_out, None)
             | Some (r, dt) -> (r, Some dt))
           results)

let run ?jobs ?timeout_s thunks =
  run_clustered ?jobs ?timeout_s (List.map (fun w -> (w, [])) thunks)
