(** The memoized compilation entry point every service front end
    ([sptc compile]/[batch]/[serve]) goes through.

    The cache key is {!Fingerprint.key} over the lowered IR of the
    source (so whitespace/comment edits still hit) plus the full
    {!Spt_driver.Config.cache_key} and {!tool_version} (so a knob
    change or a compiler upgrade misses).  The cached payload carries
    everything a warm request must replay byte-identically: the
    {!Spt_driver.Report.eval_json} object, the rendered
    {!Spt_driver.Report.compile_text}, and the per-loop partition
    artifacts (decision, optimal cost, pre-fork size) of pass 1/2. *)

(** Mixed into every cache key; bump on releases that change analysis
    results so stale artifacts become misses rather than lies. *)
val tool_version : string

(** Version of the cached payload envelope; a payload under a different
    version is recompiled. *)
val payload_schema : string

type outcome = {
  key : string;  (** the content-addressed cache key *)
  hit : bool;
  eval : Spt_obs.Json.t;  (** {!Spt_driver.Report.eval_json} payload *)
  report_text : string;  (** {!Spt_driver.Report.compile_text} output *)
  elapsed_s : float;  (** this request's latency, warm or cold *)
  profile_gen : int option;
      (** generation of the profile-database entry that guided this
          compile, when the profile came from automatic lookup (never
          set for an explicit [?profile]) *)
}

(** The cache key [compile] would use for [source] under [config] —
    exposed for tests and for request de-duplication.  A non-empty
    [profile] store folds its digest into the key
    ({!Spt_driver.Config.cache_key}); an empty one keys as no store. *)
val key_of :
  config:Spt_driver.Config.t ->
  ?profile:Spt_feedback.Profile_store.t ->
  string ->
  string

(** Compile [source] (displayed as [name]) under [config], through
    [cache].  A non-empty [profile] store seeds the compilation's
    profilers and injects its telemetry as feedback observations on the
    cold path (and keys warm hits separately from cold ones).

    With no explicit [profile], the profile database is consulted by
    the config-independent program fingerprint
    ({!Spt_profdb.Profdb.lookup}): a warmed fingerprint gets a guided
    compile with zero client changes, and the guiding store's digest
    still folds into the key, so guided and unguided artifacts never
    collide.  [profdb] overrides the database (servers pass their
    long-lived instance); the default is the database under [cache]'s
    directory, disabled when the cache is.

    Raises whatever the front end raises on invalid source; cache and
    database malfunctions never raise (they recompute / miss). *)
val compile :
  cache:Artifact_cache.t ->
  config:Spt_driver.Config.t ->
  ?profile:Spt_feedback.Profile_store.t ->
  ?profdb:Spt_profdb.Profdb.t ->
  name:string ->
  string ->
  outcome
