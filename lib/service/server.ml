(** Line-delimited JSON compile server — see server.mli. *)

module Json = Spt_obs.Json
module Pool = Spt_runtime.Pool
open Spt_driver

let m_requests = Spt_obs.Metrics.counter "service.server.requests"
let m_errors = Spt_obs.Metrics.counter "service.server.errors"
let m_timeouts = Spt_obs.Metrics.counter "service.server.timeouts"
let m_overloaded = Spt_obs.Metrics.counter "service.server.overloaded"
let m_coalesced = Spt_obs.Metrics.counter "service.server.coalesced"
let h_latency = Spt_obs.Metrics.histogram "service.server.request_latency_s"

let protocol_version = 2

(* one dispatched compile: the leader request plus every identical
   request that arrived while it was in flight (single-flight
   coalescing — followers reuse the leader's reply body) *)
type pending = {
  p_leader : Json.t option;  (** leader's ["id"], echoed back *)
  mutable p_followers : Json.t option list;  (** reverse attach order *)
  p_deadline : float option;
  mutable p_done : bool;  (** a reply for this work has been emitted *)
}

type t = {
  cache : Artifact_cache.t;
  profdb : Spt_profdb.Profdb.t;
      (* the fleet profile database under the cache dir: consulted on
         every compile, fed by every workload run *)
  engine : Spt_exec.Engine.kind option;
      (* server-wide default engine; a request's own "engine" field wins *)
  jobs : int;
  queue_max : int;
  timeout_s : float option;
  (* [mu] guards the stats: counters and the latency histogram (kept
     locally so [stats] works even with the global registry disabled) *)
  mu : Mutex.t;
  mutable requests : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable overloaded : int;
  mutable coalesced : int;
  latency : Spt_obs.Metrics.Hist.t;
  (* [smu] guards the dispatch state of the concurrent serve loop:
     the single-flight table and the in-flight count.  Never held
     while [mu] is — both are leaves *)
  smu : Mutex.t;
  scond : Condition.t;
  pending : (string, pending) Hashtbl.t;
  mutable inflight : int;
}

let create ?cache ?profdb ?engine ?(jobs = 1) ?(queue_max = 64) ?timeout_s () =
  let cache =
    match cache with Some c -> c | None -> Artifact_cache.create ()
  in
  {
    cache;
    profdb =
      (match profdb with
      | Some db -> db
      | None ->
        Spt_profdb.Profdb.for_cache ~tool:Cached.tool_version
          (Artifact_cache.dir cache));
    engine;
    jobs = max 1 jobs;
    queue_max = max 1 queue_max;
    timeout_s;
    mu = Mutex.create ();
    requests = 0;
    errors = 0;
    timeouts = 0;
    overloaded = 0;
    coalesced = 0;
    latency = Spt_obs.Metrics.Hist.create ();
    smu = Mutex.create ();
    scond = Condition.create ();
    pending = Hashtbl.create 16;
    inflight = 0;
  }

let jobs t = t.jobs

let describe_error = function
  | Spt_srclang.Lexer.Lex_error (msg, loc) ->
    Format.asprintf "lexical error at %a: %s" Spt_srclang.Ast.pp_loc loc msg
  | Spt_srclang.Parser.Parse_error (msg, loc) ->
    Format.asprintf "syntax error at %a: %s" Spt_srclang.Ast.pp_loc loc msg
  | Spt_srclang.Typecheck.Type_error (msg, loc) ->
    Format.asprintf "type error at %a: %s" Spt_srclang.Ast.pp_loc loc msg
  | Spt_ir.Lower.Lower_error msg -> "lowering error: " ^ msg
  | Spt_interp.Interp.Runtime_error msg -> "runtime error: " ^ msg
  | Sys_error msg -> msg
  | Invalid_argument msg -> msg
  | e -> Printexc.to_string e

let str_member k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* optional "depth" field: a forced speculation depth for the compile's
   cost pricing and (on "run":true) the runtime's in-flight window *)
let depth_of_req req =
  match Json.member "depth" req with
  | None -> None
  | Some (Json.Int k) when k >= 1 -> Some k
  | Some _ -> invalid_arg "depth must be a positive integer" (* -> error reply *)

let config_of t req =
  let c =
    match str_member "config" req with
    | None -> Config.best
    | Some name -> Config.by_name name (* Invalid_argument -> error reply *)
  in
  let c =
    match str_member "engine" req with
    | Some s -> (
      match Spt_exec.Engine.kind_of_string s with
      | Ok k -> { c with Config.engine = k }
      | Error msg -> invalid_arg msg (* -> error reply *))
    | None -> (
      match t.engine with
      | Some k -> { c with Config.engine = k }
      | None -> c)
  in
  match depth_of_req req with
  | Some k -> { c with Config.depth = Some k }
  | None -> c

(* ------------------------------------------------------------------ *)
(* Thread-safe counting.  [handle] may run concurrently on pool worker
   domains, so every [t] mutation goes through [t.mu]. *)

let count_request t =
  Mutex.lock t.mu;
  t.requests <- t.requests + 1;
  Mutex.unlock t.mu;
  Spt_obs.Metrics.inc m_requests

let count_error t =
  Mutex.lock t.mu;
  t.errors <- t.errors + 1;
  Mutex.unlock t.mu;
  Spt_obs.Metrics.inc m_errors

let observe t dt =
  Mutex.lock t.mu;
  Spt_obs.Metrics.Hist.observe t.latency dt;
  Spt_obs.Metrics.observe h_latency dt;
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)

let compile_reply ~op ~name ?depth (o : Cached.outcome) =
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("op", Json.Str op);
       ("name", Json.Str name);
       ("key", Json.Str o.Cached.key);
       ("cache_hit", Json.Bool o.Cached.hit);
       ("elapsed_s", Json.Float o.Cached.elapsed_s);
       ("report_text", Json.Str o.Cached.report_text);
       ("eval", o.Cached.eval);
     ]
    (* echoed only when the request forced a depth, so pre-depth
       clients see byte-identical replies *)
    @ (match depth with Some k -> [ ("depth", Json.Int k) ] | None -> [])
    @
    (* only present when the profile database guided the compile, so
       pre-profdb clients see byte-identical replies *)
    match o.Cached.profile_gen with
    | Some g -> [ ("profdb_gen", Json.Int g) ]
    | None -> [])

let stats_reply t =
  Mutex.lock t.mu;
  let counts =
    [
      ("requests", Json.Int t.requests);
      ("errors", Json.Int t.errors);
      ("timeouts", Json.Int t.timeouts);
      ("overloaded", Json.Int t.overloaded);
      ("coalesced", Json.Int t.coalesced);
    ]
  and latency = Spt_obs.Metrics.Hist.to_json t.latency in
  Mutex.unlock t.mu;
  Mutex.lock t.smu;
  let inflight = t.inflight in
  Mutex.unlock t.smu;
  Json.Obj
    (("ok", Json.Bool true) :: ("op", Json.Str "stats") :: counts
    @ [
        ("jobs", Json.Int t.jobs);
        ("queue_max", Json.Int t.queue_max);
        ("in_flight", Json.Int inflight);
        ( "timeout_s",
          match t.timeout_s with Some s -> Json.Float s | None -> Json.Null );
        ("cache", Artifact_cache.stats_json t.cache);
        ("profdb", Spt_profdb.Profdb.stats_json t.profdb);
        ("latency_s", latency);
      ])

(* compute the reply body for one decoded request — everything except
   the "id" echo and the "proto" tag, which [finalize] adds.  Never
   raises; never counts a request (callers do, at ingest). *)
let reply_of t req =
  let err msg =
    count_error t;
    Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
  in
  let timed_compile ~op ~name ~source =
    let t0 = Unix.gettimeofday () in
    (* optional persistent profile store; a missing or corrupt file
       loads as the empty store, i.e. an unguided compile *)
    let profile =
      Option.map Spt_feedback.Profile_store.load (str_member "profile" req)
    in
    let reply =
      match
        Cached.compile ~cache:t.cache ~config:(config_of t req) ?profile
          ~profdb:t.profdb ~name source
      with
      (* depth_of_req cannot raise here: config_of already ran it *)
      | o -> compile_reply ~op ~name ?depth:(depth_of_req req) o
      | exception e -> err (describe_error e)
    in
    observe t (Unix.gettimeofday () -. t0);
    reply
  in
  (* a workload request with "run":true executes the compilation on
     the speculative runtime and ingests the observed misspeculation
     telemetry back into the profile database — the write half of the
     fleet feedback loop (compiles are the read half) *)
  let timed_run ~name ~source =
    let t0 = Unix.gettimeofday () in
    let reply =
      match
        let config = config_of t req in
        let jobs =
          match Json.member "jobs" req with
          | Some (Json.Int n) -> max 1 n
          | _ -> 1
        in
        let fingerprint = Fingerprint.program (Pipeline.front_end source) in
        let profile, gen_in =
          match
            Option.map Spt_feedback.Profile_store.load
              (str_member "profile" req)
          with
          | Some _ as p -> (p, None)
          | None -> (
            match Spt_profdb.Profdb.lookup t.profdb ~fingerprint with
            | Some (s, g) when not (Spt_feedback.Profile_store.is_empty s) ->
              (Some s, Some g)
            | Some _ | None -> (None, None))
        in
        let profile_seed, observations =
          match profile with
          | Some p when not (Spt_feedback.Profile_store.is_empty p) ->
            ( Some (Spt_feedback.Profile_store.seed p),
              Some (Spt_feedback.Telemetry.observations p) )
          | Some _ | None -> (None, None)
        in
        let runtime_config =
          { (Spt_runtime.Runtime.default_config ()) with oracle = false }
        in
        let pr =
          Pipeline.run_parallel ~config ~jobs ~runtime_config ?profile_seed
            ?observations source
        in
        let fresh = Spt_feedback.Profile_store.empty () in
        Spt_feedback.Telemetry.record fresh pr.Pipeline.pr_spt
          pr.Pipeline.pr_runtime;
        (pr, gen_in, Spt_profdb.Profdb.ingest t.profdb ~fingerprint fresh)
      with
      | pr, gen_in, gen_out ->
        Json.Obj
          ([
             ("ok", Json.Bool true);
             ("op", Json.Str "workload");
             ("name", Json.Str name);
             ("run", Json.Bool true);
             ("jobs", Json.Int pr.Pipeline.pr_jobs);
             ("n_spt_loops", Json.Int pr.Pipeline.pr_n_loops);
             ( "measured_speedup",
               Json.Float pr.Pipeline.pr_measured_speedup );
             ("guided", Json.Bool (gen_in <> None));
             ("runtime", Spt_runtime.Runtime.stats_json pr.Pipeline.pr_runtime);
           ]
          (* echoed only when the request forced a depth (pr_depth is
             [None] otherwise), keeping pre-depth replies byte-identical *)
          @ (match pr.Pipeline.pr_depth with
            | Some k -> [ ("depth", Json.Int k) ]
            | None -> [])
          @ (match gen_in with
            | Some g -> [ ("profdb_gen_in", Json.Int g) ]
            | None -> [])
          @
          match gen_out with
          | Some g -> [ ("profdb_gen", Json.Int g) ]
          | None -> [])
      | exception e -> err (describe_error e)
    in
    observe t (Unix.gettimeofday () -. t0);
    reply
  in
  match str_member "op" req with
  | Some "compile" -> (
    match (str_member "source" req, str_member "file" req) with
    | None, None -> err "compile: need a \"source\" or \"file\" field"
    | Some _, Some _ -> err "compile: \"source\" and \"file\" are exclusive"
    | Some source, None ->
      let name = Option.value ~default:"<inline>" (str_member "name" req) in
      timed_compile ~op:"compile" ~name ~source
    | None, Some file -> (
      let name =
        Option.value ~default:(Filename.basename file) (str_member "name" req)
      in
      match read_file file with
      | source -> timed_compile ~op:"compile" ~name ~source
      | exception Sys_error msg -> err msg))
  | Some "workload" -> (
    match str_member "name" req with
    | None -> err "workload: need a \"name\" field"
    | Some name -> (
      match
        List.find_opt
          (fun w -> w.Spt_workloads.Suite.name = name)
          Spt_workloads.Suite.all
      with
      | None -> err (Printf.sprintf "workload: unknown workload %S" name)
      | Some w ->
        let source = w.Spt_workloads.Suite.source in
        if Json.member "run" req = Some (Json.Bool true) then
          timed_run ~name ~source
        else timed_compile ~op:"workload" ~name ~source))
  | Some "stats" -> stats_reply t
  | Some "shutdown" ->
    Json.Obj [ ("ok", Json.Bool true); ("op", Json.Str "shutdown") ]
  | Some op -> err (Printf.sprintf "unknown op %S" op)
  | None -> err "request must be an object with an \"op\" field"

let with_id_opt id reply =
  match id with Some id -> Json.prepend ("id", id) reply | None -> reply

let proto_tag reply = Json.prepend ("proto", Json.Int protocol_version) reply
let finalize req reply = with_id_opt (Json.member "id" req) (proto_tag reply)

let handle t req =
  count_request t;
  let reply = finalize req (reply_of t req) in
  match str_member "op" req with
  | Some "shutdown" -> `Shutdown reply
  | _ -> `Reply reply

let handle_line t line =
  let result =
    match Json.of_string line with
    | Ok req -> handle t req
    | Error msg ->
      count_request t;
      count_error t;
      `Reply
        (proto_tag
           (Json.Obj
              [
                ("ok", Json.Bool false); ("error", Json.Str ("bad JSON: " ^ msg));
              ]))
  in
  match result with
  | `Reply j -> `Reply (Json.to_string ~minify:true j)
  | `Shutdown j -> `Shutdown (Json.to_string ~minify:true j)

(* ------------------------------------------------------------------ *)
(* Serve loops *)

let serve_sequential t ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
      match handle_line t line with
      | `Reply out ->
        emit out;
        loop ()
      | `Shutdown out -> emit out)
  in
  loop ()

(* single-flight key: the request minus its "id" — two requests that
   differ only in correlation id are the same work *)
let coalesce_key req =
  Json.to_string ~minify:true
    (match req with
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> not (String.equal k "id")) fields)
    | j -> j)

let async_op req =
  match str_member "op" req with
  | Some ("compile" | "workload") -> true
  | _ -> false

let serve_concurrent t pool ic oc =
  let wmu = Mutex.create () in
  let emit j =
    let line = Json.to_string ~minify:true j in
    Mutex.lock wmu;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock wmu
  in
  (* wait until every accepted request has had its reply emitted *)
  let drain () =
    Mutex.lock t.smu;
    while t.inflight > 0 do
      Condition.wait t.scond t.smu
    done;
    Mutex.unlock t.smu
  in
  (* watchdog domain: emits timeout error replies for overdue pending
     records.  The timed-out pool job keeps running (domains cannot be
     preempted) but finds [p_done] set and stays silent — exactly one
     reply per request id either way. *)
  let wd_stop = Atomic.make false in
  let watchdog =
    match t.timeout_s with
    | None -> None
    | Some timeout ->
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get wd_stop) do
               Unix.sleepf 0.005;
               let now = Unix.gettimeofday () in
               Mutex.lock t.smu;
               let expired =
                 Hashtbl.fold
                   (fun key p acc ->
                     match p.p_deadline with
                     | Some d when now > d && not p.p_done -> (key, p) :: acc
                     | _ -> acc)
                   t.pending []
               in
               (* mark done under the lock so the racing worker stays
                  silent, but only count the request as drained after
                  its reply is on the wire — [drain] must not let the
                  shutdown ack overtake a timeout reply *)
               List.iter
                 (fun (key, p) ->
                   p.p_done <- true;
                   Hashtbl.remove t.pending key)
                 expired;
               Mutex.unlock t.smu;
               List.iter
                 (fun (_, p) ->
                   let ids = p.p_leader :: List.rev p.p_followers in
                   let n = List.length ids in
                   Mutex.lock t.mu;
                   t.timeouts <- t.timeouts + n;
                   t.errors <- t.errors + n;
                   Mutex.unlock t.mu;
                   Spt_obs.Metrics.add m_timeouts n;
                   Spt_obs.Metrics.add m_errors n;
                   let body =
                     Json.Obj
                       [
                         ("ok", Json.Bool false);
                         ( "error",
                           Json.Str
                             (Printf.sprintf "request timed out after %gs"
                                timeout) );
                         ("code", Json.Str "timeout");
                       ]
                   in
                   List.iter
                     (fun id -> emit (with_id_opt id (proto_tag body)))
                     ids)
                 expired;
               if expired <> [] then begin
                 Mutex.lock t.smu;
                 t.inflight <- t.inflight - List.length expired;
                 Condition.signal t.scond;
                 Mutex.unlock t.smu
               end
             done))
  in
  let dispatch req =
    count_request t;
    let key = coalesce_key req in
    let id = Json.member "id" req in
    Mutex.lock t.smu;
    let action =
      match Hashtbl.find_opt t.pending key with
      | Some p ->
        (* identical work already in flight: attach, reuse its reply *)
        p.p_followers <- id :: p.p_followers;
        `Attached
      | None ->
        if t.inflight >= t.queue_max then `Overloaded
        else begin
          let p =
            {
              p_leader = id;
              p_followers = [];
              p_deadline =
                Option.map (fun s -> Unix.gettimeofday () +. s) t.timeout_s;
              p_done = false;
            }
          in
          Hashtbl.replace t.pending key p;
          t.inflight <- t.inflight + 1;
          `Run p
        end
    in
    Mutex.unlock t.smu;
    match action with
    | `Attached -> ()
    | `Overloaded ->
      Mutex.lock t.mu;
      t.overloaded <- t.overloaded + 1;
      t.errors <- t.errors + 1;
      Mutex.unlock t.mu;
      Spt_obs.Metrics.inc m_overloaded;
      Spt_obs.Metrics.inc m_errors;
      emit
        (with_id_opt id
           (proto_tag
              (Json.Obj
                 [
                   ("ok", Json.Bool false);
                   ( "error",
                     Json.Str
                       (Printf.sprintf
                          "server overloaded: %d requests in flight" t.queue_max)
                   );
                   ("code", Json.Str "overloaded");
                 ])))
    | `Run p ->
      Pool.submit pool (fun () ->
          let body =
            try reply_of t req
            with e ->
              count_error t;
              Json.Obj
                [ ("ok", Json.Bool false); ("error", Json.Str (describe_error e)) ]
          in
          Mutex.lock t.smu;
          let finish =
            if p.p_done then None
            else begin
              (* claim the reply under the lock; the in-flight count
                 drops only once the replies are on the wire, so
                 [drain] (and the shutdown ack behind it) cannot
                 overtake them *)
              p.p_done <- true;
              Hashtbl.remove t.pending key;
              Some (p.p_leader, List.rev p.p_followers)
            end
          in
          Mutex.unlock t.smu;
          match finish with
          | None -> () (* timed out; the watchdog already replied *)
          | Some (leader, followers) ->
            emit (with_id_opt leader (proto_tag body));
            List.iter
              (fun fid ->
                Mutex.lock t.mu;
                t.coalesced <- t.coalesced + 1;
                Mutex.unlock t.mu;
                Spt_obs.Metrics.inc m_coalesced;
                emit
                  (with_id_opt fid
                     (proto_tag (Json.prepend ("coalesced", Json.Bool true) body))))
              followers;
            Mutex.lock t.smu;
            t.inflight <- t.inflight - 1;
            Condition.signal t.scond;
            Mutex.unlock t.smu)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
      match Json.of_string line with
      | Error msg ->
        count_request t;
        count_error t;
        emit
          (proto_tag
             (Json.Obj
                [
                  ("ok", Json.Bool false);
                  ("error", Json.Str ("bad JSON: " ^ msg));
                ]));
        loop ()
      | Ok req ->
        if async_op req then begin
          dispatch req;
          loop ()
        end
        else begin
          match handle t req with
          | `Reply j ->
            emit j;
            loop ()
          | `Shutdown j ->
            (* the ack is the last reply: everything accepted before
               the shutdown drains first *)
            drain ();
            emit j
        end)
  in
  loop ();
  drain ();
  Atomic.set wd_stop true;
  Option.iter Domain.join watchdog;
  Pool.shutdown pool

let serve t ic oc =
  Spt_obs.Log.info "serve: listening on stdin (cache %s, jobs %d)"
    (match Artifact_cache.dir t.cache with
    | Some d -> d
    | None -> "disabled")
    t.jobs;
  if t.jobs <= 1 then serve_sequential t ic oc
  else
    match Pool.create ~jobs:t.jobs () with
    | pool -> serve_concurrent t pool ic oc
    | exception _ ->
      (* cannot spawn domains here: degrade to the sequential loop
         rather than refuse service *)
      Spt_obs.Log.warn "serve: domain pool unavailable, serving sequentially";
      serve_sequential t ic oc
