(** Line-delimited JSON compile server — see server.mli. *)

module Json = Spt_obs.Json
open Spt_driver

let m_requests = Spt_obs.Metrics.counter "service.server.requests"
let m_errors = Spt_obs.Metrics.counter "service.server.errors"
let h_latency = Spt_obs.Metrics.histogram "service.server.request_latency_s"

type t = {
  cache : Artifact_cache.t;
  engine : Spt_exec.Engine.kind option;
      (* server-wide default engine; a request's own "engine" field wins *)
  mutable requests : int;
  mutable errors : int;
  (* request-latency histogram, kept locally so [stats] works even with
     the global metrics registry disabled *)
  latency : Spt_obs.Metrics.Hist.t;
}

let create ?cache ?engine () =
  {
    cache = (match cache with Some c -> c | None -> Artifact_cache.create ());
    engine;
    requests = 0;
    errors = 0;
    latency = Spt_obs.Metrics.Hist.create ();
  }

let describe_error = function
  | Spt_srclang.Lexer.Lex_error (msg, loc) ->
    Format.asprintf "lexical error at %a: %s" Spt_srclang.Ast.pp_loc loc msg
  | Spt_srclang.Parser.Parse_error (msg, loc) ->
    Format.asprintf "syntax error at %a: %s" Spt_srclang.Ast.pp_loc loc msg
  | Spt_srclang.Typecheck.Type_error (msg, loc) ->
    Format.asprintf "type error at %a: %s" Spt_srclang.Ast.pp_loc loc msg
  | Spt_ir.Lower.Lower_error msg -> "lowering error: " ^ msg
  | Spt_interp.Interp.Runtime_error msg -> "runtime error: " ^ msg
  | Sys_error msg -> msg
  | Invalid_argument msg -> msg
  | e -> Printexc.to_string e

let str_member k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let config_of t req =
  let c =
    match str_member "config" req with
    | None -> Config.best
    | Some name -> Config.by_name name (* Invalid_argument -> error reply *)
  in
  match str_member "engine" req with
  | Some s -> (
    match Spt_exec.Engine.kind_of_string s with
    | Ok k -> { c with Config.engine = k }
    | Error msg -> invalid_arg msg (* -> error reply *))
  | None -> (
    match t.engine with
    | Some k -> { c with Config.engine = k }
    | None -> c)

let observe t dt =
  Spt_obs.Metrics.Hist.observe t.latency dt;
  Spt_obs.Metrics.observe h_latency dt

let compile_reply ~op ~name (o : Cached.outcome) =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str op);
      ("name", Json.Str name);
      ("key", Json.Str o.Cached.key);
      ("cache_hit", Json.Bool o.Cached.hit);
      ("elapsed_s", Json.Float o.Cached.elapsed_s);
      ("report_text", Json.Str o.Cached.report_text);
      ("eval", o.Cached.eval);
    ]

let stats_reply t =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "stats");
      ("requests", Json.Int t.requests);
      ("errors", Json.Int t.errors);
      ("cache", Artifact_cache.stats_json t.cache);
      ("latency_s", Spt_obs.Metrics.Hist.to_json t.latency);
    ]

let handle t req =
  t.requests <- t.requests + 1;
  Spt_obs.Metrics.inc m_requests;
  let err msg =
    t.errors <- t.errors + 1;
    Spt_obs.Metrics.inc m_errors;
    Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
  in
  let with_id reply =
    match Json.member "id" req with
    | Some id -> Json.prepend ("id", id) reply
    | None -> reply
  in
  let timed_compile ~op ~name ~source =
    let t0 = Unix.gettimeofday () in
    (* optional persistent profile store; a missing or corrupt file
       loads as the empty store, i.e. an unguided compile *)
    let profile =
      Option.map Spt_feedback.Profile_store.load (str_member "profile" req)
    in
    let reply =
      match
        Cached.compile ~cache:t.cache ~config:(config_of t req) ?profile ~name
          source
      with
      | o -> compile_reply ~op ~name o
      | exception e -> err (describe_error e)
    in
    observe t (Unix.gettimeofday () -. t0);
    reply
  in
  let reply =
    match str_member "op" req with
    | Some "compile" -> (
      match (str_member "source" req, str_member "file" req) with
      | None, None -> err "compile: need a \"source\" or \"file\" field"
      | Some _, Some _ -> err "compile: \"source\" and \"file\" are exclusive"
      | Some source, None ->
        let name = Option.value ~default:"<inline>" (str_member "name" req) in
        timed_compile ~op:"compile" ~name ~source
      | None, Some file -> (
        let name =
          Option.value ~default:(Filename.basename file)
            (str_member "name" req)
        in
        match read_file file with
        | source -> timed_compile ~op:"compile" ~name ~source
        | exception Sys_error msg -> err msg))
    | Some "workload" -> (
      match str_member "name" req with
      | None -> err "workload: need a \"name\" field"
      | Some name -> (
        match
          List.find_opt
            (fun w -> w.Spt_workloads.Suite.name = name)
            Spt_workloads.Suite.all
        with
        | None -> err (Printf.sprintf "workload: unknown workload %S" name)
        | Some w ->
          timed_compile ~op:"workload" ~name
            ~source:w.Spt_workloads.Suite.source))
    | Some "stats" -> stats_reply t
    | Some "shutdown" -> Json.Obj [ ("ok", Json.Bool true); ("op", Json.Str "shutdown") ]
    | Some op -> err (Printf.sprintf "unknown op %S" op)
    | None -> err "request must be an object with an \"op\" field"
  in
  match str_member "op" req with
  | Some "shutdown" -> `Shutdown (with_id reply)
  | _ -> `Reply (with_id reply)

let handle_line t line =
  let result =
    match Json.of_string line with
    | Ok req -> handle t req
    | Error msg ->
      t.requests <- t.requests + 1;
      t.errors <- t.errors + 1;
      Spt_obs.Metrics.inc m_requests;
      Spt_obs.Metrics.inc m_errors;
      `Reply
        (Json.Obj
           [ ("ok", Json.Bool false); ("error", Json.Str ("bad JSON: " ^ msg)) ])
  in
  match result with
  | `Reply j -> `Reply (Json.to_string ~minify:true j)
  | `Shutdown j -> `Shutdown (Json.to_string ~minify:true j)

let serve t ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
      match handle_line t line with
      | `Reply out ->
        emit out;
        loop ()
      | `Shutdown out -> emit out)
  in
  Spt_obs.Log.info "serve: listening on stdin (cache %s)"
    (match Artifact_cache.dir t.cache with
    | Some d -> d
    | None -> "disabled");
  loop ()
