(** [sptc serve] — a line-delimited JSON request/response loop over the
    warm {!Artifact_cache}, so repeated compiles of the same source are
    served from memoized artifacts.

    One request per line, one minified-JSON reply per line.  Requests
    are objects with an ["op"] field; an optional ["id"] field is
    echoed into the reply for client-side correlation:

    - [{"op":"compile","source":SRC}] or [{"op":"compile","file":PATH}]
      — optional ["config"] (default "best"), ["engine"] ("tree" or
      "bytecode", overriding the server default) and ["name"]; replies
      with [cache_hit], the cache [key], [elapsed_s], the report text
      and the full eval JSON.
    - [{"op":"workload","name":N}] — compile a built-in workload.
    - [{"op":"stats"}] — request/error counts, cache hit/miss/rate and
      the request-latency histogram.
    - [{"op":"shutdown"}] — acknowledge and end the loop.

    Malformed lines, unknown ops, missing fields and compile errors all
    produce [{"ok":false,"error":…}] replies and keep the loop alive —
    the server only stops on ["shutdown"] or end of input. *)

type t

(** [engine] overrides the execution engine of every resolved
    configuration (a request's own ["engine"] field wins over it). *)
val create : ?cache:Artifact_cache.t -> ?engine:Spt_exec.Engine.kind -> unit -> t

(** Handle one decoded request. *)
val handle : t -> Spt_obs.Json.t -> [ `Reply of Spt_obs.Json.t | `Shutdown of Spt_obs.Json.t ]

(** Handle one raw request line (parse + {!handle} + minify). *)
val handle_line : t -> string -> [ `Reply of string | `Shutdown of string ]

(** Run the loop until ["shutdown"] or EOF.  Replies are flushed after
    every line. *)
val serve : t -> in_channel -> out_channel -> unit
