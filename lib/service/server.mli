(** [sptc serve] — a line-delimited JSON request/response loop over the
    warm {!Artifact_cache}, so repeated compiles of the same source are
    served from memoized artifacts.

    One request per line, one minified-JSON reply per line.  Requests
    are objects with an ["op"] field; an optional ["id"] field is
    echoed verbatim into the reply for client-side correlation (with
    concurrent serving replies arrive out of order, so clients that
    pipeline must send ids).  Every reply carries
    ["proto":{!protocol_version}].

    - [{"op":"compile","source":SRC}] or [{"op":"compile","file":PATH}]
      — optional ["config"] (default "best"), ["engine"] ("tree" or
      "bytecode", overriding the server default), ["depth"] (a positive
      integer forcing the speculation depth — priced into the compile
      and echoed back; invalid values are rejected), ["profile"] (path
      to a profile store for guided compilation) and ["name"]; replies
      with [cache_hit], the cache [key], [elapsed_s], the report text
      and the full eval JSON.
    - [{"op":"workload","name":N}] — compile a built-in workload.
      With ["run":true] (optional ["jobs"] and ["depth"]), the
      compilation is also executed on the speculative runtime and its
      misspeculation telemetry ingested into the profile database — the
      reply carries the measured speedup, runtime stats, ["guided"] and
      the entry's new ["profdb_gen"], plus the forced ["depth"] when
      the request carried one.
    - [{"op":"stats"}] — request/error/timeout/overloaded/coalesced
      counts, concurrency settings, in-flight depth, cache
      hit/miss/rate, the profile-database census ([spt-profdb-v1])
      and the request-latency histogram.
    - [{"op":"shutdown"}] — drain in-flight work, then acknowledge
      (the ack is the final reply) and end the loop.

    Malformed lines, unknown ops, missing fields and compile errors all
    produce [{"ok":false,"error":…}] replies and keep the loop alive —
    the server only stops on ["shutdown"] or end of input.

    {b Concurrency.}  With [jobs > 1], {!serve} dispatches compile and
    workload requests onto a {!Spt_runtime.Pool} of worker domains and
    keeps reading; other ops are answered inline.  Three mechanisms
    bound the work:

    - {e backpressure} — past [queue_max] requests in flight, new work
      is refused immediately with an [{"ok":false,"code":"overloaded"}]
      reply instead of queueing without bound;
    - {e per-request timeouts} — with [timeout_s] set, a watchdog
      domain emits [{"ok":false,"code":"timeout"}] for requests that
      exceed it (the abandoned computation still completes on its
      worker but its reply is suppressed — exactly one reply per id);
    - {e single-flight coalescing} — a request identical to one already
      in flight (same JSON minus ["id"]) attaches to it and receives a
      copy of its reply marked ["coalesced":true], so a thundering herd
      of identical compiles does the work once.

    All [t] state is mutex-guarded; {!handle} and {!handle_line} are
    safe to call from multiple domains concurrently. *)

(** Serve-protocol version, echoed as ["proto"] in every reply.
    Version 2 added [proto], [coalesced] and the
    [overloaded]/[timeout] error codes. *)
val protocol_version : int

type t

(** [engine] overrides the execution engine of every resolved
    configuration (a request's own ["engine"] field wins over it).
    [jobs] (default 1 = sequential) sets the worker-domain count for
    {!serve}; [queue_max] (default 64) the in-flight high-water mark;
    [timeout_s] (default none) the per-request timeout.  [profdb]
    (default: the database under the cache's directory, disabled when
    the cache is) is consulted on every compile without an explicit
    ["profile"] and fed by every ["run":true] workload. *)
val create :
  ?cache:Artifact_cache.t ->
  ?profdb:Spt_profdb.Profdb.t ->
  ?engine:Spt_exec.Engine.kind ->
  ?jobs:int ->
  ?queue_max:int ->
  ?timeout_s:float ->
  unit ->
  t

val jobs : t -> int

(** Handle one decoded request.  Thread-safe. *)
val handle :
  t -> Spt_obs.Json.t -> [ `Reply of Spt_obs.Json.t | `Shutdown of Spt_obs.Json.t ]

(** Handle one raw request line (parse + {!handle} + minify).
    Thread-safe. *)
val handle_line : t -> string -> [ `Reply of string | `Shutdown of string ]

(** Run the loop until ["shutdown"] or EOF, then drain, stop the
    watchdog and shut the pool down.  Replies are flushed after every
    line; with [jobs > 1] they may interleave in completion order. *)
val serve : t -> in_channel -> out_channel -> unit
