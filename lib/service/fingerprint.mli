(** Canonical, layout-independent digests of IR — the content half of
    an artifact-cache key.

    Two sources that differ only in whitespace, comments or other
    concrete-syntax noise lower to the same IR and therefore share a
    digest; the serialization additionally renumbers basic blocks in
    control-flow (DFS preorder) order and drops instruction ids, so the
    digest survives allocation-order drift in block/instruction id
    generators and never depends on [Hashtbl] iteration order.

    Digests are 32-character lowercase hex strings. *)

(** Version tag mixed into every digest; bump when the canonical
    serialization changes so stale on-disk artifacts become misses. *)
val schema : string

(** Digest of one function. *)
val func : Spt_ir.Ir.func -> string

(** Digest of a whole program: globals plus every function, functions
    sorted by name. *)
val program : Spt_ir.Ir.program -> string

(** The cache key for compiling [program] under a configuration:
    [key ~config_key prog] mixes {!schema}, the configuration token
    (see {!Spt_driver.Config.cache_key}) and the program digest. *)
val key : config_key:string -> Spt_ir.Ir.program -> string
