(** Content-addressed store for compilation artifacts.

    Entries are JSON payloads keyed by a {!Fingerprint} digest and kept
    in two layers: an in-memory table (per process) and an on-disk
    directory shared across processes ([$SPT_CACHE_DIR], else
    [$XDG_CACHE_HOME/spt], else [~/.cache/spt]; overridable per cache
    with [create ~dir]).

    The store is *never* a source of failure: disk entries are written
    atomically (write-temp-then-rename), and a corrupt, truncated,
    unreadable or schema-mismatched entry simply reads as a miss.
    Every entry additionally carries a content digest of its canonical
    payload rendering, recomputed on load — corruption that still
    parses as JSON (a flipped byte inside a value, manual edits) is
    rejected the same way instead of replaying a wrong artifact.  All
    operations are safe to call concurrently from multiple domains
    (the {!Batch} scheduler does). *)

(** On-disk entry format version; entries written under a different
    schema are misses.  Bump when the envelope changes. *)
val schema : string

type t

(** The resolved default directory ([$SPT_CACHE_DIR] >
    [$XDG_CACHE_HOME/spt] > [~/.cache/spt]). *)
val default_dir : unit -> string

(** A live cache persisting under [dir] (default {!default_dir}). *)
val create : ?dir:string -> unit -> t

(** A disabled cache: [find] always misses without counting, [store]
    is a no-op — the [--no-cache] object. *)
val no_cache : unit -> t

val enabled : t -> bool

(** The backing directory, when enabled. *)
val dir : t -> string option

(** Look [key] up, memory first, then disk (a disk hit is promoted to
    memory).  Counts a hit or a miss unless the cache is disabled. *)
val find : t -> string -> Spt_obs.Json.t option

(** Bind [key] to [payload] in memory and on disk.  Disk errors are
    swallowed (counted on [service.cache.disk_errors]). *)
val store : t -> string -> Spt_obs.Json.t -> unit

type stats = { hits : int; misses : int; stores : int }

val stats : t -> stats

(** [{"enabled":…,"dir":…,"hits":…,"misses":…,"stores":…,"hit_rate":…}] *)
val stats_json : t -> Spt_obs.Json.t
