(** Content-addressed store for compilation artifacts.

    Entries are JSON payloads keyed by a {!Fingerprint} digest and kept
    in two layers: an in-memory table (per process) and an on-disk
    directory shared across processes ([$SPT_CACHE_DIR], else
    [$XDG_CACHE_HOME/spt], else [~/.cache/spt]; overridable per cache
    with [create ~dir]).

    On disk, entries fan out over [shards] subdirectories keyed by the
    leading byte of the fingerprint (uniform, since keys are content
    hashes) so a hot cache never piles thousands of files into one
    directory.  A cache may be bounded ([max_bytes] and/or
    [max_entries]); when a store would exceed a bound the
    least-recently-used entries are evicted {e first}, so the on-disk
    total never exceeds the bound, even transiently.  Recency and sizes
    are tracked in an atomically-written [index.json]; the index is
    purely a performance structure — if it is corrupt or missing it is
    rebuilt by scanning the shard directories.

    The store is *never* a source of failure: disk entries are written
    atomically (write-temp-then-rename), and a corrupt, truncated,
    unreadable or schema-mismatched entry simply reads as a miss.
    Every entry additionally carries a content digest of its canonical
    payload rendering, recomputed on load — corruption that still
    parses as JSON (a flipped byte inside a value, manual edits) is
    rejected the same way instead of replaying a wrong artifact.  All
    operations are safe to call concurrently from multiple domains
    (the {!Batch} scheduler and the concurrent {!Server} do). *)

(** On-disk entry format version; entries written under a different
    schema are misses.  Bump when the envelope or layout changes. *)
val schema : string

(** Schema tag of [index.json]. *)
val index_schema : string

type t

(** The resolved default directory ([$SPT_CACHE_DIR] >
    [$XDG_CACHE_HOME/spt] > [~/.cache/spt]). *)
val default_dir : unit -> string

(** Default shard fan-out (16). *)
val default_shards : int

(** A live cache persisting under [dir] (default {!default_dir}).
    [shards] (default {!default_shards}, clamped to ≥ 1) fixes the
    directory fan-out — all processes sharing a directory must agree on
    it.  [max_bytes]/[max_entries] bound the on-disk footprint; omitted
    means unbounded. *)
val create :
  ?dir:string -> ?shards:int -> ?max_bytes:int -> ?max_entries:int -> unit -> t

(** A disabled cache: [find] always misses without counting, [store]
    is a no-op — the [--no-cache] object. *)
val no_cache : unit -> t

val enabled : t -> bool

(** The backing directory, when enabled. *)
val dir : t -> string option

val shards : t -> int

(** Where [key]'s entry lives (or would live) on disk; [None] when the
    cache is disabled.  Exposed so tests and tools can corrupt or
    inspect specific entries without re-deriving the shard layout. *)
val file_path : t -> string -> string option

(** Look [key] up, memory first, then disk (a disk hit is promoted to
    memory and bumps the entry's recency).  Counts a hit or a miss
    unless the cache is disabled. *)
val find : t -> string -> Spt_obs.Json.t option

(** Bind [key] to [payload] in memory and on disk, evicting LRU entries
    first if a bound requires it.  A payload that alone exceeds
    [max_bytes] is kept in memory only.  Disk errors are swallowed
    (counted on [service.cache.disk_errors]). *)
val store : t -> string -> Spt_obs.Json.t -> unit

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;  (** live on-disk entries *)
  bytes : int;  (** their total on-disk size *)
}

val stats : t -> stats

(** [{"enabled":…,"dir":…,"shards":…,"hits":…,"misses":…,"stores":…,
    "evictions":…,"entries":…,"bytes":…,"max_bytes":…,"max_entries":…,
    "hit_rate":…}] *)
val stats_json : t -> Spt_obs.Json.t
