(** Memoized compilation — see cached.mli. *)

module Json = Spt_obs.Json
open Spt_driver

let tool_version = "1.6.0"
let payload_schema = "spt-artifact-v1"

let m_compiles = Spt_obs.Metrics.counter "service.compiles"
let m_warm = Spt_obs.Metrics.counter "service.compiles_warm"
let h_latency = Spt_obs.Metrics.histogram "service.compile_latency_s"

type outcome = {
  key : string;
  hit : bool;
  eval : Json.t;
  report_text : string;
  elapsed_s : float;
  profile_gen : int option;
}

(* a non-empty profile store changes analysis results, so its digest
   must be part of the key; an empty store behaves as no store *)
let profile_digest = function
  | Some p when not (Spt_feedback.Profile_store.is_empty p) ->
    Some (Spt_feedback.Profile_store.digest p)
  | Some _ | None -> None

let key_of_prog ~config ?profile prog =
  Fingerprint.key
    ~config_key:
      (Config.cache_key ?profile:(profile_digest profile) config
      ^ ";tool=" ^ tool_version)
    prog

let key_of ~config ?profile source =
  key_of_prog ~config ?profile (Pipeline.front_end source)

(* the per-loop artifacts of pass 1/2: what the partition search chose
   and what selection decided, one record per analyzed loop *)
let partition_artifacts (e : Pipeline.eval) =
  Json.List
    (List.map
       (fun (lr : Pipeline.loop_record) ->
         Json.Obj
           [
             ("func", Json.Str lr.Pipeline.lr_func);
             ("header", Json.Int lr.Pipeline.lr_header);
             ( "decision",
               match lr.Pipeline.lr_decision with
               | Pipeline.Selected -> Json.Str "selected"
               | Pipeline.Rejected r ->
                 Json.Str (Spt_transform.Select.string_of_reason r) );
             ( "cost",
               match lr.Pipeline.lr_cost with
               | Some c -> Json.Float c
               | None -> Json.Null );
             ( "prefork_size",
               match lr.Pipeline.lr_prefork_size with
               | Some s -> Json.Int s
               | None -> Json.Null );
             ("svp", Json.Bool lr.Pipeline.lr_svp);
           ])
       e.Pipeline.loops)

let compile ~cache ~config ?profile ?profdb ~name source =
  let t0 = Unix.gettimeofday () in
  Spt_obs.Metrics.inc m_compiles;
  let prog = Pipeline.front_end source in
  (* profile resolution: an explicit store always wins; with none, the
     profile database under the cache dir is consulted by the
     config-independent program fingerprint, so warm traffic gets
     guided compiles with zero client changes *)
  let profile, profile_gen =
    match profile with
    | Some _ as p -> (p, None)
    | None -> (
      let db =
        match profdb with
        | Some db -> db
        | None ->
          Spt_profdb.Profdb.for_cache ~tool:tool_version
            (Artifact_cache.dir cache)
      in
      match
        Spt_profdb.Profdb.lookup db ~fingerprint:(Fingerprint.program prog)
      with
      | Some (store, gen) when not (Spt_feedback.Profile_store.is_empty store)
        ->
        (Some store, Some gen)
      | Some _ | None -> (None, None))
  in
  let key = key_of_prog ~config ?profile prog in
  let finish hit eval report_text =
    let elapsed_s = Unix.gettimeofday () -. t0 in
    Spt_obs.Metrics.observe h_latency elapsed_s;
    if hit then Spt_obs.Metrics.inc m_warm;
    { key; hit; eval; report_text; elapsed_s; profile_gen }
  in
  let cold () =
    let profile_seed, observations =
      match profile with
      | Some p when not (Spt_feedback.Profile_store.is_empty p) ->
        ( Some (Spt_feedback.Profile_store.seed p),
          Some (Spt_feedback.Telemetry.observations p) )
      | Some _ | None -> (None, None)
    in
    let e = Pipeline.evaluate ~config ?profile_seed ?observations source in
    let eval = Report.eval_json ~name e in
    let report_text = Report.compile_text ~name e in
    Artifact_cache.store cache key
      (Json.Obj
         [
           ("schema", Json.Str payload_schema);
           ("name", Json.Str name);
           ("config", Json.Str config.Config.name);
           ("eval", eval);
           ("report_text", Json.Str report_text);
           ("partitions", partition_artifacts e);
         ]);
    finish false eval report_text
  in
  match Artifact_cache.find cache key with
  | Some payload
    when Json.member "schema" payload = Some (Json.Str payload_schema) -> (
    (* a payload that lost a field (manual edit, schema drift) is a
       miss, never an error *)
    match (Json.member "eval" payload, Json.member "report_text" payload) with
    | Some eval, Some (Json.Str report_text) -> finish true eval report_text
    | _ -> cold ())
  | Some _ | None -> cold ()
