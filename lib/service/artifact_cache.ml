(** Sharded, size-bounded content-addressed artifact store — see
    artifact_cache.mli. *)

module Json = Spt_obs.Json

let schema = "spt-cache-v2"
let index_schema = "spt-cache-index-v1"

(* process-wide counters (no-ops unless metrics are enabled); per-cache
   counts live in [t] so hit rates survive a disabled registry *)
let m_hits = Spt_obs.Metrics.counter "service.cache.hits"
let m_misses = Spt_obs.Metrics.counter "service.cache.misses"
let m_stores = Spt_obs.Metrics.counter "service.cache.stores"
let m_evictions = Spt_obs.Metrics.counter "service.cache.evictions"
let m_disk_errors = Spt_obs.Metrics.counter "service.cache.disk_errors"

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
  bytes : int;
}

(* one on-disk entry as the index tracks it: its size and a logical
   last-use tick (monotonic per cache instance) for LRU ordering *)
type dentry = { mutable d_bytes : int; mutable d_used : int }

type t = {
  cdir : string option;  (** [None] iff the cache is disabled *)
  shards : int;
  max_bytes : int option;
  max_entries : int option;
  mem : (string, Json.t) Hashtbl.t;
  disk : (string, dentry) Hashtbl.t;  (** the in-memory index image *)
  mutable disk_loaded : bool;
  mutable total_bytes : int;
  mutable tick : int;
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
}

let default_dir () =
  match Sys.getenv_opt "SPT_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
    let base =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> d
      | _ ->
        Filename.concat
          (Option.value ~default:"." (Sys.getenv_opt "HOME"))
          ".cache"
    in
    Filename.concat base "spt"

let default_shards = 16

let make ?(shards = default_shards) ?max_bytes ?max_entries cdir =
  {
    cdir;
    shards = max 1 shards;
    max_bytes;
    max_entries;
    mem = Hashtbl.create 64;
    disk = Hashtbl.create 64;
    disk_loaded = false;
    total_bytes = 0;
    tick = 0;
    mu = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
  }

let create ?dir ?shards ?max_bytes ?max_entries () =
  make ?shards ?max_bytes ?max_entries
    (Some (match dir with Some d -> d | None -> default_dir ()))

let no_cache () = make None
let enabled t = t.cdir <> None
let dir t = t.cdir
let shards t = t.shards

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ------------------------------------------------------------------ *)
(* Disk layer *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

(* keys are hex digests, but sanitize anyway: the key is data, never a
   path component we trust *)
let safe_key key =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    key

(* shard fan-out: the key's leading hex byte modulo the shard count, so
   a given key lands in the same shard directory in every process *)
let shard_of t key =
  let k = safe_key key in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | c -> Char.code c land 0xf
  in
  let b =
    match String.length k with
    | 0 -> 0
    | 1 -> hex k.[0]
    | _ -> (hex k.[0] * 16) + hex k.[1]
  in
  b mod t.shards

let root t = Option.map (fun d -> Filename.concat d schema) t.cdir

let file_of t key =
  match root t with
  | None -> None
  | Some r ->
    Some
      (Filename.concat
         (Filename.concat r (Printf.sprintf "%02x" (shard_of t key)))
         (safe_key key ^ ".json"))

let file_path = file_of
let index_path t = Option.map (fun r -> Filename.concat r "index.json") t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tmp_seq = Atomic.make 0

(* every on-disk write in this module is write-temp-then-rename, so a
   reader never sees a half-written file *)
let atomic_write path text =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc text;
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

(* content digest over the canonical minified payload rendering: stored
   next to the payload and recomputed on load, so silent corruption that
   still parses as JSON (a flipped byte inside a value, a truncated
   list spliced back together, manual edits) degrades to a miss instead
   of replaying a wrong artifact *)
let payload_digest payload =
  Digest.to_hex (Digest.string (Json.to_string ~minify:true payload))

let render_entry key payload =
  Json.to_string ~minify:true
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("key", Json.Str key);
         ("digest", Json.Str (payload_digest payload));
         ("payload", payload);
       ])

(* a miss on *any* malfunction: absent, unreadable, unparsable, wrong
   schema, wrong key (hash collision or tampering), or a payload whose
   recomputed content digest disagrees with the stored one *)
let disk_find t key =
  match file_of t key with
  | None -> None
  | Some path -> (
    match Json.of_string (read_file path) with
    | Ok entry
      when Json.member "schema" entry = Some (Json.Str schema)
           && Json.member "key" entry = Some (Json.Str key) -> (
      match (Json.member "payload" entry, Json.member "digest" entry) with
      | (Some payload as found), Some (Json.Str d)
        when String.equal d (payload_digest payload) ->
        found
      | _ -> None)
    | Ok _ | Error _ -> None
    | exception _ -> None)

(* ------------------------------------------------------------------ *)
(* Index: one JSON file per cache root recording every entry's size and
   last-use tick.  The index is a *performance* structure, never a
   source of truth — entries it lists are still verified on read, and a
   corrupt or missing index is rebuilt by scanning the shard
   directories (sizes from [stat], recency from mtime order). *)

let index_json disk =
  let entries =
    Hashtbl.fold
      (fun key e acc ->
        Json.Obj
          [
            ("key", Json.Str key);
            ("bytes", Json.Int e.d_bytes);
            ("used", Json.Int e.d_used);
          ]
        :: acc)
      disk []
  in
  Json.Obj
    [ ("schema", Json.Str index_schema); ("entries", Json.List entries) ]

(* persisted on store and evict (not on every find: recency bumps are
   flushed with the next write).  Best-effort: a failed write leaves
   the previous index, which rebuild-on-mismatch tolerates.

   Two processes sharing the root (two serve instances on one cache
   dir) race this write, and the index is whole-file replace — so the
   write happens under a cross-process lock file and merges first:
   entries only the on-disk index knows (the other process stored
   them) are kept, our own image wins per key.  If the lock cannot be
   taken promptly the old clobbering write is still better than no
   index at all. *)
let persist_index t =
  match index_path (root t) with
  | None -> ()
  | Some path ->
    let write () =
      let merged = Hashtbl.copy t.disk in
      (match Json.of_string (read_file path) with
      | Ok j when Json.member "schema" j = Some (Json.Str index_schema) -> (
        match Json.member "entries" j with
        | Some (Json.List es) ->
          List.iter
            (fun e ->
              match
                ( Json.member "key" e,
                  Json.member "bytes" e,
                  Json.member "used" e )
              with
              | Some (Json.Str key), Some (Json.Int bytes), Some (Json.Int used)
                when not (Hashtbl.mem merged key) ->
                Hashtbl.replace merged key { d_bytes = bytes; d_used = used }
              | _ -> ())
            es
        | _ -> ())
      | Ok _ | Error _ -> ()
      | exception _ -> ());
      atomic_write path (Json.to_string ~minify:true (index_json merged))
    in
    let lock = Filename.concat (Filename.dirname path) "index.lock" in
    (try
       match Spt_profdb.Lockfile.with_lock ~timeout_s:0.5 lock write with
       | Some () -> ()
       | None ->
         (* lock starvation: the old clobbering write still beats
            leaving a stale index behind *)
         write ()
     with _ -> Spt_obs.Metrics.inc m_disk_errors)

let scan_rebuild t r =
  Hashtbl.reset t.disk;
  t.total_bytes <- 0;
  let files = ref [] in
  Array.iter
    (fun shard ->
      let sdir = Filename.concat r shard in
      if Sys.file_exists sdir && Sys.is_directory sdir then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".json" then begin
              let path = Filename.concat sdir f in
              match Unix.stat path with
              | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                files :=
                  (st_mtime, Filename.chop_suffix f ".json", st_size) :: !files
              | _ | (exception _) -> ()
            end)
          (try Sys.readdir sdir with _ -> [||]))
    (try Sys.readdir r with _ -> [||]);
  (* oldest first, so ticks reconstruct mtime order *)
  List.iter
    (fun (_, key, bytes) ->
      t.tick <- t.tick + 1;
      Hashtbl.replace t.disk key { d_bytes = bytes; d_used = t.tick };
      t.total_bytes <- t.total_bytes + bytes)
    (List.sort compare !files)

let load_index t r =
  let from_file () =
    match index_path (Some r) with
    | None -> false
    | Some path -> (
      match Json.of_string (read_file path) with
      | Ok j when Json.member "schema" j = Some (Json.Str index_schema) -> (
        match Json.member "entries" j with
        | Some (Json.List es) ->
          List.iter
            (fun e ->
              match
                ( Json.member "key" e,
                  Json.member "bytes" e,
                  Json.member "used" e )
              with
              | Some (Json.Str key), Some (Json.Int bytes), Some (Json.Int used)
                ->
                Hashtbl.replace t.disk key { d_bytes = bytes; d_used = used };
                t.total_bytes <- t.total_bytes + bytes;
                if used > t.tick then t.tick <- used
              | _ -> ())
            es;
          true
        | _ -> false)
      | Ok _ | Error _ -> false
      | exception _ -> false)
  in
  if not (from_file ()) then scan_rebuild t r

(* called with [t.mu] held before any disk bookkeeping *)
let ensure_loaded t =
  if (not t.disk_loaded) && enabled t then begin
    t.disk_loaded <- true;
    match root t with None -> () | Some r -> (try load_index t r with _ -> ())
  end

let touch t key =
  match Hashtbl.find_opt t.disk key with
  | Some e ->
    t.tick <- t.tick + 1;
    e.d_used <- t.tick
  | None -> ()

let drop_entry t key =
  (match Hashtbl.find_opt t.disk key with
  | Some e ->
    t.total_bytes <- t.total_bytes - e.d_bytes;
    Hashtbl.remove t.disk key
  | None -> ());
  Hashtbl.remove t.mem key;
  match file_of t key with
  | None -> ()
  | Some path -> ( try Sys.remove path with _ -> ())

let lru_key t =
  Hashtbl.fold
    (fun key e acc ->
      match acc with
      | Some (_, used) when used <= e.d_used -> acc
      | _ -> Some (key, e.d_used))
    t.disk None

(* evict least-recently-used entries until [incoming] more bytes and
   one more entry fit under the configured bounds.  Eviction happens
   *before* the new entry is written, so the on-disk total never
   exceeds the bound, even transiently. *)
let evict_for t ~incoming ~fresh_key =
  let over () =
    let need_entry = if Hashtbl.mem t.disk fresh_key then 0 else 1 in
    let over_bytes =
      match t.max_bytes with
      | Some b -> t.total_bytes + incoming > b
      | None -> false
    in
    let over_entries =
      match t.max_entries with
      | Some n -> Hashtbl.length t.disk + need_entry > n
      | None -> false
    in
    over_bytes || over_entries
  in
  let rec loop () =
    if over () then
      match lru_key t with
      | Some (key, _) ->
        drop_entry t key;
        t.evictions <- t.evictions + 1;
        Spt_obs.Metrics.inc m_evictions;
        loop ()
      | None -> ()
  in
  loop ()

let disk_store t key payload =
  match file_of t key with
  | None -> ()
  | Some path -> (
    try
      let text = render_entry key payload in
      (* +1 for the trailing newline [atomic_write] appends *)
      let incoming = String.length text + 1 in
      (* an entry that alone exceeds the byte bound is not written at
         all (it would evict everything and still break the bound);
         the artifact stays served from memory for this process *)
      let fits =
        match t.max_bytes with Some b -> incoming <= b | None -> true
      in
      if fits then begin
        (* replacing an entry: its old bytes leave the total first *)
        (match Hashtbl.find_opt t.disk key with
        | Some e ->
          t.total_bytes <- t.total_bytes - e.d_bytes;
          Hashtbl.remove t.disk key
        | None -> ());
        evict_for t ~incoming ~fresh_key:key;
        atomic_write path text;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.disk key { d_bytes = incoming; d_used = t.tick };
        t.total_bytes <- t.total_bytes + incoming;
        persist_index t
      end
    with _ -> Spt_obs.Metrics.inc m_disk_errors)

(* ------------------------------------------------------------------ *)

let find t key =
  if not (enabled t) then None
  else
    locked t (fun () ->
        ensure_loaded t;
        let found =
          match Hashtbl.find_opt t.mem key with
          | Some payload ->
            touch t key;
            Some payload
          | None -> (
            match disk_find t key with
            | Some payload ->
              Hashtbl.replace t.mem key payload;
              (* a hit from disk the index never saw (another process
                 wrote it) joins the index so eviction can see it *)
              if not (Hashtbl.mem t.disk key) then begin
                let bytes =
                  match file_of t key with
                  | Some p -> ( try (Unix.stat p).Unix.st_size with _ -> 0)
                  | None -> 0
                in
                Hashtbl.replace t.disk key { d_bytes = bytes; d_used = 0 };
                t.total_bytes <- t.total_bytes + bytes
              end;
              touch t key;
              Some payload
            | None ->
              (* a listed entry that fails verification is dead weight:
                 drop it from the index and the disk so its bytes stop
                 counting against the bound *)
              if Hashtbl.mem t.disk key then drop_entry t key;
              None)
        in
        (match found with
        | Some _ ->
          t.hits <- t.hits + 1;
          Spt_obs.Metrics.inc m_hits
        | None ->
          t.misses <- t.misses + 1;
          Spt_obs.Metrics.inc m_misses);
        found)

let store t key payload =
  if enabled t then
    locked t (fun () ->
        ensure_loaded t;
        Hashtbl.replace t.mem key payload;
        t.stores <- t.stores + 1;
        Spt_obs.Metrics.inc m_stores;
        disk_store t key payload)

let stats t =
  locked t (fun () ->
      ensure_loaded t;
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        entries = Hashtbl.length t.disk;
        bytes = t.total_bytes;
      })

let stats_json t =
  let s = stats t in
  let looked_up = s.hits + s.misses in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled t));
      ("dir", match t.cdir with Some d -> Json.Str d | None -> Json.Null);
      ("shards", Json.Int t.shards);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("stores", Json.Int s.stores);
      ("evictions", Json.Int s.evictions);
      ("entries", Json.Int s.entries);
      ("bytes", Json.Int s.bytes);
      ( "max_bytes",
        match t.max_bytes with Some b -> Json.Int b | None -> Json.Null );
      ( "max_entries",
        match t.max_entries with Some n -> Json.Int n | None -> Json.Null );
      ( "hit_rate",
        Json.Float
          (if looked_up = 0 then 0.0
           else float_of_int s.hits /. float_of_int looked_up) );
    ]
