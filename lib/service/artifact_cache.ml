(** Content-addressed artifact store — see artifact_cache.mli. *)

module Json = Spt_obs.Json

let schema = "spt-cache-v1"

(* process-wide counters (no-ops unless metrics are enabled); per-cache
   counts live in [t] so hit rates survive a disabled registry *)
let m_hits = Spt_obs.Metrics.counter "service.cache.hits"
let m_misses = Spt_obs.Metrics.counter "service.cache.misses"
let m_stores = Spt_obs.Metrics.counter "service.cache.stores"
let m_disk_errors = Spt_obs.Metrics.counter "service.cache.disk_errors"

type stats = { hits : int; misses : int; stores : int }

type t = {
  cdir : string option;  (** [None] iff the cache is disabled *)
  mem : (string, Json.t) Hashtbl.t;
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

let default_dir () =
  match Sys.getenv_opt "SPT_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
    let base =
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> d
      | _ ->
        Filename.concat
          (Option.value ~default:"." (Sys.getenv_opt "HOME"))
          ".cache"
    in
    Filename.concat base "spt"

let make cdir =
  {
    cdir;
    mem = Hashtbl.create 64;
    mu = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
  }

let create ?dir () =
  make (Some (match dir with Some d -> d | None -> default_dir ()))

let no_cache () = make None
let enabled t = t.cdir <> None
let dir t = t.cdir

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ------------------------------------------------------------------ *)
(* Disk layer *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

(* keys are hex digests, but sanitize anyway: the key is data, never a
   path component we trust *)
let safe_key key =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    key

let file_of t key =
  match t.cdir with
  | None -> None
  | Some d -> Some (Filename.concat (Filename.concat d schema) (safe_key key ^ ".json"))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* content digest over the canonical minified payload rendering: stored
   next to the payload and recomputed on load, so silent corruption that
   still parses as JSON (a flipped byte inside a value, a truncated
   list spliced back together, manual edits) degrades to a miss instead
   of replaying a wrong artifact *)
let payload_digest payload =
  Digest.to_hex (Digest.string (Json.to_string ~minify:true payload))

(* a miss on *any* malfunction: absent, unreadable, unparsable, wrong
   schema, wrong key (hash collision or tampering), or a payload whose
   recomputed content digest disagrees with the stored one *)
let disk_find t key =
  match file_of t key with
  | None -> None
  | Some path -> (
    match Json.of_string (read_file path) with
    | Ok entry
      when Json.member "schema" entry = Some (Json.Str schema)
           && Json.member "key" entry = Some (Json.Str key) -> (
      match (Json.member "payload" entry, Json.member "digest" entry) with
      | (Some payload as found), Some (Json.Str d)
        when String.equal d (payload_digest payload) ->
        found
      | _ -> None)
    | Ok _ | Error _ -> None
    | exception _ -> None)

let tmp_seq = Atomic.make 0

let disk_store t key payload =
  match file_of t key with
  | None -> ()
  | Some path -> (
    try
      mkdir_p (Filename.dirname path);
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
          (Atomic.fetch_and_add tmp_seq 1)
      in
      let entry =
        Json.Obj
          [
            ("schema", Json.Str schema);
            ("key", Json.Str key);
            ("digest", Json.Str (payload_digest payload));
            ("payload", payload);
          ]
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc (Json.to_string ~minify:true entry);
         output_char oc '\n';
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Sys.rename tmp path
    with _ -> Spt_obs.Metrics.inc m_disk_errors)

(* ------------------------------------------------------------------ *)

let find t key =
  if not (enabled t) then None
  else
    locked t (fun () ->
        let found =
          match Hashtbl.find_opt t.mem key with
          | Some payload -> Some payload
          | None -> (
            match disk_find t key with
            | Some payload ->
              Hashtbl.replace t.mem key payload;
              Some payload
            | None -> None)
        in
        (match found with
        | Some _ ->
          t.hits <- t.hits + 1;
          Spt_obs.Metrics.inc m_hits
        | None ->
          t.misses <- t.misses + 1;
          Spt_obs.Metrics.inc m_misses);
        found)

let store t key payload =
  if enabled t then
    locked t (fun () ->
        Hashtbl.replace t.mem key payload;
        t.stores <- t.stores + 1;
        Spt_obs.Metrics.inc m_stores;
        disk_store t key payload)

let stats t =
  locked t (fun () -> { hits = t.hits; misses = t.misses; stores = t.stores })

let stats_json t =
  let s = stats t in
  let looked_up = s.hits + s.misses in
  Json.Obj
    [
      ("enabled", Json.Bool (enabled t));
      ("dir", match t.cdir with Some d -> Json.Str d | None -> Json.Null);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("stores", Json.Int s.stores);
      ( "hit_rate",
        Json.Float
          (if looked_up = 0 then 0.0
           else float_of_int s.hits /. float_of_int looked_up) );
    ]
