(** A concurrent job scheduler over the {!Spt_runtime.Pool} domain
    pool, for fanning whole compilations (or any thunks) across cores.

    All jobs are submitted up front; each carries a wall-clock budget
    of [timeout_s] seconds from submission.  A job that raises is
    [Failed]; a job still incomplete at its deadline is reported
    [Timed_out] (OCaml domains cannot be preempted, so its worker keeps
    running but any late result is discarded, and the pool is abandoned
    to process exit instead of joined).  If the pool cannot be created
    at all — domain spawning is the one thing here that can fail — the
    scheduler degrades to running every job sequentially in the calling
    domain, and says so in [stats.degraded].

    Queue depth, job latency and failure counts are surfaced on the
    [service.batch.*] metrics. *)

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; carries [Printexc.to_string] *)
  | Timed_out

type stats = {
  jobs : int;  (** worker domains used (1 when degraded) *)
  submitted : int;
  completed : int;
  failed : int;
  timed_out : int;
  degraded : bool;  (** pool creation failed; ran sequentially *)
  max_queue_depth : int;
  wall_s : float;
  latency : Spt_obs.Metrics.Hist.t;
      (** per-job wall time of every job that ran to completion or
          failure (timed-out jobs have no measurement), built on the
          calling domain after the run — render percentiles with
          {!Spt_obs.Metrics.Hist.to_json} *)
}

(** [run ~jobs ~timeout_s thunks] evaluates every thunk and returns the
    outcomes in submission order.  [jobs] defaults to [$SPT_JOBS] or 2;
    [timeout_s] defaults to 600. *)
val run :
  ?jobs:int -> ?timeout_s:float -> (unit -> 'a) list -> 'a outcome array * stats
