(** A concurrent job scheduler over the {!Spt_runtime.Pool} domain
    pool, for fanning whole compilations (or any thunks) across cores.

    All work is submitted up front; each job carries a wall-clock
    budget of [timeout_s] seconds from submission.  A job that raises
    is [Failed]; a job still incomplete at its deadline is reported
    [Timed_out] (OCaml domains cannot be preempted, so its worker keeps
    running but any late result is discarded, and the pool is abandoned
    to process exit instead of joined).  If the pool cannot be created
    at all — domain spawning is the one thing here that can fail — the
    scheduler degrades to running every job sequentially in the calling
    domain, and says so in [stats.degraded].

    {b Dependency-aware clustering.}  {!run_clustered} takes each job
    with a list of digests of its sub-structure (canonical per-function
    fingerprints, say).  Jobs whose digest lists intersect —
    transitively — form a cluster, and a cluster is scheduled as one
    pool job whose members run back to back on the same worker.  Near-
    duplicate compilation units therefore compile right after each
    other, hitting the {!Artifact_cache} while it is warm instead of
    racing each other to a cold miss on separate workers.

    Queue depth, job latency, cluster and failure counts are surfaced
    on the [service.batch.*] metrics. *)

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; carries [Printexc.to_string] *)
  | Timed_out

type stats = {
  jobs : int;  (** worker domains used (1 when degraded) *)
  submitted : int;
  completed : int;
  failed : int;
  timed_out : int;
  clusters : int;  (** scheduling units after digest clustering *)
  degraded : bool;  (** pool creation failed; ran sequentially *)
  max_queue_depth : int;
  wall_s : float;
  latency : Spt_obs.Metrics.Hist.t;
      (** per-job wall time of every job that ran to completion or
          failure (timed-out jobs have no measurement), built on the
          calling domain after the run — render percentiles with
          {!Spt_obs.Metrics.Hist.to_json} *)
}

(** [cluster items] groups values whose digest lists share an element,
    transitively (union-find).  Clusters are ordered by their earliest
    member, members in submission order; an item with no digests is a
    singleton.  Exposed for testing and for callers that want the
    grouping without the scheduling. *)
val cluster : ('a * string list) list -> 'a list list

(** [run_clustered ~jobs ~timeout_s items] clusters the jobs by shared
    digests, schedules one pool job per cluster, and returns the
    outcomes in submission order.  A cluster whose early members
    exhaust the budget times out its remaining members with it.
    [jobs] defaults to [$SPT_JOBS] or 2; [timeout_s] defaults to
    600. *)
val run_clustered :
  ?jobs:int ->
  ?timeout_s:float ->
  ((unit -> 'a) * string list) list ->
  'a outcome array * stats

(** [run ~jobs ~timeout_s thunks] is {!run_clustered} with every job a
    singleton cluster: plain fan-out in submission order. *)
val run :
  ?jobs:int -> ?timeout_s:float -> (unit -> 'a) list -> 'a outcome array * stats
