(** The fleet-scale profile database: shared, decaying, auto-applied
    feedback across runs, processes and users.

    The feedback loop ({!Spt_feedback}) makes one run's telemetry
    improve one recompile.  The profile database makes profiles a
    shared accumulating asset: a directory of per-program entries under
    the cache dir ([<cache>/spt-profdb-v1/]), keyed by the canonical IR
    fingerprint ({!Spt_service.Fingerprint.program} — config- and
    layout-independent, so every client compiling the same program
    shares one entry), each entry holding a {!Spt_feedback.Profile_store}
    payload plus generation metadata.

    Writers {!ingest} fresh telemetry with an additive merge under a
    {!Lockfile} (read–decay–merge–replace, atomic rename), so
    concurrent runs, serve workers and other processes never lose each
    other's updates.  On every ingest the accumulated entry is first
    scaled by the decay factor — a generation-[k] observation is
    weighted [decay^(n-k)] after [n] generations, so stale telemetry
    ages out instead of outvoting fresh behaviour forever.

    Entries are stamped with the producing tool version; readers ignore
    entries from an incompatible tool, and *any* malfunction — missing
    file, garbage JSON, wrong schema, wrong fingerprint, a payload
    whose recomputed store digest disagrees with the stamped one —
    degrades to a lookup miss, mirroring the artifact cache's
    corruption contract. *)

(** Directory / stats schema tag ([spt-profdb-v1]). *)
val schema : string

(** Per-entry on-disk schema tag ([spt-profdb-entry-v1]). *)
val entry_schema : string

(** Default generation decay factor (0.5). *)
val default_decay : float

(** [subdir cache_dir] is the database directory under a cache dir. *)
val subdir : string -> string

type t

(** [create ?decay ?max_entries ~tool ~dir ()] opens (lazily — nothing
    touches the disk until the first operation) the database at [dir].
    [decay] is clamped to [0, 1].  [max_entries], when given, bounds
    the entry count: each ingest evicts least-recently-updated entries
    over the bound, mirroring the artifact cache's LRU contract.
    [tool] stamps written entries and filters read ones. *)
val create : ?decay:float -> ?max_entries:int -> tool:string -> dir:string -> unit -> t

(** A disabled database: every lookup misses, every write is a no-op. *)
val no_db : unit -> t

(** [for_cache ?decay ?max_entries ~tool cache_dir] is the database
    under an artifact cache's directory ({!subdir}), or {!no_db} when
    the cache is disabled ([None]). *)
val for_cache :
  ?decay:float -> ?max_entries:int -> tool:string -> string option -> t

val enabled : t -> bool
val dir : t -> string option
val tool : t -> string
val decay : t -> float

(** [lookup db ~fingerprint] is the accumulated store and its
    generation, or [None] on any malfunction (see above). *)
val lookup :
  t -> fingerprint:string -> (Spt_feedback.Profile_store.t * int) option

(** [ingest db ~fingerprint fresh] merges one run's telemetry into the
    entry: under the database lock, the stored payload is decayed by
    the decay factor, [fresh] is added, and the entry is atomically
    replaced with its generation incremented.  Returns the new
    generation, or [None] when the database is disabled or the lock
    could not be taken (the ingest is dropped, never blocked on). *)
val ingest :
  t -> fingerprint:string -> Spt_feedback.Profile_store.t -> int option

(** [publish db ~fingerprint store] replaces the entry's payload with
    [store] outright (no decay, no merge) — for writers like
    [sptc adapt] whose store already *contains* the looked-up entry, so
    an additive ingest would double-count it.  Still bumps the
    generation; same return contract as {!ingest}. *)
val publish :
  t -> fingerprint:string -> Spt_feedback.Profile_store.t -> int option

(** One valid on-disk entry as [entries] reports it. *)
type entry = {
  e_fingerprint : string;
  e_generation : int;
  e_tool : string;
  e_bytes : int;  (** on-disk entry size *)
  e_updated : float;  (** seconds since the epoch of the last write *)
  e_loops : int;  (** loops with recorded telemetry *)
  e_digest : string;  (** the payload store's canonical digest *)
}

(** Valid entries sorted by fingerprint, plus the count of invalid
    files (wrong schema/tool/digest, garbage) sharing the directory. *)
val entries : t -> entry list * int

(** Merged store over the given fingerprint's entry, or over every
    valid entry when [fingerprint] is omitted. *)
val export : ?fingerprint:string -> t -> Spt_feedback.Profile_store.t

(** [gc ?max_entries db] deletes invalid files and, when a bound is
    given (defaulting to the database's own), evicts
    least-recently-updated valid entries over it.  Returns
    [(invalid_dropped, evicted)]. *)
val gc : ?max_entries:int -> t -> int * int

(** Instance counters + directory census, schema-tagged [spt-profdb-v1];
    rendered by [sptc top] and embedded in serve [stats] replies. *)
val stats_json : t -> Spt_obs.Json.t
