(** Advisory cross-process file locks, safe for OCaml 5 domains.

    POSIX [lockf]/[fcntl] record locks are held *per process*: two
    domains of the same process both "acquire" the same lock and walk
    straight through each other.  So a lock here is two locks taken in
    order — a process-wide per-path mutex (domains of one process
    exclude each other) and then an exclusive [lockf] region on the
    lock file (processes exclude each other).  Record locks die with
    the owning process, so a crashed writer never wedges the database:
    the next acquirer simply wins the region.

    Acquisition polls with a deadline rather than blocking forever;
    callers decide what contention degrades to (the profile database
    skips an ingest, the artifact cache falls back to the old unlocked
    index write). *)

type t

(** [acquire ?timeout_s path] takes the lock, creating [path] (and its
    parent directories) as needed.  [None] when the lock could not be
    taken within [timeout_s] (default 10s). *)
val acquire : ?timeout_s:float -> string -> t option

(** Release both layers.  Idempotent. *)
val release : t -> unit

(** [with_lock ?timeout_s path f] runs [f] under the lock and releases
    it on any exit.  [None] iff acquisition timed out ([f] not run). *)
val with_lock : ?timeout_s:float -> string -> (unit -> 'a) -> 'a option
