(** Two-layer advisory file locks — see lockfile.mli. *)

let m_timeouts = Spt_obs.Metrics.counter "profdb.lock_timeouts"

(* one mutex per lock-file path, shared by every domain of this
   process; [lockf] alone cannot tell two of our own domains apart *)
let registry : (string, Mutex.t) Hashtbl.t = Hashtbl.create 8
let registry_mu = Mutex.create ()

let mutex_for path =
  Mutex.lock registry_mu;
  let m =
    match Hashtbl.find_opt registry path with
    | Some m -> m
    | None ->
      let m = Mutex.create () in
      Hashtbl.replace registry path m;
      m
  in
  Mutex.unlock registry_mu;
  m

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

type t = { mu : Mutex.t; fd : Unix.file_descr; mutable held : bool }

let poll_interval_s = 0.002

let acquire ?(timeout_s = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let mu = mutex_for path in
  (* layer 1: in-process.  Poll with [try_lock] so the deadline also
     bounds waiting on a sibling domain, not just on other processes. *)
  let rec take_mutex () =
    if Mutex.try_lock mu then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf poll_interval_s;
      take_mutex ()
    end
  in
  if not (take_mutex ()) then begin
    Spt_obs.Metrics.inc m_timeouts;
    None
  end
  else begin
    (* layer 2: cross-process, an exclusive region on the lock file *)
    match
      mkdir_p (Filename.dirname path);
      Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644
    with
    | exception _ ->
      Mutex.unlock mu;
      Spt_obs.Metrics.inc m_timeouts;
      None
    | fd ->
      let rec take_region () =
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | () -> true
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
          if Unix.gettimeofday () >= deadline then false
          else begin
            Unix.sleepf poll_interval_s;
            take_region ()
          end
        | exception _ -> false
      in
      if take_region () then Some { mu; fd; held = true }
      else begin
        (try Unix.close fd with _ -> ());
        Mutex.unlock mu;
        Spt_obs.Metrics.inc m_timeouts;
        None
      end
  end

let release t =
  if t.held then begin
    t.held <- false;
    (try
       ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
       Unix.lockf t.fd Unix.F_ULOCK 0
     with _ -> ());
    (try Unix.close t.fd with _ -> ());
    Mutex.unlock t.mu
  end

let with_lock ?timeout_s path f =
  match acquire ?timeout_s path with
  | None -> None
  | Some l -> Some (Fun.protect ~finally:(fun () -> release l) f)
