(** On-disk fleet profile database — see profdb.mli. *)

module Json = Spt_obs.Json
module Store = Spt_feedback.Profile_store

let schema = "spt-profdb-v1"
let entry_schema = "spt-profdb-entry-v1"
let default_decay = 0.5
let subdir cache_dir = Filename.concat cache_dir schema

let m_lookups = Spt_obs.Metrics.counter "profdb.lookups"
let m_hits = Spt_obs.Metrics.counter "profdb.hits"
let m_misses = Spt_obs.Metrics.counter "profdb.misses"
let m_ingests = Spt_obs.Metrics.counter "profdb.ingests"
let m_publishes = Spt_obs.Metrics.counter "profdb.publishes"
let m_evictions = Spt_obs.Metrics.counter "profdb.evictions"
let m_rejected = Spt_obs.Metrics.counter "profdb.rejected"

type t = {
  pdir : string option;  (** [None] iff disabled *)
  ptool : string;
  pdecay : float;
  max_entries : int option;
  mu : Mutex.t;  (** guards the counters only; disk is lock-file land *)
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable ingests : int;
  mutable publishes : int;
  mutable evictions : int;
  mutable rejected : int;  (** invalid entries seen (any malfunction) *)
}

let make ?(decay = default_decay) ?max_entries ~tool pdir =
  {
    pdir;
    ptool = tool;
    pdecay = Float.max 0.0 (Float.min 1.0 decay);
    max_entries;
    mu = Mutex.create ();
    lookups = 0;
    hits = 0;
    misses = 0;
    ingests = 0;
    publishes = 0;
    evictions = 0;
    rejected = 0;
  }

let create ?decay ?max_entries ~tool ~dir () =
  make ?decay ?max_entries ~tool (Some dir)

let no_db () = make ~tool:"" None

let for_cache ?decay ?max_entries ~tool cache_dir =
  match cache_dir with
  | None -> no_db ()
  | Some d -> create ?decay ?max_entries ~tool ~dir:(subdir d) ()

let enabled t = t.pdir <> None
let dir t = t.pdir
let tool t = t.ptool
let decay t = t.pdecay

let counted t f =
  Mutex.lock t.mu;
  f t;
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)
(* Disk layer *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

(* fingerprints are hex digests, but the key is data, never a path
   component we trust *)
let safe_key key =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    key

let entry_file dir fingerprint =
  Filename.concat dir (safe_key fingerprint ^ ".json")

let lock_file dir = Filename.concat dir "lock"

let tmp_seq = Atomic.make 0

let atomic_write path text =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc text;
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let entry_json ~fingerprint ~tool ~generation ~updated store =
  Json.Obj
    [
      ("schema", Json.Str entry_schema);
      ("fingerprint", Json.Str fingerprint);
      ("tool", Json.Str tool);
      ("generation", Json.Int generation);
      ("updated_s", Json.Float updated);
      (* the store's own canonical digest, recomputed on read: silent
         corruption that still parses degrades to a miss, never to a
         wrong profile steering a compile *)
      ("digest", Json.Str (Store.digest store));
      ("profile", Store.to_json store);
    ]

(* everything a reader can conclude about one entry file *)
type parsed =
  | Absent
  | Invalid  (** unreadable / wrong schema / wrong tool / bad digest *)
  | Entry of Store.t * int * float  (** store, generation, updated_s *)

let parse_entry ~tool ~fingerprint path =
  if not (Sys.file_exists path) then Absent
  else
    match Json.of_string (read_file path) with
    | exception _ -> Invalid
    | Error _ -> Invalid
    | Ok j -> (
      let field k = Json.member k j in
      match
        ( field "schema",
          field "fingerprint",
          field "tool",
          field "generation",
          field "digest",
          field "profile" )
      with
      | ( Some (Json.Str s),
          Some (Json.Str fp),
          Some (Json.Str tl),
          Some (Json.Int generation),
          Some (Json.Str digest),
          Some profile )
        when s = entry_schema && fp = fingerprint && tl = tool -> (
        match Store.of_json profile with
        | Ok store when String.equal (Store.digest store) digest ->
          let updated =
            match field "updated_s" with
            | Some (Json.Float u) -> u
            | Some (Json.Int u) -> float_of_int u
            | _ -> 0.0
          in
          Entry (store, generation, updated)
        | Ok _ | Error _ -> Invalid)
      | _ -> Invalid)

let db_files dir =
  match Sys.readdir dir with
  | exception _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat dir)

(* evict least-recently-updated entries (file mtime order) over the
   bound; called with the database lock held *)
let enforce_bound ?bound t dir =
  match (match bound with Some _ as b -> b | None -> t.max_entries) with
  | None -> ()
  | Some bound ->
    let bound = max 0 bound in
    let stamped =
      List.filter_map
        (fun path ->
          match Unix.stat path with
          | { Unix.st_kind = Unix.S_REG; st_mtime; _ } -> Some (st_mtime, path)
          | _ | (exception _) -> None)
        (db_files dir)
    in
    let over = List.length stamped - bound in
    if over > 0 then
      List.iteri
        (fun i (_, path) ->
          if i < over then begin
            (try Sys.remove path with _ -> ());
            counted t (fun t -> t.evictions <- t.evictions + 1);
            Spt_obs.Metrics.inc m_evictions
          end)
        (List.sort compare stamped)

(* ------------------------------------------------------------------ *)
(* Operations *)

let lookup t ~fingerprint =
  match t.pdir with
  | None -> None
  | Some dir -> (
    counted t (fun t -> t.lookups <- t.lookups + 1);
    Spt_obs.Metrics.inc m_lookups;
    (* no lock: entry replacement is atomic-rename, so a reader sees
       either the old generation or the new one, never a torn file *)
    match parse_entry ~tool:t.ptool ~fingerprint (entry_file dir fingerprint) with
    | Entry (store, generation, _) ->
      counted t (fun t -> t.hits <- t.hits + 1);
      Spt_obs.Metrics.inc m_hits;
      Some (store, generation)
    | Absent ->
      counted t (fun t -> t.misses <- t.misses + 1);
      Spt_obs.Metrics.inc m_misses;
      None
    | Invalid ->
      counted t (fun t ->
          t.misses <- t.misses + 1;
          t.rejected <- t.rejected + 1);
      Spt_obs.Metrics.inc m_misses;
      Spt_obs.Metrics.inc m_rejected;
      None)

(* shared update shape of [ingest] and [publish]: read the current
   entry under the lock, combine, replace atomically *)
let update t ~fingerprint ~combine =
  match t.pdir with
  | None -> None
  | Some dir ->
    let path = entry_file dir fingerprint in
    mkdir_p dir;
    Lockfile.with_lock (lock_file dir) (fun () ->
        let old = parse_entry ~tool:t.ptool ~fingerprint path in
        (match old with
        | Invalid ->
          counted t (fun t -> t.rejected <- t.rejected + 1);
          Spt_obs.Metrics.inc m_rejected
        | Absent | Entry _ -> ());
        let prev =
          match old with Entry (s, g, _) -> Some (s, g) | Absent | Invalid -> None
        in
        let store, generation = combine prev in
        atomic_write path
          (Json.to_string ~minify:true
             (entry_json ~fingerprint ~tool:t.ptool ~generation
                ~updated:(Unix.gettimeofday ()) store));
        enforce_bound t dir;
        generation)

let ingest t ~fingerprint fresh =
  let r =
    update t ~fingerprint ~combine:(fun prev ->
        match prev with
        | Some (old, generation) ->
          (Store.merge (Store.scaled old t.pdecay) fresh, generation + 1)
        | None -> (Store.merge (Store.empty ()) fresh, 1))
  in
  (match r with
  | Some _ ->
    counted t (fun t -> t.ingests <- t.ingests + 1);
    Spt_obs.Metrics.inc m_ingests
  | None -> ());
  r

let publish t ~fingerprint store =
  let r =
    update t ~fingerprint ~combine:(fun prev ->
        let generation = match prev with Some (_, g) -> g + 1 | None -> 1 in
        (store, generation))
  in
  (match r with
  | Some _ ->
    counted t (fun t -> t.publishes <- t.publishes + 1);
    Spt_obs.Metrics.inc m_publishes
  | None -> ());
  r

(* ------------------------------------------------------------------ *)
(* Census: stat / export / gc *)

type entry = {
  e_fingerprint : string;
  e_generation : int;
  e_tool : string;
  e_bytes : int;
  e_updated : float;
  e_loops : int;
  e_digest : string;
}

(* a census parse checks integrity like [parse_entry] but takes the
   fingerprint (and, for [strict=false] callers, the tool) from the
   file itself *)
let census_entry ~tool path =
  match Json.of_string (read_file path) with
  | exception _ -> None
  | Error _ -> None
  | Ok j -> (
    match (Json.member "fingerprint" j, Json.member "tool" j) with
    | Some (Json.Str fp), Some (Json.Str tl) when tl = tool -> (
      match parse_entry ~tool ~fingerprint:fp path with
      | Entry (store, generation, updated) ->
        let bytes =
          match Unix.stat path with
          | { Unix.st_size; _ } -> st_size
          | exception _ -> 0
        in
        Some
          ( {
              e_fingerprint = fp;
              e_generation = generation;
              e_tool = tl;
              e_bytes = bytes;
              e_updated = updated;
              e_loops = List.length (Store.observations store);
              e_digest = Store.digest store;
            },
            store )
      | Absent | Invalid -> None)
    | _ -> None)

let scan t =
  match t.pdir with
  | None -> ([], 0)
  | Some dir ->
    List.fold_left
      (fun (ok, bad) path ->
        match census_entry ~tool:t.ptool path with
        | Some pair -> (pair :: ok, bad)
        | None -> (ok, bad + 1))
      ([], 0) (db_files dir)
    |> fun (ok, bad) ->
    ( List.sort (fun (a, _) (b, _) -> compare a.e_fingerprint b.e_fingerprint) ok,
      bad )

let entries t =
  let ok, bad = scan t in
  (List.map fst ok, bad)

let export ?fingerprint t =
  let ok, _ = scan t in
  let picked =
    match fingerprint with
    | None -> ok
    | Some fp -> List.filter (fun (e, _) -> e.e_fingerprint = fp) ok
  in
  List.fold_left
    (fun acc (_, store) -> Store.merge acc store)
    (Store.empty ()) picked

let gc ?max_entries t =
  match t.pdir with
  | None -> (0, 0)
  | Some dir ->
    let bound =
      match max_entries with Some _ as b -> b | None -> t.max_entries
    in
    let res =
      Lockfile.with_lock (lock_file dir) (fun () ->
          let invalid =
            List.fold_left
              (fun n path ->
                match census_entry ~tool:t.ptool path with
                | Some _ -> n
                | None ->
                  (try Sys.remove path with _ -> ());
                  n + 1)
              0 (db_files dir)
          in
          let before = t.evictions in
          (match bound with
          | Some b -> enforce_bound ~bound:b t dir
          | None -> ());
          (invalid, t.evictions - before))
    in
    Option.value ~default:(0, 0) res

let stats_json t =
  let ok, bad = entries t in
  let bytes = List.fold_left (fun n e -> n + e.e_bytes) 0 ok in
  let top_gen = List.fold_left (fun g e -> max g e.e_generation) 0 ok in
  Mutex.lock t.mu;
  let counters =
    [
      ("lookups", Json.Int t.lookups);
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("ingests", Json.Int t.ingests);
      ("publishes", Json.Int t.publishes);
      ("evictions", Json.Int t.evictions);
      ("rejected", Json.Int t.rejected);
    ]
  in
  Mutex.unlock t.mu;
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("enabled", Json.Bool (enabled t));
       ("dir", match t.pdir with Some d -> Json.Str d | None -> Json.Null);
       ("tool", Json.Str t.ptool);
       ("decay", Json.Float t.pdecay);
       ( "max_entries",
         match t.max_entries with Some n -> Json.Int n | None -> Json.Null );
       ("entries", Json.Int (List.length ok));
       ("invalid", Json.Int bad);
       ("bytes", Json.Int bytes);
       ("max_generation", Json.Int top_gen);
     ]
    @ counters
    @ [
        ( "profiles",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("fingerprint", Json.Str e.e_fingerprint);
                     ("generation", Json.Int e.e_generation);
                     ("loops", Json.Int e.e_loops);
                     ("bytes", Json.Int e.e_bytes);
                     ("updated_s", Json.Float e.e_updated);
                     ("digest", Json.Str e.e_digest);
                   ])
               ok) );
      ])
