open Spt_ir
(** Memory layout: assigns every global region a base byte address in a
    flat address space.

    Elements are 8 bytes (both [i64] and [f64]); regions are aligned to
    cache-line boundaries (64 bytes) so the TLS simulator's cache model
    sees realistic conflict behaviour and two regions never share a
    line. *)

let element_size = 8
let line_size = 64

type t = {
  bases : (int, int) Hashtbl.t;  (** sid -> base byte address *)
  total_bytes : int;
}

let build (globals : Ir.sym list) =
  let bases = Hashtbl.create 64 in
  let cursor = ref line_size (* keep address 0 unused *) in
  List.iter
    (fun (s : Ir.sym) ->
      let aligned = (!cursor + line_size - 1) / line_size * line_size in
      Hashtbl.replace bases s.Ir.sid aligned;
      cursor := aligned + (s.Ir.ssize * element_size))
    globals;
  { bases; total_bytes = !cursor }

let base t (s : Ir.sym) =
  match Hashtbl.find_opt t.bases s.Ir.sid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Layout.base: unknown region %s" s.Ir.sname)

(** Byte address of element [idx] of region [s]. *)
let address t s idx = base t s + (idx * element_size)

(** Element-granular address (byte address / 8), the unit the shadow
    memory and dependence profiler use. *)
let element_address t s idx = address t s idx / element_size

let total_elements t = (t.total_bytes + element_size - 1) / element_size

(** Region holding an element-granular address — the inverse of
    [element_address], used by the runtime to attribute speculative
    read violations to the region that changed. *)
let owner_of_element t (globals : Ir.sym list) ea =
  List.find_opt
    (fun (s : Ir.sym) ->
      match Hashtbl.find_opt t.bases s.Ir.sid with
      | None -> false
      | Some b ->
        let b = b / element_size in
        ea >= b && ea < b + s.Ir.ssize)
    globals
