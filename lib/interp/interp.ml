(** Reference interpreter for the IR, with instrumentation hooks.

    The interpreter is the ground truth for program semantics: the
    SPT-transformed program must print the same output and return the
    same value as the original (SPT_FORK/SPT_KILL are sequential
    no-ops), which the test-suite checks for every workload.

    The hooks expose the full dynamic event stream — executed
    instructions with their register/memory effects, block entries and
    taken control-flow edges — on which all three profilers (§4.1,
    §7.2, §7.3) and the trace-driven TLS timing simulator are built.

    Beyond the classic [run] entry point, the interpreter exposes a
    *machine* API used by {!Spt_runtime}: explicit machines ([make]),
    pluggable memory/RNG/output backends ([memio]), per-frame register
    indirection ([regio]), and instruction-granular segment execution
    with resumable cursors ([exec_segment]).  That is what lets the
    speculative runtime execute pre-fork and post-fork slices of a loop
    iteration on different domains against versioned state while
    reusing this interpreter's semantics verbatim. *)

open Spt_ir

type value = Eval.value

(** Register and memory effects of one executed instruction.  Addresses
    are element-granular (see {!Layout.element_address}). *)
type effects = {
  loads : (int * value) list;  (** (address, value read) *)
  stores : (int * value) list;  (** (address, value written) *)
  defs : (Ir.var * value) list;
  uses : (Ir.var * value) list;
}

let no_effects = { loads = []; stores = []; defs = []; uses = [] }

type hooks = {
  on_instr : Ir.func -> int -> Ir.instr -> effects -> unit;
      (** [on_instr f bid i eff] fires after [i] (in block [bid] of [f])
          executes.  Instructions inside callees fire with their own
          function/blocks. *)
  on_block : Ir.func -> int -> unit;  (** block entry *)
  on_edge : Ir.func -> src:int -> dst:int -> unit;  (** taken CFG edge *)
  on_branch : Ir.func -> int -> taken:bool -> unit;
      (** conditional branch outcome in block [bid] *)
  on_enter : Ir.func -> unit;  (** function entry (after the caller's
      [on_instr] for the call instruction) *)
  on_exit : Ir.func -> unit;  (** function return *)
}

let null_hooks =
  {
    on_instr = (fun _ _ _ _ -> ());
    on_block = (fun _ _ -> ());
    on_edge = (fun _ ~src:_ ~dst:_ -> ());
    on_branch = (fun _ _ ~taken:_ -> ());
    on_enter = (fun _ -> ());
    on_exit = (fun _ -> ());
  }

(** Fan one event stream out to several consumers (profilers compose). *)
let combine_hooks hs =
  {
    on_instr = (fun f b i e -> List.iter (fun h -> h.on_instr f b i e) hs);
    on_block = (fun f b -> List.iter (fun h -> h.on_block f b) hs);
    on_edge = (fun f ~src ~dst -> List.iter (fun h -> h.on_edge f ~src ~dst) hs);
    on_branch = (fun f b ~taken -> List.iter (fun h -> h.on_branch f b ~taken) hs);
    on_enter = (fun f -> List.iter (fun h -> h.on_enter f) hs);
    on_exit = (fun f -> List.iter (fun h -> h.on_exit f) hs);
  }

exception Runtime_error of string

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Pluggable state backends *)

(** Memory, RNG and output backend of a machine.  The default backend
    ([store_memio]) operates on a flat array, an LCG cell and a buffer;
    the speculative runtime substitutes versioned views. *)
type memio = {
  mio_load : int -> value;  (** element-granular address *)
  mio_store : int -> value -> unit;
  mio_rng : unit -> int64;  (** current LCG state *)
  mio_set_rng : int64 -> unit;
  mio_print : string -> unit;  (** output of the print builtins *)
}

(** Register backend for a single frame.  [rio_get] returns [None] for
    uninitialized registers. *)
type regio = {
  rio_get : Ir.var -> value option;
  rio_set : Ir.var -> value -> unit;
}

(** The concrete default backend: flat element-granular memory, the
    fixed-seed LCG and the output buffer. *)
type store = { smem : value array; mutable srng : int64; sout : Buffer.t }

let init_memory layout (globals : Ir.sym list) =
  let mem = Array.make (Layout.total_elements layout) (Eval.Vi 0L) in
  List.iter
    (fun (s : Ir.sym) ->
      let base = Layout.element_address layout s 0 in
      for i = 0 to s.Ir.ssize - 1 do
        mem.(base + i) <- Eval.zero_of_ty s.Ir.selt
      done;
      match s.Ir.sinit with
      | Some vals ->
        List.iteri
          (fun i n ->
            if i < s.Ir.ssize then
              mem.(base + i) <-
                (match s.Ir.selt with
                | Ir.I64 -> Eval.Vi n
                | Ir.F64 -> Eval.Vf (Int64.to_float n)))
          vals
      | None -> ())
    globals;
  mem

let initial_rng = 88172645463325252L

let new_store layout (program : Ir.program) =
  {
    smem = init_memory layout program.Ir.globals;
    srng = initial_rng;
    sout = Buffer.create 256;
  }

let store_memio st =
  {
    mio_load = (fun a -> st.smem.(a));
    mio_store = (fun a v -> st.smem.(a) <- v);
    mio_rng = (fun () -> st.srng);
    mio_set_rng = (fun r -> st.srng <- r);
    mio_print = Buffer.add_string st.sout;
  }

(* ------------------------------------------------------------------ *)
(* Machine state *)

type frame = {
  func : Ir.func;
  regs : value option array;  (** indexed by vid; [None] = uninitialized *)
  arr_args : Ir.sym array;  (** array-parameter slots resolved to regions *)
  frio : regio option;
      (** register indirection; when set, [regs] is never touched *)
}

(** Position within a frame: block, incoming edge, and the index of the
    next instruction to execute among the block's *non-phi*
    instructions.  [cpos = 0] means a fresh block entry (phis pending);
    any [cpos > 0] resumes after the phis. *)
type cursor = { cbid : int; cprev : int; cpos : int }

type marker = [ `Fork of int | `Kill of int ]

type seg_stop =
  | Seg_marker of marker * cursor
      (** an SPT marker executed in the segment's own frame; the cursor
          points just past it *)
  | Seg_stop_block of cursor
      (** control is about to enter [stop_block]; the cursor points at
          its start (phis not yet evaluated) *)
  | Seg_return of value option

(** What a marker handler tells the executing frame to do next. *)
type marker_action =
  | Proceed  (** markers are sequential no-ops: continue in place *)
  | Jump_to of cursor  (** resume this frame at the given cursor *)
  | Return_now of value option  (** unwind the frame with this value *)

(* Dispatch-time sampling: every [s_mask + 1] block entries the machine
   reads the clock and books the ns-per-instruction of the window into
   the "interp.dispatch_ns_per_instr" histogram.  Off ([None]) the cost
   is one load and one branch per block entry. *)
type sampler = {
  s_mask : int;
  mutable s_last_t : float;
  mutable s_last_steps : int;
}

type state = {
  program : Ir.program;
  layout : Layout.t;
  memio : memio;
  mutable steps : int;
  mutable block_entries : int;
  max_steps : int;
  hooks : hooks;
  mutable on_marker :
    (state -> frame -> marker -> cursor -> marker_action) option;
  mutable sampler : sampler option;
}

type result = {
  return_value : value option;
  output : string;
  dynamic_instrs : int;
}

let make ?(hooks = null_hooks) ?(max_steps = 200_000_000) ~memio
    (program : Ir.program) =
  {
    program;
    layout = Layout.build program.Ir.globals;
    memio;
    steps = 0;
    block_entries = 0;
    max_steps;
    hooks;
    on_marker = None;
    sampler = None;
  }

let h_dispatch = Spt_obs.Metrics.histogram "interp.dispatch_ns_per_instr"

let set_sampler ?(mask = 1023) st =
  st.sampler <-
    Some { s_mask = mask; s_last_t = Unix.gettimeofday (); s_last_steps = st.steps }

let layout st = st.layout
let steps st = st.steps
let set_marker_handler st h = st.on_marker <- h

let lcg_next st =
  (* Numerical Recipes LCG; deterministic across runs *)
  let r =
    Int64.add
      (Int64.mul (st.memio.mio_rng ()) 6364136223846793005L)
      1442695040888963407L
  in
  st.memio.mio_set_rng r;
  Int64.shift_right_logical r 33

(* resolve a region to the concrete global it denotes in this frame *)
let resolve_region frame = function
  | Ir.Rsym s -> s
  | Ir.Rparam (slot, name) ->
    if slot < Array.length frame.arr_args then frame.arr_args.(slot)
    else error "unbound array parameter %s" name

let read_reg frame v =
  let stored =
    match frame.frio with
    | Some r -> r.rio_get v
    | None -> frame.regs.(v.Ir.vid)
  in
  match stored with
  | Some x -> x
  | None ->
    error "read of uninitialized register %s.%d in %s" v.Ir.vname v.Ir.vid
      frame.func.Ir.fname

let write_reg frame v x =
  match frame.frio with
  | Some r -> r.rio_set v x
  | None -> frame.regs.(v.Ir.vid) <- Some x

let mk_frame func ~arr_args ~regio =
  { func; regs = [||]; arr_args; frio = Some regio }

let read_operand frame = function
  | Ir.Reg v -> read_reg frame v
  | Ir.Imm_i n -> Eval.Vi n
  | Ir.Imm_f f -> Eval.Vf f

let mem_read st frame region idx =
  let s = resolve_region frame region in
  if idx < 0 || idx >= s.Ir.ssize then
    error "out-of-bounds read %s[%d] (size %d)" s.Ir.sname idx s.Ir.ssize;
  let a = Layout.element_address st.layout s idx in
  (a, st.memio.mio_load a)

let mem_write st frame region idx v =
  let s = resolve_region frame region in
  if idx < 0 || idx >= s.Ir.ssize then
    error "out-of-bounds write %s[%d] (size %d)" s.Ir.sname idx s.Ir.ssize;
  let a = Layout.element_address st.layout s idx in
  st.memio.mio_store a v;
  a

let as_int = function
  | Eval.Vi n -> Int64.to_int n
  | Eval.Vf _ -> error "expected integer value"

(* ------------------------------------------------------------------ *)
(* Builtins *)

let exec_builtin st name (args : value list) : value option =
  match (name, args) with
  | "abs", [ Eval.Vi a ] -> Some (Eval.Vi (Int64.abs a))
  | "min", [ Eval.Vi a; Eval.Vi b ] -> Some (Eval.Vi (min a b))
  | "max", [ Eval.Vi a; Eval.Vi b ] -> Some (Eval.Vi (max a b))
  | "fmin", [ Eval.Vf a; Eval.Vf b ] -> Some (Eval.Vf (Float.min a b))
  | "fmax", [ Eval.Vf a; Eval.Vf b ] -> Some (Eval.Vf (Float.max a b))
  | "rand", [] -> Some (Eval.Vi (lcg_next st))
  | "srand", [ Eval.Vi seed ] ->
    st.memio.mio_set_rng seed;
    None
  | "print_int", [ Eval.Vi n ] ->
    st.memio.mio_print (Int64.to_string n ^ "\n");
    None
  | "print_float", [ Eval.Vf f ] ->
    st.memio.mio_print (Printf.sprintf "%.6g\n" f);
    None
  | _ -> error "bad builtin call %s/%d" name (List.length args)

(* ------------------------------------------------------------------ *)
(* Execution *)

let rec exec_call st (callee : Ir.func) (scalar_args : value list)
    (array_args : Ir.sym list) : value option =
  let frame =
    {
      func = callee;
      regs = Array.make (Spt_util.Idgen.peek callee.Ir.var_gen) None;
      arr_args = Array.of_list array_args;
      frio = None;
    }
  in
  (* bind scalar parameters *)
  let rec bind params args =
    match (params, args) with
    | [], [] -> ()
    | Ir.Pscalar v :: ps, a :: rest ->
      write_reg frame v a;
      bind ps rest
    | Ir.Parray _ :: ps, args -> bind ps args
    | _ -> error "arity mismatch calling %s" callee.Ir.fname
  in
  bind callee.Ir.fparams scalar_args;
  st.hooks.on_enter callee;
  let ret = run_frame st frame ~entry:callee.Ir.entry in
  st.hooks.on_exit callee;
  ret

(** Drive a frame from [entry] to its return, dispatching SPT markers
    to the machine's handler (markers are no-ops when there is none). *)
and run_frame st frame ~entry : value option =
  let watch = st.on_marker <> None in
  let rec go cur =
    match exec_segment st frame ?stop_block:None ~watch_markers:watch cur with
    | Seg_return v -> v
    | Seg_stop_block _ -> assert false (* no stop_block was given *)
    | Seg_marker (m, after) -> (
      match st.on_marker with
      | None -> go after
      | Some handler -> (
        match handler st frame m after with
        | Proceed -> go after
        | Jump_to c -> go c
        | Return_now v -> v))
  in
  go { cbid = entry; cprev = -1; cpos = 0 }

(** Execute the frame from [cur] until a marker fires in this frame
    (if [watch_markers]), control is about to enter [stop_block], or
    the frame returns.  Calls recurse and run to completion inside the
    segment; markers inside callees do not stop it. *)
and exec_segment st frame ?stop_block ~watch_markers (cur : cursor) : seg_stop
    =
  let b = Ir.block frame.func cur.cbid in
  let bid = cur.cbid and prev = cur.cprev in
  (* phis evaluate in parallel against the incoming edge, on fresh
     block entry only; a resumed cursor indexes past them *)
  let phis, rest =
    List.partition (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind) b.Ir.instrs
  in
  if cur.cpos = 0 then begin
    st.block_entries <- st.block_entries + 1;
    (match st.sampler with
    | Some s when st.block_entries land s.s_mask = 0 ->
      let t = Unix.gettimeofday () in
      let ds = st.steps - s.s_last_steps in
      if ds > 0 then
        Spt_obs.Metrics.observe h_dispatch
          ((t -. s.s_last_t) /. float_of_int ds *. 1e9);
      s.s_last_t <- t;
      s.s_last_steps <- st.steps
    | _ -> ());
    st.hooks.on_block frame.func bid;
    if prev >= 0 then st.hooks.on_edge frame.func ~src:prev ~dst:bid;
    let phi_values =
      List.map
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Phi (d, ins) -> (
            match List.assoc_opt prev ins with
            | Some o ->
              let v = read_operand frame o in
              (i, d, o, v)
            | None ->
              error "phi in bb%d has no operand for predecessor bb%d" bid prev)
          | _ -> assert false)
        phis
    in
    List.iter
      (fun ((i : Ir.instr), d, o, v) ->
        write_reg frame d v;
        st.steps <- st.steps + 1;
        let uses = match o with Ir.Reg u -> [ (u, v) ] | _ -> [] in
        st.hooks.on_instr frame.func bid i
          { no_effects with defs = [ (d, v) ]; uses })
      phi_values
  end;
  let rec exec_rest pos = function
    | [] -> None
    | (i : Ir.instr) :: tl -> (
      match i.Ir.kind with
      | Ir.Spt_fork id | Ir.Spt_kill id ->
        st.steps <- st.steps + 1;
        st.hooks.on_instr frame.func bid i no_effects;
        let m =
          match i.Ir.kind with
          | Ir.Spt_fork _ -> `Fork id
          | _ -> `Kill id
        in
        if watch_markers then
          Some (Seg_marker (m, { cbid = bid; cprev = prev; cpos = pos + 1 }))
        else exec_rest (pos + 1) tl
      | _ ->
        exec_instr st frame bid i;
        exec_rest (pos + 1) tl)
  in
  let tail =
    let rec drop n l =
      if n <= 0 then l
      else match l with [] -> [] | _ :: t -> drop (n - 1) t
    in
    drop cur.cpos rest
  in
  match exec_rest cur.cpos tail with
  | Some stop -> stop
  | None -> (
    if st.steps + st.block_entries > st.max_steps then
      error "step limit exceeded (%d)" st.max_steps;
    let continue next =
      match stop_block with
      | Some sb when next = sb ->
        Seg_stop_block { cbid = next; cprev = bid; cpos = 0 }
      | _ ->
        exec_segment st frame ?stop_block ~watch_markers
          { cbid = next; cprev = bid; cpos = 0 }
    in
    match b.Ir.term with
    | Ir.Jump next -> continue next
    | Ir.Br (c, t, e) ->
      let cv = read_operand frame c in
      let taken = Eval.is_truthy cv in
      st.hooks.on_branch frame.func bid ~taken;
      continue (if taken then t else e)
    | Ir.Ret None -> Seg_return None
    | Ir.Ret (Some o) -> Seg_return (Some (read_operand frame o)))

and exec_instr st frame bid (i : Ir.instr) =
  st.steps <- st.steps + 1;
  let fire eff = st.hooks.on_instr frame.func bid i eff in
  match i.Ir.kind with
  | Ir.Move (d, o) ->
    let v = read_operand frame o in
    write_reg frame d v;
    fire
      {
        no_effects with
        defs = [ (d, v) ];
        uses = (match o with Ir.Reg u -> [ (u, v) ] | _ -> []);
      }
  | Ir.Unop (d, op, o) ->
    let a = read_operand frame o in
    let v = Eval.eval_unop op a in
    write_reg frame d v;
    fire
      {
        no_effects with
        defs = [ (d, v) ];
        uses = (match o with Ir.Reg u -> [ (u, a) ] | _ -> []);
      }
  | Ir.Binop (d, op, oa, ob) ->
    let a = read_operand frame oa and b = read_operand frame ob in
    let v =
      try Eval.eval_binop op a b
      with Eval.Division_by_zero -> error "division by zero"
    in
    write_reg frame d v;
    let uses =
      List.filter_map
        (fun (o, x) -> match o with Ir.Reg u -> Some (u, x) | _ -> None)
        [ (oa, a); (ob, b) ]
    in
    fire { no_effects with defs = [ (d, v) ]; uses }
  | Ir.Load (d, region, idx_op) ->
    let idx = as_int (read_operand frame idx_op) in
    let addr, v = mem_read st frame region idx in
    write_reg frame d v;
    let uses =
      match idx_op with
      | Ir.Reg u -> [ (u, Eval.Vi (Int64.of_int idx)) ]
      | _ -> []
    in
    fire { no_effects with loads = [ (addr, v) ]; defs = [ (d, v) ]; uses }
  | Ir.Store (region, idx_op, src) ->
    let idx = as_int (read_operand frame idx_op) in
    let v = read_operand frame src in
    let addr = mem_write st frame region idx v in
    let uses =
      List.filter_map
        (fun (o, x) -> match o with Ir.Reg u -> Some (u, x) | _ -> None)
        [ (idx_op, Eval.Vi (Int64.of_int idx)); (src, v) ]
    in
    fire { no_effects with stores = [ (addr, v) ]; uses }
  | Ir.Call (dst, name, args) -> (
    let scalar_args =
      List.filter_map
        (function Ir.Aop o -> Some (read_operand frame o) | Ir.Aarr _ -> None)
        args
    in
    let array_args =
      List.filter_map
        (function
          | Ir.Aarr r -> Some (resolve_region frame r)
          | Ir.Aop _ -> None)
        args
    in
    let uses =
      List.filter_map
        (function
          | Ir.Aop (Ir.Reg u) -> Some (u, read_reg frame u)
          | _ -> None)
        args
    in
    match List.assoc_opt name st.program.Ir.funcs with
    | Some callee ->
      (* fire the call event before the callee's own events *)
      fire { no_effects with uses };
      let ret = exec_call st callee scalar_args array_args in
      (match (dst, ret) with
      | Some d, Some v -> write_reg frame d v
      | Some _, None -> error "call to %s returned no value" name
      | None, _ -> ())
    | None -> (
      let ret = exec_builtin st name scalar_args in
      match (dst, ret) with
      | Some d, Some v ->
        write_reg frame d v;
        fire { no_effects with defs = [ (d, v) ]; uses }
      | Some _, None -> error "builtin %s returned no value" name
      | None, _ -> fire { no_effects with uses }))
  | Ir.Phi _ -> error "phi outside block head"
  | Ir.Spt_fork _ | Ir.Spt_kill _ -> fire no_effects

let call = exec_call

(* ------------------------------------------------------------------ *)
(* Engine support — accessors used by the bytecode engine ({!Spt_exec})
   so it can drive a [state] through the same backends, budgets and
   marker handlers without this module exposing its representation *)

let memio_of st = st.memio
let program_of st = st.program
let max_steps_of st = st.max_steps
let marker_handler_of st = st.on_marker
let hooks_are_null st = st.hooks == null_hooks
let counts st = (st.steps, st.block_entries)

let set_counts st ~steps ~block_entries =
  st.steps <- steps;
  st.block_entries <- block_entries

(* ------------------------------------------------------------------ *)
(* Entry points *)

(* observability counters (no-ops unless metrics are enabled); charged
   once per run so the interpreter loop itself stays untouched *)
let m_runs = Spt_obs.Metrics.counter "interp.runs"
let m_steps = Spt_obs.Metrics.counter "interp.steps"

let run ?(hooks = null_hooks) ?(max_steps = 200_000_000) (program : Ir.program) =
  let layout = Layout.build program.Ir.globals in
  let store = new_store layout program in
  let st =
    {
      program;
      layout;
      memio = store_memio store;
      steps = 0;
      block_entries = 0;
      max_steps;
      hooks;
      on_marker = None;
      sampler = None;
    }
  in
  if Spt_obs.Metrics.enabled () then set_sampler st;
  let mainf = Ir.func_of_program program "main" in
  let return_value = exec_call st mainf [] [] in
  Spt_obs.Metrics.inc m_runs;
  Spt_obs.Metrics.add m_steps st.steps;
  {
    return_value;
    output = Buffer.contents store.sout;
    dynamic_instrs = st.steps;
  }

(** Compile MiniC source all the way and run it (no optimization). *)
let run_source ?hooks ?max_steps src =
  let ast = Spt_srclang.Typecheck.parse_and_check src in
  let prog = Lower.lower_program ast in
  run ?hooks ?max_steps prog
