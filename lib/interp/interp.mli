(** Reference interpreter for the IR, with instrumentation hooks.

    The interpreter is the ground truth for program semantics: an
    SPT-transformed program must print the same output as the original
    ([SPT_FORK]/[SPT_KILL] are sequential no-ops).  The hooks expose
    the full dynamic event stream on which the profilers (§4.1, §7.2,
    §7.3) and the trace-driven TLS timing machine are built.

    The machine-level API ([make], [exec_segment], [set_marker_handler],
    [memio]/[regio]) is what {!Spt_runtime} builds on: it lets a caller
    run instruction-granular segments of a frame against pluggable
    memory/register backends and intercept SPT markers, so speculative
    tasks reuse these semantics verbatim against versioned state. *)

open Spt_ir

type value = Eval.value

(** Register and memory effects of one executed instruction.  Addresses
    are element-granular (see {!Layout.element_address}). *)
type effects = {
  loads : (int * value) list;  (** (address, value read) *)
  stores : (int * value) list;  (** (address, value written) *)
  defs : (Ir.var * value) list;
  uses : (Ir.var * value) list;
}

val no_effects : effects

type hooks = {
  on_instr : Ir.func -> int -> Ir.instr -> effects -> unit;
      (** fires after each instruction; callee instructions fire with
          their own function and blocks *)
  on_block : Ir.func -> int -> unit;  (** block entry *)
  on_edge : Ir.func -> src:int -> dst:int -> unit;  (** taken CFG edge *)
  on_branch : Ir.func -> int -> taken:bool -> unit;
      (** conditional-branch outcome in the given block *)
  on_enter : Ir.func -> unit;  (** function entry (after the caller's
      [on_instr] for the call instruction) *)
  on_exit : Ir.func -> unit;  (** function return *)
}

val null_hooks : hooks

(** Fan one event stream out to several consumers. *)
val combine_hooks : hooks list -> hooks

exception Runtime_error of string

type result = {
  return_value : value option;
  output : string;  (** everything the print builtins wrote *)
  dynamic_instrs : int;
}

(** Execute [main].  Deterministic: the [rand] builtin is a fixed-seed
    LCG ([srand] reseeds it).
    @raise Runtime_error on out-of-bounds access, division by zero or
    exceeding [max_steps]. *)
val run : ?hooks:hooks -> ?max_steps:int -> Ir.program -> result

(** Front-end convenience: parse, type-check, lower and run. *)
val run_source : ?hooks:hooks -> ?max_steps:int -> string -> result

(** {1 Machine-level API}

    Everything below is the explicit-machine interface used by the
    speculative runtime.  [run] is equivalent to [make] with a fresh
    [store] backend followed by [call] of [main]. *)

(** Memory, RNG and output backend of a machine.  Addresses are
    element-granular. *)
type memio = {
  mio_load : int -> value;
  mio_store : int -> value -> unit;
  mio_rng : unit -> int64;  (** current LCG state *)
  mio_set_rng : int64 -> unit;
  mio_print : string -> unit;  (** output of the print builtins *)
}

(** Register backend for a single frame; [rio_get] returns [None] for
    uninitialized registers. *)
type regio = {
  rio_get : Ir.var -> value option;
  rio_set : Ir.var -> value -> unit;
}

(** The concrete default backend: flat element-granular memory
    initialized from the program's globals, the fixed-seed LCG, and an
    output buffer. *)
type store = { smem : value array; mutable srng : int64; sout : Buffer.t }

val initial_rng : int64
val new_store : Layout.t -> Ir.program -> store
val store_memio : store -> memio

(** An activation record.  [frio = None] reads and writes the flat
    [regs] array; [Some r] routes every register access through [r]
    (used for speculative register versioning of the loop frame). *)
type frame = {
  func : Ir.func;
  regs : value option array;
  arr_args : Ir.sym array;
  frio : regio option;
}

(** Frame whose registers live entirely behind a [regio]. *)
val mk_frame : Ir.func -> arr_args:Ir.sym array -> regio:regio -> frame

(** Position within a frame: block, incoming edge (for phis; [-1] at
    function entry) and index of the next instruction among the block's
    {e non-phi} instructions.  [cpos = 0] is a fresh block entry. *)
type cursor = { cbid : int; cprev : int; cpos : int }

type marker = [ `Fork of int | `Kill of int ]

(** Why [exec_segment] stopped. *)
type seg_stop =
  | Seg_marker of marker * cursor
      (** an SPT marker executed in the segment's own frame; the cursor
          points just past it *)
  | Seg_stop_block of cursor
      (** control is about to enter [stop_block]; phis not yet run *)
  | Seg_return of value option

(** What a marker handler tells the executing frame to do next. *)
type marker_action =
  | Proceed  (** treat the marker as a sequential no-op *)
  | Jump_to of cursor  (** resume this frame at the given cursor *)
  | Return_now of value option  (** unwind the frame with this value *)

(** An interpreter machine: a program plus a backend and step budget.
    Machines are single-threaded; concurrency comes from running one
    machine per domain against views of shared state. *)
type state

val make :
  ?hooks:hooks -> ?max_steps:int -> memio:memio -> Ir.program -> state

val layout : state -> Layout.t
val steps : state -> int  (** dynamic instructions executed so far *)

(** Arm dispatch-time sampling on this machine: every [mask + 1] block
    entries (default 1024; [mask] must be [2^k - 1]) the machine books
    the observed ns-per-instruction of the window into the
    ["interp.dispatch_ns_per_instr"] registry histogram.  Install only
    on machines driven by the metrics-owning thread — the registry is
    not thread-safe.  [run] arms itself when metrics are enabled. *)
val set_sampler : ?mask:int -> state -> unit

(** Install (or clear, with [None]) the SPT-marker interceptor.  When
    set, every [`Fork]/[`Kill] executed by a frame driven by [call]
    is dispatched to it; segment execution inside the handler must use
    [exec_segment] directly to avoid re-entrant dispatch. *)
val set_marker_handler :
  state -> (state -> frame -> marker -> cursor -> marker_action) option -> unit

(** Execute from [cursor] until: a marker executes in this frame (if
    [watch_markers]; the marker is counted and its [on_instr] fired
    before stopping), control is about to transfer to [stop_block]
    (checked on block transitions only, never the initial cursor), or
    the frame returns.  Calls run to completion inside the segment.
    @raise Runtime_error as [run] does. *)
val exec_segment :
  state ->
  frame ->
  ?stop_block:int ->
  watch_markers:bool ->
  cursor ->
  seg_stop

(** Call a function with the given scalar and array arguments, driving
    it (and its callees) to completion, dispatching markers to the
    machine's handler. *)
val call : state -> Ir.func -> value list -> Ir.sym list -> value option

(** {1 Engine support}

    Accessors used by the bytecode engine ({!Spt_exec}) to drive a
    machine through the same backends, budgets and marker handlers as
    this interpreter.  Not intended for general use. *)

val memio_of : state -> memio
val program_of : state -> Ir.program
val max_steps_of : state -> int

val marker_handler_of :
  state -> (state -> frame -> marker -> cursor -> marker_action) option

(** [true] when no instrumentation hooks are installed — the only
    machines the bytecode engine may drive (it fires no hooks). *)
val hooks_are_null : state -> bool

(** Current [(steps, block_entries)] counters. *)
val counts : state -> int * int

val set_counts : state -> steps:int -> block_entries:int -> unit

(** Execute a builtin against the machine's backend ([rand]/[srand]
    use its RNG, prints its output buffer).
    @raise Runtime_error on unknown builtins or bad arguments. *)
val exec_builtin : state -> string -> value list -> value option
