(** Memory layout: assigns every global region a base byte address in a
    flat address space.  Elements are 8 bytes; regions are aligned to
    cache-line boundaries so two regions never share a line. *)

open Spt_ir

val element_size : int
val line_size : int

type t

val build : Ir.sym list -> t

(** Base byte address of a region.
    @raise Invalid_argument for unknown regions. *)
val base : t -> Ir.sym -> int

(** Byte address of element [idx]. *)
val address : t -> Ir.sym -> int -> int

(** Element-granular address (byte address / 8): the unit used by the
    interpreter's effects, the shadow memory and the TLS machine. *)
val element_address : t -> Ir.sym -> int -> int

val total_elements : t -> int

(** Region holding an element-granular address — the inverse of
    {!element_address} over [globals]; [None] for addresses outside
    every region. *)
val owner_of_element : t -> Ir.sym list -> int -> Ir.sym option
