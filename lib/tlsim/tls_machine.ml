(** The synthetic two-core TLS machine (§8).

    A trace-driven timing simulator: program *semantics* always come
    from the sequential interpreter (so SPT-transformed code is
    guaranteed functionally correct), and this machine consumes the
    dynamic event stream to compute *cycles* under the paper's
    execution model — one main core plus one speculative core, in-order
    issue, shared L2/L3 under private L1s, a bimodal branch predictor
    (5-cycle mispredict), 6-cycle fork and 5-cycle commit overheads.

    Inside a speculatively parallelized loop, consecutive iterations
    form (main, speculative) pairs: the main core runs iteration [i],
    spawning the speculative core at the SPT_FORK with a copy of the
    register context; the speculative core runs iteration [i+1] from
    the fork-completion time.  Violations are detected exactly as the
    hardware would:

    - a register read of the forked context is violated when the value
      at fork time differs from the value the read needs (value-based
      validation — which is also what makes software value prediction
      effective: a correctly predicted carried register is written
      before the fork and post-fork writes are value-identical);
    - a speculative load is violated when the main core stores to the
      same line element *after* the speculative core loaded it
      (address/time-based), unless the speculative thread had already
      buffered its own store to that address.

    Misspeculation propagates forward through the speculative
    iteration's register and store-buffer dataflow; at validation the
    main core commits (5 cycles) and re-executes the misspeculated
    slice serially, exactly the cost the paper's model estimates. *)

open Spt_ir
open Spt_interp
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* observability counters (no-ops unless metrics are enabled) *)
let m_instances = Spt_obs.Metrics.counter "tlsim.instances"
let m_iterations = Spt_obs.Metrics.counter "tlsim.iterations"
let m_forks = Spt_obs.Metrics.counter "tlsim.forks"
let m_misspeculations = Spt_obs.Metrics.counter "tlsim.misspeculations"
let m_kills = Spt_obs.Metrics.counter "tlsim.kills"
let m_reg_violations = Spt_obs.Metrics.counter "tlsim.reg_violations"
let m_mem_violations = Spt_obs.Metrics.counter "tlsim.mem_violations"

type config = {
  fork_overhead : float;
  commit_overhead : float;
  issue_width : float;
  cache : Cache.config;
  max_eligible_body : int;
      (** loop-size bound for the "maximum coverage" metric (paper: 1000) *)
  min_eligible_body : int;
}

let default_config =
  {
    fork_overhead = 6.0;
    commit_overhead = 5.0;
    issue_width = 2.0;
    cache = Cache.itanium2_config;
    max_eligible_body = 1000;
    min_eligible_body = 20;
  }

(** A speculatively parallelized loop, as registered by the driver. *)
type spt_loop = { sl_id : int; sl_fname : string; sl_header : int; sl_body : Iset.t }

(* ------------------------------------------------------------------ *)
(* Per-event cost model *)

let base_cost cfg (k : Ir.kind) =
  let unit = 1.0 /. cfg.issue_width in
  match k with
  | Ir.Move _ | Ir.Phi _ -> unit
  | Ir.Unop (_, (Ir.Neg | Ir.Bnot | Ir.I2f | Ir.F2i | Ir.Fabs), _) -> unit
  | Ir.Unop (_, Ir.Fsqrt, _) -> 15.0
  | Ir.Binop (d, ((Ir.Mul | Ir.Div | Ir.Rem) as op), _, _) -> (
    match (d.Ir.vty, op) with
    | Ir.I64, Ir.Mul -> 2.0
    | Ir.I64, _ -> 8.0
    | Ir.F64, Ir.Mul -> 1.0
    | Ir.F64, _ -> 15.0)
  | Ir.Binop (d, _, _, _) -> if d.Ir.vty = Ir.F64 then 0.75 else unit
  | Ir.Load _ -> unit  (* cache latency added separately *)
  | Ir.Store _ -> unit  (* store buffer hides the write *)
  | Ir.Call _ -> 1.5
  | Ir.Spt_fork _ | Ir.Spt_kill _ -> unit

let load_extra lat = 0.8 *. float_of_int (lat - 1)

(* ------------------------------------------------------------------ *)
(* Buffered events of speculative-loop iterations *)

type ev =
  | Ev_instr of {
      base : float;
      op_units : int;
      frame : int;
      loads : int list;  (** element addresses *)
      stores : int list;
      uses : (int * Eval.value) list;  (** (vid, value) *)
      defs : (int * Eval.value) list;
      is_fork : bool;
      feeds_branch : bool;
          (** the defined value is used by some conditional branch: a
              misspeculated definition here sends the speculative thread
              down a wrong path, poisoning everything after it *)
    }
  | Ev_branch of { site : int; taken : bool }

(* ------------------------------------------------------------------ *)
(* Metrics *)

type loop_metrics = {
  mutable lm_instances : int;
  mutable lm_iterations : int;
  mutable lm_pairs : int;
  mutable lm_violated_pairs : int;
  mutable lm_reexec_units : float;
  mutable lm_spec_units : float;
  mutable lm_spt_cycles : float;
  mutable lm_serial_est : float;
  mutable lm_forks : int;
  mutable lm_reg_violations : int;
  mutable lm_mem_violations : int;
}

let fresh_loop_metrics () =
  {
    lm_instances = 0;
    lm_iterations = 0;
    lm_pairs = 0;
    lm_violated_pairs = 0;
    lm_reexec_units = 0.0;
    lm_spec_units = 0.0;
    lm_spt_cycles = 0.0;
    lm_serial_est = 0.0;
    lm_forks = 0;
    lm_reg_violations = 0;
    lm_mem_violations = 0;
  }

type result = {
  cycles : float;
  instrs : int;
  ipc : float;
  cache_stats : Cache.stats;
  branch_mispredict_rate : float;
  loop_metrics : (int * loop_metrics) list;  (** per SPT loop id *)
  spt_cycles_total : float;  (** cycles inside SPT loop instances *)
  eligible_loop_cycles : float;
      (** base-run metric: cycles attributable to loops within the
          eligible size bounds (Fig. 16's maximum coverage) *)
  static_loop_cycles : ((string * int) * float) list;
      (** cycles per static loop (function, header) *)
  output : string;
}

(* ------------------------------------------------------------------ *)
(* Machine state *)

type spt_state = {
  sl : spt_loop;
  s_frame : int;
  s_metrics : loop_metrics;
  s_entry_clock : float;
  mutable cur : ev list;  (** reversed events of the current iteration *)
  mutable cur_nonempty : bool;
  mutable pending : ev array option;  (** buffered main iteration *)
  mutable regfile : Eval.value Imap.t;
      (** loop-frame registers, persistent for cheap fork snapshots *)
}

type mode = Seq | Spt of spt_state

(* one active loop on the coverage stack: eligibility starts from the
   static size bound and is revoked at runtime once the measured
   per-iteration cycles exceed the hardware buffering limit — the
   "maximum loop size" of Fig. 16 is about the dynamic thread size *)
type cover_frame = {
  cv_header : int;
  cv_body : Iset.t;
  mutable cv_eligible : bool;
  mutable cv_cycles : float;
  mutable cv_iters : int;
}

type machine = {
  cfg : config;
  cache : Cache.t;
  bp_main : Branch_pred.t;
  bp_spec : Branch_pred.t;
  mutable clock : float;
  mutable instrs : int;
  mutable mode : mode;
  mutable frame_serial : int;
  mutable frame_stack : int list;
  spt_by_site : (string * int, spt_loop) Hashtbl.t;
  metrics : (int, loop_metrics) Hashtbl.t;
  mutable spt_cycles_total : float;
  (* base-run loop-coverage tracking *)
  loops_of : (string, (int * Iset.t * int) list) Hashtbl.t;
      (** function -> (header, body, static size) list *)
  mutable cover_stack : cover_frame list list;
      (** per call frame: active loops, outermost first *)
  mutable eligible_cycles : float;
  loop_cycles : (string * int, float) Hashtbl.t;
      (** wall cycles per static loop (outermost active) *)
  br_conds : (string, Iset.t) Hashtbl.t;
      (** per function: vids read by conditional branches *)
}

let current_frame m = match m.frame_stack with [] -> 0 | f :: _ -> f

let site_hash fname bid = (Hashtbl.hash fname * 8191) + bid

(* ------------------------------------------------------------------ *)
(* Sequential-mode cost of one event, charged to a core *)

let instr_cost m ~core ~base ~loads =
  List.fold_left
    (fun acc addr -> acc +. load_extra (Cache.access m.cache ~core (addr * 8)))
    base loads

let store_touch m ~core stores =
  List.iter (fun addr -> ignore (Cache.access m.cache ~core (addr * 8))) stores

(* ------------------------------------------------------------------ *)
(* Pair timing: main iteration [mi], speculative iteration [si].
   Updates the machine clock and the loop metrics. *)

let ev_units = function Ev_instr e -> float_of_int e.op_units | Ev_branch _ -> 0.0

let run_pair m (st : spt_state) (mi : ev array) (si : ev array option) =
  let cfg = m.cfg in
  let lm = st.s_metrics in
  (* --- main core executes mi --- *)
  let fork_time = ref None in
  let fork_snapshot = ref st.regfile in
  let post_stores : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* real work cycles charged on either core, excluding fork/commit/
     re-execution overheads — the serial-equivalent time of the pair,
     used by the Fig. 18 per-loop speedup metric *)
  let work = ref 0.0 in
  Array.iter
    (fun ev ->
      match ev with
      | Ev_branch { site; taken } ->
        let p = float_of_int (Branch_pred.access m.bp_main ~site ~taken) in
        work := !work +. p;
        m.clock <- m.clock +. p
      | Ev_instr e ->
        if e.is_fork then begin
          m.clock <- m.clock +. cfg.fork_overhead;
          fork_time := Some m.clock;
          fork_snapshot := st.regfile;
          lm.lm_forks <- lm.lm_forks + 1;
          Spt_obs.Metrics.inc m_forks
        end
        else begin
          let c = instr_cost m ~core:0 ~base:e.base ~loads:e.loads in
          work := !work +. c;
          m.clock <- m.clock +. c;
          store_touch m ~core:0 e.stores;
          if !fork_time <> None then
            List.iter
              (fun addr ->
                match Hashtbl.find_opt post_stores addr with
                | Some t when t >= m.clock -> ()
                | _ -> Hashtbl.replace post_stores addr m.clock)
              e.stores
        end;
        (* sequential register state advances with the main iteration *)
        if e.frame = st.s_frame then
          List.iter
            (fun (vid, v) -> st.regfile <- Imap.add vid v st.regfile)
            e.defs)
    mi;
  let m_end = m.clock in
  (* --- speculative core executes si from the fork point --- *)
  match (si, !fork_time) with
  | None, _ | _, None ->
    (* no partner or no fork: any buffered partner runs serially — the
       speculative thread, if any, is killed at the loop boundary *)
    (match si with
    | Some si ->
      Spt_obs.Metrics.inc m_kills;
      Array.iter
        (fun ev ->
          match ev with
          | Ev_branch { site; taken } ->
            let p = float_of_int (Branch_pred.access m.bp_main ~site ~taken) in
            work := !work +. p;
            m.clock <- m.clock +. p
          | Ev_instr e ->
            let c = instr_cost m ~core:0 ~base:e.base ~loads:e.loads in
            work := !work +. c;
            m.clock <- m.clock +. c;
            store_touch m ~core:0 e.stores;
            if e.frame = st.s_frame then
              List.iter
                (fun (vid, v) -> st.regfile <- Imap.add vid v st.regfile)
                e.defs)
        si
    | None -> ());
    lm.lm_serial_est <- lm.lm_serial_est +. !work
  | Some si, Some ft ->
    lm.lm_pairs <- lm.lm_pairs + 1;
    let snapshot = !fork_snapshot in
    let s_clock = ref ft in
    let spec_defs : (int, bool) Hashtbl.t = Hashtbl.create 64 in
    (* vid -> defining event misspeculated? *)
    let spec_stores : (int, bool) Hashtbl.t = Hashtbl.create 64 in
    let reexec = ref 0.0 and reexec_units = ref 0.0 in
    let violated = ref false in
    let wrong_path = ref false in
    Array.iter
      (fun ev ->
        match ev with
        | Ev_branch { site; taken } ->
          let p = float_of_int (Branch_pred.access m.bp_spec ~site ~taken) in
          work := !work +. p;
          s_clock := !s_clock +. p
        | Ev_instr e ->
          (* the cores are tightly coupled and share the whole cache
             hierarchy (§8), so speculative accesses hit the same L1 *)
          let cost = instr_cost m ~core:0 ~base:e.base ~loads:e.loads in
          work := !work +. cost;
          store_touch m ~core:0 e.stores;
          let mis = ref !wrong_path in
          (* register live-in validation (value-based) *)
          if e.frame = st.s_frame then
            List.iter
              (fun (vid, v) ->
                match Hashtbl.find_opt spec_defs vid with
                | Some def_mis -> if def_mis then mis := true
                | None -> (
                  match Imap.find_opt vid snapshot with
                  | Some fork_v ->
                    if fork_v <> v then begin
                      mis := true;
                      lm.lm_reg_violations <- lm.lm_reg_violations + 1;
                      Spt_obs.Metrics.inc m_reg_violations;
                      if Sys.getenv_opt "SPT_TRACE_VIOL" <> None then
                        Printf.eprintf "[viol] reg vid=%d\n%!" vid
                    end
                  | None -> ()))
              e.uses
          else
            (* callee-frame instruction: misspeculation flows through the
               call's own registers only via memory and the call's
               arguments; we approximate by memory and the propagation
               below *)
            ();
          (* memory validation: main stored after we loaded *)
          List.iter
            (fun addr ->
              match Hashtbl.find_opt spec_stores addr with
              | Some st_mis -> if st_mis then mis := true
              | None -> (
                match Hashtbl.find_opt post_stores addr with
                | Some t_store when t_store > !s_clock ->
                  mis := true;
                  lm.lm_mem_violations <- lm.lm_mem_violations + 1;
                  Spt_obs.Metrics.inc m_mem_violations
                | _ -> ()))
            e.loads;
          if !mis then begin
            violated := true;
            (* the main core re-executes this instruction, paying its
               full latency including the memory system *)
            reexec := !reexec +. cost;
            reexec_units := !reexec_units +. float_of_int e.op_units;
            if e.feeds_branch then wrong_path := true
          end;
          List.iter (fun (vid, _) -> Hashtbl.replace spec_defs vid !mis) e.defs;
          List.iter (fun addr -> Hashtbl.replace spec_stores addr !mis) e.stores;
          s_clock := !s_clock +. cost;
          (* sequential register state also advances with the spec
             iteration (it commits) *)
          if e.frame = st.s_frame then
            List.iter
              (fun (vid, v) -> st.regfile <- Imap.add vid v st.regfile)
              e.defs)
      si;
    let s_end = !s_clock in
    if !violated then begin
      lm.lm_violated_pairs <- lm.lm_violated_pairs + 1;
      Spt_obs.Metrics.inc m_misspeculations
    end;
    lm.lm_reexec_units <- lm.lm_reexec_units +. !reexec_units;
    lm.lm_spec_units <-
      lm.lm_spec_units +. Array.fold_left (fun acc ev -> acc +. ev_units ev) 0.0 si;
    lm.lm_serial_est <- lm.lm_serial_est +. !work;
    m.clock <- Float.max m_end s_end +. cfg.commit_overhead +. !reexec

(* ------------------------------------------------------------------ *)
(* Iteration boundary handling *)

let finish_iteration m st =
  if st.cur_nonempty then begin
    let it = Array.of_list (List.rev st.cur) in
    st.cur <- [];
    st.cur_nonempty <- false;
    st.s_metrics.lm_iterations <- st.s_metrics.lm_iterations + 1;
    Spt_obs.Metrics.inc m_iterations;
    match st.pending with
    | None -> st.pending <- Some it
    | Some mi ->
      st.pending <- None;
      run_pair m st mi (Some it)
  end

let flush_instance m st =
  finish_iteration m st;
  (match st.pending with
  | Some mi ->
    st.pending <- None;
    run_pair m st mi None
  | None -> ());
  let spent = m.clock -. st.s_entry_clock in
  st.s_metrics.lm_spt_cycles <- st.s_metrics.lm_spt_cycles +. spent;
  m.spt_cycles_total <- m.spt_cycles_total +. spent;
  m.mode <- Seq

(* ------------------------------------------------------------------ *)
(* Base-run loop-coverage tracking *)

let update_cover_stack m (f : Ir.func) bid =
  match m.cover_stack with
  | [] -> ()
  | top :: rest ->
    let top = List.filter (fun fr -> Iset.mem bid fr.cv_body) top in
    List.iter (fun fr -> if fr.cv_header = bid then fr.cv_iters <- fr.cv_iters + 1) top;
    let top =
      match Hashtbl.find_opt m.loops_of f.Ir.fname with
      | None -> top
      | Some loops -> (
        match List.find_opt (fun (h, _, _) -> h = bid) loops with
        | Some (h, body, size)
          when not (List.exists (fun fr -> fr.cv_header = h) top) ->
          let eligible =
            size >= m.cfg.min_eligible_body && size <= m.cfg.max_eligible_body
          in
          top
          @ [
              {
                cv_header = h;
                cv_body = body;
                cv_eligible = eligible;
                cv_cycles = 0.0;
                cv_iters = 1;
              };
            ]
        | _ -> top)
    in
    m.cover_stack <- top :: rest

(* charge [dc] cycles of work happening now to the loop-coverage
   accounts: the outermost active eligible loop gets the eligible
   credit, and the outermost active loop of the current function gets
   the per-loop account *)
let charge_coverage m fname dc =
  (* every active loop accumulates its measured cost; a loop whose
     per-iteration cycles exceed the speculative-buffering limit (~1000
     operations' worth) stops being a coverage candidate, exactly like
     the paper's maximum-loop-size cut *)
  let cycle_cap = 0.7 *. float_of_int m.cfg.max_eligible_body in
  List.iter
    (List.iter (fun fr ->
         fr.cv_cycles <- fr.cv_cycles +. dc;
         if
           fr.cv_eligible && fr.cv_iters > 8
           && fr.cv_cycles /. float_of_int fr.cv_iters > cycle_cap
         then fr.cv_eligible <- false))
    m.cover_stack;
  (match
     List.find_map
       (fun frame -> List.find_opt (fun fr -> fr.cv_eligible) frame)
       m.cover_stack
   with
  | Some _ -> m.eligible_cycles <- m.eligible_cycles +. dc
  | None -> ());
  match m.cover_stack with
  | (outer :: _) :: _ ->
    let key = (fname, outer.cv_header) in
    Hashtbl.replace m.loop_cycles key
      (dc +. Option.value ~default:0.0 (Hashtbl.find_opt m.loop_cycles key))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Hook construction *)

let make_machine cfg (program : Ir.program) (spt_loops : spt_loop list) =
  let spt_by_site = Hashtbl.create 8 in
  List.iter
    (fun sl -> Hashtbl.replace spt_by_site (sl.sl_fname, sl.sl_header) sl)
    spt_loops;
  let metrics = Hashtbl.create 8 in
  List.iter
    (fun sl -> Hashtbl.replace metrics sl.sl_id (fresh_loop_metrics ()))
    spt_loops;
  let br_conds = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      let vids =
        List.fold_left
          (fun acc bid ->
            match (Ir.block f bid).Ir.term with
            | Ir.Br (Ir.Reg v, _, _) -> Iset.add v.Ir.vid acc
            | _ -> acc)
          Iset.empty (Ir.block_ids f)
      in
      Hashtbl.replace br_conds name vids)
    program.Ir.funcs;
  let loops_of = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      let ls =
        List.map
          (fun (l : Loops.loop) ->
            let size =
              Loops.Iset.fold
                (fun bid acc -> acc + Ir.block_size (Ir.block f bid))
                l.Loops.body 0
            in
            (l.Loops.header, Iset.of_list (Loops.Iset.elements l.Loops.body), size))
          (Loops.find f)
      in
      Hashtbl.replace loops_of name ls)
    program.Ir.funcs;
  {
    cfg;
    cache = Cache.create ~config:cfg.cache ~cores:1 ();
    bp_main = Branch_pred.create ();
    bp_spec = Branch_pred.create ();
    clock = 0.0;
    instrs = 0;
    mode = Seq;
    frame_serial = 0;
    frame_stack = [];
    spt_by_site;
    metrics;
    spt_cycles_total = 0.0;
    loops_of;
    cover_stack = [];
    eligible_cycles = 0.0;
    loop_cycles = Hashtbl.create 32;
    br_conds;
  }

let hooks m =
  let on_enter _f =
    m.frame_serial <- m.frame_serial + 1;
    m.frame_stack <- m.frame_serial :: m.frame_stack;
    m.cover_stack <- [] :: m.cover_stack
  in
  let on_exit f =
    (match m.mode with
    | Spt st when current_frame m = st.s_frame -> flush_instance m st
    | _ -> ());
    (match m.frame_stack with [] -> () | _ :: rest -> m.frame_stack <- rest);
    (match m.cover_stack with [] -> () | _ :: rest -> m.cover_stack <- rest);
    ignore f
  in
  let on_block f bid =
    update_cover_stack m f bid;
    match m.mode with
    | Spt st ->
      if current_frame m = st.s_frame && f.Ir.fname = st.sl.sl_fname then begin
        if bid = st.sl.sl_header then finish_iteration m st
        else if not (Iset.mem bid st.sl.sl_body) then flush_instance m st
      end
    | Seq -> (
      match Hashtbl.find_opt m.spt_by_site (f.Ir.fname, bid) with
      | Some sl ->
        let lm = Hashtbl.find m.metrics sl.sl_id in
        lm.lm_instances <- lm.lm_instances + 1;
        Spt_obs.Metrics.inc m_instances;
        m.mode <-
          Spt
            {
              sl;
              s_frame = current_frame m;
              s_metrics = lm;
              s_entry_clock = m.clock;
              cur = [];
              cur_nonempty = false;
              pending = None;
              regfile = Imap.empty;
            }
      | None -> ())
  in
  let on_branch f bid ~taken =
    let site = site_hash f.Ir.fname bid in
    match m.mode with
    | Spt st -> st.cur <- Ev_branch { site; taken } :: st.cur
    | Seq ->
      let p = Branch_pred.access m.bp_main ~site ~taken in
      m.clock <- m.clock +. float_of_int p;
      charge_coverage m f.Ir.fname (float_of_int p)
  in
  let on_instr f _bid (i : Ir.instr) (eff : Interp.effects) =
    m.instrs <- m.instrs + 1;
    let base = base_cost m.cfg i.Ir.kind in
    let loads = List.map fst eff.Interp.loads in
    let stores = List.map fst eff.Interp.stores in
    match m.mode with
    | Spt st ->
      let frame = current_frame m in
      st.cur <-
        Ev_instr
          {
            base;
            op_units = Ir.op_cost i.Ir.kind;
            frame;
            loads;
            stores;
            uses = List.map (fun (v, x) -> (v.Ir.vid, x)) eff.Interp.uses;
            defs = List.map (fun (v, x) -> (v.Ir.vid, x)) eff.Interp.defs;
            is_fork = (match i.Ir.kind with Ir.Spt_fork id -> id = st.sl.sl_id | _ -> false);
            feeds_branch =
              (match Ir.def_of_kind i.Ir.kind with
              | Some d -> (
                match Hashtbl.find_opt m.br_conds f.Ir.fname with
                | Some vids -> Iset.mem d.Ir.vid vids
                | None -> false)
              | None -> false);
          }
        :: st.cur;
      st.cur_nonempty <- true
    | Seq ->
      let c = instr_cost m ~core:0 ~base ~loads in
      store_touch m ~core:0 stores;
      m.clock <- m.clock +. c;
      charge_coverage m f.Ir.fname c
  in
  {
    Interp.on_instr;
    on_block;
    on_edge = (fun _ ~src:_ ~dst:_ -> ());
    on_branch;
    on_enter;
    on_exit;
  }

(* ------------------------------------------------------------------ *)
(* Entry point *)

(** Simulate [program].  [spt_loops] lists the speculatively
    parallelized loops of the (transformed) program; pass [[]] to get
    the non-SPT baseline timing (Table 1). *)
let run ?(config = default_config) ?(spt_loops = []) ?max_steps
    (program : Ir.program) : result =
  let m = make_machine config program spt_loops in
  let r = Interp.run ~hooks:(hooks m) ?max_steps program in
  (* close any SPT instance left open at program end *)
  (match m.mode with Spt st -> flush_instance m st | Seq -> ());
  {
    cycles = m.clock;
    instrs = m.instrs;
    ipc = (if m.clock > 0.0 then float_of_int m.instrs /. m.clock else 0.0);
    cache_stats = Cache.stats m.cache;
    branch_mispredict_rate = Branch_pred.misprediction_rate m.bp_main;
    loop_metrics = Hashtbl.fold (fun id lm acc -> (id, lm) :: acc) m.metrics [];
    spt_cycles_total = m.spt_cycles_total;
    eligible_loop_cycles = m.eligible_cycles;
    static_loop_cycles =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.loop_cycles [];
    output = r.Interp.output;
  }
