(** The misspeculation cost model (§4.2 of the paper).

    Given a loop's annotated dependence graph ({!Spt_depgraph.Depgraph}),
    {!build} constructs the loop's *cost graph* once: a pseudo-node per
    violation candidate, initial edges to the readers of its
    cross-iteration dependences, and the intra-iteration
    true-dependence closure of those readers.  {!misspeculation_cost}
    then evaluates any candidate partition in time linear in the cost
    graph. *)

open Spt_depgraph

module Iset : module type of Set.Make (Int)

(** How re-execution probabilities combine.

    - [`Independent] — the paper's §4.2.3 node-level recurrence
      [x := 1 − (1−x)(1 − r·v(p))].  On reconvergent graphs one
      violation candidate is counted once per path, inflating the
      estimate (the conservatism the paper observes in Fig. 19).
    - [`Per_seed] (default) — per-candidate max-product path strength,
      combined across candidates with the independence rule; identical
      to [`Independent] whenever paths do not reconverge (in particular
      on the paper's Fig. 5/6 worked example).
    - [`Max_rule] — ablation lower bound. *)
type combine = [ `Independent | `Max_rule | `Per_seed ]

(** A cost-graph edge for the generic core: probability that
    re-execution of [gsrc] re-executes [gdst]. *)
type gedge = { gsrc : int; gdst : int; gprob : float }

(** Generic node-level propagation over an explicit graph (used by the
    Fig. 5/6 worked-example tests); returns each node's re-execution
    probability.  [intra] must be acyclic. *)
val compute :
  ?combine:[ `Independent | `Max_rule ] ->
  op_nodes:int list ->
  vc_pseudo:int list ->
  initial:gedge list ->
  intra:gedge list ->
  vc_prob:(int -> float) ->
  unit ->
  (int, float) Hashtbl.t

(** Per-seed variant of {!compute} (see {!type-combine}). *)
val compute_per_seed :
  op_nodes:int list ->
  vc_pseudo:int list ->
  initial:gedge list ->
  intra:gedge list ->
  vc_prob:(int -> float) ->
  unit ->
  (int, float) Hashtbl.t

(** A loop's cost graph, built once and evaluated per partition. *)
type t = {
  graph : Depgraph.t;
  vcs : int list;  (** violation candidates, sorted *)
  op_nodes : int list;  (** operation nodes of the cost graph *)
  initial : gedge list;  (** pseudo(vc) → reader edges *)
  intra : gedge list;  (** propagation edges among operations *)
}

(** Pseudo-node id for a violation candidate (instruction iids are
    non-negative, pseudo ids negative). *)
val pseudo_of_vc : int -> int

val vc_of_pseudo : int -> int
val is_pseudo : int -> bool

(** Build the cost graph of [graph]'s loop. *)
val build : Depgraph.t -> t

(** Re-execution probability of every operation node under the
    partition whose pre-fork statement set is [prefork] (§4.2.3). *)
val reexec_probs : ?combine:combine -> t -> prefork:Iset.t -> (int, float) Hashtbl.t

(** Misspeculation cost of a partition (§4.2.4): the expected amount of
    re-executed computation per speculative iteration, in elementary
    operation units, weighting each operation by its per-iteration
    execution frequency. *)
val misspeculation_cost : ?combine:combine -> t -> prefork:Iset.t -> float

(** [cost / max 1 body_size] — the predicted per-iteration
    misspeculation fraction, directly comparable to observed runtime
    misspeculation rates (Fig. 19, and the feedback loop's divergence
    detector). *)
val predicted_fraction : cost:float -> body_size:float -> float

(** The speculation depths the compile-time chooser considers. *)
val depth_candidates : int list

(** The runtime's chunk auto-size replicated at compile time (~2048
    dynamic ops per chunk clamped to [1, 256]; 16 when [body_size] is
    unknown), so depth pricing sees the chunks the runtime will fork. *)
val auto_chunk : body_size:float -> int

(** Probability at least one of [chunk] iterations violates, given the
    per-iteration misspeculation probability [iter_prob]. *)
val chunk_violation_prob : iter_prob:float -> chunk:int -> float

(** Expected kill-cascade cost of one violation at [depth], in
    chunk-execution units: the offender's serial replay plus, on
    average, [(depth-1)/2] in-flight successors thrown away. *)
val cascade_factor : depth:int -> float

(** Expected relative cost per retired chunk at [depth]: a [1/depth]
    pipelining-gain term plus the expected kill-cascade loss
    [chunk_prob * cascade_factor]. *)
val depth_cost : chunk_prob:float -> depth:int -> float

(** The depth minimizing {!depth_cost} for a loop with optimal
    misspeculation cost [cost] and dynamic body size [body_size] —
    K-deep pipelining priced per region (smallest depth wins ties).
    Independent of the worker count; the runtime caps the effective
    depth at its in-flight window. *)
val pick_depth : cost:float -> body_size:float -> int

(** Render the cost graph as Graphviz DOT (Fig. 6 style). *)
val to_dot : t -> string
