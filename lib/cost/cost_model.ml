(** The misspeculation cost model (§4.2).

    Given a loop's annotated dependence graph, a *cost graph* is built
    once per loop: a pseudo-node per violation candidate, initial edges
    from each pseudo-node to the readers of its cross-iteration
    dependences (annotated with the cross-dependence probability), and
    the intra-iteration true-dependence closure of those readers (the
    propagation of re-execution inside the speculative iteration).

    Evaluating a partition then:
    1. sets each pseudo-node's re-execution probability to 0 when its
       violation candidate sits in the pre-fork region, and to its
       violation probability otherwise (§4.2.3 steps 1 & 3);
    2. propagates in topological order with the independence
       approximation [x := 1 − (1−x)(1 − r·v(p))] (§4.2.3 step 4);
    3. sums [v(c) · Cost(c)] over operation nodes outside the pre-fork
       region (§4.2.4).

    The generic core ({!compute}) is exposed separately so the paper's
    Fig. 5/6 worked example (cost 0.58) can be replayed on a hand-built
    graph, and so the ablation benchmark can swap the combination rule. *)

open Spt_ir
open Spt_depgraph
module Iset = Set.Make (Int)

(* observability counters (no-ops unless metrics are enabled) *)
let m_builds = Spt_obs.Metrics.counter "cost.builds"
let m_graph_nodes = Spt_obs.Metrics.counter "cost.graph_nodes"
let m_evaluations = Spt_obs.Metrics.counter "cost.evaluations"

(** How re-execution probabilities combine.

    [`Independent] is the paper's §4.2.3 node-level recurrence,
    [x := 1 − (1−x)(1 − r·v(p))], which assumes predecessors
    misspeculate independently.  On reconvergent graphs (the stacked
    diamonds an unrolled loop produces) one violation candidate's
    influence arrives over several *correlated* paths and the rule
    counts it repeatedly, inflating the estimate — the conservative
    over-estimation the paper itself observes in Fig. 19.

    [`Per_seed] (the default here) propagates each violation
    candidate's probability separately with max-product path strength
    (one cause counted once, however many paths it takes) and combines
    *across* candidates with the independence rule.  It coincides with
    the paper's rule whenever paths do not reconverge — in particular
    on the paper's Fig. 5/6 worked example.

    [`Max_rule] is an ablation lower-bound variant. *)
type combine = [ `Independent | `Max_rule | `Per_seed ]

(* ------------------------------------------------------------------ *)
(* Generic core over abstract node ids *)

type gedge = { gsrc : int; gdst : int; gprob : float }

(** [compute] returns the re-execution probability of every node.

    [nodes] must be closed under [initial] and [intra] edge endpoints;
    pseudo-nodes are the [vcs] (given by id), all ids distinct from
    operation ids.  [intra] edges must be acyclic. *)
let compute ?(combine = `Independent) ~op_nodes ~vc_pseudo ~initial ~intra
    ~vc_prob () : (int, float) Hashtbl.t =
  let all_nodes = vc_pseudo @ op_nodes in
  let succs_tbl = Hashtbl.create 64 in
  let preds_tbl = Hashtbl.create 64 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun e ->
      push succs_tbl e.gsrc e.gdst;
      push preds_tbl e.gdst e)
    (initial @ intra);
  let succs n = Option.value ~default:[] (Hashtbl.find_opt succs_tbl n) in
  let order = Spt_util.Topo_sort.sort ~nodes:all_nodes ~succs in
  let v = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace v n (vc_prob n)) vc_pseudo;
  List.iter
    (fun n ->
      if not (Hashtbl.mem v n) then begin
        let x =
          List.fold_left
            (fun x e ->
              let vp = Option.value ~default:0.0 (Hashtbl.find_opt v e.gsrc) in
              match combine with
              | `Independent | `Per_seed ->
                1.0 -. ((1.0 -. x) *. (1.0 -. (e.gprob *. vp)))
              | `Max_rule -> Float.max x (e.gprob *. vp))
            0.0
            (Option.value ~default:[] (Hashtbl.find_opt preds_tbl n))
        in
        Hashtbl.replace v n x
      end)
    order;
  v

(** Per-seed evaluation: for every violation candidate pseudo-node,
    propagate its probability with max-product path strength, then
    combine candidates independently at each node. *)
let compute_per_seed ~op_nodes ~vc_pseudo ~initial ~intra ~vc_prob () :
    (int, float) Hashtbl.t =
  let all_nodes = vc_pseudo @ op_nodes in
  let succs_tbl = Hashtbl.create 64 in
  let preds_tbl = Hashtbl.create 64 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun e ->
      push succs_tbl e.gsrc e.gdst;
      push preds_tbl e.gdst e)
    (initial @ intra);
  let succs n = Option.value ~default:[] (Hashtbl.find_opt succs_tbl n) in
  let order = Spt_util.Topo_sort.sort ~nodes:all_nodes ~succs in
  let v = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace v n 1.0) op_nodes;
  (* v starts as the survival product Π (1 - p_s · reach_s) *)
  List.iter
    (fun seed ->
      let p_seed = vc_prob seed in
      if p_seed > 0.0 then begin
        let reach = Hashtbl.create 64 in
        Hashtbl.replace reach seed 1.0;
        List.iter
          (fun n ->
            if n <> seed && not (List.mem n vc_pseudo) then begin
              let r =
                List.fold_left
                  (fun acc e ->
                    match Hashtbl.find_opt reach e.gsrc with
                    | Some rs -> Float.max acc (rs *. e.gprob)
                    | None -> acc)
                  0.0
                  (Option.value ~default:[] (Hashtbl.find_opt preds_tbl n))
              in
              if r > 0.0 then Hashtbl.replace reach n r
            end)
          order;
        Hashtbl.iter
          (fun n r ->
            if n <> seed then
              let cur = Option.value ~default:1.0 (Hashtbl.find_opt v n) in
              Hashtbl.replace v n (cur *. (1.0 -. (p_seed *. r))))
          reach
      end)
    vc_pseudo;
  List.iter
    (fun n ->
      let surv = Option.value ~default:1.0 (Hashtbl.find_opt v n) in
      Hashtbl.replace v n (1.0 -. surv))
    op_nodes;
  List.iter (fun s -> Hashtbl.replace v s (vc_prob s)) vc_pseudo;
  v

(* ------------------------------------------------------------------ *)
(* Cost graph over a Depgraph *)

type t = {
  graph : Depgraph.t;
  vcs : int list;  (** violation candidates, sorted *)
  op_nodes : int list;  (** operation nodes in the cost graph *)
  initial : gedge list;  (** pseudo(vc) -> reader edges *)
  intra : gedge list;  (** propagation edges among operations *)
}

(* pseudo-node ids never collide with instruction iids, which are
   non-negative *)
let pseudo_of_vc iid = -iid - 1
let vc_of_pseudo p = -p - 1
let is_pseudo n = n < 0

let build (graph : Depgraph.t) =
  let vcs = Depgraph.violation_candidates graph in
  let initial =
    List.map
      (fun (e : Depgraph.edge) ->
        { gsrc = pseudo_of_vc e.Depgraph.src; gdst = e.Depgraph.dst; gprob = e.Depgraph.prob })
      (Depgraph.cross_edges graph)
  in
  (* operation nodes: readers of initial edges, closed under
     intra-iteration true-dependence successors (§4.2.2) *)
  let intra_all = Depgraph.intra_true_edges graph in
  let succs_of = Hashtbl.create 64 in
  List.iter
    (fun (e : Depgraph.edge) ->
      Hashtbl.replace succs_of e.Depgraph.src
        (e :: Option.value ~default:[] (Hashtbl.find_opt succs_of e.Depgraph.src)))
    intra_all;
  let in_graph = Hashtbl.create 64 in
  let rec close iid =
    if not (Hashtbl.mem in_graph iid) then begin
      Hashtbl.replace in_graph iid ();
      List.iter
        (fun (e : Depgraph.edge) -> close e.Depgraph.dst)
        (Option.value ~default:[] (Hashtbl.find_opt succs_of iid))
    end
  in
  List.iter (fun e -> close e.gdst) initial;
  let op_nodes =
    List.filter (fun iid -> Hashtbl.mem in_graph iid) graph.Depgraph.nodes
  in
  let intra =
    List.filter_map
      (fun (e : Depgraph.edge) ->
        if Hashtbl.mem in_graph e.Depgraph.src && Hashtbl.mem in_graph e.Depgraph.dst
        then
          Some { gsrc = e.Depgraph.src; gdst = e.Depgraph.dst; gprob = e.Depgraph.prob }
        else None)
      intra_all
  in
  Spt_obs.Metrics.inc m_builds;
  Spt_obs.Metrics.add m_graph_nodes (List.length op_nodes);
  { graph; vcs; op_nodes; initial; intra }

(* ------------------------------------------------------------------ *)
(* Partition evaluation *)

(** Re-execution probability of every operation node of the cost graph
    for the partition whose pre-fork *statement* set is [prefork]
    (instruction iids, as produced by {!Partition.closure}). *)
let reexec_probs ?(combine = `Per_seed) t ~prefork =
  let vc_pseudo = List.map pseudo_of_vc t.vcs in
  let vc_prob p =
    let vc = vc_of_pseudo p in
    if Iset.mem vc prefork then 0.0 else Depgraph.violation_prob t.graph vc
  in
  let v =
    match combine with
    | `Per_seed ->
      compute_per_seed ~op_nodes:t.op_nodes ~vc_pseudo ~initial:t.initial
        ~intra:t.intra ~vc_prob ()
    | (`Independent | `Max_rule) as combine ->
      compute ~combine ~op_nodes:t.op_nodes ~vc_pseudo ~initial:t.initial
        ~intra:t.intra ~vc_prob ()
  in
  (* operations in the pre-fork region execute before the fork and
     cannot be misspeculated *)
  Iset.iter (fun iid -> if Hashtbl.mem v iid then Hashtbl.replace v iid 0.0) prefork;
  v

(** Misspeculation cost of a partition (§4.2.4): expected amount of
    re-executed computation per speculative iteration, in elementary
    operation units. *)
let misspeculation_cost ?combine t ~prefork =
  Spt_obs.Metrics.inc m_evaluations;
  let v = reexec_probs ?combine t ~prefork in
  List.fold_left
    (fun acc iid ->
      if is_pseudo iid || Iset.mem iid prefork then acc
      else
        let p = Option.value ~default:0.0 (Hashtbl.find_opt v iid) in
        let i = Depgraph.instr t.graph iid in
        (* Cost(c) weighted by executions per iteration: an operation
           in a nested loop re-executes once per inner trip *)
        acc
        +. p *. float_of_int (Ir.op_cost i.Ir.kind)
           *. Depgraph.freq t.graph iid)
    0.0 t.op_nodes

(** A partition cost normalized to the loop body: the predicted
    per-iteration misspeculation fraction.  This is the model-side
    quantity the Fig. 19 comparison and the feedback loop's divergence
    detector both put next to observed runtime misspeculation. *)
let predicted_fraction ~cost ~body_size = cost /. Float.max 1.0 body_size

(* ------------------------------------------------------------------ *)
(* K-deep misspeculation pricing.  The runtime keeps up to K chunks
   (epochs) in flight; a violated head kills every in-flight successor
   (they chained through its refuted state).  A violation therefore
   costs the offender's re-execution plus, on average, half the window
   of successor work thrown away — the kill cascade. *)

let depth_candidates = [ 1; 2; 4; 8 ]

(* Mirrors the runtime's chunk auto-size (~2048 dynamic ops per chunk,
   clamped to [1, 256]; 16 when the body estimate is unknown) so the
   compile-time depth choice prices the same chunks the runtime forks.
   Deliberately independent of the worker count: a baked-in record must
   not depend on SPT_JOBS (the artifact cache key does not carry it);
   the runtime caps the effective depth at its window instead. *)
let auto_chunk ~body_size =
  if body_size <= 0.0 then 16
  else max 1 (min 256 (int_of_float (2048.0 /. Float.max 1.0 body_size)))

let chunk_violation_prob ~iter_prob ~chunk =
  let p = Float.max 0.0 (Float.min 1.0 iter_prob) in
  1.0 -. ((1.0 -. p) ** float_of_int (max 1 chunk))

(* Expected kill-cascade cost of one violation at depth [k], in
   chunk-execution units: the offender replays serially (1) and on
   average (k-1)/2 in-flight successors die with it. *)
let cascade_factor ~depth = 1.0 +. (float_of_int (max 1 depth - 1) /. 2.0)

(* Expected relative cost per retired chunk at depth [k]: the 1/k term
   is the pipelining gain (backbone prediction and ordered commit are
   amortized over k in-flight epochs), the second term the expected
   kill-cascade loss. *)
let depth_cost ~chunk_prob ~depth =
  let k = max 1 depth in
  (1.0 /. float_of_int k) +. (chunk_prob *. cascade_factor ~depth:k)

let pick_depth ~cost ~body_size =
  let chunk = auto_chunk ~body_size in
  let p_chunk =
    chunk_violation_prob ~iter_prob:(predicted_fraction ~cost ~body_size) ~chunk
  in
  List.fold_left
    (fun best k ->
      if depth_cost ~chunk_prob:p_chunk ~depth:k
         < depth_cost ~chunk_prob:p_chunk ~depth:best
      then k
      else best)
    1 depth_candidates

(** Cost graph rendered to DOT, mirroring Fig. 6 (pseudo-nodes boxed as
    ellipses). *)
let to_dot t =
  let g = Spt_util.Dot.create "costgraph" in
  List.iter
    (fun vc ->
      Spt_util.Dot.add_node ~shape:"ellipse" g ~id:(pseudo_of_vc vc)
        ~label:(Printf.sprintf "VC' i%d" vc))
    t.vcs;
  List.iter
    (fun iid ->
      let i = Depgraph.instr t.graph iid in
      Spt_util.Dot.add_node g ~id:iid
        ~label:(Format.asprintf "i%d: %a" iid Ir_pretty.pp_kind i.Ir.kind))
    t.op_nodes;
  List.iter
    (fun e ->
      Spt_util.Dot.add_edge g ~src:e.gsrc ~dst:e.gdst
        ~label:(Printf.sprintf "%.2f" e.gprob))
    (t.initial @ t.intra);
  Spt_util.Dot.render g
