(** Load-test harness for the compile server — see loadgen.mli. *)

module Json = Spt_obs.Json
module Hist = Spt_obs.Metrics.Hist
module Server = Spt_service.Server
module Artifact_cache = Spt_service.Artifact_cache

let schema = "spt-loadtest-v1"

(* ------------------------------------------------------------------ *)

module Blend = struct
  type t = { cold : int; warm : int; guided : int; engine : int }

  let default = { cold = 1; warm = 7; guided = 1; engine = 1 }
  let total b = b.cold + b.warm + b.guided + b.engine

  let to_string b =
    Printf.sprintf "cold=%d,warm=%d,guided=%d,engine=%d" b.cold b.warm b.guided
      b.engine

  let of_string s =
    let b = ref { cold = 0; warm = 0; guided = 0; engine = 0 } in
    let parts =
      List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
    in
    let parse_part p =
      match String.index_opt p '=' with
      | None -> Error (Printf.sprintf "blend: %S is not KIND=WEIGHT" p)
      | Some eq -> (
        let k = String.trim (String.sub p 0 eq)
        and v = String.trim (String.sub p (eq + 1) (String.length p - eq - 1)) in
        match int_of_string_opt v with
        | Some w when w >= 0 -> (
          match k with
          | "cold" -> Ok (b := { !b with cold = w })
          | "warm" -> Ok (b := { !b with warm = w })
          | "guided" -> Ok (b := { !b with guided = w })
          | "engine" -> Ok (b := { !b with engine = w })
          | _ -> Error (Printf.sprintf "blend: unknown kind %S" k))
        | _ -> Error (Printf.sprintf "blend: bad weight %S" v))
    in
    let rec go = function
      | [] ->
        if total !b > 0 then Ok !b
        else Error "blend: all weights are zero"
      | p :: rest -> ( match parse_part p with Ok () -> go rest | Error e -> Error e)
    in
    if parts = [] then Error "blend: empty spec" else go parts

  let to_json b =
    Json.Obj
      [
        ("cold", Json.Int b.cold);
        ("warm", Json.Int b.warm);
        ("guided", Json.Int b.guided);
        ("engine", Json.Int b.engine);
      ]
end

(* ------------------------------------------------------------------ *)
(* Request streams.

   All request sources instantiate one MiniC template whose arithmetic
   constants are the parameter — distinct constants mean distinct
   canonical fingerprints, so distinct cache keys.  The warm set is a
   small fixed family; cold requests get a parameter unique to (phase,
   index) so neither phase ever hits the other's cold artifacts. *)

let warm_variants = 1

(* the template is deliberately front-end-heavy and runtime-light: many
   functions and loops to lex, parse, typecheck, lower and analyse, but
   a small [n] so the post-compile evaluation stays cheap.  A warm hit
   still pays the front end (the cache key is the canonical IR
   fingerprint), which is exactly the work single-flight coalescing
   eliminates for duplicate in-flight requests. *)
let stage_fn i mult =
  Printf.sprintf
    {|
int stage%d(int lo, int hi) {
  int i = lo;
  int acc = 0;
  while (i < hi) {
    int v = buf%d[i] * %d + i;
    if (v > 8192) {
      v = v - 8192;
    }
    aux%d[i] = v;
    if (aux%d[i] > acc) {
      acc = aux%d[i] - buf%d[i];
    }
    buf%d[i] = acc & 4095;
    i = i + 1;
  }
  return acc;
}
|}
    i i mult i i i i i

let stages = 16

let source_of ~tag =
  let b = Buffer.create 4096 in
  Buffer.add_string b "int n = 48;\n";
  for i = 0 to stages - 1 do
    Buffer.add_string b (Printf.sprintf "int buf%d[48];\nint aux%d[48];\n" i i)
  done;
  for i = 0 to stages - 1 do
    Buffer.add_string b (stage_fn i (((tag + i) mod 97) + 2))
  done;
  Buffer.add_string b
    (Printf.sprintf
       {|
int seedfill(int k) {
  int i = 0;
  while (i < n) {
|});
  for i = 0 to stages - 1 do
    Buffer.add_string b
      (Printf.sprintf "    buf%d[i] = i * %d + k;\n" i ((i * 7) + 3))
  done;
  Buffer.add_string b
    (Printf.sprintf
       {|    i = i + 1;
  }
  return i;
}

void main() {
  int total = seedfill(%d);
|}
       (tag mod 1009));
  for i = 0 to stages - 1 do
    Buffer.add_string b (Printf.sprintf "  total = total + stage%d(0, n);\n" i)
  done;
  Buffer.add_string b
    (Printf.sprintf "  print_int(total + %d);\n}\n" (tag mod 13));
  Buffer.contents b

type kind = Cold | Warm of int | Guided of int | Engine of int

let pick_kind rng (b : Blend.t) =
  let warm_ix () = Random.State.int rng warm_variants in
  let r = Random.State.int rng (Blend.total b) in
  if r < b.cold then Cold
  else if r < b.cold + b.warm then Warm (warm_ix ())
  else if r < b.cold + b.warm + b.guided then Guided (warm_ix ())
  else Engine (warm_ix ())

(* one phase's request lines: same [seed] ⇒ the same kind sequence, so
   the serial and concurrent phases replay the same stream (cold
   parameters excepted, which are phase-unique by construction) *)
let gen_requests ~seed ~blend ~profile ~phase ~count =
  let rng = Random.State.make [| seed |] in
  List.init count (fun i ->
      let id = (phase * 1_000_000) + i in
      let base op name source rest =
        Json.Obj
          (("op", Json.Str op) :: ("name", Json.Str name)
          :: ("source", Json.Str source) :: ("id", Json.Int id) :: rest)
      in
      let req =
        match pick_kind rng blend with
        | Cold ->
          let tag = 100_000 + (phase * 10_000) + i in
          base "compile" (Printf.sprintf "cold-%d" tag) (source_of ~tag) []
        | Warm k -> base "compile" (Printf.sprintf "warm-%d" k) (source_of ~tag:k) []
        | Guided k ->
          base "compile"
            (Printf.sprintf "guided-%d" k)
            (source_of ~tag:k)
            [ ("profile", Json.Str profile) ]
        | Engine k ->
          base "compile"
            (Printf.sprintf "engine-%d" k)
            (source_of ~tag:k)
            [ ("engine", Json.Str "tree") ]
      in
      (id, Json.to_string ~minify:true req))

(* every distinct request shape once, so both measured phases start
   against a warm cache *)
let prewarm_requests ~profile =
  List.concat_map
    (fun k ->
      let src = source_of ~tag:k in
      [
        Json.Obj
          [
            ("op", Json.Str "compile");
            ("name", Json.Str (Printf.sprintf "warm-%d" k));
            ("source", Json.Str src);
          ];
        Json.Obj
          [
            ("op", Json.Str "compile");
            ("name", Json.Str (Printf.sprintf "guided-%d" k));
            ("source", Json.Str src);
            ("profile", Json.Str profile);
          ];
        Json.Obj
          [
            ("op", Json.Str "compile");
            ("name", Json.Str (Printf.sprintf "engine-%d" k));
            ("source", Json.Str src);
            ("engine", Json.Str "tree");
          ];
      ])
    (List.init warm_variants Fun.id)
  |> List.mapi (fun i req ->
         (-(i + 1), Json.to_string ~minify:true (Json.prepend ("id", Json.Int (-(i + 1))) req)))

(* ------------------------------------------------------------------ *)
(* Phase accounting, merged from per-driver locals (Hist.t is not
   thread-safe; each driver records into its own) *)

type tally = { hist : Hist.t; mutable errors : int; mutable coalesced : int }

let tally () = { hist = Hist.create (); errors = 0; coalesced = 0 }

let absorb ~into src =
  Hist.merge ~into:into.hist src.hist;
  into.errors <- into.errors + src.errors;
  into.coalesced <- into.coalesced + src.coalesced

let record tl dt reply =
  Hist.observe tl.hist dt;
  (match Json.member "ok" reply with
  | Some (Json.Bool true) -> ()
  | _ -> tl.errors <- tl.errors + 1);
  match Json.member "coalesced" reply with
  | Some (Json.Bool true) -> tl.coalesced <- tl.coalesced + 1
  | _ -> ()

type phase_result = {
  ph_requests : int;
  ph_wall_s : float;
  ph_tally : tally;
}

let rps ph =
  if ph.ph_wall_s > 0.0 then float_of_int ph.ph_requests /. ph.ph_wall_s
  else 0.0

(* split a list round-robin into [n] slices, preserving order inside a
   slice *)
let slices n xs =
  let out = Array.make n [] in
  List.iteri (fun i x -> out.(i mod n) <- x :: out.(i mod n)) xs;
  Array.map List.rev out

let max_driver_domains = 16

(* run one measured phase: [call] is a blocking request/reply exchange,
   safe to invoke from several domains at once *)
let run_phase ~drivers ~reqs ~call =
  let t0 = Unix.gettimeofday () in
  let total =
    if drivers <= 1 then begin
      let tl = tally () in
      List.iter
        (fun (id, line) ->
          let r0 = Unix.gettimeofday () in
          let reply = call id line in
          record tl (Unix.gettimeofday () -. r0) reply)
        reqs;
      tl
    end
    else begin
      let parts = slices drivers reqs in
      let doms =
        Array.map
          (fun part ->
            Domain.spawn (fun () ->
                let tl = tally () in
                List.iter
                  (fun (id, line) ->
                    let r0 = Unix.gettimeofday () in
                    let reply = call id line in
                    record tl (Unix.gettimeofday () -. r0) reply)
                  part;
                tl))
          parts
      in
      let total = tally () in
      Array.iter (fun d -> absorb ~into:total (Domain.join d)) doms;
      total
    end
  in
  {
    ph_requests = List.length reqs;
    ph_wall_s = Unix.gettimeofday () -. t0;
    ph_tally = total;
  }

(* ------------------------------------------------------------------ *)
(* Serve mode: the real [Server.serve] loop in its own domain, spoken
   to over a pair of pipes, exactly as a pipelining network client
   would drive it.  One submitter keeps up to [window] requests
   outstanding ([window] = simulated clients, each with one request in
   flight); a router domain reads the reply stream, matches each reply
   to its request by the "id" echo and does the latency accounting.
   Both measured phases use the identical machinery and domain count —
   the serial phase is simply [window = 1] — so the comparison isolates
   what concurrency buys (pipelining, pool parallelism, single-flight
   coalescing) from constant plumbing costs. *)

let run_serve ~server ~prewarm ~serial_reqs ~conc_reqs ~clients =
  let req_r, req_w = Unix.pipe () in
  let rep_r, rep_w = Unix.pipe () in
  let srv_ic = Unix.in_channel_of_descr req_r in
  let srv_oc = Unix.out_channel_of_descr rep_w in
  let to_srv = Unix.out_channel_of_descr req_w in
  let from_srv = Unix.in_channel_of_descr rep_r in
  let srv_dom = Domain.spawn (fun () -> Server.serve server srv_ic srv_oc) in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  (* id -> send timestamp of every request awaiting its reply *)
  let outstanding : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let cur = ref (tally ()) in
  let router =
    Domain.spawn (fun () ->
        let rec loop () =
          match input_line from_srv with
          | exception End_of_file -> ()
          | line ->
            let now = Unix.gettimeofday () in
            (match Json.of_string line with
            | Ok reply -> (
              match Json.member "id" reply with
              | Some (Json.Int id) -> (
                Mutex.lock mu;
                (match Hashtbl.find_opt outstanding id with
                | Some t0 ->
                  Hashtbl.remove outstanding id;
                  record !cur (now -. t0) reply;
                  Condition.broadcast cond
                | None -> ());
                Mutex.unlock mu)
              | _ -> () (* the shutdown ack has no id; drop it *))
            | Error _ -> ());
            loop ()
        in
        loop ())
  in
  let send ~window (id, line) =
    Mutex.lock mu;
    while Hashtbl.length outstanding >= window do
      Condition.wait cond mu
    done;
    Hashtbl.replace outstanding id (Unix.gettimeofday ());
    Mutex.unlock mu;
    output_string to_srv line;
    output_char to_srv '\n';
    flush to_srv
  in
  let drain () =
    Mutex.lock mu;
    while Hashtbl.length outstanding > 0 do
      Condition.wait cond mu
    done;
    Mutex.unlock mu
  in
  let phase ~window reqs =
    Mutex.lock mu;
    cur := tally ();
    Mutex.unlock mu;
    let t0 = Unix.gettimeofday () in
    List.iter (send ~window) reqs;
    drain ();
    let wall = Unix.gettimeofday () -. t0 in
    Mutex.lock mu;
    let tl = !cur in
    Mutex.unlock mu;
    { ph_requests = List.length reqs; ph_wall_s = wall; ph_tally = tl }
  in
  let finally () =
    (* EOF drains the server and ends both loops *)
    (try close_out to_srv with _ -> ());
    Domain.join srv_dom;
    (try close_out srv_oc with _ -> ());
    Domain.join router;
    List.iter
      (fun f -> try f () with _ -> ())
      [ (fun () -> close_in srv_ic); (fun () -> close_in from_srv) ]
  in
  Fun.protect ~finally (fun () ->
      ignore (phase ~window:1 prewarm);
      let serial = phase ~window:1 serial_reqs in
      let conc = phase ~window:(max 1 clients) conc_reqs in
      (serial, conc))

(* In-process mode: no pipes, no router — client domains invoke the
   thread-safe [Server.handle_line] directly.  Measures raw handler
   parallelism; the serve-loop machinery (pipelining, coalescing) is
   out of the picture. *)
let run_inproc ~server ~prewarm ~serial_reqs ~conc_reqs ~clients =
  let call _id line =
    let out =
      match Server.handle_line server line with `Reply s | `Shutdown s -> s
    in
    match Json.of_string out with Ok j -> j | Error _ -> Json.Null
  in
  List.iter (fun (id, line) -> ignore (call id line)) prewarm;
  let serial = run_phase ~drivers:1 ~reqs:serial_reqs ~call in
  let drivers = max 1 (min clients max_driver_domains) in
  let conc = run_phase ~drivers ~reqs:conc_reqs ~call in
  (serial, conc)

(* ------------------------------------------------------------------ *)

type mode = [ `Serve | `Inproc ]

type result = {
  mode : mode;
  clients : int;
  server_jobs : int;
  blend : Blend.t;
  seed : int;
  requests : int;
  errors : int;
  coalesced : int;
  wall_s : float;
  throughput_rps : float;
  latency : Hist.t;
  serial_requests : int;
  serial_errors : int;
  serial_wall_s : float;
  serial_rps : float;
  speedup_vs_serial : float;
  cache_stats : Json.t;
}

let run ?(mode = `Serve) ?(clients = 8) ?(requests = 128)
    ?(blend = Blend.default) ?(seed = 42) ?(server_jobs = 4) ?cache () =
  if clients < 1 then invalid_arg "Loadgen.run: clients must be >= 1";
  if requests < 1 then invalid_arg "Loadgen.run: requests must be >= 1";
  let cache =
    match cache with
    | Some c -> c
    | None ->
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "spt-loadtest-%d" (Unix.getpid ()))
      in
      Artifact_cache.create ~dir ()
  in
  let server =
    Server.create ~cache ~jobs:server_jobs
      ~queue_max:(max 64 (4 * clients))
      ()
  in
  (* the guided blend needs a loadable profile store on disk; an empty
     store is valid and exercises the whole guided path (load, digest,
     separate cache key) *)
  let profile =
    Filename.temp_file "spt-loadtest-profile" ".json"
  in
  Spt_feedback.Profile_store.save (Spt_feedback.Profile_store.empty ()) profile;
  let cleanup () = try Sys.remove profile with _ -> () in
  Fun.protect ~finally:cleanup (fun () ->
      let prewarm = prewarm_requests ~profile in
      let serial_reqs =
        gen_requests ~seed ~blend ~profile ~phase:1 ~count:requests
      in
      let conc_reqs =
        gen_requests ~seed ~blend ~profile ~phase:2 ~count:requests
      in
      let serial, conc =
        match mode with
        | `Serve -> run_serve ~server ~prewarm ~serial_reqs ~conc_reqs ~clients
        | `Inproc ->
          run_inproc ~server ~prewarm ~serial_reqs ~conc_reqs ~clients
      in
      let speedup =
        let s = rps serial and c = rps conc in
        if s > 0.0 then c /. s else 0.0
      in
      {
        mode;
        clients;
        server_jobs;
        blend;
        seed;
        requests = conc.ph_requests;
        errors = conc.ph_tally.errors;
        coalesced = conc.ph_tally.coalesced;
        wall_s = conc.ph_wall_s;
        throughput_rps = rps conc;
        latency = conc.ph_tally.hist;
        serial_requests = serial.ph_requests;
        serial_errors = serial.ph_tally.errors;
        serial_wall_s = serial.ph_wall_s;
        serial_rps = rps serial;
        speedup_vs_serial = speedup;
        cache_stats = Artifact_cache.stats_json cache;
      })

let to_json r =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("mode", Json.Str (match r.mode with `Serve -> "serve" | `Inproc -> "inproc"));
      ("clients", Json.Int r.clients);
      ("server_jobs", Json.Int r.server_jobs);
      ("blend", Blend.to_json r.blend);
      ("seed", Json.Int r.seed);
      ("requests", Json.Int r.requests);
      ("errors", Json.Int r.errors);
      ("coalesced", Json.Int r.coalesced);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("latency_s", Hist.to_json r.latency);
      ( "serial",
        Json.Obj
          [
            ("requests", Json.Int r.serial_requests);
            ("errors", Json.Int r.serial_errors);
            ("wall_s", Json.Float r.serial_wall_s);
            ("throughput_rps", Json.Float r.serial_rps);
          ] );
      ("speedup_vs_serial", Json.Float r.speedup_vs_serial);
      ("cache", r.cache_stats);
    ]
