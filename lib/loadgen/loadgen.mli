(** Load-test harness for the compile server: simulate many concurrent
    clients issuing a mixed blend of requests against the real
    {!Spt_service.Server}, and report throughput and latency
    percentiles against a serial replay of the same stream.

    A run has three phases over one server and one shared artifact
    cache:

    + {e pre-warm} — every distinct request shape is compiled once, so
      the measured phases start against a warm cache;
    + {e serial} — the request stream replayed one request at a time
      (a single client with one request in flight);
    + {e concurrent} — the same stream (same seed, same kind sequence;
      cold parameters are phase-unique so neither phase hits the
      other's cold artifacts) issued by [clients] concurrent clients.

    In the default [`Serve] mode both phases speak the line protocol to
    a [Server.serve] loop running in its own domain over a pair of
    pipes — a router domain correlates replies to waiting clients by
    their ["id"] echo, exactly as a pipelining network client would.
    The concurrent phase therefore exercises everything the serve loop
    does under load: pool dispatch, reply interleaving, single-flight
    coalescing of identical in-flight requests.  [`Inproc] mode skips
    the plumbing and has client domains call the thread-safe
    [Server.handle_line] directly, measuring raw handler parallelism.

    The request blend mixes [cold] (unique source, always a cache
    miss), [warm] (a small fixed family of sources, cache hits),
    [guided] (warm source compiled under a profile store) and [engine]
    (warm source under the tree-walking engine) requests. *)

val schema : string
(** ["spt-loadtest-v1"]. *)

module Blend : sig
  type t = { cold : int; warm : int; guided : int; engine : int }

  val default : t
  (** [cold=1, warm=7, guided=1, engine=1]. *)

  val of_string : string -> (t, string) result
  (** Parse ["warm=7,cold=1,guided=1,engine=1"] — unlisted kinds get
      weight 0, at least one weight must be positive. *)

  val to_string : t -> string
  val to_json : t -> Spt_obs.Json.t
end

type mode = [ `Serve | `Inproc ]

type result = {
  mode : mode;
  clients : int;
  server_jobs : int;
  blend : Blend.t;
  seed : int;
  requests : int;  (** concurrent-phase request count *)
  errors : int;  (** concurrent-phase [ok:false] replies *)
  coalesced : int;  (** replies served by single-flight coalescing *)
  wall_s : float;
  throughput_rps : float;
  latency : Spt_obs.Metrics.Hist.t;  (** concurrent per-request latency *)
  serial_requests : int;
  serial_errors : int;
  serial_wall_s : float;
  serial_rps : float;
  speedup_vs_serial : float;  (** concurrent rps / serial rps *)
  cache_stats : Spt_obs.Json.t;  (** the shared cache, post-run *)
}

val run :
  ?mode:mode ->
  ?clients:int ->
  ?requests:int ->
  ?blend:Blend.t ->
  ?seed:int ->
  ?server_jobs:int ->
  ?cache:Spt_service.Artifact_cache.t ->
  unit ->
  result
(** Run a load test.  Defaults: [`Serve] mode, 8 clients, 128 requests
    per phase, {!Blend.default}, seed 42, 4 server worker domains, a
    fresh cache under the system temp directory.  Client concurrency is
    capped at 16 driver domains; more [clients] are multiplexed onto
    them.  Deterministic for a given seed (timings aside). *)

val to_json : result -> Spt_obs.Json.t
(** The [spt-loadtest-v1] rendering: throughput, latency percentiles,
    the serial baseline, speedup and cache stats. *)
