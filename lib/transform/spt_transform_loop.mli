(** The SPT loop transformation (§6.2 of the paper).

    Given a loop (in SSA form) and a pre-fork statement set from
    {!Spt_partition.Partition}, opens a pre-fork region at the top of
    the iteration (after the exit test for while/for loops, Fig. 2),
    moves the statements there — replicating branch structure for
    conditional statements (Fig. 12) and exit-test guard chains for
    unrolled bodies — and inserts [SPT_FORK] / [SPT_KILL].

    After this pass the function is no longer strict SSA; run
    {!Spt_ir.Ssa.destruct} (passing {!info}'s [coalesce] pairs through
    [phi_primed]) before anything that assumes SSA. *)

open Spt_ir
open Spt_depgraph
module Iset : module type of Set.Make (Int)

type reject =
  | Inner_loop_stmt  (** the pre-fork set reaches into a nested loop *)
  | Unsupported_shape of string

val string_of_reject : reject -> string

type info = {
  loop_id : int;
  header : int;  (** unchanged header bid *)
  fork_block : int;  (** block holding the SPT_FORK *)
  moved : Iset.t;  (** iids moved into the pre-fork region *)
  effective_prefork : Iset.t;
      (** moved plus header statements — everything before the fork *)
  coalesce : (int * Ir.var) list;
      (** (header-phi vid, latch-operand var) pairs whose definition
          moved pre-fork; SSA destruction must coalesce them so the
          carried register is written before the fork (the paper's
          [temp_i]) *)
}

(** Blocks of loops strictly nested inside [loop] — statements there
    cannot move (exposed for the driver's search filter). *)
val inner_loop_blocks : Ir.func -> Loops.loop -> Loops.Iset.t

(** {2 Fault injection (test-only)}

    When [fault_drop_moved] is armed, {!apply} silently *drops* the last
    plain moved statement instead of re-emitting it in the pre-fork
    region — emulating the region-construction bug class (a lost
    temp-variable write, Figs. 10–11) the differential fuzz harness is
    required to catch.  [fault_fired] is set (never cleared) when a
    statement was actually dropped, so a caller can tell whether the
    armed fault was applicable to this compile.  Not for production
    use; not thread-safe. *)

val fault_drop_moved : bool ref
val fault_fired : bool ref

(** Apply the transformation in place.  [graph] must be the dependence
    graph the partition was computed on.  All rejection checks run
    before any mutation, so a failed [apply] leaves the function
    untouched and may be retried with a different partition. *)
val apply :
  Ir.func -> Depgraph.t -> prefork:Iset.t -> loop_id:int -> (info, reject) result
