(** The SPT loop transformation (§6.2).

    Works on a function in SSA form.  Given a loop and a pre-fork
    statement set (the dependence closure of the chosen violation
    candidates, from {!Spt_partition.Partition}), it

    1. opens a pre-fork region at the top of the iteration — after the
       exit test for while/for loops (Fig. 2), after the header phis
       otherwise;
    2. *moves* the pre-fork statements there — plain SSA code motion,
       which is the paper's code reordering; the temporary variables of
       Figs. 10–11 materialize later during SSA destruction;
    3. replicates branch structure for statements moved out of
       conditionals (Fig. 12), in two flavours:
       - *exit-test guards*: a statement that sits beyond one of the
         loop's exit tests (the common case after unrolling, where each
         copy keeps its test) is emitted behind a clone of those tests,
         whose exit side skips straight to the fork;
       - *if regions*: single-level if-then / if-then-else regions with
         straight-line arms are cloned with their join phis retargeted;
         the original branch stays in the post-fork region, re-using
         the same (now pre-fork) condition value;
    4. inserts [SPT_FORK] at the end of the pre-fork region and
       [SPT_KILL] at the loop exits (Fig. 2).

    Partitions needing deeper conditional structure — or statements
    from nested inner loops — are rejected as untransformable.

    After this transformation the function is no longer strict SSA
    (a use in the post-fork region of a value moved under a cloned
    conditional is not dominated by its definition, though it is always
    dynamically defined when reached); callers must run
    {!Spt_ir.Ssa.destruct} before anything that assumes SSA. *)

open Spt_ir
open Spt_depgraph
module Iset = Set.Make (Int)

type reject =
  | Inner_loop_stmt  (** pre-fork set reaches into a nested loop *)
  | Unsupported_shape of string
      (** conditional structure beyond guard chains + single-level ifs *)

let string_of_reject = function
  | Inner_loop_stmt -> "pre-fork statement inside nested loop"
  | Unsupported_shape s -> "unsupported control shape: " ^ s

type info = {
  loop_id : int;
  header : int;  (** unchanged header bid (now phis + jump) *)
  fork_block : int;  (** block holding the SPT_FORK *)
  moved : Iset.t;  (** iids moved into the pre-fork region *)
  effective_prefork : Iset.t;
      (** moved plus header statements — everything before the fork *)
  coalesce : (int * Ir.var) list;
      (** (header-phi vid, latch-operand var) pairs whose defining
          statement was moved pre-fork.  SSA destruction must coalesce
          them ({!Spt_ir.Ssa.destruct}'s [phi_primed]) so the carried
          register is *written before the fork* — the paper's [temp_i]
          in Fig. 2.  With the default latch-placed phi copies the
          motion would be timing-inert: the speculative thread would
          still read a stale carrier and violate every iteration. *)
}

(* ------------------------------------------------------------------ *)

(* All blocks belonging to loops strictly nested inside [loop]. *)
let inner_loop_blocks (f : Ir.func) (loop : Loops.loop) =
  List.fold_left
    (fun acc (l : Loops.loop) ->
      if
        l.Loops.header <> loop.Loops.header
        && Loops.Iset.subset l.Loops.body loop.Loops.body
      then Loops.Iset.union acc l.Loops.body
      else acc)
    Loops.Iset.empty (Loops.find f)

type arm = Arm_then | Arm_else | Arm_join

(* a moved single-level conditional region *)
type region = {
  rbranch : int;  (** controlling branch block *)
  rcond : Ir.operand;
  rguards : int list;  (** exit-test guards of the region itself *)
  rmembers : (int * arm) list;
}

exception Reject of reject

(* Fault injection for the differential fuzz harness: when armed, one
   moved statement is detached but never re-emitted into the pre-fork
   region — the region-construction bug class the harness must be able
   to catch (losing the paper's temp-variable writes, Fig. 10–11). *)
let fault_drop_moved = ref false
let fault_fired = ref false

(** Apply the transformation.  [graph] must be the dependence graph the
    partition was computed on (its instruction table must not be
    stale). *)
let apply (f : Ir.func) (graph : Depgraph.t) ~(prefork : Iset.t) ~loop_id :
    (info, reject) result =
  let loop = graph.Depgraph.loop in
  let header_bid = loop.Loops.header in
  let header = Ir.block f header_bid in
  let inner = inner_loop_blocks f loop in
  let cdeps = Depgraph.control_deps f loop in
  let in_body b = Loops.Iset.mem b loop.Loops.body in
  (* exit branches: conditional branches with a successor leaving the
     loop — including the header's own test.  Statements behind them
     are re-guarded in the pre-fork region rather than treated as
     conditional. *)
  let is_exit_branch bid =
    match (Ir.block f bid).Ir.term with
    | Ir.Br (_, t, e) -> (not (in_body t)) || not (in_body e)
    | _ -> false
  in
  (* the pre-fork region opens after the header's exit test when there
     is one (Fig. 2); header statements then sit before the fork and
     must not move, and the header's test never needs re-guarding *)
  let test_header =
    match header.Ir.term with
    | Ir.Br (_, t, e) -> (
      match (in_body t, in_body e) with
      | true, false when t <> header_bid -> Some t
      | false, true when e <> header_bid -> Some e
      | _ -> None)
    | _ -> None
  in
  let raw_ctrl bid = Option.value ~default:[] (Hashtbl.find_opt cdeps bid) in
  let guards_of bid =
    List.filter
      (fun c -> is_exit_branch c && not (test_header <> None && c = header_bid))
      (raw_ctrl bid)
  in
  let if_ctrl_of bid =
    List.filter (fun c -> not (is_exit_branch c)) (raw_ctrl bid)
  in
  (* original-order key, computed before any surgery disconnects the
     body from the entry *)
  let rpo_tbl = Hashtbl.create 32 in
  List.iteri
    (fun i bid -> Hashtbl.replace rpo_tbl bid i)
    (Cfg.reverse_postorder (Cfg.of_func f));
  let order_key iid =
    match Hashtbl.find_opt graph.Depgraph.instr_tbl iid with
    | Some (_, bid, pos) ->
      (Option.value ~default:max_int (Hashtbl.find_opt rpo_tbl bid), pos)
    | None -> (max_int, max_int)
  in
  let header_iids =
    List.filter_map
      (fun (i : Ir.instr) ->
        if test_header <> None || Ir.is_phi i.Ir.kind then Some i.Ir.iid
        else None)
      header.Ir.instrs
  in
  let to_move = Iset.filter (fun iid -> not (List.mem iid header_iids)) prefork in
  (* one-iteration reachability from [entry] (never through the header) *)
  let reaches_from entry =
    let seen = ref Iset.empty in
    let rec go b =
      if (not (Iset.mem b !seen)) && in_body b && b <> header_bid then begin
        seen := Iset.add b !seen;
        List.iter go (Ir.term_succs (Ir.block f b).Ir.term)
      end
    in
    go entry;
    !seen
  in
  let branch_of_block cblk =
    match (Ir.block f cblk).Ir.term with
    | Ir.Br (c, t, e) -> Some (c, t, e)
    | _ -> None
  in
  (* ---- classification ---- *)
  (* plain statements (possibly behind exit guards) and if-regions *)
  let classify () =
    try
      let plain = ref [] in
      let region_members : (int, (int * arm) list) Hashtbl.t = Hashtbl.create 8 in
      let region_order = ref [] in
      let add_member cblk iid arm =
        if not (List.mem cblk !region_order) then
          region_order := cblk :: !region_order;
        Hashtbl.replace region_members cblk
          ((iid, arm)
          :: Option.value ~default:[] (Hashtbl.find_opt region_members cblk))
      in
      Iset.iter
        (fun iid ->
          let bid = Depgraph.block_of graph iid in
          if Loops.Iset.mem bid inner then raise (Reject Inner_loop_stmt);
          let i = Depgraph.instr graph iid in
          match (Ir.is_phi i.Ir.kind, if_ctrl_of bid) with
          | false, [] -> plain := iid :: !plain
          | false, [ c ] ->
            if if_ctrl_of c <> [] then
              raise (Reject (Unsupported_shape "nested conditional"));
            (match branch_of_block c with
            | None ->
              raise (Reject (Unsupported_shape "no branch at control block"))
            | Some (_, t_succ, e_succ) ->
              let in_t = Iset.mem bid (reaches_from t_succ) in
              let in_e = Iset.mem bid (reaches_from e_succ) in
              (match (in_t, in_e) with
              | true, false -> add_member c iid Arm_then
              | false, true -> add_member c iid Arm_else
              | _ -> raise (Reject (Unsupported_shape "ambiguous arm"))))
          | false, _ ->
            raise (Reject (Unsupported_shape "multiple controlling branches"))
          | true, [] -> (
            (* a moved phi with no if-control: either a join of an if
               region (find the branch through its preds) or a merge of
               exit-guard paths (unsupported) *)
            match i.Ir.kind with
            | Ir.Phi (_, ins) ->
              let cands =
                List.filter_map
                  (fun (p, _) ->
                    match if_ctrl_of p with
                    | [ c ] -> Some c
                    | [] ->
                      if branch_of_block p <> None && not (is_exit_branch p)
                      then Some p
                      else None
                    | _ -> None)
                  ins
              in
              (match List.sort_uniq compare cands with
              | [ c ] when if_ctrl_of c = [] -> add_member c iid Arm_join
              | [ _ ] ->
                raise (Reject (Unsupported_shape "nested conditional join"))
              | [] ->
                raise (Reject (Unsupported_shape "phi merging exit paths"))
              | _ -> raise (Reject (Unsupported_shape "join with mixed controls")))
            | _ -> assert false)
          | true, _ -> raise (Reject (Unsupported_shape "conditional phi")))
        to_move;
      let regions =
        List.rev_map
          (fun cblk ->
            match branch_of_block cblk with
            | Some (cond, _, _) ->
              {
                rbranch = cblk;
                rcond = cond;
                rguards = guards_of cblk;
                rmembers = List.rev (Hashtbl.find region_members cblk);
              }
            | None -> assert false)
          !region_order
      in
      Ok (List.rev !plain, regions)
    with Reject r -> Error r
  in
  match classify () with
  | Error r -> Error r
  | Ok (plain, regions) ->
    (* values needed by cloned branches must be available pre-fork:
       defined outside the body, a header phi / header statement, or
       themselves moved *)
    let available o =
      match o with
      | Ir.Reg v -> (
        let def_in_body =
          List.find_opt
            (fun iid ->
              match Ir.def_of_kind (Depgraph.instr graph iid).Ir.kind with
              | Some d -> Ir.Var.equal d v
              | None -> false)
            graph.Depgraph.nodes
        in
        match def_in_body with
        | None -> true (* loop-invariant *)
        | Some iid -> Iset.mem iid prefork || List.mem iid header_iids)
      | Ir.Imm_i _ | Ir.Imm_f _ -> true
    in
    let guard_cond g =
      match branch_of_block g with
      | Some (c, _, _) -> c
      | None -> invalid_arg "guard without branch"
    in
    let all_guards =
      List.sort_uniq compare
        (List.concat_map (fun iid -> guards_of (Depgraph.block_of graph iid))
           (Iset.elements to_move)
        @ List.concat_map (fun r -> r.rguards) regions)
    in
    let all_conds =
      List.map guard_cond all_guards @ List.map (fun r -> r.rcond) regions
    in
    if not (List.for_all available all_conds) then
      Error (Unsupported_shape "branch condition not available pre-fork")
    else begin
      (* ---- surgery ---- *)
      let first_p = Ir.add_block f in
      let fork_blk = Ir.add_block f in
      let rest_bid, header_stmt_owner =
        match test_header with
        | Some body_entry ->
          Cfg.retarget_term header ~old_dst:body_entry ~new_dst:first_p.Ir.bid;
          (body_entry, header)
        | None ->
          let rest_blk = Ir.add_block f in
          let phis, others =
            List.partition
              (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind)
              header.Ir.instrs
          in
          rest_blk.Ir.instrs <- others;
          rest_blk.Ir.term <- header.Ir.term;
          header.Ir.instrs <- phis;
          header.Ir.term <- Ir.Jump first_p.Ir.bid;
          (* the header's terminator (and with it every outgoing edge)
             now lives in [rest_blk]: successors' phis still name the
             header as their incoming predecessor and must be
             retargeted, or SSA destruction later places their carrier
             writes in the pre-fork header — before the values they
             copy exist *)
          List.iter
            (fun s ->
              Cfg.retarget_phis (Ir.block f s) ~old_pred:header_bid
                ~new_pred:rest_blk.Ir.bid)
            (Ir.term_succs rest_blk.Ir.term);
          (rest_blk.Ir.bid, rest_blk)
      in
      let cur = ref first_p in
      (* after the surgery above, the header's original terminator (and
         instruction suffix) live in [header_stmt_owner]; any lookup of
         a classified branch must follow it there *)
      let branch_of_block_now bid =
        let b = if bid = header_bid then header_stmt_owner else Ir.block f bid in
        match b.Ir.term with
        | Ir.Br (c, t, e) -> Some (c, t, e)
        | _ -> None
      in
      let detach iid =
        let bid = Depgraph.block_of graph iid in
        let owner = if bid = header_bid then header_stmt_owner else Ir.block f bid in
        let found = ref None in
        owner.Ir.instrs <-
          List.filter
            (fun (i : Ir.instr) ->
              if i.Ir.iid = iid then begin
                found := Some i;
                false
              end
              else true)
            owner.Ir.instrs;
        match !found with
        | Some i -> i
        | None -> invalid_arg "Spt_transform_loop: moved instruction not found"
      in
      (* emit the exit-test guards needed before a statement: each guard
         clone continues into a fresh block and bails to the fork block
         on its exit side, preserving branch polarity *)
      let emitted_guards = ref Iset.empty in
      let ensure_guards gs =
        let gs =
          List.filter (fun g -> not (Iset.mem g !emitted_guards)) gs
          |> List.sort (fun a b ->
                 compare
                   (Option.value ~default:max_int (Hashtbl.find_opt rpo_tbl a))
                   (Option.value ~default:max_int (Hashtbl.find_opt rpo_tbl b)))
        in
        List.iter
          (fun g ->
            emitted_guards := Iset.add g !emitted_guards;
            match branch_of_block_now g with
            | Some (c, t, _e) ->
              let next = Ir.add_block f in
              next.Ir.term <- Ir.Jump fork_blk.Ir.bid;
              let t_inside = in_body t in
              !cur.Ir.term <-
                (if t_inside then Ir.Br (c, next.Ir.bid, fork_blk.Ir.bid)
                 else Ir.Br (c, fork_blk.Ir.bid, next.Ir.bid));
              cur := next
            | None -> assert false)
          gs
      in
      let emit_region r =
        ensure_guards r.rguards;
        let p_then = Ir.add_block f in
        let p_else = Ir.add_block f in
        let p_join = Ir.add_block f in
        !cur.Ir.term <- Ir.Br (r.rcond, p_then.Ir.bid, p_else.Ir.bid);
        p_then.Ir.term <- Ir.Jump p_join.Ir.bid;
        p_else.Ir.term <- Ir.Jump p_join.Ir.bid;
        let t_succ =
          match branch_of_block_now r.rbranch with
          | Some (_, t, _) -> t
          | None -> assert false
        in
        let members =
          List.sort
            (fun (a, _) (b, _) -> compare (order_key a) (order_key b))
            r.rmembers
        in
        List.iter
          (fun (iid, arm) ->
            let i = detach iid in
            match arm with
            | Arm_then -> Ir.append_instr p_then i
            | Arm_else -> Ir.append_instr p_else i
            | Arm_join -> (
              match i.Ir.kind with
              | Ir.Phi (d, ins) ->
                let jbid = Depgraph.block_of graph iid in
                let then_side = reaches_from t_succ in
                let retarget (p, o) =
                  if p = r.rbranch then
                    if t_succ = jbid then (p_then.Ir.bid, o)
                    else (p_else.Ir.bid, o)
                  else if Iset.mem p then_side then (p_then.Ir.bid, o)
                  else (p_else.Ir.bid, o)
                in
                i.Ir.kind <- Ir.Phi (d, List.map retarget ins);
                Ir.append_instr p_join i
              | _ -> assert false))
          members;
        cur := p_join
      in
      (* emission stream: plain statements and regions, ordered by
         original position (a region sorts at its first statement) *)
      let items =
        List.map (fun iid -> (order_key iid, `Plain iid)) plain
        @ List.map
            (fun r ->
              let first_key =
                List.fold_left
                  (fun acc (iid, _) -> min acc (order_key iid))
                  (max_int, max_int) r.rmembers
              in
              (first_key, `Region r))
            regions
      in
      let sorted_items = List.sort compare items in
      let drop_victim =
        if not !fault_drop_moved then None
        else
          List.fold_left
            (fun acc (_, item) ->
              match item with `Plain iid -> Some iid | `Region _ -> acc)
            None sorted_items
      in
      List.iter
        (fun (_, item) ->
          match item with
          | `Plain iid ->
            ensure_guards (guards_of (Depgraph.block_of graph iid));
            let i = detach iid in
            if drop_victim = Some iid then fault_fired := true
            else Ir.append_instr !cur i
          | `Region r -> emit_region r)
        sorted_items;
      (* ---- SPT_FORK, then the rest of the iteration ---- *)
      !cur.Ir.term <- Ir.Jump fork_blk.Ir.bid;
      Ir.append_instr fork_blk (Ir.mk_instr f (Ir.Spt_fork loop_id));
      fork_blk.Ir.term <- Ir.Jump rest_bid;
      if test_header <> None then
        Cfg.retarget_phis (Ir.block f rest_bid) ~old_pred:header_bid
          ~new_pred:fork_blk.Ir.bid;
      (* ---- SPT_KILL at every outside exit target, after its phis ---- *)
      let exit_targets = List.sort_uniq compare (List.map snd loop.Loops.exits) in
      List.iter
        (fun out_bid ->
          let ob = Ir.block f out_bid in
          let ophis, orest =
            List.partition (fun (i : Ir.instr) -> Ir.is_phi i.Ir.kind) ob.Ir.instrs
          in
          ob.Ir.instrs <- ophis @ (Ir.mk_instr f (Ir.Spt_kill loop_id) :: orest))
        exit_targets;
      let effective_prefork =
        List.fold_left (fun acc iid -> Iset.add iid acc) to_move header_iids
      in
      (* carried values whose defining statement moved pre-fork: their
         phi carriers coalesce with the definition *)
      let def_site = Hashtbl.create 32 in
      Iset.iter
        (fun iid ->
          match Ir.def_of_kind (Depgraph.instr graph iid).Ir.kind with
          | Some d -> Hashtbl.replace def_site d.Ir.vid iid
          | None -> ())
        to_move;
      let latch_set = Iset.of_list loop.Loops.latches in
      let coalesce =
        List.filter_map
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Phi (d, ins) ->
              List.find_map
                (fun (p, o) ->
                  match o with
                  | Ir.Reg v
                    when Iset.mem p latch_set && Hashtbl.mem def_site v.Ir.vid ->
                    Some (d.Ir.vid, v)
                  | _ -> None)
                ins
            | _ -> None)
          header.Ir.instrs
      in
      Ok
        {
          loop_id;
          header = header_bid;
          fork_block = fork_blk.Ir.bid;
          moved = to_move;
          effective_prefork;
          coalesce;
        }
    end
