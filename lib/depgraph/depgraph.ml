(** Annotated data-dependence graph of one loop body (§4.1).

    Nodes are the loop-body instructions (operations, per §4.2.2).
    Edges carry a kind, a cross-iteration flag and a probability:

    - register true dependences come from SSA def-use chains; the
      cross-iteration ones are exactly the loop-header phi operands that
      are defined inside the body (the def is the violation candidate,
      the phi its first reader in the next iteration);
    - memory true dependences connect may-aliasing store/load pairs
      (calls participate through their static effect summaries); their
      probabilities come from the dependence profiler when one is
      supplied, otherwise from the conservative type-based static
      default — the difference between the paper's `basic` and `best`
      compilations;
    - anti and output memory dependences are tracked intra-iteration
      only: they are the code-motion legality constraints of §5
      ("maintain all forward intra-iteration dependence edges");
    - control dependences link each branch's condition to the
      instructions it guards, via post-dominance on the acyclic
      one-iteration body. *)

open Spt_ir
open Spt_profile
module Iset = Set.Make (Int)

(* observability counters (no-ops unless metrics are enabled) *)
let m_builds = Spt_obs.Metrics.counter "depgraph.builds"
let m_nodes = Spt_obs.Metrics.counter "depgraph.nodes"
let m_edges = Spt_obs.Metrics.counter "depgraph.edges"

type dep_kind = Reg_true | Mem_true | Mem_anti | Mem_output | Control

let string_of_kind = function
  | Reg_true -> "reg"
  | Mem_true -> "mem"
  | Mem_anti -> "anti"
  | Mem_output -> "out"
  | Control -> "ctrl"

type edge = { src : int; dst : int; kind : dep_kind; cross : bool; prob : float }

type config = {
  dep_profile : Dep_profile.t option;
  edge_profile : Edge_profile.t option;
  static_mem_prob : float;
      (** probability assigned to may-aliasing pairs without profile
          data; 1.0 reproduces the paper's type-based basic compilation *)
  include_control : bool;  (** put control edges in the graph (ablation) *)
  violation_overrides : (int * float) list;
      (** per-instruction violation-probability overrides; the SVP
          transform registers its predicted carried values here with
          their profiled misprediction rates (§7.2) *)
  alias_model : [ `Exact | `Type_based ];
      (** [`Exact]: two named regions alias only when identical.
          [`Type_based] mimics ORC's type-based disambiguation on C —
          where most data sits behind pointers, so any two same-typed
          objects may alias.  The paper's `basic` compilation has only
          this plus edge profiling (§8), which is precisely why it finds
          so little speculative parallelism. *)
  sym_ty : int -> Ir.ty option;
      (** element type per region sid (for [`Type_based]); [None] for
          pseudo regions *)
}

let default_config =
  {
    dep_profile = None;
    edge_profile = None;
    static_mem_prob = 1.0;
    include_control = true;
    violation_overrides = [];
    alias_model = `Exact;
    sym_ty = (fun _ -> None);
  }

type t = {
  func : Ir.func;
  loop : Loops.loop;
  config : config;
  nodes : int list;  (** instruction iids, in body order *)
  instr_tbl : (int, Ir.instr * int * int) Hashtbl.t;
      (** iid -> (instr, bid, position in block) *)
  edges : edge list;
  succs : (int, edge list) Hashtbl.t;
  preds : (int, edge list) Hashtbl.t;
  exec_prob : (int, float) Hashtbl.t;
  freq : (int, float) Hashtbl.t;
      (** uncapped executions per loop iteration (> 1 inside nested
          loops); the cost model weighs Cost(c) by this *)
  header_phis : int list;
  violation_tbl : (int, float) Hashtbl.t;
      (** refined violation probabilities (§4.2.3 step 1): a
          join phi that merely passes a loop-carried value through on
          most iterations (the reduction / conditional-update pattern)
          only *modifies its result* when a modifying arm executes *)
}

let instr t iid =
  match Hashtbl.find_opt t.instr_tbl iid with
  | Some (i, _, _) -> i
  | None -> invalid_arg (Printf.sprintf "Depgraph.instr: %d not in loop body" iid)

let block_of t iid =
  match Hashtbl.find_opt t.instr_tbl iid with
  | Some (_, bid, _) -> bid
  | None -> invalid_arg "Depgraph.block_of"

let mem t iid = Hashtbl.mem t.instr_tbl iid
let succs t iid = Option.value ~default:[] (Hashtbl.find_opt t.succs iid)
let preds t iid = Option.value ~default:[] (Hashtbl.find_opt t.preds iid)
let exec_prob t iid = Option.value ~default:1.0 (Hashtbl.find_opt t.exec_prob iid)
let freq t iid = Option.value ~default:1.0 (Hashtbl.find_opt t.freq iid)

(* ------------------------------------------------------------------ *)
(* Access sets: which regions an instruction may read / write *)

type access = { syms : Iset.t; params : Iset.t }

let no_access = { syms = Iset.empty; params = Iset.empty }
let is_empty_access a = Iset.is_empty a.syms && Iset.is_empty a.params

let access_of_region = function
  | Ir.Rsym s -> { no_access with syms = Iset.singleton s.Ir.sid }
  | Ir.Rparam (slot, _) -> { no_access with params = Iset.singleton slot }

let reads_writes effects_tbl (i : Ir.instr) =
  match i.Ir.kind with
  | Ir.Load (_, r, _) -> (access_of_region r, no_access)
  | Ir.Store (r, _, _) -> (no_access, access_of_region r)
  | Ir.Call _ ->
    let s = Effects.call_site_effects effects_tbl i in
    ( { syms = s.Effects.sym_reads; params = s.Effects.param_reads },
      { syms = s.Effects.sym_writes; params = s.Effects.param_writes } )
  | _ -> (no_access, no_access)

(* Parameters may alias any real (non-pseudo) global region and any
   other parameter; pseudo regions (rng, io) only alias themselves.
   Under the type-based model, two distinct real regions of the same
   element type may alias as well. *)
let may_alias config a b =
  let has_real x = Iset.exists (fun sid -> sid >= 0) x.syms in
  (not (Iset.disjoint a.syms b.syms))
  || ((not (Iset.is_empty a.params)) && (has_real b || not (Iset.is_empty b.params)))
  || ((not (Iset.is_empty b.params)) && has_real a)
  || (config.alias_model = `Type_based
     && Iset.exists
          (fun sa ->
            match config.sym_ty sa with
            | None -> false
            | Some ta ->
              Iset.exists (fun sb -> config.sym_ty sb = Some ta) b.syms)
          a.syms)

(* ------------------------------------------------------------------ *)
(* Post-dominance and control dependence on the one-iteration body DAG *)

(* The body as an acyclic one-iteration graph.  The outer loop's own
   back edges become edges to a virtual sink (-1), as do loop exits.
   A back edge of a loop *nested in the body* is different: within one
   outer iteration, control re-runs the inner test and eventually
   leaves through the inner loop's exits — so the inner back edge is
   redirected to those exit targets.  (Routing it to the sink instead
   would make everything after an inner loop spuriously
   control-dependent on it.) *)
let body_dag (f : Ir.func) (loop : Loops.loop) =
  let dom = Dominance.compute (Cfg.of_func f) in
  let body = loop.Loops.body in
  let inner_exits =
    (* inner-loop header -> exit targets inside the outer body *)
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (l : Loops.loop) ->
        if
          l.Loops.header <> loop.Loops.header
          && Loops.Iset.subset l.Loops.body body
        then
          Hashtbl.replace tbl l.Loops.header
            (List.sort_uniq compare
               (List.filter_map
                  (fun (_, target) ->
                    if Loops.Iset.mem target body then Some target else None)
                  l.Loops.exits)))
      (Loops.find f);
    tbl
  in
  let succs bid =
    let b = Ir.block f bid in
    let all = Ir.term_succs b.Ir.term in
    let keep, removed =
      List.partition
        (fun s ->
          Loops.Iset.mem s body
          && s <> loop.Loops.header
          && not (Dominance.dominates dom s bid))
        all
    in
    (* redirect removed inner back edges to their loop's exits; the
       outer back edge and true exits go to the sink *)
    let extra =
      List.concat_map
        (fun s ->
          if s <> loop.Loops.header && Loops.Iset.mem s body then
            match Hashtbl.find_opt inner_exits s with
            | Some (_ :: _ as exits) -> exits
            | _ -> [ -1 ]
          else [ -1 ])
        removed
    in
    List.sort_uniq compare (keep @ extra)
  in
  succs

(* postdom.(b) = set of blocks post-dominating b within the iteration *)
let postdominators (f : Ir.func) (loop : Loops.loop) =
  let body = Loops.Iset.elements loop.Loops.body in
  let succs = body_dag f loop in
  let universe = Iset.add (-1) (Iset.of_list body) in
  let pd = Hashtbl.create 16 in
  Hashtbl.replace pd (-1) (Iset.singleton (-1));
  List.iter (fun b -> Hashtbl.replace pd b universe) body;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let ss = succs b in
        let meet =
          match ss with
          | [] -> Iset.singleton (-1)  (* treat dead ends as exits *)
          | s :: rest ->
            List.fold_left
              (fun acc s' -> Iset.inter acc (Hashtbl.find pd s'))
              (Hashtbl.find pd s) rest
        in
        let next = Iset.add b meet in
        if not (Iset.equal next (Hashtbl.find pd b)) then begin
          Hashtbl.replace pd b next;
          changed := true
        end)
      body
  done;
  pd

(* For each block, the branch blocks it is control-dependent on:
   B depends on branch C iff B post-dominates some in-body successor of
   C but does not post-dominate C. *)
let control_deps (f : Ir.func) (loop : Loops.loop) =
  let pd = postdominators f loop in
  let postdom b x = b <> -1 && Iset.mem b (Hashtbl.find pd x) in
  let deps = Hashtbl.create 16 in
  Loops.Iset.iter
    (fun c ->
      let succs_in =
        List.filter
          (fun s -> Loops.Iset.mem s loop.Loops.body && s <> loop.Loops.header)
          (Ir.term_succs (Ir.block f c).Ir.term)
      in
      if List.length (Ir.term_succs (Ir.block f c).Ir.term) >= 2 then
        Loops.Iset.iter
          (fun b ->
            if
              (not (postdom b c))
              && List.exists (fun s -> postdom b s) succs_in
            then
              Hashtbl.replace deps b
                (c :: Option.value ~default:[] (Hashtbl.find_opt deps b)))
          loop.Loops.body)
    loop.Loops.body;
  deps

(* ------------------------------------------------------------------ *)
(* Intra-iteration ordering: can [a] execute before [b] in one
   iteration?  Same block: position order; otherwise: reachability in
   the body DAG. *)

let intra_reach (f : Ir.func) (loop : Loops.loop) =
  let succs = body_dag f loop in
  let reach = Hashtbl.create 16 in
  let rec compute bid =
    match Hashtbl.find_opt reach bid with
    | Some r -> r
    | None ->
      (* cycles are impossible in the body DAG *)
      Hashtbl.replace reach bid Iset.empty;  (* guard *)
      let r =
        List.fold_left
          (fun acc s ->
            if s = -1 then acc else Iset.union (Iset.add s (compute s)) acc)
          Iset.empty (succs bid)
      in
      Hashtbl.replace reach bid r;
      r
  in
  Loops.Iset.iter (fun b -> ignore (compute b)) loop.Loops.body;
  fun ~src ~dst -> Iset.mem dst (Hashtbl.find reach src)

(* ------------------------------------------------------------------ *)
(* Graph construction *)

let build ?(config = default_config) effects_tbl (f : Ir.func) (loop : Loops.loop) =
  let body_blocks = Loops.Iset.elements loop.Loops.body in
  let instr_tbl = Hashtbl.create 64 in
  let nodes = ref [] in
  List.iter
    (fun bid ->
      List.iteri
        (fun pos (i : Ir.instr) ->
          Hashtbl.replace instr_tbl i.Ir.iid (i, bid, pos);
          nodes := i.Ir.iid :: !nodes)
        (Ir.block f bid).Ir.instrs)
    body_blocks;
  let nodes = List.rev !nodes in
  (* execution probability (capped at 1) and execution frequency
     (uncapped — an instruction in a nested loop executes several times
     per outer iteration and contributes that much computation) *)
  let exec_prob_tbl = Hashtbl.create 64 in
  let freq_tbl = Hashtbl.create 64 in
  let block_freq bid =
    match config.edge_profile with
    | Some ep ->
      let h = Edge_profile.block_count ep f loop.Loops.header in
      if h = 0 then 1.0
      else float_of_int (Edge_profile.block_count ep f bid) /. float_of_int h
    | None -> 1.0
  in
  List.iter
    (fun iid ->
      let _, bid, _ = Hashtbl.find instr_tbl iid in
      let fq = block_freq bid in
      Hashtbl.replace freq_tbl iid fq;
      Hashtbl.replace exec_prob_tbl iid (Float.min 1.0 fq))
    nodes;
  let edges = ref [] in
  let add_edge e = edges := e :: !edges in
  (* intra-iteration ordering, used to keep the graph acyclic: edges of
     loops nested in the body would otherwise close cycles (an
     inner-loop-carried dependence is a true dependence *within* one
     outer iteration, but flows backward in program order).  Such
     backward register edges are dropped; the forward phi→use edges
     still connect inner producers to outer consumers, so legality
     closures remain safe while the cost of repeated inner iterations
     is approximated by a single pass. *)
  let before =
    let reach = intra_reach f loop in
    fun a b ->
      let _, ba, pa = Hashtbl.find instr_tbl a in
      let _, bb, pb = Hashtbl.find instr_tbl b in
      if ba = bb then pa < pb else reach ~src:ba ~dst:bb
  in
  (* --- register true dependences (SSA def-use) --- *)
  let def_site = Hashtbl.create 64 in
  List.iter
    (fun iid ->
      let i, _, _ = Hashtbl.find instr_tbl iid in
      match Ir.def_of_kind i.Ir.kind with
      | Some d -> Hashtbl.replace def_site d.Ir.vid iid
      | None -> ())
    nodes;
  let header_phis = ref [] in
  let latch_set = Iset.of_list loop.Loops.latches in
  List.iter
    (fun iid ->
      let i, bid, _ = Hashtbl.find instr_tbl iid in
      match i.Ir.kind with
      | Ir.Phi (_, ins) when bid = loop.Loops.header ->
        header_phis := iid :: !header_phis;
        (* operands arriving over back edges: cross-iteration true deps *)
        List.iter
          (fun (p, o) ->
            match o with
            | Ir.Reg v when Iset.mem p latch_set -> (
              match Hashtbl.find_opt def_site v.Ir.vid with
              | Some src ->
                add_edge { src; dst = iid; kind = Reg_true; cross = true; prob = 1.0 }
              | None -> () (* defined outside: loop-invariant, no dependence *))
            | _ -> ())
          ins
      | k ->
        (* ordinary uses, and operands of non-header phis: intra edges *)
        let use_vars =
          match k with
          | Ir.Phi (_, ins) ->
            List.filter_map (fun (_, o) -> match o with Ir.Reg v -> Some v | _ -> None) ins
          | k -> Ir.reg_uses_of_kind k
        in
        List.iter
          (fun v ->
            match Hashtbl.find_opt def_site v.Ir.vid with
            | Some src when src <> iid && before src iid ->
              let p_src = Hashtbl.find exec_prob_tbl src in
              let p_dst = Hashtbl.find exec_prob_tbl iid in
              let prob = if p_src <= 0.0 then 1.0 else min 1.0 (p_dst /. p_src) in
              add_edge { src; dst = iid; kind = Reg_true; cross = false; prob }
            | _ -> ())
          use_vars)
    nodes;
  (* uses of header-phi defs: intra edges phi -> use, handled above
     because the phi is the def site. *)
  (* --- memory dependences --- *)
  let loop_key = (f.Ir.fname, loop.Loops.header) in
  let mem_nodes =
    List.filter_map
      (fun iid ->
        let i, _, _ = Hashtbl.find instr_tbl iid in
        let reads, writes = reads_writes effects_tbl i in
        if is_empty_access reads && is_empty_access writes then None
        else Some (iid, reads, writes))
      nodes
  in
  let profiled kind ~w ~r =
    match config.dep_profile with
    | Some dp when Dep_profile.observed dp loop_key ->
      Dep_profile.dep_prob dp loop_key ~w ~r kind
    | _ -> None
  in
  List.iter
    (fun (w_iid, _, w_writes) ->
      if not (is_empty_access w_writes) then
        List.iter
          (fun (r_iid, r_reads, r_writes) ->
            (* true dependences W -> R *)
            if may_alias config w_writes r_reads then begin
              (* intra: only if W can precede R in an iteration *)
              if w_iid <> r_iid && before w_iid r_iid then begin
                let prob =
                  match profiled Dep_profile.Intra ~w:w_iid ~r:r_iid with
                  | Some p -> p
                  | None -> config.static_mem_prob
                in
                if prob > 0.0 then
                  add_edge
                    { src = w_iid; dst = r_iid; kind = Mem_true; cross = false; prob }
              end;
              (* cross at distance 1: any position pair *)
              let prob =
                match profiled Dep_profile.Cross1 ~w:w_iid ~r:r_iid with
                | Some p -> p
                | None -> config.static_mem_prob
              in
              if prob > 0.0 then
                add_edge
                  { src = w_iid; dst = r_iid; kind = Mem_true; cross = true; prob }
            end;
            (* anti dependence R(read) before W(write): legality edge
               R -> W, meaning W may not move above R *)
            if
              w_iid <> r_iid
              && may_alias config r_reads w_writes
              && before r_iid w_iid
            then
              add_edge
                { src = r_iid; dst = w_iid; kind = Mem_anti; cross = false; prob = 1.0 };
            (* output dependence W before W' *)
            if
              w_iid <> r_iid
              && may_alias config w_writes r_writes
              && before w_iid r_iid
            then
              add_edge
                { src = w_iid; dst = r_iid; kind = Mem_output; cross = false; prob = 1.0 })
          mem_nodes)
    mem_nodes;
  (* --- control dependences --- *)
  if config.include_control then begin
    let cdeps = control_deps f loop in
    let cond_def_of_block = Hashtbl.create 8 in
    Loops.Iset.iter
      (fun bid ->
        match (Ir.block f bid).Ir.term with
        | Ir.Br (Ir.Reg v, _, _) -> (
          match Hashtbl.find_opt def_site v.Ir.vid with
          | Some iid -> Hashtbl.replace cond_def_of_block bid iid
          | None -> ())
        | _ -> ())
      loop.Loops.body;
    (* a join phi's *value* is selected by the branches its predecessors
       are guarded by: re-executing such a branch's condition reselects
       the phi, so the condition is a control ancestor of the phi (this
       also keeps cloned conditional regions self-contained: the
       pre-fork closure of a moved join phi includes its condition) *)
    let ctrl_blocks_for iid =
      let i, bid, _ = Hashtbl.find instr_tbl iid in
      let direct = Option.value ~default:[] (Hashtbl.find_opt cdeps bid) in
      match i.Ir.kind with
      | Ir.Phi (_, ins) when bid <> loop.Loops.header ->
        (* only the immediately selecting branches: a predecessor that
           is itself a branch block (the direct branch→join edge), or
           the single branch guarding a predecessor.  Transitive guards
           are deliberately left out — the independence combination rule
           would count the same upstream cause once per join otherwise. *)
        let from_preds =
          List.filter_map
            (fun (p, _) ->
              if Hashtbl.mem cond_def_of_block p then Some p
              else
                match Hashtbl.find_opt cdeps p with
                | Some [ c ] -> Some c
                | _ -> None)
            ins
        in
        List.sort_uniq compare (direct @ from_preds)
      | _ -> direct
    in
    List.iter
      (fun iid ->
        List.iter
          (fun cblk ->
            match Hashtbl.find_opt cond_def_of_block cblk with
            | Some cond_iid when cond_iid <> iid && before cond_iid iid ->
              let p_c = Hashtbl.find exec_prob_tbl cond_iid in
              let p_i = Hashtbl.find exec_prob_tbl iid in
              let prob = if p_c <= 0.0 then 1.0 else min 1.0 (p_i /. p_c) in
              add_edge
                { src = cond_iid; dst = iid; kind = Control; cross = false; prob }
            | _ -> ())
          (ctrl_blocks_for iid))
      nodes
  end;
  (* dedupe edges (same src/dst/kind/cross), keeping the max prob *)
  let dedup = Hashtbl.create 256 in
  List.iter
    (fun e ->
      let key = (e.src, e.dst, e.kind, e.cross) in
      match Hashtbl.find_opt dedup key with
      | Some e' when e'.prob >= e.prob -> ()
      | _ -> Hashtbl.replace dedup key e)
    !edges;
  let edges = Hashtbl.fold (fun _ e acc -> e :: acc) dedup [] in
  let succs_tbl = Hashtbl.create 64 and preds_tbl = Hashtbl.create 64 in
  let push tbl k e =
    Hashtbl.replace tbl k (e :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun e ->
      push succs_tbl e.src e;
      push preds_tbl e.dst e)
    edges;
  (* refined violation probabilities for conditional-update join phis:
     z = phi(p_keep: h, p_mod: new) where h is a header phi carrying z
     back — z's result is modified only when a modifying predecessor
     executes, so the violation probability is the modifying arms'
     combined edge probability rather than 1 *)
  let violation_tbl = Hashtbl.create 8 in
  (match config.edge_profile with
  | None -> ()
  | Some ep ->
    let header_count =
      Spt_profile.Edge_profile.block_count ep f loop.Loops.header
    in
    if header_count > 0 then begin
      (* header phi vid -> its latch-operand defining iid *)
      let latch_set = Iset.of_list loop.Loops.latches in
      let carried_back = Hashtbl.create 8 in
      List.iter
        (fun iid ->
          match (Hashtbl.find instr_tbl iid : Ir.instr * int * int) with
          | { Ir.kind = Ir.Phi (h, ins); _ }, _, _ ->
            List.iter
              (fun (p, o) ->
                match o with
                | Ir.Reg v when Iset.mem p latch_set ->
                  Hashtbl.replace carried_back v.Ir.vid h.Ir.vid
                | _ -> ())
              ins
          | _ -> ())
        !header_phis;
      List.iter
        (fun iid ->
          let i, zbid, _ = Hashtbl.find instr_tbl iid in
          match i.Ir.kind with
          | Ir.Phi (z, ins)
            when zbid <> loop.Loops.header
                 && Hashtbl.find_opt carried_back z.Ir.vid <> None ->
            (* z feeds a header phi h; operands whose value *is* h are
               pass-throughs *)
            let hvid = Hashtbl.find carried_back z.Ir.vid in
            let pass_through o =
              match o with
              | Ir.Reg v -> (
                match Hashtbl.find_opt def_site v.Ir.vid with
                | Some def_iid -> (
                  match (Hashtbl.find instr_tbl def_iid : Ir.instr * int * int) with
                  | { Ir.kind = Ir.Phi (h, _); _ }, hb, _ ->
                    hb = loop.Loops.header && h.Ir.vid = hvid
                  | _ -> false)
                | None -> false)
              | _ -> false
            in
            let modifying_prob =
              List.fold_left
                (fun acc (p, o) ->
                  if pass_through o then acc
                  else
                    acc
                    +. float_of_int
                         (Spt_profile.Edge_profile.edge_count ep f ~src:p
                            ~dst:zbid)
                       /. float_of_int header_count)
                0.0 ins
            in
            Hashtbl.replace violation_tbl iid (Float.min 1.0 modifying_prob)
          | _ -> ())
        nodes
    end);
  Spt_obs.Metrics.inc m_builds;
  Spt_obs.Metrics.add m_nodes (List.length nodes);
  Spt_obs.Metrics.add m_edges (List.length edges);
  {
    func = f;
    loop;
    config;
    nodes;
    instr_tbl;
    edges;
    succs = succs_tbl;
    preds = preds_tbl;
    exec_prob = exec_prob_tbl;
    freq = freq_tbl;
    header_phis = List.rev !header_phis;
    violation_tbl;
  }

(* ------------------------------------------------------------------ *)
(* Derived views *)

(** Cross-iteration true-dependence edges. *)
let cross_edges t =
  List.filter (fun e -> e.cross && (e.kind = Reg_true || e.kind = Mem_true)) t.edges

(** Violation candidates (§4.2.1): sources of cross-iteration true
    dependences, in deterministic order. *)
let violation_candidates t =
  List.sort_uniq compare (List.map (fun e -> e.src) (cross_edges t))

(** Intra-iteration edges of the kinds that constrain code motion
    (true, anti, output, control). *)
let motion_edges t =
  List.filter
    (fun e ->
      (not e.cross)
      &&
      match e.kind with
      | Reg_true | Mem_true | Mem_anti | Mem_output | Control -> true)
    t.edges

(** Intra-iteration *true* dependence edges (register, memory, and
    control when configured) — the propagation edges of the cost graph. *)
let intra_true_edges t =
  List.filter
    (fun e ->
      (not e.cross)
      && (e.kind = Reg_true || e.kind = Mem_true
         || (e.kind = Control && t.config.include_control)))
    t.edges

(** Violation probability of a node (§4.2.3 step 1): how often per
    iteration the statement executes and modifies its result — or the
    registered override (SVP misprediction rate) when one exists. *)
let violation_prob t iid =
  match List.assoc_opt iid t.config.violation_overrides with
  | Some p -> p
  | None -> (
    match Hashtbl.find_opt t.violation_tbl iid with
    | Some p -> p
    | None -> exec_prob t iid)

(** Render to DOT (dashed = cross-iteration), mirroring Fig. 5. *)
let to_dot t =
  let g = Spt_util.Dot.create "depgraph" in
  List.iter
    (fun iid ->
      let i, bid, _ = Hashtbl.find t.instr_tbl iid in
      Spt_util.Dot.add_node g ~id:iid
        ~label:(Format.asprintf "bb%d i%d: %a" bid iid Ir_pretty.pp_kind i.Ir.kind))
    t.nodes;
  List.iter
    (fun e ->
      Spt_util.Dot.add_edge g ~src:e.src ~dst:e.dst
        ~label:(Printf.sprintf "%s %.2f" (string_of_kind e.kind) e.prob)
        ~style:(if e.cross then "dashed" else "solid"))
    t.edges;
  Spt_util.Dot.render g
