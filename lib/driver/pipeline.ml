(** The two-pass SPT compilation pipeline (§3.2, Fig. 4) and the
    evaluation harness around it.

    Front end → lowering → SPT loop unrolling → SSA + scalar
    optimization → profiling (edge / dependence / value) → pass 1
    (optimal partition per loop candidate) → software value prediction
    on the costly loops, with re-profiling → pass 1 again on the
    rewritten code → pass 2 (global selection, SPT transformation) →
    SSA destruction (with SVP register coalescing) → simulation on the
    synthetic TLS machine, next to the non-SPT O3 baseline. *)

open Spt_ir
open Spt_srclang
open Spt_profile
open Spt_depgraph
open Spt_cost
open Spt_partition
open Spt_transform
open Spt_tlsim
module Iset = Set.Make (Int)
module Obs = Spt_obs

(* observability: phase spans cover every stage below; these counters
   summarize the two passes and the SVP phase (no-ops unless metrics
   are enabled) *)
let m_pass1_candidates = Obs.Metrics.counter "pipeline.pass1_candidates"
let m_pass1_rejects = Obs.Metrics.counter "pipeline.pass1_rejects"
let m_pass2_selected = Obs.Metrics.counter "pipeline.pass2_selected"
let m_pass2_rejects = Obs.Metrics.counter "pipeline.pass2_rejects"
let m_svp_tried = Obs.Metrics.counter "svp.candidates_tried"
let m_svp_applied = Obs.Metrics.counter "svp.applied"
let m_transform_retries = Obs.Metrics.counter "pipeline.transform_retries"
let m_feedback_divergences = Obs.Metrics.counter "feedback.divergences"

type decision = Selected | Rejected of Select.reject_reason

(** Observed runtime behaviour of one transformed loop — the empirical
    counterpart of the compile-time violation probabilities, fed back
    into the analysis by the adaptive re-partitioning loop. *)
type loop_obs = {
  ob_iters : int;  (** iterations retired *)
  ob_forks : int;
  ob_commits : int;
  ob_violations : int;  (** validation failures *)
  ob_faults : int;  (** speculative faults *)
  ob_kills : int;  (** tasks discarded behind a misspeculation *)
  ob_serial_reexecs : int;
  ob_stale_regions : (int * int) list;
      (** validation failures per store region sid *)
  ob_stale_other : int;  (** register / RNG failures (unattributable) *)
}

(** Minimum observed−predicted misspeculation-probability excess before
    a feedback override replaces the compile-time estimate. *)
let default_divergence_threshold = 0.1

type loop_record = {
  lr_func : string;
  lr_header : int;
  lr_origin : Ir.loop_origin option;
  lr_body_size : float;  (** dynamic operations per iteration *)
  lr_static_size : int;
  lr_trip : float;
  lr_weight : int;  (** profile weight (dynamic ops inside the loop) *)
  lr_decision : decision;
  lr_cost : float option;  (** optimal misspeculation cost *)
  lr_prefork_size : int option;
  lr_loop_id : int option;  (** id when transformed *)
  lr_svp : bool;
  lr_vcs : (int * int option * float) list;
      (** violation candidates: (iid, store-region sid, effective v(c)) *)
  lr_chosen : int list;  (** candidates moved pre-fork, when selected *)
  lr_depth : int;
      (** speculation depth priced for this loop: the forced
          [Config.depth] if any, else the cost model's pick for
          selected loops; 0 when unpriced (rejected / no partition) *)
}

type eval = {
  config_name : string;
  base : Tls_machine.result;
  spt : Tls_machine.result;
  speedup : float;
  loops : loop_record list;
  outputs_match : bool;
  n_spt_loops : int;
}

(* ------------------------------------------------------------------ *)
(* Shared pipeline steps *)

let front_end src =
  Obs.Trace.span "frontend" (fun () ->
      Lower.lower_program (Typecheck.parse_and_check src))

let to_ssa (prog : Ir.program) =
  Obs.Trace.span "ssa.construct" (fun () ->
      List.iter
        (fun (_, f) ->
          Ssa.construct f;
          Passes.optimize_ssa f)
        prog.Ir.funcs)

let out_of_ssa ?(phi_primed = fun _ -> None) (prog : Ir.program) =
  Obs.Trace.span "ssa.destruct" (fun () ->
      List.iter
        (fun (_, f) ->
          Ssa.destruct ~phi_primed f;
          Passes.optimize_nonssa f)
        prog.Ir.funcs)

(** The non-SPT O3 baseline build (Table 1's reference).  It applies
    the same loop unrolling as the SPT build it is compared against, so
    speedups measure speculation rather than unrolling. *)
let compile_base ?(unroll = Unroll.default_policy) ?(inline = false) src =
  let prog = front_end src in
  if inline then ignore (Inline.run prog);
  List.iter (fun (_, f) -> ignore (Unroll.run f unroll)) prog.Ir.funcs;
  to_ssa prog;
  out_of_ssa prog;
  prog

(* run all profilers over [prog] in one interpreter pass *)
let profile_all ?(value_targets = []) (prog : Ir.program) ~max_steps =
  Obs.Trace.span "profile" (fun () ->
      let ep = Edge_profile.create () in
      let dp = Dep_profile.create prog in
      let vp = Value_profile.create value_targets in
      let hooks =
        Spt_interp.Interp.combine_hooks
          [ Edge_profile.hooks ep; Dep_profile.hooks dp; Value_profile.hooks vp ]
      in
      let _ = Spt_interp.Interp.run ~hooks ~max_steps prog in
      (ep, dp, vp))

(* average dynamic cost of one invocation of each function, callees
   included (fixpoint over the call graph) — the speculative thread
   executes callee code too, so loop body sizes must count it *)
let per_invocation_costs ep (prog : Ir.program) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, _) -> Hashtbl.replace tbl name 0.0) prog.Ir.funcs;
  let own_and_calls =
    List.map
      (fun (name, f) ->
        let entries = max 1 (Edge_profile.call_count ep f) in
        let own = ref 0 in
        let calls = ref [] in
        List.iter
          (fun bid ->
            let b = Ir.block f bid in
            let cnt = Edge_profile.block_count ep f bid in
            own := !own + (cnt * Ir.block_size b);
            List.iter
              (fun (i : Ir.instr) ->
                match i.Ir.kind with
                | Ir.Call (_, callee, _) when List.mem_assoc callee prog.Ir.funcs
                  -> calls := (callee, cnt) :: !calls
                | _ -> ())
              b.Ir.instrs)
          (Ir.block_ids f);
        (name, entries, float_of_int !own, !calls))
      prog.Ir.funcs
  in
  for _ = 1 to 1 + List.length prog.Ir.funcs do
    List.iter
      (fun (name, entries, own, calls) ->
        let total =
          List.fold_left
            (fun acc (callee, cnt) ->
              acc
              +. (float_of_int cnt
                 *. Option.value ~default:0.0 (Hashtbl.find_opt tbl callee)))
            own calls
        in
        Hashtbl.replace tbl name (total /. float_of_int entries))
      own_and_calls
  done;
  fun name -> Option.value ~default:0.0 (Hashtbl.find_opt tbl name)

(* dynamic per-iteration size of a loop in elementary operations,
   including the average work of functions called from the body *)
let dynamic_body_size ep ~per_inv (f : Ir.func) (l : Loops.loop) =
  let header_count = Edge_profile.block_count ep f l.Loops.header in
  let weight = Edge_profile.weight_of_loop ep f l in
  if header_count = 0 then
    (* never executed: fall back to the static size *)
    float_of_int
      (Loops.Iset.fold
         (fun bid acc -> acc + Ir.block_size (Ir.block f bid))
         l.Loops.body 0)
  else begin
    let callee_work = ref 0.0 in
    Loops.Iset.iter
      (fun bid ->
        let cnt = Edge_profile.block_count ep f bid in
        List.iter
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Call (_, callee, _) ->
              callee_work := !callee_work +. (float_of_int cnt *. per_inv callee)
            | _ -> ())
          (Ir.block f bid).Ir.instrs)
      l.Loops.body;
    (float_of_int weight +. !callee_work) /. float_of_int header_count
  end

(* ------------------------------------------------------------------ *)
(* Pass 1: per-loop analysis *)

(* the global region a violation candidate's store writes, when it is a
   store to a named region — the link between a compile-time candidate
   and the runtime's per-region validation-failure counters *)
let vc_region (g : Depgraph.t) vc =
  match (Depgraph.instr g vc).Ir.kind with
  | Ir.Store (Ir.Rsym s, _, _) -> Some s.Ir.sid
  | _ -> None

(* Replace compile-time violation probabilities whose runtime
   counterpart came out higher than predicted by more than
   [divergence].  A validation failure also kills every speculative
   task in flight behind it, so the damage per failure is amplified by
   the average backlog; the observed per-candidate probability scales
   the raw stale rate accordingly.  Overrides only ever *raise* a
   probability: a candidate the partitioner moved pre-fork cannot fail
   validation, so its zero observed rate says nothing about its true
   v(c) — correcting downward from it would oscillate. *)
let apply_feedback ~divergence (graph : Depgraph.t) (ob : loop_obs) =
  if ob.ob_iters = 0 then graph
  else begin
    let misspecs = ob.ob_violations + ob.ob_faults in
    let amp =
      float_of_int (misspecs + ob.ob_kills) /. float_of_int (max 1 misspecs)
    in
    (* one validation per *chunk*, so the per-candidate probability is
       stale count over validation attempts (commits + misspecs), not
       over retired iterations — with chunk size 1 the two coincide,
       with larger chunks the iteration denominator would dilute a
       once-per-chunk failure by the chunk size *)
    let attempts = float_of_int (max 1 (ob.ob_commits + misspecs)) in
    let rate n = Float.min 1.0 (amp *. (float_of_int n /. attempts)) in
    let other = rate ob.ob_stale_other in
    let overrides =
      List.filter_map
        (fun vc ->
          let observed =
            match vc_region graph vc with
            | Some sid ->
              rate
                (Option.value ~default:0
                   (List.assoc_opt sid ob.ob_stale_regions))
            | None -> other
          in
          let predicted = Depgraph.violation_prob graph vc in
          if observed -. predicted > divergence then begin
            Obs.Metrics.inc m_feedback_divergences;
            Obs.Log.debug
              "[feedback] %s@bb%d vc %d: predicted %.3f observed %.3f -> \
               override"
              graph.Depgraph.func.Ir.fname graph.Depgraph.loop.Loops.header vc
              predicted observed;
            Some (vc, observed)
          end
          else None)
        (Depgraph.violation_candidates graph)
    in
    if overrides = [] then graph
    else
      {
        graph with
        Depgraph.config =
          {
            graph.Depgraph.config with
            Depgraph.violation_overrides =
              overrides @ graph.Depgraph.config.Depgraph.violation_overrides;
          };
      }
  end

type candidate = {
  c_func : Ir.func;
  c_loop : Loops.loop;
  c_graph : Depgraph.t;
  c_partition : Partition.outcome;
  c_body_size : float;
  c_static_size : int;
  c_trip : float;
  c_weight : int;
}

let analyze (config : Config.t) ~observations ~divergence effects_tbl ep dp
    ~overrides (prog : Ir.program) : candidate list * loop_record list =
  Obs.Trace.span "pass1.analyze" @@ fun () ->
  let sym_ty =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (s : Ir.sym) -> Hashtbl.replace tbl s.Ir.sid s.Ir.selt)
      prog.Ir.globals;
    fun sid -> Hashtbl.find_opt tbl sid
  in
  let per_inv = per_invocation_costs ep prog in
  let candidates = ref [] in
  let records = ref [] in
  List.iter
    (fun (_, f) ->
      List.iter
        (fun (l : Loops.loop) ->
          let body_size = dynamic_body_size ep ~per_inv f l in
          let static_size =
            Loops.Iset.fold
              (fun bid acc -> acc + Ir.block_size (Ir.block f bid))
              l.Loops.body 0
          in
          let trip = Edge_profile.avg_trip_count ep f l in
          let weight = Edge_profile.weight_of_loop ep f l in
          let base_record decision cost prefork =
            {
              lr_func = f.Ir.fname;
              lr_header = l.Loops.header;
              lr_origin = l.Loops.origin;
              lr_body_size = body_size;
              lr_static_size = static_size;
              lr_trip = trip;
              lr_weight = weight;
              lr_decision = decision;
              lr_cost = cost;
              lr_prefork_size = prefork;
              lr_loop_id = None;
              lr_svp = false;
              lr_vcs = [];
              lr_chosen = [];
              lr_depth = 0;
            }
          in
          match
            Select.initial_check config.Config.thresholds
              ~body_size:(int_of_float body_size) ~trip_count:trip
          with
          | Error reason ->
            records := base_record (Rejected reason) None None :: !records
          | Ok () -> (
            let dg_config =
              {
                Depgraph.dep_profile =
                  (if config.Config.use_dep_profile then Some dp else None);
                edge_profile = Some ep;
                static_mem_prob = config.Config.static_mem_prob;
                include_control = config.Config.include_control;
                violation_overrides =
                  Option.value ~default:[]
                    (Hashtbl.find_opt overrides (f.Ir.fname, l.Loops.header));
                alias_model = config.Config.alias_model;
                sym_ty;
              }
            in
            let graph = Depgraph.build ~config:dg_config effects_tbl f l in
            (* adaptive re-partitioning: observed misspeculation rates
               override diverging compile-time estimates before the
               cost graph is built *)
            let graph =
              match
                List.assoc_opt (f.Ir.fname, l.Loops.header) observations
              with
              | Some ob -> apply_feedback ~divergence graph ob
              | None -> graph
            in
            let cm = Cost_model.build graph in
            (* the search only considers partitions the transformation
               can realize: a candidate whose dependence closure reaches
               into a nested loop is not movable (the pre-fork region
               cannot replicate inner loops) *)
            let search_options =
              let inner = Spt_transform_loop.inner_loop_blocks f l in
              if Loops.Iset.is_empty inner then None
              else begin
                let anc = Partition.ancestors graph in
                let movable vc =
                  Partition.Iset.for_all
                    (fun iid ->
                      not (Loops.Iset.mem (Depgraph.block_of graph iid) inner))
                    (anc vc)
                in
                Some
                  {
                    (Partition.default_options
                       ~body_size:(Partition.body_size graph))
                    with
                    Partition.vc_filter = movable;
                  }
              end
            in
            match Partition.search ?options:(Some search_options) cm graph with
            | Partition.Too_many_vcs n ->
              records :=
                base_record (Rejected (Select.Too_many_vcs n)) None None
                :: !records
            | Partition.Found r ->
              candidates :=
                {
                  c_func = f;
                  c_loop = l;
                  c_graph = graph;
                  c_partition = Partition.Found r;
                  c_body_size = body_size;
                  c_static_size = static_size;
                  c_trip = trip;
                  c_weight = weight;
                }
                :: !candidates))
        (Loops.find f))
    prog.Ir.funcs;
  (* cumulative over both analysis rounds when SVP re-analyzes *)
  Obs.Metrics.add m_pass1_candidates (List.length !candidates);
  Obs.Metrics.add m_pass1_rejects (List.length !records);
  (List.rev !candidates, List.rev !records)

(* ------------------------------------------------------------------ *)
(* The full SPT compilation *)

type spt_compilation = {
  program : Ir.program;
  spt_loops : Tls_machine.spt_loop list;
  records : loop_record list;
}

let profile_steps = 100_000_000

(* value-profile targets: carried defs of every loop *)
let svp_targets (prog : Ir.program) =
  List.concat_map
    (fun (name, f) ->
      List.concat_map
        (fun l ->
          List.map
            (fun (_, def_iid) -> { Value_profile.tfunc = name; tiid = def_iid })
            (Svp.candidates f l))
        (Loops.find f))
    prog.Ir.funcs

(* the front half of [compile_spt], up to and including profiling — the
   program state the persistent profile store captures *)
let profile_source ?(config = Config.best) src =
  let prog = front_end src in
  if config.Config.inline then
    Obs.Trace.span "inline" (fun () -> ignore (Inline.run prog));
  Obs.Trace.span "unroll" (fun () ->
      List.iter
        (fun (_, f) -> ignore (Unroll.run f config.Config.unroll))
        prog.Ir.funcs);
  to_ssa prog;
  profile_all ~value_targets:(svp_targets prog) prog ~max_steps:profile_steps

let compile_spt ?profile_seed ?(observations = [])
    ?(divergence = default_divergence_threshold) (config : Config.t) src :
    spt_compilation =
  Obs.Trace.span "compile.spt" @@ fun () ->
  let prog = front_end src in
  if config.Config.inline then
    Obs.Trace.span "inline" (fun () -> ignore (Inline.run prog));
  (* SPT loop unrolling happens before SSA, like ORC's LNO *)
  Obs.Trace.span "unroll" (fun () ->
      List.iter
        (fun (_, f) -> ignore (Unroll.run f config.Config.unroll))
        prog.Ir.funcs);
  to_ssa prog;
  let effects_tbl = Obs.Trace.span "effects" (fun () -> Effects.compute prog) in
  let ep, dp, vp =
    profile_all ~value_targets:(svp_targets prog) prog
      ~max_steps:profile_steps
  in
  (* persistent profiles: merge stored counts into the fresh profilers *)
  (match profile_seed with Some seed -> seed ep dp vp | None -> ());
  let no_overrides : (string * int, (int * float) list) Hashtbl.t =
    Hashtbl.create 4
  in
  (* K-deep selection pricing: under a forced depth every violation
     costs its kill cascade, so the selector compares
     [cost * cascade_factor] against the body instead of raw [cost] and
     marginal loops are not speculated K-deep.  Auto depth leaves
     selection alone — {!Cost_model.pick_depth} already balances the
     cascade against the pipelining gain per region. *)
  let sel_cost c =
    match config.Config.depth with
    | Some k -> c *. Cost_model.cascade_factor ~depth:(max 1 k)
    | None -> c
  in
  let candidates, rejected =
    analyze config ~observations ~divergence effects_tbl ep dp
      ~overrides:no_overrides prog
  in
  (* ---- SVP phase: rewrite costly loops with predictable carried
     values, then re-profile and re-analyze (§7.2) ---- *)
  let svp_applied : (string, Svp.applied list) Hashtbl.t = Hashtbl.create 8 in
  let svp_loops : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  if config.Config.use_svp then begin
    Obs.Trace.span "svp" @@ fun () ->
    List.iter
      (fun c ->
        match c.c_partition with
        | Partition.Found r
          when Result.is_error
                 (Select.final_check config.Config.thresholds
                    ~body_size:(int_of_float c.c_body_size)
                    ~cost:(sel_cost r.Partition.cost)
                    ~prefork_size:r.Partition.prefork_size) ->
          (* costly loop: try predicting its carried values *)
          List.iter
            (fun (phi_iid, def_iid) ->
              Obs.Metrics.inc m_svp_tried;
              let trivially_movable =
                match (Depgraph.instr c.c_graph def_iid).Ir.kind with
                | Ir.Binop (_, (Ir.Add | Ir.Sub), Ir.Reg _, Ir.Imm_i _)
                | Ir.Binop (_, Ir.Add, Ir.Imm_i _, Ir.Reg _)
                | Ir.Move _ -> true
                | _ -> false
                | exception _ -> true
              in
              if not trivially_movable then
                match
                  Value_profile.predictable vp ~func:c.c_func.Ir.fname
                    ~iid:def_iid
                with
                | Some pred
                  when (* pre-evaluate: would the loop's cost clear the bar
                          if this carried value only misspeculated at the
                          misprediction rate?  Only then is the rewrite
                          worth its overhead ("the mis-prediction cost
                          [must be] acceptably low", §7.2). *)
                       (let trial_cfg =
                          {
                            c.c_graph.Depgraph.config with
                            Depgraph.violation_overrides =
                              (def_iid, 1.0 -. pred.Value_profile.hit_rate)
                              :: c.c_graph.Depgraph.config
                                   .Depgraph.violation_overrides;
                          }
                        in
                        let trial_graph =
                          Depgraph.build ~config:trial_cfg effects_tbl c.c_func
                            c.c_loop
                        in
                        let trial_cm = Cost_model.build trial_graph in
                        match Partition.search trial_cm trial_graph with
                        | Partition.Found tr ->
                          let ok =
                            Result.is_ok
                              (Select.final_check config.Config.thresholds
                                 ~body_size:(int_of_float c.c_body_size)
                                 ~cost:(sel_cost tr.Partition.cost)
                                 ~prefork_size:tr.Partition.prefork_size)
                          in
                          Obs.Log.debug
                            "[svp] %s@bb%d def=%d (%s) stride=%Ld hit=%.2f \
                             trial_cost=%.1f prefork=%d body=%.0f -> %b"
                            c.c_func.Ir.fname c.c_loop.Loops.header def_iid
                            (Format.asprintf "%a" Ir_pretty.pp_kind
                               (Depgraph.instr c.c_graph def_iid).Ir.kind)
                            pred.Value_profile.stride
                            pred.Value_profile.hit_rate tr.Partition.cost
                            tr.Partition.prefork_size c.c_body_size ok;
                          ok
                        | Partition.Too_many_vcs _ -> false) -> (
                  match
                    Svp.apply c.c_func c.c_loop ~phi_iid
                      ~stride:pred.Value_profile.stride
                  with
                  | Some applied ->
                    Obs.Metrics.inc m_svp_applied;
                    Hashtbl.replace svp_applied c.c_func.Ir.fname
                      (applied
                      :: Option.value ~default:[]
                           (Hashtbl.find_opt svp_applied c.c_func.Ir.fname));
                    Hashtbl.replace svp_loops
                      (c.c_func.Ir.fname, c.c_loop.Loops.header)
                      ()
                  | None -> ())
                | Some _ | None -> ())
            (Svp.candidates c.c_func c.c_loop)
        | _ -> ())
      candidates
  end;
  let _ep, dp, candidates, rejected =
    if Hashtbl.length svp_applied = 0 then (ep, dp, candidates, rejected)
    else begin
      (* the rewrites added blocks: re-profile and re-analyze *)
      Obs.Trace.span "svp.reprofile" @@ fun () ->
      let ep, dp, vp = profile_all prog ~max_steps:profile_steps in
      (match profile_seed with Some seed -> seed ep dp vp | None -> ());
      (* violation overrides: the SVP'd carried value misspeculates only
         at the profiled misprediction frequency — measured directly as
         the recovery arm's execution probability *)
      let overrides : (string * int, (int * float) list) Hashtbl.t =
        Hashtbl.create 8
      in
      Hashtbl.iter
        (fun fname applied_list ->
          let f = Ir.func_of_program prog fname in
          let loops = Loops.find f in
          (* innermost loop containing the recovery arm *)
          let find_loop (a : Svp.applied) =
            List.filter
              (fun l -> Loops.Iset.mem a.Svp.recover_block l.Loops.body)
              loops
            |> List.sort (fun l1 l2 ->
                   compare
                     (Loops.Iset.cardinal l1.Loops.body)
                     (Loops.Iset.cardinal l2.Loops.body))
            |> function
            | l :: _ -> Some l
            | [] -> None
          in
          List.iter
            (fun (a : Svp.applied) ->
              match find_loop a with
              | Some l ->
                let p_mis =
                  Edge_profile.exec_prob_in_loop ep f l a.Svp.recover_block
                in
                let key = (fname, l.Loops.header) in
                Hashtbl.replace overrides key
                  ((a.Svp.sel_phi_iid, p_mis)
                  :: Option.value ~default:[] (Hashtbl.find_opt overrides key))
              | None -> ())
            applied_list)
        svp_applied;
      let candidates, rejected =
        analyze config ~observations ~divergence effects_tbl ep dp ~overrides
          prog
      in
      (ep, dp, candidates, rejected)
    end
  in
  ignore dp;
  (* ---- pass 2: final selection ---- *)
  let th = config.Config.thresholds in
  let evaluated =
    Obs.Trace.span "pass2.select" @@ fun () ->
    List.map
      (fun c ->
        match c.c_partition with
        | Partition.Too_many_vcs n -> (c, Error (Select.Too_many_vcs n))
        | Partition.Found r -> (
          match
            Select.final_check th ~body_size:(int_of_float c.c_body_size)
              ~cost:(sel_cost r.Partition.cost)
              ~prefork_size:r.Partition.prefork_size
          with
          | Error reason -> (c, Error reason)
          | Ok () -> (c, Ok r)))
      candidates
  in
  (* nesting conflicts: among accepted loops of the same function with
     nested bodies, keep the one with the higher expected benefit *)
  let accepted =
    List.filter_map
      (fun (c, v) -> match v with Ok r -> Some (c, r) | Error _ -> None)
      evaluated
  in
  let benefit_of (c, (r : Partition.result)) =
    Select.benefit ~body_size:(int_of_float c.c_body_size) ~cost:r.Partition.cost
      ~prefork_size:r.Partition.prefork_size ~trip_count:c.c_trip
      ~weight:(float_of_int c.c_weight)
  in
  let conflicts a b =
    let ca, _ = a and cb, _ = b in
    ca.c_func.Ir.fname = cb.c_func.Ir.fname
    && (Loops.Iset.subset ca.c_loop.Loops.body cb.c_loop.Loops.body
       || Loops.Iset.subset cb.c_loop.Loops.body ca.c_loop.Loops.body)
  in
  let sorted = List.sort (fun a b -> compare (benefit_of b) (benefit_of a)) accepted in
  (* ---- SPT transformation ---- *)
  let loop_id_gen = ref 0 in
  let transformed = ref [] in
  let transform_records = ref [] in
  let is_svp c = Hashtbl.mem svp_loops (c.c_func.Ir.fname, c.c_loop.Loops.header) in
  let record_of ?(chosen = []) c (decision : decision) cost prefork loop_id =
    {
      lr_func = c.c_func.Ir.fname;
      lr_header = c.c_loop.Loops.header;
      lr_origin = c.c_loop.Loops.origin;
      lr_body_size = c.c_body_size;
      lr_static_size = c.c_static_size;
      lr_trip = c.c_trip;
      lr_weight = c.c_weight;
      lr_decision = decision;
      lr_cost = cost;
      lr_prefork_size = prefork;
      lr_loop_id = loop_id;
      lr_svp = is_svp c;
      lr_vcs =
        List.map
          (fun vc ->
            (vc, vc_region c.c_graph vc, Depgraph.violation_prob c.c_graph vc))
          (Depgraph.violation_candidates c.c_graph);
      lr_chosen = chosen;
      lr_depth =
        (match config.Config.depth with
        | Some k -> max 1 k
        | None -> (
          match (decision, cost) with
          | Selected, Some cst ->
            Cost_model.pick_depth ~cost:cst ~body_size:c.c_body_size
          | _ -> 0));
    }
  in
  (* process by decreasing benefit; a loop only yields to a conflicting
     loop that actually got *transformed*, so a transform failure does
     not doom the rivals it out-ranked *)
  Obs.Trace.span "transform" (fun () ->
  List.iter
    (fun ((c, (r : Partition.result)) as cand) ->
      if List.exists (fun (c', _, _) -> conflicts (c', r) cand) !transformed then begin
        Obs.Metrics.inc m_pass2_rejects;
        transform_records :=
          record_of c (Rejected Select.Nested_conflict) (Some r.Partition.cost)
            (Some r.Partition.prefork_size) None
          :: !transform_records
      end
      else begin
        (* force the SVP prediction instructions into the pre-fork set *)
        let with_svp prefork =
          List.fold_left
            (fun acc (a : Svp.applied) ->
              if Depgraph.mem c.c_graph a.Svp.predict_iid then
                Iset.add a.Svp.predict_iid acc
              else acc)
            prefork
            (Option.value ~default:[]
               (Hashtbl.find_opt svp_applied c.c_func.Ir.fname))
        in
        let loop_id = !loop_id_gen in
        let attempt prefork =
          Spt_transform_loop.apply c.c_func c.c_graph ~prefork:(with_svp prefork)
            ~loop_id
        in
        let outcome =
          match attempt r.Partition.prefork with
          | Ok info -> Ok (r, info)
          | Error first_rej -> (
            (* the optimal partition is untransformable: re-search with
               the offending candidates excluded and — still respecting
               the selection thresholds — try the runner-up partition *)
            Obs.Metrics.inc m_transform_retries;
            let inner =
              Spt_transform_loop.inner_loop_blocks c.c_func c.c_loop
            in
            let anc = Partition.ancestors c.c_graph in
            let movable vc =
              Iset.for_all
                (fun iid ->
                  not
                    (Loops.Iset.mem (Depgraph.block_of c.c_graph iid) inner))
                (anc vc)
            in
            let opts =
              {
                (Partition.default_options
                   ~body_size:(Partition.body_size c.c_graph))
                with
                Partition.vc_filter = movable;
              }
            in
            let cm = Cost_model.build c.c_graph in
            match Partition.search ~options:(Some opts) cm c.c_graph with
            | Partition.Found r2
              when Result.is_ok
                     (Select.final_check th
                        ~body_size:(int_of_float c.c_body_size)
                        ~cost:(sel_cost r2.Partition.cost)
                        ~prefork_size:r2.Partition.prefork_size) -> (
              match attempt r2.Partition.prefork with
              | Ok info -> Ok (r2, info)
              | Error rej -> Error rej)
            | Partition.Found r2 ->
              Obs.Log.debug
                "[retry] %s@bb%d filtered partition fails selection: \
                 cost=%.1f prefork=%d body=%.0f"
                c.c_func.Ir.fname c.c_loop.Loops.header r2.Partition.cost
                r2.Partition.prefork_size c.c_body_size;
              Error first_rej
            | Partition.Too_many_vcs _ -> Error first_rej)
        in
        match outcome with
        | Ok (r_used, info) ->
          incr loop_id_gen;
          Obs.Metrics.inc m_pass2_selected;
          transformed := (c, r_used, info) :: !transformed;
          transform_records :=
            record_of ~chosen:(Partition.chosen r_used) c Selected
              (Some r_used.Partition.cost)
              (Some r_used.Partition.prefork_size) (Some loop_id)
            :: !transform_records
        | Error rej ->
          Obs.Metrics.inc m_pass2_rejects;
          transform_records :=
            record_of c
              (Rejected
                 (Select.Not_transformable
                    (Spt_transform_loop.string_of_reject rej)))
              (Some r.Partition.cost)
              (Some r.Partition.prefork_size) None
            :: !transform_records
      end)
    sorted);
  (* records for loops that failed final selection *)
  Obs.Metrics.add m_pass2_rejects
    (List.length
       (List.filter (fun (_, v) -> Result.is_error v) evaluated));
  let final_rejects =
    List.filter_map
      (fun (c, v) ->
        match v with
        | Error reason ->
          let cost, prefork =
            match c.c_partition with
            | Partition.Found r ->
              (Some r.Partition.cost, Some r.Partition.prefork_size)
            | Partition.Too_many_vcs _ -> (None, None)
          in
          Some (record_of c (Rejected reason) cost prefork None)
        | Ok _ -> None)
      evaluated
  in
  (* ---- out of SSA and final cleanup, coalescing both the SVP
     prediction registers and the carried registers whose definitions
     moved pre-fork (so the carriers are written before the fork) ---- *)
  let transform_coalesce : (string, (int * Ir.var) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (c, _, (info : Spt_transform_loop.info)) ->
      let fname = c.c_func.Ir.fname in
      Hashtbl.replace transform_coalesce fname
        (info.Spt_transform_loop.coalesce
        @ Option.value ~default:[] (Hashtbl.find_opt transform_coalesce fname)))
    !transformed;
  let phi_primed_for fname =
    let svp_fn =
      match Hashtbl.find_opt svp_applied fname with
      | Some applied -> Svp.phi_primed applied
      | None -> fun _ -> None
    in
    let pairs = Option.value ~default:[] (Hashtbl.find_opt transform_coalesce fname) in
    fun vid ->
      match svp_fn vid with
      | Some v -> Some v
      | None -> List.assoc_opt vid pairs
  in
  Obs.Trace.span "ssa.destruct" (fun () ->
      List.iter
        (fun (name, f) ->
          Ssa.destruct ~phi_primed:(phi_primed_for name) f;
          Passes.optimize_nonssa f)
        prog.Ir.funcs);
  (* ---- register the transformed loops with the simulator ---- *)
  let spt_loops =
    List.filter_map
      (fun (c, _, (info : Spt_transform_loop.info)) ->
        let f = c.c_func in
        let loops = Loops.find f in
        match
          List.find_opt (fun l -> l.Loops.header = info.Spt_transform_loop.header) loops
        with
        | Some l ->
          Some
            {
              Tls_machine.sl_id = info.Spt_transform_loop.loop_id;
              sl_fname = f.Ir.fname;
              sl_header = l.Loops.header;
              sl_body =
                Loops.Iset.fold
                  (fun b acc -> Tls_machine.Iset.add b acc)
                  l.Loops.body Tls_machine.Iset.empty;
            }
        | None -> None)
      !transformed
  in
  {
    program = prog;
    spt_loops;
    records = rejected @ final_rejects @ List.rev !transform_records;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation: SPT build vs the non-SPT baseline *)

let evaluate ?(config = Config.best) ?profile_seed ?observations ?divergence
    src : eval =
  let base_prog =
    Obs.Trace.span "compile.base" (fun () ->
        compile_base ~unroll:config.Config.unroll ~inline:config.Config.inline
          src)
  in
  let base =
    Obs.Trace.span "simulate.base" (fun () ->
        Tls_machine.run ~config:config.Config.sim base_prog)
  in
  let spt = compile_spt ?profile_seed ?observations ?divergence config src in
  let spt_res =
    Obs.Trace.span "simulate.spt" (fun () ->
        Tls_machine.run ~config:config.Config.sim ~spt_loops:spt.spt_loops
          spt.program)
  in
  Obs.Log.info "evaluate[%s]: base=%.0f cycles, spt=%.0f cycles, %d SPT loops"
    config.Config.name base.Tls_machine.cycles spt_res.Tls_machine.cycles
    (List.length spt.spt_loops);
  {
    config_name = config.Config.name;
    base;
    spt = spt_res;
    speedup =
      (if spt_res.Tls_machine.cycles > 0.0 then
         base.Tls_machine.cycles /. spt_res.Tls_machine.cycles
       else 1.0);
    loops = spt.records;
    outputs_match = String.equal base.Tls_machine.output spt_res.Tls_machine.output;
    n_spt_loops = List.length spt.spt_loops;
  }

(* ------------------------------------------------------------------ *)
(* Parallel execution on the speculative runtime *)

type parallel_run = {
  pr_jobs : int;
  pr_engine : Spt_exec.Engine.kind;  (** engine both runs executed on *)
  pr_chunk : int option;  (** forced chunk size ([None] = auto) *)
  pr_depth : int option;  (** forced speculation depth ([None] = auto) *)
  pr_n_loops : int;  (** SPT loops handed to the runtime *)
  pr_seq_wall : float;  (** sequential engine wall time, seconds *)
  pr_measured_speedup : float;  (** sequential wall / parallel wall *)
  pr_runtime : Spt_runtime.Runtime.result;
  pr_spt : spt_compilation;  (** the compilation that was executed *)
}

let run_parallel ?(config = Config.best) ?jobs ?chunk ?depth ?runtime_config
    ?timeline ?profile_seed ?observations ?divergence src : parallel_run =
  let spt = compile_spt ?profile_seed ?observations ?divergence config src in
  let loops =
    List.map
      (fun (sl : Tls_machine.spt_loop) ->
        let record =
          List.find_opt
            (fun (r : loop_record) ->
              String.equal r.lr_func sl.Tls_machine.sl_fname
              && r.lr_header = sl.Tls_machine.sl_header)
            spt.records
        in
        {
          Spt_runtime.Runtime.ls_id = sl.Tls_machine.sl_id;
          ls_fname = sl.Tls_machine.sl_fname;
          ls_header = sl.Tls_machine.sl_header;
          (* the cost model's per-iteration estimate sizes the chunk… *)
          ls_iter_ops =
            (match record with Some r -> r.lr_body_size | None -> 0.0);
          (* …and its priced speculation depth bounds the epoch window *)
          ls_depth = (match record with Some r -> r.lr_depth | None -> 0);
        })
      spt.spt_loops
  in
  let rcfg =
    let base =
      match runtime_config with
      | Some c -> c
      | None -> Spt_runtime.Runtime.default_config ()
    in
    let base =
      { base with Spt_runtime.Runtime.engine = config.Config.engine }
    in
    let base =
      match jobs with
      | Some j ->
        let j = max 1 j in
        { base with Spt_runtime.Runtime.jobs = j; window = 2 * j }
      | None -> base
    in
    let base =
      match chunk with
      | Some n -> { base with Spt_runtime.Runtime.chunk = Some (max 1 n) }
      | None -> base
    in
    let base =
      (* explicit [depth] wins; else a forced compile-config depth
         (the two arrive from the same --depth flag, but API callers
         may set either) *)
      match (depth, config.Config.depth) with
      | Some k, _ | None, Some k ->
        { base with Spt_runtime.Runtime.depth = Some (max 1 k) }
      | None, None -> base
    in
    match timeline with
    | Some t -> { base with Spt_runtime.Runtime.timeline = Some t }
    | None -> base
  in
  (* measured-speedup baseline: the same program run sequentially
     (markers are no-ops), on the same engine, on this machine, right
     now *)
  let seq_run =
    match rcfg.Spt_runtime.Runtime.engine with
    | Spt_exec.Engine.Tree -> Spt_interp.Interp.run ?hooks:None
    | Spt_exec.Engine.Bytecode -> Spt_exec.Engine.run
  in
  let t0 = Unix.gettimeofday () in
  let _seq = Obs.Trace.span "run.sequential" (fun () ->
      seq_run ~max_steps:rcfg.Spt_runtime.Runtime.max_steps
        spt.program) in
  let pr_seq_wall = Unix.gettimeofday () -. t0 in
  let r =
    Obs.Trace.span "run.parallel" (fun () ->
        Spt_runtime.Runtime.run ~config:rcfg ~loops spt.program)
  in
  (* the runtime's workers have joined; merge their lanes into the
     pipeline trace so chrome://tracing shows the parallel execution *)
  (match rcfg.Spt_runtime.Runtime.timeline with
  | Some t when Obs.Trace.enabled () ->
    Obs.Trace.append_events
      (Obs.Timeline.to_trace_events ~epoch:(Obs.Trace.epoch_s ()) t)
  | _ -> ());
  Obs.Log.info
    "run_parallel: %d SPT loops, jobs=%d, seq %.3fs vs par %.3fs, oracle %s"
    (List.length loops) rcfg.Spt_runtime.Runtime.jobs pr_seq_wall
    r.Spt_runtime.Runtime.wall_time
    (match r.Spt_runtime.Runtime.oracle with
    | `Match -> "match"
    | `Mismatch m -> "MISMATCH: " ^ m
    | `Skipped -> "skipped");
  {
    pr_jobs = rcfg.Spt_runtime.Runtime.jobs;
    pr_engine = rcfg.Spt_runtime.Runtime.engine;
    pr_chunk = rcfg.Spt_runtime.Runtime.chunk;
    pr_depth = rcfg.Spt_runtime.Runtime.depth;
    pr_n_loops = List.length loops;
    pr_seq_wall;
    pr_measured_speedup =
      (if r.Spt_runtime.Runtime.wall_time > 0.0 then
         pr_seq_wall /. r.Spt_runtime.Runtime.wall_time
       else 1.0);
    pr_runtime = r;
    pr_spt = spt;
  }
