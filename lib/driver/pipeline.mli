(** The two-pass SPT compilation pipeline (§3.2, Fig. 4) and the
    evaluation harness around it: front end → unrolling → SSA +
    clean-up → profiling → pass 1 (optimal partition per loop) → SVP on
    costly loops with re-profiling → pass 2 (global selection, SPT
    transformation) → SSA destruction with carried-register coalescing
    → TLS simulation against the non-SPT baseline. *)

open Spt_ir
open Spt_transform
open Spt_tlsim

type decision = Selected | Rejected of Select.reject_reason

(** Observed runtime behaviour of one transformed loop, as exported by
    the feedback subsystem ({!Spt_feedback}) and fed back into the
    analysis: observed misspeculation rates override compile-time
    violation probabilities that diverge beyond a threshold. *)
type loop_obs = {
  ob_iters : int;  (** iterations retired *)
  ob_forks : int;
  ob_commits : int;
  ob_violations : int;  (** validation failures *)
  ob_faults : int;  (** speculative faults *)
  ob_kills : int;  (** tasks discarded behind a misspeculation *)
  ob_serial_reexecs : int;
  ob_stale_regions : (int * int) list;
      (** validation failures per store region sid *)
  ob_stale_other : int;  (** register / RNG failures (unattributable) *)
}

(** Minimum observed−predicted misspeculation-probability excess before
    a feedback override replaces the compile-time estimate (overrides
    only ever raise a probability — a candidate moved pre-fork cannot
    fail validation, so its zero observed rate is not evidence). *)
val default_divergence_threshold : float

(** One analyzed loop, as reported by the compilation (the Fig. 15–19
    record). *)
type loop_record = {
  lr_func : string;
  lr_header : int;
  lr_origin : Ir.loop_origin option;
  lr_body_size : float;  (** dynamic operations per iteration, callees included *)
  lr_static_size : int;
  lr_trip : float;  (** profiled average trip count *)
  lr_weight : int;  (** dynamic operations inside the loop *)
  lr_decision : decision;
  lr_cost : float option;  (** optimal misspeculation cost *)
  lr_prefork_size : int option;
  lr_loop_id : int option;  (** simulator id when transformed *)
  lr_svp : bool;  (** value prediction was applied *)
  lr_vcs : (int * int option * float) list;
      (** violation candidates: (iid, store-region sid, effective
          violation probability after any feedback override) *)
  lr_chosen : int list;  (** candidates moved pre-fork, when selected *)
  lr_depth : int;
      (** speculation depth priced for this loop — the forced
          [Config.depth] if any, else {!Spt_cost.Cost_model.pick_depth}
          on the optimal partition for selected loops; 0 when unpriced *)
}

(** Result of evaluating one program under one configuration. *)
type eval = {
  config_name : string;
  base : Tls_machine.result;
  spt : Tls_machine.result;
  speedup : float;  (** base cycles / SPT cycles *)
  loops : loop_record list;
  outputs_match : bool;  (** transformed output equals the baseline's *)
  n_spt_loops : int;
}

(** Parse, type-check and lower MiniC source. *)
val front_end : string -> Ir.program

(** SSA-construct and optimize every function, in place. *)
val to_ssa : Ir.program -> unit

(** Destruct SSA and clean up, in place. *)
val out_of_ssa : ?phi_primed:(int -> Ir.var option) -> Ir.program -> unit

(** The non-SPT O3-style baseline build (Table 1's reference), with the
    same unrolling/inlining as the SPT build it is compared against so
    speedups measure speculation. *)
val compile_base :
  ?unroll:Unroll.policy -> ?inline:bool -> string -> Ir.program

(** Run the edge, dependence and value profilers in one interpreter
    pass. *)
val profile_all :
  ?value_targets:Spt_profile.Value_profile.target list ->
  Ir.program ->
  max_steps:int ->
  Spt_profile.Edge_profile.t * Spt_profile.Dep_profile.t * Spt_profile.Value_profile.t

(** Run the front half of {!compile_spt} — front end, inlining,
    unrolling, SSA, profiling — and return the three profilers.  This
    is the program state the persistent profile store captures. *)
val profile_source :
  ?config:Config.t ->
  string ->
  Spt_profile.Edge_profile.t * Spt_profile.Dep_profile.t * Spt_profile.Value_profile.t

(** A fully SPT-compiled program with its simulator registrations and
    per-loop records. *)
type spt_compilation = {
  program : Ir.program;
  spt_loops : Tls_machine.spt_loop list;
  records : loop_record list;
}

(** [profile_seed] is called on the freshly built profilers after every
    profiling pass (including the SVP re-profile) so stored counts can
    be merged in before analysis; [observations], keyed by
    (function, loop header), injects observed misspeculation rates;
    [divergence] tunes the override threshold
    ({!default_divergence_threshold}). *)
val compile_spt :
  ?profile_seed:
    (Spt_profile.Edge_profile.t ->
    Spt_profile.Dep_profile.t ->
    Spt_profile.Value_profile.t ->
    unit) ->
  ?observations:((string * int) * loop_obs) list ->
  ?divergence:float ->
  Config.t ->
  string ->
  spt_compilation

(** Compile both ways, simulate both, compare. *)
val evaluate :
  ?config:Config.t ->
  ?profile_seed:
    (Spt_profile.Edge_profile.t ->
    Spt_profile.Dep_profile.t ->
    Spt_profile.Value_profile.t ->
    unit) ->
  ?observations:((string * int) * loop_obs) list ->
  ?divergence:float ->
  string ->
  eval

(** An SPT compilation executed for real on the speculative runtime
    ({!Spt_runtime.Runtime}), next to a sequential run of the same
    program for the measured (wall-clock) speedup. *)
type parallel_run = {
  pr_jobs : int;
  pr_engine : Spt_exec.Engine.kind;  (** engine both runs executed on *)
  pr_chunk : int option;  (** forced chunk size ([None] = auto) *)
  pr_depth : int option;
      (** forced speculation depth ([None] = the cost model's per-loop
          pick, capped at the runtime window) *)
  pr_n_loops : int;  (** SPT loops handed to the runtime *)
  pr_seq_wall : float;  (** sequential engine wall time, seconds *)
  pr_measured_speedup : float;  (** sequential wall / parallel wall *)
  pr_runtime : Spt_runtime.Runtime.result;
  pr_spt : spt_compilation;  (** the compilation that was executed *)
}

(** Compile with [config], then execute on OCaml 5 domains.
    [runtime_config] replaces the default runtime configuration; [jobs]
    then overrides its worker count (else [SPT_JOBS] / 1); [chunk]
    forces the iterations-per-fork chunk size (else auto-sized from the
    cost model); [depth] forces the speculation depth — chunks in
    flight — for every loop (else [config]'s forced depth, else the
    cost model's per-loop pick); [timeline] overrides its timeline — the per-domain
    speculation events land there, and (when tracing is enabled) are
    merged into the pipeline trace as extra lanes.  Both the parallel
    run and its sequential baseline execute on [config]'s engine.
    [profile_seed] / [observations] / [divergence] are passed to
    {!compile_spt}. *)
val run_parallel :
  ?config:Config.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?depth:int ->
  ?runtime_config:Spt_runtime.Runtime.config ->
  ?timeline:Spt_obs.Timeline.t ->
  ?profile_seed:
    (Spt_profile.Edge_profile.t ->
    Spt_profile.Dep_profile.t ->
    Spt_profile.Value_profile.t ->
    unit) ->
  ?observations:((string * int) * loop_obs) list ->
  ?divergence:float ->
  string ->
  parallel_run
