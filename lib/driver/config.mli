(** The compiler configurations evaluated in §8 of the paper, plus the
    inlining extension. *)

open Spt_transform

type t = {
  name : string;
  alias_model : [ `Exact | `Type_based ];
      (** [`Type_based] mimics ORC's type-based disambiguation on
          pointer-rich C (the `basic` compilation's only alias
          information) *)
  use_dep_profile : bool;
  use_svp : bool;
  inline : bool;  (** extension: inline small callees before analysis *)
  unroll : Unroll.policy;
  thresholds : Select.thresholds;
  static_mem_prob : float;
  include_control : bool;
  sim : Spt_tlsim.Tls_machine.config;
  engine : Spt_exec.Engine.kind;
      (** execution engine for real (non-simulated) runs — part of the
          cache key like every other field *)
  depth : int option;
      (** forced speculation depth (chunks in flight per loop); [None]
          lets the cost model price and pick a depth per region.
          Part of the cache key: a forced depth changes both the
          selector's kill-cascade pricing and the per-loop depth baked
          into compile records *)
}

(** Cost model + code reordering + DO-loop unrolling, control-flow edge
    profiling only (paper: ≈1% average speedup). *)
val basic : t

(** [basic] + dependence profiling + software value prediction
    (paper: ≈8%). *)
val best : t

(** [best] + while-loop unrolling and relaxed thresholds standing in
    for the manually-applied techniques (paper: ≈15.6%). *)
val anticipated : t

(** [best] + small-function inlining (extension beyond the paper). *)
val best_inline : t

val all : t list

(** @raise Invalid_argument on unknown names. *)
val by_name : string -> t

(** A stable token covering every knob that can change an analysis or
    simulation result — the configuration half of an artifact-cache key
    ({!Spt_service.Fingerprint}).  Two configurations share a token iff
    all their fields are equal.  [profile] appends the digest of the
    persistent profile store seeding the compilation, so profile-guided
    results never collide with cold ones. *)
val cache_key : ?profile:string -> t -> string
