(** Experiment reporting: renders each of §8's tables and figures from
    evaluation results as aligned text tables (what `bench/main.exe`
    prints and EXPERIMENTS.md records). *)

(** Table 1: base-reference IPC per program, next to the paper's. *)
val table1 : (string * Pipeline.eval) list -> string

(** Fig. 14: per-program speedups for each configuration
    ([(config name, per-program results)] outer list). *)
val fig14 : (string * (string * Pipeline.eval) list) list -> string

(** Fig. 15 buckets. *)
type breakdown = {
  total : int;
  valid : int;
  many_vcs : int;
  small_body : int;
  large_body : int;
  small_trip : int;
  high_cost : int;
  untransformable : int;
  nested : int;
}

val breakdown_of : Pipeline.loop_record list -> breakdown

(** Fig. 15: breakdown of loop candidates by decision. *)
val fig15 : (string * Pipeline.eval) list -> string

(** Fig. 16: SPT runtime coverage, maximum eligible-loop coverage and
    loop counts. *)
val fig16 : (string * Pipeline.eval) list -> string

(** Fig. 17: SPT loop body sizes and pre-fork fractions. *)
val fig17 : (string * Pipeline.eval) list -> string

(** One Fig. 18 row. *)
type fig18_row = {
  f18_program : string;
  f18_loop : string;
  f18_misspec_ratio : float;
  f18_loop_speedup : float;
  f18_violated_pair_ratio : float;
}

val fig18_rows : (string * Pipeline.eval) list -> fig18_row list

(** Fig. 18: per-loop misspeculation ratio and speedup. *)
val fig18 : (string * Pipeline.eval) list -> string

(** One Fig. 19 point. *)
type fig19_point = {
  f19_program : string;
  f19_loop : string;
  f19_estimated : float;
  f19_actual : float;
}

val fig19_points : (string * Pipeline.eval) list -> fig19_point list

(** Fig. 19: estimated cost vs actual re-execution, with the Pearson
    correlation. *)
val fig19 : (string * Pipeline.eval) list -> string

(** One evaluation as a JSON object: speedup, cycle counts, the
    Fig. 15 breakdown and the per-loop records (with runtime
    misspeculation metrics where the loop was transformed). *)
val eval_json : name:string -> Pipeline.eval -> Spt_obs.Json.t

(** Machine-readable summary of a result set — the [sptc compile
    --metrics] / bench [BENCH_*.json] payload: a [workloads] array of
    {!eval_json} objects plus a [counters] dump of the full
    {!Spt_obs.Metrics} registry.  [parallel] adds a [runtime] array
    with the speculative-runtime counters (forks, commits, kills,
    violations, despeculations, per-loop wall time) of real parallel
    runs. *)
val metrics_json :
  ?parallel:(string * Spt_runtime.Runtime.result) list ->
  (string * Pipeline.eval) list ->
  Spt_obs.Json.t

(** {!metrics_json} over already-rendered {!eval_json} objects (and
    runtime-stats objects) — what cache-warm paths, which have no live
    {!Pipeline.eval} value, feed to [--metrics]. *)
val metrics_json_of : ?runtime:Spt_obs.Json.t list -> Spt_obs.Json.t list -> Spt_obs.Json.t

(** The `spt-bench-v2` summary `bench/main.exe` writes: one
    {!metrics_json} object per configuration, the measured-speedup
    records of the real parallel runs, the static-vs-profile-guided
    misspeculation-cost comparison rows ([feedback]), the
    tree-vs-bytecode sequential engine comparison rows ([engines],
    {!engine_row}), the speculation-depth sweep ([depth], an
    `spt-depth-v1` object from {!depth_json}), and the
    profile-database repeated-workload generations scenario ([profdb],
    an `spt-profdb-v1` object). *)
val bench_json :
  ?feedback:Spt_obs.Json.t list ->
  ?gap:Spt_obs.Json.t list ->
  ?engines:Spt_obs.Json.t list ->
  ?depth:Spt_obs.Json.t ->
  ?profdb:Spt_obs.Json.t ->
  quick:bool ->
  per_config:(string * (string * Pipeline.eval) list) list ->
  parallel:Spt_obs.Json.t list ->
  unit ->
  Spt_obs.Json.t

(** One row of the bench [engines] section: sequential wall time of the
    same workload on the tree-walking and bytecode engines, with the
    bytecode speedup over tree. *)
val engine_row :
  workload:string -> tree_s:float -> bytecode_s:float -> Spt_obs.Json.t

(** One row of the bench [depth] section: the same workload run with
    this speculation depth forced, with wall time, speedup over the
    sequential reference, and the runtime's misspeculation and
    value-prediction counters ([svp] = predicts, hits, mispredicts). *)
val depth_row :
  depth:int ->
  wall_s:float ->
  speedup:float ->
  commits:int ->
  kills:int ->
  violations:int ->
  despecs:int ->
  svp:int * int * int ->
  Spt_obs.Json.t

(** The `spt-depth-v1` bench section: the sweep [rows] ({!depth_row})
    plus an optional [accumulator] sub-object asserting the
    loop-carried-accumulator workload stayed speculative (fields
    [workload], [depth], [despecs], [svp_predicts], [svp_hits]).
    [cores] records the usable core count so consumers can tell a
    measured pipelining speedup (cores > jobs) from measured pipelining
    overhead (a core-starved box). *)
val depth_json :
  workload:string ->
  jobs:int ->
  cores:int ->
  ?accumulator:Spt_obs.Json.t ->
  Spt_obs.Json.t list ->
  Spt_obs.Json.t

(** The predicted-vs-measured speedup record shared by the attribution
    report and the bench [gap] section: [predicted_speedup] (null when
    no prediction is available), [measured_speedup] and
    [achieved_fraction] (measured / predicted). *)
val gap_json : ?predicted:float -> measured:float -> unit -> Spt_obs.Json.t

(** The `spt-attrib-v1` overhead-attribution report for one parallel
    run: per-domain wall-time buckets (dispatch / fork / validate /
    commit / rollback, plus idle as the unaccounted remainder against
    the run's wall clock), totals, the fraction of [lanes × wall] the
    buckets account for ([coverage]), an iteration-latency histogram
    built from the timeline's exec spans, the predicted-vs-measured
    [gap], and the timeline's own estimated recording overhead.
    [timeline] must be the one the run executed with (pass it to
    {!Pipeline.run_parallel}). *)
val attrib_json :
  ?predicted:float ->
  workload:string ->
  timeline:Spt_obs.Timeline.t ->
  Pipeline.parallel_run ->
  Spt_obs.Json.t

(** Render a machine-readable report (`spt-attrib-v1`, `spt-metrics-v1`,
    `spt-batch-v1`, `spt-loadtest-v1`, `spt-profdb-v1` or
    `spt-bench-v2`) as aligned text tables — the [sptc top] analyzer.
    A bench report with an embedded [loadtest] or [profdb] section
    renders those too.  [Error] explains an unknown or missing
    [schema] field. *)
val top_text : Spt_obs.Json.t -> (string, string) result

(** The human-readable [sptc compile] summary.  The CLI prints this and
    the artifact cache replays it verbatim on a warm hit, so cold and
    warm compiles emit byte-identical reports. *)
val compile_text : name:string -> Pipeline.eval -> string
