(** Experiment reporting: regenerates every table and figure of §8 from
    evaluation results.

    Each [table1] … [fig19] function renders one experiment as an
    aligned text table (see EXPERIMENTS.md for the paper-vs-measured
    record); [fig18_rows]/[fig19_points] expose the raw per-loop series
    for tests and for correlation statistics. *)

open Spt_tlsim
open Spt_util

let pct x = Printf.sprintf "%+.1f%%" ((x -. 1.0) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Table 1: IPC of the non-SPT base reference *)

let table1 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "IPC (sim)"; "IPC (paper)"; "cycles" ]
  in
  List.iter
    (fun (name, (e : Pipeline.eval)) ->
      let paper =
        match List.assoc_opt name Spt_workloads.Suite.paper_ipc with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" e.Pipeline.base.Tls_machine.ipc;
          paper;
          Printf.sprintf "%.0f" e.Pipeline.base.Tls_machine.cycles;
        ])
    results;
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 14: program speedups under the three compilations *)

let fig14 (per_config : (string * (string * Pipeline.eval) list) list) =
  let configs = List.map fst per_config in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) configs)
      ("program" :: configs)
  in
  let programs =
    match per_config with [] -> [] | (_, rs) :: _ -> List.map fst rs
  in
  List.iter
    (fun prog ->
      Table.add_row t
        (prog
        :: List.map
             (fun (_, rs) ->
               match List.assoc_opt prog rs with
               | Some e -> pct e.Pipeline.speedup
               | None -> "-")
             per_config))
    programs;
  let avg rs =
    Stats.mean (List.map (fun (_, e) -> e.Pipeline.speedup) rs) |> pct
  in
  Table.add_row t ("average" :: List.map (fun (_, rs) -> avg rs) per_config);
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 15: breakdown of loop candidates *)

type breakdown = {
  total : int;
  valid : int;
  many_vcs : int;
  small_body : int;
  large_body : int;
  small_trip : int;
  high_cost : int;
  untransformable : int;
  nested : int;
}

let breakdown_of (loops : Pipeline.loop_record list) =
  let z =
    {
      total = 0;
      valid = 0;
      many_vcs = 0;
      small_body = 0;
      large_body = 0;
      small_trip = 0;
      high_cost = 0;
      untransformable = 0;
      nested = 0;
    }
  in
  List.fold_left
    (fun acc (lr : Pipeline.loop_record) ->
      let acc = { acc with total = acc.total + 1 } in
      match lr.Pipeline.lr_decision with
      | Pipeline.Selected -> { acc with valid = acc.valid + 1 }
      | Pipeline.Rejected r -> (
        match Spt_transform.Select.bucket_of_reason r with
        | `Many_vcs -> { acc with many_vcs = acc.many_vcs + 1 }
        | `Small_body -> { acc with small_body = acc.small_body + 1 }
        | `Large_body -> { acc with large_body = acc.large_body + 1 }
        | `Small_trip -> { acc with small_trip = acc.small_trip + 1 }
        | `High_cost -> { acc with high_cost = acc.high_cost + 1 }
        | `Untransformable -> { acc with untransformable = acc.untransformable + 1 }
        | `Nested -> { acc with nested = acc.nested + 1 }))
    z loops

let fig15 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:(Table.Left :: List.init 9 (fun _ -> Table.Right))
      [
        "program"; "loops"; "valid"; "many-VCs"; "small-body"; "large-body";
        "small-trip"; "high-cost"; "untransf"; "nested";
      ]
  in
  let totals = ref (breakdown_of []) in
  List.iter
    (fun (name, (e : Pipeline.eval)) ->
      let b = breakdown_of e.Pipeline.loops in
      totals :=
        {
          total = !totals.total + b.total;
          valid = !totals.valid + b.valid;
          many_vcs = !totals.many_vcs + b.many_vcs;
          small_body = !totals.small_body + b.small_body;
          large_body = !totals.large_body + b.large_body;
          small_trip = !totals.small_trip + b.small_trip;
          high_cost = !totals.high_cost + b.high_cost;
          untransformable = !totals.untransformable + b.untransformable;
          nested = !totals.nested + b.nested;
        };
      Table.add_row t
        [
          name;
          string_of_int b.total;
          string_of_int b.valid;
          string_of_int b.many_vcs;
          string_of_int b.small_body;
          string_of_int b.large_body;
          string_of_int b.small_trip;
          string_of_int b.high_cost;
          string_of_int b.untransformable;
          string_of_int b.nested;
        ])
    results;
  let b = !totals in
  let pctof n = if b.total = 0 then "0%" else Printf.sprintf "%d%%" (100 * n / b.total) in
  Table.add_row t
    [
      "share"; "100%"; pctof b.valid; pctof b.many_vcs; pctof b.small_body;
      pctof b.large_body; pctof b.small_trip; pctof b.high_cost;
      pctof b.untransformable; pctof b.nested;
    ];
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 16: runtime coverage of SPT loops and loop counts *)

let fig16 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "SPT coverage"; "max loop coverage"; "#SPT loops" ]
  in
  let covs = ref [] and maxes = ref [] and counts = ref [] in
  List.iter
    (fun (name, (e : Pipeline.eval)) ->
      let cov =
        if e.Pipeline.spt.Tls_machine.cycles > 0.0 then
          e.Pipeline.spt.Tls_machine.spt_cycles_total
          /. e.Pipeline.spt.Tls_machine.cycles
        else 0.0
      in
      let max_cov =
        if e.Pipeline.base.Tls_machine.cycles > 0.0 then
          e.Pipeline.base.Tls_machine.eligible_loop_cycles
          /. e.Pipeline.base.Tls_machine.cycles
        else 0.0
      in
      covs := cov :: !covs;
      maxes := max_cov :: !maxes;
      counts := float_of_int e.Pipeline.n_spt_loops :: !counts;
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f%%" (100.0 *. cov);
          Printf.sprintf "%.0f%%" (100.0 *. max_cov);
          string_of_int e.Pipeline.n_spt_loops;
        ])
    results;
  Table.add_row t
    [
      "average";
      Printf.sprintf "%.0f%%" (100.0 *. Stats.mean !covs);
      Printf.sprintf "%.0f%%" (100.0 *. Stats.mean !maxes);
      Printf.sprintf "%.1f" (Stats.mean !counts);
    ];
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 17: SPT loop body sizes and pre-fork fractions *)

let selected_loops (e : Pipeline.eval) =
  List.filter
    (fun (lr : Pipeline.loop_record) -> lr.Pipeline.lr_decision = Pipeline.Selected)
    e.Pipeline.loops

let fig17 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "avg body size"; "avg pre-fork"; "pre-fork %" ]
  in
  let all_sizes = ref [] and all_pf = ref [] in
  List.iter
    (fun (name, e) ->
      let sel = selected_loops e in
      let sizes = List.map (fun lr -> lr.Pipeline.lr_body_size) sel in
      let pfs =
        List.filter_map
          (fun lr ->
            Option.map float_of_int lr.Pipeline.lr_prefork_size)
          sel
      in
      all_sizes := sizes @ !all_sizes;
      all_pf := pfs @ !all_pf;
      if sel = [] then Table.add_row t [ name; "-"; "-"; "-" ]
      else
        Table.add_row t
          [
            name;
            Printf.sprintf "%.0f" (Stats.mean sizes);
            Printf.sprintf "%.1f" (Stats.mean pfs);
            Printf.sprintf "%.0f%%"
              (100.0 *. Stats.mean pfs /. Float.max 1.0 (Stats.mean sizes));
          ])
    results;
  (match (!all_sizes, !all_pf) with
  | [], _ | _, [] -> ()
  | sizes, pfs ->
    Table.add_row t
      [
        "average";
        Printf.sprintf "%.0f" (Stats.mean sizes);
        Printf.sprintf "%.1f" (Stats.mean pfs);
        Printf.sprintf "%.0f%%"
          (100.0 *. Stats.mean pfs /. Float.max 1.0 (Stats.mean sizes));
      ]);
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 18: per-loop misspeculation ratio and loop speedup *)

type fig18_row = {
  f18_program : string;
  f18_loop : string;
  f18_misspec_ratio : float;  (** re-executed / speculated computation *)
  f18_loop_speedup : float;
  f18_violated_pair_ratio : float;
}

let fig18_rows (results : (string * Pipeline.eval) list) =
  List.concat_map
    (fun (name, (e : Pipeline.eval)) ->
      List.filter_map
        (fun (lr : Pipeline.loop_record) ->
          match lr.Pipeline.lr_loop_id with
          | Some id -> (
            match List.assoc_opt id e.Pipeline.spt.Tls_machine.loop_metrics with
            | Some lm when lm.Tls_machine.lm_iterations > 0 ->
              let misspec =
                if lm.Tls_machine.lm_spec_units > 0.0 then
                  lm.Tls_machine.lm_reexec_units /. lm.Tls_machine.lm_spec_units
                else 0.0
              in
              let speedup =
                if lm.Tls_machine.lm_spt_cycles > 0.0 then
                  lm.Tls_machine.lm_serial_est /. lm.Tls_machine.lm_spt_cycles
                else 1.0
              in
              let vr =
                if lm.Tls_machine.lm_pairs > 0 then
                  float_of_int lm.Tls_machine.lm_violated_pairs
                  /. float_of_int lm.Tls_machine.lm_pairs
                else 0.0
              in
              Some
                {
                  f18_program = name;
                  f18_loop =
                    Printf.sprintf "%s@bb%d" lr.Pipeline.lr_func
                      lr.Pipeline.lr_header;
                  f18_misspec_ratio = misspec;
                  f18_loop_speedup = speedup;
                  f18_violated_pair_ratio = vr;
                }
            | _ -> None)
          | None -> None)
        e.Pipeline.loops)
    results

let fig18 results =
  let rows = fig18_rows results in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "loop"; "misspec ratio"; "loop speedup"; "violated pairs" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.f18_program;
          r.f18_loop;
          Printf.sprintf "%.1f%%" (100.0 *. r.f18_misspec_ratio);
          pct r.f18_loop_speedup;
          Printf.sprintf "%.1f%%" (100.0 *. r.f18_violated_pair_ratio);
        ])
    rows;
  (match rows with
  | [] -> ()
  | _ ->
    Table.add_row t
      [
        "average";
        "";
        Printf.sprintf "%.1f%%"
          (100.0 *. Stats.mean (List.map (fun r -> r.f18_misspec_ratio) rows));
        pct (Stats.mean (List.map (fun r -> r.f18_loop_speedup) rows));
        Printf.sprintf "%.1f%%"
          (100.0
          *. Stats.mean (List.map (fun r -> r.f18_violated_pair_ratio) rows));
      ]);
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 19: estimated misspeculation cost vs actual re-execution ratio *)

type fig19_point = {
  f19_program : string;
  f19_loop : string;
  f19_estimated : float;  (** cost / body size — per-iteration fraction *)
  f19_actual : float;  (** measured re-execution ratio *)
}

let fig19_points (results : (string * Pipeline.eval) list) =
  List.concat_map
    (fun (name, (e : Pipeline.eval)) ->
      List.filter_map
        (fun (lr : Pipeline.loop_record) ->
          match (lr.Pipeline.lr_loop_id, lr.Pipeline.lr_cost) with
          | Some id, Some cost -> (
            match List.assoc_opt id e.Pipeline.spt.Tls_machine.loop_metrics with
            | Some lm when lm.Tls_machine.lm_spec_units > 0.0 ->
              Some
                {
                  f19_program = name;
                  f19_loop =
                    Printf.sprintf "%s@bb%d" lr.Pipeline.lr_func
                      lr.Pipeline.lr_header;
                  f19_estimated =
                    Spt_cost.Cost_model.predicted_fraction ~cost
                      ~body_size:lr.Pipeline.lr_body_size;
                  f19_actual =
                    lm.Tls_machine.lm_reexec_units /. lm.Tls_machine.lm_spec_units;
                }
            | _ -> None)
          | _ -> None)
        e.Pipeline.loops)
    results

let fig19 results =
  let pts = fig19_points results in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "program"; "loop"; "estimated cost"; "actual re-exec" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.f19_program;
          p.f19_loop;
          Printf.sprintf "%.3f" p.f19_estimated;
          Printf.sprintf "%.3f" p.f19_actual;
        ])
    pts;
  let corr =
    match pts with
    | [] | [ _ ] -> 0.0
    | _ ->
      Stats.pearson
        (List.map (fun p -> p.f19_estimated) pts)
        (List.map (fun p -> p.f19_actual) pts)
  in
  Table.render t
  ^ Printf.sprintf "correlation (Pearson): %.2f  (points: %d)\n" corr
      (List.length pts)

(* ------------------------------------------------------------------ *)
(* Machine-readable summaries (the --metrics / BENCH_*.json payload) *)

module Json = Spt_obs.Json

let json_opt of_v = function None -> Json.Null | Some v -> of_v v

let loop_json (e : Pipeline.eval) (lr : Pipeline.loop_record) =
  let runtime =
    match lr.Pipeline.lr_loop_id with
    | None -> []
    | Some id -> (
      match List.assoc_opt id e.Pipeline.spt.Tls_machine.loop_metrics with
      | None -> []
      | Some lm ->
        [
          ("iterations", Json.Int lm.Tls_machine.lm_iterations);
          ("pairs", Json.Int lm.Tls_machine.lm_pairs);
          ("violated_pairs", Json.Int lm.Tls_machine.lm_violated_pairs);
          ("reg_violations", Json.Int lm.Tls_machine.lm_reg_violations);
          ("mem_violations", Json.Int lm.Tls_machine.lm_mem_violations);
          ( "misspec_ratio",
            Json.Float
              (if lm.Tls_machine.lm_spec_units > 0.0 then
                 lm.Tls_machine.lm_reexec_units /. lm.Tls_machine.lm_spec_units
               else 0.0) );
          ( "loop_speedup",
            Json.Float
              (if lm.Tls_machine.lm_spt_cycles > 0.0 then
                 lm.Tls_machine.lm_serial_est /. lm.Tls_machine.lm_spt_cycles
               else 1.0) );
        ])
  in
  Json.Obj
    ([
       ("func", Json.Str lr.Pipeline.lr_func);
       ("header", Json.Int lr.Pipeline.lr_header);
       ( "origin",
         match lr.Pipeline.lr_origin with
         | Some `For -> Json.Str "for"
         | Some `While -> Json.Str "while"
         | Some `Do -> Json.Str "do"
         | None -> Json.Null );
       ("body_size", Json.Float lr.Pipeline.lr_body_size);
       ("static_size", Json.Int lr.Pipeline.lr_static_size);
       ("trip", Json.Float lr.Pipeline.lr_trip);
       ("weight", Json.Int lr.Pipeline.lr_weight);
       ( "decision",
         match lr.Pipeline.lr_decision with
         | Pipeline.Selected -> Json.Str "selected"
         | Pipeline.Rejected r ->
           Json.Str (Spt_transform.Select.string_of_reason r) );
       ("cost", json_opt (fun c -> Json.Float c) lr.Pipeline.lr_cost);
       ( "prefork_size",
         json_opt (fun s -> Json.Int s) lr.Pipeline.lr_prefork_size );
       ("loop_id", json_opt (fun i -> Json.Int i) lr.Pipeline.lr_loop_id);
       ("svp", Json.Bool lr.Pipeline.lr_svp);
       ( "vcs",
         Json.List
           (List.map
              (fun (iid, region, prob) ->
                Json.Obj
                  [
                    ("iid", Json.Int iid);
                    ("region", json_opt (fun s -> Json.Int s) region);
                    ("prob", Json.Float prob);
                  ])
              lr.Pipeline.lr_vcs) );
       ( "chosen_vcs",
         Json.List (List.map (fun v -> Json.Int v) lr.Pipeline.lr_chosen) );
     ]
    @ runtime)

let breakdown_json b =
  Json.Obj
    [
      ("total", Json.Int b.total);
      ("valid", Json.Int b.valid);
      ("many_vcs", Json.Int b.many_vcs);
      ("small_body", Json.Int b.small_body);
      ("large_body", Json.Int b.large_body);
      ("small_trip", Json.Int b.small_trip);
      ("high_cost", Json.Int b.high_cost);
      ("untransformable", Json.Int b.untransformable);
      ("nested", Json.Int b.nested);
    ]

let eval_json ~name (e : Pipeline.eval) =
  Json.Obj
    [
      ("name", Json.Str name);
      ("config", Json.Str e.Pipeline.config_name);
      ("speedup", Json.Float e.Pipeline.speedup);
      ("outputs_match", Json.Bool e.Pipeline.outputs_match);
      ("n_spt_loops", Json.Int e.Pipeline.n_spt_loops);
      ( "base",
        Json.Obj
          [
            ("cycles", Json.Float e.Pipeline.base.Tls_machine.cycles);
            ("instrs", Json.Int e.Pipeline.base.Tls_machine.instrs);
            ("ipc", Json.Float e.Pipeline.base.Tls_machine.ipc);
          ] );
      ( "spt",
        Json.Obj
          [
            ("cycles", Json.Float e.Pipeline.spt.Tls_machine.cycles);
            ("instrs", Json.Int e.Pipeline.spt.Tls_machine.instrs);
            ("ipc", Json.Float e.Pipeline.spt.Tls_machine.ipc);
            ( "spt_cycles_total",
              Json.Float e.Pipeline.spt.Tls_machine.spt_cycles_total );
          ] );
      ("breakdown", breakdown_json (breakdown_of e.Pipeline.loops));
      ("loops", Json.List (List.map (loop_json e) e.Pipeline.loops));
    ]

(* the profile-guided feedback loop's counters, pulled from the metrics
   registry (zero when the feedback subsystem is not linked or idle);
   the per-loop observed kill rates live in the runtime section
   ({!Spt_runtime.Runtime.stats_json}) *)
let feedback_json () =
  let c name =
    match Spt_obs.Metrics.get name with
    | Some (Spt_obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  Json.Obj
    [
      ("profiles_loaded", Json.Int (c "feedback.profiles_loaded"));
      ("profiles_merged", Json.Int (c "feedback.profiles_merged"));
      ("divergences", Json.Int (c "feedback.divergences"));
      ("adapt_iterations", Json.Int (c "feedback.adapt_iterations"));
    ]

let metrics_json_of ?(runtime = []) (evals : Json.t list) =
  Json.Obj
    ([
       ("schema", Json.Str "spt-metrics-v1");
       ("workloads", Json.List evals);
     ]
    @ (if runtime = [] then [] else [ ("runtime", Json.List runtime) ])
    @ [
        ("feedback", feedback_json ());
        ("counters", Spt_obs.Metrics.to_json ());
      ])

let metrics_json ?(parallel = []) (results : (string * Pipeline.eval) list) =
  metrics_json_of
    ~runtime:
      (List.map
         (fun (name, (r : Spt_runtime.Runtime.result)) ->
           Json.prepend ("workload", Json.Str name)
             (Spt_runtime.Runtime.stats_json r))
         parallel)
    (List.map (fun (name, e) -> eval_json ~name e) results)

let bench_json ?(feedback = []) ~quick ~per_config ~parallel () =
  Json.Obj
    [
      ("schema", Json.Str "spt-bench-v2");
      ("quick", Json.Bool quick);
      ( "configs",
        Json.List
          (List.map
             (fun (cname, results) ->
               Json.prepend ("config", Json.Str cname) (metrics_json results))
             per_config) );
      ("parallel", Json.List parallel);
      ("feedback", Json.List feedback);
    ]

(* ------------------------------------------------------------------ *)
(* The [sptc compile] report text.

   This is the one renderer of the human-readable compile summary: the
   CLI prints it and the artifact cache stores it verbatim, so a warm
   compile replays byte-identical output. *)

let compile_text ~name (e : Pipeline.eval) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "configuration    : %s\n" e.Pipeline.config_name);
  Buffer.add_string buf
    (Printf.sprintf "outputs match    : %b\n" e.Pipeline.outputs_match);
  Buffer.add_string buf
    (Printf.sprintf "baseline cycles  : %.0f (IPC %.2f)\n"
       e.Pipeline.base.Tls_machine.cycles e.Pipeline.base.Tls_machine.ipc);
  Buffer.add_string buf
    (Printf.sprintf "SPT cycles       : %.0f\n" e.Pipeline.spt.Tls_machine.cycles);
  Buffer.add_string buf
    (Printf.sprintf "speedup          : %+.2f%%\n"
       ((e.Pipeline.speedup -. 1.0) *. 100.0));
  Buffer.add_string buf
    (Printf.sprintf "SPT loops        : %d\n" e.Pipeline.n_spt_loops);
  if e.Pipeline.n_spt_loops > 0 then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf (fig18 [ (name, e) ])
  end;
  Buffer.contents buf
