(** Experiment reporting: regenerates every table and figure of §8 from
    evaluation results.

    Each [table1] … [fig19] function renders one experiment as an
    aligned text table (see EXPERIMENTS.md for the paper-vs-measured
    record); [fig18_rows]/[fig19_points] expose the raw per-loop series
    for tests and for correlation statistics. *)

open Spt_tlsim
open Spt_util

let pct x = Printf.sprintf "%+.1f%%" ((x -. 1.0) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Table 1: IPC of the non-SPT base reference *)

let table1 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "IPC (sim)"; "IPC (paper)"; "cycles" ]
  in
  List.iter
    (fun (name, (e : Pipeline.eval)) ->
      let paper =
        match List.assoc_opt name Spt_workloads.Suite.paper_ipc with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" e.Pipeline.base.Tls_machine.ipc;
          paper;
          Printf.sprintf "%.0f" e.Pipeline.base.Tls_machine.cycles;
        ])
    results;
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 14: program speedups under the three compilations *)

let fig14 (per_config : (string * (string * Pipeline.eval) list) list) =
  let configs = List.map fst per_config in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) configs)
      ("program" :: configs)
  in
  let programs =
    match per_config with [] -> [] | (_, rs) :: _ -> List.map fst rs
  in
  List.iter
    (fun prog ->
      Table.add_row t
        (prog
        :: List.map
             (fun (_, rs) ->
               match List.assoc_opt prog rs with
               | Some e -> pct e.Pipeline.speedup
               | None -> "-")
             per_config))
    programs;
  let avg rs =
    Stats.mean (List.map (fun (_, e) -> e.Pipeline.speedup) rs) |> pct
  in
  Table.add_row t ("average" :: List.map (fun (_, rs) -> avg rs) per_config);
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 15: breakdown of loop candidates *)

type breakdown = {
  total : int;
  valid : int;
  many_vcs : int;
  small_body : int;
  large_body : int;
  small_trip : int;
  high_cost : int;
  untransformable : int;
  nested : int;
}

let breakdown_of (loops : Pipeline.loop_record list) =
  let z =
    {
      total = 0;
      valid = 0;
      many_vcs = 0;
      small_body = 0;
      large_body = 0;
      small_trip = 0;
      high_cost = 0;
      untransformable = 0;
      nested = 0;
    }
  in
  List.fold_left
    (fun acc (lr : Pipeline.loop_record) ->
      let acc = { acc with total = acc.total + 1 } in
      match lr.Pipeline.lr_decision with
      | Pipeline.Selected -> { acc with valid = acc.valid + 1 }
      | Pipeline.Rejected r -> (
        match Spt_transform.Select.bucket_of_reason r with
        | `Many_vcs -> { acc with many_vcs = acc.many_vcs + 1 }
        | `Small_body -> { acc with small_body = acc.small_body + 1 }
        | `Large_body -> { acc with large_body = acc.large_body + 1 }
        | `Small_trip -> { acc with small_trip = acc.small_trip + 1 }
        | `High_cost -> { acc with high_cost = acc.high_cost + 1 }
        | `Untransformable -> { acc with untransformable = acc.untransformable + 1 }
        | `Nested -> { acc with nested = acc.nested + 1 }))
    z loops

let fig15 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:(Table.Left :: List.init 9 (fun _ -> Table.Right))
      [
        "program"; "loops"; "valid"; "many-VCs"; "small-body"; "large-body";
        "small-trip"; "high-cost"; "untransf"; "nested";
      ]
  in
  let totals = ref (breakdown_of []) in
  List.iter
    (fun (name, (e : Pipeline.eval)) ->
      let b = breakdown_of e.Pipeline.loops in
      totals :=
        {
          total = !totals.total + b.total;
          valid = !totals.valid + b.valid;
          many_vcs = !totals.many_vcs + b.many_vcs;
          small_body = !totals.small_body + b.small_body;
          large_body = !totals.large_body + b.large_body;
          small_trip = !totals.small_trip + b.small_trip;
          high_cost = !totals.high_cost + b.high_cost;
          untransformable = !totals.untransformable + b.untransformable;
          nested = !totals.nested + b.nested;
        };
      Table.add_row t
        [
          name;
          string_of_int b.total;
          string_of_int b.valid;
          string_of_int b.many_vcs;
          string_of_int b.small_body;
          string_of_int b.large_body;
          string_of_int b.small_trip;
          string_of_int b.high_cost;
          string_of_int b.untransformable;
          string_of_int b.nested;
        ])
    results;
  let b = !totals in
  let pctof n = if b.total = 0 then "0%" else Printf.sprintf "%d%%" (100 * n / b.total) in
  Table.add_row t
    [
      "share"; "100%"; pctof b.valid; pctof b.many_vcs; pctof b.small_body;
      pctof b.large_body; pctof b.small_trip; pctof b.high_cost;
      pctof b.untransformable; pctof b.nested;
    ];
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 16: runtime coverage of SPT loops and loop counts *)

let fig16 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "SPT coverage"; "max loop coverage"; "#SPT loops" ]
  in
  let covs = ref [] and maxes = ref [] and counts = ref [] in
  List.iter
    (fun (name, (e : Pipeline.eval)) ->
      let cov =
        if e.Pipeline.spt.Tls_machine.cycles > 0.0 then
          e.Pipeline.spt.Tls_machine.spt_cycles_total
          /. e.Pipeline.spt.Tls_machine.cycles
        else 0.0
      in
      let max_cov =
        if e.Pipeline.base.Tls_machine.cycles > 0.0 then
          e.Pipeline.base.Tls_machine.eligible_loop_cycles
          /. e.Pipeline.base.Tls_machine.cycles
        else 0.0
      in
      covs := cov :: !covs;
      maxes := max_cov :: !maxes;
      counts := float_of_int e.Pipeline.n_spt_loops :: !counts;
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f%%" (100.0 *. cov);
          Printf.sprintf "%.0f%%" (100.0 *. max_cov);
          string_of_int e.Pipeline.n_spt_loops;
        ])
    results;
  Table.add_row t
    [
      "average";
      Printf.sprintf "%.0f%%" (100.0 *. Stats.mean !covs);
      Printf.sprintf "%.0f%%" (100.0 *. Stats.mean !maxes);
      Printf.sprintf "%.1f" (Stats.mean !counts);
    ];
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 17: SPT loop body sizes and pre-fork fractions *)

let selected_loops (e : Pipeline.eval) =
  List.filter
    (fun (lr : Pipeline.loop_record) -> lr.Pipeline.lr_decision = Pipeline.Selected)
    e.Pipeline.loops

let fig17 (results : (string * Pipeline.eval) list) =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "avg body size"; "avg pre-fork"; "pre-fork %" ]
  in
  let all_sizes = ref [] and all_pf = ref [] in
  List.iter
    (fun (name, e) ->
      let sel = selected_loops e in
      let sizes = List.map (fun lr -> lr.Pipeline.lr_body_size) sel in
      let pfs =
        List.filter_map
          (fun lr ->
            Option.map float_of_int lr.Pipeline.lr_prefork_size)
          sel
      in
      all_sizes := sizes @ !all_sizes;
      all_pf := pfs @ !all_pf;
      if sel = [] then Table.add_row t [ name; "-"; "-"; "-" ]
      else
        Table.add_row t
          [
            name;
            Printf.sprintf "%.0f" (Stats.mean sizes);
            Printf.sprintf "%.1f" (Stats.mean pfs);
            Printf.sprintf "%.0f%%"
              (100.0 *. Stats.mean pfs /. Float.max 1.0 (Stats.mean sizes));
          ])
    results;
  (match (!all_sizes, !all_pf) with
  | [], _ | _, [] -> ()
  | sizes, pfs ->
    Table.add_row t
      [
        "average";
        Printf.sprintf "%.0f" (Stats.mean sizes);
        Printf.sprintf "%.1f" (Stats.mean pfs);
        Printf.sprintf "%.0f%%"
          (100.0 *. Stats.mean pfs /. Float.max 1.0 (Stats.mean sizes));
      ]);
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 18: per-loop misspeculation ratio and loop speedup *)

type fig18_row = {
  f18_program : string;
  f18_loop : string;
  f18_misspec_ratio : float;  (** re-executed / speculated computation *)
  f18_loop_speedup : float;
  f18_violated_pair_ratio : float;
}

let fig18_rows (results : (string * Pipeline.eval) list) =
  List.concat_map
    (fun (name, (e : Pipeline.eval)) ->
      List.filter_map
        (fun (lr : Pipeline.loop_record) ->
          match lr.Pipeline.lr_loop_id with
          | Some id -> (
            match List.assoc_opt id e.Pipeline.spt.Tls_machine.loop_metrics with
            | Some lm when lm.Tls_machine.lm_iterations > 0 ->
              let misspec =
                if lm.Tls_machine.lm_spec_units > 0.0 then
                  lm.Tls_machine.lm_reexec_units /. lm.Tls_machine.lm_spec_units
                else 0.0
              in
              let speedup =
                if lm.Tls_machine.lm_spt_cycles > 0.0 then
                  lm.Tls_machine.lm_serial_est /. lm.Tls_machine.lm_spt_cycles
                else 1.0
              in
              let vr =
                if lm.Tls_machine.lm_pairs > 0 then
                  float_of_int lm.Tls_machine.lm_violated_pairs
                  /. float_of_int lm.Tls_machine.lm_pairs
                else 0.0
              in
              Some
                {
                  f18_program = name;
                  f18_loop =
                    Printf.sprintf "%s@bb%d" lr.Pipeline.lr_func
                      lr.Pipeline.lr_header;
                  f18_misspec_ratio = misspec;
                  f18_loop_speedup = speedup;
                  f18_violated_pair_ratio = vr;
                }
            | _ -> None)
          | None -> None)
        e.Pipeline.loops)
    results

let fig18 results =
  let rows = fig18_rows results in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "program"; "loop"; "misspec ratio"; "loop speedup"; "violated pairs" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.f18_program;
          r.f18_loop;
          Printf.sprintf "%.1f%%" (100.0 *. r.f18_misspec_ratio);
          pct r.f18_loop_speedup;
          Printf.sprintf "%.1f%%" (100.0 *. r.f18_violated_pair_ratio);
        ])
    rows;
  (match rows with
  | [] -> ()
  | _ ->
    Table.add_row t
      [
        "average";
        "";
        Printf.sprintf "%.1f%%"
          (100.0 *. Stats.mean (List.map (fun r -> r.f18_misspec_ratio) rows));
        pct (Stats.mean (List.map (fun r -> r.f18_loop_speedup) rows));
        Printf.sprintf "%.1f%%"
          (100.0
          *. Stats.mean (List.map (fun r -> r.f18_violated_pair_ratio) rows));
      ]);
  Table.render t

(* ------------------------------------------------------------------ *)
(* Fig. 19: estimated misspeculation cost vs actual re-execution ratio *)

type fig19_point = {
  f19_program : string;
  f19_loop : string;
  f19_estimated : float;  (** cost / body size — per-iteration fraction *)
  f19_actual : float;  (** measured re-execution ratio *)
}

let fig19_points (results : (string * Pipeline.eval) list) =
  List.concat_map
    (fun (name, (e : Pipeline.eval)) ->
      List.filter_map
        (fun (lr : Pipeline.loop_record) ->
          match (lr.Pipeline.lr_loop_id, lr.Pipeline.lr_cost) with
          | Some id, Some cost -> (
            match List.assoc_opt id e.Pipeline.spt.Tls_machine.loop_metrics with
            | Some lm when lm.Tls_machine.lm_spec_units > 0.0 ->
              Some
                {
                  f19_program = name;
                  f19_loop =
                    Printf.sprintf "%s@bb%d" lr.Pipeline.lr_func
                      lr.Pipeline.lr_header;
                  f19_estimated =
                    Spt_cost.Cost_model.predicted_fraction ~cost
                      ~body_size:lr.Pipeline.lr_body_size;
                  f19_actual =
                    lm.Tls_machine.lm_reexec_units /. lm.Tls_machine.lm_spec_units;
                }
            | _ -> None)
          | _ -> None)
        e.Pipeline.loops)
    results

let fig19 results =
  let pts = fig19_points results in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "program"; "loop"; "estimated cost"; "actual re-exec" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.f19_program;
          p.f19_loop;
          Printf.sprintf "%.3f" p.f19_estimated;
          Printf.sprintf "%.3f" p.f19_actual;
        ])
    pts;
  let corr =
    match pts with
    | [] | [ _ ] -> 0.0
    | _ ->
      Stats.pearson
        (List.map (fun p -> p.f19_estimated) pts)
        (List.map (fun p -> p.f19_actual) pts)
  in
  Table.render t
  ^ Printf.sprintf "correlation (Pearson): %.2f  (points: %d)\n" corr
      (List.length pts)

(* ------------------------------------------------------------------ *)
(* Machine-readable summaries (the --metrics / BENCH_*.json payload) *)

module Json = Spt_obs.Json

let json_opt of_v = function None -> Json.Null | Some v -> of_v v

let loop_json (e : Pipeline.eval) (lr : Pipeline.loop_record) =
  let runtime =
    match lr.Pipeline.lr_loop_id with
    | None -> []
    | Some id -> (
      match List.assoc_opt id e.Pipeline.spt.Tls_machine.loop_metrics with
      | None -> []
      | Some lm ->
        [
          ("iterations", Json.Int lm.Tls_machine.lm_iterations);
          ("pairs", Json.Int lm.Tls_machine.lm_pairs);
          ("violated_pairs", Json.Int lm.Tls_machine.lm_violated_pairs);
          ("reg_violations", Json.Int lm.Tls_machine.lm_reg_violations);
          ("mem_violations", Json.Int lm.Tls_machine.lm_mem_violations);
          ( "misspec_ratio",
            Json.Float
              (if lm.Tls_machine.lm_spec_units > 0.0 then
                 lm.Tls_machine.lm_reexec_units /. lm.Tls_machine.lm_spec_units
               else 0.0) );
          ( "loop_speedup",
            Json.Float
              (if lm.Tls_machine.lm_spt_cycles > 0.0 then
                 lm.Tls_machine.lm_serial_est /. lm.Tls_machine.lm_spt_cycles
               else 1.0) );
        ])
  in
  Json.Obj
    ([
       ("func", Json.Str lr.Pipeline.lr_func);
       ("header", Json.Int lr.Pipeline.lr_header);
       ( "origin",
         match lr.Pipeline.lr_origin with
         | Some `For -> Json.Str "for"
         | Some `While -> Json.Str "while"
         | Some `Do -> Json.Str "do"
         | None -> Json.Null );
       ("body_size", Json.Float lr.Pipeline.lr_body_size);
       ("static_size", Json.Int lr.Pipeline.lr_static_size);
       ("trip", Json.Float lr.Pipeline.lr_trip);
       ("weight", Json.Int lr.Pipeline.lr_weight);
       ( "decision",
         match lr.Pipeline.lr_decision with
         | Pipeline.Selected -> Json.Str "selected"
         | Pipeline.Rejected r ->
           Json.Str (Spt_transform.Select.string_of_reason r) );
       ("cost", json_opt (fun c -> Json.Float c) lr.Pipeline.lr_cost);
       ( "prefork_size",
         json_opt (fun s -> Json.Int s) lr.Pipeline.lr_prefork_size );
       ("loop_id", json_opt (fun i -> Json.Int i) lr.Pipeline.lr_loop_id);
       ("svp", Json.Bool lr.Pipeline.lr_svp);
       ( "vcs",
         Json.List
           (List.map
              (fun (iid, region, prob) ->
                Json.Obj
                  [
                    ("iid", Json.Int iid);
                    ("region", json_opt (fun s -> Json.Int s) region);
                    ("prob", Json.Float prob);
                  ])
              lr.Pipeline.lr_vcs) );
       ( "chosen_vcs",
         Json.List (List.map (fun v -> Json.Int v) lr.Pipeline.lr_chosen) );
     ]
    @ runtime)

let breakdown_json b =
  Json.Obj
    [
      ("total", Json.Int b.total);
      ("valid", Json.Int b.valid);
      ("many_vcs", Json.Int b.many_vcs);
      ("small_body", Json.Int b.small_body);
      ("large_body", Json.Int b.large_body);
      ("small_trip", Json.Int b.small_trip);
      ("high_cost", Json.Int b.high_cost);
      ("untransformable", Json.Int b.untransformable);
      ("nested", Json.Int b.nested);
    ]

let eval_json ~name (e : Pipeline.eval) =
  Json.Obj
    [
      ("name", Json.Str name);
      ("config", Json.Str e.Pipeline.config_name);
      ("speedup", Json.Float e.Pipeline.speedup);
      ("outputs_match", Json.Bool e.Pipeline.outputs_match);
      ("n_spt_loops", Json.Int e.Pipeline.n_spt_loops);
      ( "base",
        Json.Obj
          [
            ("cycles", Json.Float e.Pipeline.base.Tls_machine.cycles);
            ("instrs", Json.Int e.Pipeline.base.Tls_machine.instrs);
            ("ipc", Json.Float e.Pipeline.base.Tls_machine.ipc);
          ] );
      ( "spt",
        Json.Obj
          [
            ("cycles", Json.Float e.Pipeline.spt.Tls_machine.cycles);
            ("instrs", Json.Int e.Pipeline.spt.Tls_machine.instrs);
            ("ipc", Json.Float e.Pipeline.spt.Tls_machine.ipc);
            ( "spt_cycles_total",
              Json.Float e.Pipeline.spt.Tls_machine.spt_cycles_total );
          ] );
      ("breakdown", breakdown_json (breakdown_of e.Pipeline.loops));
      ("loops", Json.List (List.map (loop_json e) e.Pipeline.loops));
    ]

(* the profile-guided feedback loop's counters, pulled from the metrics
   registry (zero when the feedback subsystem is not linked or idle);
   the per-loop observed kill rates live in the runtime section
   ({!Spt_runtime.Runtime.stats_json}) *)
let feedback_json () =
  let c name =
    match Spt_obs.Metrics.get name with
    | Some (Spt_obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  Json.Obj
    [
      ("profiles_loaded", Json.Int (c "feedback.profiles_loaded"));
      ("profiles_merged", Json.Int (c "feedback.profiles_merged"));
      ("divergences", Json.Int (c "feedback.divergences"));
      ("adapt_iterations", Json.Int (c "feedback.adapt_iterations"));
    ]

let metrics_json_of ?(runtime = []) (evals : Json.t list) =
  Json.Obj
    ([
       ("schema", Json.Str "spt-metrics-v1");
       ("workloads", Json.List evals);
     ]
    @ (if runtime = [] then [] else [ ("runtime", Json.List runtime) ])
    @ [
        ("feedback", feedback_json ());
        ("counters", Spt_obs.Metrics.to_json ());
      ])

let metrics_json ?(parallel = []) (results : (string * Pipeline.eval) list) =
  metrics_json_of
    ~runtime:
      (List.map
         (fun (name, (r : Spt_runtime.Runtime.result)) ->
           Json.prepend ("workload", Json.Str name)
             (Spt_runtime.Runtime.stats_json r))
         parallel)
    (List.map (fun (name, e) -> eval_json ~name e) results)

let bench_json ?(feedback = []) ?(gap = []) ?(engines = []) ?depth ?profdb
    ~quick ~per_config ~parallel () =
  Json.Obj
    ([
       ("schema", Json.Str "spt-bench-v2");
       ("quick", Json.Bool quick);
       ( "configs",
         Json.List
           (List.map
              (fun (cname, results) ->
                Json.prepend ("config", Json.Str cname) (metrics_json results))
              per_config) );
       ("parallel", Json.List parallel);
     ]
    @ (if gap = [] then [] else [ ("gap", Json.List gap) ])
    @ (if engines = [] then [] else [ ("engines", Json.List engines) ])
    @ (match depth with Some d -> [ ("depth", d) ] | None -> [])
    @ (match profdb with Some p -> [ ("profdb", p) ] | None -> [])
    @ [ ("feedback", Json.List feedback) ])

(** One row of the bench's tree-vs-bytecode sequential comparison. *)
let engine_row ~workload ~tree_s ~bytecode_s =
  Json.Obj
    [
      ("workload", Json.Str workload);
      ("tree_seq_s", Json.Float tree_s);
      ("bytecode_seq_s", Json.Float bytecode_s);
      ( "bytecode_speedup",
        Json.Float (if bytecode_s > 0.0 then tree_s /. bytecode_s else 0.0) );
    ]

(** One row of the bench's depth sweep ([spt-depth-v1]): one forced
    speculation depth, its wall time and speedup, and the runtime's
    misspeculation and value-prediction counters at that depth. *)
let depth_row ~depth ~wall_s ~speedup ~commits ~kills ~violations ~despecs
    ~svp =
  let predicts, hits, mispredicts = svp in
  Json.Obj
    [
      ("depth", Json.Int depth);
      ("wall_s", Json.Float wall_s);
      ("speedup", Json.Float speedup);
      ("commits", Json.Int commits);
      ("kills", Json.Int kills);
      ("violations", Json.Int violations);
      ("despecs", Json.Int despecs);
      ("svp_predicts", Json.Int predicts);
      ("svp_hits", Json.Int hits);
      ("svp_mispredicts", Json.Int mispredicts);
    ]

(** The bench's [spt-depth-v1] section: the sweep rows plus the
    accumulator sub-result (the workload whose loop-carried sum must
    stay speculative through runtime value prediction).  [cores] is the
    machine's usable core count — on a box with fewer cores than
    domains, a deeper pipeline measures its own overhead rather than a
    speedup, and consumers (bench/depth_smoke.sh) scale their
    assertions by this field. *)
let depth_json ~workload ~jobs ~cores ?accumulator rows =
  Json.Obj
    ([
       ("schema", Json.Str "spt-depth-v1");
       ("workload", Json.Str workload);
       ("jobs", Json.Int jobs);
       ("cores", Json.Int cores);
       ("rows", Json.List rows);
     ]
    @ match accumulator with Some a -> [ ("accumulator", a) ] | None -> [])

(* ------------------------------------------------------------------ *)
(* Overhead attribution (spt-attrib-v1): where a parallel run's wall
   time went, per domain, bucketed into the speculation lifecycle, and
   how far the measured speedup fell from the prediction. *)

module Timeline = Spt_obs.Timeline

let bucket_names =
  [
    "compile"; "dispatch"; "chunk"; "svp"; "fork"; "validate"; "commit";
    "rollback";
  ]

(* exec time is the engine dispatching the chunk's instructions, split
   from the one-off compile-to-bytecode cost; chunk is the sequential
   thread predicting the next chunk's pre-fork backbone; svp is value
   predictions injected into that backbone; kills and serial
   re-executions are both prices of misspeculation, so they land in the
   rollback bucket *)
let bucket_of_kind = function
  | Timeline.Compile -> "compile"
  | Timeline.Exec -> "dispatch"
  | Timeline.Chunk -> "chunk"
  | Timeline.Svp -> "svp"
  | Timeline.Fork -> "fork"
  | Timeline.Validate -> "validate"
  | Timeline.Commit -> "commit"
  | Timeline.Rollback | Timeline.Reexec | Timeline.Kill -> "rollback"

let lane_buckets (lane : Timeline.lane_summary) =
  List.map
    (fun b ->
      ( b,
        List.fold_left
          (fun acc (k, s, _) -> if bucket_of_kind k = b then acc +. s else acc)
          0.0 lane.Timeline.ls_by_kind ))
    bucket_names

let gap_json ?predicted ~measured () =
  Json.Obj
    [
      ( "predicted_speedup",
        match predicted with Some p -> Json.Float p | None -> Json.Null );
      ("measured_speedup", Json.Float measured);
      ( "achieved_fraction",
        match predicted with
        | Some p when p > 0.0 -> Json.Float (measured /. p)
        | _ -> Json.Null );
    ]

let attrib_json ?predicted ~workload ~timeline (pr : Pipeline.parallel_run) =
  let wall = pr.Pipeline.pr_runtime.Spt_runtime.Runtime.wall_time in
  let lanes = Timeline.summary timeline in
  let n_lanes = List.length lanes in
  let idle_of busy = Float.max 0.0 (wall -. busy) in
  let domain_json (lane : Timeline.lane_summary) =
    let buckets = lane_buckets lane in
    let busy = lane.Timeline.ls_busy_s in
    Json.Obj
      [
        ("domain", Json.Str (Printf.sprintf "lane-%d" lane.Timeline.ls_lane));
        ("busy_s", Json.Float busy);
        ( "buckets",
          Json.Obj
            (List.map (fun (b, s) -> (b, Json.Float s)) buckets
            @ [ ("idle", Json.Float (idle_of busy)) ]) );
        ("events", Json.Int lane.Timeline.ls_events);
        ("dropped", Json.Int lane.Timeline.ls_dropped);
      ]
  in
  let total b =
    List.fold_left
      (fun acc lane -> acc +. List.assoc b (lane_buckets lane))
      0.0 lanes
  in
  let total_idle =
    List.fold_left
      (fun acc lane -> acc +. idle_of lane.Timeline.ls_busy_s)
      0.0 lanes
  in
  (* buckets-sum / (wall x lanes): how much of the domains' wall time
     the attribution accounts for (busy clamped to the wall, so a lane
     cannot account for more than the run took) *)
  let accounted =
    List.fold_left
      (fun acc lane ->
        let busy = lane.Timeline.ls_busy_s in
        acc +. Float.min busy wall +. idle_of busy)
      0.0 lanes
  in
  let coverage =
    if n_lanes = 0 || wall <= 0.0 then 1.0
    else accounted /. (wall *. float_of_int n_lanes)
  in
  let iter_hist = Spt_obs.Metrics.Hist.create () in
  Timeline.iter_events timeline (fun k ~lane:_ ~lid:_ ~t0 ~t1 ->
      if k = Timeline.Exec then
        Spt_obs.Metrics.Hist.observe iter_hist (t1 -. t0));
  let overhead = Timeline.overhead_s timeline in
  Json.Obj
    [
      ("schema", Json.Str "spt-attrib-v1");
      ("workload", Json.Str workload);
      ("jobs", Json.Int pr.Pipeline.pr_jobs);
      ( "engine",
        Json.Str (Spt_exec.Engine.string_of_kind pr.Pipeline.pr_engine) );
      ( "chunk",
        match pr.Pipeline.pr_chunk with
        | Some n -> Json.Int n
        | None -> Json.Str "auto" );
      ( "depth",
        match pr.Pipeline.pr_depth with
        | Some k -> Json.Int k
        | None -> Json.Str "auto" );
      ("n_spt_loops", Json.Int pr.Pipeline.pr_n_loops);
      ("wall_s", Json.Float wall);
      ("seq_wall_s", Json.Float pr.Pipeline.pr_seq_wall);
      ("gap", gap_json ?predicted ~measured:pr.Pipeline.pr_measured_speedup ());
      ("domains", Json.List (List.map domain_json lanes));
      ( "totals",
        Json.Obj
          (List.map (fun b -> (b, Json.Float (total b))) bucket_names
          @ [ ("idle", Json.Float total_idle) ]) );
      ("coverage", Json.Float coverage);
      ("iter_latency_s", Spt_obs.Metrics.Hist.to_json iter_hist);
      ("events", Json.Int (Timeline.events timeline));
      ("dropped", Json.Int (Timeline.dropped timeline));
      ("overhead_s", Json.Float overhead);
      ( "overhead_fraction",
        Json.Float (if wall > 0.0 then overhead /. wall else 0.0) );
    ]

(* ------------------------------------------------------------------ *)
(* [sptc top]: offline rendering of the JSON reports as text tables *)

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let num0 j = Option.value ~default:0.0 (num j)
let str_of = function Some (Json.Str s) -> s | _ -> "-"

let fmt_s s =
  if Float.abs s >= 1.0 then Printf.sprintf "%.3fs" s
  else if Float.abs s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let latency_line j =
  Printf.sprintf
    "count %.0f  mean %s  p50 %s  p95 %s  p99 %s  max %s"
    (num0 (Json.member "count" j))
    (fmt_s (num0 (Json.member "mean" j)))
    (fmt_s (num0 (Json.member "p50" j)))
    (fmt_s (num0 (Json.member "p95" j)))
    (fmt_s (num0 (Json.member "p99" j)))
    (fmt_s (num0 (Json.member "max" j)))

let top_attrib j =
  let buf = Buffer.create 512 in
  let wall = num0 (Json.member "wall_s" j) in
  Buffer.add_string buf
    (Printf.sprintf "workload %s: %d job(s), %d SPT loop(s), wall %s (seq %s)\n"
       (str_of (Json.member "workload" j))
       (int_of_float (num0 (Json.member "jobs" j)))
       (int_of_float (num0 (Json.member "n_spt_loops" j)))
       (fmt_s wall)
       (fmt_s (num0 (Json.member "seq_wall_s" j))));
  (match (Json.member "engine" j, Json.member "chunk" j) with
  | None, None -> ()
  | engine, chunk ->
    Buffer.add_string buf
      (Printf.sprintf "engine %s, chunk %s\n" (str_of engine)
         (match chunk with
         | Some (Json.Int n) -> string_of_int n
         | Some (Json.Str s) -> s
         | _ -> "-")));
  (match Json.member "gap" j with
  | Some gap ->
    let measured = num0 (Json.member "measured_speedup" gap) in
    Buffer.add_string buf
      (match num (Json.member "predicted_speedup" gap) with
      | Some p ->
        Printf.sprintf
          "speedup: predicted %.2fx, measured %.2fx (%.0f%% of prediction)\n"
          p measured
          (100.0 *. num0 (Json.member "achieved_fraction" gap))
      | None -> Printf.sprintf "speedup: measured %.2fx\n" measured)
  | None -> ());
  let cols = bucket_names @ [ "idle" ] in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) (cols @ [ "" ]))
      ("domain" :: cols @ [ "busy" ])
  in
  let row label buckets busy =
    Table.add_row t
      (label
      :: List.map (fun b -> fmt_s (num0 (Json.member b buckets))) cols
      @ [ fmt_s busy ])
  in
  (match Json.member "domains" j with
  | Some (Json.List ds) ->
    List.iter
      (fun d ->
        match Json.member "buckets" d with
        | Some buckets ->
          row (str_of (Json.member "domain" d)) buckets
            (num0 (Json.member "busy_s" d))
        | None -> ())
      ds
  | _ -> ());
  (match Json.member "totals" j with
  | Some totals ->
    let busy =
      List.fold_left (fun acc b -> acc +. num0 (Json.member b totals)) 0.0
        bucket_names
    in
    row "total" totals busy
  | None -> ());
  Buffer.add_string buf (Table.render t);
  Buffer.add_string buf
    (Printf.sprintf "coverage %.1f%%  (%d events, %d dropped, overhead %.2f%%)\n"
       (100.0 *. num0 (Json.member "coverage" j))
       (int_of_float (num0 (Json.member "events" j)))
       (int_of_float (num0 (Json.member "dropped" j)))
       (100.0 *. num0 (Json.member "overhead_fraction" j)));
  (match Json.member "iter_latency_s" j with
  | Some h -> Buffer.add_string buf ("iter latency: " ^ latency_line h ^ "\n")
  | None -> ());
  Buffer.contents buf

let top_metrics j =
  let buf = Buffer.create 512 in
  (match Json.member "counters" j with
  | Some (Json.Obj fields) ->
    let t =
      Table.create ~aligns:[ Table.Left; Table.Right ] [ "metric"; "value" ]
    in
    List.iter
      (fun (name, v) ->
        let rendered =
          match v with
          | Json.Int i -> string_of_int i
          | Json.Float f -> Printf.sprintf "%g" f
          | Json.Obj _ ->
            Printf.sprintf "n=%.0f mean %s p95 %s"
              (num0 (Json.member "count" v))
              (fmt_s (num0 (Json.member "mean" v)))
              (fmt_s (num0 (Json.member "p95" v)))
          | _ -> "-"
        in
        Table.add_row t [ name; rendered ])
      fields;
    Buffer.add_string buf (Table.render t)
  | _ -> Buffer.add_string buf "(no counters section)\n");
  Buffer.contents buf

let top_batch j =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "batch: %.0f file(s), %.0f ok, %.0f failed, %.0f timed out; hit rate \
        %.0f%%; wall %s\n"
       (num0 (Json.member "files" j))
       (num0 (Json.member "ok" j))
       (num0 (Json.member "failed" j))
       (num0 (Json.member "timed_out" j))
       (100.0 *. num0 (Json.member "hit_rate" j))
       (fmt_s (num0 (Json.member "wall_s" j))));
  (match Json.member "latency_s" j with
  | Some h -> Buffer.add_string buf ("job latency: " ^ latency_line h ^ "\n")
  | None -> ());
  (match Json.member "results" j with
  | Some (Json.List rs) ->
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Left; Table.Right ]
        [ "file"; "status"; "elapsed" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            str_of (Json.member "file" r);
            (let s = str_of (Json.member "status" r) in
             match Json.member "cache_hit" r with
             | Some (Json.Bool true) -> s ^ " (hit)"
             | _ -> s);
            (match num (Json.member "elapsed_s" r) with
            | Some e -> fmt_s e
            | None -> "-");
          ])
      rs;
    Buffer.add_string buf (Table.render t)
  | _ -> ());
  Buffer.contents buf

let top_loadtest j =
  let buf = Buffer.create 512 in
  let inti k = int_of_float (num0 (Json.member k j)) in
  Buffer.add_string buf
    (Printf.sprintf
       "loadtest (%s): %d client(s), %d server job(s), blend %s, seed %d\n"
       (str_of (Json.member "mode" j))
       (inti "clients") (inti "server_jobs")
       (match Json.member "blend" j with
       | Some b ->
         Printf.sprintf "cold=%d,warm=%d,guided=%d,engine=%d"
           (int_of_float (num0 (Json.member "cold" b)))
           (int_of_float (num0 (Json.member "warm" b)))
           (int_of_float (num0 (Json.member "guided" b)))
           (int_of_float (num0 (Json.member "engine" b)))
       | None -> "-")
       (inti "seed"));
  Buffer.add_string buf
    (Printf.sprintf
       "concurrent: %d request(s), %d error(s), %d coalesced; wall %s; %.1f \
        req/s\n"
       (inti "requests") (inti "errors") (inti "coalesced")
       (fmt_s (num0 (Json.member "wall_s" j)))
       (num0 (Json.member "throughput_rps" j)));
  (match Json.member "latency_s" j with
  | Some h -> Buffer.add_string buf ("latency: " ^ latency_line h ^ "\n")
  | None -> ());
  (match Json.member "serial" j with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf
         "serial:     %d request(s), %d error(s); wall %s; %.1f req/s\n"
         (int_of_float (num0 (Json.member "requests" s)))
         (int_of_float (num0 (Json.member "errors" s)))
         (fmt_s (num0 (Json.member "wall_s" s)))
         (num0 (Json.member "throughput_rps" s)))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "speedup vs serial: %.2fx\n"
       (num0 (Json.member "speedup_vs_serial" j)));
  (match Json.member "cache" j with
  | Some c ->
    Buffer.add_string buf
      (Printf.sprintf
         "cache: %d entr(ies), %d byte(s), %d eviction(s), hit rate %.0f%%\n"
         (int_of_float (num0 (Json.member "entries" c)))
         (int_of_float (num0 (Json.member "bytes" c)))
         (int_of_float (num0 (Json.member "evictions" c)))
         (100.0 *. num0 (Json.member "hit_rate" c)))
  | None -> ());
  Buffer.contents buf

(* spt-profdb-v1 renders in two shapes: the database census (`sptc
   profdb stat --json`, serve stats) and the bench's repeated-workload
   generations scenario, which embeds a census under "db".  Render
   whichever parts are present. *)
let top_profdb j =
  let buf = Buffer.create 512 in
  (match Json.member "generations" j with
  | Some (Json.List rows) when rows <> [] ->
    Buffer.add_string buf
      (Printf.sprintf
         "misspeculation across generations (workload %s, %d job(s))\n"
         (str_of (Json.member "workload" j))
         (int_of_float (num0 (Json.member "jobs" j))));
    let t =
      Table.create
        ~aligns:
          [
            Table.Right; Table.Left; Table.Right; Table.Right; Table.Right;
            Table.Right;
          ]
        [ "gen"; "guided"; "spt loops"; "misspec"; "cost"; "speedup" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            string_of_int (int_of_float (num0 (Json.member "generation" r)));
            (match Json.member "guided" r with
            | Some (Json.Bool true) -> "yes"
            | _ -> "no");
            string_of_int (int_of_float (num0 (Json.member "n_spt_loops" r)));
            string_of_int (int_of_float (num0 (Json.member "misspec_events" r)));
            string_of_int (int_of_float (num0 (Json.member "misspec_cost" r)));
            Printf.sprintf "%.2fx" (num0 (Json.member "measured_speedup" r));
          ])
      rows;
    Buffer.add_string buf (Table.render t)
  | _ -> ());
  let census = match Json.member "db" j with Some d -> d | None -> j in
  (match Json.member "entries" census with
  | Some _ ->
    Buffer.add_string buf
      (Printf.sprintf
         "profile db: %s; tool %s, decay %.2f; %d entr(ies) (%d invalid), %d \
          byte(s)\n"
         (str_of (Json.member "dir" census))
         (str_of (Json.member "tool" census))
         (num0 (Json.member "decay" census))
         (int_of_float (num0 (Json.member "entries" census)))
         (int_of_float (num0 (Json.member "invalid" census)))
         (int_of_float (num0 (Json.member "bytes" census))));
    Buffer.add_string buf
      (Printf.sprintf
         "lookups %d (hits %d, misses %d); ingests %d, publishes %d, \
          evictions %d, rejected %d\n"
         (int_of_float (num0 (Json.member "lookups" census)))
         (int_of_float (num0 (Json.member "hits" census)))
         (int_of_float (num0 (Json.member "misses" census)))
         (int_of_float (num0 (Json.member "ingests" census)))
         (int_of_float (num0 (Json.member "publishes" census)))
         (int_of_float (num0 (Json.member "evictions" census)))
         (int_of_float (num0 (Json.member "rejected" census))));
    (match Json.member "profiles" census with
    | Some (Json.List rows) when rows <> [] ->
      let t =
        Table.create
          ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
          [ "fingerprint"; "gen"; "loops"; "bytes" ]
      in
      List.iter
        (fun r ->
          let fp = str_of (Json.member "fingerprint" r) in
          Table.add_row t
            [
              (if String.length fp > 12 then String.sub fp 0 12 else fp);
              string_of_int (int_of_float (num0 (Json.member "generation" r)));
              string_of_int (int_of_float (num0 (Json.member "loops" r)));
              string_of_int (int_of_float (num0 (Json.member "bytes" r)));
            ])
        rows;
      Buffer.add_string buf (Table.render t)
    | _ -> ())
  | None -> ());
  Buffer.contents buf

(* spt-depth-v1: the bench's K-deep pipelining sweep — one row per
   forced depth, plus the accumulator workload the runtime value
   predictor must keep speculative. *)
let top_depth j =
  let buf = Buffer.create 512 in
  (match Json.member "rows" j with
  | Some (Json.List rows) when rows <> [] ->
    Buffer.add_string buf
      (Printf.sprintf "depth sweep (workload %s, %d job(s)%s)\n"
         (str_of (Json.member "workload" j))
         (int_of_float (num0 (Json.member "jobs" j)))
         (match Json.member "cores" j with
         | Some (Json.Int c) -> Printf.sprintf ", %d core(s)" c
         | _ -> ""));
    let t =
      Table.create
        ~aligns:
          [
            Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
            Table.Right; Table.Right;
          ]
        [ "depth"; "wall"; "speedup"; "commits"; "kills"; "violations";
          "svp hit" ]
    in
    List.iter
      (fun r ->
        let inti k = int_of_float (num0 (Json.member k r)) in
        let predicts = num0 (Json.member "svp_predicts" r)
        and hits = num0 (Json.member "svp_hits" r) in
        Table.add_row t
          [
            string_of_int (inti "depth");
            fmt_s (num0 (Json.member "wall_s" r));
            Printf.sprintf "%.2fx" (num0 (Json.member "speedup" r));
            string_of_int (inti "commits");
            string_of_int (inti "kills");
            string_of_int (inti "violations");
            (if predicts > 0.0 then
               Printf.sprintf "%.0f%%" (100.0 *. hits /. predicts)
             else "-");
          ])
      rows;
    Buffer.add_string buf (Table.render t)
  | _ -> ());
  (match Json.member "accumulator" j with
  | Some a ->
    Buffer.add_string buf
      (Printf.sprintf
         "accumulator (%s): depth %d, despecs %d, svp %d/%d hit(s)\n"
         (str_of (Json.member "workload" a))
         (int_of_float (num0 (Json.member "depth" a)))
         (int_of_float (num0 (Json.member "despecs" a)))
         (int_of_float (num0 (Json.member "svp_hits" a)))
         (int_of_float (num0 (Json.member "svp_predicts" a))))
  | None -> ());
  Buffer.contents buf

let top_bench j =
  let buf = Buffer.create 512 in
  (match Json.member "gap" j with
  | Some (Json.List rows) when rows <> [] ->
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        [ "workload"; "predicted"; "measured"; "achieved" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            str_of (Json.member "workload" r);
            (match num (Json.member "predicted_speedup" r) with
            | Some p -> Printf.sprintf "%.2fx" p
            | None -> "-");
            Printf.sprintf "%.2fx" (num0 (Json.member "measured_speedup" r));
            (match num (Json.member "achieved_fraction" r) with
            | Some f -> Printf.sprintf "%.0f%%" (100.0 *. f)
            | None -> "-");
          ])
      rows;
    Buffer.add_string buf "predicted vs measured speedup (gap)\n";
    Buffer.add_string buf (Table.render t)
  | _ -> Buffer.add_string buf "(no gap section; re-run bench/main.exe)\n");
  (match Json.member "engines" j with
  | Some (Json.List rows) when rows <> [] ->
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        [ "workload"; "tree seq"; "bytecode seq"; "speedup" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            str_of (Json.member "workload" r);
            fmt_s (num0 (Json.member "tree_seq_s" r));
            fmt_s (num0 (Json.member "bytecode_seq_s" r));
            Printf.sprintf "%.2fx" (num0 (Json.member "bytecode_speedup" r));
          ])
      rows;
    Buffer.add_string buf "sequential engines (tree vs bytecode)\n";
    Buffer.add_string buf (Table.render t)
  | _ -> ());
  (match Json.member "depth" j with
  | Some d ->
    Buffer.add_string buf "speculation depth (K-deep pipelining)\n";
    Buffer.add_string buf (top_depth d)
  | None -> ());
  (match Json.member "profdb" j with
  | Some p ->
    Buffer.add_string buf "profile database (fleet feedback)\n";
    Buffer.add_string buf (top_profdb p)
  | None -> ());
  (match Json.member "loadtest" j with
  | Some lt ->
    Buffer.add_string buf "service load test\n";
    Buffer.add_string buf (top_loadtest lt)
  | None -> ());
  Buffer.contents buf

let top_text j =
  match Json.member "schema" j with
  | Some (Json.Str "spt-attrib-v1") -> Ok (top_attrib j)
  | Some (Json.Str "spt-metrics-v1") -> Ok (top_metrics j)
  | Some (Json.Str "spt-batch-v1") -> Ok (top_batch j)
  | Some (Json.Str "spt-loadtest-v1") -> Ok (top_loadtest j)
  | Some (Json.Str "spt-profdb-v1") -> Ok (top_profdb j)
  | Some (Json.Str "spt-depth-v1") -> Ok (top_depth j)
  | Some (Json.Str "spt-bench-v2") -> Ok (top_bench j)
  | Some (Json.Str s) -> Error (Printf.sprintf "unsupported schema %S" s)
  | _ -> Error "not an spt report (no \"schema\" field)"

(* ------------------------------------------------------------------ *)
(* The [sptc compile] report text.

   This is the one renderer of the human-readable compile summary: the
   CLI prints it and the artifact cache stores it verbatim, so a warm
   compile replays byte-identical output. *)

let compile_text ~name (e : Pipeline.eval) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "configuration    : %s\n" e.Pipeline.config_name);
  Buffer.add_string buf
    (Printf.sprintf "outputs match    : %b\n" e.Pipeline.outputs_match);
  Buffer.add_string buf
    (Printf.sprintf "baseline cycles  : %.0f (IPC %.2f)\n"
       e.Pipeline.base.Tls_machine.cycles e.Pipeline.base.Tls_machine.ipc);
  Buffer.add_string buf
    (Printf.sprintf "SPT cycles       : %.0f\n" e.Pipeline.spt.Tls_machine.cycles);
  Buffer.add_string buf
    (Printf.sprintf "speedup          : %+.2f%%\n"
       ((e.Pipeline.speedup -. 1.0) *. 100.0));
  Buffer.add_string buf
    (Printf.sprintf "SPT loops        : %d\n" e.Pipeline.n_spt_loops);
  if e.Pipeline.n_spt_loops > 0 then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf (fig18 [ (name, e) ])
  end;
  Buffer.contents buf
