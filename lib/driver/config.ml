(** The three compiler configurations evaluated in §8.

    - [basic]: cost model, code reordering and DO-loop unrolling, with
      control-flow edge profiling only — memory dependence
      probabilities fall back to the conservative type-based static
      value (1.0 on every may-alias pair).
    - [best]: basic plus data-dependence profiling feedback and
      software value prediction.
    - [anticipated]: best plus the enabling techniques the paper
      applied manually — while-loop unrolling chief among them — with
      slightly relaxed selection thresholds standing in for
      privatization and global-variable export (both of which our
      dependence profiler already subsumes: a profiled-private array
      simply shows no cross-iteration dependence). *)

open Spt_transform

type t = {
  name : string;
  alias_model : [ `Exact | `Type_based ];
  use_dep_profile : bool;
  use_svp : bool;
  inline : bool;
      (** inline small callees before analysis — an extension beyond the
          paper (whose cost model keeps calls opaque, the source of its
          Fig. 19 outliers) *)
  unroll : Unroll.policy;
  thresholds : Select.thresholds;
  static_mem_prob : float;
  include_control : bool;
  sim : Spt_tlsim.Tls_machine.config;
  engine : Spt_exec.Engine.kind;
      (** execution engine for real (non-simulated) runs: the tree
          interpreter or the flat bytecode engine *)
  depth : int option;
      (** forced speculation depth (chunks in flight per loop).  [None]
          lets the cost model pick a depth per region
          ({!Spt_cost.Cost_model.pick_depth}); [Some k] forces [k]
          everywhere and makes final selection price the kill cascade
          ([cost * cascade_factor k]) so marginal loops are not
          speculated k-deep *)
}

let basic =
  {
    name = "basic";
    (* ORC's type-based memory disambiguation on pointer-rich C *)
    alias_model = `Type_based;
    use_dep_profile = false;
    use_svp = false;
    inline = false;
    unroll = Unroll.default_policy;
    thresholds = Select.default_thresholds;
    static_mem_prob = 1.0;
    include_control = true;
    sim = Spt_tlsim.Tls_machine.default_config;
    engine = Spt_exec.Engine.Bytecode;
    depth = None;
  }

let best =
  {
    basic with
    name = "best";
    alias_model = `Exact;
    use_dep_profile = true;
    use_svp = true;
  }

let anticipated =
  {
    best with
    name = "anticipated";
    unroll = { Unroll.default_policy with Unroll.unroll_while = true };
    thresholds =
      {
        Select.default_thresholds with
        Select.cost_fraction = 0.15;
        min_body_size = 40;
      };
  }

(** [best] plus small-function inlining: calls stop being opaque to the
    cost model, trading the paper's Fig. 19 call outliers for larger
    loop bodies. *)
let best_inline = { best with name = "best-inline"; inline = true }

let all = [ basic; best; anticipated; best_inline ]

let by_name name =
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Config.by_name: unknown config %s" name)

(* [t] is plain data (no closures), so the marshalled bytes are a
   total, stable rendering of every field — any knob change, including
   inside the nested simulator/cache configs, changes the digest *)
let cache_key ?profile (c : t) =
  let base =
    Printf.sprintf "%s:%s" c.name
      (Digest.to_hex (Digest.string (Marshal.to_string c [])))
  in
  match profile with
  | Some digest -> base ^ ";profile=" ^ digest
  | None -> base
