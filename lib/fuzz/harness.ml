(** Fuzz campaign driver — see harness.mli. *)

module Json = Spt_obs.Json
module Config = Spt_driver.Config

type case_result = {
  cr_index : int;
  cr_seed : int;
  cr_name : string option;
  cr_loc : int;
  cr_spt_loops : int;
  cr_misspecs : int;
  cr_status : [ `Clean | `Divergent | `Skipped of string ];
  cr_fault_fired : bool;
  cr_divergences : Oracle.divergence list;
  cr_shrunk : (string * int) option;
  cr_reproduce : string option;
}

type campaign = {
  c_seed : int;
  c_count : int;
  c_matrix : Oracle.point list;
  c_config : string;
  c_inject : string option;
  c_cases : case_result list;
  c_clean : int;
  c_skipped : int;
  c_divergent : int;
  c_elapsed_s : float;
}

let divergent c = c.c_divergent > 0

(* the --matrix spec that reproduces [points] (inject is a separate
   flag, not a matrix family) *)
let matrix_spec points =
  let fams =
    List.filter
      (fun f ->
        List.exists
          (fun p ->
            match (f, p) with
            | "par", Oracle.P_par _ -> true
            | "engine", Oracle.P_engine _ -> true
            | "depth", Oracle.P_depth _ -> true
            | "cache", Oracle.P_cache -> true
            | "feedback", Oracle.P_feedback -> true
            | _ -> false)
          points)
      [ "par"; "engine"; "depth"; "cache"; "feedback" ]
  in
  String.concat "," ("seq" :: fams)

let reproduce_line ~seed ~index ~matrix ~config ~inject =
  String.concat ""
    [
      Printf.sprintf "sptc fuzz --seed %d --index %d --count 1" seed index;
      Printf.sprintf " --matrix %s" (matrix_spec matrix);
      (if config = Config.best.Config.name then ""
       else Printf.sprintf " --config %s" config);
      (match inject with None -> "" | Some f -> Printf.sprintf " --inject %s" f);
    ]

(* ------------------------------------------------------------------ *)

(* shrink predicate: the candidate still diverges at (one of) the
   points the original failure touched — re-running only those keeps
   shrinking ~5x cheaper than the full matrix.  Mutant checks also run
   under a 20x tighter step budget: a mutant that loops forever (a
   common fault symptom — the dropped statement is often the induction
   update) then costs ~100k steps to reject instead of 2M, and any
   mutant whose reference needs more than 100k steps is skipped, i.e.
   treated as not-failing, which only makes the shrinker less greedy,
   never wrong. *)
let shrink_max_steps = Oracle.default_max_steps / 20

let shrink_failure ~config ~matrix ~budget (v : Oracle.verdict) src =
  let failing_points =
    List.filter
      (fun pt ->
        List.exists
          (fun (d : Oracle.divergence) ->
            String.equal d.Oracle.d_point (Oracle.string_of_point pt))
          v.Oracle.v_divergences)
      matrix
  in
  let pred s =
    match
      Oracle.check ~config ~max_steps:shrink_max_steps ~matrix:failing_points s
    with
    | { Oracle.v_status = `Divergent; _ } -> true
    | _ -> false
  in
  Shrink.minimize ~budget pred src

let write_corpus_file ~dir ~name ~header src =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  let oc = open_out (Filename.concat dir name) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun l -> Printf.fprintf oc "// %s\n" l) header;
      output_string oc src;
      if src = "" || src.[String.length src - 1] <> '\n' then
        output_char oc '\n')

let check_one ~config ~matrix src =
  let v = Oracle.check ~config ~matrix src in
  let status =
    match v.Oracle.v_status with
    | `Ok -> `Clean
    | `Divergent -> `Divergent
    | `Skipped r -> `Skipped r
  in
  (v, status)

let tally cases =
  List.fold_left
    (fun (cl, sk, dv) c ->
      match c.cr_status with
      | `Clean -> (cl + 1, sk, dv)
      | `Skipped _ -> (cl, sk + 1, dv)
      | `Divergent -> (cl, sk, dv + 1))
    (0, 0, 0) cases

let run_campaign ?(config = Config.best) ?(tuning = Gen.default_tuning)
    ?(matrix = Oracle.default_matrix) ?inject ?index ?corpus_dir
    ?(shrink_budget = 300) ?(keep_interesting = 3) ~seed ~count () =
  let t0 = Unix.gettimeofday () in
  let matrix =
    matrix @ match inject with None -> [] | Some f -> [ Oracle.P_inject f ]
  in
  let indices =
    match index with Some i -> [ i ] | None -> List.init count (fun i -> i)
  in
  let kept_interesting = ref 0 in
  let cases =
    List.map
      (fun i ->
        let case_seed = Gen.case_seed ~seed ~index:i in
        let src = Gen.to_source (Gen.generate ~tuning ~seed:case_seed ()) in
        let v, status = check_one ~config ~matrix src in
        let shrunk, reproduce =
          match status with
          | `Divergent ->
            let small =
              shrink_failure ~config ~matrix ~budget:shrink_budget v src
            in
            let line =
              reproduce_line ~seed ~index:i ~matrix
                ~config:config.Config.name ~inject
            in
            (Some (small, Gen.loc small), Some line)
          | _ -> (None, None)
        in
        (match (corpus_dir, status, shrunk) with
        | Some dir, `Divergent, Some (small, _) ->
          write_corpus_file ~dir
            ~name:(Printf.sprintf "div_s%d_c%d.c" seed i)
            ~header:
              ([
                 "spt-fuzz divergence reproducer (minimized)";
                 "reproduce: " ^ Option.value ~default:"" reproduce;
               ]
              @ List.map
                  (fun (d : Oracle.divergence) ->
                    Printf.sprintf "divergence at %s [%s]: %s" d.Oracle.d_point
                      d.Oracle.d_kind d.Oracle.d_detail)
                  v.Oracle.v_divergences)
            small
        | Some dir, `Clean, _
          when v.Oracle.v_spt_loops > 0
               && v.Oracle.v_misspecs > 0
               && !kept_interesting < keep_interesting ->
          incr kept_interesting;
          write_corpus_file ~dir
            ~name:(Printf.sprintf "int_s%d_c%d.c" seed i)
            ~header:
              [
                Printf.sprintf
                  "spt-fuzz interesting case: %d SPT loop(s), %d misspeculation(s) \
                   observed, all matrix points agree"
                  v.Oracle.v_spt_loops v.Oracle.v_misspecs;
                Printf.sprintf "generated from: %s"
                  (reproduce_line ~seed ~index:i ~matrix
                     ~config:config.Config.name ~inject:None);
              ]
            src
        | _ -> ());
        {
          cr_index = i;
          cr_seed = case_seed;
          cr_name = None;
          cr_loc = Gen.loc src;
          cr_spt_loops = v.Oracle.v_spt_loops;
          cr_misspecs = v.Oracle.v_misspecs;
          cr_status = status;
          cr_fault_fired = v.Oracle.v_fault_fired;
          cr_divergences = v.Oracle.v_divergences;
          cr_shrunk = shrunk;
          cr_reproduce = reproduce;
        })
      indices
  in
  let clean, skipped, div = tally cases in
  {
    c_seed = seed;
    c_count = List.length indices;
    c_matrix = matrix;
    c_config = config.Config.name;
    c_inject = inject;
    c_cases = cases;
    c_clean = clean;
    c_skipped = skipped;
    c_divergent = div;
    c_elapsed_s = Unix.gettimeofday () -. t0;
  }

let replay_corpus ?(config = Config.best) ?(matrix = Oracle.default_matrix)
    ~dir () =
  let t0 = Unix.gettimeofday () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
  in
  let cases =
    List.mapi
      (fun i file ->
        let path = Filename.concat dir file in
        let ic = open_in_bin path in
        let src =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let v, status = check_one ~config ~matrix src in
        {
          cr_index = i;
          cr_seed = 0;
          cr_name = Some file;
          cr_loc = Gen.loc src;
          cr_spt_loops = v.Oracle.v_spt_loops;
          cr_misspecs = v.Oracle.v_misspecs;
          cr_status = status;
          cr_fault_fired = v.Oracle.v_fault_fired;
          cr_divergences = v.Oracle.v_divergences;
          cr_shrunk = None;
          cr_reproduce = None;
        })
      files
  in
  let clean, skipped, div = tally cases in
  {
    c_seed = 0;
    c_count = List.length cases;
    c_matrix = matrix;
    c_config = config.Config.name;
    c_inject = None;
    c_cases = cases;
    c_clean = clean;
    c_skipped = skipped;
    c_divergent = div;
    c_elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let status_str = function
  | `Clean -> "clean"
  | `Divergent -> "divergent"
  | `Skipped _ -> "skipped"

let case_json c =
  Json.Obj
    (List.concat
       [
         [ ("index", Json.Int c.cr_index); ("seed", Json.Int c.cr_seed) ];
         (match c.cr_name with
         | Some n -> [ ("name", Json.Str n) ]
         | None -> []);
         [
           ("loc", Json.Int c.cr_loc);
           ("spt_loops", Json.Int c.cr_spt_loops);
           ("misspecs", Json.Int c.cr_misspecs);
           ("status", Json.Str (status_str c.cr_status));
           ("fault_fired", Json.Bool c.cr_fault_fired);
         ];
         (match c.cr_status with
         | `Skipped r -> [ ("skip_reason", Json.Str r) ]
         | _ -> []);
         [
           ( "divergences",
             Json.List (List.map Oracle.divergence_json c.cr_divergences) );
         ];
         (match c.cr_shrunk with
         | Some (src, l) ->
           [ ("shrunk_loc", Json.Int l); ("shrunk_source", Json.Str src) ]
         | None -> []);
         (match c.cr_reproduce with
         | Some r -> [ ("reproduce", Json.Str r) ]
         | None -> []);
       ])

let report_json c =
  Json.Obj
    [
      ("schema", Json.Str "spt-fuzz-v1");
      ("seed", Json.Int c.c_seed);
      ("count", Json.Int c.c_count);
      ( "matrix",
        Json.List
          (List.map (fun p -> Json.Str (Oracle.string_of_point p)) c.c_matrix)
      );
      ("config", Json.Str c.c_config);
      ( "inject",
        match c.c_inject with Some f -> Json.Str f | None -> Json.Null );
      ( "totals",
        Json.Obj
          [
            ("cases", Json.Int (List.length c.c_cases));
            ("clean", Json.Int c.c_clean);
            ("skipped", Json.Int c.c_skipped);
            ("divergent", Json.Int c.c_divergent);
            ( "spt_loops",
              Json.Int
                (List.fold_left (fun a x -> a + x.cr_spt_loops) 0 c.c_cases) );
            ( "misspecs",
              Json.Int
                (List.fold_left (fun a x -> a + x.cr_misspecs) 0 c.c_cases) );
            ( "fault_fired",
              Json.Int
                (List.length (List.filter (fun x -> x.cr_fault_fired) c.c_cases))
            );
          ] );
      ("cases", Json.List (List.map case_json c.c_cases));
      ("elapsed_s", Json.Float c.c_elapsed_s);
    ]

let summary c =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "fuzz: %d case(s), %d clean, %d skipped, %d divergent (matrix %s%s, \
     config %s, %.1fs)\n"
    (List.length c.c_cases) c.c_clean c.c_skipped c.c_divergent
    (matrix_spec c.c_matrix)
    (match c.c_inject with Some f -> " + inject:" ^ f | None -> "")
    c.c_config c.c_elapsed_s;
  List.iter
    (fun cc ->
      match cc.cr_status with
      | `Clean -> ()
      | `Skipped r ->
        Printf.bprintf b "  case %d%s: skipped (%s)\n" cc.cr_index
          (match cc.cr_name with Some n -> " [" ^ n ^ "]" | None -> "")
          r
      | `Divergent ->
        Printf.bprintf b "  case %d%s: DIVERGENT\n" cc.cr_index
          (match cc.cr_name with Some n -> " [" ^ n ^ "]" | None -> "");
        List.iter
          (fun (d : Oracle.divergence) ->
            Printf.bprintf b "    %s [%s]: %s\n" d.Oracle.d_point
              d.Oracle.d_kind d.Oracle.d_detail)
          cc.cr_divergences;
        (match cc.cr_shrunk with
        | Some (_, l) ->
          Printf.bprintf b "    shrunk to %d line(s)\n" l
        | None -> ());
        (match cc.cr_reproduce with
        | Some r -> Printf.bprintf b "    reproduce: %s\n" r
        | None -> ()))
    c.c_cases;
  Buffer.contents b
