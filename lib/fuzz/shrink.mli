(** Greedy structural minimizer for failing MiniC programs.

    Given a predicate ("still fails") and a failing source, repeatedly
    tries one-step reductions — dropping a helper function or global,
    deleting a statement, replacing an [if] by one of its arms or a
    loop by its body, shrinking integer literals towards zero — keeping
    any candidate for which the predicate still holds, until a fixpoint
    or the predicate-call budget is exhausted.

    Candidates that no longer parse, type-check or terminate are
    rejected by the predicate itself (an oracle-based predicate reports
    such programs as skipped, not failing), so the reducer needs no
    validity checking of its own. *)

(** [minimize ?budget pred src] — [pred src] is assumed to hold.
    [budget] caps predicate calls (default 300).  The result always
    satisfies [pred] (it is [src] itself if nothing smaller does).
    Exceptions from [pred] count as "does not fail". *)
val minimize : ?budget:int -> (string -> bool) -> string -> string
