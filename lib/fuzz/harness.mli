(** Campaign driver for the differential fuzzer: generates (or replays)
    cases, runs each through {!Oracle.check}, shrinks failures with
    {!Shrink.minimize}, persists corpus-worthy programs, and renders
    the [spt-fuzz-v1] report. *)

type case_result = {
  cr_index : int;
  cr_seed : int;  (** per-case generator seed; 0 for corpus replays *)
  cr_name : string option;  (** corpus file name, for replays *)
  cr_loc : int;  (** non-empty source lines *)
  cr_spt_loops : int;
  cr_misspecs : int;
  cr_status : [ `Clean | `Divergent | `Skipped of string ];
  cr_fault_fired : bool;
  cr_divergences : Oracle.divergence list;
  cr_shrunk : (string * int) option;  (** minimized source and its loc *)
  cr_reproduce : string option;  (** CLI line reproducing this failure *)
}

type campaign = {
  c_seed : int;
  c_count : int;
  c_matrix : Oracle.point list;  (** including any inject point *)
  c_config : string;
  c_inject : string option;
  c_cases : case_result list;
  c_clean : int;
  c_skipped : int;
  c_divergent : int;
  c_elapsed_s : float;
}

val divergent : campaign -> bool

(** Run a generative campaign: cases [0 .. count-1] (or just [index]),
    each from seed {!Gen.case_seed}[ ~seed ~index].  [inject] adds an
    {!Oracle.P_inject} point to [matrix].  Divergent cases are shrunk
    (the predicate re-runs only the matrix points that diverged) within
    [shrink_budget] predicate calls.  When [corpus_dir] is given,
    shrunk failing cases — and up to [keep_interesting] clean cases
    that actually speculated and misspeculated — are written there as
    commented [.c] files. *)
val run_campaign :
  ?config:Spt_driver.Config.t ->
  ?tuning:Gen.tuning ->
  ?matrix:Oracle.point list ->
  ?inject:string ->
  ?index:int ->
  ?corpus_dir:string ->
  ?shrink_budget:int ->
  ?keep_interesting:int ->
  seed:int ->
  count:int ->
  unit ->
  campaign

(** Replay every [*.c] under [dir] (sorted by name) through the clean
    matrix — the corpus regression mode. *)
val replay_corpus :
  ?config:Spt_driver.Config.t ->
  ?matrix:Oracle.point list ->
  dir:string ->
  unit ->
  campaign

(** The [spt-fuzz-v1] machine-readable report. *)
val report_json : campaign -> Spt_obs.Json.t

(** Human-readable summary, one line per non-clean case plus a
    reproduce line per divergence. *)
val summary : campaign -> string
