(** Differential oracle — see oracle.mli. *)

open Spt_ir
module Interp = Spt_interp.Interp
module Layout = Spt_interp.Layout
module Runtime = Spt_runtime.Runtime
module Pipeline = Spt_driver.Pipeline
module Config = Spt_driver.Config
module Select = Spt_transform.Select
module Tloop = Spt_transform.Spt_transform_loop
module Json = Spt_obs.Json

module Engine = Spt_exec.Engine

type point =
  | P_par of int
  | P_engine of Engine.kind * [ `Seq | `Par ]
  | P_depth of int
  | P_cache
  | P_feedback
  | P_inject of string

let engine_axis =
  [
    P_engine (Engine.Tree, `Seq);
    P_engine (Engine.Bytecode, `Seq);
    P_engine (Engine.Tree, `Par);
    P_engine (Engine.Bytecode, `Par);
  ]

let depth_axis = [ P_depth 1; P_depth 2; P_depth 4 ]

let default_matrix =
  [ P_par 1; P_par 2; P_par 4 ]
  @ engine_axis @ depth_axis
  @ [ P_cache; P_feedback ]

let known_faults = [ "drop-prefork-stmt" ]

let string_of_point = function
  | P_par j -> Printf.sprintf "par:%d" j
  | P_engine (k, m) ->
    Printf.sprintf "engine:%s:%s" (Engine.string_of_kind k)
      (match m with `Seq -> "seq" | `Par -> "par")
  | P_depth k -> Printf.sprintf "depth:%d" k
  | P_cache -> "cache"
  | P_feedback -> "feedback"
  | P_inject f -> "inject:" ^ f

let matrix_of_string spec =
  let parts =
    List.filter
      (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' spec))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "seq" :: rest -> go acc rest (* the implicit basis *)
    | "par" :: rest -> go (P_par 4 :: P_par 2 :: P_par 1 :: acc) rest
    | "engine" :: rest -> go (List.rev_append engine_axis acc) rest
    | "depth" :: rest -> go (List.rev_append depth_axis acc) rest
    | "cache" :: rest -> go (P_cache :: acc) rest
    | "feedback" :: rest -> go (P_feedback :: acc) rest
    | p :: _ -> Error (Printf.sprintf "unknown matrix point %S" p)
  in
  go [] parts

type divergence = { d_point : string; d_kind : string; d_detail : string }

(* Generated programs retire a few thousand dynamic instructions; this
   is ~500x headroom.  The tight budget is what keeps shrinking usable:
   a mutated-into-infinite loop dies here in milliseconds instead of
   burning the interpreter's 200M-step default for minutes. *)
let default_max_steps = 2_000_000

type verdict = {
  v_status : [ `Ok | `Divergent | `Skipped of string ];
  v_divergences : divergence list;
  v_spt_loops : int;
  v_misspecs : int;
  v_fault_fired : bool;
}

let divergence_json d =
  Json.Obj
    [
      ("point", Json.Str d.d_point);
      ("kind", Json.Str d.d_kind);
      ("detail", Json.Str d.d_detail);
    ]

(* ------------------------------------------------------------------ *)
(* Observables of one executed point *)

type outcome = {
  oc_output : string;
  oc_return : string;
  oc_digest : string;
  oc_error : string option;  (** when set, the other fields are dummies *)
}

let render_ret = function
  | None -> "void"
  | Some (Spt_ir.Eval.Vi n) -> Int64.to_string n
  | Some (Spt_ir.Eval.Vf f) -> string_of_float f

(* the ground truth: sequential interpretation of the untransformed
   lowered program, with the final memory image digested the same way
   the speculative runtime digests its own *)
let reference ~max_steps src =
  let prog = Pipeline.front_end src in
  let layout = Layout.build prog.Ir.globals in
  let store = Interp.new_store layout prog in
  let m =
    Interp.make ~max_steps ~memio:(Interp.store_memio store) prog
  in
  let ret = Interp.call m (Ir.func_of_program prog "main") [] [] in
  {
    oc_output = Buffer.contents store.Interp.sout;
    oc_return = render_ret ret;
    oc_digest = Runtime.heap_digest store;
    oc_error = None;
  }

let outcome_of_runtime (r : Runtime.result) =
  {
    oc_output = r.Runtime.output;
    oc_return = render_ret r.Runtime.return_value;
    oc_digest = r.Runtime.heap_digest;
    oc_error = None;
  }

(* compare an executed point against the reference *)
let diff_outcomes ~point ~reference:r o =
  let d kind detail = { d_point = point; d_kind = kind; d_detail = detail } in
  match (r.oc_error, o.oc_error) with
  | None, Some e -> [ d "error" e ]
  | None, None ->
    List.concat
      [
        (if String.equal r.oc_output o.oc_output then []
         else
           [
             d "output"
               (Printf.sprintf "%d bytes vs %d sequential"
                  (String.length o.oc_output)
                  (String.length r.oc_output));
           ]);
        (if String.equal r.oc_return o.oc_return then []
         else
           [ d "return" (Printf.sprintf "%s vs %s sequential" o.oc_return r.oc_return) ]);
        (if String.equal r.oc_digest o.oc_digest then []
         else [ d "heap" "final memory image differs from sequential" ]);
      ]
  | Some _, _ -> []  (* unreachable: a failing reference skips the case *)

(* ------------------------------------------------------------------ *)
(* Report invariants of a compilation *)

let invariant_divergences ~point (config : Config.t) (spt : Pipeline.spt_compilation) =
  let d detail = { d_point = point; d_kind = "invariant"; d_detail = detail } in
  List.concat_map
    (fun (r : Pipeline.loop_record) ->
      let where =
        Printf.sprintf "%s@bb%d" r.Pipeline.lr_func r.Pipeline.lr_header
      in
      List.concat
        [
          (match r.Pipeline.lr_cost with
          | Some c when Float.is_nan c || c < 0.0 ->
            [ d (Printf.sprintf "%s: predicted cost %f" where c) ]
          | _ -> []);
          (match r.Pipeline.lr_prefork_size with
          | Some p when p < 0 ->
            [ d (Printf.sprintf "%s: pre-fork size %d" where p) ]
          | _ -> []);
          (if r.Pipeline.lr_body_size < 0.0 || r.Pipeline.lr_trip < 0.0 then
             [ d (Printf.sprintf "%s: negative size/trip" where) ]
           else []);
          (match (r.Pipeline.lr_decision, r.Pipeline.lr_cost, r.Pipeline.lr_prefork_size)
           with
          | Pipeline.Selected, Some cost, Some prefork_size -> (
            match
              Select.final_check config.Config.thresholds
                ~body_size:(int_of_float r.Pipeline.lr_body_size)
                ~cost ~prefork_size
            with
            | Ok () -> []
            | Error reason ->
              [
                d
                  (Printf.sprintf "%s: selected but fails final check (%s)"
                     where
                     (Select.string_of_reason reason));
              ])
          | Pipeline.Selected, _, _ ->
            [ d (Printf.sprintf "%s: selected without cost/partition" where) ]
          | Pipeline.Rejected _, _, _ -> []);
        ])
    spt.Pipeline.records

(* ------------------------------------------------------------------ *)
(* Matrix points *)

let runtime_config ?engine ?depth ~max_steps ~jobs () =
  let c = Runtime.default_config () in
  let c =
    {
      c with
      Runtime.jobs;
      window = 2 * jobs;
      max_steps;
      spec_fuel = min c.Runtime.spec_fuel max_steps;
      depth;
    }
  in
  match engine with None -> c | Some e -> { c with Runtime.engine = e }

let run_on_runtime ?engine ?depth ~max_steps ~jobs
    (spt : Pipeline.spt_compilation) =
  let loops =
    List.map
      (fun (l : Spt_tlsim.Tls_machine.spt_loop) ->
        let record =
          List.find_opt
            (fun (r : Pipeline.loop_record) ->
              String.equal r.Pipeline.lr_func l.Spt_tlsim.Tls_machine.sl_fname
              && r.Pipeline.lr_header = l.Spt_tlsim.Tls_machine.sl_header)
            spt.Pipeline.records
        in
        {
          Runtime.ls_id = l.Spt_tlsim.Tls_machine.sl_id;
          ls_fname = l.Spt_tlsim.Tls_machine.sl_fname;
          ls_header = l.Spt_tlsim.Tls_machine.sl_header;
          ls_iter_ops =
            (match record with
            | Some r -> r.Pipeline.lr_body_size
            | None -> 0.0);
          ls_depth =
            (match record with Some r -> r.Pipeline.lr_depth | None -> 0);
        })
      spt.Pipeline.spt_loops
  in
  Runtime.run
    ~config:(runtime_config ?engine ?depth ~max_steps ~jobs ())
    ~loops spt.Pipeline.program

let par_point ~max_steps ~reference:ref_oc ~spt jobs =
  let point = string_of_point (P_par jobs) in
  match run_on_runtime ~max_steps ~jobs spt with
  | exception Interp.Runtime_error m ->
    ([ { d_point = point; d_kind = "error"; d_detail = m } ], 0)
  | r ->
    let misspecs =
      List.fold_left
        (fun acc (_, (s : Runtime.loop_stats)) ->
          acc + s.Runtime.violations + s.Runtime.faults + s.Runtime.kills)
        0 r.Runtime.stats
    in
    let internal =
      match r.Runtime.oracle with
      | `Match | `Skipped -> []
      | `Mismatch m ->
        [ { d_point = point; d_kind = "runtime-oracle"; d_detail = m } ]
    in
    (diff_outcomes ~point ~reference:ref_oc (outcome_of_runtime r) @ internal, misspecs)

(* K epochs in flight: the forced depth exercises the ordered-commit
   queue, the kill cascade and the runtime value predictor at exactly
   [k] deep, against the same sequential reference as every point *)
let depth_point ~max_steps ~reference:ref_oc ~spt k =
  let point = string_of_point (P_depth k) in
  match run_on_runtime ~depth:k ~max_steps ~jobs:2 spt with
  | exception Interp.Runtime_error m ->
    ([ { d_point = point; d_kind = "error"; d_detail = m } ], 0)
  | r ->
    let misspecs =
      List.fold_left
        (fun acc (_, (s : Runtime.loop_stats)) ->
          acc + s.Runtime.violations + s.Runtime.faults + s.Runtime.kills)
        0 r.Runtime.stats
    in
    let internal =
      match r.Runtime.oracle with
      | `Match | `Skipped -> []
      | `Mismatch m ->
        [ { d_point = point; d_kind = "runtime-oracle"; d_detail = m } ]
    in
    ( diff_outcomes ~point ~reference:ref_oc (outcome_of_runtime r) @ internal,
      misspecs )

(* the *transformed* program executed sequentially on one engine:
   markers are no-ops without a handler, so this checks both that the
   SPT transformation preserved sequential semantics and that the two
   engines agree instruction-for-instruction on real (fuzzed) code *)
let engine_seq_outcome ~max_steps kind (spt : Pipeline.spt_compilation) =
  let prog = spt.Pipeline.program in
  let layout = Layout.build prog.Ir.globals in
  let store = Interp.new_store layout prog in
  let m = Interp.make ~max_steps ~memio:(Interp.store_memio store) prog in
  let main = Ir.func_of_program prog "main" in
  let ret =
    match kind with
    | Engine.Tree -> Interp.call m main [] []
    | Engine.Bytecode ->
      let eng = Engine.compile m in
      Engine.call eng m main [] []
  in
  {
    oc_output = Buffer.contents store.Interp.sout;
    oc_return = render_ret ret;
    oc_digest = Runtime.heap_digest store;
    oc_error = None;
  }

let engine_point ~max_steps ~reference:ref_oc ~spt kind mode =
  let point = string_of_point (P_engine (kind, mode)) in
  let err m = [ { d_point = point; d_kind = "error"; d_detail = m } ] in
  match mode with
  | `Seq -> (
    match engine_seq_outcome ~max_steps kind spt with
    | exception e -> (err (Printexc.to_string e), 0)
    | o -> (diff_outcomes ~point ~reference:ref_oc o, 0))
  | `Par -> (
    match run_on_runtime ~engine:kind ~max_steps ~jobs:2 spt with
    | exception Interp.Runtime_error m -> (err m, 0)
    | r ->
      let misspecs =
        List.fold_left
          (fun acc (_, (s : Runtime.loop_stats)) ->
            acc + s.Runtime.violations + s.Runtime.faults + s.Runtime.kills)
          0 r.Runtime.stats
      in
      let internal =
        match r.Runtime.oracle with
        | `Match | `Skipped -> []
        | `Mismatch m ->
          [ { d_point = point; d_kind = "runtime-oracle"; d_detail = m } ]
      in
      ( diff_outcomes ~point ~reference:ref_oc (outcome_of_runtime r)
        @ internal,
        misspecs ))

(* cold/warm replay through a throwaway on-disk cache *)
let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spt-fuzz-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let cache_point ~config src =
  let point = string_of_point P_cache in
  let d kind detail = { d_point = point; d_kind = kind; d_detail = detail } in
  try
    with_tmp_dir (fun dir ->
        let cache = Spt_service.Artifact_cache.create ~dir () in
        let cold = Spt_service.Cached.compile ~cache ~config ~name:"<fuzz>" src in
        let warm = Spt_service.Cached.compile ~cache ~config ~name:"<fuzz>" src in
        List.concat
          [
            (if warm.Spt_service.Cached.hit then []
             else [ d "cache-miss" "second compile of identical source missed" ]);
            (if
               String.equal cold.Spt_service.Cached.report_text
                 warm.Spt_service.Cached.report_text
             then []
             else [ d "cache-replay" "warm report text differs from cold" ]);
            (if
               String.equal
                 (Json.to_string ~minify:true cold.Spt_service.Cached.eval)
                 (Json.to_string ~minify:true warm.Spt_service.Cached.eval)
             then []
             else [ d "cache-replay" "warm eval payload differs from cold" ]);
          ])
  with e -> [ d "error" (Printexc.to_string e) ]

(* telemetry-guided recompile: semantics must survive guidance *)
let feedback_point ~max_steps ~config ~reference:ref_oc ~spt src =
  let point = string_of_point P_feedback in
  try
    let r = run_on_runtime ~max_steps ~jobs:2 spt in
    let store = Spt_feedback.Profile_store.empty () in
    Spt_feedback.Telemetry.record store spt r;
    let guided =
      Pipeline.compile_spt
        ~profile_seed:(Spt_feedback.Profile_store.seed store)
        ~observations:(Spt_feedback.Telemetry.observations store)
        config src
    in
    match run_on_runtime ~max_steps ~jobs:2 guided with
    | exception Interp.Runtime_error m ->
      [ { d_point = point; d_kind = "error"; d_detail = m } ]
    | gr -> diff_outcomes ~point ~reference:ref_oc (outcome_of_runtime gr)
  with e ->
    [ { d_point = point; d_kind = "error"; d_detail = Printexc.to_string e } ]

(* fault-armed recompile: *expected* to diverge when the fault fires *)
let inject_point ~max_steps ~config ~reference:ref_oc ~fault src =
  let point = string_of_point (P_inject fault) in
  let d kind detail = { d_point = point; d_kind = kind; d_detail = detail } in
  if not (List.mem fault known_faults) then
    ([ d "error" (Printf.sprintf "unknown fault %S" fault) ], false)
  else begin
    Tloop.fault_fired := false;
    Tloop.fault_drop_moved := true;
    let compiled =
      Fun.protect
        ~finally:(fun () -> Tloop.fault_drop_moved := false)
        (fun () ->
          try Ok (Pipeline.compile_spt config src)
          with e -> Error (Printexc.to_string e))
    in
    let fired = !Tloop.fault_fired in
    match compiled with
    | Error m -> ([ d "error" ("faulty compile raised: " ^ m) ], fired)
    | Ok _ when not fired -> ([], false)  (* fault had nothing to bite *)
    | Ok spt -> (
      match run_on_runtime ~max_steps ~jobs:2 spt with
      | exception Interp.Runtime_error m -> ([ d "error" m ], true)
      | r -> (diff_outcomes ~point ~reference:ref_oc (outcome_of_runtime r), true))
  end

(* ------------------------------------------------------------------ *)

let check ?(config = Config.best) ?(max_steps = default_max_steps) ~matrix src
    =
  match reference ~max_steps src with
  | exception e ->
    {
      v_status = `Skipped (Printexc.to_string e);
      v_divergences = [];
      v_spt_loops = 0;
      v_misspecs = 0;
      v_fault_fired = false;
    }
  | ref_oc ->
    (* One base compilation shared by every clean point — skipped
       entirely when no matrix point needs it (the shrinker re-checks
       only the points that diverged, often just [inject] or [cache],
       hundreds of times; the base compile would double its cost). *)
    let needs_base =
      List.exists
        (function
          | P_par _ | P_engine _ | P_depth _ | P_feedback -> true
          | P_cache | P_inject _ -> false)
        matrix
    in
    let base =
      if not needs_base then Ok None
      else
        try Ok (Some (Pipeline.compile_spt config src))
        with e -> Error (Printexc.to_string e)
    in
    (match base with
    | Error m ->
      {
        v_status = `Divergent;
        v_divergences =
          [ { d_point = "compile"; d_kind = "error"; d_detail = m } ];
        v_spt_loops = 0;
        v_misspecs = 0;
        v_fault_fired = false;
      }
    | Ok spt_opt ->
      let misspecs = ref 0 in
      let fault_fired = ref false in
      let spt () = Option.get spt_opt (* present: [needs_base] *) in
      let divs =
        (match spt_opt with
        | Some s -> invariant_divergences ~point:"compile" config s
        | None -> [])
        @ List.concat_map
            (fun point ->
              match point with
              | P_par jobs ->
                let ds, m =
                  par_point ~max_steps ~reference:ref_oc ~spt:(spt ()) jobs
                in
                misspecs := !misspecs + m;
                ds
              | P_engine (kind, mode) ->
                let ds, m =
                  engine_point ~max_steps ~reference:ref_oc ~spt:(spt ()) kind
                    mode
                in
                misspecs := !misspecs + m;
                ds
              | P_depth k ->
                let ds, m =
                  depth_point ~max_steps ~reference:ref_oc ~spt:(spt ()) k
                in
                misspecs := !misspecs + m;
                ds
              | P_cache -> cache_point ~config src
              | P_feedback ->
                feedback_point ~max_steps ~config ~reference:ref_oc
                  ~spt:(spt ()) src
              | P_inject fault ->
                let ds, fired =
                  inject_point ~max_steps ~config ~reference:ref_oc ~fault src
                in
                if fired then fault_fired := true;
                ds)
            matrix
      in
      {
        v_status = (if divs = [] then `Ok else `Divergent);
        v_divergences = divs;
        v_spt_loops =
          (match spt_opt with
          | Some s -> List.length s.Pipeline.spt_loops
          | None -> 0);
        v_misspecs = !misspecs;
        v_fault_fired = !fault_fired;
      })
