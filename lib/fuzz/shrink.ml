(** Greedy MiniC minimizer — see shrink.mli. *)

open Spt_srclang

(* ------------------------------------------------------------------ *)
(* Index-addressed rewriting.

   Statements are numbered depth-first, pre-order, across all function
   bodies.  [rewrite_stmt_at] rebuilds the program with the [target]-th
   statement replaced by [f stmt] (a list, so deletion is [[]]); every
   other node is rebuilt structurally.  The same trick, over integer
   literals, drives literal shrinking. *)

let rewrite_stmt_at (p : Ast.program) ~target (f : Ast.stmt -> Ast.stmt list) :
    Ast.program =
  let n = ref (-1) in
  let rec stmts ss = List.concat_map stmt ss
  and stmt s =
    incr n;
    if !n = target then f s
    else
      let sdesc =
        match s.Ast.sdesc with
        | Ast.If (c, t, e) -> Ast.If (c, stmts t, stmts e)
        | Ast.While (c, b) -> Ast.While (c, stmts b)
        | Ast.Do_while (b, c) -> Ast.Do_while (stmts b, c)
        | Ast.For (i, c, st, b) ->
          (* init/step are stmt options but not independently numbered:
             deleting them rarely helps and breaks most loops *)
          Ast.For (i, c, st, stmts b)
        | Ast.Block b -> Ast.Block (stmts b)
        | d -> d
      in
      [ { s with Ast.sdesc } ]
  in
  {
    p with
    Ast.funcs =
      List.map (fun fd -> { fd with Ast.fbody = stmts fd.Ast.fbody }) p.Ast.funcs;
  }

let fold_stmts (p : Ast.program) init f =
  let acc = ref init in
  let n = ref (-1) in
  let rec stmts ss = List.iter stmt ss
  and stmt s =
    incr n;
    acc := f !acc !n s;
    match s.Ast.sdesc with
    | Ast.If (_, t, e) ->
      stmts t;
      stmts e
    | Ast.While (_, b) | Ast.Do_while (b, _) | Ast.For (_, _, _, b) | Ast.Block b
      ->
      stmts b
    | _ -> ()
  in
  List.iter (fun fd -> stmts fd.Ast.fbody) p.Ast.funcs;
  !acc

(* literals, depth-first across the whole program (bodies, globals,
   loop heads) *)
let rewrite_lit_at (p : Ast.program) ~target (f : int64 -> int64) : Ast.program
    =
  let n = ref (-1) in
  let rec expr e =
    let edesc =
      match e.Ast.edesc with
      | Ast.Int_lit v ->
        incr n;
        if !n = target then Ast.Int_lit (f v) else Ast.Int_lit v
      | Ast.Index (a, i) -> Ast.Index (a, expr i)
      | Ast.Call (g, args) -> Ast.Call (g, List.map expr args)
      | Ast.Unary (op, a) -> Ast.Unary (op, expr a)
      | Ast.Binary (op, a, b) ->
        let a = expr a in
        Ast.Binary (op, a, expr b)
      | d -> d
    in
    { e with Ast.edesc }
  in
  let rec stmt s =
    let sdesc =
      match s.Ast.sdesc with
      | Ast.Decl (t, v, init) -> Ast.Decl (t, v, Option.map expr init)
      | Ast.Assign (Ast.Lvar v, e) -> Ast.Assign (Ast.Lvar v, expr e)
      | Ast.Assign (Ast.Lindex (a, i), e) ->
        let i = expr i in
        Ast.Assign (Ast.Lindex (a, i), expr e)
      | Ast.If (c, t, e) -> Ast.If (expr c, List.map stmt t, List.map stmt e)
      | Ast.While (c, b) -> Ast.While (expr c, List.map stmt b)
      | Ast.Do_while (b, c) -> Ast.Do_while (List.map stmt b, expr c)
      | Ast.For (i, c, st, b) ->
        let i = Option.map stmt i in
        let c = Option.map expr c in
        let st = Option.map stmt st in
        Ast.For (i, c, st, List.map stmt b)
      | Ast.Return e -> Ast.Return (Option.map expr e)
      | Ast.Expr_stmt e -> Ast.Expr_stmt (expr e)
      | Ast.Block b -> Ast.Block (List.map stmt b)
      | (Ast.Break | Ast.Continue) as d -> d
    in
    { s with Ast.sdesc }
  in
  {
    p with
    Ast.funcs =
      List.map (fun fd -> { fd with Ast.fbody = List.map stmt fd.Ast.fbody }) p.Ast.funcs;
  }

let count_lits p =
  let n = ref 0 in
  ignore (rewrite_lit_at p ~target:(-2) (fun v -> incr n; v));
  !n

(* ------------------------------------------------------------------ *)
(* One-step reduction candidates, biggest bites first. *)

let candidates (p : Ast.program) : Ast.program Seq.t =
  let drop_funcs =
    List.filter_map
      (fun fd ->
        if fd.Ast.fname = "main" then None
        else
          Some
            {
              p with
              Ast.funcs = List.filter (fun g -> g.Ast.fname <> fd.Ast.fname) p.Ast.funcs;
            })
      p.Ast.funcs
  in
  let drop_globals =
    List.map
      (fun g ->
        { p with Ast.globals = List.filter (fun h -> h != g) p.Ast.globals })
      p.Ast.globals
  in
  let stmt_edits =
    fold_stmts p [] (fun acc k s ->
        let at f = rewrite_stmt_at p ~target:k f in
        let more =
          match s.Ast.sdesc with
          | Ast.If (_, t, e) ->
            [ at (fun _ -> t) ] @ if e = [] then [] else [ at (fun _ -> e) ]
          | Ast.While (_, b) | Ast.Do_while (b, _) -> [ at (fun _ -> b) ]
          | Ast.For (i, _, _, b) ->
            [ at (fun _ -> Option.to_list i @ b) ]
          | Ast.Block b -> [ at (fun _ -> b) ]
          | _ -> []
        in
        acc @ (at (fun _ -> []) :: more))
  in
  let lit_edits =
    List.concat
      (List.init (count_lits p) (fun k ->
           [
             rewrite_lit_at p ~target:k (fun _ -> 0L);
             rewrite_lit_at p ~target:k (fun v -> Int64.div v 2L);
           ]))
  in
  List.to_seq (drop_funcs @ drop_globals @ stmt_edits @ lit_edits)

(* ------------------------------------------------------------------ *)

let loc src =
  List.length
    (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' src))

let minimize ?(budget = 300) pred src0 =
  let calls = ref 0 in
  let still_fails s =
    if !calls >= budget then false
    else begin
      incr calls;
      try pred s with _ -> false
    end
  in
  let rec improve cur =
    if !calls >= budget then cur
    else
      match Parser.parse_program cur with
      | exception _ -> cur
      | prog ->
        let cur_loc = loc cur in
        let next =
          Seq.find_map
            (fun cand ->
              let s = Src_pretty.to_string cand in
              (* strictly smaller, to guarantee termination *)
              if loc s < cur_loc || (loc s = cur_loc && String.length s < String.length cur)
              then if still_fails s then Some s else None
              else None)
            (candidates prog)
        in
        (match next with Some s -> improve s | None -> cur)
  in
  improve src0
