(** Seeded random MiniC generator — see gen.mli. *)

open Spt_srclang

type tuning = {
  t_dep_prob : float;
  t_branch_prob : float;
  t_reduction_prob : float;
  t_call_prob : float;
  t_print_prob : float;
  t_rand_prob : float;
  t_nested_prob : float;
  t_max_loops : int;
  t_max_body : int;
  t_max_trip : int;
  t_max_arrays : int;
  t_max_arr_len : int;
}

let default_tuning =
  {
    t_dep_prob = 0.4;
    t_branch_prob = 0.35;
    t_reduction_prob = 0.6;
    t_call_prob = 0.25;
    t_print_prob = 0.15;
    t_rand_prob = 0.1;
    t_nested_prob = 0.25;
    t_max_loops = 3;
    t_max_body = 6;
    t_max_trip = 24;
    t_max_arrays = 3;
    t_max_arr_len = 24;
  }

(* ------------------------------------------------------------------ *)
(* splitmix64: tiny, platform-independent, splittable *)

type rng = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let next r =
  r.s <- Int64.add r.s golden;
  let z = r.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_of_seed seed = { s = Int64.of_int seed }

let int_below r n =
  if n <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int n))

let chance r p = float_of_int (int_below r 1_000_000) < p *. 1_000_000.0
let pick r l = List.nth l (int_below r (List.length l))

let case_seed ~seed ~index =
  (* one splitmix step over (seed, index) — distinct indices land far
     apart, and --index replays a single case without the prefix *)
  let r = { s = Int64.add (Int64.of_int seed) (Int64.mul 0x5851F42DL (Int64.of_int (index + 1))) } in
  Int64.to_int (Int64.shift_right_logical (next r) 2)

(* ------------------------------------------------------------------ *)
(* AST helpers *)

let e d = Ast.mk_expr d
let s d = Ast.mk_stmt d
let ilit n = e (Ast.Int_lit (Int64.of_int n))
let var n = e (Ast.Var n)
let bin op a b = e (Ast.Binary (op, a, b))
let assign name x = s (Ast.Assign (Ast.Lvar name, x))
let astore arr idx x = s (Ast.Assign (Ast.Lindex (arr, idx), x))
let decl name x = s (Ast.Decl (Ast.Tint, name, Some x))
let call_stmt name args = s (Ast.Expr_stmt (e (Ast.Call (name, args))))

(* ------------------------------------------------------------------ *)
(* Generation environment *)

type env = {
  rng : rng;
  tn : tuning;
  arrays : (string * int) list;  (** name, length *)
  helpers : (string * int) list;  (** name, arity *)
  mutable scalars : string list;  (** assignable int locals/globals *)
  mutable counters : string list;  (** loop counters: readable only *)
  mutable gensym : int;
}

let fresh env prefix =
  let n = env.gensym in
  env.gensym <- n + 1;
  Printf.sprintf "%s%d" prefix n

(* ------------------------------------------------------------------ *)
(* Expressions.

   Indices are a separate, restricted grammar: affine in a loop counter
   with non-negative coefficients, reduced [% len] — always in bounds,
   never a negative dividend.  Value expressions may read arrays (via
   the same safe indices), divide and take remainders only by positive
   constants, and consult [rand()] with low probability. *)

let gen_index env counter len =
  match int_below env.rng 4 with
  | 0 -> bin Ast.Mod (var counter) (ilit len)
  | 1 -> bin Ast.Mod (bin Ast.Add (var counter) (ilit (int_below env.rng len))) (ilit len)
  | 2 ->
    (* previous element, wrapped: the canonical cross-iteration read *)
    bin Ast.Mod (bin Ast.Add (var counter) (ilit (len - 1))) (ilit len)
  | _ ->
    bin Ast.Mod
      (bin Ast.Add
         (bin Ast.Mul (var counter) (ilit (1 + int_below env.rng 3)))
         (ilit (int_below env.rng 7)))
      (ilit len)

let rec gen_expr env ~counter depth =
  let leaf () =
    match int_below env.rng 5 with
    | 0 -> ilit (int_below env.rng 25 - 8)
    | 1 when env.scalars <> [] -> var (pick env.rng env.scalars)
    | 2 when counter <> None -> var (Option.get counter)
    | 3 when env.arrays <> [] && counter <> None ->
      let arr, len = pick env.rng env.arrays in
      e (Ast.Index (arr, gen_index env (Option.get counter) len))
    | _ -> ilit (int_below env.rng 17)
  in
  if depth <= 0 then leaf ()
  else
    match int_below env.rng 10 with
    | 0 | 1 -> leaf ()
    | 2 ->
      e (Ast.Unary (Ast.Neg, gen_expr env ~counter (depth - 1)))
    | 3 ->
      bin Ast.Div (gen_expr env ~counter (depth - 1)) (ilit (2 + int_below env.rng 8))
    | 4 ->
      bin Ast.Mod (gen_expr env ~counter (depth - 1)) (ilit (2 + int_below env.rng 8))
    | 5 when env.helpers <> [] && chance env.rng env.tn.t_call_prob ->
      let h, arity = pick env.rng env.helpers in
      e (Ast.Call (h, List.init arity (fun _ -> gen_expr env ~counter (depth - 1))))
    | 6 when chance env.rng env.tn.t_rand_prob ->
      bin Ast.Mod (e (Ast.Call ("rand", []))) (ilit (3 + int_below env.rng 14))
    | 7 ->
      e (Ast.Call (pick env.rng [ "min"; "max" ],
           [ gen_expr env ~counter (depth - 1); gen_expr env ~counter (depth - 1) ]))
    | _ ->
      let op = pick env.rng Ast.[ Add; Add; Sub; Mul; Band; Bor; Bxor ] in
      bin op (gen_expr env ~counter (depth - 1)) (gen_expr env ~counter (depth - 1))

let gen_cond env ~counter =
  match int_below env.rng 3 with
  | 0 -> bin (pick env.rng Ast.[ Lt; Le; Gt; Ge ])
           (gen_expr env ~counter 1) (gen_expr env ~counter 1)
  | 1 -> bin Ast.Eq (bin Ast.Band (gen_expr env ~counter 1) (ilit 1)) (ilit 0)
  | _ -> bin Ast.Ne (gen_expr env ~counter 1) (ilit (int_below env.rng 5))

(* ------------------------------------------------------------------ *)
(* Statements *)

(* one plain body statement (no control flow) *)
let gen_simple_stmt env ~counter =
  match int_below env.rng 5 with
  | 0 | 1 when env.arrays <> [] && counter <> None ->
    let arr, len = pick env.rng env.arrays in
    astore arr (gen_index env (Option.get counter) len) (gen_expr env ~counter 2)
  | 2 when chance env.rng env.tn.t_print_prob ->
    call_stmt "print_int" [ gen_expr env ~counter 1 ]
  | _ when env.scalars <> [] ->
    let v = pick env.rng env.scalars in
    if chance env.rng env.tn.t_dep_prob then
      (* carried scalar dependence: read-modify-write of the same var *)
      assign v (bin (pick env.rng Ast.[ Add; Sub; Bxor ]) (var v) (gen_expr env ~counter 2))
    else assign v (gen_expr env ~counter 2)
  | _ -> call_stmt "print_int" [ gen_expr env ~counter 1 ]

(* a cross-iteration memory dependence: write element i, read the
   previous one — the flow the speculative runtime must get right *)
let gen_carried_mem env ~counter =
  match (env.arrays, counter) with
  | (arr, len) :: _, Some i ->
    let prev = bin Ast.Mod (bin Ast.Add (var i) (ilit (len - 1))) (ilit len) in
    [
      astore arr
        (bin Ast.Mod (var i) (ilit len))
        (bin Ast.Add (e (Ast.Index (arr, prev))) (gen_expr env ~counter 1));
    ]
  | _ -> []

let rec gen_body env ~counter ~depth n =
  List.concat
    (List.init n (fun _ ->
         match int_below env.rng 10 with
         | 0 | 1 | 2 | 3 -> [ gen_simple_stmt env ~counter ]
         | 4 when chance env.rng env.tn.t_dep_prob -> gen_carried_mem env ~counter
         | 5 when chance env.rng env.tn.t_branch_prob ->
           let then_ = gen_body env ~counter ~depth (1 + int_below env.rng 2) in
           let else_ =
             if chance env.rng 0.5 then gen_body env ~counter ~depth 1 else []
           in
           [ s (Ast.If (gen_cond env ~counter, then_, else_)) ]
         | 6 when depth = 0 && chance env.rng env.tn.t_nested_prob ->
           [ gen_loop env ~depth:1 ]
         | 7 when chance env.rng env.tn.t_reduction_prob && env.scalars <> [] ->
           let v = pick env.rng env.scalars in
           [ assign v (bin Ast.Add (var v) (gen_expr env ~counter 1)) ]
         | _ -> [ gen_simple_stmt env ~counter ]))

(* one loop nest; counters never re-enter the assignable scope, so the
   induction is always a plain +1 to a constant bound: termination by
   construction *)
and gen_loop env ~depth =
  let trip = 2 + int_below env.rng (max 1 (env.tn.t_max_trip - 1)) in
  let trip = if depth > 0 then min trip 8 else trip in
  let i = fresh env "i" in
  let body_n = 1 + int_below env.rng (max 1 env.tn.t_max_body) in
  let saved_counters = env.counters in
  env.counters <- i :: env.counters;
  let body = gen_body env ~counter:(Some i) ~depth (max 1 body_n) in
  env.counters <- saved_counters;
  let incr_i = assign i (bin Ast.Add (var i) (ilit 1)) in
  match int_below env.rng 4 with
  | 0 ->
    s (Ast.Block
         [ decl i (ilit 0); s (Ast.While (bin Ast.Lt (var i) (ilit trip), body @ [ incr_i ])) ])
  | 1 ->
    s (Ast.Block
         [ decl i (ilit 0); s (Ast.Do_while (body @ [ incr_i ], bin Ast.Lt (var i) (ilit trip))) ])
  | _ ->
    s (Ast.For
         ( Some (decl i (ilit 0)),
           Some (bin Ast.Lt (var i) (ilit trip)),
           Some (assign i (bin Ast.Add (var i) (ilit 1))),
           body ))

(* ------------------------------------------------------------------ *)
(* Whole programs *)

let gen_helper env idx =
  let name = Printf.sprintf "h%d" idx in
  let x = var "x" and y = var "y" in
  let body =
    [
      decl "t"
        (bin (pick env.rng Ast.[ Add; Sub; Mul ])
           (bin Ast.Mul x (ilit (1 + int_below env.rng 5)))
           y);
      s (Ast.If (bin Ast.Lt (var "t") (ilit 0), [ assign "t" (bin Ast.Sub (ilit 0) (var "t")) ], []));
      s (Ast.Return (Some (bin Ast.Mod (var "t") (ilit (17 + int_below env.rng 100)))));
    ]
  in
  {
    Ast.fname = name;
    fparams = [ (Ast.Tint, "x"); (Ast.Tint, "y") ];
    fret = Ast.Tint;
    fbody = body;
    floc = Ast.no_loc;
  }

let generate ?(tuning = default_tuning) ~seed () =
  let rng = rng_of_seed seed in
  let n_arrays = 1 + int_below rng (max 1 tuning.t_max_arrays) in
  let arrays =
    List.init n_arrays (fun k ->
        (Printf.sprintf "a%d" k, 4 + int_below rng (max 1 (tuning.t_max_arr_len - 3))))
  in
  let n_helpers = int_below rng 3 in
  let helpers = List.init n_helpers (fun k -> (Printf.sprintf "h%d" k, 2)) in
  let env =
    { rng; tn = tuning; arrays; helpers; scalars = []; counters = []; gensym = 0 }
  in
  let helper_defs = List.init n_helpers (gen_helper env) in
  let n_globals = int_below rng 3 in
  let globals_scalars =
    List.init n_globals (fun k -> Printf.sprintf "g%d" k)
  in
  let n_locals = 2 + int_below rng 3 in
  let locals = List.init n_locals (fun k -> Printf.sprintf "s%d" k) in
  env.scalars <- globals_scalars @ locals;
  let local_decls =
    List.map (fun v -> decl v (ilit (int_below rng 9))) locals
  in
  let n_loops = 1 + int_below rng (max 1 tuning.t_max_loops) in
  let loops = List.init n_loops (fun _ -> gen_loop env ~depth:0) in
  (* observe the full final state: every scalar, and a checksum of
     every array, so silent memory divergence becomes output divergence
     even where heap digests are not comparable *)
  let observe_scalars =
    List.map (fun v -> call_stmt "print_int" [ var v ]) (globals_scalars @ locals)
  in
  let observe_arrays =
    List.concat_map
      (fun (arr, len) ->
        let cs = fresh env "cs" and ci = fresh env "ci" in
        [
          decl cs (ilit 0);
          s (Ast.For
               ( Some (decl ci (ilit 0)),
                 Some (bin Ast.Lt (var ci) (ilit len)),
                 Some (assign ci (bin Ast.Add (var ci) (ilit 1))),
                 [
                   assign cs
                     (bin Ast.Add (var cs)
                        (bin Ast.Mul (e (Ast.Index (arr, var ci)))
                           (bin Ast.Add (var ci) (ilit 1))));
                 ] ));
          call_stmt "print_int" [ var cs ];
        ])
      arrays
  in
  let main =
    {
      Ast.fname = "main";
      fparams = [];
      fret = Ast.Tvoid;
      fbody = local_decls @ loops @ observe_scalars @ observe_arrays;
      floc = Ast.no_loc;
    }
  in
  let globals =
    List.map
      (fun (a, len) ->
        let init =
          if chance rng 0.5 then
            Some (List.init len (fun _ -> Int64.of_int (int_below rng 33 - 8)))
          else None
        in
        Ast.Garray (Ast.Tint, a, len, init))
      arrays
    @ List.map
        (fun gname -> Ast.Gscalar (Ast.Tint, gname, Some (ilit (int_below rng 13))))
        globals_scalars
  in
  { Ast.globals; funcs = helper_defs @ [ main ] }

let to_source = Src_pretty.to_string

let loc src =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' src))
