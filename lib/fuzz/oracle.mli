(** The differential oracle: one generated program, executed at every
    point of the configuration matrix, every observable compared back
    to the sequential reference interpreter.

    The matrix spans the framework's independently-configurable
    execution paths:

    - [seq] — the reference itself (front end + sequential interpreter
      on the {e untransformed} program); its observables are the ground
      truth the other points are compared against.
    - [par] — the SPT compilation executed on the speculative runtime
      at 1, 2 and 4 worker domains (one compile, three executions); the
      runtime's own internal sequential-equivalence oracle must also
      report [`Match].
    - [engine] — the execution-engine axis: the {e transformed} program
      run on each {!Spt_exec.Engine.kind} (tree-walking and bytecode),
      both sequentially (markers as no-ops — a direct
      instruction-for-instruction parity check between the two engines)
      and on the speculative runtime at 2 domains with that engine
      selected.
    - [depth] — K-deep pipelining: the 2-domain runtime with the
      speculation depth forced to 1, 2 and 4 in-flight epochs,
      exercising the ordered-commit queue, the kill cascade and the
      runtime value predictor at each depth.
    - [cache] — a cold then warm {!Spt_service.Cached.compile} through
      a throwaway on-disk cache: the warm request must hit and replay
      the report byte-identically.
    - [feedback] — runtime telemetry of the jobs-2 run exported through
      {!Spt_feedback} and fed back into a guided recompile, which must
      preserve semantics (guidance may change the partition, never the
      meaning).
    - [inject:<fault>] — a recompile with a transform fault armed
      ({!Spt_transform.Spt_transform_loop.fault_drop_moved}); when the
      fault actually fires this point is {e expected} to diverge — it
      is how the harness proves the oracle has teeth.

    Observables per executed point: program output, return value,
    final-memory digest ({!Spt_runtime.Runtime.heap_digest} on both
    sides), error class, plus per-compilation report invariants
    (predicted cost finite and non-negative, every [Selected] loop
    re-passing {!Spt_transform.Select.final_check}).

    A program whose {e reference} run fails (it should not, by
    generator construction, but shrinking explores arbitrary mutants)
    is [Skipped], never divergent: the oracle only judges programs it
    can ground-truth. *)

type point =
  | P_par of int  (** speculative runtime at this many worker domains *)
  | P_engine of Spt_exec.Engine.kind * [ `Seq | `Par ]
      (** one engine, sequentially or on the 2-domain runtime *)
  | P_depth of int
      (** the 2-domain runtime with this speculation depth forced *)
  | P_cache
  | P_feedback
  | P_inject of string  (** fault name, e.g. ["drop-prefork-stmt"] *)

(** The four tree/bytecode × seq/par combinations — what the [engine]
    matrix family expands to. *)
val engine_axis : point list

(** Depths 1, 2 and 4 — what the [depth] matrix family expands to. *)
val depth_axis : point list

(** [seq] plus the given parallel job counts, the full engine axis,
    the depth axis, cache and feedback — the full clean matrix ([par]
    at 1, 2 and 4). *)
val default_matrix : point list

(** Parse a [--matrix] spec: comma-separated [seq]/[par]/[engine]/
    [depth]/[cache]/[feedback] (unknown names rejected).  [seq] is the
    implicit basis and always accepted. *)
val matrix_of_string : string -> (point list, string) result

val string_of_point : point -> string

(** The only fault name {!P_inject} currently understands. *)
val known_faults : string list

type divergence = {
  d_point : string;  (** matrix point, e.g. ["par:2"] *)
  d_kind : string;  (** [output] / [return] / [heap] / [error] /
                        [runtime-oracle] / [cache-miss] / [cache-replay]
                        / [invariant] *)
  d_detail : string;
}

type verdict = {
  v_status : [ `Ok | `Divergent | `Skipped of string ];
      (** [`Skipped reason]: the reference run itself failed *)
  v_divergences : divergence list;
  v_spt_loops : int;  (** loops the base compilation speculated *)
  v_misspecs : int;
      (** violations + faults + kills observed across the parallel
          runs — the "did speculation actually happen" signal used to
          pick corpus-worthy cases *)
  v_fault_fired : bool;
      (** an armed {!P_inject} fault actually dropped a statement *)
}

(** The step budget every execution (reference and runtime) runs
    under: ~500x the dynamic size of a typical generated program, yet
    small enough that a shrink mutant that loops forever is rejected in
    milliseconds. *)
val default_max_steps : int

(** Run [source] through the matrix under [config] (default
    {!Spt_driver.Config.best}).  Never raises on program misbehaviour —
    compile or runtime failures at a non-reference point are recorded
    as [error] divergences; a reference that exceeds [max_steps]
    (default {!default_max_steps}) skips the case. *)
val check :
  ?config:Spt_driver.Config.t ->
  ?max_steps:int ->
  matrix:point list ->
  string ->
  verdict

val divergence_json : divergence -> Spt_obs.Json.t
