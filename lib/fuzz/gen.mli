(** Seeded random MiniC program generator.

    Programs are built to stress exactly the shapes the cost-driven
    partitioner reasons about — loops with cross-iteration memory and
    scalar dependences of tunable probability, data-dependent branches,
    array stores through computed indices, reductions, nested loops,
    helper calls and speculative-unfriendly [rand()] use — while
    staying inside the differential oracle's comparability envelope:
    every generated program type-checks, terminates, stays in bounds,
    never divides by zero and never reads an uninitialized scalar, so
    any cross-configuration divergence observed on it is a bug in the
    framework, not in the input.

    Generation is deterministic: the same seed always yields the same
    program, on any platform (the PRNG is a self-contained
    splitmix64). *)

(** Generation knobs.  Probabilities are in [0, 1]. *)
type tuning = {
  t_dep_prob : float;  (** chance a loop carries a cross-iteration dependence *)
  t_branch_prob : float;  (** chance of an [if] inside a loop body *)
  t_reduction_prob : float;  (** chance a loop accumulates into a scalar *)
  t_call_prob : float;  (** chance a body statement calls a helper *)
  t_print_prob : float;  (** chance of a print inside a loop body *)
  t_rand_prob : float;  (** chance an expression consults [rand()] *)
  t_nested_prob : float;  (** chance a top-level loop nests another *)
  t_max_loops : int;  (** top-level loop nests in [main] (>= 1) *)
  t_max_body : int;  (** statements per loop body (>= 1) *)
  t_max_trip : int;  (** loop trip counts drawn from [2, t_max_trip] *)
  t_max_arrays : int;  (** global int arrays (>= 1) *)
  t_max_arr_len : int;  (** array lengths drawn from [4, t_max_arr_len] *)
}

val default_tuning : tuning

(** Splitmix64 PRNG state. *)
type rng

val rng_of_seed : int -> rng

(** [int_below r n] is uniform in [[0, n-1]] ([n >= 1]). *)
val int_below : rng -> int -> int

(** The per-case seed of case [index] in a campaign started at [seed] —
    a bijective-ish mix, so [--index] reproduces one case without
    replaying the sequence before it. *)
val case_seed : seed:int -> index:int -> int

(** Generate one program. *)
val generate : ?tuning:tuning -> seed:int -> unit -> Spt_srclang.Ast.program

(** Render to parseable MiniC concrete syntax. *)
val to_source : Spt_srclang.Ast.program -> string

(** Non-empty source lines — the size metric shrinking minimizes and
    reports ("a <= 15-line reproducer"). *)
val loc : string -> int
