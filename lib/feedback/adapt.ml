(** Adaptive re-partitioning — see adapt.mli. *)

module Json = Spt_obs.Json
open Spt_driver
module Runtime = Spt_runtime.Runtime

let m_adapt = Spt_obs.Metrics.counter "feedback.adapt_iterations"

type iteration = {
  it_index : int;
  it_partitions : ((string * int) * int list) list;
  it_changed : bool;
  it_forks : int;
  it_kills : int;
  it_violations : int;
  it_faults : int;
  it_serial_reexecs : int;
  it_iters : int;
  it_speedup : float;
}

type outcome = {
  iterations : iteration list;
  converged : bool;
  store : Profile_store.t;
}

(* the partition signature compared across rounds: which loops were
   selected, and which violation candidates each moved pre-fork *)
let signature (spt : Pipeline.spt_compilation) =
  List.sort compare
    (List.filter_map
       (fun (lr : Pipeline.loop_record) ->
         match (lr.Pipeline.lr_decision, lr.Pipeline.lr_loop_id) with
         | Pipeline.Selected, Some _ ->
           Some ((lr.Pipeline.lr_func, lr.Pipeline.lr_header), lr.Pipeline.lr_chosen)
         | _ -> None)
       spt.Pipeline.records)

let summarize index ~changed partitions (pr : Pipeline.parallel_run) =
  let add f =
    List.fold_left
      (fun acc (_, st) -> acc + f st)
      0
      pr.Pipeline.pr_runtime.Runtime.stats
  in
  {
    it_index = index;
    it_partitions = partitions;
    it_changed = changed;
    it_forks = add (fun (st : Runtime.loop_stats) -> st.Runtime.forks);
    it_kills = add (fun st -> st.Runtime.kills);
    it_violations = add (fun st -> st.Runtime.violations);
    it_faults = add (fun st -> st.Runtime.faults);
    it_serial_reexecs = add (fun st -> st.Runtime.serial_reexecs);
    it_iters = add (fun st -> st.Runtime.iters);
    it_speedup = pr.Pipeline.pr_measured_speedup;
  }

let run ?(config = Config.best) ?jobs ?(iters = 3)
    ?(threshold = Pipeline.default_divergence_threshold) ?store src : outcome =
  let store = match store with Some s -> s | None -> Profile_store.empty () in
  (* cold store: capture the baseline profiles once, so every round's
     compilation is seeded from persisted (not just in-memory) counts *)
  if not (Profile_store.has_profiles store) then begin
    let ep, dp, vp = Pipeline.profile_source ~config src in
    Profile_store.absorb_profiles store ep dp vp
  end;
  let iterations = ref [] in
  let prev_sig = ref None in
  let converged = ref false in
  let index = ref 1 in
  while !index <= max 1 iters && not !converged do
    Spt_obs.Metrics.inc m_adapt;
    let observations = Telemetry.observations store in
    let pr =
      Pipeline.run_parallel ~config ?jobs
        ~profile_seed:(Profile_store.seed store)
        ~observations ~divergence:threshold src
    in
    Telemetry.record store pr.Pipeline.pr_spt pr.Pipeline.pr_runtime;
    let s = signature pr.Pipeline.pr_spt in
    let changed =
      match !prev_sig with Some p -> p <> s | None -> false
    in
    (match !prev_sig with
    | Some p when p = s -> converged := true
    | _ -> ());
    iterations := summarize !index ~changed s pr :: !iterations;
    Spt_obs.Log.info
      "[adapt] iteration %d: %d loops, forks=%d kills=%d violations=%d%s"
      !index (List.length s)
      (List.hd !iterations).it_forks (List.hd !iterations).it_kills
      (List.hd !iterations).it_violations
      (if !converged then " (converged)" else "");
    prev_sig := Some s;
    incr index
  done;
  { iterations = List.rev !iterations; converged = !converged; store }

let string_of_partitions ps =
  if ps = [] then "-"
  else
    String.concat " "
      (List.map
         (fun ((f, h), chosen) ->
           Printf.sprintf "%s@bb%d{%s}" f h
             (String.concat "," (List.map string_of_int chosen)))
         ps)

let report (o : outcome) =
  let t =
    Spt_util.Table.create
      ~aligns:
        [
          Spt_util.Table.Right; Spt_util.Table.Left; Spt_util.Table.Right;
          Spt_util.Table.Right; Spt_util.Table.Right; Spt_util.Table.Right;
          Spt_util.Table.Right;
        ]
      [ "iter"; "partitions"; "forks"; "kills"; "violations"; "serial"; "speedup" ]
  in
  List.iter
    (fun it ->
      Spt_util.Table.add_row t
        [
          Printf.sprintf "%d%s" it.it_index (if it.it_changed then "*" else "");
          string_of_partitions it.it_partitions;
          string_of_int it.it_forks;
          string_of_int it.it_kills;
          string_of_int it.it_violations;
          string_of_int it.it_serial_reexecs;
          Printf.sprintf "%.2fx" it.it_speedup;
        ])
    o.iterations;
  Spt_util.Table.render t
  ^ Printf.sprintf "converged: %b  (iterations: %d, profile digest %s)\n"
      o.converged
      (List.length o.iterations)
      (Profile_store.digest o.store)

let to_json (o : outcome) =
  Json.Obj
    [
      ("schema", Json.Str "spt-adapt-v1");
      ("converged", Json.Bool o.converged);
      ("profile_digest", Json.Str (Profile_store.digest o.store));
      ( "iterations",
        Json.List
          (List.map
             (fun it ->
               Json.Obj
                 [
                   ("index", Json.Int it.it_index);
                   ("changed", Json.Bool it.it_changed);
                   ( "partitions",
                     Json.List
                       (List.map
                          (fun ((f, h), chosen) ->
                            Json.Obj
                              [
                                ("func", Json.Str f);
                                ("header", Json.Int h);
                                ( "chosen_vcs",
                                  Json.List
                                    (List.map (fun v -> Json.Int v) chosen) );
                              ])
                          it.it_partitions) );
                   ("forks", Json.Int it.it_forks);
                   ("kills", Json.Int it.it_kills);
                   ("violations", Json.Int it.it_violations);
                   ("faults", Json.Int it.it_faults);
                   ("serial_reexecs", Json.Int it.it_serial_reexecs);
                   ("iters", Json.Int it.it_iters);
                   ("measured_speedup", Json.Float it.it_speedup);
                 ])
             o.iterations) );
    ]
