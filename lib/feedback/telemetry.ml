(** Runtime telemetry export — see telemetry.mli. *)

open Spt_driver
module Runtime = Spt_runtime.Runtime

let loops_of (spt : Pipeline.spt_compilation) =
  List.filter_map
    (fun (lr : Pipeline.loop_record) ->
      match lr.Pipeline.lr_loop_id with
      | Some id -> Some (id, (lr.Pipeline.lr_func, lr.Pipeline.lr_header))
      | None -> None)
    spt.Pipeline.records

let obs_of (st : Runtime.loop_stats) : Profile_store.obs =
  {
    o_iters = st.Runtime.iters;
    o_forks = st.Runtime.forks;
    o_commits = st.Runtime.commits;
    o_violations = st.Runtime.violations;
    o_faults = st.Runtime.faults;
    o_kills = st.Runtime.kills;
    o_despecs = st.Runtime.despecs;
    o_serial_reexecs = st.Runtime.serial_reexecs;
    o_stale_other = st.Runtime.stale_reg + st.Runtime.stale_rng;
    o_stale_regions = Runtime.sorted_regions st;
    o_svp =
      List.map
        (fun (vid, (s : Runtime.svp_stats)) ->
          (vid, (s.Runtime.sv_predicts, s.Runtime.sv_hits, s.Runtime.sv_mispredicts)))
        (Runtime.sorted_svp st);
  }

let record store (spt : Pipeline.spt_compilation) (r : Runtime.result) =
  let loops = loops_of spt in
  List.iter
    (fun (lid, st) ->
      match List.assoc_opt lid loops with
      | Some (func, header) ->
        Profile_store.add_observation store ~func ~header (obs_of st)
      | None -> ())
    r.Runtime.stats

let observations store =
  List.map
    (fun ((func, header), (o : Profile_store.obs)) ->
      ( (func, header),
        {
          Pipeline.ob_iters = o.Profile_store.o_iters;
          ob_forks = o.Profile_store.o_forks;
          ob_commits = o.Profile_store.o_commits;
          ob_violations = o.Profile_store.o_violations;
          ob_faults = o.Profile_store.o_faults;
          ob_kills = o.Profile_store.o_kills;
          ob_serial_reexecs = o.Profile_store.o_serial_reexecs;
          ob_stale_regions = o.Profile_store.o_stale_regions;
          ob_stale_other = o.Profile_store.o_stale_other;
        } ))
    (Profile_store.observations store)
