(** The persistent profile store: a versioned on-disk rendering of the
    three compile-time profiles (edge / dependence / value) plus the
    runtime's per-loop misspeculation telemetry, keyed by function and
    loop header.

    The store is the medium of the profile-guided feedback loop: a run
    exports what it measured, later compilations merge it back in
    ([seed]) and override diverging violation probabilities from the
    observed rates.  Counts add under {!merge}, so merging two runs
    behaves as one longer run, and the JSON rendering is canonical —
    sorted keys, minified digest input — so {!digest} is a stable
    fingerprint suitable for cache keys
    ({!Spt_driver.Config.cache_key}).

    Like the artifact cache, the store never turns corruption into an
    error: {!load} of a missing, unreadable, mis-versioned or malformed
    file degrades to the empty store. *)

(** On-disk schema tag ([spt-profile-v1]); a file under any other tag
    loads as empty. *)
val schema : string

(** Observed runtime behaviour of one transformed loop, in the
    runtime's §3 vocabulary ({!Spt_runtime.Runtime.loop_stats}). *)
type obs = {
  o_iters : int;
  o_forks : int;
  o_commits : int;
  o_violations : int;
  o_faults : int;
  o_kills : int;
  o_despecs : int;
  o_serial_reexecs : int;
  o_stale_other : int;  (** register / RNG validation failures *)
  o_stale_regions : (int * int) list;
      (** per store-region sid, sorted — memory validation failures *)
  o_svp : (int * (int * int * int)) list;
      (** per predicted variable id, sorted — software-value-prediction
          (predicts, hits, mispredicts) from the runtime predictor;
          absent (= empty) in stores written before 1.6 *)
}

type t

val empty : unit -> t

(** No profile counts and no telemetry at all. *)
val is_empty : t -> bool

(** Any edge / dependence / value counts present (telemetry aside). *)
val has_profiles : t -> bool

(** Export the three profilers' counters into the store (adds). *)
val absorb_profiles :
  t ->
  Spt_profile.Edge_profile.t ->
  Spt_profile.Dep_profile.t ->
  Spt_profile.Value_profile.t ->
  unit

(** Merge the store's counts into freshly built profilers — the
    [profile_seed] callback of {!Spt_driver.Pipeline.compile_spt}. *)
val seed :
  t ->
  Spt_profile.Edge_profile.t ->
  Spt_profile.Dep_profile.t ->
  Spt_profile.Value_profile.t ->
  unit

(** Add one loop's observed outcomes (counts add on repeat). *)
val add_observation : t -> func:string -> header:int -> obs -> unit

(** Every recorded loop observation, sorted by (function, header). *)
val observations : t -> ((string * int) * obs) list

(** Fresh store holding the sums of both arguments ([merge] is
    commutative and associative up to {!digest}). *)
val merge : t -> t -> t

(** [scaled t f] is a fresh store with every counter of [t] multiplied
    by [f] and floored.  Flooring (never rounding) makes repeated decay
    monotone — a count can only shrink, and any count eventually
    reaches zero and drops out of the store entirely — which is what
    lets the profile database age stale telemetry out instead of
    letting a single ancient observation linger forever.  [f <= 0]
    yields the empty store; [scaled t 1.0] is a copy. *)
val scaled : t -> float -> t

(** Canonical JSON rendering (sorted keys, schema-tagged). *)
val to_json : t -> Spt_obs.Json.t

val of_json : Spt_obs.Json.t -> (t, string) result

(** MD5 over the canonical minified JSON: equal iff the counts are. *)
val digest : t -> string

(** Write the canonical rendering; [save]/[load]/[save] round-trips
    byte-identically. *)
val save : t -> string -> unit

(** Read a store back; any malfunction degrades to {!empty}. *)
val load : string -> t
