(** The adaptive re-partitioning driver: compile → run on the
    speculative runtime → fold the observed misspeculation back into
    the store → recompile, until the per-loop partition decisions stop
    changing or the iteration budget runs out.

    Each iteration seeds the compilation's profilers from the store
    ({!Profile_store.seed}) and injects the accumulated telemetry as
    violation-probability overrides
    ({!Spt_driver.Pipeline.compile_spt}).  Because overrides are
    re-derived from the *accumulated* store each time, a loop the
    feedback despeculates stays despeculated — its old telemetry
    persists even though it produces no new misspeculations — so the
    process converges instead of oscillating. *)

(** One compile+run round. *)
type iteration = {
  it_index : int;  (** 1-based *)
  it_partitions : ((string * int) * int list) list;
      (** selected loops, (function, header) → chosen pre-fork
          violation candidates: the partition signature compared
          across rounds *)
  it_changed : bool;  (** signature differs from the previous round *)
  it_forks : int;
  it_kills : int;
  it_violations : int;
  it_faults : int;
  it_serial_reexecs : int;
  it_iters : int;  (** loop iterations retired, summed over loops *)
  it_speedup : float;  (** measured wall-clock speedup *)
}

type outcome = {
  iterations : iteration list;  (** in execution order, non-empty *)
  converged : bool;
      (** the final iteration's partitions equal the previous one's *)
  store : Profile_store.t;  (** accumulated profiles + telemetry *)
}

(** Run the loop on MiniC source.  [iters] bounds the rounds (default
    3, stops early on convergence); [threshold] is the divergence
    threshold ({!Spt_driver.Pipeline.default_divergence_threshold});
    [store] continues from earlier accumulated state (default empty —
    profiles are then captured from a profiling pre-run). *)
val run :
  ?config:Spt_driver.Config.t ->
  ?jobs:int ->
  ?iters:int ->
  ?threshold:float ->
  ?store:Profile_store.t ->
  string ->
  outcome

(** Human-readable per-iteration table. *)
val report : outcome -> string

(** Machine-readable summary, schema [spt-adapt-v1]. *)
val to_json : outcome -> Spt_obs.Json.t
