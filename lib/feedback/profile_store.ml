(** Persistent profile + telemetry store — see profile_store.mli. *)

module Json = Spt_obs.Json
open Spt_profile

let schema = "spt-profile-v1"
let m_loaded = Spt_obs.Metrics.counter "feedback.profiles_loaded"
let m_merged = Spt_obs.Metrics.counter "feedback.profiles_merged"

type obs = {
  o_iters : int;
  o_forks : int;
  o_commits : int;
  o_violations : int;
  o_faults : int;
  o_kills : int;
  o_despecs : int;
  o_serial_reexecs : int;
  o_stale_other : int;
  o_stale_regions : (int * int) list;
  o_svp : (int * (int * int * int)) list;
}

type t = {
  blocks : (string * int, int) Hashtbl.t;
  edges : (string * int * int, int) Hashtbl.t;
  entries : (string, int) Hashtbl.t;
  deps : ((string * int) * int * int * Dep_profile.dep_kind, int) Hashtbl.t;
  writes : ((string * int) * int, int) Hashtbl.t;
  strides : (string * int * int64, int) Hashtbl.t;
  telem : (string * int, obs) Hashtbl.t;
}

let empty () =
  {
    blocks = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    entries = Hashtbl.create 16;
    deps = Hashtbl.create 64;
    writes = Hashtbl.create 64;
    strides = Hashtbl.create 32;
    telem = Hashtbl.create 8;
  }

let has_profiles t =
  Hashtbl.length t.blocks > 0
  || Hashtbl.length t.edges > 0
  || Hashtbl.length t.entries > 0
  || Hashtbl.length t.deps > 0
  || Hashtbl.length t.writes > 0
  || Hashtbl.length t.strides > 0

let is_empty t = (not (has_profiles t)) && Hashtbl.length t.telem = 0

let bump tbl key n =
  if n > 0 then
    Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* ------------------------------------------------------------------ *)
(* Profiler conversions *)

let absorb_profiles t ep dp vp =
  let ed = Edge_profile.export ep in
  List.iter (fun (k, n) -> bump t.blocks k n) ed.Edge_profile.d_blocks;
  List.iter (fun (k, n) -> bump t.edges k n) ed.Edge_profile.d_edges;
  List.iter (fun (k, n) -> bump t.entries k n) ed.Edge_profile.d_entries;
  let dd = Dep_profile.export dp in
  List.iter
    (fun ((lk, w, r, k), n) -> bump t.deps (lk, w, r, k) n)
    dd.Dep_profile.d_deps;
  List.iter (fun (k, n) -> bump t.writes k n) dd.Dep_profile.d_writes;
  let vd = Value_profile.export vp in
  List.iter
    (fun ((f, iid), strides) ->
      List.iter (fun (s, n) -> bump t.strides (f, iid, s) n) strides)
    vd.Value_profile.d_strides

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let seed t ep dp vp =
  Edge_profile.absorb ep
    {
      Edge_profile.d_blocks = sorted_bindings t.blocks;
      d_edges = sorted_bindings t.edges;
      d_entries = sorted_bindings t.entries;
    };
  Dep_profile.absorb dp
    {
      Dep_profile.d_deps =
        List.map
          (fun ((lk, w, r, k), n) -> ((lk, w, r, k), n))
          (sorted_bindings t.deps);
      d_writes = sorted_bindings t.writes;
    };
  (* regroup the flat stride counters per value-profile target *)
  let per_target = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (f, iid, s) n ->
      Hashtbl.replace per_target (f, iid)
        ((s, n)
        :: Option.value ~default:[] (Hashtbl.find_opt per_target (f, iid))))
    t.strides;
  Value_profile.absorb vp
    {
      Value_profile.d_strides =
        List.map
          (fun (k, strides) -> (k, List.sort compare strides))
          (sorted_bindings per_target);
    }

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let merge_counts a b =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (sid, n) -> bump tbl sid n) a;
  List.iter (fun (sid, n) -> bump tbl sid n) b;
  sorted_bindings tbl

(* per-variable SVP triples add componentwise under the same vid *)
let merge_svp a b =
  let tbl = Hashtbl.create 8 in
  let add (vid, (p, h, m)) =
    let p0, h0, m0 =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl vid)
    in
    Hashtbl.replace tbl vid (p0 + p, h0 + h, m0 + m)
  in
  List.iter add a;
  List.iter add b;
  sorted_bindings tbl

let add_obs a b =
  {
    o_iters = a.o_iters + b.o_iters;
    o_forks = a.o_forks + b.o_forks;
    o_commits = a.o_commits + b.o_commits;
    o_violations = a.o_violations + b.o_violations;
    o_faults = a.o_faults + b.o_faults;
    o_kills = a.o_kills + b.o_kills;
    o_despecs = a.o_despecs + b.o_despecs;
    o_serial_reexecs = a.o_serial_reexecs + b.o_serial_reexecs;
    o_stale_other = a.o_stale_other + b.o_stale_other;
    o_stale_regions = merge_counts a.o_stale_regions b.o_stale_regions;
    o_svp = merge_svp a.o_svp b.o_svp;
  }

let add_observation t ~func ~header ob =
  let ob =
    {
      ob with
      o_stale_regions = List.sort compare ob.o_stale_regions;
      o_svp = List.sort compare ob.o_svp;
    }
  in
  Hashtbl.replace t.telem (func, header)
    (match Hashtbl.find_opt t.telem (func, header) with
    | Some prev -> add_obs prev ob
    | None -> ob)

let observations t = sorted_bindings t.telem

(* ------------------------------------------------------------------ *)
(* Merge *)

let absorb_store dst src =
  Hashtbl.iter (fun k n -> bump dst.blocks k n) src.blocks;
  Hashtbl.iter (fun k n -> bump dst.edges k n) src.edges;
  Hashtbl.iter (fun k n -> bump dst.entries k n) src.entries;
  Hashtbl.iter (fun k n -> bump dst.deps k n) src.deps;
  Hashtbl.iter (fun k n -> bump dst.writes k n) src.writes;
  Hashtbl.iter (fun k n -> bump dst.strides k n) src.strides;
  Hashtbl.iter
    (fun (func, header) ob -> add_observation dst ~func ~header ob)
    src.telem

let merge a b =
  Spt_obs.Metrics.inc m_merged;
  let t = empty () in
  absorb_store t a;
  absorb_store t b;
  t

(* ------------------------------------------------------------------ *)
(* Decay *)

let obs_is_zero o =
  o.o_iters = 0 && o.o_forks = 0 && o.o_commits = 0 && o.o_violations = 0
  && o.o_faults = 0 && o.o_kills = 0 && o.o_despecs = 0
  && o.o_serial_reexecs = 0 && o.o_stale_other = 0 && o.o_stale_regions = []
  && o.o_svp = []

let scaled t f =
  (* floor, never round: decay must be monotone and must reach zero,
     otherwise a count of 1 at factor 0.5 would survive forever *)
  let s n = if n <= 0 then 0 else int_of_float (floor (float_of_int n *. f)) in
  let dst = empty () in
  if f > 0.0 then begin
    Hashtbl.iter (fun k n -> bump dst.blocks k (s n)) t.blocks;
    Hashtbl.iter (fun k n -> bump dst.edges k (s n)) t.edges;
    Hashtbl.iter (fun k n -> bump dst.entries k (s n)) t.entries;
    Hashtbl.iter (fun k n -> bump dst.deps k (s n)) t.deps;
    Hashtbl.iter (fun k n -> bump dst.writes k (s n)) t.writes;
    Hashtbl.iter (fun k n -> bump dst.strides k (s n)) t.strides;
    Hashtbl.iter
      (fun (func, header) o ->
        let o' =
          {
            o_iters = s o.o_iters;
            o_forks = s o.o_forks;
            o_commits = s o.o_commits;
            o_violations = s o.o_violations;
            o_faults = s o.o_faults;
            o_kills = s o.o_kills;
            o_despecs = s o.o_despecs;
            o_serial_reexecs = s o.o_serial_reexecs;
            o_stale_other = s o.o_stale_other;
            o_stale_regions =
              List.filter_map
                (fun (sid, n) ->
                  let n = s n in
                  if n > 0 then Some (sid, n) else None)
                o.o_stale_regions;
            o_svp =
              List.filter_map
                (fun (vid, (p, h, m)) ->
                  let p = s p and h = s h and m = s m in
                  if p > 0 || h > 0 || m > 0 then Some (vid, (p, h, m))
                  else None)
                o.o_svp;
          }
        in
        if not (obs_is_zero o') then add_observation dst ~func ~header o')
      t.telem
  end;
  dst

(* ------------------------------------------------------------------ *)
(* Canonical JSON *)

let to_json t =
  let blocks =
    List.map
      (fun ((f, b), n) ->
        Json.Obj [ ("func", Json.Str f); ("block", Json.Int b); ("count", Json.Int n) ])
      (sorted_bindings t.blocks)
  in
  let edges =
    List.map
      (fun ((f, s, d), n) ->
        Json.Obj
          [
            ("func", Json.Str f); ("src", Json.Int s); ("dst", Json.Int d);
            ("count", Json.Int n);
          ])
      (sorted_bindings t.edges)
  in
  let entries =
    List.map
      (fun (f, n) -> Json.Obj [ ("func", Json.Str f); ("count", Json.Int n) ])
      (sorted_bindings t.entries)
  in
  let deps =
    List.map
      (fun (((f, h), w, r, k), n) ->
        Json.Obj
          [
            ("func", Json.Str f); ("header", Json.Int h);
            ("writer", Json.Int w); ("reader", Json.Int r);
            ("kind", Json.Str (Dep_profile.string_of_kind k));
            ("count", Json.Int n);
          ])
      (sorted_bindings t.deps)
  in
  let writes =
    List.map
      (fun (((f, h), w), n) ->
        Json.Obj
          [
            ("func", Json.Str f); ("header", Json.Int h);
            ("writer", Json.Int w); ("count", Json.Int n);
          ])
      (sorted_bindings t.writes)
  in
  let values =
    List.map
      (fun ((f, iid, s), n) ->
        Json.Obj
          [
            ("func", Json.Str f); ("iid", Json.Int iid);
            (* int64 strides travel as strings: Json.Int is an OCaml int *)
            ("stride", Json.Str (Int64.to_string s));
            ("count", Json.Int n);
          ])
      (sorted_bindings t.strides)
  in
  let telemetry =
    List.map
      (fun ((f, h), o) ->
        Json.Obj
          [
            ("func", Json.Str f); ("header", Json.Int h);
            ("iters", Json.Int o.o_iters); ("forks", Json.Int o.o_forks);
            ("commits", Json.Int o.o_commits);
            ("violations", Json.Int o.o_violations);
            ("faults", Json.Int o.o_faults); ("kills", Json.Int o.o_kills);
            ("despecs", Json.Int o.o_despecs);
            ("serial_reexecs", Json.Int o.o_serial_reexecs);
            ("stale_other", Json.Int o.o_stale_other);
            ( "stale_regions",
              Json.List
                (List.map
                   (fun (sid, n) ->
                     Json.Obj [ ("sid", Json.Int sid); ("count", Json.Int n) ])
                   o.o_stale_regions) );
            ( "svp",
              Json.List
                (List.map
                   (fun (vid, (p, h, m)) ->
                     Json.Obj
                       [
                         ("vid", Json.Int vid); ("predicts", Json.Int p);
                         ("hits", Json.Int h); ("mispredicts", Json.Int m);
                       ])
                   o.o_svp) );
          ])
      (sorted_bindings t.telem)
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("blocks", Json.List blocks);
      ("edges", Json.List edges);
      ("entries", Json.List entries);
      ("deps", Json.List deps);
      ("writes", Json.List writes);
      ("values", Json.List values);
      ("telemetry", Json.List telemetry);
    ]

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let str key j =
  match Json.member key j with
  | Some (Json.Str s) -> s
  | _ -> fail "missing string %S" key

let int key j =
  match Json.member key j with
  | Some (Json.Int n) -> n
  | _ -> fail "missing int %S" key

let arr key j =
  match Json.member key j with
  | Some (Json.List l) -> l
  | _ -> fail "missing array %S" key

let of_json j =
  try
    (match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> ()
    | _ -> fail "schema mismatch");
    let t = empty () in
    List.iter
      (fun e -> bump t.blocks (str "func" e, int "block" e) (int "count" e))
      (arr "blocks" j);
    List.iter
      (fun e ->
        bump t.edges (str "func" e, int "src" e, int "dst" e) (int "count" e))
      (arr "edges" j);
    List.iter
      (fun e -> bump t.entries (str "func" e) (int "count" e))
      (arr "entries" j);
    List.iter
      (fun e ->
        let kind =
          match Dep_profile.kind_of_string (str "kind" e) with
          | Some k -> k
          | None -> fail "bad dep kind"
        in
        bump t.deps
          ((str "func" e, int "header" e), int "writer" e, int "reader" e, kind)
          (int "count" e))
      (arr "deps" j);
    List.iter
      (fun e ->
        bump t.writes
          ((str "func" e, int "header" e), int "writer" e)
          (int "count" e))
      (arr "writes" j);
    List.iter
      (fun e ->
        let stride =
          match Int64.of_string_opt (str "stride" e) with
          | Some s -> s
          | None -> fail "bad stride"
        in
        bump t.strides (str "func" e, int "iid" e, stride) (int "count" e))
      (arr "values" j);
    List.iter
      (fun e ->
        add_observation t ~func:(str "func" e) ~header:(int "header" e)
          {
            o_iters = int "iters" e;
            o_forks = int "forks" e;
            o_commits = int "commits" e;
            o_violations = int "violations" e;
            o_faults = int "faults" e;
            o_kills = int "kills" e;
            o_despecs = int "despecs" e;
            o_serial_reexecs = int "serial_reexecs" e;
            o_stale_other = int "stale_other" e;
            o_stale_regions =
              List.map
                (fun r -> (int "sid" r, int "count" r))
                (arr "stale_regions" e);
            o_svp =
              (* absent in pre-1.6 stores: default to no predictions *)
              (match Json.member "svp" e with
              | Some (Json.List l) ->
                List.map
                  (fun r ->
                    ( int "vid" r,
                      (int "predicts" r, int "hits" r, int "mispredicts" r) ))
                  l
              | Some _ -> fail "bad svp"
              | None -> []);
          })
      (arr "telemetry" j);
    Ok t
  with Malformed m -> Error m

let digest t =
  Digest.to_hex (Digest.string (Json.to_string ~minify:true (to_json t)))

let save t path = Json.to_file path (to_json t)

let load path =
  if not (Sys.file_exists path) then empty ()
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception _ -> empty ()
    | text -> (
      match Json.of_string text with
      | Error e ->
        Spt_obs.Log.warn "[feedback] %s: unreadable profile store (%s)" path e;
        empty ()
      | Ok j -> (
        match of_json j with
        | Ok t ->
          Spt_obs.Metrics.inc m_loaded;
          t
        | Error e ->
          Spt_obs.Log.warn "[feedback] %s: malformed profile store (%s)" path
            e;
          empty ()))
