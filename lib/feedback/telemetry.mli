(** Bridging runtime results and the profile store: exports the
    runtime's per-loop misspeculation counters
    ({!Spt_runtime.Runtime.loop_stats}) into {!Profile_store} keyed by
    (function, loop header), and renders stored observations in the
    shape the compilation pipeline consumes
    ({!Spt_driver.Pipeline.loop_obs}). *)

(** Map runtime loop ids to (function, header) — one entry per
    transformed loop of the compilation. *)
val loops_of : Spt_driver.Pipeline.spt_compilation -> (int * (string * int)) list

(** Record every loop's observed outcome from one runtime execution
    into the store (counts add across runs). *)
val record :
  Profile_store.t ->
  Spt_driver.Pipeline.spt_compilation ->
  Spt_runtime.Runtime.result ->
  unit

(** The store's observations as pipeline feedback input. *)
val observations :
  Profile_store.t -> ((string * int) * Spt_driver.Pipeline.loop_obs) list
