(** The experiment harness: regenerates every table and figure of the
    paper's evaluation (§8) on the ten synthetic SPEC2000Int-like
    workloads, plus the ablation studies DESIGN.md calls out and a set
    of Bechamel micro-benchmarks of the compiler itself.

    Run with: dune exec bench/main.exe
    (set SPT_BENCH_QUICK=1 for a reduced run: three workloads, no
    microbenchmarks; SPT_BENCH_JSON overrides the machine-readable
    summary path, default BENCH_results.json) *)

open Spt_driver
module Tls = Spt_tlsim.Tls_machine

let quick = Sys.getenv_opt "SPT_BENCH_QUICK" <> None

(* the summary lands next to dune-project (the committed baseline lives
   there) wherever the harness is invoked from *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let json_path =
  match Sys.getenv_opt "SPT_BENCH_JSON" with
  | Some p -> p
  | None ->
    Filename.concat
      (Option.value ~default:(Sys.getcwd ()) (repo_root ()))
      "BENCH_results.json"

(* SPT_BENCH_ONLY=engines runs just the sequential engine comparison
   (what bench/engine_smoke.sh consumes) and still writes the JSON
   summary — the full evaluation takes minutes, the comparison seconds.
   SPT_BENCH_ONLY=profdb likewise runs just the profile-database
   generations scenario (what bench/profdb_smoke.sh consumes), grafting
   its section into an existing summary when one is present. *)
let bench_only = Sys.getenv_opt "SPT_BENCH_ONLY"
let engines_only = bench_only = Some "engines"
let profdb_only = bench_only = Some "profdb"

(* SPT_BENCH_ONLY=depth runs just the K-deep pipelining sweep (what
   bench/depth_smoke.sh consumes), grafting its section like profdb. *)
let depth_only = bench_only = Some "depth"

let workloads =
  if quick then
    List.filter
      (fun w -> List.mem w.Spt_workloads.Suite.name [ "gzip"; "mcf"; "bzip2" ])
      Spt_workloads.Suite.all
  else Spt_workloads.Suite.all

let configs = [ Config.basic; Config.best; Config.anticipated ]

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* Evaluate everything once, reusing results across tables *)

let evaluate_all () =
  List.map
    (fun (config : Config.t) ->
      let results =
        List.map
          (fun w ->
            let t0 = Unix.gettimeofday () in
            let e = Pipeline.evaluate ~config w.Spt_workloads.Suite.source in
            Printf.printf "  [%-11s] %-8s speedup %+6.1f%%  spt-loops %2d  %s  (%.0fs)\n%!"
              config.Config.name w.Spt_workloads.Suite.name
              ((e.Pipeline.speedup -. 1.0) *. 100.0)
              e.Pipeline.n_spt_loops
              (if e.Pipeline.outputs_match then "ok" else "OUTPUT MISMATCH!")
              (Unix.gettimeofday () -. t0);
            if not e.Pipeline.outputs_match then
              failwith
                (Printf.sprintf "output mismatch: %s under %s"
                   w.Spt_workloads.Suite.name config.Config.name);
            (w.Spt_workloads.Suite.name, e))
          workloads
      in
      (config.Config.name, results))
    configs

(* ------------------------------------------------------------------ *)
(* Model vs reality: the simulator's predicted speedup against the
   wall-clock speedup of the real multicore runtime (Spt_runtime).
   On a small container the measured number is usually < 1 -- domains
   contend for one core -- which is itself the point of reporting both. *)

let parallel_jobs =
  match Sys.getenv_opt "SPT_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 2)
  | None -> 2

let measure_parallel best =
  section
    (Printf.sprintf
       "Measured vs predicted speedup (Spt_runtime, %d job(s), best compilation)"
       parallel_jobs);
  let t =
    Spt_util.Table.create
      ~aligns:
        [
          Spt_util.Table.Left; Spt_util.Table.Right; Spt_util.Table.Right;
          Spt_util.Table.Right;
        ]
      [ "program"; "predicted"; "measured"; "achieved" ]
  in
  let rows =
    List.map
      (fun w ->
        let name = w.Spt_workloads.Suite.name in
        let predicted =
          match List.assoc_opt name best with
          | Some e -> e.Pipeline.speedup
          | None -> 1.0
        in
        (* the oracle re-runs the program sequentially; evaluate_all has
           already checked output equality, so skip it here for speed *)
        let runtime_config =
          { (Spt_runtime.Runtime.default_config ()) with oracle = false }
        in
        let timeline = Spt_obs.Timeline.create () in
        let pr =
          Pipeline.run_parallel ~jobs:parallel_jobs ~runtime_config ~timeline
            w.Spt_workloads.Suite.source
        in
        let measured = pr.Pipeline.pr_measured_speedup in
        Spt_util.Table.add_row t
          [
            name;
            Printf.sprintf "%.2fx" predicted;
            Printf.sprintf "%.2fx" measured;
            (if predicted > 0.0 then
               Printf.sprintf "%.0f%%" (100.0 *. measured /. predicted)
             else "-");
          ];
        let attrib =
          Report.attrib_json ~predicted ~workload:name ~timeline pr
        in
        ( Spt_obs.Json.Obj
            [
              ("workload", Spt_obs.Json.Str name);
              ("jobs", Spt_obs.Json.Int pr.Pipeline.pr_jobs);
              ( "engine",
                Spt_obs.Json.Str
                  (Spt_exec.Engine.string_of_kind pr.Pipeline.pr_engine) );
              ( "chunk",
                match pr.Pipeline.pr_chunk with
                | Some n -> Spt_obs.Json.Int n
                | None -> Spt_obs.Json.Str "auto" );
              ("predicted_speedup", Spt_obs.Json.Float predicted);
              ("measured_speedup", Spt_obs.Json.Float measured);
              ( "runtime",
                Spt_runtime.Runtime.stats_json pr.Pipeline.pr_runtime );
              ("attrib", attrib);
            ],
          Spt_obs.Json.prepend
            ("workload", Spt_obs.Json.Str name)
            (Report.gap_json ~predicted ~measured ()) ))
      workloads
  in
  Spt_util.Table.print t;
  (List.map fst rows, List.map snd rows)

(* ------------------------------------------------------------------ *)
(* Sequential engines: the same lowered program executed to completion
   on the tree-walking interpreter and on the flat-bytecode engine.
   The bytecode engine must win on every workload — the claim
   bench/engine_smoke.sh enforces in CI. *)

let engine_comparison () =
  section "Sequential engines: tree-walking vs flat bytecode";
  let t =
    Spt_util.Table.create
      ~aligns:
        [
          Spt_util.Table.Left; Spt_util.Table.Right; Spt_util.Table.Right;
          Spt_util.Table.Right;
        ]
      [ "program"; "tree"; "bytecode"; "speedup" ]
  in
  let rows =
    List.map
      (fun w ->
        let name = w.Spt_workloads.Suite.name in
        let prog = Pipeline.front_end w.Spt_workloads.Suite.source in
        (* best of two runs each, interleaved, to shave scheduler noise
           off the smoke test's strict per-workload assertion *)
        let time f =
          let once () =
            let t0 = Unix.gettimeofday () in
            ignore (f ());
            Unix.gettimeofday () -. t0
          in
          let a = once () in
          min a (once ())
        in
        let tree_s = time (fun () -> Spt_interp.Interp.run prog) in
        let bytecode_s = time (fun () -> Spt_exec.Engine.run prog) in
        Spt_util.Table.add_row t
          [
            name;
            Printf.sprintf "%.3fs" tree_s;
            Printf.sprintf "%.3fs" bytecode_s;
            Printf.sprintf "%.2fx" (tree_s /. bytecode_s);
          ];
        Report.engine_row ~workload:name ~tree_s ~bytecode_s)
      workloads
  in
  Spt_util.Table.print t;
  print_endline
    "(identical program, store and step accounting; the bytecode engine\n\
     compiles once then dispatches over a flat instruction array)";
  rows

(* ------------------------------------------------------------------ *)
(* Feedback: the static cost model's predicted misspeculation next to
   what the runtime measured, and next to what a profile-guided
   recompile (telemetry fed back through the persistent store's
   save/load round-trip) predicts instead *)

module Store = Spt_feedback.Profile_store
module Telemetry = Spt_feedback.Telemetry

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let feedback_comparison () =
  section "Feedback: static vs profile-guided misspeculation cost";
  let demo =
    let root = Option.value ~default:(Sys.getcwd ()) (repo_root ()) in
    ( "feedback_loop",
      read_file (Filename.concat root "examples/src/feedback_loop.c") )
  in
  let cases =
    demo
    :: List.filter_map
         (fun w ->
           if List.mem w.Spt_workloads.Suite.name [ "gzip"; "mcf" ] then
             Some (w.Spt_workloads.Suite.name, w.Spt_workloads.Suite.source)
           else None)
         workloads
  in
  let t =
    Spt_util.Table.create
      ~aligns:
        [
          Spt_util.Table.Left; Spt_util.Table.Left; Spt_util.Table.Right;
          Spt_util.Table.Right; Spt_util.Table.Right; Spt_util.Table.Left;
        ]
      [
        "program"; "loop"; "static cost"; "observed rate"; "guided cost";
        "guided decision";
      ]
  in
  let rows =
    List.concat_map
      (fun (name, src) ->
        let runtime_config =
          { (Spt_runtime.Runtime.default_config ()) with oracle = false }
        in
        let pr = Pipeline.run_parallel ~jobs:parallel_jobs ~runtime_config src in
        let store = Store.empty () in
        let ep, dp, vp = Pipeline.profile_source src in
        Store.absorb_profiles store ep dp vp;
        Telemetry.record store pr.Pipeline.pr_spt pr.Pipeline.pr_runtime;
        (* persistence round-trip: the bench exercises the on-disk path *)
        let tmp = Filename.temp_file "spt_bench_profile" ".json" in
        Store.save store tmp;
        let store = Store.load tmp in
        Sys.remove tmp;
        let guided =
          Pipeline.evaluate ~profile_seed:(Store.seed store)
            ~observations:(Telemetry.observations store) src
        in
        List.filter_map
          (fun (lr : Pipeline.loop_record) ->
            match (lr.Pipeline.lr_decision, lr.Pipeline.lr_cost) with
            | Pipeline.Selected, Some cost ->
              let loop_label =
                Printf.sprintf "%s@bb%d" lr.Pipeline.lr_func
                  lr.Pipeline.lr_header
              in
              let static_frac =
                Spt_cost.Cost_model.predicted_fraction ~cost
                  ~body_size:lr.Pipeline.lr_body_size
              in
              let observed =
                match lr.Pipeline.lr_loop_id with
                | None -> 0.0
                | Some lid -> (
                  match
                    List.assoc_opt lid
                      pr.Pipeline.pr_runtime.Spt_runtime.Runtime.stats
                  with
                  | None -> 0.0
                  | Some st ->
                    let module R = Spt_runtime.Runtime in
                    let bad =
                      st.R.violations + st.R.faults + st.R.kills
                    in
                    float_of_int bad /. float_of_int (max 1 st.R.iters))
              in
              let grec =
                List.find_opt
                  (fun (g : Pipeline.loop_record) ->
                    g.Pipeline.lr_func = lr.Pipeline.lr_func
                    && g.Pipeline.lr_header = lr.Pipeline.lr_header)
                  guided.Pipeline.loops
              in
              let guided_frac, guided_decision =
                match grec with
                | None -> (None, "-")
                | Some g ->
                  ( Option.map
                      (fun c ->
                        Spt_cost.Cost_model.predicted_fraction ~cost:c
                          ~body_size:g.Pipeline.lr_body_size)
                      g.Pipeline.lr_cost,
                    match g.Pipeline.lr_decision with
                    | Pipeline.Selected -> "selected"
                    | Pipeline.Rejected r ->
                      "rejected: " ^ Spt_transform.Select.string_of_reason r )
              in
              Spt_util.Table.add_row t
                [
                  name;
                  loop_label;
                  Printf.sprintf "%.3f" static_frac;
                  Printf.sprintf "%.3f" observed;
                  (match guided_frac with
                  | Some f -> Printf.sprintf "%.3f" f
                  | None -> "-");
                  guided_decision;
                ];
              Some
                (Spt_obs.Json.Obj
                   [
                     ("workload", Spt_obs.Json.Str name);
                     ("loop", Spt_obs.Json.Str loop_label);
                     ("static_cost_fraction", Spt_obs.Json.Float static_frac);
                     ("observed_misspec_rate", Spt_obs.Json.Float observed);
                     ( "guided_cost_fraction",
                       match guided_frac with
                       | Some f -> Spt_obs.Json.Float f
                       | None -> Spt_obs.Json.Null );
                     ("guided_decision", Spt_obs.Json.Str guided_decision);
                   ])
            | _ -> None)
          pr.Pipeline.pr_spt.Pipeline.records)
      cases
  in
  Spt_util.Table.print t;
  print_endline
    "(static cost: predicted misspeculation fraction of the body;\n\
     observed: (violations+faults+kills)/iterations on the real runtime;\n\
     guided: the same prediction after feeding the telemetry back)";
  rows

(* ------------------------------------------------------------------ *)
(* Profile database: the repeated-workload scenario.  The same program
   is run --parallel several times against a fresh database; each run
   ingests its misspeculation telemetry, so from generation 2 on the
   compile is guided by the accumulated entry and the misspeculation
   cost drops — with zero client-side flags beyond the cache dir.
   bench/profdb_smoke.sh asserts the non-increase in CI. *)

let profdb_generations () =
  section
    (Printf.sprintf
       "Profile database: misspeculation across generations (%d job(s))"
       parallel_jobs);
  let root = Option.value ~default:(Sys.getcwd ()) (repo_root ()) in
  let src = read_file (Filename.concat root "examples/src/feedback_loop.c") in
  let dir =
    let base = Filename.temp_file "spt_bench_profdb" "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    base
  in
  let db =
    Spt_profdb.Profdb.create ~tool:Spt_service.Cached.tool_version
      ~dir:(Spt_profdb.Profdb.subdir dir) ()
  in
  let fingerprint = Spt_service.Fingerprint.program (Pipeline.front_end src) in
  let runtime_config =
    { (Spt_runtime.Runtime.default_config ()) with oracle = false }
  in
  let t =
    Spt_util.Table.create
      ~aligns:
        [
          Spt_util.Table.Right; Spt_util.Table.Left; Spt_util.Table.Right;
          Spt_util.Table.Right; Spt_util.Table.Right; Spt_util.Table.Right;
        ]
      [ "gen"; "guided"; "spt loops"; "misspec"; "cost"; "speedup" ]
  in
  let rows = ref [] in
  let gens = 3 in
  for gen = 1 to gens do
    let profile_seed, observations, guided =
      match Spt_profdb.Profdb.lookup db ~fingerprint with
      | Some (store, _) when not (Store.is_empty store) ->
        (Some (Store.seed store), Some (Telemetry.observations store), true)
      | Some _ | None -> (None, None, false)
    in
    let pr =
      Pipeline.run_parallel ~jobs:parallel_jobs ~runtime_config ?profile_seed
        ?observations src
    in
    let fresh = Store.empty () in
    Telemetry.record fresh pr.Pipeline.pr_spt pr.Pipeline.pr_runtime;
    ignore (Spt_profdb.Profdb.ingest db ~fingerprint fresh);
    let module R = Spt_runtime.Runtime in
    let events, cost =
      List.fold_left
        (fun (e, c) ((_, st) : int * R.loop_stats) ->
          let bad = st.R.violations + st.R.faults + st.R.kills in
          (e + bad, c + bad + st.R.serial_reexecs))
        (0, 0) pr.Pipeline.pr_runtime.R.stats
    in
    Spt_util.Table.add_row t
      [
        string_of_int gen;
        (if guided then "yes" else "no");
        string_of_int pr.Pipeline.pr_n_loops;
        string_of_int events;
        string_of_int cost;
        Printf.sprintf "%.2fx" pr.Pipeline.pr_measured_speedup;
      ];
    rows :=
      Spt_obs.Json.Obj
        [
          ("generation", Spt_obs.Json.Int gen);
          ("guided", Spt_obs.Json.Bool guided);
          ("n_spt_loops", Spt_obs.Json.Int pr.Pipeline.pr_n_loops);
          ("misspec_events", Spt_obs.Json.Int events);
          ("misspec_cost", Spt_obs.Json.Int cost);
          ("measured_speedup", Spt_obs.Json.Float pr.Pipeline.pr_measured_speedup);
        ]
      :: !rows
  done;
  Spt_util.Table.print t;
  print_endline
    "(same program, fresh database: generation 1 compiles unguided and\n\
     misspeculates; every run ingests telemetry, so later generations\n\
     compile against the accumulated profile with no client-side flags)";
  Spt_obs.Json.Obj
    [
      ("schema", Spt_obs.Json.Str Spt_profdb.Profdb.schema);
      ("workload", Spt_obs.Json.Str "feedback_loop");
      ("jobs", Spt_obs.Json.Int parallel_jobs);
      ("generations", Spt_obs.Json.List (List.rev !rows));
      ("db", Spt_profdb.Profdb.stats_json db);
    ]

(* ------------------------------------------------------------------ *)
(* Speculation depth: the same pipeline-friendly program executed with
   the in-flight window forced to 1 (the paper's main+1 model) and to
   K > 1 chunks — K-deep DOACROSS pipelining with ordered commit.  The
   accumulator workload rides along: its post-fork loop-carried sum
   used to trip the despeculation valve; runtime value prediction must
   now keep it speculative (despecs = 0).  bench/depth_smoke.sh
   enforces both claims in CI: depth-4 throughput >= depth-1 and an
   accumulator that never despeculates. *)

(* independent iterations with a compute-dense, write-light body: the
   workers do ~100x more work per chunk than the sequential thread
   spends validating and committing it, so throughput is bounded by how
   many chunks are in flight, not by the ordered-commit drain *)
let depth_pipeline_src =
  {|
int n = 6000;
int a[6000];
int b[6000];
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 7 + 3; }
  for (i = 0; i < n; i = i + 1) {
    int x = a[i];
    int acc = 0;
    int j;
    for (j = 0; j < 48; j = j + 1) {
      acc = acc + (((x + j) * (x - j)) & 255);
    }
    b[i] = acc;
  }
  print_int(b[0] + b[1234] + b[5999]);
}
|}

(* a clean loop plus a loop carrying [s] through the post-fork region —
   the pattern DESIGN.md 3f used to document as a known degradation *)
let depth_accumulator_src =
  {|
int n = 20000;
int a[20000];
int b[20000];
void main() {
  int i;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 1; }
  int s = 0;
  for (i = 0; i < n; i = i + 1) {
    int x = a[i];
    int y = x * x + 7;
    b[i] = y - (x & 31);
    s = s + (y & 3);
  }
  print_int(s + b[0] + b[19999]);
}
|}

let depth_sweep () =
  section
    (Printf.sprintf "Speculation depth: K-deep pipelining (%d job(s))"
       parallel_jobs);
  let module R = Spt_runtime.Runtime in
  let runtime_config = { (R.default_config ()) with R.oracle = false } in
  (* best of two runs per depth, like the engine comparison, to shave
     scheduler noise off the smoke test's depth-4 >= depth-1 assertion *)
  let run ?depth src =
    let once () =
      Pipeline.run_parallel ~jobs:parallel_jobs ?depth ~runtime_config src
    in
    let a = once () in
    let b = once () in
    if a.Pipeline.pr_runtime.R.wall_time <= b.Pipeline.pr_runtime.R.wall_time
    then a
    else b
  in
  let totals (pr : Pipeline.parallel_run) =
    List.fold_left
      (fun (c, k, v, d, (sp, sh, sm)) ((_, st) : int * R.loop_stats) ->
        let p, h, m = R.svp_totals st in
        ( c + st.R.commits,
          k + st.R.kills,
          v + st.R.violations,
          d + st.R.despecs,
          (sp + p, sh + h, sm + m) ))
      (0, 0, 0, 0, (0, 0, 0))
      pr.Pipeline.pr_runtime.R.stats
  in
  let t =
    Spt_util.Table.create
      ~aligns:
        [
          Spt_util.Table.Right; Spt_util.Table.Right; Spt_util.Table.Right;
          Spt_util.Table.Right; Spt_util.Table.Right; Spt_util.Table.Right;
          Spt_util.Table.Right;
        ]
      [ "depth"; "wall"; "speedup"; "commits"; "kills"; "violations"; "svp" ]
  in
  let rows =
    List.map
      (fun depth ->
        let pr = run ~depth depth_pipeline_src in
        let commits, kills, violations, despecs, svp = totals pr in
        let predicts, hits, _ = svp in
        Spt_util.Table.add_row t
          [
            string_of_int depth;
            Printf.sprintf "%.3fs" pr.Pipeline.pr_runtime.R.wall_time;
            Printf.sprintf "%.2fx" pr.Pipeline.pr_measured_speedup;
            string_of_int commits;
            string_of_int kills;
            string_of_int violations;
            Printf.sprintf "%d/%d" hits predicts;
          ];
        Report.depth_row ~depth ~wall_s:pr.Pipeline.pr_runtime.R.wall_time
          ~speedup:pr.Pipeline.pr_measured_speedup ~commits ~kills ~violations
          ~despecs ~svp)
      [ 1; 2; 4 ]
  in
  Spt_util.Table.print t;
  (* the accumulator runs at the cost model's depth: the claim is about
     the default pipeline, not a hand-picked configuration *)
  let acc = run depth_accumulator_src in
  let _, _, _, despecs, (predicts, hits, _) = totals acc in
  if despecs > 0 then
    failwith
      (Printf.sprintf
         "accumulator workload despeculated (%d valve trip(s)): runtime \
          value prediction regressed"
         despecs);
  Printf.printf
    "\naccumulator workload: despecs %d, svp %d/%d hit(s) — the \n\
     loop-carried sum stays speculative via runtime value prediction\n"
    despecs hits predicts;
  let accumulator =
    Spt_obs.Json.Obj
      [
        ("workload", Spt_obs.Json.Str "accumulator");
        ( "depth",
          Spt_obs.Json.Int
            (match acc.Pipeline.pr_runtime.R.stats with
            | (_, st) :: _ -> st.R.depth
            | [] -> 0) );
        ("despecs", Spt_obs.Json.Int despecs);
        ("svp_predicts", Spt_obs.Json.Int predicts);
        ("svp_hits", Spt_obs.Json.Int hits);
      ]
  in
  let cores = Domain.recommended_domain_count () in
  if cores <= parallel_jobs then
    Printf.printf
      "(%d usable core(s) for %d worker(s) + the sequential thread: the \n\
       deeper pipelines time-share one core, so the sweep measures \n\
       K-deep overhead here, not speedup — depth_smoke.sh scales its \n\
       assertion by the recorded core count)\n"
      cores parallel_jobs;
  Report.depth_json ~workload:"depth_pipeline" ~jobs:parallel_jobs ~cores
    ~accumulator rows

(* ------------------------------------------------------------------ *)
(* Ablation 1: cost-combination rules (Independent vs Per_seed vs Max) *)

let ablation_cost_rules () =
  section "Ablation: cost-propagation rule (paper's independence rule vs per-seed)";
  let t =
    Spt_util.Table.create
      ~aligns:[ Spt_util.Table.Left; Spt_util.Table.Right; Spt_util.Table.Right; Spt_util.Table.Right ]
      [ "loop"; "per-seed (default)"; "independent (paper)"; "max-rule" ]
  in
  (* collect every loop's three costs on *profiled* graphs (without
     probabilities below 1 every rule saturates identically), then show
     the most divergent: the rules only differ where paths reconverge *)
  let rows = ref [] in
  List.iter
    (fun w ->
      let prog = Pipeline.front_end w.Spt_workloads.Suite.source in
      List.iter
        (fun (_, f) ->
          ignore (Spt_transform.Unroll.run f Spt_transform.Unroll.default_policy))
        prog.Spt_ir.Ir.funcs;
      Pipeline.to_ssa prog;
      let eff = Spt_depgraph.Effects.compute prog in
      let ep, dp, _ = Pipeline.profile_all prog ~max_steps:100_000_000 in
      let dg_config =
        {
          Spt_depgraph.Depgraph.default_config with
          Spt_depgraph.Depgraph.edge_profile = Some ep;
          dep_profile = Some dp;
        }
      in
      List.iter
        (fun (name, f) ->
          List.iter
            (fun (l : Spt_ir.Loops.loop) ->
              let g = Spt_depgraph.Depgraph.build ~config:dg_config eff f l in
              if Spt_depgraph.Depgraph.violation_candidates g <> [] then begin
                let cm = Spt_cost.Cost_model.build g in
                let cost combine =
                  Spt_cost.Cost_model.misspeculation_cost ~combine cm
                    ~prefork:Spt_cost.Cost_model.Iset.empty
                in
                let ps = cost `Per_seed
                and ind = cost `Independent
                and mx = cost `Max_rule in
                rows :=
                  ( ind -. ps,
                    Printf.sprintf "%s:%s@bb%d" w.Spt_workloads.Suite.name name
                      l.Spt_ir.Loops.header,
                    ps, ind, mx )
                  :: !rows
              end)
            (Spt_ir.Loops.find f))
        prog.Spt_ir.Ir.funcs)
    (List.filter
       (fun w ->
         List.mem w.Spt_workloads.Suite.name [ "gzip"; "twolf"; "gcc"; "mcf" ])
       workloads);
  let sorted = List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare b a) !rows in
  List.iteri
    (fun k (_, label, ps, ind, mx) ->
      if k < 12 then
        Spt_util.Table.add_row t
          [
            label;
            Printf.sprintf "%.1f" ps;
            Printf.sprintf "%.1f" ind;
            Printf.sprintf "%.1f" mx;
          ])
    sorted;
  Spt_util.Table.print t;
  print_endline
    "(empty pre-fork partitions; the independence rule over-estimates on\n\
     reconvergent graphs -- the conservatism the paper observes in Fig. 19)"

(* Ablation 2: branch-and-bound pruning vs exhaustive search *)
let ablation_pruning () =
  section "Ablation: partition-search pruning (heuristics of 5.2.1)";
  let t =
    Spt_util.Table.create
      ~aligns:[ Spt_util.Table.Left; Spt_util.Table.Right; Spt_util.Table.Right;
                Spt_util.Table.Right; Spt_util.Table.Right ]
      [ "loop"; "VCs"; "nodes (pruned)"; "nodes (full)"; "same optimum" ]
  in
  let count = ref 0 in
  List.iter
    (fun w ->
      if !count < 10 then begin
        let prog = Pipeline.front_end w.Spt_workloads.Suite.source in
        Pipeline.to_ssa prog;
        let eff = Spt_depgraph.Effects.compute prog in
        List.iter
          (fun (name, f) ->
            List.iter
              (fun (l : Spt_ir.Loops.loop) ->
                if !count < 10 then begin
                  let g = Spt_depgraph.Depgraph.build eff f l in
                  let vcs = Spt_depgraph.Depgraph.violation_candidates g in
                  if List.length vcs >= 2 && List.length vcs <= 16 then begin
                    incr count;
                    let cm = Spt_cost.Cost_model.build g in
                    let body = Spt_partition.Partition.body_size g in
                    let search pruning =
                      Spt_partition.Partition.search
                        ~options:
                          (Some
                             {
                               (Spt_partition.Partition.default_options
                                  ~body_size:body)
                               with
                               Spt_partition.Partition.use_pruning = pruning;
                             })
                        cm g
                    in
                    match (search true, search false) with
                    | Spt_partition.Partition.Found a, Spt_partition.Partition.Found b ->
                      Spt_util.Table.add_row t
                        [
                          Printf.sprintf "%s:%s@bb%d" w.Spt_workloads.Suite.name
                            name l.Spt_ir.Loops.header;
                          string_of_int (List.length vcs);
                          string_of_int a.Spt_partition.Partition.nodes_explored;
                          string_of_int b.Spt_partition.Partition.nodes_explored;
                          string_of_bool
                            (Float.abs
                               (a.Spt_partition.Partition.cost
                               -. b.Spt_partition.Partition.cost)
                            < 1e-6);
                        ]
                    | _ -> ()
                  end
                end)
              (Spt_ir.Loops.find f))
          prog.Spt_ir.Ir.funcs
      end)
    workloads;
  Spt_util.Table.print t

(* Ablation 3: function inlining (extension beyond the paper) *)
let ablation_inlining () =
  section
    "Ablation: small-function inlining (extension; the paper keeps calls opaque)";
  let t =
    Spt_util.Table.create
      ~aligns:[ Spt_util.Table.Left; Spt_util.Table.Right; Spt_util.Table.Right ]
      [ "program"; "best"; "best + inlining" ]
  in
  List.iter
    (fun name ->
      let w = Spt_workloads.Suite.find name in
      let s config =
        (Pipeline.evaluate ~config w.Spt_workloads.Suite.source).Pipeline.speedup
      in
      Spt_util.Table.add_row t
        [
          name;
          Printf.sprintf "%+.1f%%" ((s Config.best -. 1.0) *. 100.0);
          Printf.sprintf "%+.1f%%" ((s Config.best_inline -. 1.0) *. 100.0);
        ])
    [ "crafty"; "twolf"; "parser" ];
  Spt_util.Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler itself *)

let microbench () =
  section "Compiler micro-benchmarks (Bechamel)";
  let src = (Spt_workloads.Suite.find "gzip").Spt_workloads.Suite.source in
  let ast = Spt_srclang.Typecheck.parse_and_check src in
  let eff, f, loop =
    let prog = Pipeline.front_end src in
    Pipeline.to_ssa prog;
    let eff = Spt_depgraph.Effects.compute prog in
    let f = Spt_ir.Ir.func_of_program prog "main" in
    let loop =
      List.hd
        (List.filter
           (fun (l : Spt_ir.Loops.loop) ->
             Spt_ir.Loops.Iset.cardinal l.Spt_ir.Loops.body > 3)
           (Spt_ir.Loops.find f))
    in
    (eff, f, loop)
  in
  let graph = Spt_depgraph.Depgraph.build eff f loop in
  let cm = Spt_cost.Cost_model.build graph in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"spt"
      [
        Test.make ~name:"parse+typecheck"
          (Staged.stage (fun () -> Spt_srclang.Typecheck.parse_and_check src));
        Test.make ~name:"lower"
          (Staged.stage (fun () -> Spt_ir.Lower.lower_program ast));
        Test.make ~name:"ssa-construct+optimize"
          (Staged.stage (fun () ->
               let prog = Spt_ir.Lower.lower_program ast in
               Pipeline.to_ssa prog));
        Test.make ~name:"depgraph-build"
          (Staged.stage (fun () -> Spt_depgraph.Depgraph.build eff f loop));
        Test.make ~name:"cost-model-eval"
          (Staged.stage (fun () ->
               Spt_cost.Cost_model.misspeculation_cost cm
                 ~prefork:Spt_cost.Cost_model.Iset.empty));
        Test.make ~name:"partition-search"
          (Staged.stage (fun () -> Spt_partition.Partition.search cm graph));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Spt_util.Table.create
      ~aligns:[ Spt_util.Table.Left; Spt_util.Table.Right ]
      [ "phase"; "time/run" ]
  in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.1f us" (e /. 1000.0)
        | _ -> "-"
      in
      Spt_util.Table.add_row t [ name; est ])
    results;
  Spt_util.Table.print t

(* ------------------------------------------------------------------ *)

let () =
  (* the counter dump in the JSON summary needs the registry live *)
  Spt_obs.Metrics.set_enabled true;
  if engines_only then begin
    let engines = engine_comparison () in
    Spt_obs.Json.to_file json_path
      (Report.bench_json ~quick:true ~engines ~per_config:[] ~parallel:[] ());
    Printf.printf "\nmachine-readable summary written to %s\n" json_path;
    exit 0
  end;
  if profdb_only then begin
    let profdb = profdb_generations () in
    (* graft the section into an existing summary (the committed
       baseline keeps its other sections); fresh summary otherwise *)
    let summary =
      match
        if Sys.file_exists json_path then
          Spt_obs.Json.of_string (read_file json_path)
        else Error "absent"
      with
      | Ok (Spt_obs.Json.Obj _ as j) -> Spt_obs.Json.set ("profdb", profdb) j
      | Ok _ | Error _ ->
        Report.bench_json ~quick:true ~profdb ~per_config:[] ~parallel:[] ()
    in
    Spt_obs.Json.to_file json_path summary;
    Printf.printf "\nmachine-readable summary written to %s\n" json_path;
    exit 0
  end;
  if depth_only then begin
    let depth = depth_sweep () in
    (* same grafting contract as profdb: keep the committed baseline's
       other sections when one is present *)
    let summary =
      match
        if Sys.file_exists json_path then
          Spt_obs.Json.of_string (read_file json_path)
        else Error "absent"
      with
      | Ok (Spt_obs.Json.Obj _ as j) -> Spt_obs.Json.set ("depth", depth) j
      | Ok _ | Error _ ->
        Report.bench_json ~quick:true ~depth ~per_config:[] ~parallel:[] ()
    in
    Spt_obs.Json.to_file json_path summary;
    Printf.printf "\nmachine-readable summary written to %s\n" json_path;
    exit 0
  end;
  section "Evaluating the workloads under 3 compiler configurations";
  let per_config = evaluate_all () in
  let best = List.assoc "best" per_config in
  let parallel, gap = measure_parallel best in
  let engines = engine_comparison () in
  let feedback = feedback_comparison () in
  let profdb = profdb_generations () in
  let depth = depth_sweep () in

  (* machine-readable summary next to the text tables, one entry per
     configuration; counters are cumulative over the whole run *)
  Spt_obs.Json.to_file json_path
    (Report.bench_json ~quick ~per_config ~parallel ~gap ~feedback ~engines
       ~depth ~profdb ());
  Printf.printf "\nmachine-readable summary written to %s\n" json_path;

  section
    "Table 1: IPC of the non-SPT base reference (the IR has no no-ops to exclude)";
  print_string (Report.table1 best);

  section "Figure 14: program speedups under the three compilations";
  print_string (Report.fig14 per_config);

  section "Figure 15: breakdown of loop candidates (best compilation)";
  print_string (Report.fig15 best);

  section "Figure 16: runtime coverage of SPT loops (best compilation)";
  print_string (Report.fig16 best);

  section "Figure 17: SPT loop body sizes and pre-fork regions (best compilation)";
  print_string (Report.fig17 best);

  section "Figure 18: misspeculation ratio and per-loop speedup (best compilation)";
  print_string (Report.fig18 best);

  section "Figure 19: estimated misspeculation cost vs actual re-execution ratio";
  print_string (Report.fig19 best);

  if not quick then begin
    ablation_inlining ();
    ablation_cost_rules ();
    ablation_pruning ();
    microbench ()
  end;
  section "Done"
