#!/bin/sh
# Smoke test for the fleet profile database: run the misspeculating
# demo workload three times against a fresh database with *no*
# client-side profile flags — only --cache-dir.  Every run ingests its
# telemetry, so generation 2+ compiles guided by the accumulated entry
# and the misspeculation cost (violations + faults + kills) must never
# increase across generations, and must strictly drop from generation
# 1 to the last.  Then check the profdb CLI surface (stat/export/gc)
# and the bench scenario's committed JSON section.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build bin/sptc.exe bench/main.exe"
dune build bin/sptc.exe bench/main.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
src=examples/src/feedback_loop.c
gens=3

fail() {
  echo "profdb_smoke: FAIL: $1" >&2
  exit 1
}

# misspeculation cost of one run: sum of violations+faults+kills over
# every "; loop N: ..." line (a guided run that rejects the loop prints
# none, which sums to 0)
misspec_cost() {
  awk '/^; loop /{
    for (i = 1; i <= NF; i++) {
      if ($(i+1) ~ /^violations/ || $(i+1) ~ /^faults/ || $(i+1) ~ /^kills/)
        sum += $(i)
    }
  } END { print sum + 0 }' "$1"
}

echo "== $gens generations of: sptc run --parallel --cache-dir (no profile flags)"
prev=""
first=""
last=""
for gen in $(seq 1 "$gens"); do
  out="$tmpdir/gen$gen.txt"
  SPT_JOBS=2 dune exec bin/sptc.exe -- run "$src" --parallel -c best -j 2 \
    --cache-dir "$tmpdir/cache" --log-level warn > "$out"
  grep -q "^; profdb: generation $gen" "$out" \
    || fail "generation $gen not acknowledged by the database"
  cost=$(misspec_cost "$out")
  echo "   gen $gen: misspec cost $cost"
  [ -z "$prev" ] || [ "$cost" -le "$prev" ] \
    || fail "misspeculation cost increased across generations ($prev -> $cost)"
  [ -n "$first" ] || first=$cost
  prev=$cost
  last=$cost
done
[ "$first" -gt 0 ] || fail "generation 1 never misspeculated (demo is broken)"
[ "$last" -lt "$first" ] \
  || fail "misspeculation cost never dropped ($first -> $last)"
grep -q "compile guided by gen" "$tmpdir/gen$gens.txt" \
  || fail "generation $gens compile was not database-guided"

echo "== sptc profdb stat"
dune exec bin/sptc.exe -- profdb stat --cache-dir "$tmpdir/cache" \
  --json "$tmpdir/stat.json" > "$tmpdir/stat.txt"
grep -q '"spt-profdb-v1"' "$tmpdir/stat.json" || fail "stat JSON lacks schema tag"
grep -q '"max_generation": '"$gens" "$tmpdir/stat.json" \
  || fail "database entry is not at generation $gens"
grep -q 'profile db:' "$tmpdir/stat.txt" || fail "stat rendered no census"

echo "== sptc profdb export round-trips into --profile-in"
dune exec bin/sptc.exe -- profdb export --cache-dir "$tmpdir/cache" \
  -o "$tmpdir/exported.json" > /dev/null
grep -q '"spt-profile-v1"' "$tmpdir/exported.json" \
  || fail "exported store lacks the profile schema tag"
dune exec bin/sptc.exe -- compile "$src" -c best \
  --profile-in "$tmpdir/exported.json" --no-cache --log-level warn \
  > "$tmpdir/guided.txt"
guided_loops=$(sed -n 's/^SPT loops *: *\([0-9]*\).*$/\1/p' "$tmpdir/guided.txt" | head -n 1)
[ "$guided_loops" -eq 0 ] \
  || fail "exported profile did not steer the compile ($guided_loops SPT loops)"

echo "== sptc profdb gc drops a corrupt entry"
echo 'not json' > "$tmpdir/cache/spt-profdb-v1/corrupt.json"
dune exec bin/sptc.exe -- profdb gc --cache-dir "$tmpdir/cache" > "$tmpdir/gc.txt"
grep -q '1 invalid file(s) dropped' "$tmpdir/gc.txt" \
  || fail "gc did not drop the corrupt entry"

echo "== bench scenario (SPT_BENCH_ONLY=profdb) + sptc top render"
SPT_BENCH_ONLY=profdb SPT_BENCH_JSON="$tmpdir/bench.json" \
  dune exec bench/main.exe > "$tmpdir/bench.txt"
grep -q '"spt-profdb-v1"' "$tmpdir/bench.json" || fail "bench JSON lacks profdb section"
dune exec bin/sptc.exe -- top "$tmpdir/bench.json" > "$tmpdir/top.txt"
grep -q 'misspeculation across generations' "$tmpdir/top.txt" \
  || fail "sptc top did not render the generations table"

echo "profdb_smoke: OK (misspec cost $first -> $last over $gens generations, zero client flags)"
