#!/bin/sh
# Smoke test for the differential fuzzer:
#   1. a clean campaign (seed 42, 25 cases) over the full oracle matrix
#      must find zero divergences and emit a valid spt-fuzz-v1 report;
#   2. an injected transform fault (drop-prefork-stmt) must be caught
#      (exit 2) and shrunk to a <= 15-line reproducer;
#   3. the committed corpus under test/corpus must replay clean.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build bin/sptc.exe"
dune build bin/sptc.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
clean="$tmpdir/clean.json"
inject="$tmpdir/inject.json"

fail() {
  echo "fuzz_smoke: FAIL: $1" >&2
  exit 1
}

# pull a top-level numeric field out of a pretty-printed spt-fuzz-v1
# report ("key": value)
field() {
  sed -n "s/^.*\"$2\": *\([0-9]*\),*$/\1/p" "$1" | head -n 1
}

echo "== clean campaign: seed 42, 25 cases, full matrix"
dune exec bin/sptc.exe -- fuzz --seed 42 --count 25 --json "$clean" \
  --log-level warn \
  || fail "clean campaign exited non-zero (divergence or error)"

[ -s "$clean" ] || fail "report $clean missing or empty"
grep -q '"spt-fuzz-v1"' "$clean" || fail "report lacks the spt-fuzz-v1 schema tag"
[ "$(field "$clean" cases)" = 25 ] || fail "report does not cover 25 cases"
[ "$(field "$clean" divergent)" = 0 ] \
  || fail "clean campaign reported $(field "$clean" divergent) divergence(s)"
[ "$(field "$clean" skipped)" = 0 ] \
  || fail "clean campaign skipped $(field "$clean" skipped) case(s)"
[ "$(field "$clean" spt_loops)" -gt 0 ] \
  || fail "campaign speculated no loops at all"

echo "== injected fault: drop-prefork-stmt must be caught and shrunk"
set +e
dune exec bin/sptc.exe -- fuzz --seed 42 --index 0 --count 1 \
  --inject drop-prefork-stmt --json "$inject" --log-level warn \
  >"$tmpdir/inject.out" 2>&1
code=$?
set -e
[ "$code" = 2 ] || fail "injected fault run exited $code, want 2"
[ "$(field "$inject" fault_fired)" -gt 0 ] || fail "fault never fired"
shrunk=$(field "$inject" shrunk_loc)
[ -n "$shrunk" ] || fail "no shrunk reproducer in the report"
[ "$shrunk" -le 15 ] || fail "reproducer is $shrunk lines, want <= 15"
grep -q "sptc fuzz --seed 42 --index 0" "$tmpdir/inject.out" \
  || fail "summary lacks the reproduce line"

echo "== corpus replay: test/corpus must stay clean"
dune exec bin/sptc.exe -- fuzz --replay test/corpus --log-level warn \
  || fail "corpus replay diverged"

echo "fuzz_smoke: OK (25 clean cases; fault caught, shrunk to ${shrunk} lines; corpus clean)"
