#!/bin/sh
# Smoke test for the service load generator: run `sptc loadtest` with a
# handful of concurrent clients against a fresh cache and check that the
# spt-loadtest-v1 report is well-formed, that no reply errored in either
# phase, and that the concurrent phase beat the serial replay of the
# same stream.  Finally render the report through `sptc top`.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build bin/sptc.exe"
dune build bin/sptc.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cache="$tmpdir/cache"
report="$tmpdir/loadtest.json"

fail() {
  echo "loadtest_smoke: FAIL: $1" >&2
  exit 1
}

# pull a numeric field out of the report ("key": value); first match
field() {
  sed -n "s/^.*\"$2\": *\(-\{0,1\}[0-9.][0-9.e+-]*\).*$/\1/p" "$1" | head -n 1
}

echo "== sptc loadtest (6 clients, fresh --cache-dir)"
# `sptc loadtest` itself exits non-zero on any errored reply
dune exec bin/sptc.exe -- loadtest \
  --clients 6 --requests 96 --seed 42 \
  --cache-dir "$cache" --json "$report" --log-level warn

[ -s "$report" ] || fail "report $report missing or empty"
grep -q '"spt-loadtest-v1"' "$report" \
  || fail "report lacks the spt-loadtest-v1 schema tag"

errors=$(field "$report" errors)
requests=$(field "$report" requests)
throughput=$(field "$report" throughput_rps)
speedup=$(field "$report" speedup_vs_serial)
p99=$(sed -n 's/^.*"p99": *\([0-9.][0-9.e+-]*\).*$/\1/p' "$report" | head -n 1)

[ "$errors" = 0 ] || fail "concurrent phase reported $errors errored replies"
[ "$requests" = 96 ] || fail "expected 96 measured requests, got $requests"
[ -n "$p99" ] || fail "latency p99 missing from the report"

awk "BEGIN { exit !($throughput > 0) }" \
  || fail "throughput not positive: $throughput req/s"

awk "BEGIN { exit !($speedup > 1.0) }" \
  || fail "concurrent phase not faster than serial: ${speedup}x"

echo "== sptc top renders the report"
top=$(dune exec bin/sptc.exe -- top "$report")
echo "$top" | grep -q "speedup vs serial" \
  || fail "sptc top did not render the loadtest report"

echo "loadtest_smoke: OK (${throughput} req/s concurrent, speedup ${speedup}x, p99 ${p99}s)"
