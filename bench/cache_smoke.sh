#!/bin/sh
# Smoke test for the compilation service: run `sptc batch` twice over
# the example programs with a fresh cache directory and check that the
# second (warm) run hits the artifact cache for >= 90% of the files and
# finishes faster than the first (cold) run.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build bin/sptc.exe"
dune build bin/sptc.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cache="$tmpdir/cache"
cold="$tmpdir/cold.json"
warm="$tmpdir/warm.json"

fail() {
  echo "cache_smoke: FAIL: $1" >&2
  exit 1
}

# pull a top-level numeric field out of a pretty-printed spt-batch-v1
# summary ("key": value)
field() {
  sed -n "s/^.*\"$2\": *\([0-9.]*\).*$/\1/p" "$1" | head -n 1
}

echo "== cold batch over examples/src (fresh --cache-dir)"
dune exec bin/sptc.exe -- batch examples/src/*.c \
  --cache-dir "$cache" --summary "$cold" --log-level warn

echo "== warm batch over the same files"
dune exec bin/sptc.exe -- batch examples/src/*.c \
  --cache-dir "$cache" --summary "$warm" --log-level warn

for f in "$cold" "$warm"; do
  [ -s "$f" ] || fail "summary $f missing or empty"
  grep -q '"spt-batch-v1"' "$f" || fail "$f lacks the spt-batch-v1 schema tag"
done

files=$(field "$warm" files)
hits=$(field "$warm" cache_hits)
failed=$(field "$warm" failed)
timed_out=$(field "$warm" timed_out)
cold_wall=$(field "$cold" wall_s)
warm_wall=$(field "$warm" wall_s)

[ "$failed" = 0 ] || fail "warm run reported $failed failure(s)"
[ "$timed_out" = 0 ] || fail "warm run reported $timed_out timeout(s)"

# >= 90% hits: 10 * hits >= 9 * files
[ "$((10 * hits))" -ge "$((9 * files))" ] \
  || fail "warm hit rate too low: $hits/$files"

awk "BEGIN { exit !($warm_wall < $cold_wall) }" \
  || fail "warm batch ($warm_wall s) not faster than cold ($cold_wall s)"

echo "cache_smoke: OK ($hits/$files hits; cold ${cold_wall}s -> warm ${warm_wall}s)"
