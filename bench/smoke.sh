#!/bin/sh
# Smoke test for the observability pipeline: build + unit tests, then
# one traced/metered compile, failing if the artifacts are malformed or
# missing the counters the experiment scripts consume.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @runtest"
dune build @runtest

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
trace="$tmpdir/trace.json"
metrics="$tmpdir/metrics.json"

echo "== sptc compile examples/src/histogram.c (--trace, --metrics)"
dune exec bin/sptc.exe -- compile examples/src/histogram.c -c best \
  --trace "$trace" --metrics "$metrics" --log-level warn

fail() {
  echo "smoke: FAIL: $1" >&2
  exit 1
}

require_key() {
  # JSON keys are always rendered quoted, so a fixed-string grep works
  grep -q "\"$2\"" "$1" || fail "$1 lacks key \"$2\""
}

[ -s "$trace" ] || fail "trace file missing or empty"
[ -s "$metrics" ] || fail "metrics file missing or empty"

require_key "$trace" traceEvents
require_key "$trace" dur
for name in frontend ssa.construct profile pass1.analyze pass2.select \
  transform simulate.base simulate.spt; do
  require_key "$trace" "$name"
done

require_key "$metrics" spt-metrics-v1
for name in speedup outputs_match \
  pipeline.pass1_candidates pipeline.pass2_selected \
  partition.nodes_explored partition.pruned_by_bound \
  partition.pruned_by_threshold cost.graph_nodes depgraph.edges \
  svp.candidates_tried svp.applied tlsim.misspeculations tlsim.kills \
  interp.steps; do
  require_key "$metrics" "$name"
done

echo "== sptc run examples/src/histogram.c --parallel (runtime smoke)"
dune exec bin/sptc.exe -- run examples/src/histogram.c -c best \
  --parallel --jobs 2 --log-level warn \
  || fail "parallel run failed (oracle mismatch or crash)"

echo "== bench quick run (spt-bench-v2 summary at the repo root)"
# no SPT_BENCH_JSON override: the default must land next to dune-project,
# where the committed BENCH_results.json baseline lives
bench_json="BENCH_results.json"
SPT_BENCH_QUICK=1 dune exec bench/main.exe \
  > "$tmpdir/bench.out" 2>&1 || {
  tail -n 30 "$tmpdir/bench.out" >&2
  fail "bench run failed"
}

[ -s "$bench_json" ] || fail "bench summary missing or empty"
require_key "$bench_json" spt-bench-v2
for name in parallel measured_speedup predicted_speedup jobs runtime \
  forks commits; do
  require_key "$bench_json" "$name"
done

echo "smoke: OK ($(grep -c '"name"' "$trace") trace events)"
