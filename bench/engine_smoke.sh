#!/bin/sh
# Smoke test for the flat-bytecode execution engine: run the sequential
# tree-vs-bytecode comparison over every workload (SPT_BENCH_ONLY=engines
# keeps it to seconds) and assert, per workload, that the bytecode engine
# is strictly faster than the tree-walking interpreter.  Also checks the
# CLI surface: --engine selects an engine, bad --engine/--chunk exit 2.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build bin/sptc.exe bench/main.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail() {
  echo "engine_smoke: FAIL: $1" >&2
  exit 1
}

bench_json="$tmpdir/engines.json"
echo "== bench engine comparison (all workloads)"
SPT_BENCH_ONLY=engines SPT_BENCH_JSON="$bench_json" dune exec bench/main.exe \
  > "$tmpdir/bench.out" 2>&1 || {
  tail -n 30 "$tmpdir/bench.out" >&2
  fail "engine comparison run failed"
}

[ -s "$bench_json" ] || fail "engine summary missing or empty"
grep -q '"engines"' "$bench_json" || fail "summary lacks the engines section"

# one pretty-printed "key": value pair per line; every workload row must
# report bytecode_speedup > 1 (bytecode strictly faster than tree)
rows=$(grep -c '"bytecode_speedup"' "$bench_json" || true)
[ "$rows" -ge 10 ] || fail "expected >= 10 workload rows, saw $rows"

sed -n 's/.*"bytecode_speedup": \(-\{0,1\}[0-9][0-9.e+-]*\).*/\1/p' "$bench_json" \
  | awk '{ if ($1 <= 1.0) { bad++ } n++ }
         END {
           if (n == 0) { print "no speedup rows"; exit 1 }
           if (bad > 0) { printf "%d/%d workload(s) not faster on bytecode\n", bad, n; exit 1 }
         }' || fail "bytecode engine lost to the tree interpreter"

echo "== per-workload speedups"
sed -n 's/.*"workload": "\([a-z0-9_]*\)".*/\1/p' "$bench_json" > "$tmpdir/names"
sed -n 's/.*"bytecode_speedup": \([0-9][0-9.e+-]*\).*/\1/p' "$bench_json" > "$tmpdir/ratios"
paste "$tmpdir/names" "$tmpdir/ratios" | while read -r name ratio; do
  echo "  $name: ${ratio}x"
done

echo "== CLI: --engine tree/bytecode run the same program"
src=examples/src/histogram.c
dune exec bin/sptc.exe -- run "$src" --engine tree > "$tmpdir/tree.out" \
  || fail "run --engine tree failed"
dune exec bin/sptc.exe -- run "$src" --engine bytecode > "$tmpdir/bc.out" \
  || fail "run --engine bytecode failed"
cmp -s "$tmpdir/tree.out" "$tmpdir/bc.out" \
  || fail "tree and bytecode runs disagree on $src"

echo "== CLI: bad --engine / --chunk exit 2"
if dune exec bin/sptc.exe -- run "$src" --engine warp >/dev/null 2>&1; then
  fail "--engine warp should exit nonzero"
fi
dune exec bin/sptc.exe -- run "$src" --engine warp >/dev/null 2>&1 || st=$?
[ "${st:-0}" -eq 2 ] || fail "--engine warp exited ${st:-0}, want 2"
st=0
dune exec bin/sptc.exe -- run "$src" --parallel --chunk 0 >/dev/null 2>&1 || st=$?
[ "$st" -eq 2 ] || fail "--chunk 0 exited $st, want 2"
st=0
dune exec bin/sptc.exe -- run "$src" --parallel --chunk=-3 >/dev/null 2>&1 || st=$?
[ "$st" -eq 2 ] || fail "--chunk=-3 exited $st, want 2"

echo "== CLI: forced chunk on the runtime"
dune exec bin/sptc.exe -- run "$src" --parallel --jobs 2 --chunk 8 \
  --log-level warn > "$tmpdir/chunk.out" || fail "run --parallel --chunk 8 failed"
grep -q "oracle: parallel run matches sequential" "$tmpdir/chunk.out" \
  || fail "chunked parallel run did not pass the oracle"

echo "engine_smoke: OK"
