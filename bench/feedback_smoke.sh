#!/bin/sh
# Smoke test for the profile-guided feedback loop: profile the demo
# workload, run it on the speculative runtime exporting telemetry,
# recompile with the profile, and check that the observed
# misspeculation changed the partition decision (the statically
# selected loop is rejected).  Then check `sptc adapt` drives the same
# sequence to convergence on its own.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build bin/sptc.exe"
dune build bin/sptc.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
profile="$tmpdir/profile.json"
adapt_json="$tmpdir/adapt.json"
src=examples/src/feedback_loop.c

fail() {
  echo "feedback_smoke: FAIL: $1" >&2
  exit 1
}

spt_loops() {
  sed -n 's/^SPT loops *: *\([0-9]*\).*$/\1/p' "$1" | head -n 1
}

echo "== static compile (no profile)"
dune exec bin/sptc.exe -- compile "$src" -c best --log-level warn \
  > "$tmpdir/static.txt"
static=$(spt_loops "$tmpdir/static.txt")
[ "$static" -ge 1 ] || fail "static compile selected no SPT loop"

echo "== capture edge/dep/value profiles"
dune exec bin/sptc.exe -- profile "$src" --profile-out "$profile" \
  --log-level warn
grep -q '"spt-profile-v1"' "$profile" || fail "profile store lacks schema tag"

echo "== parallel run exporting misspeculation telemetry"
SPT_JOBS=2 dune exec bin/sptc.exe -- run "$src" --parallel -c best \
  --profile-in "$profile" --feedback-out "$profile" --log-level warn \
  > "$tmpdir/run.txt"
grep -q 'violations' "$tmpdir/run.txt" || fail "run reported no statistics"

echo "== profile-guided recompile"
dune exec bin/sptc.exe -- compile "$src" -c best --profile-in "$profile" \
  --log-level warn > "$tmpdir/guided.txt"
guided=$(spt_loops "$tmpdir/guided.txt")
[ "$guided" -lt "$static" ] \
  || fail "feedback did not change the partition ($static -> $guided SPT loops)"

echo "== sptc adapt converges"
dune exec bin/sptc.exe -- adapt "$src" -j 2 --json "$adapt_json" \
  --log-level warn > "$tmpdir/adapt.txt"
grep -q 'converged: true' "$tmpdir/adapt.txt" || fail "adapt did not converge"
grep -q '"spt-adapt-v1"' "$adapt_json" || fail "adapt JSON lacks schema tag"

echo "feedback_smoke: OK (static $static SPT loop(s) -> guided $guided; adapt converged)"
