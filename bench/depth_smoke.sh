#!/bin/sh
# Smoke test for K-deep DOACROSS pipelining: the CLI's --depth surface
# must reject nonsense (0, negative, non-integer, sequential runs) and
# accept forced depths end-to-end; the bench's depth sweep must produce
# its spt-depth-v1 section with rows for depths 1/2/4; the accumulator
# workload must never trip the despeculation valve (runtime value
# prediction keeps it speculative); and depth 4 must not lose to
# depth 1 — strictly on a machine with cores to pipeline across, within
# a bounded overhead factor on a core-starved box (the recorded "cores"
# field tells which regime the numbers were measured in).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build bin/sptc.exe bench/main.exe"
dune build bin/sptc.exe bench/main.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
sptc=_build/default/bin/sptc.exe

fail() {
  echo "depth_smoke: FAIL: $1" >&2
  exit 1
}

cat > "$tmpdir/loop.c" <<'EOF'
int n = 2000;
int a[2000];
void main() {
  int i;
  int s = 0;
  for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 1; }
  for (i = 0; i < n; i = i + 1) { s = s + (a[i] & 7); }
  print_int(s);
}
EOF

echo "== --depth validation (exit codes)"
expect_usage() {
  # $1 = label, rest = sptc args; must exit 2 with a message on stderr
  label=$1; shift
  set +e
  "$sptc" "$@" > /dev/null 2> "$tmpdir/err.txt"
  code=$?
  set -e
  [ "$code" -eq 2 ] || fail "$label exited $code, want 2"
  [ -s "$tmpdir/err.txt" ] || fail "$label printed no error"
}
expect_usage "--depth 0" run --parallel --depth 0 "$tmpdir/loop.c"
expect_usage "--depth -1" run --parallel --depth=-1 "$tmpdir/loop.c"
expect_usage "--depth four" run --parallel --depth four "$tmpdir/loop.c"
expect_usage "sequential --depth" run --depth 2 "$tmpdir/loop.c"
"$sptc" run --parallel -j 2 --depth 4 --log-level warn "$tmpdir/loop.c" \
  > /dev/null || fail "a valid forced depth was rejected"

echo "== bench scenario (SPT_BENCH_ONLY=depth)"
json="$tmpdir/bench.json"
SPT_BENCH_ONLY=depth SPT_BENCH_JSON="$json" dune exec bench/main.exe \
  > "$tmpdir/bench.txt"
grep -q '"spt-depth-v1"' "$json" || fail "bench JSON lacks the depth section"

# pull per-depth wall times out of the sweep rows ("depth": K precedes
# "wall_s": S inside each row object; comma-split keeps it line-safe)
walls=$(awk 'BEGIN { RS = "," }
  /"depth":/  { s = $0; sub(/.*"depth": */, "", s);  sub(/[^0-9].*/, "", s); cur = s }
  /"wall_s":/ { s = $0; sub(/.*"wall_s": */, "", s); sub(/[^0-9.].*/, "", s); wall[cur] = s }
  END { print wall[1] + 0, wall[4] + 0 }' "$json")
wall1=${walls% *}
wall4=${walls#* }
cores=$(awk 'BEGIN { RS = "," } /"cores":/ {
  s = $0; sub(/.*"cores": */, "", s); sub(/[^0-9].*/, "", s); print s; exit
}' "$json")
[ -n "$cores" ] || fail "depth section records no core count"
awk -v a="$wall1" -v b="$wall4" 'BEGIN { exit !(a > 0 && b > 0) }' \
  || fail "sweep rows are missing depth-1/depth-4 wall times"

if [ "$cores" -ge 2 ]; then
  # the machine can actually overlap chunks: depth 4 must not be slower
  # than depth 1 (5% noise floor)
  awk -v a="$wall1" -v b="$wall4" 'BEGIN { exit !(b <= a * 1.05) }' \
    || fail "depth-4 slower than depth-1 on $cores cores (${wall1}s -> ${wall4}s)"
  echo "   depth 1 -> 4: ${wall1}s -> ${wall4}s on $cores core(s)"
else
  # one usable core: every domain time-shares it, so the sweep measures
  # pipelining overhead; keep that overhead bounded
  awk -v a="$wall1" -v b="$wall4" 'BEGIN { exit !(b <= a * 1.75) }' \
    || fail "depth-4 overhead unbounded on 1 core (${wall1}s -> ${wall4}s)"
  echo "   depth 1 -> 4: ${wall1}s -> ${wall4}s (1 core: overhead regime)"
fi

echo "== accumulator stays speculative (runtime SVP)"
acc=$(awk 'BEGIN { RS = "," }
  /"accumulator"/ { inacc = 1 }
  inacc && /"despecs":/      { s = $0; sub(/.*"despecs": */, "", s);      sub(/[^0-9].*/, "", s); d = s }
  inacc && /"svp_predicts":/ { s = $0; sub(/.*"svp_predicts": */, "", s); sub(/[^0-9].*/, "", s); p = s }
  inacc && /"svp_hits":/     { s = $0; sub(/.*"svp_hits": */, "", s);     sub(/[^0-9].*/, "", s); h = s }
  END { print d + 0, p + 0, h + 0 }' "$json")
acc_despecs=$(echo "$acc" | cut -d' ' -f1)
acc_predicts=$(echo "$acc" | cut -d' ' -f2)
acc_hits=$(echo "$acc" | cut -d' ' -f3)
[ "$acc_despecs" -eq 0 ] \
  || fail "accumulator workload despeculated ($acc_despecs valve trips)"
[ "$acc_predicts" -gt 0 ] || fail "accumulator never exercised value prediction"
[ "$acc_hits" -gt 0 ] || fail "value prediction never hit on the accumulator"

echo "== sptc top renders the depth section"
"$sptc" top "$json" > "$tmpdir/top.txt"
grep -q 'depth sweep' "$tmpdir/top.txt" \
  || fail "sptc top did not render the depth sweep"
grep -q 'accumulator' "$tmpdir/top.txt" \
  || fail "sptc top did not render the accumulator line"

echo "depth_smoke: OK (depth 1 -> 4: ${wall1}s -> ${wall4}s on $cores core(s), accumulator despecs 0, svp $acc_hits/$acc_predicts)"
