#!/bin/sh
# Smoke test for the overhead-attribution report: run two workloads on
# the real speculative runtime with --attrib, then check — from the raw
# JSON, independently of the report's own arithmetic — that the
# per-domain buckets account for at least 95% of lanes x wall, that the
# timeline's recording overhead stays under 5% of the run, and that
# `sptc top` renders the report.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build bin/sptc.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail() {
  echo "attrib_smoke: FAIL: $1" >&2
  exit 1
}

require_key() {
  grep -q "\"$2\"" "$1" || fail "$1 lacks key \"$2\""
}

# num FILE KEY -> first numeric value bound to KEY (pretty-printed JSON
# renders one "key": value pair per line)
num() {
  sed -n "s/.*\"$2\": \(-\{0,1\}[0-9][0-9.e+-]*\).*/\1/p" "$1" | head -n 1
}

for src in examples/src/scan.c examples/src/histogram.c; do
  name=$(basename "$src")
  attrib="$tmpdir/$name.attrib.json"

  echo "== sptc run $src --parallel --attrib"
  dune exec bin/sptc.exe -- run "$src" -c best \
    --parallel --jobs 2 --attrib "$attrib" --log-level warn \
    || fail "$name: parallel run failed"

  [ -s "$attrib" ] || fail "$name: attribution report missing or empty"
  require_key "$attrib" spt-attrib-v1
  for key in domains totals coverage gap iter_latency_s overhead_fraction \
    compile dispatch chunk fork validate commit rollback idle engine \
    predicted_speedup measured_speedup p50 p95 p99; do
    require_key "$attrib" "$key"
  done

  # recompute coverage from the raw numbers: every lane's bucket lines
  # (including idle) summed against wall_s x lanes
  wall=$(num "$attrib" wall_s)
  lanes=$(grep -c '"domain":' "$attrib")
  [ "$lanes" -ge 2 ] || fail "$name: expected >= 2 domains, saw $lanes"

  # domain bucket lines appear before the totals object; take only the
  # per-domain ones (totals would double-count)
  bucket_sum=$(sed -n '1,/"totals"/p' "$attrib" \
    | sed -n 's/.*"\(compile\|dispatch\|chunk\|fork\|validate\|commit\|rollback\|idle\)": \([0-9][0-9.e+-]*\).*/\2/p' \
    | awk '{ s += $1 } END { printf "%.9f", s }')

  awk -v sum="$bucket_sum" -v wall="$wall" -v lanes="$lanes" 'BEGIN {
    total = wall * lanes;
    if (total <= 0) { print "bad wall/lanes"; exit 1 }
    frac = sum / total;
    if (frac < 0.95) { printf "buckets cover %.1f%% < 95%%\n", frac * 100; exit 1 }
    if (frac > 1.05) { printf "buckets cover %.1f%% > 105%%\n", frac * 100; exit 1 }
  }' || fail "$name: bucket sums do not account for the wall time"

  coverage=$(num "$attrib" coverage)
  awk -v c="$coverage" 'BEGIN { exit !(c >= 0.95) }' \
    || fail "$name: reported coverage $coverage < 0.95"

  overhead=$(num "$attrib" overhead_fraction)
  awk -v f="$overhead" 'BEGIN { exit !(f <= 0.05) }' \
    || fail "$name: timeline overhead $overhead > 5% of the run"

  echo "== sptc top $attrib"
  dune exec bin/sptc.exe -- top "$attrib" > "$tmpdir/$name.top.out" \
    || fail "$name: sptc top failed"
  grep -q "coverage" "$tmpdir/$name.top.out" \
    || fail "$name: top output lacks the coverage line"

  echo "attrib_smoke: $name ok (coverage $coverage, overhead $overhead)"
done

echo "attrib_smoke: OK"
