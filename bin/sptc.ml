(** [sptc] — the SPT compiler driver.

    Subcommands:
    - [run FILE]       interpret a MiniC program
    - [dump-ir FILE]   print the IR (optionally in optimized SSA form)
    - [loops FILE]     list loops with their dependence/cost analysis
    - [compile FILE]   run the full cost-driven SPT pipeline and report
    - [workload NAME]  evaluate one of the built-in SPEC-like workloads
    - [batch FILES…]   compile many programs concurrently, cache-warm
    - [top FILE]       render a JSON report as aligned text tables
    - [serve]          line-delimited JSON compile service on stdin
    - [loadtest]       drive the compile server with concurrent clients
    - [profile FILE]   persist edge/dep/value profiles to a store
    - [profdb]         inspect/export/gc the shared profile database
    - [adapt FILE]     compile → run → re-partition until convergence
    - [fuzz]           differential fuzzing across all execution paths
*)

open Cmdliner
module Json = Spt_obs.Json

(* one version string for the tool and every subcommand, so both
   [sptc --version] and [sptc run --version] answer; it is also mixed
   into artifact-cache keys, so bumping it invalidates stale caches *)
let version = Spt_service.Cached.tool_version

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let handle_errors f =
  try f () with
  | Spt_srclang.Lexer.Lex_error (msg, loc) ->
    Format.eprintf "lexical error at %a: %s@." Spt_srclang.Ast.pp_loc loc msg;
    exit 1
  | Spt_srclang.Parser.Parse_error (msg, loc) ->
    Format.eprintf "syntax error at %a: %s@." Spt_srclang.Ast.pp_loc loc msg;
    exit 1
  | Spt_srclang.Typecheck.Type_error (msg, loc) ->
    Format.eprintf "type error at %a: %s@." Spt_srclang.Ast.pp_loc loc msg;
    exit 1
  | Spt_ir.Lower.Lower_error msg ->
    Format.eprintf "lowering error: %s@." msg;
    exit 1
  | Spt_interp.Interp.Runtime_error msg ->
    Format.eprintf "runtime error: %s@." msg;
    exit 1
  | Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    exit 1

(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let config_arg =
  let config_enum =
    Arg.enum
      (List.map (fun (c : Spt_driver.Config.t) -> (c.Spt_driver.Config.name, c))
         Spt_driver.Config.all)
  in
  Arg.(
    value
    & opt config_enum Spt_driver.Config.best
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"Compiler configuration: basic, best or anticipated")

(* ------------------------------------------------------------------ *)
(* Execution-engine flags: --engine, --chunk.  Validated manually
   (stderr + exit 2) so bad values report like the other usage
   errors. *)

let engine_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine for real (non-simulated) runs: $(b,bytecode) \
           (flat bytecode compiled once per run, the default) or $(b,tree) \
           (the tree-walking reference interpreter).  Part of the \
           artifact-cache key.")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "With $(b,--parallel): iterations each speculative fork covers \
           (default: auto-sized from the cost model's per-iteration \
           estimate)")

(* resolve --engine into the compiler configuration (it is part of the
   cache key, like every other config field) *)
let resolve_engine config = function
  | None -> config
  | Some s -> (
    match Spt_exec.Engine.kind_of_string s with
    | Ok k -> { config with Spt_driver.Config.engine = k }
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 2)

let validate_chunk = function
  | Some n when n <= 0 ->
    Format.eprintf "error: --chunk must be at least 1 (got %d)@." n;
    exit 2
  | c -> c

let depth_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "depth" ] ~docv:"K"
        ~doc:
          "Speculative iterations/chunks in flight at once (K-deep \
           pipelining).  Default: picked per loop by the cost model from \
           the expected kill-cascade cost.  Forcing a depth also scales \
           the selector's misspeculation pricing and is part of the \
           artifact-cache key.")

(* resolve --depth into the compiler configuration: like --engine it is
   part of the cache key, and a forced depth also changes the
   selector's misspeculation pricing *)
let resolve_depth config = function
  | None -> config
  | Some k when k <= 0 ->
    Format.eprintf "error: --depth must be at least 1 (got %d)@." k;
    exit 2
  | Some k -> { config with Spt_driver.Config.depth = Some k }

(* ------------------------------------------------------------------ *)
(* Artifact-cache flags: --cache-dir, --no-cache *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Artifact-cache directory (default: $(b,SPT_CACHE_DIR), \
           $(b,XDG_CACHE_HOME)/spt or ~/.cache/spt)")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the artifact cache (always recompile, never store)")

let cache_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Bound the on-disk cache footprint; least-recently-used entries \
           are evicted before a store that would exceed it")

let cache_max_entries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-entries" ] ~docv:"N"
        ~doc:"Bound the on-disk cache entry count (LRU eviction)")

let make_cache ?max_bytes ?max_entries ~cache_dir ~no_cache () =
  if no_cache then Spt_service.Artifact_cache.no_cache ()
  else
    Spt_service.Artifact_cache.create ?dir:cache_dir ?max_bytes ?max_entries ()

(* ------------------------------------------------------------------ *)
(* Profile-database flags.  The database lives under the cache dir
   (spt-profdb-v1/) and follows --cache-dir / --no-cache. *)

let profdb_max_entries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "profdb-max-entries" ] ~docv:"N"
        ~doc:
          "Bound the profile-database entry count (least-recently-updated \
           entries are evicted on ingest)")

(* the database an enabled cache implies: shares its directory, stamps
   entries with this tool version *)
let make_profdb ?max_entries cache =
  Spt_profdb.Profdb.for_cache ?max_entries ~tool:version
    (Spt_service.Artifact_cache.dir cache)

(* ------------------------------------------------------------------ *)
(* Persistent-profile flags: --profile-in (guided compiles) *)

let profile_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-in" ] ~docv:"FILE"
        ~doc:
          "Seed the compilation from a persistent profile store \
           ($(b,spt-profile-v1), written by $(b,sptc profile) / $(b,sptc run \
           --feedback-out)); its runtime telemetry overrides diverging \
           violation probabilities, and its digest keys the artifact cache")

let load_profile profile_in = Option.map Spt_feedback.Profile_store.load profile_in

(* ------------------------------------------------------------------ *)
(* Observability flags: --trace, --metrics, --log-level *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_events JSON of the pipeline phases to $(docv) \
           (open in chrome://tracing, Perfetto or speedscope)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON summary (speedup, loop breakdown, \
           full counter dump) to $(docv)")

let log_level_arg =
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Spt_obs.Log.level_of_string s with
          | Ok l -> Ok l
          | Error msg -> Error (`Msg msg)),
        fun ppf l -> Format.pp_print_string ppf (Spt_obs.Log.string_of_level l)
      )
  in
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Log verbosity: error, warn, info or debug (overrides the SPT_LOG \
           and SPT_DEBUG environment variables)")

(** Apply the observability flags; returns a [finish] function to call
    after the work, which writes the requested artifact files.  [finish]
    takes already-rendered {!Spt_driver.Report.eval_json} objects so
    cache-warm paths (which have no live [Pipeline.eval]) can feed
    [--metrics] too. *)
let setup_obs trace metrics log_level =
  Option.iter Spt_obs.Log.set_level log_level;
  if trace <> None then Spt_obs.Trace.set_enabled true;
  if metrics <> None then Spt_obs.Metrics.set_enabled true;
  fun ?(runtime = []) (evals : Json.t list) ->
    Option.iter
      (fun path ->
        Json.to_file path (Spt_driver.Report.metrics_json_of ~runtime evals);
        Spt_obs.Log.info "metrics written to %s" path)
      metrics;
    Option.iter
      (fun path ->
        Spt_obs.Trace.to_file path;
        Spt_obs.Log.info "trace written to %s" path)
      trace

let run_cmd =
  let parallel_flag =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:
            "SPT-compile the program and execute it for real on the \
             speculative multicore runtime (OCaml 5 domains), with a \
             sequential-equivalence oracle")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for $(b,--parallel) (defaults to $(b,SPT_JOBS) \
             or 1)")
  in
  let feedback_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "feedback-out" ] ~docv:"FILE"
          ~doc:
            "With $(b,--parallel): merge this run's per-loop misspeculation \
             telemetry into the profile store at $(docv) (created when \
             missing), for later profile-guided compiles")
  in
  let attrib_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "attrib" ] ~docv:"FILE"
          ~doc:
            "With $(b,--parallel): write an overhead-attribution report \
             (schema $(b,spt-attrib-v1)) to $(docv) — per-domain wall-time \
             buckets over the speculation lifecycle, iteration-latency \
             percentiles and the predicted-vs-measured speedup gap; render \
             it with $(b,sptc top)")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "With $(b,--parallel): use the shared profile database under \
             $(docv) — the compile is guided by the accumulated profile \
             for this program (unless $(b,--profile-in) overrides it) and \
             the run's misspeculation telemetry is ingested back \
             afterwards, so repeated runs keep getting better")
  in
  let run file parallel jobs config engine chunk depth profile_in cache_dir
      feedback_out attrib trace metrics log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        let config = resolve_engine config engine in
        let chunk = validate_chunk chunk in
        if (not parallel) && depth <> None then begin
          Format.eprintf "error: --depth requires --parallel@.";
          exit 2
        end;
        let config = resolve_depth config depth in
        if (not parallel) && feedback_out <> None then begin
          Format.eprintf "error: --feedback-out requires --parallel@.";
          exit 2
        end;
        if (not parallel) && attrib <> None then begin
          Format.eprintf "error: --attrib requires --parallel@.";
          exit 2
        end;
        if (not parallel) && chunk <> None then begin
          Format.eprintf "error: --chunk requires --parallel@.";
          exit 2
        end;
        if (not parallel) && cache_dir <> None then begin
          Format.eprintf "error: --cache-dir requires --parallel@.";
          exit 2
        end;
        if not parallel then begin
          let src = read_file file in
          let r =
            match config.Spt_driver.Config.engine with
            | Spt_exec.Engine.Tree -> Spt_interp.Interp.run_source src
            | Spt_exec.Engine.Bytecode ->
              Spt_exec.Engine.run (Spt_driver.Pipeline.front_end src)
          in
          print_string r.Spt_interp.Interp.output;
          Format.printf "; %d instructions executed@."
            r.Spt_interp.Interp.dynamic_instrs;
          finish []
        end
        else begin
          let src = read_file file in
          let db = Spt_profdb.Profdb.for_cache ~tool:version cache_dir in
          let fingerprint =
            if Spt_profdb.Profdb.enabled db then
              Some
                (Spt_service.Fingerprint.program
                   (Spt_driver.Pipeline.front_end src))
            else None
          in
          (* an explicit --profile-in always wins; otherwise the profile
             database's accumulated entry guides the compile *)
          let profile, db_gen =
            match load_profile profile_in with
            | Some _ as p -> (p, None)
            | None -> (
              match fingerprint with
              | None -> (None, None)
              | Some fp -> (
                match Spt_profdb.Profdb.lookup db ~fingerprint:fp with
                | Some (store, g)
                  when not (Spt_feedback.Profile_store.is_empty store) ->
                  (Some store, Some g)
                | Some _ | None -> (None, None)))
          in
          let profile_seed = Option.map Spt_feedback.Profile_store.seed profile in
          let observations =
            Option.map Spt_feedback.Telemetry.observations profile
          in
          let timeline =
            Option.map (fun _ -> Spt_obs.Timeline.create ()) attrib
          in
          let pr =
            Spt_driver.Pipeline.run_parallel ~config ?jobs ?chunk ?timeline
              ?profile_seed ?observations src
          in
          Option.iter
            (fun path ->
              let tl = Option.get timeline in
              (* the TLS simulator's predicted speedup for the same
                 config, so the report can state the gap *)
              let predicted =
                let e =
                  Spt_driver.Pipeline.evaluate ~config ?profile_seed
                    ?observations src
                in
                e.Spt_driver.Pipeline.speedup
              in
              Json.to_file path
                (Spt_driver.Report.attrib_json ~predicted
                   ~workload:(Filename.basename file) ~timeline:tl pr);
              Spt_obs.Log.info "attribution report written to %s" path)
            attrib;
          Option.iter
            (fun path ->
              let store = Spt_feedback.Profile_store.load path in
              Spt_feedback.Telemetry.record store
                pr.Spt_driver.Pipeline.pr_spt
                pr.Spt_driver.Pipeline.pr_runtime;
              Spt_feedback.Profile_store.save store path;
              Spt_obs.Log.info "feedback telemetry merged into %s (digest %s)"
                path
                (Spt_feedback.Profile_store.digest store))
            feedback_out;
          (* always feed the run's telemetry back to the database, so the
             next run of the same program is better guided *)
          Option.iter
            (fun fp ->
              let fresh = Spt_feedback.Profile_store.empty () in
              Spt_feedback.Telemetry.record fresh
                pr.Spt_driver.Pipeline.pr_spt
                pr.Spt_driver.Pipeline.pr_runtime;
              match Spt_profdb.Profdb.ingest db ~fingerprint:fp fresh with
              | Some g ->
                Format.printf "; profdb: generation %d%s@." g
                  (match db_gen with
                  | Some g_in -> Printf.sprintf " (compile guided by gen %d)" g_in
                  | None -> " (unguided compile)")
              | None -> ())
            fingerprint;
          let open Spt_runtime.Runtime in
          let r = pr.Spt_driver.Pipeline.pr_runtime in
          print_string r.output;
          Format.printf
            "; %d instructions committed on %d worker(s), %d SPT loop(s)@."
            r.dynamic_instrs pr.Spt_driver.Pipeline.pr_jobs
            pr.Spt_driver.Pipeline.pr_n_loops;
          List.iter
            (fun (lid, s) ->
              Format.printf
                "; loop %d: %d forks, %d commits, %d violations, %d faults, \
                 %d kills, %d despeculations@."
                lid s.forks s.commits s.violations s.faults s.kills s.despecs)
            r.stats;
          Format.printf
            "; wall %.3fs vs %.3fs sequential (measured speedup %.2fx)@."
            r.wall_time pr.Spt_driver.Pipeline.pr_seq_wall
            pr.Spt_driver.Pipeline.pr_measured_speedup;
          let finish () =
            finish
              ~runtime:
                [
                  Json.prepend
                    ("workload", Json.Str (Filename.basename file))
                    (Spt_runtime.Runtime.stats_json r);
                ]
              []
          in
          match r.oracle with
          | `Match ->
            Format.printf "; oracle: parallel run matches sequential@.";
            finish ()
          | `Skipped -> finish ()
          | `Mismatch m ->
            Format.eprintf "oracle FAILED: %s@." m;
            finish ();
            (* 2, not 1: the program compiled and ran — what failed is
               sequential equivalence, the same class of verdict as a
               fuzz divergence *)
            exit 2
        end)
  in
  Cmd.v
    (Cmd.info "run" ~version
       ~doc:
         "Interpret a MiniC program, or execute it speculatively in parallel")
    Term.(
      const run $ file_arg $ parallel_flag $ jobs_arg $ config_arg
      $ engine_arg $ chunk_arg $ depth_arg $ profile_in_arg $ cache_dir_arg
      $ feedback_out_arg $ attrib_arg $ trace_arg $ metrics_arg
      $ log_level_arg)

let dump_ir_cmd =
  let ssa_flag =
    Arg.(value & flag & info [ "ssa" ] ~doc:"Print in optimized SSA form")
  in
  let dump file ssa =
    handle_errors (fun () ->
        let prog = Spt_driver.Pipeline.front_end (read_file file) in
        if ssa then Spt_driver.Pipeline.to_ssa prog;
        print_endline (Spt_ir.Ir_pretty.program_to_string prog))
  in
  Cmd.v (Cmd.info "dump-ir" ~version ~doc:"Print the three-address IR")
    Term.(const dump $ file_arg $ ssa_flag)

let loops_cmd =
  let show file config =
    handle_errors (fun () ->
        let e = Spt_driver.Pipeline.evaluate ~config (read_file file) in
        Format.printf "%-20s %-10s %8s %8s %10s  %s@." "loop" "origin" "body"
          "trip" "cost" "decision";
        List.iter
          (fun (lr : Spt_driver.Pipeline.loop_record) ->
            Format.printf "%-20s %-10s %8.0f %8.0f %10s  %s@."
              (Printf.sprintf "%s@bb%d" lr.Spt_driver.Pipeline.lr_func
                 lr.Spt_driver.Pipeline.lr_header)
              (match lr.Spt_driver.Pipeline.lr_origin with
              | Some `For -> "for"
              | Some `While -> "while"
              | Some `Do -> "do"
              | None -> "?")
              lr.Spt_driver.Pipeline.lr_body_size lr.Spt_driver.Pipeline.lr_trip
              (match lr.Spt_driver.Pipeline.lr_cost with
              | Some c -> Printf.sprintf "%.2f" c
              | None -> "-")
              (match lr.Spt_driver.Pipeline.lr_decision with
              | Spt_driver.Pipeline.Selected ->
                if lr.Spt_driver.Pipeline.lr_svp then "SPT loop (with SVP)"
                else "SPT loop"
              | Spt_driver.Pipeline.Rejected r ->
                Spt_transform.Select.string_of_reason r))
          e.Spt_driver.Pipeline.loops)
  in
  Cmd.v
    (Cmd.info "loops" ~version ~doc:"Analyze every loop and show the SPT decision")
    Term.(const show $ file_arg $ config_arg)

let compile_cmd =
  let compile file config engine depth profile_in cache_dir no_cache
      profdb_max_entries trace metrics log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        let config = resolve_engine config engine in
        let config = resolve_depth config depth in
        (* --trace wants the real per-phase spans, which a warm hit
           would skip entirely — tracing always recompiles *)
        let cache =
          if trace <> None then Spt_service.Artifact_cache.no_cache ()
          else make_cache ~cache_dir ~no_cache ()
        in
        let o =
          Spt_service.Cached.compile ~cache ~config
            ?profile:(load_profile profile_in)
            ~profdb:(make_profdb ?max_entries:profdb_max_entries cache)
            ~name:(Filename.basename file) (read_file file)
        in
        print_string o.Spt_service.Cached.report_text;
        finish [ o.Spt_service.Cached.eval ])
  in
  Cmd.v
    (Cmd.info "compile" ~version
       ~doc:
         "Run the cost-driven SPT pipeline and simulate the result (warm \
          results come from the artifact cache; a fingerprint warmed in the \
          profile database gets a guided compile automatically)")
    Term.(
      const compile $ file_arg $ config_arg $ engine_arg $ depth_arg
      $ profile_in_arg $ cache_dir_arg $ no_cache_arg
      $ profdb_max_entries_arg $ trace_arg $ metrics_arg $ log_level_arg)

let workload_cmd =
  let name_arg =
    let names = List.map (fun w -> w.Spt_workloads.Suite.name) Spt_workloads.Suite.all in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [] ~docv:"NAME" ~doc:"Workload name (bzip2, crafty, ...)")
  in
  let run name config engine depth profile_in cache_dir no_cache
      profdb_max_entries trace metrics log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        let config = resolve_engine config engine in
        let config = resolve_depth config depth in
        let cache =
          if trace <> None then Spt_service.Artifact_cache.no_cache ()
          else make_cache ~cache_dir ~no_cache ()
        in
        let w = Spt_workloads.Suite.find name in
        let o =
          Spt_service.Cached.compile ~cache ~config
            ?profile:(load_profile profile_in)
            ~profdb:(make_profdb ?max_entries:profdb_max_entries cache)
            ~name w.Spt_workloads.Suite.source
        in
        (* no cache-status marker here: warm and cold runs must print
           byte-identical reports *)
        Format.printf "workload %s@." name;
        print_string o.Spt_service.Cached.report_text;
        finish [ o.Spt_service.Cached.eval ])
  in
  Cmd.v
    (Cmd.info "workload" ~version ~doc:"Evaluate a built-in SPEC2000Int-like workload")
    Term.(
      const run $ name_arg $ config_arg $ engine_arg $ depth_arg
      $ profile_in_arg $ cache_dir_arg $ no_cache_arg
      $ profdb_max_entries_arg $ trace_arg $ metrics_arg $ log_level_arg)

let batch_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILES" ~doc:"MiniC source files")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (defaults to $(b,SPT_JOBS) or 2)")
  in
  let timeout_arg =
    Arg.(
      value & opt float 600.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-file compile budget; a file over budget is reported \
                timed out and the batch exits 1")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable batch summary (schema \
             $(b,spt-batch-v1)) to $(docv)")
  in
  let cluster_arg =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Cluster files whose canonical fingerprints share per-function \
             digests and schedule each cluster as one job, so \
             near-duplicates compile back to back against a warm cache")
  in
  let result_json (file, outcome) =
    match outcome with
    | Spt_service.Batch.Done ((o : Spt_service.Cached.outcome), counters) ->
      Json.Obj
        ([
           ("file", Json.Str file);
           ("status", Json.Str "ok");
           ("cache_hit", Json.Bool o.Spt_service.Cached.hit);
           ("key", Json.Str o.Spt_service.Cached.key);
           ("elapsed_s", Json.Float o.Spt_service.Cached.elapsed_s);
         ]
        @
        match counters with
        | Some c -> [ ("counters", c) ]
        | None -> [])
    | Spt_service.Batch.Failed msg ->
      Json.Obj
        [
          ("file", Json.Str file);
          ("status", Json.Str "failed");
          ("error", Json.Str msg);
        ]
    | Spt_service.Batch.Timed_out ->
      Json.Obj [ ("file", Json.Str file); ("status", Json.Str "timed_out") ]
  in
  let run files config engine depth profile_in cache_dir no_cache
      profdb_max_entries jobs timeout_s summary cluster trace metrics
      log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        let config = resolve_engine config engine in
        let config = resolve_depth config depth in
        let cache = make_cache ~cache_dir ~no_cache () in
        (* one shared load: seeding only reads the store's tables, so
           concurrent compiles are safe *)
        let profile = load_profile profile_in in
        (* one shared database instance: lookups are lock-free reads
           and the census counters are mutex-guarded *)
        let profdb = make_profdb ?max_entries:profdb_max_entries cache in
        (* per-job counter deltas: snapshot the registry around each
           compile so a job's summary row reports its own work, not the
           whole batch's cumulative totals.  Exact at -j1 (the regression
           mode); approximate when jobs overlap, since the registry is
           process-global. *)
        let with_counters = metrics <> None in
        let thunks =
          List.map
            (fun file () ->
              let base =
                if with_counters then Some (Spt_obs.Metrics.since ()) else None
              in
              let o =
                Spt_service.Cached.compile ~cache ~config ?profile ~profdb
                  ~name:(Filename.basename file) (read_file file)
              in
              (o, Option.map Spt_obs.Metrics.delta_json base))
            files
        in
        (* with --cluster, tag each file with its canonical sub-structure
           digests (whole program + one per function); files sharing a
           digest schedule as one unit.  Unreadable or unparsable files
           get no digests — a singleton cluster whose job reports the
           real error *)
        let digests file =
          if not cluster then []
          else
            try
              let prog = Spt_driver.Pipeline.front_end (read_file file) in
              Spt_service.Fingerprint.program prog
              :: List.map
                   (fun (_, f) -> Spt_service.Fingerprint.func f)
                   prog.Spt_ir.Ir.funcs
            with _ -> []
        in
        let items =
          List.map2 (fun file thunk -> (thunk, digests file)) files thunks
        in
        let outcomes, bs =
          Spt_service.Batch.run_clustered ?jobs ~timeout_s items
        in
        let results = List.mapi (fun i file -> (file, outcomes.(i))) files in
        let evals =
          List.filter_map
            (function
              | _, Spt_service.Batch.Done ((o : Spt_service.Cached.outcome), _)
                ->
                Some o.Spt_service.Cached.eval
              | _ -> None)
            results
        in
        List.iter
          (fun (file, outcome) ->
            match outcome with
            | Spt_service.Batch.Done ((o : Spt_service.Cached.outcome), _) ->
              Format.printf "[%s] %-32s %8.3fs  %s@."
                (if o.Spt_service.Cached.hit then "hit " else "miss")
                file o.Spt_service.Cached.elapsed_s
                (String.sub o.Spt_service.Cached.key 0 12)
            | Spt_service.Batch.Failed msg ->
              Format.printf "[FAIL] %-32s %s@." file msg
            | Spt_service.Batch.Timed_out ->
              Format.printf "[TIME] %-32s exceeded %.0fs@." file timeout_s)
          results;
        let cs = Spt_service.Artifact_cache.stats cache in
        let lookups =
          cs.Spt_service.Artifact_cache.hits
          + cs.Spt_service.Artifact_cache.misses
        in
        let hit_rate =
          if lookups = 0 then 0.0
          else
            float_of_int cs.Spt_service.Artifact_cache.hits
            /. float_of_int lookups
        in
        Format.printf
          "batch: %d file(s) in %d cluster(s), %d ok, %d failed, %d timed \
           out; %d hit(s) / %d miss(es); %d job(s)%s, %.3fs@."
          bs.Spt_service.Batch.submitted bs.Spt_service.Batch.clusters
          bs.Spt_service.Batch.completed bs.Spt_service.Batch.failed
          bs.Spt_service.Batch.timed_out cs.Spt_service.Artifact_cache.hits
          cs.Spt_service.Artifact_cache.misses bs.Spt_service.Batch.jobs
          (if bs.Spt_service.Batch.degraded then " (degraded to sequential)"
           else "")
          bs.Spt_service.Batch.wall_s;
        let lat = bs.Spt_service.Batch.latency in
        if Spt_obs.Metrics.Hist.count lat > 0 then
          Format.printf
            "batch: job latency p50 %.3fs, p95 %.3fs, p99 %.3fs (max %.3fs)@."
            (Spt_obs.Metrics.Hist.percentile lat 0.50)
            (Spt_obs.Metrics.Hist.percentile lat 0.95)
            (Spt_obs.Metrics.Hist.percentile lat 0.99)
            (Spt_obs.Metrics.Hist.max_value lat);
        Option.iter
          (fun path ->
            Json.to_file path
              (Json.Obj
                 [
                   ("schema", Json.Str "spt-batch-v1");
                   ("files", Json.Int (List.length files));
                   ("ok", Json.Int bs.Spt_service.Batch.completed);
                   ("failed", Json.Int bs.Spt_service.Batch.failed);
                   ("timed_out", Json.Int bs.Spt_service.Batch.timed_out);
                   ( "cache_hits",
                     Json.Int cs.Spt_service.Artifact_cache.hits );
                   ( "cache_misses",
                     Json.Int cs.Spt_service.Artifact_cache.misses );
                   ("hit_rate", Json.Float hit_rate);
                   ("jobs", Json.Int bs.Spt_service.Batch.jobs);
                   ("clusters", Json.Int bs.Spt_service.Batch.clusters);
                   ("degraded", Json.Bool bs.Spt_service.Batch.degraded);
                   ( "max_queue_depth",
                     Json.Int bs.Spt_service.Batch.max_queue_depth );
                   ("wall_s", Json.Float bs.Spt_service.Batch.wall_s);
                   ( "latency_s",
                     Spt_obs.Metrics.Hist.to_json bs.Spt_service.Batch.latency
                   );
                   ("results", Json.List (List.map result_json results));
                   ("cache", Spt_service.Artifact_cache.stats_json cache);
                   ("counters", Spt_obs.Metrics.to_json ());
                 ]))
          summary;
        finish evals;
        if
          bs.Spt_service.Batch.failed > 0
          || bs.Spt_service.Batch.timed_out > 0
        then exit 1)
  in
  Cmd.v
    (Cmd.info "batch" ~version
       ~doc:
         "Compile many programs concurrently through the artifact cache; \
          exits 1 if any file fails or times out")
    Term.(
      const run $ files_arg $ config_arg $ engine_arg $ depth_arg
      $ profile_in_arg $ cache_dir_arg $ no_cache_arg
      $ profdb_max_entries_arg $ jobs_arg $ timeout_arg $ summary_arg
      $ cluster_arg $ trace_arg $ metrics_arg $ log_level_arg)

let top_cmd =
  let report_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A machine-readable spt report: $(b,spt-attrib-v1) ($(b,sptc run \
             --parallel --attrib)), $(b,spt-metrics-v1) ($(b,--metrics)), \
             $(b,spt-batch-v1) ($(b,sptc batch --summary)) or \
             $(b,spt-bench-v2) ($(b,bench/main.exe))")
  in
  let run file =
    handle_errors (fun () ->
        match Json.of_string (read_file file) with
        | Error msg ->
          Format.eprintf "error: %s: bad JSON: %s@." file msg;
          exit 1
        | Ok j -> (
          match Spt_driver.Report.top_text j with
          | Ok text -> print_string text
          | Error msg ->
            Format.eprintf "error: %s: %s@." file msg;
            exit 1))
  in
  Cmd.v
    (Cmd.info "top" ~version
       ~doc:
         "Render a machine-readable report (attribution, metrics, batch or \
          bench JSON) as aligned text tables")
    Term.(const run $ report_arg)

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 4
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains handling compile requests concurrently (1 = \
             sequential)")
  in
  let queue_max_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-max" ] ~docv:"N"
          ~doc:
            "In-flight high-water mark: past $(docv) pending requests, new \
             work is refused with an $(b,overloaded) error reply")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-request budget; an overdue request gets a $(b,timeout) \
             error reply (default: no timeout)")
  in
  let run engine cache_dir no_cache max_bytes max_entries profdb_max_entries
      jobs queue_max timeout_s log_level =
    handle_errors (fun () ->
        Option.iter Spt_obs.Log.set_level log_level;
        let engine =
          Option.map
            (fun s ->
              match Spt_exec.Engine.kind_of_string s with
              | Ok k -> k
              | Error msg ->
                Format.eprintf "error: %s@." msg;
                exit 2)
            engine
        in
        let cache = make_cache ?max_bytes ?max_entries ~cache_dir ~no_cache () in
        let profdb = make_profdb ?max_entries:profdb_max_entries cache in
        let t =
          Spt_service.Server.create ~cache ~profdb ?engine ~jobs ~queue_max
            ?timeout_s ()
        in
        Spt_service.Server.serve t stdin stdout)
  in
  Cmd.v
    (Cmd.info "serve" ~version
       ~doc:
         "Serve compile requests as line-delimited JSON on stdin/stdout \
          until a shutdown request or end of input; requests are handled \
          concurrently on a domain pool with backpressure, per-request \
          timeouts and single-flight coalescing")
    Term.(
      const run $ engine_arg $ cache_dir_arg $ no_cache_arg
      $ cache_max_bytes_arg $ cache_max_entries_arg $ profdb_max_entries_arg
      $ jobs_arg $ queue_max_arg $ timeout_arg $ log_level_arg)

let loadtest_cmd =
  let clients_arg =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent simulated clients")
  in
  let requests_arg =
    Arg.(
      value & opt int 128
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests per measured phase (serial and concurrent)")
  in
  let blend_arg =
    let blend_conv =
      Arg.conv
        ( (fun s ->
            match Spt_loadgen.Loadgen.Blend.of_string s with
            | Ok b -> Ok b
            | Error msg -> Error (`Msg msg)),
          fun ppf b ->
            Format.pp_print_string ppf
              (Spt_loadgen.Loadgen.Blend.to_string b) )
    in
    Arg.(
      value
      & opt blend_conv Spt_loadgen.Loadgen.Blend.default
      & info [ "blend" ] ~docv:"SPEC"
          ~doc:
            "Request mix as KIND=WEIGHT pairs, e.g. \
             $(b,warm=7,cold=1,guided=1,engine=1); kinds are cold (unique \
             source, cache miss), warm (fixed family, cache hit), guided \
             (profile-directed) and engine (tree-walking engine)")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Request-stream RNG seed")
  in
  let server_jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "server-jobs" ] ~docv:"N" ~doc:"Server worker domains")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("serve", `Serve); ("inproc", `Inproc) ]) `Serve
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,serve) drives the real serve loop over pipes; $(b,inproc) \
             calls the request handler directly from client domains")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the $(b,spt-loadtest-v1) report to $(docv)")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Merge the report into $(docv) as its $(b,loadtest) section \
             (made for BENCH_results.json)")
  in
  (* Compiles allocate hard, and every minor collection is a stop-the-
     world rendezvous of all running domains; with several compile
     workers per core the default 256k-word minor heap makes those
     rendezvous the dominant cost and poisons the measurement.  OCaml
     fixes each domain's minor-heap size at spawn from the startup
     runtime parameters — [Gc.set] cannot grow it for domains spawned
     later — so grow it the only way possible: re-exec ourselves once
     with OCAMLRUNPARAM extended before measuring anything. *)
  let maybe_reexec () =
    if
      (Gc.get ()).Gc.minor_heap_size < 8 * 1024 * 1024
      && Sys.getenv_opt "SPT_LOADTEST_REEXECED" = None
    then begin
      let runparam =
        match Sys.getenv_opt "OCAMLRUNPARAM" with
        | Some p when String.trim p <> "" -> p ^ ",s=8M"
        | _ -> "s=8M"
      in
      let keep kv =
        not
          (String.starts_with ~prefix:"OCAMLRUNPARAM=" kv
          || String.starts_with ~prefix:"SPT_LOADTEST_REEXECED=" kv)
      in
      let env =
        Array.append
          (Array.of_list (List.filter keep (Array.to_list (Unix.environment ()))))
          [| "OCAMLRUNPARAM=" ^ runparam; "SPT_LOADTEST_REEXECED=1" |]
      in
      (* if the exec fails we measure anyway, just on the small heap *)
      try Unix.execve Sys.executable_name Sys.argv env with _ -> ()
    end
  in
  let run clients requests blend seed server_jobs mode cache_dir json_out
      bench_out log_level =
    handle_errors (fun () ->
        maybe_reexec ();
        Option.iter Spt_obs.Log.set_level log_level;
        if clients < 1 || requests < 1 then begin
          Format.eprintf "error: --clients and --requests must be >= 1@.";
          exit 2
        end;
        let cache =
          Option.map
            (fun dir -> Spt_service.Artifact_cache.create ~dir ())
            cache_dir
        in
        let r =
          Spt_loadgen.Loadgen.run ~mode ~clients ~requests ~blend ~seed
            ~server_jobs ?cache ()
        in
        let lt = Spt_loadgen.Loadgen.to_json r in
        Format.printf
          "loadtest: %s mode, %d client(s), %d server job(s), %d+%d \
           request(s), blend %s, seed %d@."
          (match r.Spt_loadgen.Loadgen.mode with
          | `Serve -> "serve"
          | `Inproc -> "inproc")
          r.Spt_loadgen.Loadgen.clients r.Spt_loadgen.Loadgen.server_jobs
          r.Spt_loadgen.Loadgen.serial_requests r.Spt_loadgen.Loadgen.requests
          (Spt_loadgen.Loadgen.Blend.to_string r.Spt_loadgen.Loadgen.blend)
          r.Spt_loadgen.Loadgen.seed;
        Format.printf
          "loadtest: serial     %8.1f req/s  (%.3fs wall, %d error(s))@."
          r.Spt_loadgen.Loadgen.serial_rps r.Spt_loadgen.Loadgen.serial_wall_s
          r.Spt_loadgen.Loadgen.serial_errors;
        Format.printf
          "loadtest: concurrent %8.1f req/s  (%.3fs wall, %d error(s), %d \
           coalesced)@."
          r.Spt_loadgen.Loadgen.throughput_rps r.Spt_loadgen.Loadgen.wall_s
          r.Spt_loadgen.Loadgen.errors r.Spt_loadgen.Loadgen.coalesced;
        let lat = r.Spt_loadgen.Loadgen.latency in
        Format.printf
          "loadtest: latency p50 %.4fs, p95 %.4fs, p99 %.4fs; speedup vs \
           serial %.2fx@."
          (Spt_obs.Metrics.Hist.percentile lat 0.50)
          (Spt_obs.Metrics.Hist.percentile lat 0.95)
          (Spt_obs.Metrics.Hist.percentile lat 0.99)
          r.Spt_loadgen.Loadgen.speedup_vs_serial;
        Option.iter
          (fun path ->
            Json.to_file path lt;
            Format.printf "loadtest: report written to %s@." path)
          json_out;
        Option.iter
          (fun path ->
            (* graft the report into an existing bench object (replacing
               any previous loadtest section); a missing or unreadable
               file gets a fresh object holding just this section *)
            let base =
              match Json.of_string (read_file path) with
              | Ok (Json.Obj fields) ->
                List.filter (fun (k, _) -> k <> "loadtest") fields
              | Ok _ | Error _ | (exception Sys_error _) -> []
            in
            Json.to_file path (Json.Obj (base @ [ ("loadtest", lt) ]));
            Format.printf "loadtest: merged into %s@." path)
          bench_out;
        if
          r.Spt_loadgen.Loadgen.errors > 0
          || r.Spt_loadgen.Loadgen.serial_errors > 0
        then begin
          Format.eprintf "error: load test saw errored replies@.";
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "loadtest" ~version
       ~doc:
         "Load-test the compile server: replay a mixed request stream \
          serially and with many concurrent clients, and report throughput, \
          latency percentiles and the concurrent-vs-serial speedup")
    Term.(
      const run $ clients_arg $ requests_arg $ blend_arg $ seed_arg
      $ server_jobs_arg $ mode_arg $ cache_dir_arg $ json_arg $ bench_out_arg
      $ log_level_arg)

let graph_cmd =
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("dep", `Dep); ("cost", `Cost) ]) `Dep
      & info [ "k"; "kind" ] ~docv:"KIND" ~doc:"Graph kind: dep or cost")
  in
  let show file kind =
    handle_errors (fun () ->
        let prog = Spt_driver.Pipeline.front_end (read_file file) in
        Spt_driver.Pipeline.to_ssa prog;
        let eff = Spt_depgraph.Effects.compute prog in
        (* the hottest-looking loop: largest static body *)
        let best = ref None in
        List.iter
          (fun (_, f) ->
            List.iter
              (fun (l : Spt_ir.Loops.loop) ->
                let size =
                  Spt_ir.Loops.Iset.fold
                    (fun bid acc -> acc + Spt_ir.Ir.block_size (Spt_ir.Ir.block f bid))
                    l.Spt_ir.Loops.body 0
                in
                match !best with
                | Some (_, _, s) when s >= size -> ()
                | _ -> best := Some (f, l, size))
              (Spt_ir.Loops.find f))
          prog.Spt_ir.Ir.funcs;
        match !best with
        | None -> Format.eprintf "no loops found@."
        | Some (f, l, _) ->
          let g = Spt_depgraph.Depgraph.build eff f l in
          (match kind with
          | `Dep -> print_string (Spt_depgraph.Depgraph.to_dot g)
          | `Cost ->
            print_string (Spt_cost.Cost_model.to_dot (Spt_cost.Cost_model.build g))))
  in
  Cmd.v
    (Cmd.info "graph" ~version
       ~doc:"Emit the dependence or cost graph of the largest loop as Graphviz DOT")
    Term.(const show $ file_arg $ kind_arg)

let profile_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Profile store to write; an existing store is merged into \
             (counts add), so repeated runs behave as one longer profile")
  in
  let run file config out log_level =
    handle_errors (fun () ->
        Option.iter Spt_obs.Log.set_level log_level;
        let ep, dp, vp =
          Spt_driver.Pipeline.profile_source ~config (read_file file)
        in
        let store = Spt_feedback.Profile_store.load out in
        Spt_feedback.Profile_store.absorb_profiles store ep dp vp;
        Spt_feedback.Profile_store.save store out;
        Format.printf "profile store %s: digest %s@." out
          (Spt_feedback.Profile_store.digest store))
  in
  Cmd.v
    (Cmd.info "profile" ~version
       ~doc:
         "Profile a MiniC program (edge / dependence / value) and persist the \
          counts to a profile store for later profile-guided compiles")
    Term.(const run $ file_arg $ config_arg $ out_arg $ log_level_arg)

let adapt_cmd =
  let iters_arg =
    Arg.(
      value & opt int 3
      & info [ "iters" ] ~docv:"N"
          ~doc:"Maximum compile-run-repartition rounds (stops early once the \
                partitions stop changing)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the runtime (defaults to $(b,SPT_JOBS) or 1)")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"P"
          ~doc:
            "Divergence threshold: observed misspeculation probability must \
             exceed the prediction by more than $(docv) to override it \
             (default 0.1)")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Persistent profile store to continue from and write back \
             (default: in-memory only)")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write a machine-readable summary (schema $(b,spt-adapt-v1))")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Share the adaptation through the profile database under \
             $(docv): the starting store is seeded from the accumulated \
             entry for this program, and the converged store is published \
             back for every later compile to pick up")
  in
  let run file config iters jobs threshold store_path cache_dir json_out
      log_level =
    handle_errors (fun () ->
        Option.iter Spt_obs.Log.set_level log_level;
        let src = read_file file in
        let db = Spt_profdb.Profdb.for_cache ~tool:version cache_dir in
        let fingerprint =
          if Spt_profdb.Profdb.enabled db then
            Some
              (Spt_service.Fingerprint.program
                 (Spt_driver.Pipeline.front_end src))
          else None
        in
        let store = Option.map Spt_feedback.Profile_store.load store_path in
        (* seed from the database's accumulated entry; the converged
           store then *contains* it, which is why the write-back below
           is a publish (replace), not an ingest (additive merge) *)
        let store =
          match fingerprint with
          | None -> store
          | Some fp -> (
            match Spt_profdb.Profdb.lookup db ~fingerprint:fp with
            | Some (dbs, g) when not (Spt_feedback.Profile_store.is_empty dbs)
              ->
              Spt_obs.Log.info "adapt seeded from profdb generation %d" g;
              Some
                (match store with
                | Some s -> Spt_feedback.Profile_store.merge s dbs
                | None -> dbs)
            | Some _ | None -> store)
        in
        let o =
          Spt_feedback.Adapt.run ~config ?jobs ~iters ?threshold ?store src
        in
        print_string (Spt_feedback.Adapt.report o);
        Option.iter
          (fun path -> Spt_feedback.Profile_store.save o.Spt_feedback.Adapt.store path)
          store_path;
        Option.iter
          (fun fp ->
            match
              Spt_profdb.Profdb.publish db ~fingerprint:fp
                o.Spt_feedback.Adapt.store
            with
            | Some g ->
              Format.printf "; profdb: published generation %d@." g
            | None -> ())
          fingerprint;
        Option.iter
          (fun path -> Json.to_file path (Spt_feedback.Adapt.to_json o))
          json_out)
  in
  Cmd.v
    (Cmd.info "adapt" ~version
       ~doc:
         "Adaptive re-partitioning: compile, execute on the speculative \
          runtime, fold the observed misspeculation back into the profile \
          store and recompile, until the partitions converge")
    Term.(
      const run $ file_arg $ config_arg $ iters_arg $ jobs_arg $ threshold_arg
      $ store_arg $ cache_dir_arg $ json_arg $ log_level_arg)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Campaign seed; each case derives its own generator seed from it")
  in
  let count_arg =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"K" ~doc:"Number of generated cases")
  in
  let index_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ] ~docv:"I"
          ~doc:
            "Run only case $(docv) of the campaign (what the reproduce line \
             of a failure uses)")
  in
  let matrix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated oracle points: any of $(b,seq), $(b,par), \
             $(b,engine), $(b,depth), $(b,cache), $(b,feedback) (default: \
             all of them)")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Arm a transform fault (currently $(b,drop-prefork-stmt)) — the \
             oracle is then expected to diverge; exercises the harness itself")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persist shrunk failing cases and a few interesting clean ones \
             (that actually misspeculated) into $(docv) as commented .c files")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Replay every .c under $(docv) through the oracle instead of \
             generating (corpus regression mode); --seed/--count are ignored")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int 300
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Oracle re-checks the shrinker may spend per failing case")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable report (schema $(b,spt-fuzz-v1))")
  in
  let run seed count index matrix inject corpus replay shrink_budget config
      json_out log_level =
    handle_errors (fun () ->
        Option.iter Spt_obs.Log.set_level log_level;
        let matrix =
          Option.map
            (fun spec ->
              match Spt_fuzz.Oracle.matrix_of_string spec with
              | Ok m -> m
              | Error msg ->
                Format.eprintf "error: %s@." msg;
                exit 1)
            matrix
        in
        (match inject with
        | Some f when not (List.mem f Spt_fuzz.Oracle.known_faults) ->
          Format.eprintf "error: unknown fault %S (known: %s)@." f
            (String.concat ", " Spt_fuzz.Oracle.known_faults);
          exit 1
        | _ -> ());
        let c =
          match replay with
          | Some dir -> Spt_fuzz.Harness.replay_corpus ~config ?matrix ~dir ()
          | None ->
            Spt_fuzz.Harness.run_campaign ~config ?matrix ?inject ?index
              ?corpus_dir:corpus ~shrink_budget ~seed ~count ()
        in
        print_string (Spt_fuzz.Harness.summary c);
        Option.iter
          (fun path ->
            Json.to_file path (Spt_fuzz.Harness.report_json c);
            Spt_obs.Log.info "fuzz report written to %s" path)
          json_out;
        (* divergence is the fuzz analogue of an oracle mismatch: 2 *)
        if Spt_fuzz.Harness.divergent c then exit 2)
  in
  Cmd.v
    (Cmd.info "fuzz" ~version
       ~doc:
         "Differential fuzzing: generate random MiniC programs and check \
          every execution path (sequential, parallel runtime, cache replay, \
          feedback-guided recompile) against the sequential reference; \
          failures are shrunk and reported with a reproduce line (exit 2 on \
          divergence)")
    Term.(
      const run $ seed_arg $ count_arg $ index_arg $ matrix_arg $ inject_arg
      $ corpus_arg $ replay_arg $ shrink_budget_arg $ config_arg $ json_arg
      $ log_level_arg)

(* ------------------------------------------------------------------ *)
(* profdb: inspect, export and garbage-collect the profile database *)

let profdb_cmd =
  let open_db cache_dir =
    let dir =
      match cache_dir with
      | Some d -> d
      | None -> Spt_service.Artifact_cache.default_dir ()
    in
    Spt_profdb.Profdb.create ~tool:version
      ~dir:(Spt_profdb.Profdb.subdir dir) ()
  in
  let stat_cmd =
    let json_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:
              "Also write the raw census (schema $(b,spt-profdb-v1)) to \
               $(docv)")
    in
    let run cache_dir json_out =
      handle_errors (fun () ->
          let db = open_db cache_dir in
          let stats = Spt_profdb.Profdb.stats_json db in
          (match Spt_driver.Report.top_text stats with
          | Ok text -> print_string text
          | Error msg ->
            Format.eprintf "error: %s@." msg;
            exit 1);
          Option.iter (fun path -> Json.to_file path stats) json_out)
    in
    Cmd.v
      (Cmd.info "stat" ~version
         ~doc:
           "Show the profile database census: per-program generations, \
            telemetry footprint and entries another tool version left \
            behind")
      Term.(const run $ cache_dir_arg $ json_arg)
  in
  let export_cmd =
    let fingerprint_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "fingerprint" ] ~docv:"HEX"
            ~doc:
              "Export only this program's entry (fingerprints are listed by \
               $(b,sptc profdb stat))")
    in
    let out_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"FILE"
            ~doc:
              "Write the merged store (schema $(b,spt-profile-v1)) to \
               $(docv), usable anywhere $(b,--profile-in) is")
    in
    let run cache_dir fingerprint out =
      handle_errors (fun () ->
          let db = open_db cache_dir in
          let store = Spt_profdb.Profdb.export ?fingerprint db in
          if Spt_feedback.Profile_store.is_empty store then begin
            Format.eprintf "error: no matching profile-database entries under %s@."
              (Option.value ~default:"?" (Spt_profdb.Profdb.dir db));
            exit 1
          end;
          Spt_feedback.Profile_store.save store out;
          Format.printf "exported profile store to %s (digest %s)@." out
            (Spt_feedback.Profile_store.digest store))
    in
    Cmd.v
      (Cmd.info "export" ~version
         ~doc:
           "Merge database entries into a portable profile store — one \
            program's or the whole fleet's")
      Term.(const run $ cache_dir_arg $ fingerprint_arg $ out_arg)
  in
  let gc_cmd =
    let run cache_dir max_entries =
      handle_errors (fun () ->
          let db = open_db cache_dir in
          let invalid, evicted = Spt_profdb.Profdb.gc ?max_entries db in
          Format.printf
            "profdb gc: %d invalid file(s) dropped, %d entr%s evicted@."
            invalid evicted
            (if evicted = 1 then "y" else "ies"))
    in
    Cmd.v
      (Cmd.info "gc" ~version
         ~doc:
           "Delete invalid database files (corrupt, wrong tool version) and, \
            with $(b,--profdb-max-entries), evict least-recently-updated \
            entries over the bound")
      Term.(const run $ cache_dir_arg $ profdb_max_entries_arg)
  in
  Cmd.group
    (Cmd.info "profdb" ~version
       ~doc:
         "Inspect and maintain the shared profile database (the \
          $(b,spt-profdb-v1) directory under the cache dir) that \
          auto-guides compiles from accumulated run telemetry")
    [ stat_cmd; export_cmd; gc_cmd ]

let () =
  let doc = "cost-driven speculative parallelization (PLDI 2004 reproduction)" in
  let info = Cmd.info "sptc" ~version ~doc in
  let group =
    Cmd.group info
      [
        run_cmd; dump_ir_cmd; loops_cmd; compile_cmd; workload_cmd; batch_cmd;
        top_cmd; serve_cmd; loadtest_cmd; graph_cmd; profile_cmd; profdb_cmd;
        adapt_cmd; fuzz_cmd;
      ]
  in
  (* distinct exit codes: 0 = success, 2 = usage error, 1 = compile/run
     error (the latter via [handle_errors], which exits directly) *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 1)
