(** [sptc] — the SPT compiler driver.

    Subcommands:
    - [run FILE]       interpret a MiniC program
    - [dump-ir FILE]   print the IR (optionally in optimized SSA form)
    - [loops FILE]     list loops with their dependence/cost analysis
    - [compile FILE]   run the full cost-driven SPT pipeline and report
    - [workload NAME]  evaluate one of the built-in SPEC-like workloads
*)

open Cmdliner

(* one version string for the tool and every subcommand, so both
   [sptc --version] and [sptc run --version] answer *)
let version = "1.1.0"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let handle_errors f =
  try f () with
  | Spt_srclang.Lexer.Lex_error (msg, loc) ->
    Format.eprintf "lexical error at %a: %s@." Spt_srclang.Ast.pp_loc loc msg;
    exit 1
  | Spt_srclang.Parser.Parse_error (msg, loc) ->
    Format.eprintf "syntax error at %a: %s@." Spt_srclang.Ast.pp_loc loc msg;
    exit 1
  | Spt_srclang.Typecheck.Type_error (msg, loc) ->
    Format.eprintf "type error at %a: %s@." Spt_srclang.Ast.pp_loc loc msg;
    exit 1
  | Spt_ir.Lower.Lower_error msg ->
    Format.eprintf "lowering error: %s@." msg;
    exit 1
  | Spt_interp.Interp.Runtime_error msg ->
    Format.eprintf "runtime error: %s@." msg;
    exit 1
  | Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    exit 1

(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let config_arg =
  let config_enum =
    Arg.enum
      (List.map (fun (c : Spt_driver.Config.t) -> (c.Spt_driver.Config.name, c))
         Spt_driver.Config.all)
  in
  Arg.(
    value
    & opt config_enum Spt_driver.Config.best
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"Compiler configuration: basic, best or anticipated")

(* ------------------------------------------------------------------ *)
(* Observability flags: --trace, --metrics, --log-level *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_events JSON of the pipeline phases to $(docv) \
           (open in chrome://tracing, Perfetto or speedscope)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON summary (speedup, loop breakdown, \
           full counter dump) to $(docv)")

let log_level_arg =
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Spt_obs.Log.level_of_string s with
          | Ok l -> Ok l
          | Error msg -> Error (`Msg msg)),
        fun ppf l -> Format.pp_print_string ppf (Spt_obs.Log.string_of_level l)
      )
  in
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Log verbosity: error, warn, info or debug (overrides the SPT_LOG \
           and SPT_DEBUG environment variables)")

(** Apply the observability flags; returns a [finish] function to call
    after the work, which writes the requested artifact files. *)
let setup_obs trace metrics log_level =
  Option.iter Spt_obs.Log.set_level log_level;
  if trace <> None then Spt_obs.Trace.set_enabled true;
  if metrics <> None then Spt_obs.Metrics.set_enabled true;
  fun ?(parallel = []) (results : (string * Spt_driver.Pipeline.eval) list) ->
    Option.iter
      (fun path ->
        Spt_obs.Json.to_file path
          (Spt_driver.Report.metrics_json ~parallel results);
        Spt_obs.Log.info "metrics written to %s" path)
      metrics;
    Option.iter
      (fun path ->
        Spt_obs.Trace.to_file path;
        Spt_obs.Log.info "trace written to %s" path)
      trace

let run_cmd =
  let parallel_flag =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:
            "SPT-compile the program and execute it for real on the \
             speculative multicore runtime (OCaml 5 domains), with a \
             sequential-equivalence oracle")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for $(b,--parallel) (defaults to $(b,SPT_JOBS) \
             or 1)")
  in
  let run file parallel jobs config trace metrics log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        if not parallel then begin
          let r = Spt_interp.Interp.run_source (read_file file) in
          print_string r.Spt_interp.Interp.output;
          Format.printf "; %d instructions executed@."
            r.Spt_interp.Interp.dynamic_instrs;
          finish []
        end
        else begin
          let pr =
            Spt_driver.Pipeline.run_parallel ~config ?jobs (read_file file)
          in
          let open Spt_runtime.Runtime in
          let r = pr.Spt_driver.Pipeline.pr_runtime in
          print_string r.output;
          Format.printf
            "; %d instructions committed on %d worker(s), %d SPT loop(s)@."
            r.dynamic_instrs pr.Spt_driver.Pipeline.pr_jobs
            pr.Spt_driver.Pipeline.pr_n_loops;
          List.iter
            (fun (lid, s) ->
              Format.printf
                "; loop %d: %d forks, %d commits, %d violations, %d faults, \
                 %d kills, %d despeculations@."
                lid s.forks s.commits s.violations s.faults s.kills s.despecs)
            r.stats;
          Format.printf
            "; wall %.3fs vs %.3fs sequential (measured speedup %.2fx)@."
            r.wall_time pr.Spt_driver.Pipeline.pr_seq_wall
            pr.Spt_driver.Pipeline.pr_measured_speedup;
          let finish () =
            finish ~parallel:[ (Filename.basename file, r) ] []
          in
          match r.oracle with
          | `Match ->
            Format.printf "; oracle: parallel run matches sequential@.";
            finish ()
          | `Skipped -> finish ()
          | `Mismatch m ->
            Format.eprintf "oracle FAILED: %s@." m;
            finish ();
            exit 1
        end)
  in
  Cmd.v
    (Cmd.info "run" ~version
       ~doc:
         "Interpret a MiniC program, or execute it speculatively in parallel")
    Term.(
      const run $ file_arg $ parallel_flag $ jobs_arg $ config_arg $ trace_arg
      $ metrics_arg $ log_level_arg)

let dump_ir_cmd =
  let ssa_flag =
    Arg.(value & flag & info [ "ssa" ] ~doc:"Print in optimized SSA form")
  in
  let dump file ssa =
    handle_errors (fun () ->
        let prog = Spt_driver.Pipeline.front_end (read_file file) in
        if ssa then Spt_driver.Pipeline.to_ssa prog;
        print_endline (Spt_ir.Ir_pretty.program_to_string prog))
  in
  Cmd.v (Cmd.info "dump-ir" ~version ~doc:"Print the three-address IR")
    Term.(const dump $ file_arg $ ssa_flag)

let loops_cmd =
  let show file config =
    handle_errors (fun () ->
        let e = Spt_driver.Pipeline.evaluate ~config (read_file file) in
        Format.printf "%-20s %-10s %8s %8s %10s  %s@." "loop" "origin" "body"
          "trip" "cost" "decision";
        List.iter
          (fun (lr : Spt_driver.Pipeline.loop_record) ->
            Format.printf "%-20s %-10s %8.0f %8.0f %10s  %s@."
              (Printf.sprintf "%s@bb%d" lr.Spt_driver.Pipeline.lr_func
                 lr.Spt_driver.Pipeline.lr_header)
              (match lr.Spt_driver.Pipeline.lr_origin with
              | Some `For -> "for"
              | Some `While -> "while"
              | Some `Do -> "do"
              | None -> "?")
              lr.Spt_driver.Pipeline.lr_body_size lr.Spt_driver.Pipeline.lr_trip
              (match lr.Spt_driver.Pipeline.lr_cost with
              | Some c -> Printf.sprintf "%.2f" c
              | None -> "-")
              (match lr.Spt_driver.Pipeline.lr_decision with
              | Spt_driver.Pipeline.Selected ->
                if lr.Spt_driver.Pipeline.lr_svp then "SPT loop (with SVP)"
                else "SPT loop"
              | Spt_driver.Pipeline.Rejected r ->
                Spt_transform.Select.string_of_reason r))
          e.Spt_driver.Pipeline.loops)
  in
  Cmd.v
    (Cmd.info "loops" ~version ~doc:"Analyze every loop and show the SPT decision")
    Term.(const show $ file_arg $ config_arg)

let compile_cmd =
  let compile file config trace metrics log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        let e = Spt_driver.Pipeline.evaluate ~config (read_file file) in
        let open Spt_driver.Pipeline in
        Format.printf "configuration    : %s@." e.config_name;
        Format.printf "outputs match    : %b@." e.outputs_match;
        Format.printf "baseline cycles  : %.0f (IPC %.2f)@."
          e.base.Spt_tlsim.Tls_machine.cycles e.base.Spt_tlsim.Tls_machine.ipc;
        Format.printf "SPT cycles       : %.0f@." e.spt.Spt_tlsim.Tls_machine.cycles;
        Format.printf "speedup          : %+.2f%%@." ((e.speedup -. 1.0) *. 100.0);
        Format.printf "SPT loops        : %d@." e.n_spt_loops;
        if e.n_spt_loops > 0 then begin
          Format.printf "@.";
          print_string (Spt_driver.Report.fig18 [ (Filename.basename file, e) ])
        end;
        finish [ (Filename.basename file, e) ])
  in
  Cmd.v
    (Cmd.info "compile" ~version
       ~doc:"Run the cost-driven SPT pipeline and simulate the result")
    Term.(
      const compile $ file_arg $ config_arg $ trace_arg $ metrics_arg
      $ log_level_arg)

let workload_cmd =
  let name_arg =
    let names = List.map (fun w -> w.Spt_workloads.Suite.name) Spt_workloads.Suite.all in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [] ~docv:"NAME" ~doc:"Workload name (bzip2, crafty, ...)")
  in
  let run name config trace metrics log_level =
    handle_errors (fun () ->
        let finish = setup_obs trace metrics log_level in
        let w = Spt_workloads.Suite.find name in
        let e = Spt_driver.Pipeline.evaluate ~config w.Spt_workloads.Suite.source in
        Format.printf "%s under %s: base IPC %.2f, speedup %+.2f%%, %d SPT loops@."
          name e.Spt_driver.Pipeline.config_name
          e.Spt_driver.Pipeline.base.Spt_tlsim.Tls_machine.ipc
          ((e.Spt_driver.Pipeline.speedup -. 1.0) *. 100.0)
          e.Spt_driver.Pipeline.n_spt_loops;
        print_string (Spt_driver.Report.fig18 [ (name, e) ]);
        finish [ (name, e) ])
  in
  Cmd.v
    (Cmd.info "workload" ~version ~doc:"Evaluate a built-in SPEC2000Int-like workload")
    Term.(
      const run $ name_arg $ config_arg $ trace_arg $ metrics_arg
      $ log_level_arg)

let graph_cmd =
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("dep", `Dep); ("cost", `Cost) ]) `Dep
      & info [ "k"; "kind" ] ~docv:"KIND" ~doc:"Graph kind: dep or cost")
  in
  let show file kind =
    handle_errors (fun () ->
        let prog = Spt_driver.Pipeline.front_end (read_file file) in
        Spt_driver.Pipeline.to_ssa prog;
        let eff = Spt_depgraph.Effects.compute prog in
        (* the hottest-looking loop: largest static body *)
        let best = ref None in
        List.iter
          (fun (_, f) ->
            List.iter
              (fun (l : Spt_ir.Loops.loop) ->
                let size =
                  Spt_ir.Loops.Iset.fold
                    (fun bid acc -> acc + Spt_ir.Ir.block_size (Spt_ir.Ir.block f bid))
                    l.Spt_ir.Loops.body 0
                in
                match !best with
                | Some (_, _, s) when s >= size -> ()
                | _ -> best := Some (f, l, size))
              (Spt_ir.Loops.find f))
          prog.Spt_ir.Ir.funcs;
        match !best with
        | None -> Format.eprintf "no loops found@."
        | Some (f, l, _) ->
          let g = Spt_depgraph.Depgraph.build eff f l in
          (match kind with
          | `Dep -> print_string (Spt_depgraph.Depgraph.to_dot g)
          | `Cost ->
            print_string (Spt_cost.Cost_model.to_dot (Spt_cost.Cost_model.build g))))
  in
  Cmd.v
    (Cmd.info "graph" ~version
       ~doc:"Emit the dependence or cost graph of the largest loop as Graphviz DOT")
    Term.(const show $ file_arg $ kind_arg)

let () =
  let doc = "cost-driven speculative parallelization (PLDI 2004 reproduction)" in
  let info = Cmd.info "sptc" ~version ~doc in
  let group =
    Cmd.group info
      [ run_cmd; dump_ir_cmd; loops_cmd; compile_cmd; workload_cmd; graph_cmd ]
  in
  (* distinct exit codes: 0 = success, 2 = usage error, 1 = compile/run
     error (the latter via [handle_errors], which exits directly) *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 1)
