(** Dependence-graph tests: effect summaries, violation candidates,
    edge kinds and probabilities, control dependence and the reduction
    violation-probability refinement. *)

open Spt_ir
open Spt_depgraph
module Iset = Set.Make (Int)

let build ?(config = Depgraph.default_config) ?(optimize = true) src =
  let prog = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src) in
  let f = Ir.func_of_program prog "main" in
  Ssa.construct f;
  if optimize then Passes.optimize_ssa f;
  let eff = Effects.compute prog in
  let loops = Loops.find f in
  (prog, f, eff, loops, fun l -> Depgraph.build ~config eff f l)

let test_effects_summaries () =
  let src =
    {|
int a[4];
int b[4];
int reader(int i) { return a[i]; }
int through(int x[], int i) { return x[i]; }
void writer(int i) { b[i] = reader(i); }
int chatty() { return rand(); }
void main() { writer(0); print_int(through(a, 1) + chatty()); }
|}
  in
  let prog = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src) in
  let eff = Effects.compute prog in
  let a_sid = (Ir.find_sym prog "a").Ir.sid in
  let b_sid = (Ir.find_sym prog "b").Ir.sid in
  let s name = Effects.find eff name in
  Alcotest.(check bool) "reader reads a" true
    (Effects.Iset.mem a_sid (s "reader").Effects.sym_reads);
  Alcotest.(check bool) "reader writes nothing" true
    (Effects.Iset.is_empty (s "reader").Effects.sym_writes);
  (* transitive: writer writes b and reads a (via reader) *)
  Alcotest.(check bool) "writer writes b" true
    (Effects.Iset.mem b_sid (s "writer").Effects.sym_writes);
  Alcotest.(check bool) "writer reads a transitively" true
    (Effects.Iset.mem a_sid (s "writer").Effects.sym_reads);
  (* parameter effects *)
  Alcotest.(check bool) "through reads its slot" true
    (Effects.Iset.mem 0 (s "through").Effects.param_reads);
  (* rand pins the rng pseudo region *)
  Alcotest.(check bool) "chatty touches rng" true
    (Effects.Iset.mem Effects.rng_region (s "chatty").Effects.sym_writes)

let test_violation_candidates_scalar () =
  (* carried scalar s: its defining statement is the only VC *)
  let _, _, _, loops, build_g =
    build
      {|
int n = 20;
int a[20];
void main() {
  int i = 0;
  int s = 0;
  while (i < n) {
    s = s + i * 3;
    a[i] = s;
    i = i + 1;
  }
  print_int(s);
}
|}
  in
  let g = build_g (List.hd loops) in
  let vcs = Depgraph.violation_candidates g in
  (* i's and s's updates are both carried: two register VCs; the store
     to a is never read in the loop, so no memory VC *)
  Alcotest.(check int) "two violation candidates" 2 (List.length vcs);
  List.iter
    (fun vc ->
      match (Depgraph.instr g vc).Ir.kind with
      | Ir.Binop (_, Ir.Add, _, _) -> ()
      | k ->
        Alcotest.fail
          (Format.asprintf "expected add VC, got %a" Ir_pretty.pp_kind k))
    vcs

let test_memory_cross_edges () =
  (* recurrence through memory: a[i] = a[i-1] + 1 *)
  let _, _, _, loops, build_g =
    build
      {|
int n = 20;
int a[20];
void main() {
  int i = 1;
  while (i < n) {
    a[i] = a[i - 1] + 1;
    i = i + 1;
  }
  print_int(a[19]);
}
|}
  in
  let g = build_g (List.hd loops) in
  let mem_cross =
    List.filter
      (fun (e : Depgraph.edge) ->
        e.Depgraph.cross && e.Depgraph.kind = Depgraph.Mem_true)
      (Depgraph.cross_edges g)
  in
  Alcotest.(check bool) "store->load cross edge" true (mem_cross <> []);
  List.iter
    (fun (e : Depgraph.edge) ->
      match (Depgraph.instr g e.Depgraph.src).Ir.kind with
      | Ir.Store _ -> ()
      | _ -> Alcotest.fail "cross mem edge source must be a store")
    mem_cross

let test_no_false_cross_edges () =
  (* disjoint arrays, exact aliasing: no memory cross edges at all *)
  let _, _, _, loops, build_g =
    build
      {|
int n = 20;
int a[20];
int b[20];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = b[i] * 2;
    i = i + 1;
  }
  print_int(a[3]);
}
|}
  in
  let g = build_g (List.hd loops) in
  Alcotest.(check int) "no memory cross edges" 0
    (List.length
       (List.filter
          (fun (e : Depgraph.edge) -> e.Depgraph.kind = Depgraph.Mem_true)
          (Depgraph.cross_edges g)))

let test_type_based_aliasing () =
  (* same program, type-based model: a and b (both int[]) may alias *)
  let config =
    {
      Depgraph.default_config with
      Depgraph.alias_model = `Type_based;
      sym_ty = (fun _ -> Some Ir.I64);
    }
  in
  let _, _, _, loops, build_g =
    build ~config
      {|
int n = 20;
int a[20];
int b[20];
void main() {
  int i = 0;
  while (i < n) {
    a[i] = b[i] * 2;
    i = i + 1;
  }
  print_int(a[3]);
}
|}
  in
  let g = build_g (List.hd loops) in
  Alcotest.(check bool) "type-based sees cross edges" true
    (List.exists
       (fun (e : Depgraph.edge) -> e.Depgraph.kind = Depgraph.Mem_true)
       (Depgraph.cross_edges g))

let test_anti_output_edges () =
  let _, _, _, loops, build_g =
    build
      {|
int n = 20;
int a[20];
void main() {
  int i = 0;
  while (i < n) {
    int x = a[i];
    a[i] = x + 1;
    i = i + 1;
  }
  print_int(a[0]);
}
|}
  in
  let g = build_g (List.hd loops) in
  let kinds =
    List.sort_uniq compare
      (List.map (fun (e : Depgraph.edge) -> e.Depgraph.kind) (Depgraph.motion_edges g))
  in
  Alcotest.(check bool) "anti edge present" true (List.mem Depgraph.Mem_anti kinds)

let test_control_dependence () =
  let _, _, _, loops, build_g =
    build ~optimize:false
      {|
int n = 20;
int a[20];
int s;
void main() {
  int i = 0;
  while (i < n) {
    if (a[i] > 5) { s = s + 1; }
    i = i + 1;
  }
  print_int(s);
}
|}
  in
  let g = build_g (List.hd loops) in
  let ctrl =
    List.filter
      (fun (e : Depgraph.edge) -> e.Depgraph.kind = Depgraph.Control)
      g.Depgraph.edges
  in
  Alcotest.(check bool) "control edges exist" true (ctrl <> []);
  (* every control source must be a comparison feeding a branch *)
  List.iter
    (fun (e : Depgraph.edge) ->
      match (Depgraph.instr g e.Depgraph.src).Ir.kind with
      | Ir.Binop (_, op, _, _) when Ir.is_comparison op -> ()
      | Ir.Binop _ | Ir.Load _ | Ir.Phi _ -> ()
      | k ->
        Alcotest.fail
          (Format.asprintf "odd control source %a" Ir_pretty.pp_kind k))
    ctrl

let test_reduction_violation_prob () =
  (* conditional min update: the carried join phi's violation
     probability must equal the update frequency, not 1 *)
  let src =
    {|
int n = 100;
int a[100];
void main() {
  int i;
  int best = 1000000;
  srand(3);
  for (i = 0; i < n; i = i + 1) { a[i] = rand() & 1023; }
  for (i = 0; i < n; i = i + 1) {
    if (a[i] < best) { best = a[i]; }
  }
  print_int(best);
}
|}
  in
  let prog = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src) in
  let f = Ir.func_of_program prog "main" in
  Ssa.construct f;
  Passes.optimize_ssa f;
  let ep = Spt_profile.Edge_profile.create () in
  let _ =
    Spt_interp.Interp.run ~hooks:(Spt_profile.Edge_profile.hooks ep) prog
  in
  let eff = Effects.compute prog in
  let config =
    { Depgraph.default_config with Depgraph.edge_profile = Some ep }
  in
  (* the second loop is the min reduction: pick the loop whose body has
     no rand call *)
  let loops = Loops.find f in
  let has_call l =
    Loops.Iset.exists
      (fun bid ->
        List.exists
          (fun (i : Ir.instr) -> Ir.is_call i.Ir.kind)
          (Ir.block f bid).Ir.instrs)
      l.Loops.body
  in
  let l = List.find (fun l -> not (has_call l)) loops in
  let g = Depgraph.build ~config eff f l in
  let vcs = Depgraph.violation_candidates g in
  let phi_vcs =
    List.filter (fun vc -> Ir.is_phi (Depgraph.instr g vc).Ir.kind) vcs
  in
  Alcotest.(check bool) "join-phi VC found" true (phi_vcs <> []);
  List.iter
    (fun vc ->
      let p = Depgraph.violation_prob g vc in
      Alcotest.(check bool)
        (Printf.sprintf "refined violation prob %.3f < 0.5" p)
        true (p < 0.5))
    phi_vcs

let test_violation_override () =
  let _, _, _, loops, _ =
    build
      {|
int n = 20;
void main() {
  int i = 0;
  int x = 0;
  while (i < n) { x = x * 3 + 1; i = i + 1; }
  print_int(x);
}
|}
  in
  ignore loops;
  (* overrides win over everything *)
  let src =
    "int n = 5; void main() { int i = 0; while (i < n) { i = i + 1; } print_int(i); }"
  in
  let prog = Lower.lower_program (Spt_srclang.Typecheck.parse_and_check src) in
  let f = Ir.func_of_program prog "main" in
  Ssa.construct f;
  let eff = Effects.compute prog in
  let l = List.hd (Loops.find f) in
  let g0 = Depgraph.build eff f l in
  match Depgraph.violation_candidates g0 with
  | vc :: _ ->
    let config =
      { Depgraph.default_config with Depgraph.violation_overrides = [ (vc, 0.125) ] }
    in
    let g = Depgraph.build ~config eff f l in
    Alcotest.(check (float 1e-9)) "override applied" 0.125 (Depgraph.violation_prob g vc)
  | [] -> Alcotest.fail "expected a VC"

let test_to_dot () =
  let _, _, _, loops, build_g =
    build
      "int n = 5; int a[5]; void main() { int i = 0; while (i < n) { a[i] = i; i = i + 1; } }"
  in
  let g = build_g (List.hd loops) in
  let dot = Depgraph.to_dot g in
  Alcotest.(check bool) "renders" true (String.length dot > 20)

let suite =
  [
    Alcotest.test_case "effect summaries" `Quick test_effects_summaries;
    Alcotest.test_case "scalar violation candidates" `Quick test_violation_candidates_scalar;
    Alcotest.test_case "memory cross edges" `Quick test_memory_cross_edges;
    Alcotest.test_case "no false cross edges (exact)" `Quick test_no_false_cross_edges;
    Alcotest.test_case "type-based aliasing" `Quick test_type_based_aliasing;
    Alcotest.test_case "anti/output edges" `Quick test_anti_output_edges;
    Alcotest.test_case "control dependence" `Quick test_control_dependence;
    Alcotest.test_case "reduction violation prob" `Quick test_reduction_violation_prob;
    Alcotest.test_case "violation override" `Quick test_violation_override;
    Alcotest.test_case "dot rendering" `Quick test_to_dot;
  ]
